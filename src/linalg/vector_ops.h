#ifndef TSC_LINALG_VECTOR_OPS_H_
#define TSC_LINALG_VECTOR_OPS_H_

#include <span>
#include <vector>

namespace tsc {

/// Dot product. Sizes must match.
double Dot(std::span<const double> a, std::span<const double> b);

/// Euclidean (L2) norm.
double Norm2(std::span<const double> v);

/// Squared Euclidean norm.
double Norm2Squared(std::span<const double> v);

/// Euclidean distance between two vectors of equal size.
double EuclideanDistance(std::span<const double> a, std::span<const double> b);

/// y += alpha * x, in place. Sizes must match.
void Axpy(double alpha, std::span<const double> x, std::span<double> y);

/// v *= alpha, in place.
void ScaleInPlace(std::span<double> v, double alpha);

/// Normalizes v to unit L2 norm in place; returns the original norm.
/// A zero vector is left unchanged and 0 is returned.
double NormalizeInPlace(std::span<double> v);

/// Sum of elements.
double Sum(std::span<const double> v);

}  // namespace tsc

#endif  // TSC_LINALG_VECTOR_OPS_H_
