#include "linalg/qr.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "linalg/kernels.h"

namespace tsc {
namespace {

// Panel width for the blocked projection. Small enough that the
// coefficient block stays in L1, large enough to amortize the GemmNT
// dispatch over the (potentially long) rows.
constexpr std::size_t kPanelRows = 8;

// Subtracts from every panel row its projection onto the orthonormal
// prefix rows [0, prefix): coeff = panel * prefix^T via GemmNT, then
// panel_row -= sum_j coeff[j] * prefix_row_j.
void ProjectPanelAgainstPrefix(Matrix* a, std::size_t panel_begin,
                               std::size_t panel_rows, std::size_t prefix) {
  if (prefix == 0 || panel_rows == 0) {
    return;
  }
  const std::size_t m = a->cols();
  std::vector<double> coeff(panel_rows * prefix);
  kernels::GemmNT(a->Row(panel_begin).data(), panel_rows, m,
                  a->Row(0).data(), prefix, m, m, coeff.data(), prefix);
  for (std::size_t r = 0; r < panel_rows; ++r) {
    double* row = a->Row(panel_begin + r).data();
    const double* c = coeff.data() + r * prefix;
    for (std::size_t j = 0; j < prefix; ++j) {
      kernels::Axpy(-c[j], a->Row(j).data(), row, m);
    }
  }
}

}  // namespace

StatusOr<std::size_t> OrthonormalizeRows(Matrix* a,
                                         double relative_tolerance) {
  if (a == nullptr) {
    return Status::InvalidArgument("OrthonormalizeRows: null matrix");
  }
  const std::size_t rows = a->rows();
  const std::size_t m = a->cols();
  if (rows == 0 || m == 0) {
    return std::size_t{0};
  }

  // Pre-projection norms anchor the rank test: a row is dependent when
  // projection removes all but a relative_tolerance sliver of it.
  std::vector<double> origin_norm(rows);
  double max_origin = 0.0;
  for (std::size_t i = 0; i < rows; ++i) {
    const double* row = a->Row(i).data();
    origin_norm[i] = std::sqrt(kernels::Dot(row, row, m));
    max_origin = std::max(max_origin, origin_norm[i]);
  }
  if (max_origin == 0.0) {
    return std::size_t{0};
  }

  std::vector<bool> dropped(rows, false);
  std::size_t rank = 0;  // Orthonormal rows live in a[0..rank) at all times.
  for (std::size_t panel_begin = 0; panel_begin < rows;
       panel_begin += kPanelRows) {
    const std::size_t panel_rows =
        std::min(kPanelRows, rows - panel_begin);
    // Blocked projection against the orthonormal prefix, applied twice.
    ProjectPanelAgainstPrefix(a, panel_begin, panel_rows, rank);
    ProjectPanelAgainstPrefix(a, panel_begin, panel_rows, rank);
    // Modified Gram-Schmidt inside the panel, again with a second sweep.
    for (std::size_t r = 0; r < panel_rows; ++r) {
      const std::size_t i = panel_begin + r;
      double* row = a->Row(i).data();
      for (int sweep = 0; sweep < 2; ++sweep) {
        for (std::size_t j = panel_begin; j < i; ++j) {
          if (dropped[j]) {
            continue;
          }
          const double c = kernels::Dot(row, a->Row(j).data(), m);
          kernels::Axpy(-c, a->Row(j).data(), row, m);
        }
      }
      const double norm = std::sqrt(kernels::Dot(row, row, m));
      const double floor =
          relative_tolerance * std::max(origin_norm[i], max_origin);
      if (norm <= floor || norm == 0.0) {
        dropped[i] = true;
        std::fill(row, row + m, 0.0);
        continue;
      }
      const double inv = 1.0 / norm;
      for (std::size_t t = 0; t < m; ++t) {
        row[t] *= inv;
      }
    }
    // Compact the panel's survivors onto the prefix so the next panel's
    // GemmNT sees a dense orthonormal block at a[0..rank).
    for (std::size_t r = 0; r < panel_rows; ++r) {
      const std::size_t i = panel_begin + r;
      if (dropped[i]) {
        continue;
      }
      if (i != rank) {
        std::copy_n(a->Row(i).data(), m, a->Row(rank).data());
        std::fill(a->Row(i).begin(), a->Row(i).end(), 0.0);
      }
      ++rank;
    }
  }
  for (std::size_t i = rank; i < rows; ++i) {
    std::fill(a->Row(i).begin(), a->Row(i).end(), 0.0);
  }
  return rank;
}

void AddScaledOuter(std::span<const double> coeffs, std::span<const double> x,
                    Matrix* c) {
  const std::size_t n = x.size();
  for (std::size_t p = 0; p < coeffs.size(); ++p) {
    kernels::Axpy(coeffs[p], x.data(), c->Row(p).data(), n);
  }
}

}  // namespace tsc
