#ifndef TSC_LINALG_QR_H_
#define TSC_LINALG_QR_H_

#include <cstddef>
#include <span>

#include "linalg/matrix.h"
#include "util/status.h"

namespace tsc {

/// Orthonormalizes the rows of `a` in place with blocked Gram-Schmidt:
/// rows are processed in panels, each panel is projected against the
/// already-orthonormal prefix with one GemmNT (coefficients) plus rank-1
/// updates, then orthonormalized internally by modified Gram-Schmidt.
/// Every projection is applied twice ("twice is enough" reorthogonalization),
/// which keeps the basis orthonormal to machine precision even for the
/// ill-conditioned sketches a randomized range finder produces.
///
/// Rows whose norm collapses below `relative_tolerance` times their
/// pre-projection norm are numerically dependent on the rows above them;
/// they are dropped and the surviving rows are compacted to the front of
/// `a` (trailing rows are zeroed). Returns the numerical rank, i.e. the
/// number of leading rows of `a` that form an orthonormal basis.
///
/// The row-wise orientation is deliberate: the randomized builder stores
/// its sketch transposed (l x M), so every inner product and update here
/// runs over contiguous memory and dispatches through the SIMD kernels.
/// The routine is strictly sequential in row order and therefore
/// bit-deterministic regardless of caller threading.
StatusOr<std::size_t> OrthonormalizeRows(Matrix* a,
                                         double relative_tolerance = 1e-12);

/// Tall-skinny rank-1 accumulate: c->Row(p) += coeffs[p] * x for every p.
/// `x` must have c->cols() entries and `coeffs` c->rows() entries. This is
/// the streaming building block for sketch updates (Y^T += omega x^T) and
/// Rayleigh-quotient accumulation (T += w w^T).
void AddScaledOuter(std::span<const double> coeffs, std::span<const double> x,
                    Matrix* c);

}  // namespace tsc

#endif  // TSC_LINALG_QR_H_
