#ifndef TSC_LINALG_SVD_H_
#define TSC_LINALG_SVD_H_

#include <cstddef>
#include <vector>

#include "linalg/matrix.h"
#include "linalg/symmetric_eigen.h"
#include "util/status.h"

namespace tsc {

/// Truncated singular value decomposition X ~= U diag(s) V^T with
/// U: N x k column-orthonormal, V: M x k column-orthonormal and
/// s the k largest singular values in decreasing order.
struct SvdResult {
  Matrix u;
  std::vector<double> singular_values;
  Matrix v;

  std::size_t rank() const { return singular_values.size(); }
};

/// Computes a rank-k truncated SVD of an in-memory matrix through the
/// covariance route of the paper (Lemma 3.2): eigendecompose C = X^T X,
/// whose eigenvalues are the squared singular values and whose eigenvectors
/// form V, then recover U = X V diag(s)^-1. If X has numerical rank
/// r < k, only r components are returned. Requires x.cols() >= 1.
StatusOr<SvdResult> TruncatedSvd(
    const Matrix& x, std::size_t k,
    EigenSolverKind kind = EigenSolverKind::kHouseholderQl);

/// Rank used when truncating tiny eigenvalues of C: components with
/// sigma^2 <= tol * sigma_max^2 are dropped. Mirrors LAPACK-style
/// relative thresholds.
constexpr double kSvdRelativeTolerance = 1e-12;

/// Materializes U diag(s) V^T (small matrices; tests and examples).
Matrix ReconstructFromSvd(const SvdResult& svd);

/// Max |A^T A - I| over an N x k matrix: orthonormality defect, used by
/// tests on both U and V factors.
double OrthonormalityDefect(const Matrix& a);

}  // namespace tsc

#endif  // TSC_LINALG_SVD_H_
