#include "linalg/vector_ops.h"

#include <cmath>

#include "linalg/kernels.h"
#include "util/logging.h"

namespace tsc {

double Dot(std::span<const double> a, std::span<const double> b) {
  TSC_DCHECK(a.size() == b.size());
  return kernels::Dot(a.data(), b.data(), a.size());
}

double Norm2Squared(std::span<const double> v) {
  double total = 0.0;
  for (double x : v) total += x * x;
  return total;
}

double Norm2(std::span<const double> v) { return std::sqrt(Norm2Squared(v)); }

double EuclideanDistance(std::span<const double> a,
                         std::span<const double> b) {
  TSC_DCHECK(a.size() == b.size());
  double total = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    total += d * d;
  }
  return std::sqrt(total);
}

void Axpy(double alpha, std::span<const double> x, std::span<double> y) {
  TSC_DCHECK(x.size() == y.size());
  kernels::Axpy(alpha, x.data(), y.data(), x.size());
}

void ScaleInPlace(std::span<double> v, double alpha) {
  for (double& x : v) x *= alpha;
}

double NormalizeInPlace(std::span<double> v) {
  const double norm = Norm2(v);
  if (norm > 0.0) ScaleInPlace(v, 1.0 / norm);
  return norm;
}

double Sum(std::span<const double> v) {
  double total = 0.0;
  for (double x : v) total += x;
  return total;
}

}  // namespace tsc
