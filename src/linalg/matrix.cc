#include "linalg/matrix.h"

#include <cmath>
#include <cstdio>
#include <sstream>

#include "util/logging.h"

namespace tsc {

Matrix::Matrix(std::size_t rows, std::size_t cols, std::vector<double> data)
    : rows_(rows), cols_(cols), data_(std::move(data)) {
  TSC_CHECK_EQ(rows_ * cols_, data_.size());
}

Matrix Matrix::FromRows(const std::vector<std::vector<double>>& rows) {
  if (rows.empty()) return Matrix();
  Matrix m(rows.size(), rows[0].size());
  for (std::size_t i = 0; i < rows.size(); ++i) {
    TSC_CHECK_EQ(rows[i].size(), m.cols_);
    for (std::size_t j = 0; j < m.cols_; ++j) m(i, j) = rows[i][j];
  }
  return m;
}

Matrix Matrix::Identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

std::vector<double> Matrix::Col(std::size_t j) const {
  TSC_CHECK_LT(j, cols_);
  std::vector<double> out(rows_);
  for (std::size_t i = 0; i < rows_; ++i) out[i] = (*this)(i, j);
  return out;
}

Matrix Matrix::Transposed() const {
  Matrix t(cols_, rows_);
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t j = 0; j < cols_; ++j) t(j, i) = (*this)(i, j);
  }
  return t;
}

double Matrix::FrobeniusNormSquared() const {
  double total = 0.0;
  for (double v : data_) total += v * v;
  return total;
}

double Matrix::FrobeniusNorm() const { return std::sqrt(FrobeniusNormSquared()); }

double Matrix::MeanCell() const {
  if (data_.empty()) return 0.0;
  double total = 0.0;
  for (double v : data_) total += v;
  return total / static_cast<double>(data_.size());
}

void Matrix::Scale(double factor) {
  for (double& v : data_) v *= factor;
}

void Matrix::Add(const Matrix& other) {
  TSC_CHECK_EQ(rows_, other.rows_);
  TSC_CHECK_EQ(cols_, other.cols_);
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
}

void Matrix::Subtract(const Matrix& other) {
  TSC_CHECK_EQ(rows_, other.rows_);
  TSC_CHECK_EQ(cols_, other.cols_);
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= other.data_[i];
}

Matrix Matrix::TopRows(std::size_t rows) const {
  TSC_CHECK_LE(rows, rows_);
  Matrix out(rows, cols_);
  std::copy(data_.begin(),
            data_.begin() + static_cast<std::ptrdiff_t>(rows * cols_),
            out.data_.begin());
  return out;
}

void Matrix::AppendRows(const Matrix& other) {
  if (other.rows_ == 0) return;
  if (rows_ == 0) {
    *this = other;
    return;
  }
  TSC_CHECK_EQ(cols_, other.cols_);
  data_.insert(data_.end(), other.data_.begin(), other.data_.end());
  rows_ += other.rows_;
}

std::string Matrix::ToString(int precision) const {
  std::ostringstream out;
  char buf[48];
  for (std::size_t i = 0; i < rows_; ++i) {
    out << "[";
    for (std::size_t j = 0; j < cols_; ++j) {
      std::snprintf(buf, sizeof(buf), "%*.*f", precision + 6, precision,
                    (*this)(i, j));
      out << buf;
    }
    out << " ]\n";
  }
  return out.str();
}

Matrix Multiply(const Matrix& a, const Matrix& b) {
  TSC_CHECK_EQ(a.cols(), b.rows());
  Matrix c(a.rows(), b.cols());
  // ikj loop order: streams through b and c rows for cache friendliness.
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t k = 0; k < a.cols(); ++k) {
      const double aik = a(i, k);
      if (aik == 0.0) continue;
      const std::span<const double> brow = b.Row(k);
      const std::span<double> crow = c.Row(i);
      for (std::size_t j = 0; j < b.cols(); ++j) crow[j] += aik * brow[j];
    }
  }
  return c;
}

Matrix GramMatrix(const Matrix& a) {
  Matrix c(a.cols(), a.cols());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    const std::span<const double> row = a.Row(i);
    for (std::size_t j = 0; j < a.cols(); ++j) {
      const double xj = row[j];
      if (xj == 0.0) continue;
      double* crow = &c(j, 0);
      for (std::size_t l = j; l < a.cols(); ++l) crow[l] += xj * row[l];
    }
  }
  // Mirror the upper triangle computed above.
  for (std::size_t j = 0; j < a.cols(); ++j) {
    for (std::size_t l = j + 1; l < a.cols(); ++l) c(l, j) = c(j, l);
  }
  return c;
}

std::vector<double> MultiplyVector(const Matrix& a, std::span<const double> v) {
  TSC_CHECK_EQ(a.cols(), v.size());
  std::vector<double> out(a.rows(), 0.0);
  for (std::size_t i = 0; i < a.rows(); ++i) {
    const std::span<const double> row = a.Row(i);
    double total = 0.0;
    for (std::size_t j = 0; j < a.cols(); ++j) total += row[j] * v[j];
    out[i] = total;
  }
  return out;
}

std::vector<double> MultiplyTransposeVector(const Matrix& a,
                                            std::span<const double> v) {
  TSC_CHECK_EQ(a.rows(), v.size());
  std::vector<double> out(a.cols(), 0.0);
  for (std::size_t i = 0; i < a.rows(); ++i) {
    const double vi = v[i];
    if (vi == 0.0) continue;
    const std::span<const double> row = a.Row(i);
    for (std::size_t j = 0; j < a.cols(); ++j) out[j] += vi * row[j];
  }
  return out;
}

double MaxAbsDifference(const Matrix& a, const Matrix& b) {
  TSC_CHECK_EQ(a.rows(), b.rows());
  TSC_CHECK_EQ(a.cols(), b.cols());
  double worst = 0.0;
  for (std::size_t i = 0; i < a.data().size(); ++i) {
    worst = std::max(worst, std::abs(a.data()[i] - b.data()[i]));
  }
  return worst;
}

}  // namespace tsc
