#ifndef TSC_LINALG_KERNELS_H_
#define TSC_LINALG_KERNELS_H_

#include <cstddef>
#include <cstdint>

namespace tsc::kernels {

/// Instruction-set tier the hot-loop kernels run at. Resolved once per
/// process: AVX2+FMA when the CPU reports both, otherwise the portable
/// scalar code. `TSC_SIMD=scalar` in the environment forces the fallback
/// (the property tests and A/B measurements use this).
enum class SimdLevel {
  kScalar,
  kAvx2,
};

const char* SimdLevelName(SimdLevel level);

/// The dispatch decision as a pure function of its inputs (unit-testable
/// without touching the process environment): `env_value` is the raw
/// TSC_SIMD setting (null when unset), `hw_avx2_fma` whether the CPU has
/// AVX2 and FMA. Any env value other than "scalar"/"avx2" is ignored;
/// "avx2" without hardware support falls back to scalar.
SimdLevel ResolveSimdLevel(const char* env_value, bool hw_avx2_fma);

/// The level every dispatched kernel below actually runs at, resolved on
/// first call from the CPU and TSC_SIMD.
SimdLevel ActiveSimdLevel();

// ---------------------------------------------------------------------------
// Dispatched kernels. All pointers may alias only where noted; n == 0 is
// legal everywhere. The scalar and SIMD tiers agree to within normal
// floating-point reassociation (the SIMD code uses FMA and multiple
// accumulators), not bit-for-bit.
// ---------------------------------------------------------------------------

/// Inner product of a[0..n) and b[0..n).
double Dot(const double* a, const double* b, std::size_t n);

/// y[i] += alpha * x[i] for i in [0, n). x and y must not overlap.
void Axpy(double alpha, const double* x, double* y, std::size_t n);

/// Fused dot-batch: out[r] = dot(rows + r*stride, x, n) for r in
/// [0, count). One pass that keeps x hot across the batch; `stride` is
/// the leading dimension of the row-major block (stride >= n).
void DotBatch(const double* rows, std::size_t stride, std::size_t count,
              const double* x, std::size_t n, double* out);

/// Blocked GEMV: y[r] += dot(a + r*stride, x, n) for r in [0, rows).
void Gemv(const double* a, std::size_t rows, std::size_t n,
          std::size_t stride, const double* x, double* y);

/// Blocked C = A * B^T micro-kernel (both operands row-major):
///   c[i*ldc + j] = dot(a + i*lda, b + j*ldb, k)
/// for i in [0, m), j in [0, n). This is the region-reconstruction shape:
/// A holds gathered U rows, B holds gathered Lambda-weighted V rows.
/// Overwrites C.
void GemmNT(const double* a, std::size_t m, std::size_t lda, const double* b,
            std::size_t n, std::size_t ldb, std::size_t k, double* c,
            std::size_t ldc);

// ---------------------------------------------------------------------------
// Fused dequantize kernels (the quantized U row store, storage/quant.h).
// The quantized operand q holds n codes with the affine decode
//   value[i] = offset + scale * double(q[i])
// (for the f32 kernels pass scale = 1, offset = 0 and the decode is the
// plain widening conversion). The kernels consume the codes directly —
// conversion happens in registers inside the dot loop, never through a
// materialized double buffer — so a quantized row served from the mmap
// view is dotted in place. Same aliasing/n == 0 rules as above, and the
// same caveat: the two tiers agree up to FP reassociation.
// ---------------------------------------------------------------------------

/// out = sum_i (offset + scale * q[i]) * b[i].
double DotF32(const float* q, double scale, double offset, const double* b,
              std::size_t n);
double DotI16(const std::int16_t* q, double scale, double offset,
              const double* b, std::size_t n);
double DotI8(const std::int8_t* q, double scale, double offset,
             const double* b, std::size_t n);

/// out[r] = fused dot of (rows + r*stride) against the shared quantized
/// vector q, r in [0, count). The AVX2 tier converts each q chunk once
/// and reuses it across a pair of rows, so the dequantize cost amortizes
/// over the batch.
void DotBatchF32(const double* rows, std::size_t stride, std::size_t count,
                 const float* q, double scale, double offset, std::size_t n,
                 double* out);
void DotBatchI16(const double* rows, std::size_t stride, std::size_t count,
                 const std::int16_t* q, double scale, double offset,
                 std::size_t n, double* out);
void DotBatchI8(const double* rows, std::size_t stride, std::size_t count,
                const std::int8_t* q, double scale, double offset,
                std::size_t n, double* out);

/// y[r] += fused dot of (a + r*stride) against the shared quantized x.
void GemvF32(const double* a, std::size_t rows, std::size_t n,
             std::size_t stride, const float* x, double scale, double offset,
             double* y);
void GemvI16(const double* a, std::size_t rows, std::size_t n,
             std::size_t stride, const std::int16_t* x, double scale,
             double offset, double* y);
void GemvI8(const double* a, std::size_t rows, std::size_t n,
            std::size_t stride, const std::int8_t* x, double scale,
            double offset, double* y);

/// Portable reference implementations (plain one-element loops, no FMA).
/// The dispatched kernels above compare against these in the property
/// tests; they are also what runs under TSC_SIMD=scalar.
namespace scalar {
double Dot(const double* a, const double* b, std::size_t n);
void Axpy(double alpha, const double* x, double* y, std::size_t n);
void DotBatch(const double* rows, std::size_t stride, std::size_t count,
              const double* x, std::size_t n, double* out);
void Gemv(const double* a, std::size_t rows, std::size_t n,
          std::size_t stride, const double* x, double* y);
void GemmNT(const double* a, std::size_t m, std::size_t lda, const double* b,
            std::size_t n, std::size_t ldb, std::size_t k, double* c,
            std::size_t ldc);
double DotF32(const float* q, double scale, double offset, const double* b,
              std::size_t n);
double DotI16(const std::int16_t* q, double scale, double offset,
              const double* b, std::size_t n);
double DotI8(const std::int8_t* q, double scale, double offset,
             const double* b, std::size_t n);
void DotBatchF32(const double* rows, std::size_t stride, std::size_t count,
                 const float* q, double scale, double offset, std::size_t n,
                 double* out);
void DotBatchI16(const double* rows, std::size_t stride, std::size_t count,
                 const std::int16_t* q, double scale, double offset,
                 std::size_t n, double* out);
void DotBatchI8(const double* rows, std::size_t stride, std::size_t count,
                const std::int8_t* q, double scale, double offset,
                std::size_t n, double* out);
void GemvF32(const double* a, std::size_t rows, std::size_t n,
             std::size_t stride, const float* x, double scale, double offset,
             double* y);
void GemvI16(const double* a, std::size_t rows, std::size_t n,
             std::size_t stride, const std::int16_t* x, double scale,
             double offset, double* y);
void GemvI8(const double* a, std::size_t rows, std::size_t n,
            std::size_t stride, const std::int8_t* x, double scale,
            double offset, double* y);
}  // namespace scalar

}  // namespace tsc::kernels

#endif  // TSC_LINALG_KERNELS_H_
