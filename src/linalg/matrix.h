#ifndef TSC_LINALG_MATRIX_H_
#define TSC_LINALG_MATRIX_H_

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace tsc {

/// Dense row-major matrix of doubles. This is the in-memory workhorse for
/// datasets, covariance matrices and factor matrices. Row-major layout
/// matches the on-disk format (see storage/row_store.h), so a row of a
/// Matrix and a row read from disk are interchangeable spans.
class Matrix {
 public:
  /// Empty 0x0 matrix.
  Matrix() : rows_(0), cols_(0) {}

  /// Zero-initialized rows x cols matrix.
  Matrix(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

  /// Takes ownership of `data`, which must have rows*cols entries.
  Matrix(std::size_t rows, std::size_t cols, std::vector<double> data);

  /// Builds from nested initializer-style data (convenient in tests).
  static Matrix FromRows(const std::vector<std::vector<double>>& rows);

  /// n x n identity.
  static Matrix Identity(std::size_t n);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  double& operator()(std::size_t i, std::size_t j) {
    return data_[i * cols_ + j];
  }
  double operator()(std::size_t i, std::size_t j) const {
    return data_[i * cols_ + j];
  }

  /// Mutable view of row i.
  std::span<double> Row(std::size_t i) {
    return std::span<double>(data_.data() + i * cols_, cols_);
  }
  std::span<const double> Row(std::size_t i) const {
    return std::span<const double>(data_.data() + i * cols_, cols_);
  }

  /// Copy of column j (columns are strided, so a copy is returned).
  std::vector<double> Col(std::size_t j) const;

  const std::vector<double>& data() const { return data_; }
  std::vector<double>& data() { return data_; }

  /// Transposed copy.
  Matrix Transposed() const;

  /// Square of the Frobenius norm, sum of squared entries.
  double FrobeniusNormSquared() const;
  double FrobeniusNorm() const;

  /// Mean over all cells (the x-bar of the paper's RMSPE definition).
  double MeanCell() const;

  /// In-place scalar multiply.
  void Scale(double factor);

  /// this += other (element-wise). Shapes must match.
  void Add(const Matrix& other);
  /// this -= other (element-wise). Shapes must match.
  void Subtract(const Matrix& other);

  /// Keeps only the first `rows` rows (the phoneNNNN "subset" operation).
  Matrix TopRows(std::size_t rows) const;

  /// Appends the rows of `other` below this matrix. Column counts must
  /// match (any column count is accepted when this matrix is empty).
  void AppendRows(const Matrix& other);

  /// Multi-line human-readable rendering (small matrices in tests/docs).
  std::string ToString(int precision = 3) const;

  friend bool operator==(const Matrix& a, const Matrix& b) {
    return a.rows_ == b.rows_ && a.cols_ == b.cols_ && a.data_ == b.data_;
  }

 private:
  std::size_t rows_;
  std::size_t cols_;
  std::vector<double> data_;
};

/// Returns a * b. Requires a.cols() == b.rows().
Matrix Multiply(const Matrix& a, const Matrix& b);

/// Returns a^T * a accumulated in one sweep over the rows of a: the
/// column-to-column similarity matrix C of the paper (Figure 2) for an
/// in-memory matrix.
Matrix GramMatrix(const Matrix& a);

/// Returns a * v. Requires a.cols() == v.size().
std::vector<double> MultiplyVector(const Matrix& a,
                                   std::span<const double> v);

/// Returns a^T * v. Requires a.rows() == v.size().
std::vector<double> MultiplyTransposeVector(const Matrix& a,
                                            std::span<const double> v);

/// Max absolute element of (a - b); shapes must match.
double MaxAbsDifference(const Matrix& a, const Matrix& b);

}  // namespace tsc

#endif  // TSC_LINALG_MATRIX_H_
