#include "linalg/svd.h"

#include <algorithm>
#include <cmath>

#include "linalg/vector_ops.h"
#include "util/logging.h"

namespace tsc {

StatusOr<SvdResult> TruncatedSvd(const Matrix& x, std::size_t k,
                                 EigenSolverKind kind) {
  if (x.cols() == 0 || x.rows() == 0) {
    return Status::InvalidArgument("TruncatedSvd requires a non-empty matrix");
  }
  const std::size_t m = x.cols();
  k = std::min(k, std::min(m, x.rows()));

  const Matrix c = GramMatrix(x);
  TSC_ASSIGN_OR_RETURN(EigenDecomposition eigen, SymmetricEigen(c, kind));

  // Eigenvalues of C are squared singular values; clamp the tiny negatives
  // that finite precision can produce and drop components below the
  // relative tolerance (they carry no signal and make U columns undefined).
  const double lambda_max = std::max(0.0, eigen.eigenvalues.empty()
                                              ? 0.0
                                              : eigen.eigenvalues.front());
  std::size_t effective = 0;
  for (std::size_t j = 0; j < k; ++j) {
    if (eigen.eigenvalues[j] > kSvdRelativeTolerance * lambda_max &&
        eigen.eigenvalues[j] > 0.0) {
      ++effective;
    } else {
      break;
    }
  }

  SvdResult result;
  result.singular_values.resize(effective);
  result.v = Matrix(m, effective);
  for (std::size_t j = 0; j < effective; ++j) {
    result.singular_values[j] = std::sqrt(eigen.eigenvalues[j]);
    for (std::size_t i = 0; i < m; ++i) {
      result.v(i, j) = eigen.eigenvectors(i, j);
    }
  }

  // U = X V diag(s)^-1, row by row (Eq. 11 of the paper).
  result.u = Matrix(x.rows(), effective);
  for (std::size_t i = 0; i < x.rows(); ++i) {
    const std::span<const double> row = x.Row(i);
    for (std::size_t j = 0; j < effective; ++j) {
      double proj = 0.0;
      for (std::size_t l = 0; l < m; ++l) proj += row[l] * result.v(l, j);
      result.u(i, j) = proj / result.singular_values[j];
    }
  }
  return result;
}

Matrix ReconstructFromSvd(const SvdResult& svd) {
  const std::size_t n = svd.u.rows();
  const std::size_t m = svd.v.rows();
  Matrix out(n, m);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < m; ++j) {
      double value = 0.0;
      for (std::size_t p = 0; p < svd.rank(); ++p) {
        value += svd.singular_values[p] * svd.u(i, p) * svd.v(j, p);
      }
      out(i, j) = value;
    }
  }
  return out;
}

double OrthonormalityDefect(const Matrix& a) {
  const std::size_t k = a.cols();
  double worst = 0.0;
  for (std::size_t p = 0; p < k; ++p) {
    const std::vector<double> cp = a.Col(p);
    for (std::size_t q = p; q < k; ++q) {
      const std::vector<double> cq = a.Col(q);
      const double dot = Dot(cp, cq);
      const double expected = p == q ? 1.0 : 0.0;
      worst = std::max(worst, std::abs(dot - expected));
    }
  }
  return worst;
}

}  // namespace tsc
