#include "linalg/symmetric_eigen.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/logging.h"

namespace tsc {
namespace {

// ---------------------------------------------------------------------------
// Householder tridiagonalization with accumulation of the orthogonal
// transform (classic tred2, rewritten 0-based). On return `a` holds the
// accumulated transform Q, `d` the diagonal and `e` the subdiagonal
// (e[0] = 0, e[i] couples d[i-1] and d[i]).
// ---------------------------------------------------------------------------
void HouseholderTridiagonalize(Matrix* a_ptr, std::vector<double>* d_ptr,
                               std::vector<double>* e_ptr) {
  Matrix& a = *a_ptr;
  std::vector<double>& d = *d_ptr;
  std::vector<double>& e = *e_ptr;
  const std::size_t n = a.rows();
  d.assign(n, 0.0);
  e.assign(n, 0.0);

  for (std::size_t i = n - 1; i >= 1; --i) {
    const std::size_t l = i - 1;
    double h = 0.0;
    double scale = 0.0;
    if (l > 0) {
      for (std::size_t k = 0; k <= l; ++k) scale += std::abs(a(i, k));
      if (scale == 0.0) {
        e[i] = a(i, l);
      } else {
        for (std::size_t k = 0; k <= l; ++k) {
          a(i, k) /= scale;
          h += a(i, k) * a(i, k);
        }
        double f = a(i, l);
        double g = f >= 0.0 ? -std::sqrt(h) : std::sqrt(h);
        e[i] = scale * g;
        h -= f * g;
        a(i, l) = f - g;
        f = 0.0;
        for (std::size_t j = 0; j <= l; ++j) {
          a(j, i) = a(i, j) / h;
          g = 0.0;
          for (std::size_t k = 0; k <= j; ++k) g += a(j, k) * a(i, k);
          for (std::size_t k = j + 1; k <= l; ++k) g += a(k, j) * a(i, k);
          e[j] = g / h;
          f += e[j] * a(i, j);
        }
        const double hh = f / (h + h);
        for (std::size_t j = 0; j <= l; ++j) {
          f = a(i, j);
          g = e[j] - hh * f;
          e[j] = g;
          for (std::size_t k = 0; k <= j; ++k) {
            a(j, k) -= f * e[k] + g * a(i, k);
          }
        }
      }
    } else {
      e[i] = a(i, l);
    }
    d[i] = h;
    if (i == 1) break;  // avoid size_t underflow in the loop decrement
  }

  d[0] = 0.0;
  e[0] = 0.0;
  // Accumulate the transformation into `a`.
  for (std::size_t i = 0; i < n; ++i) {
    if (d[i] != 0.0) {
      for (std::size_t j = 0; j < i; ++j) {
        double g = 0.0;
        for (std::size_t k = 0; k < i; ++k) g += a(i, k) * a(k, j);
        for (std::size_t k = 0; k < i; ++k) a(k, j) -= g * a(k, i);
      }
    }
    d[i] = a(i, i);
    a(i, i) = 1.0;
    for (std::size_t j = 0; j < i; ++j) {
      a(j, i) = 0.0;
      a(i, j) = 0.0;
    }
  }
}

double SignLike(double magnitude, double sign_source) {
  return sign_source >= 0.0 ? std::abs(magnitude) : -std::abs(magnitude);
}

// ---------------------------------------------------------------------------
// Implicit-shift QL iteration on a symmetric tridiagonal matrix (classic
// tqli, 0-based), rotating the columns of `z` along. Returns false if a
// single eigenvalue fails to converge within the iteration cap.
// ---------------------------------------------------------------------------
bool TridiagonalQl(std::vector<double>* d_ptr, std::vector<double>* e_ptr,
                   Matrix* z_ptr) {
  std::vector<double>& d = *d_ptr;
  std::vector<double>& e = *e_ptr;
  Matrix& z = *z_ptr;
  const std::size_t n = d.size();
  if (n == 0) return true;

  // Shift the subdiagonal so e[i] couples d[i] and d[i+1].
  for (std::size_t i = 1; i < n; ++i) e[i - 1] = e[i];
  e[n - 1] = 0.0;

  constexpr int kMaxIterations = 64;
  for (std::size_t l = 0; l < n; ++l) {
    int iter = 0;
    std::size_t m;
    do {
      for (m = l; m + 1 < n; ++m) {
        const double dd = std::abs(d[m]) + std::abs(d[m + 1]);
        if (std::abs(e[m]) <= std::numeric_limits<double>::epsilon() * dd) {
          break;
        }
      }
      if (m != l) {
        if (iter++ == kMaxIterations) return false;
        double g = (d[l + 1] - d[l]) / (2.0 * e[l]);
        double r = std::hypot(g, 1.0);
        g = d[m] - d[l] + e[l] / (g + SignLike(r, g));
        double s = 1.0;
        double c = 1.0;
        double p = 0.0;
        for (std::size_t i = m; i > l; --i) {
          const std::size_t im1 = i - 1;
          double f = s * e[im1];
          const double b = c * e[im1];
          r = std::hypot(f, g);
          e[i] = r;
          if (r == 0.0) {
            d[i] -= p;
            e[m] = 0.0;
            break;
          }
          s = f / r;
          c = g / r;
          g = d[i] - p;
          r = (d[im1] - g) * s + 2.0 * c * b;
          p = s * r;
          d[i] = g + p;
          g = c * r - b;
          for (std::size_t k = 0; k < n; ++k) {
            f = z(k, i);
            z(k, i) = s * z(k, im1) + c * f;
            z(k, im1) = c * z(k, im1) - s * f;
          }
        }
        if (r == 0.0 && m > l) continue;
        d[l] -= p;
        e[l] = g;
        e[m] = 0.0;
      }
    } while (m != l);
  }
  return true;
}

// ---------------------------------------------------------------------------
// Cyclic Jacobi: repeated 2x2 rotations annihilating the largest remaining
// off-diagonal entries, sweeping all (p, q) pairs until the off-diagonal
// Frobenius norm is negligible.
// ---------------------------------------------------------------------------
bool JacobiEigen(Matrix* a_ptr, Matrix* v_ptr, std::vector<double>* d_ptr) {
  Matrix& a = *a_ptr;
  Matrix& v = *v_ptr;
  const std::size_t n = a.rows();
  v = Matrix::Identity(n);

  constexpr int kMaxSweeps = 64;
  for (int sweep = 0; sweep < kMaxSweeps; ++sweep) {
    double off = 0.0;
    for (std::size_t p = 0; p < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) off += a(p, q) * a(p, q);
    }
    if (off <= 1e-26 * std::max(1.0, a.FrobeniusNormSquared())) {
      d_ptr->resize(n);
      for (std::size_t i = 0; i < n; ++i) (*d_ptr)[i] = a(i, i);
      return true;
    }
    for (std::size_t p = 0; p < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        const double apq = a(p, q);
        if (apq == 0.0) continue;
        const double theta = (a(q, q) - a(p, p)) / (2.0 * apq);
        const double t = SignLike(1.0, theta) /
                         (std::abs(theta) + std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;
        const double tau = s / (1.0 + c);
        const double app = a(p, p);
        const double aqq = a(q, q);
        a(p, p) = app - t * apq;
        a(q, q) = aqq + t * apq;
        a(p, q) = 0.0;
        a(q, p) = 0.0;
        for (std::size_t k = 0; k < n; ++k) {
          if (k != p && k != q) {
            const double akp = a(k, p);
            const double akq = a(k, q);
            a(k, p) = akp - s * (akq + tau * akp);
            a(p, k) = a(k, p);
            a(k, q) = akq + s * (akp - tau * akq);
            a(q, k) = a(k, q);
          }
          const double vkp = v(k, p);
          const double vkq = v(k, q);
          v(k, p) = vkp - s * (vkq + tau * vkp);
          v(k, q) = vkq + s * (vkp - tau * vkq);
        }
      }
    }
  }
  return false;
}

void SortDescendingInPlace(std::vector<double>* eigenvalues, Matrix* vectors) {
  const std::size_t n = eigenvalues->size();
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return (*eigenvalues)[a] > (*eigenvalues)[b];
  });
  std::vector<double> sorted_values(n);
  Matrix sorted_vectors(n, n);
  for (std::size_t j = 0; j < n; ++j) {
    sorted_values[j] = (*eigenvalues)[order[j]];
    for (std::size_t i = 0; i < n; ++i) {
      sorted_vectors(i, j) = (*vectors)(i, order[j]);
    }
  }
  *eigenvalues = std::move(sorted_values);
  *vectors = std::move(sorted_vectors);
}

}  // namespace

StatusOr<EigenDecomposition> SymmetricEigen(const Matrix& s,
                                            EigenSolverKind kind) {
  if (s.rows() != s.cols()) {
    return Status::InvalidArgument("SymmetricEigen requires a square matrix");
  }
  const std::size_t n = s.rows();
  EigenDecomposition result;
  if (n == 0) {
    result.eigenvectors = Matrix(0, 0);
    return result;
  }
  if (n == 1) {
    result.eigenvalues = {s(0, 0)};
    result.eigenvectors = Matrix::Identity(1);
    return result;
  }

  if (kind == EigenSolverKind::kHouseholderQl) {
    Matrix work = s;
    std::vector<double> d;
    std::vector<double> e;
    HouseholderTridiagonalize(&work, &d, &e);
    if (!TridiagonalQl(&d, &e, &work)) {
      return Status::Internal("QL iteration failed to converge");
    }
    result.eigenvalues = std::move(d);
    result.eigenvectors = std::move(work);
  } else {
    Matrix work = s;
    Matrix vectors;
    std::vector<double> d;
    if (!JacobiEigen(&work, &vectors, &d)) {
      return Status::Internal("Jacobi iteration failed to converge");
    }
    result.eigenvalues = std::move(d);
    result.eigenvectors = std::move(vectors);
  }
  SortDescendingInPlace(&result.eigenvalues, &result.eigenvectors);
  return result;
}

double EigenResidual(const Matrix& s, const EigenDecomposition& eigen) {
  const std::size_t n = s.rows();
  double worst = 0.0;
  for (std::size_t j = 0; j < n; ++j) {
    const std::vector<double> z = eigen.eigenvectors.Col(j);
    const std::vector<double> sz = MultiplyVector(s, z);
    for (std::size_t i = 0; i < n; ++i) {
      worst = std::max(worst, std::abs(sz[i] - eigen.eigenvalues[j] * z[i]));
    }
  }
  return worst;
}

}  // namespace tsc
