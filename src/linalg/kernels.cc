#include "linalg/kernels.h"

#include <cstdlib>
#include <cstring>

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#define TSC_KERNELS_X86 1
#endif

namespace tsc::kernels {

// ---------------------------------------------------------------------------
// Scalar reference tier.
// ---------------------------------------------------------------------------

namespace scalar {

double Dot(const double* a, const double* b, std::size_t n) {
  double total = 0.0;
  for (std::size_t i = 0; i < n; ++i) total += a[i] * b[i];
  return total;
}

void Axpy(double alpha, const double* x, double* y, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) y[i] += alpha * x[i];
}

void DotBatch(const double* rows, std::size_t stride, std::size_t count,
              const double* x, std::size_t n, double* out) {
  for (std::size_t r = 0; r < count; ++r) {
    out[r] = Dot(rows + r * stride, x, n);
  }
}

void Gemv(const double* a, std::size_t rows, std::size_t n,
          std::size_t stride, const double* x, double* y) {
  for (std::size_t r = 0; r < rows; ++r) {
    y[r] += Dot(a + r * stride, x, n);
  }
}

void GemmNT(const double* a, std::size_t m, std::size_t lda, const double* b,
            std::size_t n, std::size_t ldb, std::size_t k, double* c,
            std::size_t ldc) {
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      c[i * ldc + j] = Dot(a + i * lda, b + j * ldb, k);
    }
  }
}

// Fused dequantize kernels, one family per code type. The decode is
// offset + scale * double(code) applied element-wise inside the loop
// (the f32 family is called with scale = 1, offset = 0, which is exact).
#define TSC_SCALAR_QUANT_KERNELS(SUFFIX, QTYPE)                           \
  double Dot##SUFFIX(const QTYPE* q, double scale, double offset,         \
                     const double* b, std::size_t n) {                    \
    double total = 0.0;                                                   \
    for (std::size_t i = 0; i < n; ++i) {                                 \
      total += (offset + scale * static_cast<double>(q[i])) * b[i];       \
    }                                                                     \
    return total;                                                         \
  }                                                                       \
  void DotBatch##SUFFIX(const double* rows, std::size_t stride,           \
                        std::size_t count, const QTYPE* q, double scale,  \
                        double offset, std::size_t n, double* out) {      \
    for (std::size_t r = 0; r < count; ++r) {                             \
      out[r] = Dot##SUFFIX(q, scale, offset, rows + r * stride, n);       \
    }                                                                     \
  }                                                                       \
  void Gemv##SUFFIX(const double* a, std::size_t rows, std::size_t n,     \
                    std::size_t stride, const QTYPE* x, double scale,     \
                    double offset, double* y) {                           \
    for (std::size_t r = 0; r < rows; ++r) {                              \
      y[r] += Dot##SUFFIX(x, scale, offset, a + r * stride, n);           \
    }                                                                     \
  }

TSC_SCALAR_QUANT_KERNELS(F32, float)
TSC_SCALAR_QUANT_KERNELS(I16, std::int16_t)
TSC_SCALAR_QUANT_KERNELS(I8, std::int8_t)
#undef TSC_SCALAR_QUANT_KERNELS

}  // namespace scalar

// ---------------------------------------------------------------------------
// AVX2 + FMA tier. Compiled with a per-function target attribute so the
// translation unit itself stays buildable at the portable baseline; the
// functions are only ever called after the runtime CPU check passes.
// ---------------------------------------------------------------------------

#ifdef TSC_KERNELS_X86
namespace avx2 {

__attribute__((target("avx2,fma"))) inline double HorizontalSum(__m256d v) {
  const __m128d lo = _mm256_castpd256_pd128(v);
  const __m128d hi = _mm256_extractf128_pd(v, 1);
  const __m128d sum2 = _mm_add_pd(lo, hi);
  const __m128d swapped = _mm_unpackhi_pd(sum2, sum2);
  return _mm_cvtsd_f64(_mm_add_sd(sum2, swapped));
}

__attribute__((target("avx2,fma"))) double Dot(const double* a,
                                               const double* b,
                                               std::size_t n) {
  // Four independent accumulators hide the FMA latency chain; 16 lanes
  // per iteration keeps the loads streaming.
  __m256d acc0 = _mm256_setzero_pd();
  __m256d acc1 = _mm256_setzero_pd();
  __m256d acc2 = _mm256_setzero_pd();
  __m256d acc3 = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    acc0 = _mm256_fmadd_pd(_mm256_loadu_pd(a + i),
                           _mm256_loadu_pd(b + i), acc0);
    acc1 = _mm256_fmadd_pd(_mm256_loadu_pd(a + i + 4),
                           _mm256_loadu_pd(b + i + 4), acc1);
    acc2 = _mm256_fmadd_pd(_mm256_loadu_pd(a + i + 8),
                           _mm256_loadu_pd(b + i + 8), acc2);
    acc3 = _mm256_fmadd_pd(_mm256_loadu_pd(a + i + 12),
                           _mm256_loadu_pd(b + i + 12), acc3);
  }
  for (; i + 4 <= n; i += 4) {
    acc0 = _mm256_fmadd_pd(_mm256_loadu_pd(a + i),
                           _mm256_loadu_pd(b + i), acc0);
  }
  double total = HorizontalSum(
      _mm256_add_pd(_mm256_add_pd(acc0, acc1), _mm256_add_pd(acc2, acc3)));
  for (; i < n; ++i) total += a[i] * b[i];
  return total;
}

__attribute__((target("avx2,fma"))) void Axpy(double alpha, const double* x,
                                              double* y, std::size_t n) {
  const __m256d va = _mm256_set1_pd(alpha);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_pd(
        y + i, _mm256_fmadd_pd(va, _mm256_loadu_pd(x + i),
                               _mm256_loadu_pd(y + i)));
    _mm256_storeu_pd(
        y + i + 4, _mm256_fmadd_pd(va, _mm256_loadu_pd(x + i + 4),
                                   _mm256_loadu_pd(y + i + 4)));
  }
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(
        y + i, _mm256_fmadd_pd(va, _mm256_loadu_pd(x + i),
                               _mm256_loadu_pd(y + i)));
  }
  for (; i < n; ++i) y[i] += alpha * x[i];
}

/// Two rows against one x: shares every load of x across both rows.
__attribute__((target("avx2,fma"))) inline void Dot2(
    const double* r0, const double* r1, const double* x, std::size_t n,
    double* out0, double* out1) {
  __m256d acc0 = _mm256_setzero_pd();
  __m256d acc1 = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d vx = _mm256_loadu_pd(x + i);
    acc0 = _mm256_fmadd_pd(_mm256_loadu_pd(r0 + i), vx, acc0);
    acc1 = _mm256_fmadd_pd(_mm256_loadu_pd(r1 + i), vx, acc1);
  }
  double t0 = HorizontalSum(acc0);
  double t1 = HorizontalSum(acc1);
  for (; i < n; ++i) {
    t0 += r0[i] * x[i];
    t1 += r1[i] * x[i];
  }
  *out0 = t0;
  *out1 = t1;
}

__attribute__((target("avx2,fma"))) void DotBatch(
    const double* rows, std::size_t stride, std::size_t count,
    const double* x, std::size_t n, double* out) {
  std::size_t r = 0;
  for (; r + 2 <= count; r += 2) {
    Dot2(rows + r * stride, rows + (r + 1) * stride, x, n, out + r,
         out + r + 1);
  }
  if (r < count) out[r] = Dot(rows + r * stride, x, n);
}

__attribute__((target("avx2,fma"))) void Gemv(const double* a,
                                              std::size_t rows, std::size_t n,
                                              std::size_t stride,
                                              const double* x, double* y) {
  std::size_t r = 0;
  for (; r + 2 <= rows; r += 2) {
    double t0;
    double t1;
    Dot2(a + r * stride, a + (r + 1) * stride, x, n, &t0, &t1);
    y[r] += t0;
    y[r + 1] += t1;
  }
  if (r < rows) y[r] += Dot(a + r * stride, x, n);
}

/// 2x2 register-blocked tile: 4 accumulators, every A/B load feeds two
/// FMAs, halving the load-per-flop of the plain dot loop.
__attribute__((target("avx2,fma"))) inline void Gemm2x2(
    const double* a0, const double* a1, const double* b0, const double* b1,
    std::size_t k, double* c00, double* c01, double* c10, double* c11) {
  __m256d v00 = _mm256_setzero_pd();
  __m256d v01 = _mm256_setzero_pd();
  __m256d v10 = _mm256_setzero_pd();
  __m256d v11 = _mm256_setzero_pd();
  std::size_t p = 0;
  for (; p + 4 <= k; p += 4) {
    const __m256d va0 = _mm256_loadu_pd(a0 + p);
    const __m256d va1 = _mm256_loadu_pd(a1 + p);
    const __m256d vb0 = _mm256_loadu_pd(b0 + p);
    const __m256d vb1 = _mm256_loadu_pd(b1 + p);
    v00 = _mm256_fmadd_pd(va0, vb0, v00);
    v01 = _mm256_fmadd_pd(va0, vb1, v01);
    v10 = _mm256_fmadd_pd(va1, vb0, v10);
    v11 = _mm256_fmadd_pd(va1, vb1, v11);
  }
  double t00 = HorizontalSum(v00);
  double t01 = HorizontalSum(v01);
  double t10 = HorizontalSum(v10);
  double t11 = HorizontalSum(v11);
  for (; p < k; ++p) {
    t00 += a0[p] * b0[p];
    t01 += a0[p] * b1[p];
    t10 += a1[p] * b0[p];
    t11 += a1[p] * b1[p];
  }
  *c00 = t00;
  *c01 = t01;
  *c10 = t10;
  *c11 = t11;
}

__attribute__((target("avx2,fma"))) void GemmNT(
    const double* a, std::size_t m, std::size_t lda, const double* b,
    std::size_t n, std::size_t ldb, std::size_t k, double* c,
    std::size_t ldc) {
  std::size_t i = 0;
  for (; i + 2 <= m; i += 2) {
    const double* a0 = a + i * lda;
    const double* a1 = a + (i + 1) * lda;
    double* c0 = c + i * ldc;
    double* c1 = c + (i + 1) * ldc;
    std::size_t j = 0;
    for (; j + 2 <= n; j += 2) {
      Gemm2x2(a0, a1, b + j * ldb, b + (j + 1) * ldb, k, c0 + j, c0 + j + 1,
              c1 + j, c1 + j + 1);
    }
    if (j < n) {
      Dot2(a0, a1, b + j * ldb, k, c0 + j, c1 + j);
    }
  }
  if (i < m) {
    // The odd remainder row runs through the exact same per-cell
    // accumulation as the paired rows (duplicate-row tiles, scratch
    // second outputs): a row's bytes must not depend on its position in
    // the call, or row-partitioned scatter-gather could never merge
    // bit-identically with the unsharded product.
    const double* a0 = a + i * lda;
    double* c0 = c + i * ldc;
    double scratch0;
    double scratch1;
    std::size_t j = 0;
    for (; j + 2 <= n; j += 2) {
      Gemm2x2(a0, a0, b + j * ldb, b + (j + 1) * ldb, k, c0 + j, c0 + j + 1,
              &scratch0, &scratch1);
    }
    if (j < n) {
      Dot2(a0, a0, b + j * ldb, k, c0 + j, &scratch0);
    }
  }
}

// Four-lane load-and-widen of each quantized code type into doubles; the
// affine decode is then one FMA against the broadcast scale/offset. The
// conversion lives entirely in registers — no dequantized buffer exists.
__attribute__((target("avx2,fma"))) inline __m256d LoadQ4F32(const float* q) {
  return _mm256_cvtps_pd(_mm_loadu_ps(q));
}

__attribute__((target("avx2,fma"))) inline __m256d LoadQ4I16(
    const std::int16_t* q) {
  return _mm256_cvtepi32_pd(_mm_cvtepi16_epi32(
      _mm_loadl_epi64(reinterpret_cast<const __m128i*>(q))));
}

__attribute__((target("avx2,fma"))) inline __m256d LoadQ4I8(
    const std::int8_t* q) {
  std::int32_t bits;
  std::memcpy(&bits, q, sizeof(bits));
  return _mm256_cvtepi32_pd(_mm_cvtepi8_epi32(_mm_cvtsi32_si128(bits)));
}

// The fused family per code type. Dot2 converts each q chunk once and
// feeds both rows' FMAs, so in the batch shapes the dequantize cost is
// amortized across the pair on top of the halved load traffic.
#define TSC_AVX2_QUANT_KERNELS(SUFFIX, QTYPE, LOADQ)                        \
  __attribute__((target("avx2,fma"))) double Dot##SUFFIX(                   \
      const QTYPE* q, double scale, double offset, const double* b,         \
      std::size_t n) {                                                      \
    const __m256d vs = _mm256_set1_pd(scale);                               \
    const __m256d vo = _mm256_set1_pd(offset);                              \
    __m256d acc0 = _mm256_setzero_pd();                                     \
    __m256d acc1 = _mm256_setzero_pd();                                     \
    std::size_t i = 0;                                                      \
    for (; i + 8 <= n; i += 8) {                                            \
      const __m256d v0 = _mm256_fmadd_pd(vs, LOADQ(q + i), vo);             \
      const __m256d v1 = _mm256_fmadd_pd(vs, LOADQ(q + i + 4), vo);         \
      acc0 = _mm256_fmadd_pd(v0, _mm256_loadu_pd(b + i), acc0);             \
      acc1 = _mm256_fmadd_pd(v1, _mm256_loadu_pd(b + i + 4), acc1);         \
    }                                                                       \
    for (; i + 4 <= n; i += 4) {                                            \
      const __m256d v = _mm256_fmadd_pd(vs, LOADQ(q + i), vo);              \
      acc0 = _mm256_fmadd_pd(v, _mm256_loadu_pd(b + i), acc0);              \
    }                                                                       \
    double total = HorizontalSum(_mm256_add_pd(acc0, acc1));                \
    for (; i < n; ++i) {                                                    \
      total += (offset + scale * static_cast<double>(q[i])) * b[i];         \
    }                                                                       \
    return total;                                                           \
  }                                                                         \
  __attribute__((target("avx2,fma"))) inline void Dot2##SUFFIX(             \
      const double* r0, const double* r1, const QTYPE* q, double scale,     \
      double offset, std::size_t n, double* out0, double* out1) {           \
    const __m256d vs = _mm256_set1_pd(scale);                               \
    const __m256d vo = _mm256_set1_pd(offset);                              \
    __m256d acc0 = _mm256_setzero_pd();                                     \
    __m256d acc1 = _mm256_setzero_pd();                                     \
    std::size_t i = 0;                                                      \
    for (; i + 4 <= n; i += 4) {                                            \
      const __m256d v = _mm256_fmadd_pd(vs, LOADQ(q + i), vo);              \
      acc0 = _mm256_fmadd_pd(_mm256_loadu_pd(r0 + i), v, acc0);             \
      acc1 = _mm256_fmadd_pd(_mm256_loadu_pd(r1 + i), v, acc1);             \
    }                                                                       \
    double t0 = HorizontalSum(acc0);                                        \
    double t1 = HorizontalSum(acc1);                                        \
    for (; i < n; ++i) {                                                    \
      const double v = offset + scale * static_cast<double>(q[i]);          \
      t0 += r0[i] * v;                                                      \
      t1 += r1[i] * v;                                                      \
    }                                                                       \
    *out0 = t0;                                                             \
    *out1 = t1;                                                             \
  }                                                                         \
  __attribute__((target("avx2,fma"))) void DotBatch##SUFFIX(                \
      const double* rows, std::size_t stride, std::size_t count,            \
      const QTYPE* q, double scale, double offset, std::size_t n,           \
      double* out) {                                                        \
    std::size_t r = 0;                                                      \
    for (; r + 2 <= count; r += 2) {                                        \
      Dot2##SUFFIX(rows + r * stride, rows + (r + 1) * stride, q, scale,    \
                   offset, n, out + r, out + r + 1);                        \
    }                                                                       \
    if (r < count) {                                                        \
      out[r] = Dot##SUFFIX(q, scale, offset, rows + r * stride, n);         \
    }                                                                       \
  }                                                                         \
  __attribute__((target("avx2,fma"))) void Gemv##SUFFIX(                    \
      const double* a, std::size_t rows, std::size_t n, std::size_t stride, \
      const QTYPE* x, double scale, double offset, double* y) {             \
    std::size_t r = 0;                                                      \
    for (; r + 2 <= rows; r += 2) {                                         \
      double t0;                                                            \
      double t1;                                                            \
      Dot2##SUFFIX(a + r * stride, a + (r + 1) * stride, x, scale, offset,  \
                   n, &t0, &t1);                                            \
      y[r] += t0;                                                           \
      y[r + 1] += t1;                                                       \
    }                                                                       \
    if (r < rows) {                                                         \
      y[r] += Dot##SUFFIX(x, scale, offset, a + r * stride, n);             \
    }                                                                       \
  }

TSC_AVX2_QUANT_KERNELS(F32, float, LoadQ4F32)
TSC_AVX2_QUANT_KERNELS(I16, std::int16_t, LoadQ4I16)
TSC_AVX2_QUANT_KERNELS(I8, std::int8_t, LoadQ4I8)
#undef TSC_AVX2_QUANT_KERNELS

}  // namespace avx2
#endif  // TSC_KERNELS_X86

// ---------------------------------------------------------------------------
// Dispatch. Resolved once; every kernel then runs one predictable
// indirect call (or gets inlined into the scalar tier off x86).
// ---------------------------------------------------------------------------

const char* SimdLevelName(SimdLevel level) {
  switch (level) {
    case SimdLevel::kScalar:
      return "scalar";
    case SimdLevel::kAvx2:
      return "avx2";
  }
  return "unknown";
}

SimdLevel ResolveSimdLevel(const char* env_value, bool hw_avx2_fma) {
  if (env_value != nullptr && std::strcmp(env_value, "scalar") == 0) {
    return SimdLevel::kScalar;
  }
  // "avx2" (or no/unknown setting) means: best the hardware offers.
  return hw_avx2_fma ? SimdLevel::kAvx2 : SimdLevel::kScalar;
}

namespace {

bool HardwareHasAvx2Fma() {
#ifdef TSC_KERNELS_X86
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
  return false;
#endif
}

}  // namespace

SimdLevel ActiveSimdLevel() {
  static const SimdLevel level =
      ResolveSimdLevel(std::getenv("TSC_SIMD"), HardwareHasAvx2Fma());
  return level;
}

#ifdef TSC_KERNELS_X86
namespace {
inline bool UseAvx2() { return ActiveSimdLevel() == SimdLevel::kAvx2; }
}  // namespace

double Dot(const double* a, const double* b, std::size_t n) {
  return UseAvx2() ? avx2::Dot(a, b, n) : scalar::Dot(a, b, n);
}

void Axpy(double alpha, const double* x, double* y, std::size_t n) {
  if (UseAvx2()) {
    avx2::Axpy(alpha, x, y, n);
  } else {
    scalar::Axpy(alpha, x, y, n);
  }
}

void DotBatch(const double* rows, std::size_t stride, std::size_t count,
              const double* x, std::size_t n, double* out) {
  if (UseAvx2()) {
    avx2::DotBatch(rows, stride, count, x, n, out);
  } else {
    scalar::DotBatch(rows, stride, count, x, n, out);
  }
}

void Gemv(const double* a, std::size_t rows, std::size_t n,
          std::size_t stride, const double* x, double* y) {
  if (UseAvx2()) {
    avx2::Gemv(a, rows, n, stride, x, y);
  } else {
    scalar::Gemv(a, rows, n, stride, x, y);
  }
}

void GemmNT(const double* a, std::size_t m, std::size_t lda, const double* b,
            std::size_t n, std::size_t ldb, std::size_t k, double* c,
            std::size_t ldc) {
  if (UseAvx2()) {
    avx2::GemmNT(a, m, lda, b, n, ldb, k, c, ldc);
  } else {
    scalar::GemmNT(a, m, lda, b, n, ldb, k, c, ldc);
  }
}

#define TSC_DISPATCH_QUANT_KERNELS(SUFFIX, QTYPE)                           \
  double Dot##SUFFIX(const QTYPE* q, double scale, double offset,           \
                     const double* b, std::size_t n) {                      \
    return UseAvx2() ? avx2::Dot##SUFFIX(q, scale, offset, b, n)            \
                     : scalar::Dot##SUFFIX(q, scale, offset, b, n);         \
  }                                                                         \
  void DotBatch##SUFFIX(const double* rows, std::size_t stride,             \
                        std::size_t count, const QTYPE* q, double scale,    \
                        double offset, std::size_t n, double* out) {        \
    if (UseAvx2()) {                                                        \
      avx2::DotBatch##SUFFIX(rows, stride, count, q, scale, offset, n,      \
                             out);                                          \
    } else {                                                                \
      scalar::DotBatch##SUFFIX(rows, stride, count, q, scale, offset, n,    \
                               out);                                        \
    }                                                                       \
  }                                                                         \
  void Gemv##SUFFIX(const double* a, std::size_t rows, std::size_t n,       \
                    std::size_t stride, const QTYPE* x, double scale,       \
                    double offset, double* y) {                             \
    if (UseAvx2()) {                                                        \
      avx2::Gemv##SUFFIX(a, rows, n, stride, x, scale, offset, y);          \
    } else {                                                                \
      scalar::Gemv##SUFFIX(a, rows, n, stride, x, scale, offset, y);        \
    }                                                                       \
  }

TSC_DISPATCH_QUANT_KERNELS(F32, float)
TSC_DISPATCH_QUANT_KERNELS(I16, std::int16_t)
TSC_DISPATCH_QUANT_KERNELS(I8, std::int8_t)
#undef TSC_DISPATCH_QUANT_KERNELS

#else  // !TSC_KERNELS_X86

double Dot(const double* a, const double* b, std::size_t n) {
  return scalar::Dot(a, b, n);
}
void Axpy(double alpha, const double* x, double* y, std::size_t n) {
  scalar::Axpy(alpha, x, y, n);
}
void DotBatch(const double* rows, std::size_t stride, std::size_t count,
              const double* x, std::size_t n, double* out) {
  scalar::DotBatch(rows, stride, count, x, n, out);
}
void Gemv(const double* a, std::size_t rows, std::size_t n,
          std::size_t stride, const double* x, double* y) {
  scalar::Gemv(a, rows, n, stride, x, y);
}
void GemmNT(const double* a, std::size_t m, std::size_t lda, const double* b,
            std::size_t n, std::size_t ldb, std::size_t k, double* c,
            std::size_t ldc) {
  scalar::GemmNT(a, m, lda, b, n, ldb, k, c, ldc);
}

#define TSC_DISPATCH_QUANT_KERNELS(SUFFIX, QTYPE)                           \
  double Dot##SUFFIX(const QTYPE* q, double scale, double offset,           \
                     const double* b, std::size_t n) {                      \
    return scalar::Dot##SUFFIX(q, scale, offset, b, n);                     \
  }                                                                         \
  void DotBatch##SUFFIX(const double* rows, std::size_t stride,             \
                        std::size_t count, const QTYPE* q, double scale,    \
                        double offset, std::size_t n, double* out) {        \
    scalar::DotBatch##SUFFIX(rows, stride, count, q, scale, offset, n,      \
                             out);                                          \
  }                                                                         \
  void Gemv##SUFFIX(const double* a, std::size_t rows, std::size_t n,       \
                    std::size_t stride, const QTYPE* x, double scale,       \
                    double offset, double* y) {                             \
    scalar::Gemv##SUFFIX(a, rows, n, stride, x, scale, offset, y);          \
  }

TSC_DISPATCH_QUANT_KERNELS(F32, float)
TSC_DISPATCH_QUANT_KERNELS(I16, std::int16_t)
TSC_DISPATCH_QUANT_KERNELS(I8, std::int8_t)
#undef TSC_DISPATCH_QUANT_KERNELS

#endif  // TSC_KERNELS_X86

}  // namespace tsc::kernels
