#ifndef TSC_LINALG_SYMMETRIC_EIGEN_H_
#define TSC_LINALG_SYMMETRIC_EIGEN_H_

#include <vector>

#include "linalg/matrix.h"
#include "util/status.h"

namespace tsc {

/// Result of a symmetric eigendecomposition S = Z diag(w) Z^T.
struct EigenDecomposition {
  /// Eigenvalues sorted in decreasing order.
  std::vector<double> eigenvalues;
  /// n x n orthonormal matrix; column j is the eigenvector of eigenvalues[j].
  Matrix eigenvectors;
};

enum class EigenSolverKind {
  /// Householder tridiagonalization followed by implicit-shift QL.
  /// O(n^3) with a small constant; the default.
  kHouseholderQl,
  /// Cyclic Jacobi rotations. Slower but simpler and extremely robust;
  /// retained as a validation oracle and for the solver ablation bench.
  kCyclicJacobi,
};

/// Computes the full eigendecomposition of the symmetric matrix `s`.
/// Only the lower triangle is required to be populated consistently; the
/// matrix is treated as exactly symmetric. Fails with kInvalidArgument on
/// non-square input and kInternal if the iteration fails to converge
/// (practically unreachable for the covariance matrices this library
/// produces).
StatusOr<EigenDecomposition> SymmetricEigen(
    const Matrix& s, EigenSolverKind kind = EigenSolverKind::kHouseholderQl);

/// Max |S z - w z| over all eigenpairs: residual check used by tests.
double EigenResidual(const Matrix& s, const EigenDecomposition& eigen);

}  // namespace tsc

#endif  // TSC_LINALG_SYMMETRIC_EIGEN_H_
