#include "data/streaming_generator.h"

#include <algorithm>
#include <cmath>

#include "storage/row_store.h"
#include "util/logging.h"

namespace tsc {
namespace {

/// splitmix64 finalizer: derives an independent per-row seed.
std::uint64_t MixSeed(std::uint64_t seed, std::uint64_t row) {
  std::uint64_t z = seed + row * 0x9e3779b97f4a7c15ULL + 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

StreamingPhoneGenerator::StreamingPhoneGenerator(
    const PhoneDatasetConfig& config)
    : config_(config) {
  TSC_CHECK_GT(config.num_customers, 0u);
  TSC_CHECK_GT(config.num_days, 0u);
  TSC_CHECK_GT(config.num_patterns, 0u);
  // Patterns depend only on the seed, not on the row index.
  Rng pattern_rng(config.seed);
  patterns_ = internal_generators::BuildPhoneDayPatterns(
      config.num_patterns, config.num_days, &pattern_rng);
}

void StreamingPhoneGenerator::FillRow(std::size_t index,
                                      std::span<double> out) const {
  TSC_CHECK_LT(index, rows());
  TSC_CHECK_EQ(out.size(), cols());
  Rng rng(MixSeed(config_.seed, index));

  if (rng.Bernoulli(config_.zero_customer_fraction)) {
    std::fill(out.begin(), out.end(), 0.0);
    return;
  }
  // Zipf-tailed volume: draw a uniform rank (with replacement; the
  // in-memory generator permutes ranks without replacement — the
  // marginal volume distribution is the same).
  const double n = static_cast<double>(config_.num_customers);
  const double rank =
      1.0 + static_cast<double>(rng.UniformUint64(config_.num_customers));
  const double volume = config_.base_volume * std::pow(n / rank,
                                                       config_.zipf_skew) /
                        std::pow(n, config_.zipf_skew - 1.0);

  const std::size_t main_pattern =
      static_cast<std::size_t>(rng.UniformUint64(patterns_.size()));
  std::size_t side_pattern =
      static_cast<std::size_t>(rng.UniformUint64(patterns_.size()));
  if (side_pattern == main_pattern) {
    side_pattern = (side_pattern + 1) % patterns_.size();
  }
  const double w_main =
      config_.mixture_concentration +
      rng.UniformDouble() * (1.0 - config_.mixture_concentration);
  const double w_side = 1.0 - w_main;

  for (std::size_t d = 0; d < cols(); ++d) {
    const double shape = w_main * patterns_[main_pattern][d] +
                         w_side * patterns_[side_pattern][d];
    double value = volume * shape *
                   std::max(0.0, 1.0 + rng.Gaussian(0.0, config_.noise_level));
    if (rng.Bernoulli(config_.spike_probability)) {
      value += volume * config_.spike_scale * (0.5 + rng.UniformDouble());
    }
    out[d] = value;
  }
}

Status StreamingPhoneGenerator::WriteToFile(const std::string& path) const {
  TSC_ASSIGN_OR_RETURN(RowStoreWriter writer,
                       RowStoreWriter::Create(path, cols()));
  std::vector<double> row(cols());
  for (std::size_t i = 0; i < rows(); ++i) {
    FillRow(i, row);
    TSC_RETURN_IF_ERROR(writer.AppendRow(row));
  }
  return writer.Close();
}

StatusOr<bool> GeneratedPhoneRowSource::NextRow(std::span<double> out) {
  if (next_row_ >= rows()) return false;
  if (out.size() != cols()) {
    return Status::InvalidArgument("NextRow buffer size != cols");
  }
  generator_.FillRow(next_row_, out);
  ++next_row_;
  return true;
}

}  // namespace tsc
