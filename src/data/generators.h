#ifndef TSC_DATA_GENERATORS_H_
#define TSC_DATA_GENERATORS_H_

#include <cstdint>
#include <cstddef>

#include "data/dataset.h"
#include "util/rng.h"

namespace tsc {

/// Synthetic stand-in for the paper's proprietary AT&T `phone100K` dataset
/// (daily call volume per customer).
///
/// The generator reproduces the three statistical properties the paper's
/// results rest on:
///  1. low intrinsic rank: every customer is (mostly) a mixture of a handful
///     of behavioural patterns over days (weekday business, weekend
///     residential, every-day, month-end billing, seasonal), so SVD
///     concentrates energy in few components;
///  2. heavy-tailed volume skew across customers (the "Zipf-like
///     distribution" of Appendix A), which creates the high-volume
///     outlier rows visible in the paper's scatter plot;
///  3. sparse spiky deviations (isolated busy days) that plain SVD
///     reconstructs poorly but SVDD absorbs as cell deltas, plus a
///     fraction of all-zero customers (the Section 6.2 "practical issue").
struct PhoneDatasetConfig {
  std::size_t num_customers = 2000;
  std::size_t num_days = 366;  ///< the paper's leap-year duration
  std::size_t num_patterns = 6;
  double zipf_skew = 1.1;           ///< volume skew across customers
  double base_volume = 20.0;        ///< median daily dollars for rank-1 usage
  double mixture_concentration = 0.85;  ///< weight on the dominant pattern
  double noise_level = 0.12;        ///< multiplicative day-to-day noise
  double spike_probability = 0.002; ///< per-cell probability of a spike
  double spike_scale = 12.0;        ///< spike magnitude, in multiples of the day value
  double zero_customer_fraction = 0.02;
  std::uint64_t seed = 42;
};

/// Generates a phone-style dataset; rows are labeled cust<i> and columns
/// day<j>, deterministic in the seed.
Dataset GeneratePhoneDataset(const PhoneDatasetConfig& config);

/// Synthetic stand-in for the paper's `stocks` dataset (daily closing
/// prices of 381 stocks over 128 days).
///
/// Prices follow geometric random walks driven by one common market factor
/// plus idiosyncratic noise. This reproduces the two structural facts the
/// paper reports: nearly all stocks hug the first principal component
/// (Appendix A), and successive prices are highly correlated, which makes
/// DCT comparatively strong on this dataset (Section 5.1).
struct StockDatasetConfig {
  std::size_t num_stocks = 381;
  std::size_t num_days = 128;
  double market_volatility = 0.010;  ///< daily market-factor sigma
  double market_drift = 0.0004;
  double beta_mean = 1.0;            ///< exposure to the market factor
  double beta_stddev = 0.35;
  double idiosyncratic_volatility = 0.012;
  double min_initial_price = 5.0;
  double max_initial_price = 400.0;  ///< log-uniform initial prices
  std::uint64_t seed = 7;
};

Dataset GenerateStockDataset(const StockDatasetConfig& config);

/// The third domain the paper's introduction names: "patients, with
/// hourly recordings of their temperature for the past 48 hours".
///
/// Temperatures sit near a personal baseline around 37 C, modulated by a
/// circadian rhythm (trough in the early morning, peak in the late
/// afternoon); a fraction of patients run fever episodes — sustained
/// multi-hour elevations with onset/defervescence ramps — which give the
/// dataset its SVDD-relevant outlier structure. Unlike calls or prices,
/// this is a LOW-VARIANCE signal (a full-scale fever is only ~8% above
/// baseline), exercising the compressors in a regime where the DC
/// component dominates.
struct PatientDatasetConfig {
  std::size_t num_patients = 1000;
  std::size_t num_hours = 48;
  double baseline_mean_c = 36.8;
  double baseline_stddev_c = 0.25;   ///< spread of personal baselines
  double circadian_amplitude_c = 0.35;
  double measurement_noise_c = 0.08;
  double fever_fraction = 0.08;      ///< patients with a fever episode
  double fever_peak_c = 2.5;         ///< episode peak above baseline
  std::uint64_t seed = 17;
};

Dataset GeneratePatientDataset(const PatientDatasetConfig& config);

namespace internal_generators {
/// The behavioural day-profiles the phone generator mixes (weekday,
/// weekend, flat, month-end, seasonal, irregular), each normalized to
/// mean 1. Shared by the in-memory and streaming generators.
std::vector<std::vector<double>> BuildPhoneDayPatterns(
    std::size_t num_patterns, std::size_t num_days, Rng* rng);
}  // namespace internal_generators

/// Exact low-rank matrix: X = sum of `rank` outer products with geometric
/// strengths. Used by tests to verify that SVD at k >= rank reconstructs
/// with (near-)zero error, and by the DataCube benches.
Dataset GenerateLowRankDataset(std::size_t rows, std::size_t cols,
                               std::size_t rank, std::uint64_t seed,
                               double noise = 0.0);

}  // namespace tsc

#endif  // TSC_DATA_GENERATORS_H_
