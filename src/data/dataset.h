#ifndef TSC_DATA_DATASET_H_
#define TSC_DATA_DATASET_H_

#include <string>
#include <vector>

#include "linalg/matrix.h"
#include "util/status.h"

namespace tsc {

/// A named N x M time-sequence collection: N sequences ("customers"),
/// M observations each ("days"). This is the unit every compressor,
/// query engine and benchmark operates on.
struct Dataset {
  std::string name;
  Matrix values;
  std::vector<std::string> row_labels;  ///< optional, size rows() or empty
  std::vector<std::string> col_labels;  ///< optional, size cols() or empty

  std::size_t rows() const { return values.rows(); }
  std::size_t cols() const { return values.cols(); }

  /// Uncompressed size at `bytes_per_value` (the paper's "b", default 8).
  std::uint64_t UncompressedBytes(std::size_t bytes_per_value = 8) const {
    return static_cast<std::uint64_t>(rows()) * cols() * bytes_per_value;
  }

  /// First `n` sequences, labels carried along — the paper's phone1000,
  /// phone2000, ... subsets of phone100K.
  Dataset Subset(std::size_t n) const;
};

/// Saves/loads `dataset.values` as comma-separated text; a header row with
/// column labels is written when present and detected on load.
Status SaveCsv(const Dataset& dataset, const std::string& path);
StatusOr<Dataset> LoadCsv(const std::string& path, const std::string& name);

/// Saves/loads the values in the binary "TSCROWS1" matrix format
/// (storage/row_store.h); labels are not persisted.
Status SaveBinary(const Dataset& dataset, const std::string& path);
StatusOr<Dataset> LoadBinary(const std::string& path, const std::string& name);

}  // namespace tsc

#endif  // TSC_DATA_DATASET_H_
