#ifndef TSC_DATA_STREAMING_GENERATOR_H_
#define TSC_DATA_STREAMING_GENERATOR_H_

#include <string>
#include <vector>

#include "data/generators.h"
#include "storage/row_source.h"
#include "util/status.h"

namespace tsc {

/// Phone-style data generated row by row — for datasets that should never
/// be materialized in memory (the paper's multi-gigabyte setting). Each
/// row is a deterministic function of (seed, row index), so any row can
/// be produced independently and repeatedly: exactly what a multi-pass
/// RowSource needs.
///
/// Statistically this matches GeneratePhoneDataset (same pattern mixture,
/// Zipf-tailed volumes, spikes, zero customers) but is NOT bit-identical
/// to it: the in-memory generator draws customers from one sequential
/// stream, while this one derives an independent stream per row.
class StreamingPhoneGenerator {
 public:
  explicit StreamingPhoneGenerator(const PhoneDatasetConfig& config);

  std::size_t rows() const { return config_.num_customers; }
  std::size_t cols() const { return config_.num_days; }

  /// Generates row `index` into `out` (size cols()). Deterministic.
  void FillRow(std::size_t index, std::span<double> out) const;

  /// Streams every row into a "TSCROWS1" file without materializing the
  /// matrix.
  Status WriteToFile(const std::string& path) const;

 private:
  PhoneDatasetConfig config_;
  std::vector<std::vector<double>> patterns_;
};

/// RowSource over a StreamingPhoneGenerator: the 2- and 3-pass builds run
/// directly against synthetic data with O(M) memory and no file at all.
class GeneratedPhoneRowSource final : public RowSource {
 public:
  explicit GeneratedPhoneRowSource(const PhoneDatasetConfig& config)
      : generator_(config) {}

  std::size_t rows() const override { return generator_.rows(); }
  std::size_t cols() const override { return generator_.cols(); }

  StatusOr<bool> NextRow(std::span<double> out) override;

  const StreamingPhoneGenerator& generator() const { return generator_; }

 protected:
  Status ResetImpl() override {
    next_row_ = 0;
    return Status::Ok();
  }

 private:
  StreamingPhoneGenerator generator_;
  std::size_t next_row_ = 0;
};

}  // namespace tsc

#endif  // TSC_DATA_STREAMING_GENERATOR_H_
