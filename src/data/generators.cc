#include "data/generators.h"

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "util/logging.h"

namespace tsc {
namespace internal_generators {

/// Builds the `num_patterns` day-profiles the customer mixture draws from.
/// Each profile is a non-negative M-vector normalized to mean 1 over its
/// active days, so customer volume separates cleanly from shape.
std::vector<std::vector<double>> BuildPhoneDayPatterns(
    std::size_t num_patterns, std::size_t num_days, Rng* rng) {
  std::vector<std::vector<double>> patterns;
  patterns.reserve(num_patterns);
  auto day_of_week = [](std::size_t d) { return d % 7; };  // 0 = Monday

  for (std::size_t p = 0; p < num_patterns; ++p) {
    std::vector<double> profile(num_days, 0.0);
    switch (p % 6) {
      case 0:  // weekday business caller
        for (std::size_t d = 0; d < num_days; ++d) {
          profile[d] = day_of_week(d) < 5 ? 1.0 : 0.05;
        }
        break;
      case 1:  // weekend residential caller
        for (std::size_t d = 0; d < num_days; ++d) {
          profile[d] = day_of_week(d) >= 5 ? 1.0 : 0.10;
        }
        break;
      case 2:  // every-day flat usage
        for (std::size_t d = 0; d < num_days; ++d) profile[d] = 1.0;
        break;
      case 3:  // month-end billing burst (last 3 days of each 30-day cycle)
        for (std::size_t d = 0; d < num_days; ++d) {
          profile[d] = (d % 30) >= 27 ? 1.0 : 0.15;
        }
        break;
      case 4:  // seasonal (summer-heavy sinusoid over the year)
        for (std::size_t d = 0; d < num_days; ++d) {
          const double phase =
              2.0 * M_PI * static_cast<double>(d) / static_cast<double>(num_days);
          profile[d] = 1.0 + 0.8 * std::sin(phase - M_PI / 2.0);
        }
        break;
      default: {  // smooth irregular shape: low-pass filtered noise
        double state = 1.0;
        for (std::size_t d = 0; d < num_days; ++d) {
          state = 0.92 * state + 0.08 * (1.0 + rng->Gaussian(0.0, 0.8));
          profile[d] = std::max(0.0, state);
        }
        break;
      }
    }
    // Normalize to mean 1 so mixtures keep volume semantics.
    double mean = 0.0;
    for (double v : profile) mean += v;
    mean /= static_cast<double>(num_days);
    if (mean > 0) {
      for (double& v : profile) v /= mean;
    }
    patterns.push_back(std::move(profile));
  }
  return patterns;
}

}  // namespace internal_generators

Dataset GeneratePhoneDataset(const PhoneDatasetConfig& config) {
  TSC_CHECK_GT(config.num_customers, 0u);
  TSC_CHECK_GT(config.num_days, 0u);
  TSC_CHECK_GT(config.num_patterns, 0u);
  Rng rng(config.seed);

  const std::vector<std::vector<double>> patterns =
      internal_generators::BuildPhoneDayPatterns(config.num_patterns,
                                                  config.num_days, &rng);

  // Heavy-tailed per-customer volumes: Zipf over ranks, then shuffled so
  // big customers land anywhere in row order (subsets stay representative).
  std::vector<double> volumes(config.num_customers);
  for (std::size_t i = 0; i < config.num_customers; ++i) {
    const double rank = static_cast<double>(i + 1);
    volumes[i] =
        config.base_volume *
        std::pow(static_cast<double>(config.num_customers) / rank,
                 config.zipf_skew) /
        std::pow(static_cast<double>(config.num_customers), config.zipf_skew - 1.0);
  }
  rng.Shuffle(&volumes);

  Dataset dataset;
  dataset.name = "phone" + std::to_string(config.num_customers);
  dataset.values = Matrix(config.num_customers, config.num_days);
  dataset.row_labels.reserve(config.num_customers);
  dataset.col_labels.reserve(config.num_days);
  for (std::size_t j = 0; j < config.num_days; ++j) {
    dataset.col_labels.push_back("day" + std::to_string(j));
  }

  for (std::size_t i = 0; i < config.num_customers; ++i) {
    dataset.row_labels.push_back("cust" + std::to_string(i));
    if (rng.Bernoulli(config.zero_customer_fraction)) {
      continue;  // all-zero customer, the Section 6.2 practical issue
    }
    // Mixture: one dominant pattern plus a little of one other.
    const std::size_t main_pattern =
        static_cast<std::size_t>(rng.UniformUint64(patterns.size()));
    std::size_t side_pattern =
        static_cast<std::size_t>(rng.UniformUint64(patterns.size()));
    if (side_pattern == main_pattern) {
      side_pattern = (side_pattern + 1) % patterns.size();
    }
    const double w_main = config.mixture_concentration +
                          rng.UniformDouble() * (1.0 - config.mixture_concentration);
    const double w_side = 1.0 - w_main;
    const double volume = volumes[i];

    const std::span<double> row = dataset.values.Row(i);
    for (std::size_t d = 0; d < config.num_days; ++d) {
      const double shape = w_main * patterns[main_pattern][d] +
                           w_side * patterns[side_pattern][d];
      double value = volume * shape *
                     std::max(0.0, 1.0 + rng.Gaussian(0.0, config.noise_level));
      if (rng.Bernoulli(config.spike_probability)) {
        // Isolated busy day: the SVDD outlier population.
        value += volume * config.spike_scale *
                 (0.5 + rng.UniformDouble());
      }
      row[d] = value;
    }
  }
  return dataset;
}

Dataset GenerateStockDataset(const StockDatasetConfig& config) {
  TSC_CHECK_GT(config.num_stocks, 0u);
  TSC_CHECK_GT(config.num_days, 0u);
  TSC_CHECK_GT(config.min_initial_price, 0.0);
  TSC_CHECK_GE(config.max_initial_price, config.min_initial_price);
  Rng rng(config.seed);

  // One common market factor: daily log-returns of "the market".
  std::vector<double> market_return(config.num_days, 0.0);
  for (std::size_t d = 1; d < config.num_days; ++d) {
    market_return[d] =
        rng.Gaussian(config.market_drift, config.market_volatility);
  }

  Dataset dataset;
  dataset.name = "stocks";
  dataset.values = Matrix(config.num_stocks, config.num_days);
  dataset.row_labels.reserve(config.num_stocks);
  for (std::size_t j = 0; j < config.num_days; ++j) {
    dataset.col_labels.push_back("day" + std::to_string(j));
  }

  const double log_lo = std::log(config.min_initial_price);
  const double log_hi = std::log(config.max_initial_price);
  for (std::size_t i = 0; i < config.num_stocks; ++i) {
    dataset.row_labels.push_back("stock" + std::to_string(i));
    const double beta = rng.Gaussian(config.beta_mean, config.beta_stddev);
    double log_price = rng.UniformDouble(log_lo, log_hi);
    const std::span<double> row = dataset.values.Row(i);
    for (std::size_t d = 0; d < config.num_days; ++d) {
      if (d > 0) {
        log_price += beta * market_return[d] +
                     rng.Gaussian(0.0, config.idiosyncratic_volatility);
      }
      row[d] = std::exp(log_price);
    }
  }
  return dataset;
}

Dataset GeneratePatientDataset(const PatientDatasetConfig& config) {
  TSC_CHECK_GT(config.num_patients, 0u);
  TSC_CHECK_GT(config.num_hours, 0u);
  Rng rng(config.seed);

  Dataset dataset;
  dataset.name = "patients" + std::to_string(config.num_patients);
  dataset.values = Matrix(config.num_patients, config.num_hours);
  dataset.row_labels.reserve(config.num_patients);
  for (std::size_t h = 0; h < config.num_hours; ++h) {
    dataset.col_labels.push_back("hour" + std::to_string(h));
  }

  for (std::size_t i = 0; i < config.num_patients; ++i) {
    dataset.row_labels.push_back("patient" + std::to_string(i));
    const double baseline =
        rng.Gaussian(config.baseline_mean_c, config.baseline_stddev_c);
    // Personal circadian phase: everyone troughs early morning, but
    // wake/sleep schedules shift the curve by a few hours.
    const double phase = rng.Gaussian(0.0, 1.5);

    // Fever episode parameters (if any): onset hour, ramp, plateau.
    const bool has_fever = rng.Bernoulli(config.fever_fraction);
    const double onset =
        rng.UniformDouble(0.0, static_cast<double>(config.num_hours));
    const double rise_hours = rng.UniformDouble(2.0, 5.0);
    const double plateau_hours = rng.UniformDouble(3.0, 10.0);
    const double fall_hours = rng.UniformDouble(4.0, 10.0);
    const double peak = config.fever_peak_c * rng.UniformDouble(0.5, 1.0);

    const std::span<double> row = dataset.values.Row(i);
    for (std::size_t h = 0; h < config.num_hours; ++h) {
      const double hour = static_cast<double>(h);
      // Circadian rhythm: minimum ~4am, maximum ~4pm (period 24h).
      const double circadian =
          config.circadian_amplitude_c *
          std::sin(2.0 * M_PI * (hour + phase - 10.0) / 24.0);
      double temperature =
          baseline + circadian + rng.Gaussian(0.0, config.measurement_noise_c);
      if (has_fever) {
        const double t = hour - onset;
        double envelope = 0.0;
        if (t >= 0.0 && t < rise_hours) {
          envelope = t / rise_hours;
        } else if (t >= rise_hours && t < rise_hours + plateau_hours) {
          envelope = 1.0;
        } else if (t >= rise_hours + plateau_hours &&
                   t < rise_hours + plateau_hours + fall_hours) {
          envelope = 1.0 - (t - rise_hours - plateau_hours) / fall_hours;
        }
        temperature += peak * envelope;
      }
      row[h] = temperature;
    }
  }
  return dataset;
}

Dataset GenerateLowRankDataset(std::size_t rows, std::size_t cols,
                               std::size_t rank, std::uint64_t seed,
                               double noise) {
  TSC_CHECK_GT(rows, 0u);
  TSC_CHECK_GT(cols, 0u);
  TSC_CHECK_LE(rank, std::min(rows, cols));
  Rng rng(seed);
  Dataset dataset;
  dataset.name = "lowrank_r" + std::to_string(rank);
  dataset.values = Matrix(rows, cols);
  for (std::size_t p = 0; p < rank; ++p) {
    std::vector<double> left(rows);
    std::vector<double> right(cols);
    for (double& v : left) v = rng.Gaussian();
    for (double& v : right) v = rng.Gaussian();
    const double strength = std::pow(0.6, static_cast<double>(p)) * 10.0;
    for (std::size_t i = 0; i < rows; ++i) {
      for (std::size_t j = 0; j < cols; ++j) {
        dataset.values(i, j) += strength * left[i] * right[j];
      }
    }
  }
  if (noise > 0.0) {
    for (std::size_t i = 0; i < rows; ++i) {
      for (std::size_t j = 0; j < cols; ++j) {
        dataset.values(i, j) += rng.Gaussian(0.0, noise);
      }
    }
  }
  return dataset;
}

}  // namespace tsc
