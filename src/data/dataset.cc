#include "data/dataset.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "storage/row_store.h"
#include "util/logging.h"

namespace tsc {

Dataset Dataset::Subset(std::size_t n) const {
  TSC_CHECK_LE(n, rows());
  Dataset out;
  out.name = name + "_" + std::to_string(n);
  out.values = values.TopRows(n);
  if (row_labels.size() >= n) {
    out.row_labels.assign(row_labels.begin(),
                          row_labels.begin() + static_cast<std::ptrdiff_t>(n));
  }
  out.col_labels = col_labels;
  return out;
}

Status SaveCsv(const Dataset& dataset, const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return Status::IoError("cannot open for writing: " + path);
  if (!dataset.col_labels.empty()) {
    for (std::size_t j = 0; j < dataset.col_labels.size(); ++j) {
      if (j > 0) out << ',';
      out << dataset.col_labels[j];
    }
    out << '\n';
  }
  char buf[48];
  for (std::size_t i = 0; i < dataset.rows(); ++i) {
    for (std::size_t j = 0; j < dataset.cols(); ++j) {
      if (j > 0) out << ',';
      std::snprintf(buf, sizeof(buf), "%.17g", dataset.values(i, j));
      out << buf;
    }
    out << '\n';
  }
  out.flush();
  if (!out) return Status::IoError("write failed: " + path);
  return Status::Ok();
}

StatusOr<Dataset> LoadCsv(const std::string& path, const std::string& name) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open: " + path);
  Dataset dataset;
  dataset.name = name;
  std::vector<std::vector<double>> rows;
  std::string line;
  bool first_line = true;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::vector<double> row;
    std::stringstream ss(line);
    std::string token;
    bool numeric = true;
    std::vector<std::string> tokens;
    while (std::getline(ss, token, ',')) {
      tokens.push_back(token);
      char* end = nullptr;
      const double value = std::strtod(token.c_str(), &end);
      if (end == token.c_str()) {
        numeric = false;
      } else {
        row.push_back(value);
      }
    }
    if (first_line && !numeric) {
      dataset.col_labels = std::move(tokens);
      first_line = false;
      continue;
    }
    first_line = false;
    if (!numeric) {
      return Status::IoError("non-numeric cell in data row of " + path);
    }
    if (!rows.empty() && row.size() != rows.front().size()) {
      return Status::IoError("ragged rows in " + path);
    }
    rows.push_back(std::move(row));
  }
  if (rows.empty()) return Status::IoError("no data rows in " + path);
  dataset.values = Matrix::FromRows(rows);
  return dataset;
}

Status SaveBinary(const Dataset& dataset, const std::string& path) {
  return WriteMatrixFile(path, dataset.values);
}

StatusOr<Dataset> LoadBinary(const std::string& path,
                             const std::string& name) {
  TSC_ASSIGN_OR_RETURN(RowStoreReader reader, RowStoreReader::Open(path));
  Dataset dataset;
  dataset.name = name;
  TSC_ASSIGN_OR_RETURN(dataset.values, reader.ReadAll());
  return dataset;
}

}  // namespace tsc
