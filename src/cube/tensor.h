#ifndef TSC_CUBE_TENSOR_H_
#define TSC_CUBE_TENSOR_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "linalg/matrix.h"
#include "util/status.h"

namespace tsc {

/// Dense tensor of arbitrary order — the "N-mode analysis" the paper
/// notes 3-mode PCA extends to (Section 6.1). Row-major layout: the last
/// axis varies fastest.
class Tensor {
 public:
  Tensor() = default;
  explicit Tensor(std::vector<std::size_t> dims);

  std::size_t order() const { return dims_.size(); }
  const std::vector<std::size_t>& dims() const { return dims_; }
  std::size_t dim(std::size_t axis) const { return dims_[axis]; }
  std::size_t size() const { return data_.size(); }

  /// Element access by multi-index (size must equal order()).
  double& At(std::span<const std::size_t> index) {
    return data_[FlatIndex(index)];
  }
  double At(std::span<const std::size_t> index) const {
    return data_[FlatIndex(index)];
  }

  /// Row-major flat offset of a multi-index.
  std::size_t FlatIndex(std::span<const std::size_t> index) const;
  /// Inverse of FlatIndex.
  std::vector<std::size_t> MultiIndex(std::size_t flat) const;

  /// Contiguous view of the subtensor at index `i` along axis 0 (the
  /// row-major layout makes it one span of size / dim(0) values). This
  /// is how tree-structured consumers (the aggregate rollup hierarchy)
  /// address per-node payload vectors stored in a {nodes, payload}
  /// tensor without going through multi-index arithmetic per element.
  std::span<double> Slice(std::size_t i) {
    const std::size_t stride = data_.size() / dims_[0];
    return std::span<double>(data_.data() + i * stride, stride);
  }
  std::span<const double> Slice(std::size_t i) const {
    const std::size_t stride = data_.size() / dims_[0];
    return std::span<const double>(data_.data() + i * stride, stride);
  }

  const std::vector<double>& data() const { return data_; }
  std::vector<double>& data() { return data_; }

  double FrobeniusNormSquared() const;

 private:
  std::vector<std::size_t> dims_;
  std::vector<std::size_t> strides_;
  std::vector<double> data_;
};

/// Mode-n unfolding: dims[n] x (size / dims[n]); the column index
/// enumerates the remaining axes in ascending order, later axes fastest
/// (consistent with the 3-d DataCube convention).
Matrix UnfoldTensor(const Tensor& tensor, std::size_t mode);

/// Inverse of UnfoldTensor.
Tensor FoldTensor(const Matrix& matrix, const std::vector<std::size_t>& dims,
                  std::size_t mode);

/// Truncated Tucker decomposition of arbitrary order, via HOSVD:
/// X[i...] ~= sum over core entries of G[r...] * prod_n A_n(i_n, r_n).
class NTuckerModel {
 public:
  NTuckerModel() = default;
  NTuckerModel(std::vector<Matrix> factors, Tensor core);

  std::size_t order() const { return factors_.size(); }
  std::vector<std::size_t> ranks() const;

  /// O(prod of ranks) per cell.
  double ReconstructCell(std::span<const std::size_t> index) const;

  std::uint64_t CompressedBytes(std::size_t bytes_per_value = 8) const;

  const std::vector<Matrix>& factors() const { return factors_; }
  const Tensor& core() const { return core_; }

 private:
  std::vector<Matrix> factors_;  ///< factors_[n]: dims[n] x ranks[n]
  Tensor core_;
};

/// HOSVD build: per-mode factors from the top eigenvectors of the mode-n
/// Gram matrices, core by contracting X with the factor transposes.
/// `ranks` must have one entry per mode, each in [1, dims[n]].
StatusOr<NTuckerModel> BuildNTuckerModel(const Tensor& tensor,
                                         const std::vector<std::size_t>& ranks);

}  // namespace tsc

#endif  // TSC_CUBE_TENSOR_H_
