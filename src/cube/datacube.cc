#include "cube/datacube.h"

#include <algorithm>
#include <cmath>

#include "linalg/symmetric_eigen.h"
#include "storage/row_source.h"
#include "util/logging.h"

namespace tsc {
namespace {

/// Maps a cube coordinate to its (row, col) in the mode-n unfolding.
void UnfoldIndex(const std::array<std::size_t, 3>& dims, std::size_t mode,
                 std::size_t i, std::size_t j, std::size_t k,
                 std::size_t* row, std::size_t* col) {
  const std::size_t coords[3] = {i, j, k};
  *row = coords[mode];
  // Remaining axes in ascending order, later axis fastest.
  std::size_t other[2];
  std::size_t other_dims[2];
  std::size_t idx = 0;
  for (std::size_t axis = 0; axis < 3; ++axis) {
    if (axis == mode) continue;
    other[idx] = coords[axis];
    other_dims[idx] = dims[axis];
    ++idx;
  }
  (void)other_dims[0];
  *col = other[0] * other_dims[1] + other[1];
}

}  // namespace

double DataCube::FrobeniusNormSquared() const {
  double total = 0.0;
  for (double v : data_) total += v * v;
  return total;
}

Matrix Unfold(const DataCube& cube, std::size_t mode) {
  TSC_CHECK_LT(mode, 3u);
  const auto& dims = cube.dims();
  const std::size_t rows = dims[mode];
  const std::size_t cols = cube.size() == 0 ? 0 : cube.size() / rows;
  Matrix out(rows, cols);
  for (std::size_t i = 0; i < dims[0]; ++i) {
    for (std::size_t j = 0; j < dims[1]; ++j) {
      for (std::size_t k = 0; k < dims[2]; ++k) {
        std::size_t r = 0;
        std::size_t c = 0;
        UnfoldIndex(dims, mode, i, j, k, &r, &c);
        out(r, c) = cube(i, j, k);
      }
    }
  }
  return out;
}

DataCube Fold(const Matrix& matrix, const std::array<std::size_t, 3>& dims,
              std::size_t mode) {
  TSC_CHECK_LT(mode, 3u);
  TSC_CHECK_EQ(matrix.rows(), dims[mode]);
  DataCube cube(dims[0], dims[1], dims[2]);
  for (std::size_t i = 0; i < dims[0]; ++i) {
    for (std::size_t j = 0; j < dims[1]; ++j) {
      for (std::size_t k = 0; k < dims[2]; ++k) {
        std::size_t r = 0;
        std::size_t c = 0;
        UnfoldIndex(dims, mode, i, j, k, &r, &c);
        cube(i, j, k) = matrix(r, c);
      }
    }
  }
  return cube;
}

double CubeSvddModel::ReconstructCell(std::size_t i, std::size_t j,
                                      std::size_t k) const {
  std::size_t r = 0;
  std::size_t c = 0;
  UnfoldIndex(dims_, mode_, i, j, k, &r, &c);
  return model_.ReconstructCell(r, c);
}

StatusOr<CubeSvddModel> BuildCubeSvddModel(const DataCube& cube,
                                           std::size_t mode,
                                           const SvddBuildOptions& options) {
  if (mode >= 3) return Status::InvalidArgument("mode must be 0, 1 or 2");
  if (cube.size() == 0) return Status::InvalidArgument("empty cube");
  const Matrix unfolded = Unfold(cube, mode);
  if (unfolded.cols() > 4096) {
    // The eigenproblem is on an (M x M) matrix with M = product of the
    // collapsed dims; the paper's advice is to pick a flattening that
    // keeps it "computable within the available memory resources".
    return Status::ResourceExhausted(
        "unfolding produces too many columns; pick another mode");
  }
  MatrixRowSource source(&unfolded);
  TSC_ASSIGN_OR_RETURN(SvddModel model, BuildSvddModel(&source, options));
  return CubeSvddModel(std::move(model), cube.dims(), mode);
}

TuckerModel::TuckerModel(std::array<Matrix, 3> factors, DataCube core)
    : factors_(std::move(factors)), core_(std::move(core)) {
  for (std::size_t n = 0; n < 3; ++n) {
    TSC_CHECK_EQ(factors_[n].cols(), core_.dim(n));
  }
}

double TuckerModel::ReconstructCell(std::size_t i, std::size_t j,
                                    std::size_t k) const {
  const auto r = ranks();
  double value = 0.0;
  for (std::size_t h = 0; h < r[0]; ++h) {
    const double a = factors_[0](i, h);
    if (a == 0.0) continue;
    for (std::size_t l = 0; l < r[1]; ++l) {
      const double ab = a * factors_[1](j, l);
      if (ab == 0.0) continue;
      for (std::size_t t = 0; t < r[2]; ++t) {
        value += ab * factors_[2](k, t) * core_(h, l, t);
      }
    }
  }
  return value;
}

std::uint64_t TuckerModel::CompressedBytes(std::size_t bytes_per_value) const {
  std::uint64_t values = core_.size();
  for (const Matrix& f : factors_) values += f.size();
  return values * bytes_per_value;
}

StatusOr<TuckerModel> BuildTuckerModel(
    const DataCube& cube, const std::array<std::size_t, 3>& ranks) {
  if (cube.size() == 0) return Status::InvalidArgument("empty cube");
  std::array<Matrix, 3> factors;
  for (std::size_t mode = 0; mode < 3; ++mode) {
    if (ranks[mode] == 0 || ranks[mode] > cube.dim(mode)) {
      return Status::InvalidArgument("rank out of range for mode");
    }
    // Factor = top eigenvectors of the mode-n Gram matrix A A^T, where A
    // is the mode-n unfolding; A A^T = Gram(A^T).
    const Matrix unfolded = Unfold(cube, mode);
    const Matrix gram = GramMatrix(unfolded.Transposed());
    TSC_ASSIGN_OR_RETURN(EigenDecomposition eigen, SymmetricEigen(gram));
    Matrix factor(cube.dim(mode), ranks[mode]);
    for (std::size_t c = 0; c < ranks[mode]; ++c) {
      for (std::size_t r = 0; r < cube.dim(mode); ++r) {
        factor(r, c) = eigen.eigenvectors(r, c);
      }
    }
    factors[mode] = std::move(factor);
  }

  // Core G = X x_0 A^T x_1 B^T x_2 C^T, computed cell-wise; the cubes in
  // this library are small enough that the direct O(|X| * r) contraction
  // per mode is fine.
  DataCube core(ranks[0], ranks[1], ranks[2]);
  for (std::size_t h = 0; h < ranks[0]; ++h) {
    for (std::size_t l = 0; l < ranks[1]; ++l) {
      for (std::size_t t = 0; t < ranks[2]; ++t) {
        double total = 0.0;
        for (std::size_t i = 0; i < cube.dim(0); ++i) {
          const double a = factors[0](i, h);
          if (a == 0.0) continue;
          for (std::size_t j = 0; j < cube.dim(1); ++j) {
            const double ab = a * factors[1](j, l);
            if (ab == 0.0) continue;
            for (std::size_t k = 0; k < cube.dim(2); ++k) {
              total += ab * factors[2](k, t) * cube(i, j, k);
            }
          }
        }
        core(h, l, t) = total;
      }
    }
  }
  return TuckerModel(std::move(factors), std::move(core));
}

DataCube GenerateSalesCube(const SalesCubeConfig& config) {
  Rng rng(config.seed);
  DataCube cube(config.num_products, config.num_stores, config.num_weeks);
  // Low multilinear rank: sum of `latent_rank` separable components with
  // non-negative factors (product popularity x store size x seasonality).
  for (std::size_t r = 0; r < config.latent_rank; ++r) {
    std::vector<double> product(config.num_products);
    std::vector<double> store(config.num_stores);
    std::vector<double> week(config.num_weeks);
    for (double& v : product) v = rng.Pareto(1.0, 2.5);
    for (double& v : store) v = 0.5 + rng.UniformDouble() * 2.0;
    const double phase = rng.UniformDouble(0.0, 2.0 * M_PI);
    for (std::size_t w = 0; w < config.num_weeks; ++w) {
      week[w] = 1.0 + 0.5 * std::sin(2.0 * M_PI * static_cast<double>(w) /
                                         static_cast<double>(config.num_weeks) +
                                     phase);
    }
    const double strength = std::pow(0.5, static_cast<double>(r)) * 10.0;
    for (std::size_t i = 0; i < config.num_products; ++i) {
      for (std::size_t j = 0; j < config.num_stores; ++j) {
        for (std::size_t k = 0; k < config.num_weeks; ++k) {
          cube(i, j, k) += strength * product[i] * store[j] * week[k];
        }
      }
    }
  }
  for (std::size_t i = 0; i < config.num_products; ++i) {
    for (std::size_t j = 0; j < config.num_stores; ++j) {
      for (std::size_t k = 0; k < config.num_weeks; ++k) {
        double& cell = cube(i, j, k);
        cell = std::max(0.0, cell * (1.0 + rng.Gaussian(0.0, config.noise)));
        if (rng.Bernoulli(config.spike_probability)) {
          cell += 20.0 * (1.0 + rng.UniformDouble());
        }
      }
    }
  }
  return cube;
}

}  // namespace tsc
