#ifndef TSC_CUBE_DATACUBE_H_
#define TSC_CUBE_DATACUBE_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/svdd_compressor.h"
#include "linalg/matrix.h"
#include "util/rng.h"
#include "util/status.h"

namespace tsc {

/// Dense 3-dimensional array (the Section 6.1 "productid x storeid x
/// weekid DataCube"), stored in row-major order with the last dimension
/// fastest.
class DataCube {
 public:
  DataCube() : dims_{0, 0, 0} {}
  DataCube(std::size_t d0, std::size_t d1, std::size_t d2)
      : dims_{d0, d1, d2}, data_(d0 * d1 * d2, 0.0) {}

  std::size_t dim(std::size_t axis) const { return dims_[axis]; }
  const std::array<std::size_t, 3>& dims() const { return dims_; }
  std::size_t size() const { return data_.size(); }

  double& operator()(std::size_t i, std::size_t j, std::size_t k) {
    return data_[(i * dims_[1] + j) * dims_[2] + k];
  }
  double operator()(std::size_t i, std::size_t j, std::size_t k) const {
    return data_[(i * dims_[1] + j) * dims_[2] + k];
  }

  const std::vector<double>& data() const { return data_; }
  std::vector<double>& data() { return data_; }

  double FrobeniusNormSquared() const;

 private:
  std::array<std::size_t, 3> dims_;
  std::vector<double> data_;
};

/// Mode-n unfolding: a dims[mode] x (product of the other dims) matrix
/// whose row r is the slice of the cube at index r along `mode`. The
/// column index enumerates the remaining axes with the later one fastest.
Matrix Unfold(const DataCube& cube, std::size_t mode);

/// Inverse of Unfold for the given target dims.
DataCube Fold(const Matrix& matrix, const std::array<std::size_t, 3>& dims,
              std::size_t mode);

/// The Section 6.1 flattening approach: compress a chosen unfolding with
/// SVDD and answer cube-cell queries against it. "How dimensions are
/// collapsed makes no difference to the availability of access."
class CubeSvddModel {
 public:
  CubeSvddModel() = default;
  CubeSvddModel(SvddModel model, std::array<std::size_t, 3> dims,
                std::size_t mode)
      : model_(std::move(model)), dims_(dims), mode_(mode) {}

  double ReconstructCell(std::size_t i, std::size_t j, std::size_t k) const;

  std::uint64_t CompressedBytes() const { return model_.CompressedBytes(); }
  std::size_t mode() const { return mode_; }
  const SvddModel& model() const { return model_; }
  const std::array<std::size_t, 3>& dims() const { return dims_; }

 private:
  SvddModel model_;
  std::array<std::size_t, 3> dims_ = {0, 0, 0};
  std::size_t mode_ = 0;
};

/// Compresses `cube` by unfolding along `mode` and running the 3-pass
/// SVDD build on the resulting matrix.
StatusOr<CubeSvddModel> BuildCubeSvddModel(const DataCube& cube,
                                           std::size_t mode,
                                           const SvddBuildOptions& options);

/// Truncated Tucker decomposition (3-mode PCA, the paper's open
/// question): X(i,j,k) ~= sum_{h,l,r} A(i,h) B(j,l) C(k,r) G(h,l,r),
/// computed by HOSVD — mode-n factors from the top eigenvectors of the
/// mode-n Gram matrices, core by projecting the cube onto them.
class TuckerModel {
 public:
  TuckerModel() = default;
  TuckerModel(std::array<Matrix, 3> factors, DataCube core);

  /// O(r0 * r1 * r2) per cell.
  double ReconstructCell(std::size_t i, std::size_t j, std::size_t k) const;

  /// Factor matrices plus core, at b bytes per value.
  std::uint64_t CompressedBytes(std::size_t bytes_per_value = 8) const;

  const std::array<Matrix, 3>& factors() const { return factors_; }
  const DataCube& core() const { return core_; }
  std::array<std::size_t, 3> ranks() const {
    return {factors_[0].cols(), factors_[1].cols(), factors_[2].cols()};
  }

 private:
  std::array<Matrix, 3> factors_;  ///< factors_[n] is dims[n] x ranks[n]
  DataCube core_;
};

StatusOr<TuckerModel> BuildTuckerModel(const DataCube& cube,
                                       const std::array<std::size_t, 3>& ranks);

/// Synthetic sales cube with low multilinear rank plus noise and spikes:
/// the workload for bench/datacube.
struct SalesCubeConfig {
  std::size_t num_products = 120;
  std::size_t num_stores = 30;
  std::size_t num_weeks = 52;
  std::size_t latent_rank = 4;
  double noise = 0.05;
  double spike_probability = 0.001;
  std::uint64_t seed = 11;
};
DataCube GenerateSalesCube(const SalesCubeConfig& config);

}  // namespace tsc

#endif  // TSC_CUBE_DATACUBE_H_
