#include "cube/rollup.h"

#include <algorithm>
#include <bit>
#include <mutex>

#include "linalg/kernels.h"

namespace tsc {

namespace {

/// Smallest power of two >= n (>= 1 so the root always exists).
std::size_t LeafBase(std::size_t n) {
  return std::bit_ceil(std::max<std::size_t>(n, 1));
}

/// Membership test against sorted disjoint runs.
bool InRanges(std::span<const IdRange> ranges, std::size_t id) {
  auto it = std::upper_bound(
      ranges.begin(), ranges.end(), id,
      [](std::size_t v, const IdRange& r) { return v < r.lo; });
  if (it == ranges.begin()) return false;
  return id <= std::prev(it)->hi;
}

/// True when the runs tile [0, n) completely — the full-width fast path
/// where deltas resolve from tree nodes alone.
bool CoversAll(std::span<const IdRange> ranges, std::size_t n) {
  std::size_t next = 0;
  for (const IdRange& r : ranges) {
    if (r.lo > next) return false;
    next = std::max(next, r.hi + 1);
    if (next >= n) return true;
  }
  return next >= n;
}

}  // namespace

std::vector<IdRange> CoalesceIds(std::span<const std::size_t> ids) {
  std::vector<IdRange> runs;
  for (const std::size_t id : ids) {
    if (!runs.empty() && id <= runs.back().hi) continue;
    if (!runs.empty() && id == runs.back().hi + 1) {
      runs.back().hi = id;
    } else {
      runs.push_back({id, id});
    }
  }
  return runs;
}

std::shared_ptr<AggregateHierarchy> AggregateHierarchy::Build(
    const SvddModel& model) {
  std::shared_ptr<AggregateHierarchy> h(new AggregateHierarchy());
  h->model_ = &model;
  h->Populate(model);
  model.AttachDeltaListener(h);
  return h;
}

void AggregateHierarchy::Populate(const SvddModel& model) {
  rows_ = model.rows();
  cols_ = model.cols();
  k_ = model.k();
  row_leaf_base_ = LeafBase(rows_);
  col_leaf_base_ = LeafBase(cols_);
  row_tree_ = Tensor({2 * row_leaf_base_, k_});
  col_tree_ = Tensor({2 * col_leaf_base_, k_});
  delta_tree_ = Tensor({2 * row_leaf_base_, 2});
  row_deltas_.assign(rows_, {});

  // Factor sides: leaves are the (possibly quantization-snapped) U rows
  // and the Lambda-weighted V rows; internal nodes sum their children.
  const Matrix& u = model.svd().u();
  const Matrix& wv = model.svd().weighted_v();
  const auto fill = [k = k_](Tensor& tree, std::size_t leaf_base,
                             const Matrix& leaves, std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) {
      std::span<double> node = tree.Slice(leaf_base + i);
      std::span<const double> row = leaves.Row(i);
      std::copy(row.begin(), row.end(), node.begin());
    }
    for (std::size_t node = leaf_base; node-- > 1;) {
      std::span<double> out = tree.Slice(node);
      kernels::Axpy(1.0, tree.Slice(2 * node).data(), out.data(), k);
      kernels::Axpy(1.0, tree.Slice(2 * node + 1).data(), out.data(), k);
    }
  };
  fill(row_tree_, row_leaf_base_, u, rows_);
  fill(col_tree_, col_leaf_base_, wv, cols_);

  // Delta side: bucket every stored delta by row, sort each row's list
  // by column, then one upward pass for the (sum, count) tree.
  if (cols_ > 0) {
    model.deltas().ForEach([&](std::uint64_t key, double delta) {
      const std::size_t row = static_cast<std::size_t>(key / cols_);
      const std::size_t col = static_cast<std::size_t>(key % cols_);
      if (row < rows_) row_deltas_[row].push_back({col, delta});
    });
  }
  for (std::size_t row = 0; row < rows_; ++row) {
    auto& list = row_deltas_[row];
    std::sort(list.begin(), list.end());
    std::span<double> leaf = delta_tree_.Slice(row_leaf_base_ + row);
    for (const auto& [col, delta] : list) leaf[0] += delta;
    leaf[1] = static_cast<double>(list.size());
  }
  for (std::size_t node = row_leaf_base_; node-- > 1;) {
    std::span<double> out = delta_tree_.Slice(node);
    std::span<const double> lhs = delta_tree_.Slice(2 * node);
    std::span<const double> rhs = delta_tree_.Slice(2 * node + 1);
    out[0] = lhs[0] + rhs[0];
    out[1] = lhs[1] + rhs[1];
  }
}

void AggregateHierarchy::OnRowsAppended(std::size_t new_row_count) {
  (void)new_row_count;
  stale_.store(true, std::memory_order_release);
}

void AggregateHierarchy::EnsureFresh() const {
  if (!stale_.load(std::memory_order_acquire)) return;
  // A fold-in outran the tree span: the first reader re-derives the
  // trees from the grown model under the writer lock; racing readers
  // queue on the lock and then see the fresh state.
  auto* self = const_cast<AggregateHierarchy*>(this);
  const std::unique_lock<std::shared_mutex> lock(delta_mutex_);
  if (!stale_.load(std::memory_order_relaxed)) return;
  self->Populate(*model_);
  stale_.store(false, std::memory_order_release);
}

std::uint64_t AggregateHierarchy::MemoryBytes() const {
  const std::shared_lock<std::shared_mutex> lock(delta_mutex_);
  std::uint64_t bytes =
      (row_tree_.size() + col_tree_.size() + delta_tree_.size()) *
      sizeof(double);
  for (const auto& list : row_deltas_) {
    bytes += list.capacity() * sizeof(std::pair<std::size_t, double>);
  }
  return bytes;
}

void AggregateHierarchy::AccumulateMass(const Tensor& tree,
                                        std::size_t leaf_base,
                                        std::span<const IdRange> ranges,
                                        std::span<double> out,
                                        RollupStats* stats) const {
  for (const IdRange& r : ranges) {
    std::size_t lo = leaf_base + r.lo;
    std::size_t hi = leaf_base + r.hi + 1;  // exclusive
    while (lo < hi) {
      if (lo & 1) {
        kernels::Axpy(1.0, tree.Slice(lo++).data(), out.data(), k_);
        if (stats != nullptr) ++stats->nodes_read;
      }
      if (hi & 1) {
        kernels::Axpy(1.0, tree.Slice(--hi).data(), out.data(), k_);
        if (stats != nullptr) ++stats->nodes_read;
      }
      lo >>= 1;
      hi >>= 1;
    }
  }
}

void AggregateHierarchy::AccumulateRowMass(std::span<const IdRange> row_ranges,
                                           std::span<double> out,
                                           RollupStats* stats) const {
  EnsureFresh();
  // The factor trees were lock-free before lazy rebuilds existed; now a
  // rebuild can replace them, so reads share the same reader lock as
  // the delta side.
  const std::shared_lock<std::shared_mutex> lock(delta_mutex_);
  AccumulateMass(row_tree_, row_leaf_base_, row_ranges, out, stats);
}

void AggregateHierarchy::AccumulateColMass(std::span<const IdRange> col_ranges,
                                           std::span<double> out,
                                           RollupStats* stats) const {
  EnsureFresh();
  const std::shared_lock<std::shared_mutex> lock(delta_mutex_);
  AccumulateMass(col_tree_, col_leaf_base_, col_ranges, out, stats);
}

double AggregateHierarchy::DeltaSum(std::span<const IdRange> row_ranges,
                                    std::span<const IdRange> col_ranges,
                                    RollupStats* stats) const {
  EnsureFresh();
  const std::shared_lock<std::shared_mutex> lock(delta_mutex_);
  return DeltaSumLocked(row_ranges, col_ranges, stats);
}

double AggregateHierarchy::DeltaSumLocked(std::span<const IdRange> row_ranges,
                                          std::span<const IdRange> col_ranges,
                                          RollupStats* stats) const {
  if (CoversAll(col_ranges, cols_)) {
    // Full-width: the canonical decomposition over the (sum, count) tree
    // answers without touching a single per-row list.
    double sum = 0.0;
    for (const IdRange& r : row_ranges) {
      std::size_t lo = row_leaf_base_ + r.lo;
      std::size_t hi = row_leaf_base_ + r.hi + 1;
      while (lo < hi) {
        if (lo & 1) {
          sum += delta_tree_.Slice(lo++)[0];
          if (stats != nullptr) ++stats->nodes_read;
        }
        if (hi & 1) {
          sum += delta_tree_.Slice(--hi)[0];
          if (stats != nullptr) ++stats->nodes_read;
        }
        lo >>= 1;
        hi >>= 1;
      }
    }
    return sum;
  }
  double sum = 0.0;
  VisitRegionDeltasLocked(row_ranges, col_ranges, stats,
                          [&](std::size_t, std::size_t, double delta) {
                            sum += delta;
                          });
  return sum;
}

void AggregateHierarchy::VisitRegionDeltas(
    std::span<const IdRange> row_ranges, std::span<const IdRange> col_ranges,
    RollupStats* stats,
    const std::function<void(std::size_t, std::size_t, double)>& fn) const {
  EnsureFresh();
  const std::shared_lock<std::shared_mutex> lock(delta_mutex_);
  VisitRegionDeltasLocked(row_ranges, col_ranges, stats, fn);
}

void AggregateHierarchy::VisitRegionDeltasLocked(
    std::span<const IdRange> row_ranges, std::span<const IdRange> col_ranges,
    RollupStats* stats,
    const std::function<void(std::size_t, std::size_t, double)>& fn) const {
  for (const IdRange& rr : row_ranges) {
    // Count-pruned descent: a node whose subtree holds zero deltas is
    // skipped whole, so sparse regions cost O(log N), not O(rows).
    const auto descend = [&](const auto& self, std::size_t node,
                             std::size_t lo, std::size_t hi) -> void {
      if (hi < rr.lo || lo > rr.hi) return;
      if (stats != nullptr) ++stats->nodes_read;
      if (delta_tree_.Slice(node)[1] == 0.0) return;
      if (node >= row_leaf_base_) {
        const std::size_t row = node - row_leaf_base_;
        for (const auto& [col, delta] : row_deltas_[row]) {
          if (InRanges(col_ranges, col)) {
            if (stats != nullptr) ++stats->deltas_folded;
            fn(row, col, delta);
          }
        }
        return;
      }
      const std::size_t mid = lo + (hi - lo) / 2;
      self(self, 2 * node, lo, mid);
      self(self, 2 * node + 1, mid + 1, hi);
    };
    descend(descend, 1, 0, row_leaf_base_ - 1);
  }
}

double AggregateHierarchy::RegionSum(std::span<const IdRange> row_ranges,
                                     std::span<const IdRange> col_ranges,
                                     RollupStats* stats) const {
  EnsureFresh();
  // One reader-lock hold for all three tree reads (shared_mutex must
  // not be re-acquired on the same thread, and k_/the trees may be
  // replaced by a concurrent rebuild).
  const std::shared_lock<std::shared_mutex> lock(delta_mutex_);
  std::vector<double> row_mass(k_, 0.0);
  std::vector<double> col_mass(k_, 0.0);
  AccumulateMass(row_tree_, row_leaf_base_, row_ranges, row_mass, stats);
  AccumulateMass(col_tree_, col_leaf_base_, col_ranges, col_mass, stats);
  return kernels::Dot(row_mass.data(), col_mass.data(), k_) +
         DeltaSumLocked(row_ranges, col_ranges, stats);
}

void AggregateHierarchy::OnDeltaUpdate(std::size_t row, std::size_t col,
                                       double old_delta, bool had_old,
                                       double new_delta) {
  // A patch beyond the tree's leaf span means rows were folded in since
  // the last (re)build: the delta already sits in the model's table, so
  // marking stale makes the next read's rebuild pick it up.
  if (row >= rows_) {
    stale_.store(true, std::memory_order_release);
    return;
  }
  (void)old_delta;
  (void)had_old;
  const std::unique_lock<std::shared_mutex> lock(delta_mutex_);
  auto& list = row_deltas_[row];
  const auto it = std::lower_bound(
      list.begin(), list.end(), col,
      [](const std::pair<std::size_t, double>& p, std::size_t c) {
        return p.first < c;
      });
  // Trust our own list for the previous value: it is exactly what the
  // tree currently has folded in, even if a notification was ever missed.
  double applied_old = 0.0;
  bool existed = false;
  if (it != list.end() && it->first == col) {
    applied_old = it->second;
    existed = true;
    it->second = new_delta;
  } else {
    list.insert(it, {col, new_delta});
  }
  const double sum_diff = new_delta - applied_old;
  const double count_diff = existed ? 0.0 : 1.0;
  for (std::size_t node = row_leaf_base_ + row;; node >>= 1) {
    std::span<double> payload = delta_tree_.Slice(node);
    payload[0] += sum_diff;
    payload[1] += count_diff;
    if (node == 1) break;
  }
}

}  // namespace tsc
