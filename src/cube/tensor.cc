#include "cube/tensor.h"

#include <algorithm>
#include <cmath>

#include "linalg/symmetric_eigen.h"
#include "linalg/svd.h"
#include "util/logging.h"

namespace tsc {
namespace {

/// (row, col) of a multi-index in the mode-n unfolding.
void UnfoldCoords(const std::vector<std::size_t>& dims, std::size_t mode,
                  std::span<const std::size_t> index, std::size_t* row,
                  std::size_t* col) {
  *row = index[mode];
  std::size_t c = 0;
  for (std::size_t axis = 0; axis < dims.size(); ++axis) {
    if (axis == mode) continue;
    c = c * dims[axis] + index[axis];
  }
  *col = c;
}

/// Advances a multi-index odometer-style; returns false after the last.
bool NextIndex(const std::vector<std::size_t>& dims,
               std::vector<std::size_t>* index) {
  for (std::size_t axis = dims.size(); axis-- > 0;) {
    if (++(*index)[axis] < dims[axis]) return true;
    (*index)[axis] = 0;
  }
  return false;
}

}  // namespace

Tensor::Tensor(std::vector<std::size_t> dims) : dims_(std::move(dims)) {
  TSC_CHECK(!dims_.empty());
  std::size_t total = 1;
  strides_.resize(dims_.size());
  for (std::size_t axis = dims_.size(); axis-- > 0;) {
    TSC_CHECK_GT(dims_[axis], 0u);
    strides_[axis] = total;
    total *= dims_[axis];
  }
  data_.assign(total, 0.0);
}

std::size_t Tensor::FlatIndex(std::span<const std::size_t> index) const {
  TSC_DCHECK(index.size() == dims_.size());
  std::size_t flat = 0;
  for (std::size_t axis = 0; axis < dims_.size(); ++axis) {
    TSC_DCHECK(index[axis] < dims_[axis]);
    flat += index[axis] * strides_[axis];
  }
  return flat;
}

std::vector<std::size_t> Tensor::MultiIndex(std::size_t flat) const {
  TSC_CHECK_LT(flat, data_.size());
  std::vector<std::size_t> index(dims_.size());
  for (std::size_t axis = 0; axis < dims_.size(); ++axis) {
    index[axis] = flat / strides_[axis];
    flat %= strides_[axis];
  }
  return index;
}

double Tensor::FrobeniusNormSquared() const {
  double total = 0.0;
  for (const double v : data_) total += v * v;
  return total;
}

Matrix UnfoldTensor(const Tensor& tensor, std::size_t mode) {
  TSC_CHECK_LT(mode, tensor.order());
  const std::size_t rows = tensor.dim(mode);
  const std::size_t cols = tensor.size() / rows;
  Matrix out(rows, cols);
  std::vector<std::size_t> index(tensor.order(), 0);
  do {
    std::size_t r = 0;
    std::size_t c = 0;
    UnfoldCoords(tensor.dims(), mode, index, &r, &c);
    out(r, c) = tensor.At(index);
  } while (NextIndex(tensor.dims(), &index));
  return out;
}

Tensor FoldTensor(const Matrix& matrix, const std::vector<std::size_t>& dims,
                  std::size_t mode) {
  TSC_CHECK_LT(mode, dims.size());
  TSC_CHECK_EQ(matrix.rows(), dims[mode]);
  Tensor out(dims);
  std::vector<std::size_t> index(dims.size(), 0);
  do {
    std::size_t r = 0;
    std::size_t c = 0;
    UnfoldCoords(dims, mode, index, &r, &c);
    out.At(index) = matrix(r, c);
  } while (NextIndex(dims, &index));
  return out;
}

NTuckerModel::NTuckerModel(std::vector<Matrix> factors, Tensor core)
    : factors_(std::move(factors)), core_(std::move(core)) {
  TSC_CHECK_EQ(factors_.size(), core_.order());
  for (std::size_t n = 0; n < factors_.size(); ++n) {
    TSC_CHECK_EQ(factors_[n].cols(), core_.dim(n));
  }
}

std::vector<std::size_t> NTuckerModel::ranks() const {
  std::vector<std::size_t> r(order());
  for (std::size_t n = 0; n < order(); ++n) r[n] = core_.dim(n);
  return r;
}

double NTuckerModel::ReconstructCell(
    std::span<const std::size_t> index) const {
  TSC_CHECK_EQ(index.size(), order());
  // value = sum over all core entries of G[r] * prod_n A_n(i_n, r_n).
  double value = 0.0;
  std::vector<std::size_t> r(order(), 0);
  do {
    double term = core_.At(r);
    if (term != 0.0) {
      for (std::size_t n = 0; n < order(); ++n) {
        term *= factors_[n](index[n], r[n]);
        if (term == 0.0) break;
      }
      value += term;
    }
  } while (NextIndex(core_.dims(), &r));
  return value;
}

std::uint64_t NTuckerModel::CompressedBytes(std::size_t bytes_per_value) const {
  std::uint64_t values = core_.size();
  for (const Matrix& f : factors_) values += f.size();
  return values * bytes_per_value;
}

StatusOr<NTuckerModel> BuildNTuckerModel(
    const Tensor& tensor, const std::vector<std::size_t>& ranks) {
  if (tensor.size() == 0) return Status::InvalidArgument("empty tensor");
  if (ranks.size() != tensor.order()) {
    return Status::InvalidArgument("ranks size != tensor order");
  }
  std::vector<Matrix> factors(tensor.order());
  for (std::size_t mode = 0; mode < tensor.order(); ++mode) {
    if (ranks[mode] == 0 || ranks[mode] > tensor.dim(mode)) {
      return Status::InvalidArgument("rank out of range for mode");
    }
    const Matrix unfolded = UnfoldTensor(tensor, mode);
    const Matrix gram = GramMatrix(unfolded.Transposed());
    TSC_ASSIGN_OR_RETURN(EigenDecomposition eigen, SymmetricEigen(gram));
    Matrix factor(tensor.dim(mode), ranks[mode]);
    for (std::size_t c = 0; c < ranks[mode]; ++c) {
      for (std::size_t r = 0; r < tensor.dim(mode); ++r) {
        factor(r, c) = eigen.eigenvectors(r, c);
      }
    }
    factors[mode] = std::move(factor);
  }

  // Core: G[r...] = sum_x X[i...] prod_n A_n(i_n, r_n). Direct
  // O(|X| * |G|) contraction; fine at the library's tensor scales.
  Tensor core(ranks);
  std::vector<std::size_t> x_index(tensor.order(), 0);
  do {
    const double x = tensor.At(x_index);
    if (x == 0.0) continue;
    std::vector<std::size_t> r(tensor.order(), 0);
    do {
      double term = x;
      for (std::size_t n = 0; n < tensor.order(); ++n) {
        term *= factors[n](x_index[n], r[n]);
        if (term == 0.0) break;
      }
      if (term != 0.0) core.At(r) += term;
    } while (NextIndex(core.dims(), &r));
  } while (NextIndex(tensor.dims(), &x_index));

  return NTuckerModel(std::move(factors), std::move(core));
}

}  // namespace tsc
