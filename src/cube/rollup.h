#ifndef TSC_CUBE_ROLLUP_H_
#define TSC_CUBE_ROLLUP_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <shared_mutex>
#include <span>
#include <utility>
#include <vector>

#include "core/delta_listener.h"
#include "core/svdd_compressor.h"
#include "cube/tensor.h"

namespace tsc {

/// One inclusive id run. Selections arrive as sorted, disjoint runs
/// (the planner's id lists coalesced, or the data API's ranges after
/// normalization); every hierarchy query is phrased over them.
struct IdRange {
  std::size_t lo = 0;
  std::size_t hi = 0;

  friend bool operator==(const IdRange&, const IdRange&) = default;
};

/// Coalesces a sorted ascending id list into maximal contiguous runs.
std::vector<IdRange> CoalesceIds(std::span<const std::size_t> ids);

/// Per-query hierarchy work accounting, surfaced as `agg.nodes_read`
/// and the X-Query-Cost `agg_nodes_read` field.
struct RollupStats {
  std::uint64_t nodes_read = 0;     ///< segment-tree nodes consumed
  std::uint64_t deltas_folded = 0;  ///< delta entries folded into sums
};

/// The multi-resolution aggregate hierarchy over the compressed domain:
/// three power-of-two segment trees whose node payloads live in cube
/// Tensors, answering linear aggregates (sum/avg/count) over any
/// (row-range x time-range) from O(k log N + k log M) node reads with
/// no row reconstruction and no delta-table sweep.
///
///   row tree   node = sum of its rows' U coefficients (a k-vector)
///   col tree   node = sum of its columns' Lambda-weighted V rows
///   delta tree node = (sum, count) of stored deltas in its row span,
///              plus per-row (col, delta) lists for partial col ranges
///
/// The factor sides are immutable once built (U and Lambda·V are frozen
/// at model build). The delta side registers as a DeltaUpdateListener
/// on the model, so each PatchCell updates the O(log N) nodes on its
/// leaf-to-root path under a writer lock; queries take the reader side,
/// which is what the tsan hammer exercises.
///
/// Region sum identity (exact up to fp reassociation):
///   sum_{i in R, j in C} X-hat(i,j)
///     = dot(sum_{i in R} u_i, sum_{j in C} lambda.v_j)
///       + sum_{(i,j) in R x C} delta(i,j)
class AggregateHierarchy : public DeltaUpdateListener {
 public:
  /// Builds the three trees from the model's factors and delta table
  /// and registers the result as the model's delta listener. The model
  /// must outlive the hierarchy and not move (the same contract the
  /// QueryExecutor already imposes).
  static std::shared_ptr<AggregateHierarchy> Build(const SvddModel& model);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t k() const { return k_; }
  std::uint64_t MemoryBytes() const;

  /// Accumulates sum_{i in ranges} u_i into out[0..k) (+=, caller
  /// zeroes). O(k log N) — one Axpy per consumed node.
  void AccumulateRowMass(std::span<const IdRange> row_ranges,
                         std::span<double> out, RollupStats* stats) const;
  /// Accumulates sum_{j in ranges} lambda.v_j into out[0..k).
  void AccumulateColMass(std::span<const IdRange> col_ranges,
                         std::span<double> out, RollupStats* stats) const;

  /// Sum of stored deltas inside the region. Full-width column ranges
  /// resolve purely from delta-tree nodes; partial ranges descend the
  /// tree pruning empty subtrees and filter the per-row lists.
  double DeltaSum(std::span<const IdRange> row_ranges,
                  std::span<const IdRange> col_ranges,
                  RollupStats* stats) const;

  /// Visits every stored delta inside the region (used by grouped
  /// aggregates and the compressed-domain fallback's range-indexed
  /// fold). Ordered by row, then column.
  void VisitRegionDeltas(
      std::span<const IdRange> row_ranges,
      std::span<const IdRange> col_ranges, RollupStats* stats,
      const std::function<void(std::size_t row, std::size_t col,
                               double delta)>& fn) const;

  /// The headline query: sum over the region, deltas folded.
  double RegionSum(std::span<const IdRange> row_ranges,
                   std::span<const IdRange> col_ranges,
                   RollupStats* stats) const;

  /// DeltaUpdateListener: O(log N) node updates per PatchCell.
  void OnDeltaUpdate(std::size_t row, std::size_t col, double old_delta,
                     bool had_old, double new_delta) override;

  /// DeltaUpdateListener: FoldInRows grew the model past the tree span.
  /// Marks the hierarchy stale; the next aggregate rebuilds it from the
  /// model (lazily, under the writer lock) before answering, so rollup
  /// answers never silently exclude appended rows.
  void OnRowsAppended(std::size_t new_row_count) override;

  /// Whether a fold-in is pending a rebuild (test/diagnostic hook).
  bool stale() const { return stale_.load(std::memory_order_acquire); }

 private:
  AggregateHierarchy() = default;

  /// (Re)derives every tree from the model's current factors and delta
  /// table. Called at Build, and from EnsureFresh under the writer lock
  /// after a fold-in. The caller synchronizes.
  void Populate(const SvddModel& model);

  /// Lazy rebuild gate, called at the top of every read: cheap acquire
  /// load when fresh; after a fold-in, the first reader re-Populates
  /// under the writer lock while later readers queue on it.
  /// Concurrent PatchCell against the SAME model during the rebuild is
  /// outside the contract (fold-ins are offline batch operations), but
  /// rebuild-vs-reader is fully synchronized.
  void EnsureFresh() const;

  /// Shared canonical-decomposition walk over a {2P, k} factor tree.
  void AccumulateMass(const Tensor& tree, std::size_t leaf_base,
                      std::span<const IdRange> ranges, std::span<double> out,
                      RollupStats* stats) const;

  /// DeltaSum's body; caller holds delta_mutex_ (either side).
  double DeltaSumLocked(std::span<const IdRange> row_ranges,
                        std::span<const IdRange> col_ranges,
                        RollupStats* stats) const;

  /// Count-pruned descent; caller holds delta_mutex_ (either side).
  void VisitRegionDeltasLocked(
      std::span<const IdRange> row_ranges,
      std::span<const IdRange> col_ranges, RollupStats* stats,
      const std::function<void(std::size_t, std::size_t, double)>& fn) const;

  /// The indexed model; outlives the hierarchy (Build's contract).
  /// Read again on stale rebuilds.
  const SvddModel* model_ = nullptr;
  mutable std::atomic<bool> stale_{false};

  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::size_t k_ = 0;

  std::size_t row_leaf_base_ = 1;    ///< P for the row/delta trees
  std::size_t col_leaf_base_ = 1;    ///< P for the col tree
  Tensor row_tree_;                  ///< {2P_rows, k} sums of U rows
  Tensor col_tree_;                  ///< {2P_cols, k} sums of Lambda·V rows
  Tensor delta_tree_;                ///< {2P_rows, 2} = (sum, count)

  /// Per-row (col, delta) lists sorted by column, for partial-width
  /// delta folds. Guarded, with delta_tree_, by delta_mutex_. Since
  /// lazy rebuilds can replace the factor trees too, every tree read —
  /// factor or delta side — now takes the reader lock.
  std::vector<std::vector<std::pair<std::size_t, double>>> row_deltas_;
  mutable std::shared_mutex delta_mutex_;
};

}  // namespace tsc

#endif  // TSC_CUBE_ROLLUP_H_
