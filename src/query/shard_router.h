#ifndef TSC_QUERY_SHARD_ROUTER_H_
#define TSC_QUERY_SHARD_ROUTER_H_

#include <cstddef>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "core/sharded_store.h"
#include "cube/rollup.h"
#include "query/parser.h"

namespace tsc {

class ThreadPool;

/// Scatter-gather aggregate execution over a ShardedStore: translates
/// global row selections into per-shard local selections, runs each
/// shard's compressed-domain / rollup math against that shard's own
/// factors and AggregateHierarchy, and merges the partials in fixed
/// shard order — so results are bit-identical at any thread count (the
/// PR 3 scan contract) and exactly the ordered-sum of the per-shard
/// answers.
///
/// Each shard gets its own hierarchy, registered as that shard model's
/// delta listener: a PatchCell routed by the ShardedStore keeps exactly
/// one shard's rollup fresh in O(log rows_s), and a FoldInRows marks
/// only the grown shards stale.
///
/// The store must outlive the router and not move.
class ShardRouter {
 public:
  /// `enable_rollup` builds one AggregateHierarchy per shard (skipped
  /// when any shard has k == 0, or under TSC_NO_ROLLUP — the same
  /// switches the unsharded executor honors).
  explicit ShardRouter(const ShardedStore* store, bool enable_rollup = true);

  const ShardedStore& store() const { return *store_; }
  std::size_t shard_count() const { return store_->shard_count(); }

  /// Whether per-shard hierarchies exist (the planner's
  /// `rollup_available`).
  bool rollup_enabled() const { return !hierarchies_.empty(); }

  /// Largest shard k — the planner's `model_k` gate for compressed-
  /// domain strategies.
  std::size_t model_k() const;

  /// One shard's hierarchy (null when rollup is disabled).
  const AggregateHierarchy* shard_rollup(std::size_t shard) const {
    return hierarchies_.empty() ? nullptr : hierarchies_[shard].get();
  }

  /// Region sum over global (row runs x col runs): per-shard RegionSum
  /// partials merged in shard order. Requires rollup_enabled().
  double RegionSum(std::span<const IdRange> row_runs,
                   std::span<const IdRange> col_runs,
                   RollupStats* stats) const;

  /// Per-group sums of the selected region — the sharded counterpart of
  /// the executor's compressed-domain math. `row_ids`/`col_ids` are
  /// sorted global selections; the result is indexed exactly like the
  /// unsharded path (one total, or one slot per selected row/col).
  /// Deltas fold through each shard's hierarchy when rollup is enabled,
  /// and through a per-shard delta-table sweep otherwise.
  std::vector<double> GroupedSums(const std::vector<std::size_t>& row_ids,
                                  const std::vector<std::size_t>& col_ids,
                                  GroupBy group_by, RollupStats* stats) const;

  /// Translates global row runs into per-shard local runs (sorted and
  /// disjoint per shard; exposed for tests).
  std::vector<std::vector<IdRange>> PartitionRowRuns(
      std::span<const IdRange> row_runs) const;

  /// Fans per-shard aggregate work out on an internal pool (0/1
  /// disables). Partials are stored per shard and merged in shard order
  /// afterwards, so results are identical to the serial loop.
  void EnableParallelFanOut(std::size_t num_threads);

 private:
  /// Runs fn(shard) for all shards, on the fan-out pool when free
  /// (overlapping calls fall back to serial, the BlockPrefetcher
  /// discipline). fn writes only its own shard's partial slots.
  void ForEachShard(const std::function<void(std::size_t)>& fn) const;

  const ShardedStore* store_;
  std::vector<std::shared_ptr<AggregateHierarchy>> hierarchies_;
  std::shared_ptr<ThreadPool> fan_out_pool_;
  std::shared_ptr<std::mutex> fan_out_mutex_ = std::make_shared<std::mutex>();
};

}  // namespace tsc

#endif  // TSC_QUERY_SHARD_ROUTER_H_
