#include "query/planner.h"

#include <algorithm>
#include <sstream>
#include <vector>

namespace tsc {
namespace {

/// Materializes the intersection of all constraints on one dimension as
/// a sorted id list; no constraint selects everything.
StatusOr<std::vector<std::size_t>> ResolveDimension(
    const QueryAst& ast, bool is_row, std::size_t extent) {
  std::vector<bool> selected(extent, true);
  bool constrained = false;
  for (const DimensionConstraint& constraint : ast.constraints) {
    if (constraint.is_row != is_row) continue;
    std::vector<bool> in_constraint(extent, false);
    for (const IndexRange& range : constraint.ranges) {
      if (range.hi >= extent) {
        return Status::OutOfRange(
            std::string(is_row ? "row" : "col") + " index " +
            std::to_string(range.hi) + " out of range (extent " +
            std::to_string(extent) + ")");
      }
      for (std::size_t i = range.lo; i <= range.hi; ++i) {
        in_constraint[i] = true;
      }
    }
    for (std::size_t i = 0; i < extent; ++i) {
      selected[i] = selected[i] && in_constraint[i];
    }
    constrained = true;
  }
  std::vector<std::size_t> ids;
  for (std::size_t i = 0; i < extent; ++i) {
    if (selected[i]) ids.push_back(i);
  }
  if (constrained && ids.empty()) {
    return Status::InvalidArgument("predicate selects no " +
                                   std::string(is_row ? "rows" : "columns"));
  }
  return ids;
}

bool IsLinearAggregate(AggregateFn fn) {
  return fn == AggregateFn::kSum || fn == AggregateFn::kAvg ||
         fn == AggregateFn::kCount;
}

}  // namespace

const char* ExecutionStrategyName(ExecutionStrategy strategy) {
  switch (strategy) {
    case ExecutionStrategy::kRowReconstruction:
      return "row-reconstruction";
    case ExecutionStrategy::kCompressedDomain:
      return "compressed-domain";
    case ExecutionStrategy::kRollup:
      return "rollup";
  }
  return "?";
}

std::string QueryPlan::ToString() const {
  std::ostringstream out;
  out << "plan: " << row_ids.size() << " rows x " << col_ids.size()
      << " cols (" << CellCount() << " cells)";
  if (group_by == GroupBy::kRow) out << ", grouped by row";
  if (group_by == GroupBy::kCol) out << ", grouped by col";
  out << "\n";
  for (std::size_t i = 0; i < aggregates.size(); ++i) {
    out << "  " << AggregateFnName(aggregates[i]) << "(value) via "
        << ExecutionStrategyName(strategies[i]) << "\n";
  }
  return out.str();
}

StatusOr<QueryPlan> PlanQuery(const QueryAst& ast, std::size_t num_rows,
                              std::size_t num_cols, std::size_t model_k,
                              bool rollup_available) {
  if (num_rows == 0 || num_cols == 0) {
    return Status::InvalidArgument("empty relation");
  }
  QueryPlan plan;
  TSC_ASSIGN_OR_RETURN(plan.row_ids,
                       ResolveDimension(ast, /*is_row=*/true, num_rows));
  TSC_ASSIGN_OR_RETURN(plan.col_ids,
                       ResolveDimension(ast, /*is_row=*/false, num_cols));
  plan.aggregates = ast.aggregates;
  plan.group_by = ast.group_by;

  // Cost model: the rollup hierarchy answers linear aggregates from
  // O(k log) node reads independent of the selection size, so it wins
  // outright whenever the executor has one built. Without it, row
  // reconstruction pays ~k * M + |cols| per selected row; the compressed
  // domain pays |cols| * k once plus ~k per selected row. The latter wins
  // whenever it is available unless the selection is a single row (setup
  // cost dominates).
  for (const AggregateFn fn : plan.aggregates) {
    if (IsLinearAggregate(fn) && rollup_available && model_k > 0) {
      plan.strategies.push_back(ExecutionStrategy::kRollup);
      continue;
    }
    const bool compressed_ok = IsLinearAggregate(fn) && model_k > 0 &&
                               plan.row_ids.size() > 1;
    plan.strategies.push_back(compressed_ok
                                  ? ExecutionStrategy::kCompressedDomain
                                  : ExecutionStrategy::kRowReconstruction);
  }
  return plan;
}

}  // namespace tsc
