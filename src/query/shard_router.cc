#include "query/shard_router.h"

#include <algorithm>
#include <cstdint>
#include <cstdlib>

#include "linalg/kernels.h"
#include "obs/metrics.h"
#include "obs/query_context.h"
#include "util/thread_pool.h"

namespace tsc {
namespace {

/// Mirrors the ShardedStore's scatter accounting so aggregate fan-outs
/// and reconstruction fan-outs land in the same counters.
void ChargeRouterScatter(std::size_t active_shards) {
  static obs::Counter& queries =
      obs::MetricRegistry::Default().GetCounter("shard.queries");
  static obs::Counter& fanout =
      obs::MetricRegistry::Default().GetCounter("shard.fanout");
  queries.Add(1);
  fanout.Add(active_shards);
  obs::ChargeShardQuery();
  obs::ChargeShardFanout(active_shards);
}

}  // namespace

ShardRouter::ShardRouter(const ShardedStore* store, bool enable_rollup)
    : store_(store) {
  // Same gates as the unsharded executor ctor: every shard must have a
  // usable factor tree, and TSC_NO_ROLLUP wins over the flag.
  bool all_k_positive = true;
  for (std::size_t s = 0; s < store_->shard_count(); ++s) {
    if (store_->shard_model(s).k() == 0) all_k_positive = false;
  }
  if (enable_rollup && all_k_positive &&
      std::getenv("TSC_NO_ROLLUP") == nullptr) {
    hierarchies_.reserve(store_->shard_count());
    for (std::size_t s = 0; s < store_->shard_count(); ++s) {
      hierarchies_.push_back(
          AggregateHierarchy::Build(store_->shard_model(s)));
    }
  }
}

std::size_t ShardRouter::model_k() const {
  std::size_t k = 0;
  for (std::size_t s = 0; s < store_->shard_count(); ++s) {
    k = std::max(k, store_->shard_model(s).k());
  }
  return k;
}

void ShardRouter::EnableParallelFanOut(std::size_t num_threads) {
  fan_out_pool_ = num_threads > 1
                      ? std::make_shared<ThreadPool>(num_threads)
                      : nullptr;
}

void ShardRouter::ForEachShard(
    const std::function<void(std::size_t)>& fn) const {
  const std::size_t shards = store_->shard_count();
  if (fan_out_pool_ != nullptr && shards > 1) {
    // ParallelFor is not reentrant; when an outer fan-out (or the
    // executor's own scan shards) already holds the pool, fall back to
    // the serial loop — partials land in the same slots either way.
    std::unique_lock<std::mutex> lock(*fan_out_mutex_, std::try_to_lock);
    if (lock.owns_lock()) {
      obs::QueryContext* parent = obs::CurrentQueryContext();
      ParallelFor(fan_out_pool_.get(), shards, [&](std::size_t s) {
        obs::ScopedQueryContext scope(parent);
        fn(s);
      });
      return;
    }
  }
  for (std::size_t s = 0; s < shards; ++s) fn(s);
}

std::vector<std::vector<IdRange>> ShardRouter::PartitionRowRuns(
    std::span<const IdRange> row_runs) const {
  const ShardLayout& layout = store_->layout();
  std::vector<std::vector<IdRange>> per_shard(layout.shard_count);
  for (const IdRange& run : row_runs) {
    if (layout.partition == ShardPartition::kRange) {
      // Split the run at shard boundaries; each piece is contiguous in
      // that shard's local space.
      std::size_t g = run.lo;
      while (g <= run.hi) {
        const auto [shard, local] = layout.Locate(g);
        const std::size_t shard_last =
            layout.range_begin[shard + 1] - 1;  // global id of last row
        const std::size_t hi = std::min(run.hi, shard_last);
        per_shard[shard].push_back({local, local + (hi - g)});
        if (hi == run.hi) break;
        g = hi + 1;
      }
    } else {
      // Hash (mod S): the globals congruent to s inside [lo, hi] are an
      // arithmetic progression with step S, so their locals g / S form
      // one contiguous run.
      const std::size_t s_count = layout.shard_count;
      for (std::size_t s = 0; s < s_count; ++s) {
        std::size_t first = s;
        if (run.lo > s) {
          first = s + ((run.lo - s + s_count - 1) / s_count) * s_count;
        }
        if (first > run.hi) continue;
        const std::size_t last = s + ((run.hi - s) / s_count) * s_count;
        per_shard[s].push_back({first / s_count, last / s_count});
      }
    }
  }
  return per_shard;
}

double ShardRouter::RegionSum(std::span<const IdRange> row_runs,
                              std::span<const IdRange> col_runs,
                              RollupStats* stats) const {
  const std::vector<std::vector<IdRange>> local_runs =
      PartitionRowRuns(row_runs);
  const std::size_t shards = store_->shard_count();

  std::size_t active = 0;
  for (std::size_t s = 0; s < shards; ++s) {
    if (!local_runs[s].empty()) ++active;
  }
  ChargeRouterScatter(active);

  // Per-shard partial slots; merged in fixed shard order below so the
  // reduction grouping — and every low-order bit — is independent of
  // how the shards were scheduled.
  std::vector<double> partials(shards, 0.0);
  std::vector<RollupStats> shard_stats(shards);
  ForEachShard([&](std::size_t s) {
    if (local_runs[s].empty()) return;
    partials[s] = hierarchies_[s]->RegionSum(local_runs[s], col_runs,
                                             &shard_stats[s]);
  });

  double total = 0.0;
  for (std::size_t s = 0; s < shards; ++s) {
    total += partials[s];
    if (stats != nullptr) {
      stats->nodes_read += shard_stats[s].nodes_read;
      stats->deltas_folded += shard_stats[s].deltas_folded;
    }
  }
  return total;
}

std::vector<double> ShardRouter::GroupedSums(
    const std::vector<std::size_t>& row_ids,
    const std::vector<std::size_t>& col_ids, GroupBy group_by,
    RollupStats* stats) const {
  const ShardLayout& layout = store_->layout();
  const std::size_t shards = store_->shard_count();

  // Scatter the sorted global row selection: per-shard local ids plus,
  // for the kRow direction, each local row's slot in the global result.
  std::vector<std::vector<std::size_t>> local_rows(shards);
  std::vector<std::vector<std::size_t>> out_index(shards);
  for (std::size_t g = 0; g < row_ids.size(); ++g) {
    const auto [shard, local] = layout.Locate(row_ids[g]);
    local_rows[shard].push_back(local);
    out_index[shard].push_back(g);
  }

  std::size_t active = 0;
  for (std::size_t s = 0; s < shards; ++s) {
    if (!local_rows[s].empty()) ++active;
  }
  ChargeRouterScatter(active);

  const std::size_t groups = group_by == GroupBy::kRow ? row_ids.size()
                             : group_by == GroupBy::kCol ? col_ids.size()
                                                         : 1;
  std::vector<double> sums(groups, 0.0);

  // kRow writes are disjoint across shards (each global row lives in
  // exactly one shard), so shards fill `sums` directly; kNone and kCol
  // partials are per-shard vectors merged in shard order afterwards.
  const bool direct = group_by == GroupBy::kRow;
  std::vector<std::vector<double>> partials(
      direct ? 0 : shards, std::vector<double>(groups, 0.0));
  std::vector<RollupStats> shard_stats(shards);

  ForEachShard([&](std::size_t s) {
    if (local_rows[s].empty()) return;
    const SvdModel& svd = store_->shard_model(s).svd();
    const std::size_t k = svd.k();
    std::vector<double>& out = direct ? sums : partials[s];

    if (group_by == GroupBy::kCol) {
      // Column direction: this shard's U mass over its local rows, then
      // one dot per selected column against its Lambda-weighted V.
      std::vector<double> u_mass(k, 0.0);
      for (const std::size_t i : local_rows[s]) {
        kernels::Axpy(1.0, svd.u().Row(i).data(), u_mass.data(), k);
      }
      for (std::size_t g = 0; g < col_ids.size(); ++g) {
        out[g] = kernels::Dot(u_mass.data(),
                              svd.weighted_v().Row(col_ids[g]).data(), k);
      }
    } else {
      // Row direction / total: this shard's column weights, then one
      // dot per local U row into its global slot (kRow) or the shard
      // partial (kNone).
      std::vector<double> weights(k, 0.0);
      for (const std::size_t j : col_ids) {
        kernels::Axpy(1.0, svd.weighted_v().Row(j).data(), weights.data(),
                      k);
      }
      for (std::size_t r = 0; r < local_rows[s].size(); ++r) {
        const double dot = kernels::Dot(svd.u().Row(local_rows[s][r]).data(),
                                        weights.data(), k);
        out[group_by == GroupBy::kRow ? out_index[s][r] : 0] += dot;
      }
    }

    // Fold this shard's in-region deltas into the same slots. Local ids
    // are already sorted (scatter of a sorted global list is monotone
    // per shard), so the runs coalesce directly; global group slots
    // come from the scatter's out_index.
    const std::vector<IdRange> local_runs = CoalesceIds(
        std::span<const std::size_t>(local_rows[s]));
    const std::vector<IdRange> col_runs =
        CoalesceIds(std::span<const std::size_t>(col_ids));
    const auto fold = [&](std::size_t local_i, std::size_t j, double delta) {
      switch (group_by) {
        case GroupBy::kRow: {
          const auto it = std::lower_bound(local_rows[s].begin(),
                                           local_rows[s].end(), local_i);
          out[out_index[s][static_cast<std::size_t>(
              it - local_rows[s].begin())]] += delta;
          break;
        }
        case GroupBy::kCol: {
          const auto it =
              std::lower_bound(col_ids.begin(), col_ids.end(), j);
          out[static_cast<std::size_t>(it - col_ids.begin())] += delta;
          break;
        }
        case GroupBy::kNone:
          out[0] += delta;
          break;
      }
    };
    if (!hierarchies_.empty()) {
      hierarchies_[s]->VisitRegionDeltas(local_runs, col_runs,
                                         &shard_stats[s], fold);
    } else {
      // Degenerate no-hierarchy mode: sweep this shard's delta table.
      const SvddModel& model = store_->shard_model(s);
      std::vector<std::size_t> row_slot(model.rows(), SIZE_MAX);
      for (std::size_t r = 0; r < local_rows[s].size(); ++r) {
        row_slot[local_rows[s][r]] = r;
      }
      std::vector<char> col_in(model.cols(), 0);
      for (const std::size_t j : col_ids) col_in[j] = 1;
      model.deltas().ForEach([&](std::uint64_t key, double delta) {
        const std::size_t i = static_cast<std::size_t>(key / model.cols());
        const std::size_t j = static_cast<std::size_t>(key % model.cols());
        if (i >= row_slot.size() || row_slot[i] == SIZE_MAX || !col_in[j]) {
          return;
        }
        fold(i, j, delta);
      });
    }
  });

  if (!direct) {
    for (std::size_t s = 0; s < shards; ++s) {
      if (local_rows[s].empty()) continue;
      for (std::size_t g = 0; g < groups; ++g) sums[g] += partials[s][g];
    }
  }
  for (std::size_t s = 0; s < shards; ++s) {
    if (stats != nullptr) {
      stats->nodes_read += shard_stats[s].nodes_read;
      stats->deltas_folded += shard_stats[s].deltas_folded;
    }
  }
  return sums;
}

}  // namespace tsc
