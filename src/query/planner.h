#ifndef TSC_QUERY_PLANNER_H_
#define TSC_QUERY_PLANNER_H_

#include <cstddef>
#include <string>
#include <vector>

#include "core/query.h"
#include "query/parser.h"
#include "util/status.h"

namespace tsc {

/// Execution strategies the planner can choose per aggregate.
enum class ExecutionStrategy {
  /// Reconstruct each selected row once, then aggregate the selected
  /// cells — O(selected_rows * (k*M + |cols|)). Works for every fn.
  kRowReconstruction,
  /// Compute entirely in the compressed domain from U, Lambda, V (and
  /// the delta table): O(|cols|*k) setup + O(k) per selected row.
  /// Available for sum/avg/count, which are linear in the cells.
  kCompressedDomain,
  /// Answer from the multi-resolution aggregate hierarchy (cube/rollup.h):
  /// O(k log N + k log M) segment-tree node reads, no per-row work at
  /// all. Preferred for linear aggregates whenever the executor has a
  /// hierarchy built; kCompressedDomain remains the fallback.
  kRollup,
};

const char* ExecutionStrategyName(ExecutionStrategy strategy);

/// A planned query: concrete index sets plus a strategy per aggregate.
struct QueryPlan {
  std::vector<std::size_t> row_ids;
  std::vector<std::size_t> col_ids;
  std::vector<AggregateFn> aggregates;
  std::vector<ExecutionStrategy> strategies;  ///< parallel to aggregates
  GroupBy group_by = GroupBy::kNone;

  std::size_t CellCount() const { return row_ids.size() * col_ids.size(); }
  /// Group keys the result will be reported for (row or col ids), or a
  /// single pseudo-group when there is no GROUP BY.
  std::size_t GroupCount() const {
    switch (group_by) {
      case GroupBy::kRow:
        return row_ids.size();
      case GroupBy::kCol:
        return col_ids.size();
      case GroupBy::kNone:
        return 1;
    }
    return 1;
  }
  /// Human-readable plan (EXPLAIN output).
  std::string ToString() const;
};

/// Resolves the AST's constraints against a concrete num_rows x num_cols
/// matrix (intersecting repeated constraints, clipping is an error) and
/// picks a strategy per aggregate.
///
/// Strategy choice: linear aggregates resolve from the aggregate rollup
/// hierarchy when the executor has one (`rollup_available`) — O(k log)
/// node reads regardless of selection size; otherwise linear aggregates
/// over wide selections (many columns per selected row) run in the
/// compressed domain, where the per-row cost is O(k) instead of O(k*M);
/// narrow or non-linear aggregates use row reconstruction.
StatusOr<QueryPlan> PlanQuery(const QueryAst& ast, std::size_t num_rows,
                              std::size_t num_cols, std::size_t model_k,
                              bool rollup_available = false);

}  // namespace tsc

#endif  // TSC_QUERY_PLANNER_H_
