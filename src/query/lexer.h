#ifndef TSC_QUERY_LEXER_H_
#define TSC_QUERY_LEXER_H_

#include <string>
#include <vector>

#include "util/status.h"

namespace tsc {

/// Token kinds of the ad hoc query language (see parser.h for the
/// grammar). Keywords are case-insensitive.
enum class TokenKind {
  kSelect,
  kWhere,
  kAnd,
  kIn,
  kBetween,
  kGroup,
  kBy,
  kRow,
  kCol,
  kValue,
  kIdentifier,  ///< aggregate names: sum, avg, ...
  kNumber,
  kComma,
  kColon,
  kLparen,
  kRparen,
  kStar,
  kEnd,
};

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;      ///< raw text (identifiers, numbers)
  double number = 0.0;   ///< value for kNumber
  std::size_t position = 0;  ///< byte offset in the input, for errors
};

const char* TokenKindName(TokenKind kind);

/// Tokenizes a query string. Fails with kInvalidArgument on characters
/// outside the language.
StatusOr<std::vector<Token>> Tokenize(const std::string& input);

}  // namespace tsc

#endif  // TSC_QUERY_LEXER_H_
