#ifndef TSC_QUERY_EXECUTOR_H_
#define TSC_QUERY_EXECUTOR_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/compressed_store.h"
#include "core/svd_compressor.h"
#include "core/svdd_compressor.h"
#include "linalg/matrix.h"
#include "query/planner.h"
#include "util/status.h"

namespace tsc {

class AggregateHierarchy;
class ShardRouter;
class ThreadPool;

/// One executed query's results plus execution statistics. Without
/// GROUP BY there is exactly one group; with it, one group per selected
/// row (or column), identified by `group_keys`.
struct QueryResult {
  /// Flat group-major layout: values[g * aggregates + a].
  std::vector<double> values;
  /// Row or col ids of the groups; empty when the query had no GROUP BY.
  std::vector<std::size_t> group_keys;
  std::size_t aggregate_count = 0;
  std::uint64_t rows_reconstructed = 0;
  /// Aggregates answered without row reconstruction (the rollup ones
  /// included — the hierarchy IS compressed-domain evaluation).
  std::uint64_t compressed_domain_aggregates = 0;
  /// Of those, aggregates answered from the rollup hierarchy, and the
  /// segment-tree nodes consumed doing so.
  std::uint64_t rollup_aggregates = 0;
  std::uint64_t rollup_nodes_read = 0;
  std::string plan_text;
  /// Per-aggregate strategy actually used, e.g. "sum=rollup
  /// max=row-reconstruction" (the --analyze footer's strategy line).
  std::string strategy_summary;

  /// Stage latencies, microseconds. parse_us and plan_us are only filled
  /// by Execute() (ExecutePlan never saw the text); exec_us always is.
  double parse_us = 0.0;
  double plan_us = 0.0;
  double exec_us = 0.0;

  std::size_t group_count() const {
    return aggregate_count == 0 ? 0 : values.size() / aggregate_count;
  }
  double ValueAt(std::size_t group, std::size_t aggregate) const {
    return values[group * aggregate_count + aggregate];
  }

  /// EXPLAIN ANALYZE-style footer: stage latencies and scan counts, one
  /// "-- " line each, appended after the result table by `sql --analyze`.
  std::string AnalyzeFooter() const;
};

/// Runs ad hoc SQL-ish queries against a compressed model. The executor
/// prefers the SVDD fast path (compressed-domain evaluation with delta
/// folding) when the planner selects it; everything else goes through
/// batched region reconstruction on the CompressedStore interface.
///
/// Row-reconstruction scans are dealt to a fixed number of shards and
/// reduced in shard order, so for a given model the result is bitwise
/// identical for every `num_threads` value (the same discipline as the
/// parallel build).
class QueryExecutor {
 public:
  /// Generic store: every aggregate runs by row reconstruction.
  /// `num_threads` > 1 scans with an internal thread pool.
  explicit QueryExecutor(const CompressedStore* store,
                         std::size_t num_threads = 1);
  /// SVDD model: linear aggregates can run in the compressed domain.
  /// By default an aggregate rollup hierarchy (cube/rollup.h) is built
  /// over the model and becomes the planner's preferred strategy for
  /// sum/avg/count; `enable_rollup = false` (or the TSC_NO_ROLLUP
  /// environment kill switch) restores the pre-hierarchy behavior.
  explicit QueryExecutor(const SvddModel* model, std::size_t num_threads = 1,
                         bool enable_rollup = true);
  /// Sharded store behind a router: linear aggregates scatter-gather
  /// across the shards' factors and per-shard hierarchies; scans run
  /// through the ShardedStore's CompressedStore surface exactly like the
  /// generic ctor. The router (and its store) must outlive the executor.
  explicit QueryExecutor(const ShardRouter* router,
                         std::size_t num_threads = 1);

  std::size_t rows() const { return store_->rows(); }
  std::size_t cols() const { return store_->cols(); }

  /// The aggregate hierarchy, or nullptr (generic store / disabled).
  /// Shared with the server data API's bucket reductions.
  const AggregateHierarchy* rollup() const { return rollup_.get(); }

  /// The shard router, or nullptr (unsharded executor). The server data
  /// API routes its bucket reductions through this when present.
  const ShardRouter* router() const { return router_; }

  /// Parse + plan + execute in one call.
  StatusOr<QueryResult> Execute(const std::string& query_text) const;

  /// Execute a pre-built plan.
  StatusOr<QueryResult> ExecutePlan(const QueryPlan& plan) const;

  /// EXPLAIN: parse + plan, no execution.
  StatusOr<std::string> Explain(const std::string& query_text) const;

 private:
  StatusOr<QueryPlan> Plan(const std::string& query_text) const;

  const CompressedStore* store_;
  const SvddModel* svdd_ = nullptr;  ///< non-null enables the fast path
  const ShardRouter* router_ = nullptr;  ///< non-null: sharded fast path
  std::shared_ptr<ThreadPool> pool_;  ///< null = scan on the calling thread
  /// Owned rollup hierarchy; registered (weakly) as the model's delta
  /// listener so PatchCell keeps it fresh. Null when disabled.
  std::shared_ptr<AggregateHierarchy> rollup_;
};

/// Exact reference executor over the raw matrix (tests, accuracy
/// comparisons). All aggregates run directly on the data.
StatusOr<QueryResult> ExecuteExact(const Matrix& data,
                                   const std::string& query_text);

}  // namespace tsc

#endif  // TSC_QUERY_EXECUTOR_H_
