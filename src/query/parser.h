#ifndef TSC_QUERY_PARSER_H_
#define TSC_QUERY_PARSER_H_

#include <cstddef>
#include <string>
#include <vector>

#include "core/query.h"
#include "util/status.h"

namespace tsc {

/// The ad hoc query language the paper's analysts would type. Grammar:
///
///   query      := SELECT agg_list [ WHERE predicate ] [ GROUP BY dim ]
///   agg_list   := agg { ',' agg }
///   agg        := FN '(' ( 'value' | '*' ) ')'
///   FN         := sum | avg | count | min | max | stddev
///   predicate  := constraint { AND constraint }
///   constraint := dim IN range_list
///               | dim BETWEEN number AND number
///   dim        := 'row' | 'col'            ('column'/'day' accepted)
///   range_list := range { ',' range }
///   range      := number [ ':' number ]    (inclusive)
///
/// Examples:
///   SELECT sum(value) WHERE row BETWEEN 0 AND 99 AND col IN 0:6
///   SELECT avg(value), max(value) WHERE col IN 5,6,12,13
///   SELECT count(*)
///
/// Constraints on the same dimension intersect; an unconstrained
/// dimension selects everything.

/// One inclusive index range.
struct IndexRange {
  std::size_t lo = 0;
  std::size_t hi = 0;

  friend bool operator==(const IndexRange&, const IndexRange&) = default;
};

/// A dimension constraint: union of ranges.
struct DimensionConstraint {
  bool is_row = true;
  std::vector<IndexRange> ranges;
};

/// Grouping dimension of a GROUP BY clause.
enum class GroupBy {
  kNone,
  kRow,  ///< one result per selected row ("per customer")
  kCol,  ///< one result per selected column ("per day")
};

/// Parsed query.
struct QueryAst {
  std::vector<AggregateFn> aggregates;
  std::vector<DimensionConstraint> constraints;
  GroupBy group_by = GroupBy::kNone;
};

/// Parses one statement; error messages carry byte positions.
StatusOr<QueryAst> ParseQuery(const std::string& text);

}  // namespace tsc

#endif  // TSC_QUERY_PARSER_H_
