#include "query/executor.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "cube/rollup.h"
#include "linalg/kernels.h"
#include "obs/metrics.h"
#include "obs/query_context.h"
#include "obs/trace.h"
#include "query/parser.h"
#include "query/shard_router.h"
#include "storage/delta_table.h"
#include "util/logging.h"
#include "util/stats.h"
#include "util/thread_pool.h"

namespace tsc {
namespace {

/// Fixed shard count for parallel scans. Like kBuildShards, this is a
/// constant — NOT the thread count — so the accumulation grouping, and
/// therefore every low-order bit of the result, is the same whether the
/// shards run on 1 thread or 16.
constexpr std::size_t kQueryShards = 16;

/// Rows reconstructed per ReconstructRegion call inside a shard: large
/// enough to amortize the batched gathers, small enough to keep the
/// per-shard scratch block in cache.
constexpr std::size_t kScanBlockRows = 32;

double MicrosSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - start)
      .count();
}

/// Per-group accumulator: streaming moments always, buffered values only
/// when an order statistic (median) is requested.
struct GroupAcc {
  RunningStats stats;
  std::vector<double> values;
};

/// Finalizes one aggregate from per-group statistics.
double Finalize(AggregateFn fn, const GroupAcc& acc) {
  const RunningStats& stats = acc.stats;
  switch (fn) {
    case AggregateFn::kSum:
      return stats.sum();
    case AggregateFn::kAvg:
      return stats.mean();
    case AggregateFn::kCount:
      return static_cast<double>(stats.count());
    case AggregateFn::kMin:
      return stats.count() == 0 ? 0.0 : stats.min();
    case AggregateFn::kMax:
      return stats.count() == 0 ? 0.0 : stats.max();
    case AggregateFn::kStddev:
      return stats.stddev();
    case AggregateFn::kMedian:
      return acc.values.empty() ? 0.0 : Quantiles(acc.values).Median();
  }
  return 0.0;
}

bool NeedsValueBuffer(const QueryPlan& plan) {
  for (std::size_t a = 0; a < plan.aggregates.size(); ++a) {
    if (plan.aggregates[a] == AggregateFn::kMedian &&
        plan.strategies[a] == ExecutionStrategy::kRowReconstruction) {
      return true;
    }
  }
  return false;
}

std::vector<std::size_t> GroupKeysFor(const QueryPlan& plan) {
  switch (plan.group_by) {
    case GroupBy::kRow:
      return plan.row_ids;
    case GroupBy::kCol:
      return plan.col_ids;
    case GroupBy::kNone:
      return {};
  }
  return {};
}

bool IsLinearAggregate(AggregateFn fn) {
  return fn == AggregateFn::kSum || fn == AggregateFn::kAvg ||
         fn == AggregateFn::kCount;
}

/// Per-group sums of the selected region, straight from the factors:
/// no grouping -> one total; by row -> dot(u_i, w) per row; by col ->
/// s_j = sum_m (sum_{i in R} u_im) * lambda_m * v_jm per column.
/// Deltas inside the region are folded into their group: through the
/// hierarchy's range index when one exists (only in-region deltas are
/// ever touched), by a full delta-table sweep only in the degenerate
/// no-hierarchy mode.
std::vector<double> CompressedDomainSums(
    const SvddModel& model, const std::vector<std::size_t>& row_ids,
    const std::vector<std::size_t>& col_ids, GroupBy group_by,
    const AggregateHierarchy* hierarchy, RollupStats* stats) {
  const SvdModel& svd = model.svd();
  const std::size_t k = svd.k();

  std::vector<double> sums;
  if (group_by == GroupBy::kCol) {
    // Column direction: accumulate the selected rows' U mass once, then
    // one vectorized dot against each Lambda-weighted V row.
    std::vector<double> u_mass(k, 0.0);
    for (const std::size_t i : row_ids) {
      kernels::Axpy(1.0, svd.u().Row(i).data(), u_mass.data(), k);
    }
    sums.assign(col_ids.size(), 0.0);
    for (std::size_t g = 0; g < col_ids.size(); ++g) {
      sums[g] = kernels::Dot(u_mass.data(),
                             svd.weighted_v().Row(col_ids[g]).data(), k);
    }
  } else {
    // Row direction (and the ungrouped total): weights = sum of the
    // selected Lambda-weighted V rows, then one dot per selected U row.
    std::vector<double> weights(k, 0.0);
    for (const std::size_t j : col_ids) {
      kernels::Axpy(1.0, svd.weighted_v().Row(j).data(), weights.data(), k);
    }
    const std::size_t groups =
        group_by == GroupBy::kRow ? row_ids.size() : 1;
    sums.assign(groups, 0.0);
    for (std::size_t g = 0; g < row_ids.size(); ++g) {
      const double dot =
          kernels::Dot(svd.u().Row(row_ids[g]).data(), weights.data(), k);
      sums[group_by == GroupBy::kRow ? g : 0] += dot;
    }
  }

  // Fold in the deltas that fall inside the region. With a hierarchy the
  // range-indexed visit enumerates exactly the in-region deltas (count-
  // pruned descent), so the per-query cost tracks the region, not the
  // table; ids are sorted, so the group index is a binary search away.
  if (hierarchy != nullptr) {
    const std::vector<IdRange> row_runs =
        CoalesceIds(std::span<const std::size_t>(row_ids));
    const std::vector<IdRange> col_runs =
        CoalesceIds(std::span<const std::size_t>(col_ids));
    hierarchy->VisitRegionDeltas(
        row_runs, col_runs, stats,
        [&](std::size_t i, std::size_t j, double delta) {
          switch (group_by) {
            case GroupBy::kRow: {
              const auto it =
                  std::lower_bound(row_ids.begin(), row_ids.end(), i);
              sums[static_cast<std::size_t>(it - row_ids.begin())] += delta;
              break;
            }
            case GroupBy::kCol: {
              const auto it =
                  std::lower_bound(col_ids.begin(), col_ids.end(), j);
              sums[static_cast<std::size_t>(it - col_ids.begin())] += delta;
              break;
            }
            case GroupBy::kNone:
              sums[0] += delta;
              break;
          }
        });
    return sums;
  }
  std::vector<std::size_t> row_group(model.rows(), SIZE_MAX);
  for (std::size_t g = 0; g < row_ids.size(); ++g) row_group[row_ids[g]] = g;
  std::vector<std::size_t> col_group(model.cols(), SIZE_MAX);
  for (std::size_t g = 0; g < col_ids.size(); ++g) col_group[col_ids[g]] = g;
  model.deltas().ForEach([&](std::uint64_t key, double delta) {
    const std::size_t i = static_cast<std::size_t>(key / model.cols());
    const std::size_t j = static_cast<std::size_t>(key % model.cols());
    if (row_group[i] == SIZE_MAX || col_group[j] == SIZE_MAX) return;
    switch (group_by) {
      case GroupBy::kRow:
        sums[row_group[i]] += delta;
        break;
      case GroupBy::kCol:
        sums[col_group[j]] += delta;
        break;
      case GroupBy::kNone:
        sums[0] += delta;
        break;
    }
  });
  return sums;
}

/// Shared finalization: per-group statistics -> flat result values for
/// the row-reconstruction strategy, compressed-domain sums for the rest.
class ResultBuilder {
 public:
  ResultBuilder(const QueryPlan& plan, const SvddModel* svdd,
                const AggregateHierarchy* rollup = nullptr,
                RollupStats* stats = nullptr,
                const ShardRouter* router = nullptr)
      : plan_(plan),
        svdd_(svdd),
        rollup_(rollup),
        stats_(stats),
        router_(router) {}

  /// Per-group cell count (for count/avg in the compressed domain).
  std::size_t GroupCells() const {
    switch (plan_.group_by) {
      case GroupBy::kRow:
        return plan_.col_ids.size();
      case GroupBy::kCol:
        return plan_.row_ids.size();
      case GroupBy::kNone:
        return plan_.CellCount();
    }
    return 0;
  }

  StatusOr<QueryResult> Build(const std::vector<GroupAcc>& group_stats,
                              std::uint64_t rows_reconstructed) const {
    QueryResult result;
    result.plan_text = plan_.ToString();
    result.group_keys = GroupKeysFor(plan_);
    result.aggregate_count = plan_.aggregates.size();
    result.rows_reconstructed = rows_reconstructed;
    const std::size_t groups = plan_.GroupCount();
    result.values.assign(groups * plan_.aggregates.size(), 0.0);

    std::vector<double> sums;  // lazily computed compressed-domain sums
    for (std::size_t a = 0; a < plan_.aggregates.size(); ++a) {
      const AggregateFn fn = plan_.aggregates[a];
      const ExecutionStrategy strategy = plan_.strategies[a];
      if (!result.strategy_summary.empty()) result.strategy_summary += " ";
      result.strategy_summary += AggregateFnName(fn);
      result.strategy_summary += "=";
      result.strategy_summary += ExecutionStrategyName(strategy);
      if (strategy == ExecutionStrategy::kCompressedDomain ||
          strategy == ExecutionStrategy::kRollup) {
        if (svdd_ == nullptr && router_ == nullptr) {
          return Status::Internal(
              "compressed-domain plan without SVDD model");
        }
        if (strategy == ExecutionStrategy::kRollup) {
          if (rollup_ == nullptr &&
              (router_ == nullptr || !router_->rollup_enabled())) {
            return Status::Internal("rollup plan without hierarchy");
          }
          ++result.rollup_aggregates;
        }
        ++result.compressed_domain_aggregates;
        if (sums.empty() && fn != AggregateFn::kCount) {
          // Ungrouped totals resolve purely from hierarchy nodes; grouped
          // sums need the per-group factor math either way and use the
          // hierarchy only for the range-indexed delta fold. A router
          // runs the same two shapes scatter-gathered across shards.
          if (router_ != nullptr) {
            if (router_->rollup_enabled() &&
                plan_.group_by == GroupBy::kNone) {
              const std::vector<IdRange> row_runs =
                  CoalesceIds(std::span<const std::size_t>(plan_.row_ids));
              const std::vector<IdRange> col_runs =
                  CoalesceIds(std::span<const std::size_t>(plan_.col_ids));
              sums = {router_->RegionSum(row_runs, col_runs, stats_)};
            } else {
              sums = router_->GroupedSums(plan_.row_ids, plan_.col_ids,
                                          plan_.group_by, stats_);
            }
          } else if (rollup_ != nullptr && plan_.group_by == GroupBy::kNone) {
            const std::vector<IdRange> row_runs =
                CoalesceIds(std::span<const std::size_t>(plan_.row_ids));
            const std::vector<IdRange> col_runs =
                CoalesceIds(std::span<const std::size_t>(plan_.col_ids));
            sums = {rollup_->RegionSum(row_runs, col_runs, stats_)};
          } else {
            sums = CompressedDomainSums(*svdd_, plan_.row_ids, plan_.col_ids,
                                        plan_.group_by, rollup_, stats_);
          }
        }
        for (std::size_t g = 0; g < groups; ++g) {
          double value = 0.0;
          switch (fn) {
            case AggregateFn::kCount:
              value = static_cast<double>(GroupCells());
              break;
            case AggregateFn::kSum:
              value = sums[g];
              break;
            case AggregateFn::kAvg:
              value = sums[g] / static_cast<double>(GroupCells());
              break;
            default:
              return Status::Internal("non-linear fn planned compressed");
          }
          result.values[g * result.aggregate_count + a] = value;
        }
        continue;
      }
      TSC_CHECK_EQ(group_stats.size(), groups);
      for (std::size_t g = 0; g < groups; ++g) {
        result.values[g * result.aggregate_count + a] =
            Finalize(fn, group_stats[g]);
      }
    }
    return result;
  }

 private:
  const QueryPlan& plan_;
  const SvddModel* svdd_;
  const AggregateHierarchy* rollup_;
  RollupStats* stats_;
  const ShardRouter* router_;
};

/// Batched, sharded scan for the row-reconstruction strategy. Selected
/// rows are dealt to kQueryShards shards (index % kQueryShards); each
/// shard reconstructs its rows in blocks of kScanBlockRows via
/// ReconstructRegion — only the selected columns are materialized — and
/// accumulates into its own per-group statistics. Shard partials are
/// merged in shard order, so the result is independent of the thread
/// count (including the inline pool == nullptr path).
std::vector<GroupAcc> ScanGroupsBatched(const QueryPlan& plan,
                                        const CompressedStore& store,
                                        ThreadPool* pool,
                                        std::uint64_t* rows_scanned) {
  static obs::Counter& batch_cells =
      obs::MetricRegistry::Default().GetCounter("query.batch_cells");
  obs::TraceSpan span("query.scan");
  const bool keep_values = NeedsValueBuffer(plan);
  const std::size_t groups = plan.GroupCount();
  // Disk-backed stores expose a prefetch hook: warming each scan block's
  // backing blocks before ReconstructRegion turns a cold block into one
  // overlapped I/O wave. In-memory stores don't implement it.
  const auto* prefetchable = dynamic_cast<const RowPrefetchable*>(&store);
  std::vector<std::vector<GroupAcc>> shard_accs(kQueryShards);
  // Shards may run on pool threads: re-install the requesting thread's
  // QueryContext so cache/disk/delta work stays attributed per request.
  obs::QueryContext* request_context = obs::CurrentQueryContext();
  ParallelFor(pool, kQueryShards, [&](std::size_t shard) {
    obs::ScopedQueryContext context_scope(request_context);
    obs::TraceSpan shard_span("query.scan.shard", shard);
    std::vector<GroupAcc>& accs = shard_accs[shard];
    accs.resize(groups);
    Matrix block;
    std::vector<std::size_t> block_rows;    // selected row ids
    std::vector<std::size_t> block_index;   // their index r into row_ids
    block_rows.reserve(kScanBlockRows);
    block_index.reserve(kScanBlockRows);
    const auto flush = [&] {
      if (block_rows.empty()) return;
      if (prefetchable != nullptr) prefetchable->PrefetchRows(block_rows);
      store.ReconstructRegion(block_rows, plan.col_ids, &block);
      batch_cells.Add(block_rows.size() * plan.col_ids.size());
      for (std::size_t b = 0; b < block_rows.size(); ++b) {
        const std::span<const double> vals = block.Row(b);
        for (std::size_t c = 0; c < plan.col_ids.size(); ++c) {
          std::size_t g = 0;
          switch (plan.group_by) {
            case GroupBy::kRow:
              g = block_index[b];
              break;
            case GroupBy::kCol:
              g = c;
              break;
            case GroupBy::kNone:
              g = 0;
              break;
          }
          accs[g].stats.Add(vals[c]);
          if (keep_values) accs[g].values.push_back(vals[c]);
        }
      }
      block_rows.clear();
      block_index.clear();
    };
    for (std::size_t r = shard; r < plan.row_ids.size(); r += kQueryShards) {
      block_rows.push_back(plan.row_ids[r]);
      block_index.push_back(r);
      if (block_rows.size() == kScanBlockRows) flush();
    }
    flush();
  });
  *rows_scanned += plan.row_ids.size();
  // Ordered reduction: shard 0, shard 1, ... — the merge order is part of
  // the determinism contract.
  std::vector<GroupAcc> accs(groups);
  for (std::size_t shard = 0; shard < kQueryShards; ++shard) {
    for (std::size_t g = 0; g < groups; ++g) {
      accs[g].stats.Merge(shard_accs[shard][g].stats);
      if (keep_values) {
        accs[g].values.insert(accs[g].values.end(),
                              shard_accs[shard][g].values.begin(),
                              shard_accs[shard][g].values.end());
      }
    }
  }
  return accs;
}

/// Accumulates per-group statistics by scanning reconstructed (or raw)
/// rows; `row_provider` fills a buffer for a given row id. Retained for
/// the exact (raw matrix) executor; the compressed path scans through
/// ScanGroupsBatched.
template <typename RowProvider>
std::vector<GroupAcc> ScanGroups(const QueryPlan& plan, std::size_t num_cols,
                                 RowProvider&& row_provider,
                                 std::uint64_t* rows_scanned) {
  std::vector<GroupAcc> accs(plan.GroupCount());
  const bool keep_values = NeedsValueBuffer(plan);
  std::vector<double> row(num_cols);
  for (std::size_t r = 0; r < plan.row_ids.size(); ++r) {
    row_provider(plan.row_ids[r], std::span<double>(row));
    ++*rows_scanned;
    for (std::size_t c = 0; c < plan.col_ids.size(); ++c) {
      const double value = row[plan.col_ids[c]];
      std::size_t g = 0;
      switch (plan.group_by) {
        case GroupBy::kRow:
          g = r;
          break;
        case GroupBy::kCol:
          g = c;
          break;
        case GroupBy::kNone:
          g = 0;
          break;
      }
      accs[g].stats.Add(value);
      if (keep_values) accs[g].values.push_back(value);
    }
  }
  return accs;
}

}  // namespace

std::string QueryResult::AnalyzeFooter() const {
  char line[160];
  std::string out;
  std::snprintf(line, sizeof(line),
                "-- groups: %zu, aggregates: %zu (%llu compressed-domain)\n",
                group_count(), aggregate_count,
                static_cast<unsigned long long>(compressed_domain_aggregates));
  out += line;
  if (!strategy_summary.empty()) {
    std::snprintf(line, sizeof(line), "-- strategies: %s\n",
                  strategy_summary.c_str());
    out += line;
  }
  if (rollup_aggregates > 0) {
    std::snprintf(line, sizeof(line),
                  "-- rollup: %llu aggregates, %llu nodes read\n",
                  static_cast<unsigned long long>(rollup_aggregates),
                  static_cast<unsigned long long>(rollup_nodes_read));
    out += line;
  }
  std::snprintf(line, sizeof(line), "-- rows reconstructed: %llu\n",
                static_cast<unsigned long long>(rows_reconstructed));
  out += line;
  std::snprintf(line, sizeof(line),
                "-- parse %.1f us, plan %.1f us, exec %.1f us\n", parse_us,
                plan_us, exec_us);
  out += line;
  return out;
}

QueryExecutor::QueryExecutor(const CompressedStore* store,
                             std::size_t num_threads)
    : store_(store) {
  TSC_CHECK(store != nullptr);
  if (num_threads > 1) pool_ = std::make_shared<ThreadPool>(num_threads);
}

QueryExecutor::QueryExecutor(const SvddModel* model, std::size_t num_threads,
                             bool enable_rollup)
    : store_(model), svdd_(model) {
  TSC_CHECK(model != nullptr);
  if (num_threads > 1) pool_ = std::make_shared<ThreadPool>(num_threads);
  // TSC_NO_ROLLUP is the operational kill switch (same spirit as the
  // --no-rollup CLI flag): drop back to the pre-hierarchy strategies
  // without a rebuild or redeploy.
  if (enable_rollup && model->k() > 0 &&
      std::getenv("TSC_NO_ROLLUP") == nullptr) {
    rollup_ = AggregateHierarchy::Build(*model);
  }
}

QueryExecutor::QueryExecutor(const ShardRouter* router,
                             std::size_t num_threads)
    : store_(&router->store()), router_(router) {
  TSC_CHECK(router != nullptr);
  if (num_threads > 1) pool_ = std::make_shared<ThreadPool>(num_threads);
}

StatusOr<QueryPlan> QueryExecutor::Plan(const std::string& query_text) const {
  TSC_ASSIGN_OR_RETURN(const QueryAst ast, ParseQuery(query_text));
  const std::size_t model_k = svdd_ != nullptr   ? svdd_->k()
                              : router_ != nullptr ? router_->model_k()
                                                   : 0;
  return PlanQuery(ast, rows(), cols(), model_k,
                   rollup_ != nullptr ||
                       (router_ != nullptr && router_->rollup_enabled()));
}

StatusOr<std::string> QueryExecutor::Explain(
    const std::string& query_text) const {
  TSC_ASSIGN_OR_RETURN(const QueryPlan plan, Plan(query_text));
  return plan.ToString();
}

StatusOr<QueryResult> QueryExecutor::Execute(
    const std::string& query_text) const {
  static obs::Histogram& parse_hist =
      obs::MetricRegistry::Default().GetHistogram("query.parse_us");
  static obs::Histogram& plan_hist =
      obs::MetricRegistry::Default().GetHistogram("query.plan_us");

  const auto parse_start = std::chrono::steady_clock::now();
  TSC_ASSIGN_OR_RETURN(const QueryAst ast, ParseQuery(query_text));
  const double parse_us = MicrosSince(parse_start);

  const auto plan_start = std::chrono::steady_clock::now();
  const std::size_t model_k = svdd_ != nullptr   ? svdd_->k()
                              : router_ != nullptr ? router_->model_k()
                                                   : 0;
  TSC_ASSIGN_OR_RETURN(const QueryPlan plan,
                       PlanQuery(ast, rows(), cols(), model_k,
                                 rollup_ != nullptr ||
                                     (router_ != nullptr &&
                                      router_->rollup_enabled())));
  const double plan_us = MicrosSince(plan_start);

  TSC_ASSIGN_OR_RETURN(QueryResult result, ExecutePlan(plan));
  result.parse_us = parse_us;
  result.plan_us = plan_us;
  parse_hist.Record(parse_us);
  plan_hist.Record(plan_us);
  return result;
}

StatusOr<QueryResult> QueryExecutor::ExecutePlan(const QueryPlan& plan) const {
  static obs::Histogram& exec_hist =
      obs::MetricRegistry::Default().GetHistogram("query.exec_us");
  static obs::Counter& query_count =
      obs::MetricRegistry::Default().GetCounter("query.count");
  static obs::Counter& scanned_counter =
      obs::MetricRegistry::Default().GetCounter("query.rows_scanned");
  static obs::Counter& rollup_hits_counter =
      obs::MetricRegistry::Default().GetCounter("agg.rollup_hits");
  static obs::Counter& scan_fallbacks_counter =
      obs::MetricRegistry::Default().GetCounter("agg.scan_fallbacks");
  static obs::Counter& agg_nodes_counter =
      obs::MetricRegistry::Default().GetCounter("agg.nodes_read");

  obs::TraceSpan span("query.execute");
  const auto exec_start = std::chrono::steady_clock::now();
  const bool any_reconstruction =
      std::any_of(plan.strategies.begin(), plan.strategies.end(),
                  [&](ExecutionStrategy s) {
                    return s == ExecutionStrategy::kRowReconstruction;
                  });
  std::uint64_t rows_scanned = 0;
  std::vector<GroupAcc> group_stats(plan.GroupCount());
  if (any_reconstruction) {
    group_stats =
        ScanGroupsBatched(plan, *store_, pool_.get(), &rows_scanned);
  }
  RollupStats rollup_stats;
  const ResultBuilder builder(plan, svdd_, rollup_.get(), &rollup_stats,
                              router_);
  TSC_ASSIGN_OR_RETURN(QueryResult result,
                       builder.Build(group_stats, rows_scanned));
  result.rollup_nodes_read = rollup_stats.nodes_read;
  result.exec_us = MicrosSince(exec_start);
  exec_hist.Record(result.exec_us);
  query_count.Increment();
  scanned_counter.Add(rows_scanned);
  obs::ChargeRowsScanned(rows_scanned);
  // Per-aggregate strategy accounting: a linear aggregate either hit the
  // hierarchy or fell back to a scanning strategy; non-linear aggregates
  // are out of scope for either counter.
  for (std::size_t a = 0; a < plan.strategies.size(); ++a) {
    if (plan.strategies[a] == ExecutionStrategy::kRollup) {
      rollup_hits_counter.Increment();
      obs::ChargeRollupHit();
    } else if (IsLinearAggregate(plan.aggregates[a])) {
      scan_fallbacks_counter.Increment();
      obs::ChargeScanFallback();
    }
  }
  agg_nodes_counter.Add(rollup_stats.nodes_read);
  obs::ChargeAggNodesRead(rollup_stats.nodes_read);
  return result;
}

StatusOr<QueryResult> ExecuteExact(const Matrix& data,
                                   const std::string& query_text) {
  TSC_ASSIGN_OR_RETURN(const QueryAst ast, ParseQuery(query_text));
  TSC_ASSIGN_OR_RETURN(const QueryPlan plan,
                       PlanQuery(ast, data.rows(), data.cols(), 0));
  std::uint64_t rows_scanned = 0;
  const std::vector<GroupAcc> group_stats = ScanGroups(
      plan, data.cols(),
      [&](std::size_t i, std::span<double> out) {
        const std::span<const double> row = data.Row(i);
        std::copy(row.begin(), row.end(), out.begin());
      },
      &rows_scanned);
  const ResultBuilder builder(plan, nullptr);
  return builder.Build(group_stats, rows_scanned);
}

}  // namespace tsc
