#include "query/parser.h"

#include <cmath>

#include "query/lexer.h"

namespace tsc {
namespace {

/// Recursive-descent parser over the token stream.
class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  StatusOr<QueryAst> Parse() {
    QueryAst ast;
    TSC_RETURN_IF_ERROR(Expect(TokenKind::kSelect));
    TSC_RETURN_IF_ERROR(ParseAggregateList(&ast));
    if (Peek().kind == TokenKind::kWhere) {
      Advance();
      TSC_RETURN_IF_ERROR(ParsePredicate(&ast));
    }
    if (Peek().kind == TokenKind::kGroup) {
      Advance();
      TSC_RETURN_IF_ERROR(Expect(TokenKind::kBy));
      if (Peek().kind == TokenKind::kRow) {
        ast.group_by = GroupBy::kRow;
      } else if (Peek().kind == TokenKind::kCol) {
        ast.group_by = GroupBy::kCol;
      } else {
        return Unexpected("'row' or 'col'");
      }
      Advance();
    }
    if (Peek().kind != TokenKind::kEnd) {
      return Unexpected("end of query");
    }
    return ast;
  }

 private:
  const Token& Peek() const { return tokens_[index_]; }
  const Token& Advance() { return tokens_[index_++]; }

  Status Unexpected(const std::string& wanted) const {
    return Status::InvalidArgument(
        "expected " + wanted + " but found " + TokenKindName(Peek().kind) +
        (Peek().text.empty() ? "" : " '" + Peek().text + "'") +
        " at position " + std::to_string(Peek().position));
  }

  Status Expect(TokenKind kind) {
    if (Peek().kind != kind) return Unexpected(TokenKindName(kind));
    Advance();
    return Status::Ok();
  }

  StatusOr<std::size_t> ExpectIndex() {
    if (Peek().kind != TokenKind::kNumber) return Unexpected("number");
    const Token& token = Advance();
    if (token.number < 0 || token.number != std::floor(token.number)) {
      return Status::InvalidArgument("index must be a non-negative integer, "
                                     "got '" +
                                     token.text + "'");
    }
    return static_cast<std::size_t>(token.number);
  }

  Status ParseAggregateList(QueryAst* ast) {
    for (;;) {
      TSC_RETURN_IF_ERROR(ParseAggregate(ast));
      if (Peek().kind != TokenKind::kComma) break;
      Advance();
    }
    return Status::Ok();
  }

  Status ParseAggregate(QueryAst* ast) {
    if (Peek().kind != TokenKind::kIdentifier) {
      return Unexpected("aggregate function");
    }
    const Token& name = Advance();
    TSC_ASSIGN_OR_RETURN(const AggregateFn fn, ParseAggregateFn(name.text));
    TSC_RETURN_IF_ERROR(Expect(TokenKind::kLparen));
    if (Peek().kind == TokenKind::kValue || Peek().kind == TokenKind::kStar) {
      Advance();
    } else {
      return Unexpected("'value' or '*'");
    }
    TSC_RETURN_IF_ERROR(Expect(TokenKind::kRparen));
    ast->aggregates.push_back(fn);
    return Status::Ok();
  }

  Status ParsePredicate(QueryAst* ast) {
    for (;;) {
      TSC_RETURN_IF_ERROR(ParseConstraint(ast));
      if (Peek().kind != TokenKind::kAnd) break;
      Advance();
    }
    return Status::Ok();
  }

  Status ParseConstraint(QueryAst* ast) {
    DimensionConstraint constraint;
    if (Peek().kind == TokenKind::kRow) {
      constraint.is_row = true;
    } else if (Peek().kind == TokenKind::kCol) {
      constraint.is_row = false;
    } else {
      return Unexpected("'row' or 'col'");
    }
    Advance();

    if (Peek().kind == TokenKind::kIn) {
      Advance();
      for (;;) {
        TSC_ASSIGN_OR_RETURN(const std::size_t lo, ExpectIndex());
        IndexRange range{lo, lo};
        if (Peek().kind == TokenKind::kColon) {
          Advance();
          TSC_ASSIGN_OR_RETURN(range.hi, ExpectIndex());
          if (range.hi < range.lo) {
            return Status::InvalidArgument("descending range");
          }
        }
        constraint.ranges.push_back(range);
        if (Peek().kind != TokenKind::kComma) break;
        Advance();
      }
    } else if (Peek().kind == TokenKind::kBetween) {
      Advance();
      IndexRange range;
      TSC_ASSIGN_OR_RETURN(range.lo, ExpectIndex());
      TSC_RETURN_IF_ERROR(Expect(TokenKind::kAnd));
      TSC_ASSIGN_OR_RETURN(range.hi, ExpectIndex());
      if (range.hi < range.lo) {
        return Status::InvalidArgument("descending BETWEEN range");
      }
      constraint.ranges.push_back(range);
    } else {
      return Unexpected("IN or BETWEEN");
    }
    ast->constraints.push_back(std::move(constraint));
    return Status::Ok();
  }

  std::vector<Token> tokens_;
  std::size_t index_ = 0;
};

}  // namespace

StatusOr<QueryAst> ParseQuery(const std::string& text) {
  TSC_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(text));
  Parser parser(std::move(tokens));
  TSC_ASSIGN_OR_RETURN(QueryAst ast, parser.Parse());
  if (ast.aggregates.empty()) {
    return Status::InvalidArgument("no aggregate selected");
  }
  return ast;
}

}  // namespace tsc
