#include "query/lexer.h"

#include <algorithm>
#include <cctype>
#include <cstdlib>

namespace tsc {
namespace {

std::string ToLower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return s;
}

}  // namespace

const char* TokenKindName(TokenKind kind) {
  switch (kind) {
    case TokenKind::kSelect:
      return "SELECT";
    case TokenKind::kWhere:
      return "WHERE";
    case TokenKind::kAnd:
      return "AND";
    case TokenKind::kIn:
      return "IN";
    case TokenKind::kBetween:
      return "BETWEEN";
    case TokenKind::kGroup:
      return "GROUP";
    case TokenKind::kBy:
      return "BY";
    case TokenKind::kRow:
      return "row";
    case TokenKind::kCol:
      return "col";
    case TokenKind::kValue:
      return "value";
    case TokenKind::kIdentifier:
      return "identifier";
    case TokenKind::kNumber:
      return "number";
    case TokenKind::kComma:
      return "','";
    case TokenKind::kColon:
      return "':'";
    case TokenKind::kLparen:
      return "'('";
    case TokenKind::kRparen:
      return "')'";
    case TokenKind::kStar:
      return "'*'";
    case TokenKind::kEnd:
      return "end of query";
  }
  return "?";
}

StatusOr<std::vector<Token>> Tokenize(const std::string& input) {
  std::vector<Token> tokens;
  std::size_t i = 0;
  while (i < input.size()) {
    const char c = input[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    Token token;
    token.position = i;
    if (c == ',') {
      token.kind = TokenKind::kComma;
      ++i;
    } else if (c == ':') {
      token.kind = TokenKind::kColon;
      ++i;
    } else if (c == '(') {
      token.kind = TokenKind::kLparen;
      ++i;
    } else if (c == ')') {
      token.kind = TokenKind::kRparen;
      ++i;
    } else if (c == '*') {
      token.kind = TokenKind::kStar;
      ++i;
    } else if (std::isdigit(static_cast<unsigned char>(c)) || c == '.') {
      std::size_t end = i;
      while (end < input.size() &&
             (std::isdigit(static_cast<unsigned char>(input[end])) ||
              input[end] == '.' || input[end] == 'e' || input[end] == 'E' ||
              ((input[end] == '+' || input[end] == '-') && end > i &&
               (input[end - 1] == 'e' || input[end - 1] == 'E')))) {
        ++end;
      }
      token.kind = TokenKind::kNumber;
      token.text = input.substr(i, end - i);
      char* parse_end = nullptr;
      token.number = std::strtod(token.text.c_str(), &parse_end);
      if (parse_end != token.text.c_str() + token.text.size()) {
        return Status::InvalidArgument("bad number '" + token.text +
                                       "' at position " + std::to_string(i));
      }
      i = end;
    } else if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::size_t end = i;
      while (end < input.size() &&
             (std::isalnum(static_cast<unsigned char>(input[end])) ||
              input[end] == '_')) {
        ++end;
      }
      token.text = input.substr(i, end - i);
      const std::string lower = ToLower(token.text);
      if (lower == "select") {
        token.kind = TokenKind::kSelect;
      } else if (lower == "where") {
        token.kind = TokenKind::kWhere;
      } else if (lower == "and") {
        token.kind = TokenKind::kAnd;
      } else if (lower == "in") {
        token.kind = TokenKind::kIn;
      } else if (lower == "between") {
        token.kind = TokenKind::kBetween;
      } else if (lower == "group") {
        token.kind = TokenKind::kGroup;
      } else if (lower == "by") {
        token.kind = TokenKind::kBy;
      } else if (lower == "row") {
        token.kind = TokenKind::kRow;
      } else if (lower == "col" || lower == "column" || lower == "day") {
        token.kind = TokenKind::kCol;
      } else if (lower == "value") {
        token.kind = TokenKind::kValue;
      } else {
        token.kind = TokenKind::kIdentifier;
        token.text = lower;
      }
      i = end;
    } else {
      return Status::InvalidArgument(
          std::string("unexpected character '") + c + "' at position " +
          std::to_string(i));
    }
    tokens.push_back(std::move(token));
  }
  Token end_token;
  end_token.kind = TokenKind::kEnd;
  end_token.position = input.size();
  tokens.push_back(end_token);
  return tokens;
}

}  // namespace tsc
