#ifndef TSC_OBS_SLOWLOG_H_
#define TSC_OBS_SLOWLOG_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "obs/query_context.h"

namespace tsc::obs {

/// One retained request: identity, the request line as the client sent
/// it, the outcome, and the full per-request cost vector.
struct SlowQueryEntry {
  std::uint64_t seq = 0;  ///< admission order (assigned by the log)
  std::string trace_id;
  std::string endpoint;      ///< "data" | "query" | "cell" | ...
  std::string request_line;  ///< "GET /api/v1/data?after=-10&rows=0:4"
  int http_status = 0;
  double latency_us = 0.0;
  QueryCostVector costs;
};

/// Bounded top-K log of the slowest requests seen so far: a min-heap on
/// latency under one mutex, so recording is O(log K) only when a request
/// actually displaces an entry and O(1) (compare against the current
/// floor) for the fast majority. K is fixed at construction; the server
/// owns one instance and /api/v1/debug/slow snapshots it.
///
/// Compiled out (record becomes a no-op) under TSC_OBS_DISABLED.
class SlowQueryLog {
 public:
  static constexpr std::size_t kDefaultCapacity = 64;

  explicit SlowQueryLog(std::size_t capacity = kDefaultCapacity);

  /// Keeps `entry` iff it ranks among the K slowest; assigns seq.
  void Record(SlowQueryEntry entry);

  /// Entries sorted slowest-first.
  std::vector<SlowQueryEntry> Snapshot() const;

  void Clear();
  std::size_t capacity() const { return capacity_; }

  /// Total requests offered to Record (retained or not).
  std::uint64_t recorded() const;

  /// {"capacity": K, "entries": [{trace_id, endpoint, request, status,
  /// latency_us, costs{...}}, ...]} — the wire format of
  /// /api/v1/debug/slow.
  static std::string ToJson(const std::vector<SlowQueryEntry>& entries,
                            std::size_t capacity);
  /// Aligned table for terminals (`tsctool slowlog`).
  static std::string ToTable(const std::vector<SlowQueryEntry>& entries);

 private:
  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::uint64_t next_seq_ = 0;
  std::vector<SlowQueryEntry> heap_;  ///< min-heap by latency_us
};

}  // namespace tsc::obs

#endif  // TSC_OBS_SLOWLOG_H_
