#include "obs/snapshot.h"

#include <fstream>

#include "util/json_writer.h"
#include "util/table_printer.h"

namespace tsc::obs {

std::string StatsSnapshot::ToTable() const {
  TablePrinter table({"metric", "type", "value", "p50", "p90", "p99", "max"});
  for (const auto& [name, value] : counters) {
    table.AddRow({name, "counter", std::to_string(value), "", "", "", ""});
  }
  for (const auto& [name, value] : gauges) {
    table.AddRow({name, "gauge", TablePrinter::Num(value), "", "", "", ""});
  }
  for (const auto& [name, summary] : histograms) {
    table.AddRow({name, "histogram", std::to_string(summary.count),
                  TablePrinter::Num(summary.p50),
                  TablePrinter::Num(summary.p90),
                  TablePrinter::Num(summary.p99),
                  TablePrinter::Num(summary.max)});
  }
  return table.ToString();
}

std::string StatsSnapshot::ToJson() const {
  JsonWriter json;
  json.BeginObject();
  json.Key("counters").BeginObject();
  for (const auto& [name, value] : counters) json.KV(name, value);
  json.EndObject();
  json.Key("gauges").BeginObject();
  for (const auto& [name, value] : gauges) json.KV(name, value);
  json.EndObject();
  json.Key("histograms").BeginObject();
  for (const auto& [name, summary] : histograms) {
    json.Key(name).BeginObject();
    json.KV("count", summary.count);
    json.KV("sum", summary.sum);
    json.KV("mean", summary.mean());
    json.KV("p50", summary.p50);
    json.KV("p90", summary.p90);
    json.KV("p99", summary.p99);
    json.KV("max", summary.max);
    json.EndObject();
  }
  json.EndObject();
  json.EndObject();
  return json.str();
}

Status StatsSnapshot::WriteJsonFile(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return Status::IoError("cannot create metrics file: " + path);
  out << ToJson() << "\n";
  if (!out) return Status::IoError("metrics write failed: " + path);
  return Status::Ok();
}

StatsSnapshot TakeSnapshot(const MetricRegistry& registry) {
  StatsSnapshot snapshot;
  snapshot.counters = registry.CounterValues();
  snapshot.gauges = registry.GaugeValues();
  snapshot.histograms = registry.HistogramValues();
  return snapshot;
}

}  // namespace tsc::obs
