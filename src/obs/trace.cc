#include "obs/trace.h"

#include <fstream>

#include "util/json_writer.h"

namespace tsc::obs {
namespace {

constinit thread_local std::uint32_t t_span_depth = 0;

}  // namespace

TraceRecorder& TraceRecorder::Default() {
  static TraceRecorder* recorder = new TraceRecorder();
  return *recorder;
}

void TraceRecorder::Enable(std::size_t capacity) {
  std::lock_guard<std::mutex> lock(mu_);
  capacity_ = capacity == 0 ? 1 : capacity;
  ring_.clear();
  ring_.reserve(capacity_);
  next_ = 0;
  wrapped_ = false;
  dropped_.store(0, std::memory_order_relaxed);
  origin_ = std::chrono::steady_clock::now();
  enabled_.store(true, std::memory_order_relaxed);
}

void TraceRecorder::Disable() {
  enabled_.store(false, std::memory_order_relaxed);
}

double TraceRecorder::NowMicros() const {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - origin_)
      .count();
}

void TraceRecorder::Record(TraceEvent event) {
  std::lock_guard<std::mutex> lock(mu_);
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(event));
    return;
  }
  // Full: overwrite the oldest slot.
  ring_[next_] = std::move(event);
  next_ = (next_ + 1) % capacity_;
  wrapped_ = true;
  dropped_.fetch_add(1, std::memory_order_relaxed);
}

std::vector<TraceEvent> TraceRecorder::Events() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (!wrapped_) return ring_;
  std::vector<TraceEvent> ordered;
  ordered.reserve(ring_.size());
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    ordered.push_back(ring_[(next_ + i) % ring_.size()]);
  }
  return ordered;
}

void TraceRecorder::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  ring_.clear();
  next_ = 0;
  wrapped_ = false;
  dropped_.store(0, std::memory_order_relaxed);
}

std::string TraceRecorder::ToChromeTraceJson() const {
  const std::vector<TraceEvent> events = Events();
  JsonWriter json;
  json.BeginObject();
  json.Key("traceEvents").BeginArray();
  for (const TraceEvent& event : events) {
    json.BeginObject();
    json.KV("name", event.name);
    json.KV("ph", "X");
    json.KV("ts", event.ts_us);
    json.KV("dur", event.dur_us);
    json.KV("pid", std::uint64_t{1});
    json.KV("tid", std::uint64_t{event.tid});
    json.Key("args").BeginObject();
    json.KV("depth", std::uint64_t{event.depth});
    json.EndObject();
    json.EndObject();
  }
  json.EndArray();
  json.KV("displayTimeUnit", "ms");
  json.KV("droppedEvents", dropped_events());
  json.EndObject();
  return json.str();
}

Status TraceRecorder::ExportChromeTrace(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return Status::IoError("cannot create trace file: " + path);
  out << ToChromeTraceJson() << "\n";
  if (!out) return Status::IoError("trace write failed: " + path);
  return Status::Ok();
}

std::uint32_t TraceSpan::CurrentDepth() { return t_span_depth; }

#ifndef TSC_OBS_DISABLED

void TraceSpan::Start(std::string name) {
  active_ = true;
  name_ = std::move(name);
  depth_ = t_span_depth++;
  start_us_ = TraceRecorder::Default().NowMicros();
}

void TraceSpan::Finish() {
  if (!active_) return;
  --t_span_depth;
  TraceRecorder& recorder = TraceRecorder::Default();
  // A span that outlives a Disable() is still recorded; harmless, and it
  // keeps begin/end bookkeeping trivial.
  TraceEvent event;
  event.name = std::move(name_);
  event.ts_us = start_us_;
  event.dur_us = recorder.NowMicros() - start_us_;
  event.tid = CurrentThreadId();
  event.depth = depth_;
  recorder.Record(std::move(event));
}

#endif  // TSC_OBS_DISABLED

}  // namespace tsc::obs
