#include "obs/prometheus.h"

#include <cctype>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <string_view>

namespace tsc::obs {
namespace {

using prometheus_detail::FamilySplit;
using prometheus_detail::SanitizeMetricName;
using prometheus_detail::SplitFamily;

/// Prometheus sample values: integral doubles print without a fraction,
/// everything else with enough digits to round-trip dashboards.
std::string FormatValue(double value) {
  if (std::isnan(value)) return "NaN";
  if (std::isinf(value)) return value > 0 ? "+Inf" : "-Inf";
  if (value == std::floor(value) && std::fabs(value) < 1e15) {
    char buffer[32];
    std::snprintf(buffer, sizeof(buffer), "%lld",
                  static_cast<long long>(value));
    return buffer;
  }
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.10g", value);
  return buffer;
}

/// Label-value escaping per the exposition format: backslash, quote and
/// newline.
std::string EscapeLabelValue(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (const char c : value) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

/// `{label="value"}` or "" for label-free samples; extra pre-rendered
/// labels (the histogram `le`) append after the dimension label.
std::string LabelSet(const FamilySplit& split, const std::string& extra) {
  if (split.label_name.empty() && extra.empty()) return "";
  std::string out = "{";
  if (!split.label_name.empty()) {
    out += split.label_name + "=\"" + EscapeLabelValue(split.label_value) +
           "\"";
    if (!extra.empty()) out += ",";
  }
  out += extra;
  out += "}";
  return out;
}

void EmitFamilyHeader(std::string* out, const std::string& family_sanitized,
                      const std::string& dotted, const char* type) {
  *out += "# HELP " + family_sanitized + " TSC instrument " + dotted + "\n";
  *out += "# TYPE " + family_sanitized + " " + type + "\n";
}

}  // namespace

namespace prometheus_detail {

std::string SanitizeMetricName(const std::string& name) {
  std::string out = "tsc_";
  out.reserve(name.size() + 4);
  for (const char c : name) {
    out += std::isalnum(static_cast<unsigned char>(c)) ? c : '_';
  }
  return out;
}

FamilySplit SplitFamily(const std::string& name) {
  struct Rule {
    std::string_view prefix;
    std::string_view label;
  };
  // Suffix-is-a-dimension families. slo.* is special-cased below because
  // the stat name sits between the prefix and the endpoint.
  static constexpr Rule kRules[] = {
      {"server.latency_us.", "endpoint"},
      {"io.backend.", "backend"},
  };
  FamilySplit split;
  for (const Rule& rule : kRules) {
    if (name.size() > rule.prefix.size() &&
        std::string_view(name).substr(0, rule.prefix.size()) == rule.prefix) {
      split.family = name.substr(0, rule.prefix.size() - 1);
      split.label_name = rule.label;
      split.label_value = name.substr(rule.prefix.size());
      return split;
    }
  }
  if (name.rfind("slo.", 0) == 0) {
    // slo.<stat>.<endpoint> -> family slo.<stat>, endpoint label.
    const std::size_t dot = name.find('.', 4);
    if (dot != std::string::npos && dot + 1 < name.size()) {
      split.family = name.substr(0, dot);
      split.label_name = "endpoint";
      split.label_value = name.substr(dot + 1);
      return split;
    }
  }
  split.family = name;
  return split;
}

}  // namespace prometheus_detail

std::string ToPrometheusText(const StatsSnapshot& snapshot) {
  std::string out;
  out.reserve(4096);

  // The snapshot vectors are sorted by dotted name, so all members of a
  // labeled family are adjacent: emit the HELP/TYPE header whenever the
  // family changes and samples always follow their TYPE line.
  std::string open_family;

  for (const auto& [name, value] : snapshot.counters) {
    const FamilySplit split = SplitFamily(name);
    const std::string family = SanitizeMetricName(split.family) + "_total";
    if (family != open_family) {
      EmitFamilyHeader(&out, family, split.family, "counter");
      open_family = family;
    }
    char number[32];
    std::snprintf(number, sizeof(number), "%" PRIu64, value);
    out += family + LabelSet(split, "") + " " + number + "\n";
  }

  open_family.clear();
  for (const auto& [name, value] : snapshot.gauges) {
    const FamilySplit split = SplitFamily(name);
    const std::string family = SanitizeMetricName(split.family);
    if (family != open_family) {
      EmitFamilyHeader(&out, family, split.family, "gauge");
      open_family = family;
    }
    out += family + LabelSet(split, "") + " " + FormatValue(value) + "\n";
  }

  open_family.clear();
  for (const auto& [name, summary] : snapshot.histograms) {
    const FamilySplit split = SplitFamily(name);
    const std::string family = SanitizeMetricName(split.family);
    if (family != open_family) {
      EmitFamilyHeader(&out, family, split.family, "histogram");
      open_family = family;
    }
    // Cumulative le series over the log2 buckets, trimmed to the highest
    // populated bucket (the remaining bounds would repeat the total).
    std::size_t top = 0;
    for (std::size_t i = 0; i < Histogram::kBuckets; ++i) {
      if (summary.buckets[i] != 0) top = i;
    }
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i <= top; ++i) {
      cumulative += summary.buckets[i];
      char le[32];
      std::snprintf(le, sizeof(le), "le=\"%llu\"",
                    static_cast<unsigned long long>(1ull << i));
      char number[32];
      std::snprintf(number, sizeof(number), "%" PRIu64, cumulative);
      out += family + "_bucket" + LabelSet(split, le) + " " + number + "\n";
    }
    char count[32];
    std::snprintf(count, sizeof(count), "%" PRIu64, summary.count);
    out += family + "_bucket" + LabelSet(split, "le=\"+Inf\"") + " " + count +
           "\n";
    out += family + "_sum" + LabelSet(split, "") + " " +
           FormatValue(summary.sum) + "\n";
    out += family + "_count" + LabelSet(split, "") + " " + count + "\n";
  }
  return out;
}

}  // namespace tsc::obs
