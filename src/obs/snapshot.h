#ifndef TSC_OBS_SNAPSHOT_H_
#define TSC_OBS_SNAPSHOT_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "util/status.h"

namespace tsc::obs {

/// Point-in-time copy of every instrument in a registry, with two
/// serializations: an aligned human-readable table (TablePrinter) and a
/// JSON document (schema in docs/observability.md).
struct StatsSnapshot {
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<std::pair<std::string, Histogram::Summary>> histograms;

  bool empty() const {
    return counters.empty() && gauges.empty() && histograms.empty();
  }

  /// Aligned text table: one row per instrument, quantile columns filled
  /// for histograms only.
  std::string ToTable() const;

  /// {"counters": {...}, "gauges": {...}, "histograms": {name: {count,
  /// sum, mean, p50, p90, p99, max}}}
  std::string ToJson() const;

  Status WriteJsonFile(const std::string& path) const;
};

/// Snapshots `registry` (the process-wide default when omitted).
StatsSnapshot TakeSnapshot(
    const MetricRegistry& registry = MetricRegistry::Default());

}  // namespace tsc::obs

#endif  // TSC_OBS_SNAPSHOT_H_
