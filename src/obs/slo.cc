#include "obs/slo.h"

#include <algorithm>

namespace tsc::obs {

SloTracker::SloTracker() : SloTracker(Options()) {}

SloTracker::SloTracker(const Options& options)
    : options_([&] {
        Options o = options;
        o.window_seconds = std::max<std::uint64_t>(1, o.window_seconds);
        o.objective = std::clamp(o.objective, 0.0, 0.999999);
        return o;
      }()),
      origin_(std::chrono::steady_clock::now()) {}

std::uint64_t SloTracker::NowSecond() const {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::seconds>(
          std::chrono::steady_clock::now() - origin_)
          .count());
}

void SloTracker::Record(const std::string& endpoint, double latency_us,
                        int http_status) {
#ifndef TSC_OBS_DISABLED
  const std::uint64_t second = NowSecond();
  std::lock_guard<std::mutex> lock(mu_);
  Endpoint& ep = endpoints_[endpoint];
  if (ep.ring.empty()) ep.ring.resize(options_.window_seconds);
  SecondBucket& bucket = ep.ring[second % options_.window_seconds];
  if (bucket.second != second) {
    bucket = SecondBucket{};
    bucket.second = second;
  }
  ++bucket.count;
  if (http_status >= 500) ++bucket.errors;
  if (http_status == 429) ++bucket.shed;
  if (latency_us > options_.latency_budget_us) ++bucket.over_budget;
  bucket.max_us = std::max(bucket.max_us, latency_us);
  ++bucket.latency[Histogram::BucketFor(latency_us)];
#else
  (void)endpoint;
  (void)latency_us;
  (void)http_status;
#endif
}

std::vector<SloTracker::EndpointStats> SloTracker::Snapshot() const {
  std::vector<EndpointStats> out;
  std::lock_guard<std::mutex> lock(mu_);
  // Clock read under the lock: every visible bucket tag was computed
  // before its writer's critical section, hence before this read, so
  // `now - bucket.second` cannot underflow and skip a live bucket.
  const std::uint64_t now = NowSecond();
  for (const auto& [name, ep] : endpoints_) {
    EndpointStats stats;
    stats.endpoint = name;
    std::array<std::uint64_t, Histogram::kBuckets> merged{};
    for (const SecondBucket& bucket : ep.ring) {
      // A slot is live when its tag falls inside the trailing window;
      // stale slots (overwritten lazily on the next write) are skipped.
      if (bucket.second == ~0ull || bucket.second > now ||
          now - bucket.second >= options_.window_seconds) {
        continue;
      }
      stats.count += bucket.count;
      stats.errors += bucket.errors;
      stats.shed += bucket.shed;
      stats.over_budget += bucket.over_budget;
      stats.max_us = std::max(stats.max_us, bucket.max_us);
      for (std::size_t i = 0; i < merged.size(); ++i) {
        merged[i] += bucket.latency[i];
      }
    }
    if (stats.count > 0) {
      stats.p50_us = Histogram::QuantileFromBuckets(merged, stats.count,
                                                    stats.max_us, 0.50);
      stats.p99_us = Histogram::QuantileFromBuckets(merged, stats.count,
                                                    stats.max_us, 0.99);
      stats.p999_us = Histogram::QuantileFromBuckets(merged, stats.count,
                                                     stats.max_us, 0.999);
      const double count = static_cast<double>(stats.count);
      stats.error_rate = static_cast<double>(stats.errors) / count;
      stats.shed_rate = static_cast<double>(stats.shed) / count;
      stats.burn_rate = (static_cast<double>(stats.over_budget) / count) /
                        (1.0 - options_.objective);
    }
    out.push_back(std::move(stats));
  }
  return out;
}

void SloTracker::PublishTo(MetricRegistry& registry) const {
  for (const EndpointStats& stats : Snapshot()) {
    const std::string& ep = stats.endpoint;
    registry.GetGauge("slo.count." + ep)
        .Set(static_cast<double>(stats.count));
    registry.GetGauge("slo.p50_us." + ep).Set(stats.p50_us);
    registry.GetGauge("slo.p99_us." + ep).Set(stats.p99_us);
    registry.GetGauge("slo.p999_us." + ep).Set(stats.p999_us);
    registry.GetGauge("slo.error_rate." + ep).Set(stats.error_rate);
    registry.GetGauge("slo.shed_rate." + ep).Set(stats.shed_rate);
    registry.GetGauge("slo.burn_rate." + ep).Set(stats.burn_rate);
  }
}

}  // namespace tsc::obs
