#ifndef TSC_OBS_METRICS_H_
#define TSC_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace tsc::obs {

// ---------------------------------------------------------------------------
// Compile-time kill switch. With -DTSC_OBS_DISABLED every instrument method
// below compiles to an empty inline body, so the paper-fidelity numbers carry
// zero metric cost. The types and the registry keep their full API either
// way: call sites never need #ifdefs.
// ---------------------------------------------------------------------------

/// Runtime kill switch (default on). Cheap enough to leave on in
/// production; the overhead-guard test uses it to measure the cost of the
/// instruments against an instrument-free baseline inside one binary.
void SetInstrumentsEnabled(bool enabled);
bool InstrumentsEnabled();

namespace detail {
extern std::atomic<bool> g_instruments_enabled;

/// Small dense id for the calling thread, assigned on first use. Shared by
/// the counter sharding and the trace recorder's tid column.
std::uint32_t AssignThreadId();
extern constinit thread_local std::uint32_t t_thread_id;
inline std::uint32_t ThreadId() {
  const std::uint32_t id = t_thread_id;
  return id != 0xffffffffu ? id : AssignThreadId();
}
}  // namespace detail

/// Dense sequential id of the calling thread (0 = first thread that asked).
inline std::uint32_t CurrentThreadId() { return detail::ThreadId(); }

// ---------------------------------------------------------------------------
// Counter
// ---------------------------------------------------------------------------

/// Monotonic event counter, sharded across cache-line-padded per-thread
/// slots so the hot-path increment is a plain relaxed load + store on a
/// line no other thread writes (~1ns), never a contended RMW. Value()
/// aggregates the slots on read.
///
/// Threads are mapped to slots by their dense id modulo kSlots; any group
/// of up to kSlots concurrently-created threads therefore gets distinct
/// slots and exact counts. A process that churns through more live threads
/// than that may lose the occasional increment to a slot collision — an
/// accepted trade for keeping the instrument off the critical path.
class Counter {
 public:
  static constexpr std::size_t kSlots = 64;

  Counter() : slots_(new Slot[kSlots]) {}
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void Add(std::uint64_t n) noexcept {
#ifndef TSC_OBS_DISABLED
    if (!detail::g_instruments_enabled.load(std::memory_order_relaxed)) return;
    Slot& slot = slots_[detail::ThreadId() & (kSlots - 1)];
    slot.value.store(slot.value.load(std::memory_order_relaxed) + n,
                     std::memory_order_relaxed);
#else
    (void)n;
#endif
  }
  void Increment() noexcept { Add(1); }

  /// Sum over all slots. Concurrent increments may or may not be visible;
  /// the value is exact once writers quiesce.
  std::uint64_t Value() const noexcept {
    std::uint64_t total = 0;
    for (std::size_t s = 0; s < kSlots; ++s) {
      total += slots_[s].value.load(std::memory_order_relaxed);
    }
    return total;
  }

  /// Zeroes every slot. Call while writers are quiet (stats operation).
  void Reset() noexcept {
    for (std::size_t s = 0; s < kSlots; ++s) {
      slots_[s].value.store(0, std::memory_order_relaxed);
    }
  }

 private:
  struct alignas(64) Slot {
    std::atomic<std::uint64_t> value{0};
  };
  std::unique_ptr<Slot[]> slots_;
};

// ---------------------------------------------------------------------------
// Gauge
// ---------------------------------------------------------------------------

/// Last-written (Set) or accumulated (Add) instantaneous value, e.g. the
/// number of blocks currently resident across all caches.
class Gauge {
 public:
  void Set(double value) noexcept {
#ifndef TSC_OBS_DISABLED
    if (!detail::g_instruments_enabled.load(std::memory_order_relaxed)) return;
    value_.store(value, std::memory_order_relaxed);
#else
    (void)value;
#endif
  }

  void Add(double delta) noexcept {
#ifndef TSC_OBS_DISABLED
    if (!detail::g_instruments_enabled.load(std::memory_order_relaxed)) return;
    double current = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(current, current + delta,
                                         std::memory_order_relaxed)) {
    }
#else
    (void)delta;
#endif
  }

  double Value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void Reset() noexcept { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

/// Log2-bucketed distribution for non-negative samples (latencies in
/// microseconds, probe lengths, ...). Bucket 0 covers [0, 1); bucket i
/// covers [2^(i-1), 2^i). Recording is one relaxed fetch_add on the bucket
/// plus a (usually skipped) max update; quantiles interpolate linearly
/// inside the winning bucket, with the top bucket clamped to the observed
/// maximum so p99/max never overshoot the data.
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 64;

  void Record(double value) noexcept {
#ifndef TSC_OBS_DISABLED
    if (!detail::g_instruments_enabled.load(std::memory_order_relaxed)) return;
    buckets_[BucketFor(value)].fetch_add(1, std::memory_order_relaxed);
    double current_max = max_.load(std::memory_order_relaxed);
    while (value > current_max &&
           !max_.compare_exchange_weak(current_max, value,
                                       std::memory_order_relaxed)) {
    }
    double current_sum = sum_.load(std::memory_order_relaxed);
    while (!sum_.compare_exchange_weak(current_sum, current_sum + value,
                                       std::memory_order_relaxed)) {
    }
#else
    (void)value;
#endif
  }

  /// Bucket index for `value` under the log2 rule above.
  static std::size_t BucketFor(double value) noexcept;
  /// Inclusive lower bound of bucket `index` (0, 1, 2, 4, 8, ...).
  static double BucketLowerBound(std::size_t index) noexcept;
  /// Exclusive upper bound of bucket `index` (1, 2, 4, 8, ...).
  static double BucketUpperBound(std::size_t index) noexcept;

  /// Point-in-time aggregate view; quantiles precomputed for export. The
  /// raw bucket counts ride along so exporters that need the full
  /// distribution (the Prometheus text serializer's cumulative `le`
  /// series) don't have to re-read the live histogram.
  struct Summary {
    std::uint64_t count = 0;
    double sum = 0.0;
    double max = 0.0;
    double p50 = 0.0;
    double p90 = 0.0;
    double p99 = 0.0;
    std::array<std::uint64_t, kBuckets> buckets{};

    double mean() const {
      return count == 0 ? 0.0 : sum / static_cast<double>(count);
    }
  };
  Summary Snapshot() const;

  std::uint64_t Count() const noexcept;
  /// Interpolated quantile, q in [0, 1], from a consistent bucket copy.
  double Quantile(double q) const;

  /// The quantile interpolation over an externally-held bucket array
  /// (same log2 layout). Shared with the SLO tracker, which merges
  /// per-second bucket rings before asking for percentiles.
  static double QuantileFromBuckets(
      const std::array<std::uint64_t, kBuckets>& buckets,
      std::uint64_t count, double observed_max, double q);

  void Reset() noexcept;

 private:
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
  std::atomic<double> sum_{0.0};
  std::atomic<double> max_{0.0};
};

// ---------------------------------------------------------------------------
// MetricRegistry
// ---------------------------------------------------------------------------

/// Named instrument directory. Get* creates on first use and returns a
/// stable reference — instruments are never deleted, so hot paths cache
/// the reference (static local) and skip the map lookup afterwards.
/// Instrument names are dotted lowercase paths ("block_cache.hits"); see
/// docs/observability.md for the conventions.
class MetricRegistry {
 public:
  MetricRegistry() = default;
  MetricRegistry(const MetricRegistry&) = delete;
  MetricRegistry& operator=(const MetricRegistry&) = delete;

  /// The process-wide registry every built-in instrument reports to.
  static MetricRegistry& Default();

  Counter& GetCounter(const std::string& name);
  Gauge& GetGauge(const std::string& name);
  Histogram& GetHistogram(const std::string& name);

  /// Sorted point-in-time values, for snapshot/export.
  std::vector<std::pair<std::string, std::uint64_t>> CounterValues() const;
  std::vector<std::pair<std::string, double>> GaugeValues() const;
  std::vector<std::pair<std::string, Histogram::Summary>> HistogramValues()
      const;

  /// Zeroes every instrument (names stay registered).
  void ResetAll();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace tsc::obs

#endif  // TSC_OBS_METRICS_H_
