#ifndef TSC_OBS_TRACE_H_
#define TSC_OBS_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "util/status.h"

namespace tsc::obs {

/// One completed span, Chrome trace_event "X" (complete) semantics:
/// [ts_us, ts_us + dur_us) on thread `tid`, nested `depth` spans deep on
/// that thread at the time it opened.
struct TraceEvent {
  std::string name;
  double ts_us = 0.0;   ///< start, microseconds since recorder start
  double dur_us = 0.0;  ///< duration, microseconds
  std::uint32_t tid = 0;
  std::uint32_t depth = 0;
};

/// Bounded in-memory span sink. Disabled (and free) by default; Enable()
/// arms it and TraceSpan destructors then append into a ring buffer of
/// fixed capacity — once full, the oldest events are overwritten and
/// dropped_events() counts what was lost. Export produces Chrome
/// trace_event JSON loadable in chrome://tracing or https://ui.perfetto.dev.
class TraceRecorder {
 public:
  static constexpr std::size_t kDefaultCapacity = 1 << 16;

  /// The process-wide recorder all TraceSpans report to.
  static TraceRecorder& Default();

  /// Arms the recorder with a fresh ring of `capacity` events and resets
  /// the clock origin to now.
  void Enable(std::size_t capacity = kDefaultCapacity);
  void Disable();
  bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }

  void Record(TraceEvent event);

  /// Events currently retained, oldest first.
  std::vector<TraceEvent> Events() const;
  std::uint64_t dropped_events() const {
    return dropped_.load(std::memory_order_relaxed);
  }
  void Clear();

  /// Chrome trace_event JSON ({"traceEvents": [...]}).
  std::string ToChromeTraceJson() const;
  Status ExportChromeTrace(const std::string& path) const;

  /// Microseconds since the recorder's clock origin.
  double NowMicros() const;

 private:
  TraceRecorder() = default;

  std::atomic<bool> enabled_{false};
  std::atomic<std::uint64_t> dropped_{0};
  mutable std::mutex mu_;
  std::vector<TraceEvent> ring_;
  std::size_t capacity_ = kDefaultCapacity;
  std::size_t next_ = 0;    ///< ring write cursor
  bool wrapped_ = false;    ///< ring has overwritten at least once
  std::chrono::steady_clock::time_point origin_ =
      std::chrono::steady_clock::now();
};

/// RAII span: marks a region of work on the current thread. Construction
/// is a single relaxed load when the recorder is disabled; when enabled it
/// snapshots the clock and the thread-local nesting depth, and the
/// destructor appends one TraceEvent. Spans must be destroyed in reverse
/// construction order per thread (automatic with scoped locals).
class TraceSpan {
 public:
#ifndef TSC_OBS_DISABLED
  explicit TraceSpan(const char* name) {
    if (!TraceRecorder::Default().enabled()) return;
    Start(name);
  }
  /// Dynamic span name "<prefix><index>" (e.g. "pass2.shard", 3); the
  /// string is only materialized when the recorder is armed.
  TraceSpan(const char* prefix, std::size_t index) {
    if (!TraceRecorder::Default().enabled()) return;
    Start(std::string(prefix) + std::to_string(index));
  }
  ~TraceSpan() { Finish(); }
#else
  explicit TraceSpan(const char*) {}
  TraceSpan(const char*, std::size_t) {}
#endif

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  /// Nesting depth of the calling thread's innermost open span (0 = none);
  /// exposed for the span-nesting tests.
  static std::uint32_t CurrentDepth();

 private:
#ifndef TSC_OBS_DISABLED
  void Start(std::string name);
  void Finish();

  bool active_ = false;
  std::string name_;
  double start_us_ = 0.0;
  std::uint32_t depth_ = 0;
#endif
};

}  // namespace tsc::obs

#endif  // TSC_OBS_TRACE_H_
