#include "obs/query_context.h"

#include <cstdio>

namespace tsc::obs {

namespace detail {
constinit thread_local QueryContext* t_query_context = nullptr;
}  // namespace detail

QueryCostVector QueryContext::Costs() const {
  QueryCostVector costs;
  costs.admission_wait_us =
      admission_wait_us.load(std::memory_order_relaxed);
  costs.cache_hits = cache_hits.load(std::memory_order_relaxed);
  costs.cache_misses = cache_misses.load(std::memory_order_relaxed);
  costs.blocks_fetched = blocks_fetched.load(std::memory_order_relaxed);
  costs.io_bytes = io_bytes.load(std::memory_order_relaxed);
  costs.rows_scanned = rows_scanned.load(std::memory_order_relaxed);
  costs.delta_probes = delta_probes.load(std::memory_order_relaxed);
  costs.batch_fill = batch_fill.load(std::memory_order_relaxed);
  costs.rollup_hits = rollup_hits.load(std::memory_order_relaxed);
  costs.scan_fallbacks = scan_fallbacks.load(std::memory_order_relaxed);
  costs.agg_nodes_read = agg_nodes_read.load(std::memory_order_relaxed);
  costs.shard_queries = shard_queries.load(std::memory_order_relaxed);
  costs.shard_fanout = shard_fanout.load(std::memory_order_relaxed);
  return costs;
}

std::string QueryCostVector::ToKvString() const {
  char buffer[448];
  std::snprintf(buffer, sizeof(buffer),
                "admission_wait_us=%llu cache_hits=%llu cache_misses=%llu "
                "blocks_fetched=%llu io_bytes=%llu rows_scanned=%llu "
                "delta_probes=%llu batch_fill=%llu rollup_hits=%llu "
                "scan_fallbacks=%llu agg_nodes_read=%llu shard_queries=%llu "
                "shard_fanout=%llu",
                static_cast<unsigned long long>(admission_wait_us),
                static_cast<unsigned long long>(cache_hits),
                static_cast<unsigned long long>(cache_misses),
                static_cast<unsigned long long>(blocks_fetched),
                static_cast<unsigned long long>(io_bytes),
                static_cast<unsigned long long>(rows_scanned),
                static_cast<unsigned long long>(delta_probes),
                static_cast<unsigned long long>(batch_fill),
                static_cast<unsigned long long>(rollup_hits),
                static_cast<unsigned long long>(scan_fallbacks),
                static_cast<unsigned long long>(agg_nodes_read),
                static_cast<unsigned long long>(shard_queries),
                static_cast<unsigned long long>(shard_fanout));
  return buffer;
}

std::string GenerateTraceId() {
  static std::atomic<std::uint64_t> sequence{0};
  // SplitMix64 finalizer over a sequence number: unique per process,
  // well-spread hex digits, no clock or RNG dependency.
  std::uint64_t x =
      sequence.fetch_add(1, std::memory_order_relaxed) + 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  x ^= x >> 31;
  char buffer[17];
  std::snprintf(buffer, sizeof(buffer), "%016llx",
                static_cast<unsigned long long>(x));
  return buffer;
}

}  // namespace tsc::obs
