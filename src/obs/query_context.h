#ifndef TSC_OBS_QUERY_CONTEXT_H_
#define TSC_OBS_QUERY_CONTEXT_H_

#include <atomic>
#include <cstdint>
#include <string>

#include "obs/metrics.h"

namespace tsc::obs {

// ---------------------------------------------------------------------------
// Per-request cost accounting. A QueryContext is created at the request
// boundary (the HTTP server, a CLI command, a test) and installed on the
// handling thread; the storage/query layers then charge every cache probe,
// disk block, I/O byte, scanned row and delta probe to the context that is
// current on their thread, right beside the process-wide counter each site
// already bumps. The invariant tests rely on: summed over all requests,
// the per-request deltas equal the process-wide counter deltas.
//
// Cost fields are relaxed atomics because attribution legitimately crosses
// threads — a query-scan pool shard or a CellBatcher leader charges work
// to the context of the request that caused it — and relaxed increments on
// a per-request struct are contention-free in practice.
// ---------------------------------------------------------------------------

/// Plain-value copy of one request's attributed costs, the paper's
/// disk-access metric live and per query (see docs/observability.md).
struct QueryCostVector {
  std::uint64_t admission_wait_us = 0;  ///< time queued before execution
  std::uint64_t cache_hits = 0;         ///< block_cache.hits delta
  std::uint64_t cache_misses = 0;       ///< block_cache.misses delta
  std::uint64_t blocks_fetched = 0;     ///< storage.disk.accesses delta
  std::uint64_t io_bytes = 0;           ///< io.bytes_read delta
  std::uint64_t rows_scanned = 0;       ///< query.rows_scanned delta
  std::uint64_t delta_probes = 0;       ///< delta.lookups delta
  std::uint64_t batch_fill = 0;         ///< CellBatcher wave size, if any
  std::uint64_t rollup_hits = 0;        ///< agg.rollup_hits delta
  std::uint64_t scan_fallbacks = 0;     ///< agg.scan_fallbacks delta
  std::uint64_t agg_nodes_read = 0;     ///< agg.nodes_read delta
  std::uint64_t shard_queries = 0;      ///< shard.queries delta
  std::uint64_t shard_fanout = 0;       ///< shard.fanout delta

  /// Compact `k=v k=v` form for the X-Query-Cost response header and
  /// the slow-query log's text rendering.
  std::string ToKvString() const;
};

/// One request's identity (trace id) plus its accumulating cost vector.
/// Install with ScopedQueryContext; the struct itself is cheap enough to
/// live on the request handler's stack.
class QueryContext {
 public:
  QueryContext() = default;
  explicit QueryContext(std::string trace_id)
      : trace_id_(std::move(trace_id)) {}
  QueryContext(const QueryContext&) = delete;
  QueryContext& operator=(const QueryContext&) = delete;

  const std::string& trace_id() const { return trace_id_; }
  void set_trace_id(std::string trace_id) { trace_id_ = std::move(trace_id); }

  /// Attribution targets; charged via the Charge* helpers below.
  std::atomic<std::uint64_t> admission_wait_us{0};
  std::atomic<std::uint64_t> cache_hits{0};
  std::atomic<std::uint64_t> cache_misses{0};
  std::atomic<std::uint64_t> blocks_fetched{0};
  std::atomic<std::uint64_t> io_bytes{0};
  std::atomic<std::uint64_t> rows_scanned{0};
  std::atomic<std::uint64_t> delta_probes{0};
  std::atomic<std::uint64_t> batch_fill{0};
  std::atomic<std::uint64_t> rollup_hits{0};
  std::atomic<std::uint64_t> scan_fallbacks{0};
  std::atomic<std::uint64_t> agg_nodes_read{0};
  std::atomic<std::uint64_t> shard_queries{0};
  std::atomic<std::uint64_t> shard_fanout{0};

  /// Consistent-enough copy of the costs (relaxed loads; exact once the
  /// request's work has quiesced, which is when responses are built).
  QueryCostVector Costs() const;

 private:
  std::string trace_id_;
};

namespace detail {
/// The context current on this thread, nullptr outside any request.
extern constinit thread_local QueryContext* t_query_context;
}  // namespace detail

/// The installed context, or nullptr. Always nullptr (and free) under
/// TSC_OBS_DISABLED.
inline QueryContext* CurrentQueryContext() {
#ifndef TSC_OBS_DISABLED
  return detail::t_query_context;
#else
  return nullptr;
#endif
}

/// RAII install/restore of the thread's current context. Pass the parent
/// thread's context into worker lambdas (pool shards, batch leaders) to
/// keep attribution flowing across thread hops:
///
///   QueryContext* parent = CurrentQueryContext();
///   pool.Run([parent] { ScopedQueryContext scope(parent); ... });
#ifndef TSC_OBS_DISABLED
class ScopedQueryContext {
 public:
  explicit ScopedQueryContext(QueryContext* context)
      : previous_(detail::t_query_context) {
    detail::t_query_context = context;
  }
  ~ScopedQueryContext() { detail::t_query_context = previous_; }
  ScopedQueryContext(const ScopedQueryContext&) = delete;
  ScopedQueryContext& operator=(const ScopedQueryContext&) = delete;

 private:
  QueryContext* previous_;
};
#else
class ScopedQueryContext {
 public:
  explicit ScopedQueryContext(QueryContext*) {}
  ScopedQueryContext(const ScopedQueryContext&) = delete;
  ScopedQueryContext& operator=(const ScopedQueryContext&) = delete;
};
#endif

// ---------------------------------------------------------------------------
// Charge helpers. Each is placed directly beside the process-wide counter
// increment it mirrors, so per-request deltas sum to the process counters.
// Cost on the instrumented path: one thread-local load + branch (the
// pointer is null whenever no request is in flight); empty bodies under
// TSC_OBS_DISABLED.
// ---------------------------------------------------------------------------

namespace detail {
inline void Charge(std::atomic<std::uint64_t> QueryContext::* field,
                   std::uint64_t n) {
#ifndef TSC_OBS_DISABLED
  if (QueryContext* context = t_query_context) {
    (context->*field).fetch_add(n, std::memory_order_relaxed);
  }
#else
  (void)field;
  (void)n;
#endif
}
}  // namespace detail

inline void ChargeCacheHit() { detail::Charge(&QueryContext::cache_hits, 1); }
inline void ChargeCacheMiss() {
  detail::Charge(&QueryContext::cache_misses, 1);
}
inline void ChargeBlocksFetched(std::uint64_t blocks) {
  detail::Charge(&QueryContext::blocks_fetched, blocks);
}
inline void ChargeIoBytes(std::uint64_t bytes) {
  detail::Charge(&QueryContext::io_bytes, bytes);
}
inline void ChargeRowsScanned(std::uint64_t rows) {
  detail::Charge(&QueryContext::rows_scanned, rows);
}
inline void ChargeDeltaProbe() {
  detail::Charge(&QueryContext::delta_probes, 1);
}
inline void ChargeAdmissionWaitUs(std::uint64_t wait_us) {
  detail::Charge(&QueryContext::admission_wait_us, wait_us);
}
/// Aggregate-hierarchy accounting: one rollup hit per aggregate the
/// planner resolved from the hierarchy, one scan fallback per linear
/// aggregate that had to scan or sweep instead, and the segment-tree
/// nodes consumed answering this request.
inline void ChargeRollupHit() { detail::Charge(&QueryContext::rollup_hits, 1); }
inline void ChargeScanFallback() {
  detail::Charge(&QueryContext::scan_fallbacks, 1);
}
inline void ChargeAggNodesRead(std::uint64_t nodes) {
  detail::Charge(&QueryContext::agg_nodes_read, nodes);
}
/// Sharded scatter-gather accounting: one shard query per batched
/// operation routed through a ShardedStore/ShardRouter, and the number
/// of shards that operation actually fanned out to.
inline void ChargeShardQuery() {
  detail::Charge(&QueryContext::shard_queries, 1);
}
inline void ChargeShardFanout(std::uint64_t shards) {
  detail::Charge(&QueryContext::shard_fanout, shards);
}
/// Wave size of the CellBatcher batch that served this request (set, not
/// accumulated: one cell probe rides exactly one wave).
inline void SetBatchFill(std::uint64_t fill) {
#ifndef TSC_OBS_DISABLED
  if (QueryContext* context = detail::t_query_context) {
    context->batch_fill.store(fill, std::memory_order_relaxed);
  }
#else
  (void)fill;
#endif
}

/// Process-unique 16-hex-digit trace id (SplitMix64 of a process-wide
/// sequence, so ids from one process never collide and cost nothing to
/// coordinate).
std::string GenerateTraceId();

}  // namespace tsc::obs

#endif  // TSC_OBS_QUERY_CONTEXT_H_
