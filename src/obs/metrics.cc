#include "obs/metrics.h"

#include <algorithm>
#include <bit>
#include <cmath>

namespace tsc::obs {

namespace detail {

std::atomic<bool> g_instruments_enabled{true};
constinit thread_local std::uint32_t t_thread_id = 0xffffffffu;

std::uint32_t AssignThreadId() {
  static std::atomic<std::uint32_t> next{0};
  t_thread_id = next.fetch_add(1, std::memory_order_relaxed);
  return t_thread_id;
}

}  // namespace detail

void SetInstrumentsEnabled(bool enabled) {
  detail::g_instruments_enabled.store(enabled, std::memory_order_relaxed);
}

bool InstrumentsEnabled() {
  return detail::g_instruments_enabled.load(std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

std::size_t Histogram::BucketFor(double value) noexcept {
  if (!(value >= 1.0)) return 0;  // also catches NaN and negatives
  // Bucket i covers [2^(i-1), 2^i): i = floor(log2(value)) + 1.
  const double exponent = std::floor(std::log2(value));
  const std::size_t index = static_cast<std::size_t>(exponent) + 1;
  return std::min(index, kBuckets - 1);
}

double Histogram::BucketLowerBound(std::size_t index) noexcept {
  if (index == 0) return 0.0;
  return std::ldexp(1.0, static_cast<int>(index) - 1);  // 2^(i-1)
}

double Histogram::BucketUpperBound(std::size_t index) noexcept {
  return std::ldexp(1.0, static_cast<int>(index));  // 2^i
}

std::uint64_t Histogram::Count() const noexcept {
  std::uint64_t total = 0;
  for (const auto& bucket : buckets_) {
    total += bucket.load(std::memory_order_relaxed);
  }
  return total;
}

double Histogram::QuantileFromBuckets(
    const std::array<std::uint64_t, kBuckets>& buckets, std::uint64_t count,
    double observed_max, double q) {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the sample the quantile falls on (1-based, nearest-rank with
  // interpolation inside the bucket).
  const double rank = q * static_cast<double>(count - 1) + 1.0;
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    if (buckets[i] == 0) continue;
    const double before = static_cast<double>(cumulative);
    cumulative += buckets[i];
    if (rank <= static_cast<double>(cumulative)) {
      const double lower = BucketLowerBound(i);
      double upper = BucketUpperBound(i);
      // The top populated bucket cannot exceed the observed maximum.
      // >= matters: when every sample equals the bucket's lower bound
      // (max == lower, e.g. all-1s batches), interpolation against the
      // full bucket width used to report p50 = 1.5 > max.
      if (observed_max >= lower && observed_max < upper) upper = observed_max;
      const double fraction =
          (rank - before) / static_cast<double>(buckets[i]);
      return lower + (upper - lower) * std::clamp(fraction, 0.0, 1.0);
    }
  }
  return observed_max;
}

double Histogram::Quantile(double q) const {
  std::array<std::uint64_t, kBuckets> copy;
  std::uint64_t count = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    copy[i] = buckets_[i].load(std::memory_order_relaxed);
    count += copy[i];
  }
  return QuantileFromBuckets(copy, count,
                             max_.load(std::memory_order_relaxed), q);
}

Histogram::Summary Histogram::Snapshot() const {
  Summary summary;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    summary.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
    summary.count += summary.buckets[i];
  }
  summary.sum = sum_.load(std::memory_order_relaxed);
  summary.max = max_.load(std::memory_order_relaxed);
  summary.p50 =
      QuantileFromBuckets(summary.buckets, summary.count, summary.max, 0.50);
  summary.p90 =
      QuantileFromBuckets(summary.buckets, summary.count, summary.max, 0.90);
  summary.p99 =
      QuantileFromBuckets(summary.buckets, summary.count, summary.max, 0.99);
  return summary;
}

void Histogram::Reset() noexcept {
  for (auto& bucket : buckets_) bucket.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  max_.store(0.0, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// MetricRegistry
// ---------------------------------------------------------------------------

MetricRegistry& MetricRegistry::Default() {
  // Leaked on purpose: instruments are referenced from static locals in
  // hot paths, which must stay valid through static destruction.
  static MetricRegistry* registry = new MetricRegistry();
  return *registry;
}

Counter& MetricRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricRegistry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return *slot;
}

std::vector<std::pair<std::string, std::uint64_t>>
MetricRegistry::CounterValues() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, std::uint64_t>> values;
  values.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    values.emplace_back(name, counter->Value());
  }
  return values;
}

std::vector<std::pair<std::string, double>> MetricRegistry::GaugeValues()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, double>> values;
  values.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) {
    values.emplace_back(name, gauge->Value());
  }
  return values;
}

std::vector<std::pair<std::string, Histogram::Summary>>
MetricRegistry::HistogramValues() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, Histogram::Summary>> values;
  values.reserve(histograms_.size());
  for (const auto& [name, histogram] : histograms_) {
    values.emplace_back(name, histogram->Snapshot());
  }
  return values;
}

void MetricRegistry::ResetAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, gauge] : gauges_) gauge->Reset();
  for (auto& [name, histogram] : histograms_) histogram->Reset();
}

}  // namespace tsc::obs
