#include "obs/slowlog.h"

#include <algorithm>

#include "util/json_writer.h"
#include "util/table_printer.h"

namespace tsc::obs {
namespace {

/// Min-heap comparator: the heap root is the fastest retained request,
/// i.e. the displacement floor.
bool SlowerThan(const SlowQueryEntry& a, const SlowQueryEntry& b) {
  return a.latency_us > b.latency_us;
}

void CostsToJson(JsonWriter* json, const QueryCostVector& costs) {
  json->BeginObject();
  json->KV("admission_wait_us", costs.admission_wait_us);
  json->KV("cache_hits", costs.cache_hits);
  json->KV("cache_misses", costs.cache_misses);
  json->KV("blocks_fetched", costs.blocks_fetched);
  json->KV("io_bytes", costs.io_bytes);
  json->KV("rows_scanned", costs.rows_scanned);
  json->KV("delta_probes", costs.delta_probes);
  json->KV("batch_fill", costs.batch_fill);
  json->EndObject();
}

}  // namespace

SlowQueryLog::SlowQueryLog(std::size_t capacity)
    : capacity_(std::max<std::size_t>(1, capacity)) {
  heap_.reserve(capacity_);
}

void SlowQueryLog::Record(SlowQueryEntry entry) {
#ifndef TSC_OBS_DISABLED
  std::lock_guard<std::mutex> lock(mu_);
  entry.seq = next_seq_++;
  if (heap_.size() < capacity_) {
    heap_.push_back(std::move(entry));
    std::push_heap(heap_.begin(), heap_.end(), SlowerThan);
    return;
  }
  if (entry.latency_us <= heap_.front().latency_us) return;
  std::pop_heap(heap_.begin(), heap_.end(), SlowerThan);
  heap_.back() = std::move(entry);
  std::push_heap(heap_.begin(), heap_.end(), SlowerThan);
#else
  (void)entry;
#endif
}

std::vector<SlowQueryEntry> SlowQueryLog::Snapshot() const {
  std::vector<SlowQueryEntry> entries;
  {
    std::lock_guard<std::mutex> lock(mu_);
    entries = heap_;
  }
  std::sort(entries.begin(), entries.end(),
            [](const SlowQueryEntry& a, const SlowQueryEntry& b) {
              if (a.latency_us != b.latency_us) {
                return a.latency_us > b.latency_us;
              }
              return a.seq < b.seq;
            });
  return entries;
}

void SlowQueryLog::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  heap_.clear();
}

std::uint64_t SlowQueryLog::recorded() const {
  std::lock_guard<std::mutex> lock(mu_);
  return next_seq_;
}

std::string SlowQueryLog::ToJson(const std::vector<SlowQueryEntry>& entries,
                                 std::size_t capacity) {
  JsonWriter json;
  json.BeginObject();
  json.KV("capacity", static_cast<std::uint64_t>(capacity));
  json.KV("count", static_cast<std::uint64_t>(entries.size()));
  json.Key("entries").BeginArray();
  for (const SlowQueryEntry& entry : entries) {
    json.BeginObject();
    json.KV("seq", entry.seq);
    json.KV("trace_id", entry.trace_id);
    json.KV("endpoint", entry.endpoint);
    json.KV("request", entry.request_line);
    json.KV("status", static_cast<std::int64_t>(entry.http_status));
    json.KV("latency_us", entry.latency_us);
    json.Key("costs");
    CostsToJson(&json, entry.costs);
    json.EndObject();
  }
  json.EndArray();
  json.EndObject();
  return json.str();
}

std::string SlowQueryLog::ToTable(
    const std::vector<SlowQueryEntry>& entries) {
  TablePrinter table({"latency_us", "status", "trace_id", "endpoint",
                      "admission_us", "cache h/m", "blocks", "io_bytes",
                      "rows", "request"});
  for (const SlowQueryEntry& entry : entries) {
    table.AddRow({TablePrinter::Num(entry.latency_us),
                  std::to_string(entry.http_status), entry.trace_id,
                  entry.endpoint,
                  std::to_string(entry.costs.admission_wait_us),
                  std::to_string(entry.costs.cache_hits) + "/" +
                      std::to_string(entry.costs.cache_misses),
                  std::to_string(entry.costs.blocks_fetched),
                  std::to_string(entry.costs.io_bytes),
                  std::to_string(entry.costs.rows_scanned),
                  entry.request_line});
  }
  return table.ToString();
}

}  // namespace tsc::obs
