#ifndef TSC_OBS_SLO_H_
#define TSC_OBS_SLO_H_

#include <array>
#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace tsc::obs {

/// Rolling-window SLO tracker: per-endpoint latency percentiles, error
/// and shed rates, and latency-budget burn over the last
/// `window_seconds` of traffic (not since process start — a spike ages
/// out of the window instead of polluting the average forever).
///
/// Implementation: a ring of per-second buckets per endpoint, each a
/// log2 histogram plus outcome counts, tagged with its absolute second
/// so stale slots self-invalidate lazily; one mutex, touched once per
/// request (the server path records milliseconds-scale work, so a
/// sub-microsecond lock is far inside the 5% overhead budget).
///
/// Burn rate is the classic multiwindow-burn numerator: the fraction of
/// requests over the latency budget divided by the SLO's error
/// allowance (1 - objective). burn == 1.0 means the budget is being
/// spent exactly as fast as the objective allows; > 1 means an alert.
class SloTracker {
 public:
  struct Options {
    std::uint64_t window_seconds = 60;
    double latency_budget_us = 250'000.0;  ///< per-request latency SLO
    double objective = 0.999;              ///< fraction within budget
  };

  SloTracker();
  explicit SloTracker(const Options& options);

  /// Records one finished request. `http_status` classifies outcomes:
  /// >= 500 is an error, 429 is a shed; both still count latency.
  void Record(const std::string& endpoint, double latency_us,
              int http_status);

  struct EndpointStats {
    std::string endpoint;
    std::uint64_t count = 0;
    std::uint64_t errors = 0;
    std::uint64_t shed = 0;
    std::uint64_t over_budget = 0;
    double p50_us = 0.0;
    double p99_us = 0.0;
    double p999_us = 0.0;
    double max_us = 0.0;
    double error_rate = 0.0;
    double shed_rate = 0.0;
    double burn_rate = 0.0;  ///< over_budget_rate / (1 - objective)
  };

  /// Per-endpoint stats over the live window, endpoint-name order.
  std::vector<EndpointStats> Snapshot() const;

  /// Publishes the snapshot as `slo.<stat>.<endpoint>` gauges so the
  /// window stats ride every registry export (/metrics, tsctool stats).
  void PublishTo(MetricRegistry& registry) const;

  const Options& options() const { return options_; }

 private:
  struct SecondBucket {
    std::uint64_t second = ~0ull;  ///< absolute tag; ~0 = never used
    std::uint64_t count = 0;
    std::uint64_t errors = 0;
    std::uint64_t shed = 0;
    std::uint64_t over_budget = 0;
    double max_us = 0.0;
    std::array<std::uint64_t, Histogram::kBuckets> latency{};
  };
  struct Endpoint {
    std::vector<SecondBucket> ring;
  };

  std::uint64_t NowSecond() const;

  const Options options_;
  const std::chrono::steady_clock::time_point origin_;
  mutable std::mutex mu_;
  std::map<std::string, Endpoint> endpoints_;
};

}  // namespace tsc::obs

#endif  // TSC_OBS_SLO_H_
