#ifndef TSC_OBS_PROMETHEUS_H_
#define TSC_OBS_PROMETHEUS_H_

#include <string>

#include "obs/snapshot.h"

namespace tsc::obs {

/// Renders a snapshot in the Prometheus text exposition format
/// (version 0.0.4): every instrument becomes a `tsc_`-prefixed family
/// with `# HELP` / `# TYPE` comments, counters get the `_total` suffix,
/// and log2 histograms are exported natively as cumulative `le` bucket
/// series plus `_sum`/`_count` (so PromQL `histogram_quantile` works on
/// them). Dotted suffixes that name a dimension rather than a metric —
/// `server.latency_us.<endpoint>`, `slo.<stat>.<endpoint>`,
/// `io.backend.<backend>` — fold into one family with a label, which is
/// what makes per-endpoint dashboards a one-selector query.
///
/// Serve with `Content-Type: text/plain; version=0.0.4`.
std::string ToPrometheusText(const StatsSnapshot& snapshot);

namespace prometheus_detail {
/// `tsc_` + name with every non-[a-zA-Z0-9_] byte replaced by '_'.
std::string SanitizeMetricName(const std::string& name);
/// Splits a dotted name into {family, label_name, label_value} under the
/// dimension rules above; label_name is empty for plain metrics.
struct FamilySplit {
  std::string family;       ///< dotted family name, pre-sanitization
  std::string label_name;   ///< "" when the name carries no dimension
  std::string label_value;
};
FamilySplit SplitFamily(const std::string& name);
}  // namespace prometheus_detail

}  // namespace tsc::obs

#endif  // TSC_OBS_PROMETHEUS_H_
