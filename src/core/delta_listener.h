#ifndef TSC_CORE_DELTA_LISTENER_H_
#define TSC_CORE_DELTA_LISTENER_H_

#include <cstddef>
#include <memory>
#include <mutex>
#include <vector>

namespace tsc {

/// Observer of SvddModel delta-table mutations. Derived acceleration
/// structures (the cube-layer aggregate hierarchy) register one of these
/// so each PatchCell keeps their O(log) rollup nodes fresh instead of
/// forcing a rebuild.
class DeltaUpdateListener {
 public:
  virtual ~DeltaUpdateListener() = default;

  /// Cell (row, col) changed its stored delta from `old_delta` (0.0 and
  /// had_old == false when the cell was not an outlier before) to
  /// `new_delta`. Called after the delta table itself was updated, on
  /// the mutating thread; implementations do their own locking against
  /// concurrent readers.
  virtual void OnDeltaUpdate(std::size_t row, std::size_t col,
                             double old_delta, bool had_old,
                             double new_delta) = 0;

  /// The model grew to `new_row_count` rows (FoldInRows). Called after
  /// the fold, on the mutating thread. Default ignores it; structures
  /// sized to the old row count mark themselves stale and rebuild
  /// lazily on their next read.
  virtual void OnRowsAppended(std::size_t new_row_count) { (void)new_row_count; }
};

/// Listener set attached to one SvddModel instance. Registration is a
/// statistics/acceleration concern, not logical model state (the same
/// stance the DeltaTable takes for its probe counter), so attaching is
/// const; listeners are held weakly so a dropped hierarchy never
/// dangles. Copies and moves of the owning model deliberately start
/// with an empty set: listeners are bound to the address of the
/// instance they indexed.
class DeltaListenerRegistry {
 public:
  DeltaListenerRegistry() = default;
  DeltaListenerRegistry(const DeltaListenerRegistry&) {}
  DeltaListenerRegistry& operator=(const DeltaListenerRegistry&) {
    return *this;
  }
  DeltaListenerRegistry(DeltaListenerRegistry&&) noexcept {}
  DeltaListenerRegistry& operator=(DeltaListenerRegistry&&) noexcept {
    return *this;
  }

  void Attach(std::weak_ptr<DeltaUpdateListener> listener) const {
    const std::lock_guard<std::mutex> lock(mutex_);
    // Prune expired slots while we hold the lock anyway.
    std::erase_if(listeners_,
                  [](const std::weak_ptr<DeltaUpdateListener>& w) {
                    return w.expired();
                  });
    listeners_.push_back(std::move(listener));
  }

  void Notify(std::size_t row, std::size_t col, double old_delta,
              bool had_old, double new_delta) const {
    std::vector<std::shared_ptr<DeltaUpdateListener>> alive;
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      alive.reserve(listeners_.size());
      for (const auto& weak : listeners_) {
        if (auto strong = weak.lock()) alive.push_back(std::move(strong));
      }
    }
    // Dispatch outside the registry lock: listeners take their own
    // (reader/writer) locks and must not nest under this one.
    for (const auto& listener : alive) {
      listener->OnDeltaUpdate(row, col, old_delta, had_old, new_delta);
    }
  }

  void NotifyRowsAppended(std::size_t new_row_count) const {
    std::vector<std::shared_ptr<DeltaUpdateListener>> alive;
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      alive.reserve(listeners_.size());
      for (const auto& weak : listeners_) {
        if (auto strong = weak.lock()) alive.push_back(std::move(strong));
      }
    }
    for (const auto& listener : alive) {
      listener->OnRowsAppended(new_row_count);
    }
  }

  bool empty() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& weak : listeners_) {
      if (!weak.expired()) return false;
    }
    return true;
  }

 private:
  mutable std::mutex mutex_;
  mutable std::vector<std::weak_ptr<DeltaUpdateListener>> listeners_;
};

}  // namespace tsc

#endif  // TSC_CORE_DELTA_LISTENER_H_
