#ifndef TSC_CORE_ROW_OUTLIER_H_
#define TSC_CORE_ROW_OUTLIER_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "core/compressed_store.h"
#include "core/svd_compressor.h"
#include "core/svdd_compressor.h"
#include "linalg/matrix.h"
#include "util/status.h"

namespace tsc {

/// The design alternative Section 4.2 argues AGAINST: instead of storing
/// cell-level deltas, store the complete raw rows of the worst-
/// reconstructed sequences ("treating the whole customer as an outlier").
///
/// "The motivation is that a given customer may follow the patterns that
/// SVD expects, with a few deviations on some particular days. Thus, it
/// is more reasonable to store the deltas for those specific days" — this
/// model exists so bench/ablation_svdd can demonstrate that claim
/// quantitatively: a stored row costs M*b bytes, the price of M/2 cell
/// deltas, so under the same budget far fewer outliers are repaired.
class RowOutlierModel : public CompressedStore {
 public:
  RowOutlierModel() = default;
  RowOutlierModel(SvdModel svd, std::unordered_map<std::size_t, std::vector<double>>
                                   stored_rows);

  std::size_t rows() const override { return svd_.rows(); }
  std::size_t cols() const override { return svd_.cols(); }
  std::size_t k() const { return svd_.k(); }
  std::size_t stored_row_count() const { return stored_rows_.size(); }

  double ReconstructCell(std::size_t row, std::size_t col) const override;
  void ReconstructRow(std::size_t row, std::span<double> out) const override;

  /// SVD bytes + M*b per stored row + an 8-byte row id each.
  std::uint64_t CompressedBytes() const override;
  std::string MethodName() const override { return "svd+rows"; }

  bool IsStoredRow(std::size_t row) const {
    return stored_rows_.count(row) > 0;
  }

 private:
  SvdModel svd_;
  std::unordered_map<std::size_t, std::vector<double>> stored_rows_;
};

/// Builds the row-outlier model under the same space rules as SVDD:
/// choose k and the number of stored rows to minimize total squared
/// error within `space_percent` of the original, evaluating every
/// affordable k (the direct analogue of the SVDD optimizer, with rows
/// ranked by their total squared reconstruction error).
StatusOr<RowOutlierModel> BuildRowOutlierModel(const Matrix& data,
                                               const SvddBuildOptions& options);

}  // namespace tsc

#endif  // TSC_CORE_ROW_OUTLIER_H_
