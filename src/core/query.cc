#include "core/query.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <limits>
#include <sstream>

#include "util/logging.h"
#include "util/stats.h"

namespace tsc {
namespace {

/// Accumulates cells and finalizes the requested aggregate. Values are
/// buffered only for the order statistic (median).
class AggregateAccumulator {
 public:
  explicit AggregateAccumulator(AggregateFn fn) : fn_(fn) {}

  void Add(double value) {
    stats_.Add(value);
    if (fn_ == AggregateFn::kMedian) values_.push_back(value);
  }

  double Finalize() const {
    switch (fn_) {
      case AggregateFn::kSum:
        return stats_.sum();
      case AggregateFn::kAvg:
        return stats_.mean();
      case AggregateFn::kCount:
        return static_cast<double>(stats_.count());
      case AggregateFn::kMin:
        return stats_.count() == 0 ? 0.0 : stats_.min();
      case AggregateFn::kMax:
        return stats_.count() == 0 ? 0.0 : stats_.max();
      case AggregateFn::kStddev:
        return stats_.stddev();
      case AggregateFn::kMedian:
        return values_.empty() ? 0.0 : Quantiles(values_).Median();
    }
    return 0.0;
  }

 private:
  AggregateFn fn_;
  RunningStats stats_;
  std::vector<double> values_;
};

/// Upper bound on the ids one selection may expand to. Selections name
/// rows/columns of a matrix that fits on one machine, so anything past
/// this is a typo (e.g. "0:999999999999") that would otherwise stall the
/// process allocating the id list.
constexpr std::uint64_t kMaxSelectionIds = 1ull << 24;  // 16M

/// Parses one fully-consumed non-negative integer; rejects trailing
/// garbage ("3x7" is an error, not 3).
StatusOr<long long> ParseIndex(const std::string& text) {
  char* end = nullptr;
  const long long id = std::strtoll(text.c_str(), &end, 10);
  if (end == text.c_str() || *end != '\0' || id < 0) {
    return Status::InvalidArgument("bad index: " + text);
  }
  return id;
}

StatusOr<std::vector<std::size_t>> ParseSelection(const std::string& text) {
  std::vector<std::size_t> ids;
  std::stringstream ss(text);
  std::string token;
  while (std::getline(ss, token, ',')) {
    if (token.empty()) continue;
    const std::size_t colon = token.find(':');
    if (colon == std::string::npos) {
      TSC_ASSIGN_OR_RETURN(const long long id, ParseIndex(token));
      ids.push_back(static_cast<std::size_t>(id));
    } else {
      StatusOr<long long> lo = ParseIndex(token.substr(0, colon));
      if (!lo.ok()) return Status::InvalidArgument("bad range start: " + token);
      StatusOr<long long> hi = ParseIndex(token.substr(colon + 1));
      if (!hi.ok() || *hi < *lo) {
        return Status::InvalidArgument("bad range end: " + token);
      }
      const std::uint64_t span = static_cast<std::uint64_t>(*hi - *lo) + 1;
      if (span > kMaxSelectionIds ||
          ids.size() + span > kMaxSelectionIds) {
        return Status::InvalidArgument(
            "selection too large (over 16M ids): " + token);
      }
      for (long long i = *lo; i <= *hi; ++i) {
        ids.push_back(static_cast<std::size_t>(i));
      }
    }
    if (ids.size() > kMaxSelectionIds) {
      return Status::InvalidArgument("selection too large (over 16M ids)");
    }
  }
  if (ids.empty()) return Status::InvalidArgument("empty selection");
  return ids;
}

}  // namespace

const char* AggregateFnName(AggregateFn fn) {
  switch (fn) {
    case AggregateFn::kSum:
      return "sum";
    case AggregateFn::kAvg:
      return "avg";
    case AggregateFn::kCount:
      return "count";
    case AggregateFn::kMin:
      return "min";
    case AggregateFn::kMax:
      return "max";
    case AggregateFn::kStddev:
      return "stddev";
    case AggregateFn::kMedian:
      return "median";
  }
  return "unknown";
}

StatusOr<AggregateFn> ParseAggregateFn(const std::string& name) {
  if (name == "sum") return AggregateFn::kSum;
  if (name == "avg") return AggregateFn::kAvg;
  if (name == "count") return AggregateFn::kCount;
  if (name == "min") return AggregateFn::kMin;
  if (name == "max") return AggregateFn::kMax;
  if (name == "stddev") return AggregateFn::kStddev;
  if (name == "median") return AggregateFn::kMedian;
  return Status::InvalidArgument("unknown aggregate: " + name);
}

StatusOr<RegionQuery> ParseRegionQuery(const std::string& text) {
  std::stringstream ss(text);
  std::string fn_name;
  if (!(ss >> fn_name)) return Status::InvalidArgument("empty query");
  RegionQuery query;
  TSC_ASSIGN_OR_RETURN(query.fn, ParseAggregateFn(fn_name));
  std::string clause;
  bool saw_rows = false;
  bool saw_cols = false;
  while (ss >> clause) {
    if (clause.rfind("rows=", 0) == 0) {
      TSC_ASSIGN_OR_RETURN(query.row_ids, ParseSelection(clause.substr(5)));
      saw_rows = true;
    } else if (clause.rfind("cols=", 0) == 0) {
      TSC_ASSIGN_OR_RETURN(query.col_ids, ParseSelection(clause.substr(5)));
      saw_cols = true;
    } else {
      return Status::InvalidArgument("unknown clause: " + clause);
    }
  }
  if (!saw_rows || !saw_cols) {
    return Status::InvalidArgument("query needs rows= and cols= clauses");
  }
  return query;
}

double EvaluateAggregate(const Matrix& matrix, const RegionQuery& query) {
  AggregateAccumulator acc(query.fn);
  for (const std::size_t i : query.row_ids) {
    TSC_DCHECK(i < matrix.rows());
    const std::span<const double> row = matrix.Row(i);
    for (const std::size_t j : query.col_ids) {
      TSC_DCHECK(j < matrix.cols());
      acc.Add(row[j]);
    }
  }
  return acc.Finalize();
}

double EvaluateAggregate(const CompressedStore& store,
                         const RegionQuery& query) {
  AggregateAccumulator acc(query.fn);
  // One row reconstruction per selected row (= one "disk access" per row
  // under the paper's storage layout), then pick the selected columns.
  std::vector<double> recon(store.cols());
  for (const std::size_t i : query.row_ids) {
    store.ReconstructRow(i, recon);
    for (const std::size_t j : query.col_ids) acc.Add(recon[j]);
  }
  return acc.Finalize();
}

double QueryError(double exact, double approximate) {
  const double abs_err = std::abs(exact - approximate);
  if (exact == 0.0) return abs_err;
  return abs_err / std::abs(exact);
}

RegionQuery MakeRandomRegionQuery(std::size_t num_rows, std::size_t num_cols,
                                  double cell_fraction, AggregateFn fn,
                                  Rng* rng) {
  TSC_CHECK_GT(num_rows, 0u);
  TSC_CHECK_GT(num_cols, 0u);
  cell_fraction = std::clamp(cell_fraction, 1e-9, 1.0);
  // Split the target fraction between the two dimensions with a random
  // tilt so query shapes vary (tall, wide and square selections).
  const double tilt = rng->UniformDouble(0.3, 0.7);
  const double row_fraction = std::pow(cell_fraction, tilt);
  const double col_fraction = cell_fraction / row_fraction;
  const std::size_t rows_wanted = std::clamp<std::size_t>(
      static_cast<std::size_t>(row_fraction * static_cast<double>(num_rows) + 0.5),
      1, num_rows);
  const std::size_t cols_wanted = std::clamp<std::size_t>(
      static_cast<std::size_t>(col_fraction * static_cast<double>(num_cols) + 0.5),
      1, num_cols);
  RegionQuery query;
  query.fn = fn;
  query.row_ids = rng->SampleWithoutReplacement(num_rows, rows_wanted);
  query.col_ids = rng->SampleWithoutReplacement(num_cols, cols_wanted);
  return query;
}

}  // namespace tsc
