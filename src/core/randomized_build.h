#ifndef TSC_CORE_RANDOMIZED_BUILD_H_
#define TSC_CORE_RANDOMIZED_BUILD_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "linalg/matrix.h"
#include "linalg/symmetric_eigen.h"
#include "storage/row_source.h"
#include "util/status.h"

namespace tsc {

class ThreadPool;

/// Knobs for the randomized range-finder subspace estimate.
struct RandomizedSketchOptions {
  /// Rank the caller wants usable principal components for (k_max). The
  /// sketch carries `oversample` extra columns beyond this.
  std::size_t target_rank = 1;
  /// Oversampling p of Halko et al.: extra Gaussian columns that buy the
  /// probabilistic accuracy guarantee. 5-10 is the standard range.
  std::size_t oversample = 8;
  /// Extra power-iteration passes (each is one more stream over the
  /// rows). Sharpens the basis when the spectrum decays slowly; 0 keeps
  /// the build at two total passes.
  std::size_t power_iterations = 0;
  /// Seed of the counter-based Gaussian test matrix. Same seed => same
  /// model, bit for bit, at any thread count.
  std::uint64_t seed = 42;
  /// Solver for the small (k+p) x (k+p) Rayleigh-Ritz eigenproblem.
  EigenSolverKind solver = EigenSolverKind::kHouseholderQl;
};

/// Output of the sketch stage, shaped as a drop-in replacement for the
/// exact pass-1 eigensystem (SymmetricEigen of X^T X): descending
/// eigenvalue estimates and the matching orthonormal column directions.
struct SketchedEigenBasis {
  /// Rayleigh-Ritz eigenvalue estimates of X^T X, descending, clamped
  /// at zero. Size r <= sketch_cols (the subspace's numerical rank).
  std::vector<double> eigenvalues;
  /// m x r matrix whose column j is the estimated eigenvector of
  /// eigenvalues[j]; columns are orthonormal.
  Matrix eigenvectors;
  /// l = min(m, target_rank + oversample), the sketch width actually used.
  std::size_t sketch_cols = 0;
  /// Power iterations actually run.
  std::size_t power_iterations = 0;
};

/// Streaming randomized PCA (Halko-Martinsson-Shkolnisky-Tygert): one
/// pass accumulates the sketch Y^T = Omega^T X with a seeded Gaussian
/// Omega (never materialized — each row's l coefficients are recomputed
/// from a counter-based hash), the sketch is orthonormalized by blocked
/// Gram-Schmidt QR (linalg/qr.h), optional power iterations re-multiply
/// the basis through C = X^T X one pass each, and a final cheap pass
/// accumulates the (k+p) x (k+p) Rayleigh quotient T = Q^T C Q whose
/// eigensystem yields the principal directions. Resident state is
/// O(M * (k+p)) per build shard — independent of N — so 10M-row stores
/// build in bounded memory.
///
/// Determinism contract: rows are dealt to kBuildShards fixed shards,
/// each shard accumulates in stream order, shards reduce in index order,
/// and Gaussians are pure functions of (seed, row, column). The result
/// is bit-identical at any thread count and chunk size.
class RandomizedSvdBuilder {
 public:
  explicit RandomizedSvdBuilder(RandomizedSketchOptions options)
      : options_(options) {}

  /// Runs 2 + power_iterations streaming passes over `source` and
  /// returns the estimated leading eigensystem of X^T X. `pool` may be
  /// null (serial).
  StatusOr<SketchedEigenBasis> EstimateSubspace(RowSource* source,
                                                ThreadPool* pool) const;

  /// Standard normal deviate as a pure function of (seed, row, column):
  /// SplitMix64 counter hashing feeding Box-Muller. Exposed for tests.
  static double CounterGaussian(std::uint64_t seed, std::uint64_t row,
                                std::uint64_t column);

 private:
  RandomizedSketchOptions options_;
};

}  // namespace tsc

#endif  // TSC_CORE_RANDOMIZED_BUILD_H_
