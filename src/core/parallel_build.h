#ifndef TSC_CORE_PARALLEL_BUILD_H_
#define TSC_CORE_PARALLEL_BUILD_H_

#include <cstddef>

#include "linalg/matrix.h"
#include "storage/row_source.h"
#include "util/status.h"

namespace tsc {

/// Fixed shard count for the parallel build passes. Rows are dealt to
/// shard `row_index % kBuildShards`, each shard accumulates its rows in
/// stream order, and shard results are reduced in shard index order — so
/// the arithmetic (and therefore the built model, bit for bit) is
/// independent of both the thread count and the chunk size. The constant
/// is deliberately NOT derived from the thread count.
inline constexpr std::size_t kBuildShards = 16;

/// Rows buffered per streaming chunk. Purely a batching knob: it bounds
/// the in-memory window of the out-of-core passes and amortizes the
/// fork/join cost per chunk, but does not affect results. Sized so the
/// serial section between parallel chunk visits (the NextRow loop below
/// plus one pool fork/join) is paid once per ~thousand rows — at the old
/// 256 the per-chunk rendezvous was a measurable Amdahl term at 2
/// threads. The buffer stays small (1024 rows x cols doubles).
inline constexpr std::size_t kBuildChunkRows = 1024;

/// First buffer-local row index belonging to `shard` when the chunk
/// starts at global row `base`.
inline std::size_t FirstShardRow(std::size_t shard, std::size_t base) {
  return (shard + kBuildShards - base % kBuildShards) % kBuildShards;
}

/// Streams `source` from the top in chunks of up to kBuildChunkRows rows.
/// Calls visit(base, count, buffer) for every chunk, where rows
/// [0, count) of `buffer` hold global rows [base, base + count). Counts
/// as exactly one pass over the source.
template <typename Visit>
Status ForEachRowChunk(RowSource* source, Visit&& visit) {
  Matrix buffer(kBuildChunkRows, source->cols());
  TSC_RETURN_IF_ERROR(source->Reset());
  std::size_t base = 0;
  for (;;) {
    std::size_t count = 0;
    while (count < kBuildChunkRows) {
      TSC_ASSIGN_OR_RETURN(const bool has_row,
                           source->NextRow(buffer.Row(count)));
      if (!has_row) break;
      ++count;
    }
    if (count > 0) TSC_RETURN_IF_ERROR(visit(base, count, buffer));
    if (count < kBuildChunkRows) return Status::Ok();
    base += count;
  }
}

}  // namespace tsc

#endif  // TSC_CORE_PARALLEL_BUILD_H_
