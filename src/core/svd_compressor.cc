#include "core/svd_compressor.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <optional>

#include "core/parallel_build.h"
#include "linalg/kernels.h"
#include "linalg/svd.h"
#include "obs/trace.h"
#include "storage/prefetcher.h"
#include "util/logging.h"
#include "util/thread_pool.h"

namespace tsc {
namespace {

constexpr std::uint32_t kSvdModelMagic = 0x53564431;  // "SVD1"

}  // namespace

SvdModel::SvdModel(Matrix u, std::vector<double> singular_values, Matrix v)
    : u_(std::move(u)),
      singular_values_(std::move(singular_values)),
      v_(std::move(v)) {
  TSC_CHECK_EQ(u_.cols(), singular_values_.size());
  TSC_CHECK_EQ(v_.cols(), singular_values_.size());
  RebuildWeightedV();
}

void SvdModel::RebuildWeightedV() {
  weighted_v_ = Matrix(v_.rows(), v_.cols());
  for (std::size_t j = 0; j < v_.rows(); ++j) {
    for (std::size_t m = 0; m < v_.cols(); ++m) {
      weighted_v_(j, m) = singular_values_[m] * v_(j, m);
    }
  }
}

double SvdModel::ReconstructCell(std::size_t row, std::size_t col) const {
  TSC_DCHECK(row < rows() && col < cols());
  // Eq. 12 with lambda folded into V: dot(u_i, lambda (.) v_j), O(k).
  return kernels::Dot(u_.Row(row).data(), weighted_v_.Row(col).data(), k());
}

void SvdModel::ReconstructRow(std::size_t row, std::span<double> out) const {
  TSC_CHECK_EQ(out.size(), cols());
  // out_j = dot(u_i, weighted_v_j): one fused dot-batch over the
  // contiguous weighted-V rows.
  kernels::DotBatch(weighted_v_.Row(0).data(), k(), cols(),
                    u_.Row(row).data(), k(), out.data());
}

void SvdModel::ReconstructCells(std::span<const CellRef> cells,
                                std::span<double> out) const {
  TSC_CHECK_EQ(out.size(), cells.size());
  const std::size_t kk = k();
  for (std::size_t i = 0; i < cells.size(); ++i) {
    out[i] = kernels::Dot(u_.Row(cells[i].row).data(),
                          weighted_v_.Row(cells[i].col).data(), kk);
  }
}

void SvdModel::ReconstructRegion(std::span<const std::size_t> row_ids,
                                 std::span<const std::size_t> col_ids,
                                 Matrix* out) const {
  if (out->rows() != row_ids.size() || out->cols() != col_ids.size()) {
    *out = Matrix(row_ids.size(), col_ids.size());
  }
  if (row_ids.empty() || col_ids.empty()) return;
  const std::size_t kk = k();
  // Gather the selected factor rows into dense blocks (O((R + C) * k),
  // noise next to the O(R * C * k) product), then run the blocked
  // U * (Lambda V^T) micro-kernel on contiguous memory.
  Matrix a(row_ids.size(), kk);
  for (std::size_t r = 0; r < row_ids.size(); ++r) {
    const std::span<const double> src = u_.Row(row_ids[r]);
    std::copy(src.begin(), src.end(), a.Row(r).begin());
  }
  Matrix b(col_ids.size(), kk);
  for (std::size_t c = 0; c < col_ids.size(); ++c) {
    const std::span<const double> src = weighted_v_.Row(col_ids[c]);
    std::copy(src.begin(), src.end(), b.Row(c).begin());
  }
  kernels::GemmNT(a.Row(0).data(), row_ids.size(), kk, b.Row(0).data(),
                  col_ids.size(), kk, kk, out->Row(0).data(),
                  col_ids.size());
}

std::uint64_t SvdModel::CompressedBytes() const {
  // Section 3.4: N*k for U, k eigenvalues, k*M for V, at b bytes each —
  // except that a quantized U is charged at its true on-disk row stride
  // (16-byte meta + padded codes), matching what the row store writes.
  const std::uint64_t u_bytes =
      quant_scheme_ == QuantScheme::kF64
          ? static_cast<std::uint64_t>(u_.rows()) * k() * bytes_per_value_
          : static_cast<std::uint64_t>(u_.rows()) *
                QuantRowStride(quant_scheme_, k());
  const std::uint64_t resident =
      k() + static_cast<std::uint64_t>(k()) * v_.rows();
  return u_bytes + resident * bytes_per_value_;
}

std::vector<double> SvdModel::ProjectRow(std::size_t row) const {
  TSC_CHECK_LT(row, rows());
  std::vector<double> coords(k());
  const std::span<const double> urow = u_.Row(row);
  for (std::size_t m = 0; m < k(); ++m) {
    coords[m] = urow[m] * singular_values_[m];
  }
  return coords;
}

void SvdModel::QuantizeToFloat() {
  for (double& v : u_.data()) v = static_cast<float>(v);
  for (double& v : v_.data()) v = static_cast<float>(v);
  for (double& v : singular_values_) v = static_cast<float>(v);
  bytes_per_value_ = 4;
  // The derived cache must reflect the quantized factors (the products
  // themselves stay double precision).
  RebuildWeightedV();
}

void SvdModel::ApplyQuantization(QuantScheme scheme) {
  quant_scheme_ = scheme;
  if (scheme == QuantScheme::kF64) return;
  // Snap each U row to its decode(encode) image so every in-memory
  // reconstruction sees exactly what the quantized row store serves.
  // weighted_v_ is untouched — only the left factor changes.
  for (std::size_t i = 0; i < u_.rows(); ++i) {
    SnapQuantRow(scheme, u_.Row(i));
  }
}

SvdModel::FoldInStats SvdModel::FoldInRows(const Matrix& new_rows) {
  TSC_CHECK_EQ(new_rows.cols(), cols());
  FoldInStats stats;
  stats.rows_added = new_rows.rows();
  Matrix new_u(new_rows.rows(), k());
  std::vector<double> proj(k());
  for (std::size_t i = 0; i < new_rows.rows(); ++i) {
    const std::span<const double> row = new_rows.Row(i);
    for (const double v : row) stats.energy_total += v * v;
    // proj = V^T x, accumulated over the contiguous rows of V so the
    // inner update vectorizes: proj += x_j * v_j.
    std::fill(proj.begin(), proj.end(), 0.0);
    for (std::size_t j = 0; j < cols(); ++j) {
      kernels::Axpy(row[j], v_.Row(j).data(), proj.data(), k());
    }
    for (std::size_t p = 0; p < k(); ++p) {
      new_u(i, p) = proj[p] / singular_values_[p];
      // The projection coefficient is proj = u * lambda; its squared
      // magnitude is the energy this component captures (V columns are
      // orthonormal).
      stats.energy_captured += proj[p] * proj[p];
    }
  }
  u_.AppendRows(new_u);
  return stats;
}

Status SvdModel::Serialize(BinaryWriter* writer) const {
  TSC_RETURN_IF_ERROR(writer->WriteU32(kSvdModelMagic));
  TSC_RETURN_IF_ERROR(writer->WriteU64(bytes_per_value_));
  TSC_RETURN_IF_ERROR(
      writer->WriteU32(static_cast<std::uint32_t>(quant_scheme_)));
  TSC_RETURN_IF_ERROR(writer->WriteDoubleVector(singular_values_));
  TSC_RETURN_IF_ERROR(writer->WriteMatrix(v_));
  return writer->WriteMatrix(u_);
}

StatusOr<SvdModel> SvdModel::Deserialize(BinaryReader* reader) {
  TSC_ASSIGN_OR_RETURN(const std::uint32_t magic, reader->ReadU32());
  if (magic != kSvdModelMagic) return Status::IoError("not an SVD model");
  TSC_ASSIGN_OR_RETURN(const std::uint64_t bytes_per_value, reader->ReadU64());
  TSC_ASSIGN_OR_RETURN(const std::uint32_t scheme_raw, reader->ReadU32());
  if (scheme_raw > static_cast<std::uint32_t>(QuantScheme::kI8)) {
    return Status::IoError("unknown quant scheme in SVD model");
  }
  TSC_ASSIGN_OR_RETURN(std::vector<double> sv, reader->ReadDoubleVector());
  TSC_ASSIGN_OR_RETURN(Matrix v, reader->ReadMatrix());
  TSC_ASSIGN_OR_RETURN(Matrix u, reader->ReadMatrix());
  if (u.cols() != sv.size() || v.cols() != sv.size()) {
    return Status::IoError("inconsistent SVD model dims");
  }
  SvdModel model(std::move(u), std::move(sv), std::move(v));
  model.set_bytes_per_value(static_cast<std::size_t>(bytes_per_value));
  // The rows of U were snapped at build time; recording the scheme is
  // enough for the loaded model to export the same quantized store.
  model.quant_scheme_ = static_cast<QuantScheme>(scheme_raw);
  return model;
}

Status SvdModel::SaveToFile(const std::string& path) const {
  TSC_ASSIGN_OR_RETURN(BinaryWriter writer, BinaryWriter::Open(path));
  TSC_RETURN_IF_ERROR(Serialize(&writer));
  return writer.FinishWithChecksum();
}

StatusOr<SvdModel> SvdModel::LoadFromFile(const std::string& path) {
  TSC_ASSIGN_OR_RETURN(BinaryReader reader, BinaryReader::Open(path));
  TSC_ASSIGN_OR_RETURN(SvdModel model, Deserialize(&reader));
  TSC_RETURN_IF_ERROR(reader.VerifyChecksum());
  return model;
}

StatusOr<Matrix> AccumulateColumnSimilarity(RowSource* source,
                                            ThreadPool* pool) {
  const std::size_t m = source->cols();
  // One partial C per shard; shard s accumulates rows i with
  // i % kBuildShards == s in stream order, independent of the chunking.
  std::vector<Matrix> partial(kBuildShards, Matrix(m, m));
  {
    obs::TraceSpan accumulate_span("similarity.accumulate");
    TSC_RETURN_IF_ERROR(ForEachRowChunk(
        source, [&](std::size_t base, std::size_t count, const Matrix& rows) {
          ParallelFor(pool, kBuildShards, [&](std::size_t shard) {
            obs::TraceSpan shard_span("similarity.shard", shard);
            Matrix& c = partial[shard];
            for (std::size_t r = FirstShardRow(shard, base); r < count;
                 r += kBuildShards) {
              const std::span<const double> row = rows.Row(r);
              // Upper triangle only; mirrored below. The Figure 2 kernel:
              // each row of C gains xj * row[j..m), a vectorized axpy.
              for (std::size_t j = 0; j < m; ++j) {
                const double xj = row[j];
                if (xj == 0.0) continue;
                kernels::Axpy(xj, row.data() + j, &c(j, j), m - j);
              }
            }
          });
          return Status::Ok();
        }));
  }
  // Ordered reduction: each element sums shard 0 + shard 1 + ... in
  // shard order, which fixes the arithmetic regardless of which threads
  // ran which shards. The elements are independent, so the element range
  // splits across the pool without touching the per-element order.
  obs::TraceSpan reduce_span("similarity.reduce");
  Matrix c = std::move(partial[0]);
  {
    std::vector<double>& dst = c.data();
    const std::size_t total = dst.size();
    const std::size_t pieces =
        pool != nullptr ? std::min<std::size_t>(kBuildShards,
                                                std::max<std::size_t>(1, total / 4096))
                        : 1;
    const std::size_t per_piece = (total + pieces - 1) / pieces;
    ParallelFor(pool, pieces, [&](std::size_t p) {
      const std::size_t begin = p * per_piece;
      const std::size_t end = std::min(begin + per_piece, total);
      for (std::size_t s = 1; s < kBuildShards; ++s) {
        const std::vector<double>& src = partial[s].data();
        for (std::size_t idx = begin; idx < end; ++idx) dst[idx] += src[idx];
      }
    });
  }
  for (std::size_t j = 0; j < m; ++j) {
    for (std::size_t l = j + 1; l < m; ++l) c(l, j) = c(j, l);
  }
  return c;
}

StatusOr<Matrix> EmitUMatrix(RowSource* source, const Matrix& v,
                             const std::vector<double>& singular_values,
                             std::size_t k, ThreadPool* pool) {
  TSC_CHECK_LE(k, v.cols());
  TSC_CHECK_LE(k, singular_values.size());
  const std::size_t n = source->rows();
  const std::size_t m = source->cols();
  Matrix u(n, k);
  obs::TraceSpan emit_span("emit_u");
  TSC_RETURN_IF_ERROR(ForEachRowChunk(
      source, [&](std::size_t base, std::size_t count, const Matrix& rows) {
        if (base + count > n) {
          return Status::Internal("source grew between passes");
        }
        // Rows of U are independent and each is written exactly once, so
        // any schedule gives identical bits. Iterating shard-strided (like
        // the other passes) instead of row-per-task keeps the fork/join
        // count fixed and gives each shard a traceable unit of work.
        ParallelFor(pool, kBuildShards, [&](std::size_t shard) {
          obs::TraceSpan shard_span("emit_u.shard", shard);
          std::vector<double> proj(k);
          for (std::size_t r = FirstShardRow(shard, base); r < count;
               r += kBuildShards) {
            const std::span<const double> row = rows.Row(r);
            const std::span<double> urow = u.Row(base + r);
            // proj = V^T x over the contiguous rows of V (vectorized
            // axpy), summing each component in the same l order as the
            // scalar dot it replaces.
            std::fill(proj.begin(), proj.end(), 0.0);
            for (std::size_t l = 0; l < m; ++l) {
              kernels::Axpy(row[l], v.Row(l).data(), proj.data(), k);
            }
            for (std::size_t p = 0; p < k; ++p) {
              urow[p] = proj[p] / singular_values[p];
            }
          }
        });
        return Status::Ok();
      }));
  return u;
}

StatusOr<SvdModel> BuildSvdModel(RowSource* source,
                                 const SvdBuildOptions& options) {
  if (source->rows() == 0 || source->cols() == 0) {
    return Status::InvalidArgument("empty source");
  }
  // Readahead decorator: both passes still see rows in order (bitwise-
  // identical model), but a producer thread keeps chunks in flight so
  // the disk works while this thread computes. Threaded builds opt in
  // automatically — the serial chunk read between parallel visits is
  // exactly the Amdahl term that capped 2-thread speedup — and the
  // wrapper self-disables (passthrough) when overlap cannot pay, so the
  // auto-wrap is free for in-memory, mmap, and single-core sources.
  const std::size_t readahead_depth =
      options.prefetch_depth > 0
          ? options.prefetch_depth
          : (options.num_threads > 1 ? std::size_t{2} : std::size_t{0});
  std::optional<ReadaheadRowSource> readahead;
  if (readahead_depth > 0) {
    readahead.emplace(source, readahead_depth);
    source = &*readahead;
  }
  const std::size_t m = source->cols();
  std::unique_ptr<ThreadPool> pool;
  if (options.num_threads > 1) {
    pool = std::make_unique<ThreadPool>(options.num_threads);
  }

  // Phase spans: emplace ends the previous phase and opens the next, so
  // the trace shows pass1 / eigen / pass2 back to back on this thread.
  std::optional<obs::TraceSpan> phase;
  phase.emplace("svd.pass1");

  // Pass 1: column-to-column similarity, then the in-memory eigenproblem.
  TSC_ASSIGN_OR_RETURN(Matrix c, AccumulateColumnSimilarity(source, pool.get()));
  phase.emplace("svd.eigen");
  TSC_ASSIGN_OR_RETURN(EigenDecomposition eigen,
                       SymmetricEigen(c, options.solver));

  const double lambda_max =
      eigen.eigenvalues.empty() ? 0.0 : std::max(0.0, eigen.eigenvalues[0]);
  std::size_t k = std::min(options.k, m);
  std::size_t effective = 0;
  for (std::size_t j = 0; j < k; ++j) {
    if (eigen.eigenvalues[j] > kSvdRelativeTolerance * lambda_max &&
        eigen.eigenvalues[j] > 0.0) {
      ++effective;
    } else {
      break;
    }
  }
  if (effective == 0) {
    return Status::InvalidArgument("matrix is numerically zero");
  }

  std::vector<double> singular_values(effective);
  Matrix v(m, effective);
  for (std::size_t j = 0; j < effective; ++j) {
    singular_values[j] = std::sqrt(eigen.eigenvalues[j]);
    for (std::size_t i = 0; i < m; ++i) v(i, j) = eigen.eigenvectors(i, j);
  }

  // Pass 2: U = X V Lambda^-1, one row of U per row of X (Figure 3).
  phase.emplace("svd.pass2");
  TSC_ASSIGN_OR_RETURN(
      Matrix u, EmitUMatrix(source, v, singular_values, effective, pool.get()));
  phase.reset();
  SvdModel model(std::move(u), std::move(singular_values), std::move(v));
  if (options.bytes_per_value == 4) {
    model.QuantizeToFloat();
  } else {
    model.set_bytes_per_value(options.bytes_per_value);
  }
  return model;
}

}  // namespace tsc
