#include "core/sharded_store.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <utility>

#include "core/compressed_store.h"
#include "linalg/matrix.h"
#include "obs/metrics.h"
#include "obs/query_context.h"
#include "storage/row_source.h"
#include "util/thread_pool.h"

namespace tsc {

namespace {

constexpr char kShardManifestMagic[9] = {'T', 'S', 'C', 'S', 'H',
                                         'A', 'R', 'D', '1'};
constexpr std::uint32_t kShardManifestVersion = 1;

/// Directory prefix of `path` including the trailing separator, or ""
/// for a bare filename — shard paths in the manifest are relative to
/// the manifest's directory so the file set can be moved as a unit.
std::string DirOf(const std::string& path) {
  std::size_t slash = path.find_last_of('/');
  return slash == std::string::npos ? std::string() : path.substr(0, slash + 1);
}

std::string BaseNameOf(const std::string& path) {
  std::size_t slash = path.find_last_of('/');
  return slash == std::string::npos ? path : path.substr(slash + 1);
}

/// RowSource over a contiguous row window of an in-memory matrix; the
/// per-shard builds stream their slice without copying the dataset.
class MatrixSliceRowSource final : public RowSource {
 public:
  MatrixSliceRowSource(const Matrix* matrix, std::size_t row_begin,
                       std::size_t row_count)
      : matrix_(matrix), row_begin_(row_begin), row_count_(row_count) {}

  std::size_t rows() const override { return row_count_; }
  std::size_t cols() const override { return matrix_->cols(); }

  StatusOr<bool> NextRow(std::span<double> out) override {
    if (next_ >= row_count_) return false;
    std::span<const double> row = matrix_->Row(row_begin_ + next_);
    std::copy(row.begin(), row.end(), out.begin());
    ++next_;
    return true;
  }

 protected:
  Status ResetImpl() override {
    next_ = 0;
    return Status::Ok();
  }

 private:
  const Matrix* matrix_;
  std::size_t row_begin_;
  std::size_t row_count_;
  std::size_t next_ = 0;
};

void ChargeShardScatter(std::size_t active_shards) {
  static obs::Counter& shard_queries =
      obs::MetricRegistry::Default().GetCounter("shard.queries");
  static obs::Counter& shard_fanout =
      obs::MetricRegistry::Default().GetCounter("shard.fanout");
  shard_queries.Add(1);
  shard_fanout.Add(active_shards);
  obs::ChargeShardQuery();
  obs::ChargeShardFanout(active_shards);
}

}  // namespace

const char* ShardPartitionName(ShardPartition partition) {
  switch (partition) {
    case ShardPartition::kRange:
      return "range";
    case ShardPartition::kHash:
      return "hash";
  }
  return "unknown";
}

// ---------------------------------------------------------------------------
// ShardLayout
// ---------------------------------------------------------------------------

StatusOr<ShardLayout> ShardLayout::Make(ShardPartition partition,
                                        std::size_t total_rows,
                                        std::size_t shard_count) {
  if (shard_count == 0) {
    return Status::InvalidArgument("shard count must be >= 1");
  }
  if (shard_count > total_rows) {
    return Status::InvalidArgument(
        "shard count exceeds row count: every shard must own at least one "
        "row");
  }
  ShardLayout layout;
  layout.partition = partition;
  layout.total_rows = total_rows;
  layout.shard_count = shard_count;
  if (partition == ShardPartition::kRange) {
    // Balanced contiguous slices; the first total % S shards take one
    // extra row.
    const std::size_t base = total_rows / shard_count;
    const std::size_t rem = total_rows % shard_count;
    layout.range_begin.resize(shard_count + 1);
    std::size_t begin = 0;
    for (std::size_t s = 0; s < shard_count; ++s) {
      layout.range_begin[s] = begin;
      begin += base + (s < rem ? 1 : 0);
    }
    layout.range_begin[shard_count] = begin;
  }
  return layout;
}

StatusOr<ShardLayout> ShardLayout::MakeRange(
    const std::vector<std::size_t>& row_counts) {
  if (row_counts.empty()) {
    return Status::InvalidArgument("range layout needs at least one shard");
  }
  ShardLayout layout;
  layout.partition = ShardPartition::kRange;
  layout.shard_count = row_counts.size();
  layout.range_begin.resize(row_counts.size() + 1);
  std::size_t begin = 0;
  for (std::size_t s = 0; s < row_counts.size(); ++s) {
    if (row_counts[s] == 0) {
      return Status::InvalidArgument("range shard with zero rows");
    }
    layout.range_begin[s] = begin;
    begin += row_counts[s];
  }
  layout.range_begin[row_counts.size()] = begin;
  layout.total_rows = begin;
  return layout;
}

std::size_t ShardLayout::RowsIn(std::size_t shard) const {
  if (partition == ShardPartition::kRange) {
    return range_begin[shard + 1] - range_begin[shard];
  }
  // Round-robin: shards with index < total % S hold one extra row.
  return (total_rows + shard_count - 1 - shard) / shard_count;
}

std::size_t ShardLayout::ShardOf(std::size_t global_row) const {
  if (partition == ShardPartition::kHash) return global_row % shard_count;
  // upper_bound over the S+1 boundaries: first boundary > row, minus one.
  auto it = std::upper_bound(range_begin.begin(), range_begin.end(),
                             global_row);
  return static_cast<std::size_t>(it - range_begin.begin()) - 1;
}

std::pair<std::size_t, std::size_t> ShardLayout::Locate(
    std::size_t global_row) const {
  if (partition == ShardPartition::kHash) {
    return {global_row % shard_count, global_row / shard_count};
  }
  std::size_t shard = ShardOf(global_row);
  return {shard, global_row - range_begin[shard]};
}

std::size_t ShardLayout::GlobalOf(std::size_t shard,
                                  std::size_t local_row) const {
  if (partition == ShardPartition::kHash) {
    return local_row * shard_count + shard;
  }
  return range_begin[shard] + local_row;
}

void ShardLayout::AppendRows(std::size_t count) {
  total_rows += count;
  if (partition == ShardPartition::kRange) {
    // The last shard absorbs appends so no existing row is remapped.
    range_begin[shard_count] += count;
  }
}

// ---------------------------------------------------------------------------
// ShardManifest
// ---------------------------------------------------------------------------

StatusOr<ShardLayout> ShardManifest::Layout() const {
  if (partition == ShardPartition::kRange) {
    std::vector<std::size_t> counts;
    counts.reserve(shards.size());
    for (const ShardManifestEntry& entry : shards) {
      counts.push_back(entry.row_count);
    }
    StatusOr<ShardLayout> layout = ShardLayout::MakeRange(counts);
    if (layout.ok() && layout->total_rows != total_rows) {
      return Status::IoError(
          "shard manifest row counts do not sum to total_rows");
    }
    return layout;
  }
  StatusOr<ShardLayout> layout =
      ShardLayout::Make(partition, total_rows, shards.size());
  if (!layout.ok()) return layout.status();
  for (std::size_t s = 0; s < shards.size(); ++s) {
    if (shards[s].row_count != layout->RowsIn(s)) {
      return Status::IoError(
          "hash shard manifest row counts violate the modulo rule");
    }
  }
  return layout;
}

Status ShardManifest::SaveToFile(const std::string& path) const {
  StatusOr<BinaryWriter> writer = BinaryWriter::Open(path);
  if (!writer.ok()) return writer.status();
  TSC_RETURN_IF_ERROR(
      writer->WriteBytes(kShardManifestMagic, sizeof(kShardManifestMagic)));
  TSC_RETURN_IF_ERROR(writer->WriteU32(kShardManifestVersion));
  TSC_RETURN_IF_ERROR(writer->WriteU32(static_cast<std::uint32_t>(partition)));
  TSC_RETURN_IF_ERROR(writer->WriteU64(total_rows));
  TSC_RETURN_IF_ERROR(writer->WriteU64(total_cols));
  TSC_RETURN_IF_ERROR(
      writer->WriteU32(static_cast<std::uint32_t>(shards.size())));
  for (const ShardManifestEntry& entry : shards) {
    TSC_RETURN_IF_ERROR(writer->WriteString(entry.path));
    TSC_RETURN_IF_ERROR(writer->WriteU64(entry.row_count));
    TSC_RETURN_IF_ERROR(
        writer->WriteU32(static_cast<std::uint32_t>(entry.quant)));
    TSC_RETURN_IF_ERROR(writer->WriteU64(entry.k));
    TSC_RETURN_IF_ERROR(writer->WriteU64(entry.delta_count));
  }
  return writer->FinishWithChecksum();
}

StatusOr<ShardManifest> ShardManifest::LoadFromFile(const std::string& path) {
  StatusOr<BinaryReader> reader = BinaryReader::Open(path);
  if (!reader.ok()) return reader.status();
  char magic[sizeof(kShardManifestMagic)] = {};
  TSC_RETURN_IF_ERROR(reader->ReadBytes(magic, sizeof(magic)));
  if (std::memcmp(magic, kShardManifestMagic, sizeof(magic)) != 0) {
    return Status::IoError("not a TSCSHARD1 manifest: bad magic");
  }
  TSC_ASSIGN_OR_RETURN(std::uint32_t version, reader->ReadU32());
  if (version != kShardManifestVersion) {
    return Status::IoError("unsupported TSCSHARD1 version");
  }
  ShardManifest manifest;
  TSC_ASSIGN_OR_RETURN(std::uint32_t partition, reader->ReadU32());
  if (partition > static_cast<std::uint32_t>(ShardPartition::kHash)) {
    return Status::IoError("unknown shard partition kind");
  }
  manifest.partition = static_cast<ShardPartition>(partition);
  TSC_ASSIGN_OR_RETURN(manifest.total_rows, reader->ReadU64());
  TSC_ASSIGN_OR_RETURN(manifest.total_cols, reader->ReadU64());
  TSC_ASSIGN_OR_RETURN(std::uint32_t shard_count, reader->ReadU32());
  if (shard_count == 0) {
    return Status::IoError("TSCSHARD1 manifest with zero shards");
  }
  manifest.shards.resize(shard_count);
  for (ShardManifestEntry& entry : manifest.shards) {
    TSC_ASSIGN_OR_RETURN(entry.path, reader->ReadString());
    TSC_ASSIGN_OR_RETURN(entry.row_count, reader->ReadU64());
    TSC_ASSIGN_OR_RETURN(std::uint32_t quant, reader->ReadU32());
    if (quant > static_cast<std::uint32_t>(QuantScheme::kI8)) {
      return Status::IoError("unknown shard quant scheme");
    }
    entry.quant = static_cast<QuantScheme>(quant);
    TSC_ASSIGN_OR_RETURN(entry.k, reader->ReadU64());
    TSC_ASSIGN_OR_RETURN(entry.delta_count, reader->ReadU64());
  }
  TSC_RETURN_IF_ERROR(reader->VerifyChecksum());
  // Surface inconsistent layouts at load time, not first query.
  TSC_RETURN_IF_ERROR(manifest.Layout().status());
  return manifest;
}

bool ShardManifest::IsManifestFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  char magic[sizeof(kShardManifestMagic)] = {};
  in.read(magic, sizeof(magic));
  return in.gcount() == sizeof(magic) &&
         std::memcmp(magic, kShardManifestMagic, sizeof(magic)) == 0;
}

// ---------------------------------------------------------------------------
// ShardedStore
// ---------------------------------------------------------------------------

ShardedStore::ShardedStore(std::vector<SvddModel> models, ShardLayout layout)
    : models_(std::move(models)), layout_(std::move(layout)) {
  assert(models_.size() == layout_.shard_count);
}

std::size_t ShardedStore::cols() const { return models_.front().cols(); }

StatusOr<ShardedStore> ShardedStore::LoadFromManifest(
    const std::string& manifest_path) {
  TSC_ASSIGN_OR_RETURN(ShardManifest manifest,
                       ShardManifest::LoadFromFile(manifest_path));
  TSC_ASSIGN_OR_RETURN(ShardLayout layout, manifest.Layout());
  const std::string dir = DirOf(manifest_path);
  std::vector<SvddModel> models;
  models.reserve(manifest.shards.size());
  for (std::size_t s = 0; s < manifest.shards.size(); ++s) {
    const ShardManifestEntry& entry = manifest.shards[s];
    TSC_ASSIGN_OR_RETURN(SvddModel model,
                         SvddModel::LoadFromFile(dir + entry.path));
    if (model.rows() != entry.row_count || model.cols() != manifest.total_cols) {
      return Status::IoError("shard model shape disagrees with manifest");
    }
    models.push_back(std::move(model));
  }
  return ShardedStore(std::move(models), std::move(layout));
}

Status ShardedStore::SaveToFiles(const std::string& manifest_path) const {
  ShardManifest manifest;
  manifest.partition = layout_.partition;
  manifest.total_rows = layout_.total_rows;
  manifest.total_cols = cols();
  manifest.shards.resize(models_.size());
  const std::string base = BaseNameOf(manifest_path);
  const std::string dir = DirOf(manifest_path);
  for (std::size_t s = 0; s < models_.size(); ++s) {
    char suffix[32];
    std::snprintf(suffix, sizeof(suffix), ".shard%zu", s);
    ShardManifestEntry& entry = manifest.shards[s];
    entry.path = base + suffix;
    entry.row_count = models_[s].rows();
    entry.quant = models_[s].svd().quant_scheme();
    entry.k = models_[s].k();
    entry.delta_count = models_[s].delta_count();
    TSC_RETURN_IF_ERROR(models_[s].SaveToFile(dir + entry.path));
  }
  return manifest.SaveToFile(manifest_path);
}

std::vector<ShardedStore::ShardSelection> ShardedStore::PartitionRows(
    std::span<const std::size_t> row_ids) const {
  std::vector<ShardSelection> selections(models_.size());
  for (std::size_t i = 0; i < row_ids.size(); ++i) {
    auto [shard, local] = layout_.Locate(row_ids[i]);
    selections[shard].local_rows.push_back(local);
    selections[shard].out_index.push_back(i);
  }
  return selections;
}

void ShardedStore::ForEachShard(
    const std::vector<std::size_t>& active,
    const std::function<void(std::size_t)>& fn) const {
  if (fan_out_pool_ != nullptr && active.size() > 1) {
    // Overlapping fan-outs (e.g. the executor's scan shards all hitting
    // ReconstructRegion) fall back to the serial loop instead of
    // deadlocking on the non-reentrant pool — same discipline as
    // BlockPrefetcher. Either path computes identical results because
    // every shard writes disjoint output slots.
    std::unique_lock<std::mutex> lock(*fan_out_mutex_, std::try_to_lock);
    if (lock.owns_lock()) {
      obs::QueryContext* parent = obs::CurrentQueryContext();
      ParallelFor(fan_out_pool_.get(), active.size(),
                  [&](std::size_t i) {
                    obs::ScopedQueryContext scope(parent);
                    fn(active[i]);
                  });
      return;
    }
  }
  for (std::size_t shard : active) fn(shard);
}

namespace {

/// Reusable scatter-gather state for the serial (pool-less) path. All
/// arrays are flat and grouped by shard with a counting sort; capacity
/// reaches steady state after the first few batches, so the hot path
/// allocates nothing. thread_local because executor scan shards may
/// call ReconstructRegion concurrently on distinct threads.
struct SerialScatterScratch {
  std::vector<std::uint32_t> shard_of;   // per input item
  std::vector<std::size_t> offsets;      // per shard: group begin; +1 = end
  std::vector<std::size_t> cursor;       // per shard: next write slot
  std::vector<CellRef> local_cells;      // localized, input order
  std::vector<CellRef> grouped_cells;    // localized, grouped by shard
  std::vector<std::size_t> local_rows;   // localized rows, input order
  std::vector<std::size_t> grouped_rows; // localized rows, grouped
  std::vector<std::size_t> grouped_out;  // original positions, grouped
  std::vector<double> values;            // one shard's gathered cells
  Matrix region;                         // one shard's gathered region
};

SerialScatterScratch& SerialScratch() {
  thread_local SerialScatterScratch scratch;
  return scratch;
}

/// Below this many output cells a batch cannot amortize the fan-out
/// pool's wake-up (microseconds) plus the parallel path's per-call
/// scatter allocations: a few hundred cells reconstruct in ~2-3us,
/// so dispatching them to workers made S=2 serve at ~0.7x the single
/// store. Small batches take the allocation-free serial path instead
/// (identical results — shard outputs are disjoint either way).
constexpr std::size_t kMinCellsForFanOut = 8192;

}  // namespace

void ShardedStore::SerialReconstructCells(std::span<const CellRef> cells,
                                          std::span<double> out) const {
  const std::size_t shard_count = models_.size();
  // Serving from the in-memory shard models: the fused multi-model
  // loops reconstruct in one pass — per-cell model select, no grouping
  // copies, no per-shard calls — which is what keeps small batches at
  // single-store speed for S > 1. Large batches stay on the grouped
  // path below: its per-shard backend calls unlock SvddModel's
  // whole-table delta fold, which beats per-cell probing once the
  // batch is a fair fraction of the delta table. (The hit masks give
  // the exact distinct-shard count for S <= 64 and an aliased lower
  // bound beyond, which only feeds the fan-out metric.)
  if (backends_.empty() && cells.size() < kMinCellsForFanOut) {
    thread_local std::vector<const SvddModel*> model_ptrs;
    model_ptrs.resize(shard_count);
    for (std::size_t s = 0; s < shard_count; ++s) {
      model_ptrs[s] = &models_[s];
    }
    if (layout_.partition == ShardPartition::kRange) {
      // Owner selection fuses into the reconstruction itself: nothing
      // is precomputed per cell.
      const std::uint64_t hit = SvddModel::ReconstructCellsRange(
          model_ptrs, layout_.range_begin, cells, out);
      ChargeShardScatter(static_cast<std::size_t>(std::popcount(hit)));
      return;
    }
    SerialScatterScratch& scratch = SerialScratch();
    scratch.shard_of.resize(cells.size());
    scratch.local_cells.resize(cells.size());
    std::uint64_t hit = 0;
    for (std::size_t i = 0; i < cells.size(); ++i) {
      auto [shard, local] = layout_.Locate(cells[i].row);
      scratch.shard_of[i] = static_cast<std::uint32_t>(shard);
      scratch.local_cells[i] = CellRef{local, cells[i].col};
      hit |= std::uint64_t{1} << (shard & 63);
    }
    ChargeShardScatter(static_cast<std::size_t>(std::popcount(hit)));
    SvddModel::ReconstructCellsMulti(model_ptrs, scratch.shard_of,
                                     scratch.local_cells, out);
    return;
  }
  SerialScatterScratch& scratch = SerialScratch();
  scratch.shard_of.resize(cells.size());
  scratch.local_cells.resize(cells.size());
  scratch.offsets.assign(shard_count + 1, 0);
  for (std::size_t i = 0; i < cells.size(); ++i) {
    auto [shard, local] = layout_.Locate(cells[i].row);
    scratch.shard_of[i] = static_cast<std::uint32_t>(shard);
    scratch.local_cells[i] = CellRef{local, cells[i].col};
    ++scratch.offsets[scratch.shard_of[i] + 1];
  }
  std::size_t active = 0;
  for (std::size_t s = 0; s < shard_count; ++s) {
    if (scratch.offsets[s + 1] != 0) ++active;
    scratch.offsets[s + 1] += scratch.offsets[s];
  }
  ChargeShardScatter(active);
  scratch.cursor.assign(scratch.offsets.begin(),
                        scratch.offsets.end() - 1);
  scratch.grouped_cells.resize(cells.size());
  scratch.grouped_out.resize(cells.size());
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const std::size_t pos = scratch.cursor[scratch.shard_of[i]]++;
    scratch.grouped_cells[pos] = scratch.local_cells[i];
    scratch.grouped_out[pos] = i;
  }
  for (std::size_t s = 0; s < shard_count; ++s) {
    const std::size_t begin = scratch.offsets[s];
    const std::size_t end = scratch.offsets[s + 1];
    if (begin == end) continue;
    const std::size_t count = end - begin;
    if (scratch.values.size() < count) scratch.values.resize(count);
    backend(s)->ReconstructCells(
        std::span<const CellRef>(scratch.grouped_cells.data() + begin, count),
        std::span<double>(scratch.values.data(), count));
    for (std::size_t i = 0; i < count; ++i) {
      out[scratch.grouped_out[begin + i]] = scratch.values[i];
    }
  }
}

void ShardedStore::SerialReconstructRegion(
    std::span<const std::size_t> row_ids,
    std::span<const std::size_t> col_ids, Matrix* out) const {
  // Every output row is fully overwritten below, so reuse the caller's
  // matrix when the shape already matches instead of reallocating.
  if (out->rows() != row_ids.size() || out->cols() != col_ids.size()) {
    *out = Matrix(row_ids.size(), col_ids.size());
  }
  const std::size_t shard_count = models_.size();
  SerialScatterScratch& scratch = SerialScratch();
  scratch.shard_of.resize(row_ids.size());
  scratch.local_rows.resize(row_ids.size());
  scratch.offsets.assign(shard_count + 1, 0);
  for (std::size_t i = 0; i < row_ids.size(); ++i) {
    auto [shard, local] = layout_.Locate(row_ids[i]);
    scratch.shard_of[i] = static_cast<std::uint32_t>(shard);
    scratch.local_rows[i] = local;
    ++scratch.offsets[shard + 1];
  }
  std::size_t active = 0;
  for (std::size_t s = 0; s < shard_count; ++s) {
    if (scratch.offsets[s + 1] != 0) ++active;
    scratch.offsets[s + 1] += scratch.offsets[s];
  }
  ChargeShardScatter(active);
  scratch.cursor.assign(scratch.offsets.begin(),
                        scratch.offsets.end() - 1);
  scratch.grouped_rows.resize(row_ids.size());
  scratch.grouped_out.resize(row_ids.size());
  for (std::size_t i = 0; i < row_ids.size(); ++i) {
    const std::size_t pos = scratch.cursor[scratch.shard_of[i]]++;
    scratch.grouped_rows[pos] = scratch.local_rows[i];
    scratch.grouped_out[pos] = i;
  }
  for (std::size_t s = 0; s < shard_count; ++s) {
    const std::size_t begin = scratch.offsets[s];
    const std::size_t end = scratch.offsets[s + 1];
    if (begin == end) continue;
    const std::size_t count = end - begin;
    backend(s)->ReconstructRegion(
        std::span<const std::size_t>(scratch.grouped_rows.data() + begin,
                                     count),
        col_ids, &scratch.region);
    for (std::size_t i = 0; i < count; ++i) {
      std::span<const double> src = scratch.region.Row(i);
      std::span<double> dst = out->Row(scratch.grouped_out[begin + i]);
      std::copy(src.begin(), src.end(), dst.begin());
    }
  }
}

double ShardedStore::ReconstructCell(std::size_t row, std::size_t col) const {
  auto [shard, local] = layout_.Locate(row);
  return backend(shard)->ReconstructCell(local, col);
}

void ShardedStore::ReconstructRow(std::size_t row,
                                  std::span<double> out) const {
  auto [shard, local] = layout_.Locate(row);
  backend(shard)->ReconstructRow(local, out);
}

void ShardedStore::ReconstructCells(std::span<const CellRef> cells,
                                    std::span<double> out) const {
  if (models_.size() == 1) {
    // One shard owns every row (local == global under both partition
    // rules), so skip the scatter copies: S=1 must serve at
    // single-store speed.
    ChargeShardScatter(1);
    backend(0)->ReconstructCells(cells, out);
    return;
  }
  if (fan_out_pool_ == nullptr || cells.size() < kMinCellsForFanOut) {
    // No pool means every shard runs on this thread anyway — and a
    // small batch is faster on this thread too; either way take the
    // allocation-free path so S>1 serves near single-store speed.
    SerialReconstructCells(cells, out);
    return;
  }
  // Scatter: deal cells to their shards, remembering output slots.
  std::vector<std::vector<CellRef>> shard_cells(models_.size());
  std::vector<std::vector<std::size_t>> shard_out(models_.size());
  for (std::size_t i = 0; i < cells.size(); ++i) {
    auto [shard, local] = layout_.Locate(cells[i].row);
    shard_cells[shard].push_back(CellRef{local, cells[i].col});
    shard_out[shard].push_back(i);
  }
  std::vector<std::size_t> active;
  for (std::size_t s = 0; s < models_.size(); ++s) {
    if (!shard_cells[s].empty()) active.push_back(s);
  }
  ChargeShardScatter(active.size());
  // Gather: each shard reconstructs its batch and writes its own output
  // slots — disjoint writes, so parallel == serial bit for bit.
  std::vector<std::vector<double>> shard_values(models_.size());
  ForEachShard(active, [&](std::size_t s) {
    shard_values[s].resize(shard_cells[s].size());
    backend(s)->ReconstructCells(shard_cells[s],
                                 std::span<double>(shard_values[s]));
    for (std::size_t i = 0; i < shard_out[s].size(); ++i) {
      out[shard_out[s][i]] = shard_values[s][i];
    }
  });
}

void ShardedStore::ReconstructRegion(std::span<const std::size_t> row_ids,
                                     std::span<const std::size_t> col_ids,
                                     Matrix* out) const {
  if (models_.size() == 1) {
    // Same single-shard forward as ReconstructCells.
    ChargeShardScatter(1);
    backend(0)->ReconstructRegion(row_ids, col_ids, out);
    return;
  }
  if (fan_out_pool_ == nullptr ||
      row_ids.size() * col_ids.size() < kMinCellsForFanOut) {
    SerialReconstructRegion(row_ids, col_ids, out);
    return;
  }
  *out = Matrix(row_ids.size(), col_ids.size());
  std::vector<ShardSelection> selections = PartitionRows(row_ids);
  std::vector<std::size_t> active;
  for (std::size_t s = 0; s < selections.size(); ++s) {
    if (!selections[s].local_rows.empty()) active.push_back(s);
  }
  ChargeShardScatter(active.size());
  std::vector<Matrix> shard_regions(models_.size());
  ForEachShard(active, [&](std::size_t s) {
    const ShardSelection& sel = selections[s];
    backend(s)->ReconstructRegion(sel.local_rows, col_ids, &shard_regions[s]);
    for (std::size_t i = 0; i < sel.out_index.size(); ++i) {
      std::span<const double> src = shard_regions[s].Row(i);
      std::span<double> dst = out->Row(sel.out_index[i]);
      std::copy(src.begin(), src.end(), dst.begin());
    }
  });
}

void ShardedStore::PrefetchRows(std::span<const std::size_t> row_ids) const {
  std::vector<ShardSelection> selections = PartitionRows(row_ids);
  for (std::size_t s = 0; s < selections.size(); ++s) {
    if (selections[s].local_rows.empty()) continue;
    if (const auto* prefetchable =
            dynamic_cast<const RowPrefetchable*>(backend(s))) {
      prefetchable->PrefetchRows(selections[s].local_rows);
    }
  }
}

std::uint64_t ShardedStore::CompressedBytes() const {
  std::uint64_t total = 0;
  for (const SvddModel& model : models_) total += model.CompressedBytes();
  return total;
}

Status ShardedStore::PatchCell(std::size_t row, std::size_t col,
                               double exact_value) {
  if (row >= rows() || col >= cols()) {
    return Status::InvalidArgument("PatchCell outside the matrix");
  }
  auto [shard, local] = layout_.Locate(row);
  return models_[shard].PatchCell(local, col, exact_value);
}

SvdModel::FoldInStats ShardedStore::FoldInRows(const Matrix& new_rows) {
  // Deal the appended rows exactly as AppendRows will grow the layout:
  // range sends everything to the last shard; hash continues the
  // round-robin from the current total, which appends to each shard's
  // dense local tail.
  std::vector<std::vector<std::size_t>> shard_rows(models_.size());
  for (std::size_t j = 0; j < new_rows.rows(); ++j) {
    const std::size_t global = layout_.total_rows + j;
    const std::size_t shard = layout_.partition == ShardPartition::kRange
                                  ? models_.size() - 1
                                  : global % layout_.shard_count;
    shard_rows[shard].push_back(j);
  }
  SvdModel::FoldInStats merged;
  for (std::size_t s = 0; s < models_.size(); ++s) {
    if (shard_rows[s].empty()) continue;
    Matrix slice(shard_rows[s].size(), new_rows.cols());
    for (std::size_t i = 0; i < shard_rows[s].size(); ++i) {
      std::span<const double> src = new_rows.Row(shard_rows[s][i]);
      std::copy(src.begin(), src.end(), slice.Row(i).begin());
    }
    SvdModel::FoldInStats stats = models_[s].FoldInRows(slice);
    merged.rows_added += stats.rows_added;
    merged.energy_total += stats.energy_total;
    merged.energy_captured += stats.energy_captured;
  }
  layout_.AppendRows(new_rows.rows());
  return merged;
}

void ShardedStore::AttachBackends(
    std::vector<const CompressedStore*> backends) {
  assert(backends.empty() || backends.size() == models_.size());
  backends_ = std::move(backends);
}

void ShardedStore::EnableParallelFanOut(std::size_t num_threads) {
  fan_out_pool_ =
      num_threads > 1 ? std::make_shared<ThreadPool>(num_threads) : nullptr;
}

// ---------------------------------------------------------------------------
// SplitSvddModel
// ---------------------------------------------------------------------------

StatusOr<ShardedStore> SplitSvddModel(const SvddModel& model,
                                      const ShardLayout& layout) {
  if (layout.total_rows != model.rows()) {
    return Status::InvalidArgument(
        "shard layout row count disagrees with the model");
  }
  const std::size_t num_shards = layout.shard_count;
  const std::size_t cols = model.cols();
  const std::size_t k = model.k();
  const SvdModel& svd = model.svd();

  // One pass over the delta table, re-keying each outlier to its shard's
  // local row; the layout's Locate is the single source of truth.
  std::vector<DeltaTable> shard_deltas(num_shards);
  for (DeltaTable& table : shard_deltas) {
    table.set_entry_bytes(model.deltas().entry_bytes());
  }
  model.deltas().ForEach([&](std::uint64_t key, double delta) {
    const std::size_t row = static_cast<std::size_t>(key / cols);
    const std::size_t col = static_cast<std::size_t>(key % cols);
    auto [shard, local] = layout.Locate(row);
    shard_deltas[shard].Put(DeltaTable::CellKey(local, col, cols), delta);
  });

  std::vector<SvddModel> shards;
  shards.reserve(num_shards);
  for (std::size_t s = 0; s < num_shards; ++s) {
    const std::size_t shard_rows = layout.RowsIn(s);
    // Copy the already-quantization-snapped U rows bit for bit; V and
    // the eigenvalues are replicated (they are tiny next to U), and the
    // SvdModel constructor re-derives weighted_v deterministically.
    Matrix u(shard_rows, k);
    for (std::size_t r = 0; r < shard_rows; ++r) {
      std::span<const double> src = svd.u().Row(layout.GlobalOf(s, r));
      std::copy(src.begin(), src.end(), u.Row(r).begin());
    }
    SvdModel shard_svd(std::move(u), svd.singular_values(), svd.v());
    shard_svd.set_bytes_per_value(svd.bytes_per_value());
    shard_svd.MarkQuantScheme(svd.quant_scheme());

    std::optional<BloomFilter> bloom;
    if (model.has_bloom_filter()) {
      // Each shard fronts its own delta table; the filter only ever
      // short-cuts definite misses, so re-deriving it cannot change any
      // reconstructed value.
      BloomFilter filter(std::max<std::size_t>(shard_deltas[s].size(), 1));
      shard_deltas[s].ForEach(
          [&](std::uint64_t key, double) { filter.Add(key); });
      bloom = std::move(filter);
    }
    shards.emplace_back(std::move(shard_svd), std::move(shard_deltas[s]),
                        std::move(bloom));
  }
  return ShardedStore(std::move(shards), layout);
}

// ---------------------------------------------------------------------------
// BuildShardedStore
// ---------------------------------------------------------------------------

StatusOr<ShardedStore> BuildShardedStore(const Matrix& data,
                                         const ShardedBuildOptions& options,
                                         ShardedBuildDiagnostics* diagnostics) {
  TSC_ASSIGN_OR_RETURN(ShardLayout layout,
                       ShardLayout::Make(ShardPartition::kRange, data.rows(),
                                         options.shard_count));
  const std::size_t num_shards = layout.shard_count;
  if (!options.per_shard_quant.empty() && options.per_shard_quant.size() != 1 &&
      options.per_shard_quant.size() != num_shards) {
    return Status::InvalidArgument(
        "per_shard_quant must name one scheme, one per shard, or none");
  }

  // S independent serial 3-pass builds fanned out across the worker
  // pool: shard builds share nothing, so the models are bitwise
  // identical at any thread count and the build scales with
  // min(threads, S) where intra-pass chunking could not.
  std::vector<StatusOr<SvddModel>> built(
      num_shards, StatusOr<SvddModel>(Status::Internal("shard not built")));
  std::vector<SvddBuildDiagnostics> shard_diags(num_shards);
  std::vector<double> shard_seconds(num_shards, 0.0);

  std::unique_ptr<ThreadPool> pool;
  if (options.num_threads > 1 && num_shards > 1) {
    pool = std::make_unique<ThreadPool>(
        std::min(options.num_threads, num_shards));
  }
  ParallelFor(pool.get(), num_shards, [&](std::size_t s) {
    const auto start = std::chrono::steady_clock::now();
    SvddBuildOptions shard_options = options.base;
    shard_options.num_threads = 1;  // parallelism lives ACROSS shards
    shard_options.prefetch_depth = 0;
    if (options.per_shard_quant.size() == 1) {
      shard_options.quant = options.per_shard_quant[0];
    } else if (options.per_shard_quant.size() == num_shards) {
      shard_options.quant = options.per_shard_quant[s];
    }
    MatrixSliceRowSource source(&data, layout.range_begin[s],
                                layout.RowsIn(s));
    built[s] = BuildSvddModel(&source, shard_options, &shard_diags[s]);
    shard_seconds[s] =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
  });

  std::vector<SvddModel> models;
  models.reserve(num_shards);
  for (std::size_t s = 0; s < num_shards; ++s) {
    if (!built[s].ok()) return built[s].status();
    models.push_back(std::move(built[s]).value());
  }
  if (diagnostics != nullptr) {
    diagnostics->shards = std::move(shard_diags);
    diagnostics->shard_seconds = std::move(shard_seconds);
  }
  return ShardedStore(std::move(models), std::move(layout));
}

// ---------------------------------------------------------------------------
// ShardedDiskBundle
// ---------------------------------------------------------------------------

std::vector<const CompressedStore*> ShardedDiskBundle::ViewPointers() const {
  std::vector<const CompressedStore*> pointers;
  pointers.reserve(views.size());
  for (const DiskBackedStoreView& view : views) pointers.push_back(&view);
  return pointers;
}

void ShardedDiskBundle::RemoveFiles() {
  for (const std::string& path : file_paths) std::remove(path.c_str());
  file_paths.clear();
}

StatusOr<ShardedDiskBundle> OpenShardedDiskBundle(
    const ShardedStore& store, const std::string& base_path,
    const DiskBackedOptions& options) {
  ShardedDiskBundle bundle;
  for (std::size_t s = 0; s < store.shard_count(); ++s) {
    char suffix[32];
    std::snprintf(suffix, sizeof(suffix), ".shard%zu", s);
    const std::string u_path = base_path + suffix + ".u";
    const std::string sidecar_path = base_path + suffix + ".sidecar";
    Status exported =
        ExportSvddToDisk(store.shard_model(s), u_path, sidecar_path);
    if (!exported.ok()) {
      bundle.RemoveFiles();
      return exported;
    }
    bundle.file_paths.push_back(u_path);
    bundle.file_paths.push_back(sidecar_path);
    StatusOr<DiskBackedStore> opened =
        DiskBackedStore::Open(u_path, sidecar_path, options);
    if (!opened.ok()) {
      bundle.RemoveFiles();
      return opened.status();
    }
    // deque never relocates elements, so the view's pointer stays valid
    // as later shards are appended.
    bundle.stores.push_back(std::move(opened).value());
    bundle.views.emplace_back(&bundle.stores.back());
  }
  return bundle;
}

}  // namespace tsc
