#include "core/zero_rows.h"

#include <algorithm>

#include "storage/row_source.h"
#include "util/logging.h"

namespace tsc {

ZeroRowFilteredStore::ZeroRowFilteredStore(std::vector<bool> is_zero,
                                           SvddModel inner)
    : is_zero_(std::move(is_zero)), inner_(std::move(inner)) {
  compact_index_.resize(is_zero_.size(), 0);
  std::uint32_t next = 0;
  for (std::size_t i = 0; i < is_zero_.size(); ++i) {
    if (is_zero_[i]) {
      ++zero_row_count_;
    } else {
      compact_index_[i] = next++;
    }
  }
  TSC_CHECK_EQ(static_cast<std::size_t>(next), inner_.rows());
}

double ZeroRowFilteredStore::ReconstructCell(std::size_t row,
                                             std::size_t col) const {
  TSC_DCHECK(row < rows() && col < cols());
  if (is_zero_[row]) return 0.0;  // exact by construction
  return inner_.ReconstructCell(compact_index_[row], col);
}

void ZeroRowFilteredStore::ReconstructRow(std::size_t row,
                                          std::span<double> out) const {
  TSC_CHECK_EQ(out.size(), cols());
  if (is_zero_[row]) {
    std::fill(out.begin(), out.end(), 0.0);
    return;
  }
  inner_.ReconstructRow(compact_index_[row], out);
}

std::uint64_t ZeroRowFilteredStore::CompressedBytes() const {
  return inner_.CompressedBytes() + (is_zero_.size() + 7) / 8;
}

StatusOr<ZeroRowFilteredStore> BuildZeroRowFilteredSvdd(
    const Matrix& data, const SvddBuildOptions& options,
    SvddBuildDiagnostics* diagnostics) {
  const std::size_t n = data.rows();
  if (n == 0 || data.cols() == 0) {
    return Status::InvalidArgument("empty matrix");
  }
  std::vector<bool> is_zero(n, false);
  std::size_t active = 0;
  for (std::size_t i = 0; i < n; ++i) {
    bool all_zero = true;
    for (const double v : data.Row(i)) {
      if (v != 0.0) {
        all_zero = false;
        break;
      }
    }
    is_zero[i] = all_zero;
    if (!all_zero) ++active;
  }
  if (active == 0) {
    return Status::InvalidArgument("matrix is entirely zero");
  }

  Matrix compact(active, data.cols());
  std::size_t next = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (is_zero[i]) continue;
    std::copy(data.Row(i).begin(), data.Row(i).end(),
              compact.Row(next).begin());
    ++next;
  }

  // Same byte allowance as a plain build at this percent of the FULL
  // matrix, re-expressed as a percent of the compacted one.
  const double full_bytes = static_cast<double>(n) * data.cols() *
                            options.bytes_per_value;
  const double compact_bytes = static_cast<double>(active) * data.cols() *
                               options.bytes_per_value;
  SvddBuildOptions inner_options = options;
  inner_options.space_percent =
      options.space_percent * full_bytes / compact_bytes;

  MatrixRowSource source(&compact);
  TSC_ASSIGN_OR_RETURN(SvddModel inner,
                       BuildSvddModel(&source, inner_options, diagnostics));
  return ZeroRowFilteredStore(std::move(is_zero), std::move(inner));
}

}  // namespace tsc
