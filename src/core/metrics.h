#ifndef TSC_CORE_METRICS_H_
#define TSC_CORE_METRICS_H_

#include <cstddef>
#include <vector>

#include "core/compressed_store.h"
#include "linalg/matrix.h"

namespace tsc {

/// Reconstruction-quality summary over a full matrix.
struct ErrorReport {
  /// Definition 5.1: sqrt(sum (xhat - x)^2) / sqrt(sum (x - xbar)^2),
  /// i.e. RMSE normalized by the standard deviation of the data.
  double rmspe = 0.0;
  /// Largest |xhat - x| over all cells (Table 3, "Abs Error").
  double max_abs_error = 0.0;
  /// max_abs_error / stddev of the data (Table 3, "Normalized"); reported
  /// as a fraction (multiply by 100 for the paper's percent form).
  double max_normalized_error = 0.0;
  /// Median |xhat - x| (the Figure 8 discussion: median is 1-2 orders of
  /// magnitude below the mean error).
  double median_abs_error = 0.0;
  /// Mean |xhat - x|.
  double mean_abs_error = 0.0;
  /// Standard deviation of the original data (the normalizer).
  double data_stddev = 0.0;
  std::size_t cell_count = 0;
};

/// Evaluates `store` against the uncompressed `original`.
/// Shapes must match.
ErrorReport EvaluateErrors(const Matrix& original,
                           const CompressedStore& store);

/// RMSPE only (cheaper to state at call sites).
double Rmspe(const Matrix& original, const CompressedStore& store);

/// All |xhat - x| values sorted descending: the Figure 8 curve. When
/// `limit` > 0, only the `limit` largest are returned.
std::vector<double> CellErrorsSortedDescending(const Matrix& original,
                                               const CompressedStore& store,
                                               std::size_t limit = 0);

/// Population standard deviation of all cells of `m`.
double MatrixStddev(const Matrix& m);

}  // namespace tsc

#endif  // TSC_CORE_METRICS_H_
