#ifndef TSC_CORE_SHARDED_STORE_H_
#define TSC_CORE_SHARDED_STORE_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "core/compressed_store.h"
#include "core/disk_backed.h"
#include "core/svdd_compressor.h"
#include "storage/quant.h"
#include "util/status.h"

namespace tsc {

class ThreadPool;

/// How global rows are dealt to shards.
enum class ShardPartition : std::uint32_t {
  kRange = 0,  ///< balanced contiguous slices (default; build-friendly)
  kHash = 1,   ///< shard = row % S (round-robin; spreads hot prefixes)
};

const char* ShardPartitionName(ShardPartition partition);

/// The invertible global-row <-> (shard, local-row) mapping every
/// sharded component shares. Range partitioning deals balanced
/// contiguous slices (the first `total_rows % S` shards get one extra
/// row); hash partitioning deals round-robin. Both are order-preserving
/// within a shard, so per-shard selections stay sorted and coalescible.
struct ShardLayout {
  ShardPartition partition = ShardPartition::kRange;
  std::size_t total_rows = 0;
  std::size_t shard_count = 1;
  /// Range partitioning: shard s owns [range_begin[s], range_begin[s+1])
  /// (size shard_count + 1; empty for hash). Kept explicit — not
  /// recomputed from total_rows — so appended rows can grow the last
  /// shard without remapping any existing row.
  std::vector<std::size_t> range_begin;

  /// Balanced layout: validates 1 <= shard_count <= total_rows (every
  /// shard must own at least one row so each gets a non-degenerate
  /// model). Range shards get contiguous slices, the first
  /// total_rows % S of them one extra row.
  static StatusOr<ShardLayout> Make(ShardPartition partition,
                                    std::size_t total_rows,
                                    std::size_t shard_count);
  /// Range layout with explicit per-shard row counts (manifest loads).
  static StatusOr<ShardLayout> MakeRange(
      const std::vector<std::size_t>& row_counts);

  std::size_t RowsIn(std::size_t shard) const;

  std::size_t ShardOf(std::size_t global_row) const;
  std::size_t LocalOf(std::size_t global_row) const {
    return Locate(global_row).second;
  }
  /// (shard, local) of a global row.
  std::pair<std::size_t, std::size_t> Locate(std::size_t global_row) const;
  std::size_t GlobalOf(std::size_t shard, std::size_t local_row) const;

  /// Grows the layout for `count` appended global rows: hash keeps the
  /// modulo rule (locals stay dense); range grows the last shard, so no
  /// existing row moves.
  void AppendRows(std::size_t count);

  friend bool operator==(const ShardLayout&, const ShardLayout&) = default;
};

/// One shard's line in the TSCSHARD1 manifest.
struct ShardManifestEntry {
  std::string path;  ///< shard model file, relative to the manifest
  std::size_t row_count = 0;
  QuantScheme quant = QuantScheme::kF64;
  std::size_t k = 0;
  std::uint64_t delta_count = 0;
};

/// The TSCSHARD1 manifest: partitioning, shape, and one entry per shard
/// model file (docs/file_formats.md). The manifest is the unit `tsctool`
/// loads; shard files are plain SVDD model files.
struct ShardManifest {
  ShardPartition partition = ShardPartition::kRange;
  std::size_t total_rows = 0;
  std::size_t total_cols = 0;
  std::vector<ShardManifestEntry> shards;

  /// Layout implied by the manifest: range partitions reconstruct the
  /// boundaries from the per-shard row counts (which may be unbalanced
  /// after fold-ins); hash partitions validate the counts against the
  /// modulo rule.
  StatusOr<ShardLayout> Layout() const;

  Status SaveToFile(const std::string& path) const;
  static StatusOr<ShardManifest> LoadFromFile(const std::string& path);
  /// Cheap magic sniff, so model loaders can dispatch without parsing.
  static bool IsManifestFile(const std::string& path);
};

/// S independent SVDD stores serving one logical N x M matrix: each
/// shard owns a row partition with its own U store, delta table, Bloom
/// filter and quant scheme (heterogeneous schemes are allowed — hot
/// shards can stay f32 while cold shards pack int8). Implements
/// CompressedStore, so the executor's batched scan, the benches and the
/// server all serve it transparently; batched calls fan out per shard
/// and write disjoint output slots, which keeps results bit-identical
/// to a serial loop at any thread count.
class ShardedStore : public CompressedStore, public RowPrefetchable {
 public:
  ShardedStore(std::vector<SvddModel> models, ShardLayout layout);

  /// Loads every shard model named by a TSCSHARD1 manifest (paths are
  /// resolved relative to the manifest's directory).
  static StatusOr<ShardedStore> LoadFromManifest(
      const std::string& manifest_path);

  /// Writes the manifest to `manifest_path` and each shard model to
  /// `<manifest_path>.shard<i>`.
  Status SaveToFiles(const std::string& manifest_path) const;

  std::size_t rows() const override { return layout_.total_rows; }
  std::size_t cols() const override;
  std::size_t shard_count() const { return models_.size(); }
  const ShardLayout& layout() const { return layout_; }

  const SvddModel& shard_model(std::size_t shard) const {
    return models_[shard];
  }
  SvddModel& mutable_shard_model(std::size_t shard) { return models_[shard]; }

  double ReconstructCell(std::size_t row, std::size_t col) const override;
  void ReconstructRow(std::size_t row, std::span<double> out) const override;
  void ReconstructCells(std::span<const CellRef> cells,
                        std::span<double> out) const override;
  void ReconstructRegion(std::span<const std::size_t> row_ids,
                         std::span<const std::size_t> col_ids,
                         Matrix* out) const override;

  /// Forwards to every prefetch-capable shard backend (disk-backed
  /// shards warm their own BlockCache set; in-memory shards ignore it).
  void PrefetchRows(std::span<const std::size_t> row_ids) const override;

  std::uint64_t CompressedBytes() const override;
  std::string MethodName() const override { return "svdd-sharded"; }

  /// Routes a point update to the owning shard's model (and through it
  /// to that shard's delta listeners / aggregate hierarchy).
  Status PatchCell(std::size_t row, std::size_t col, double exact_value);

  /// Same subspace fidelity report as SvddModel::FoldInRows. Appended
  /// rows are dealt by the layout's partition rule, so the layout grows
  /// consistently with Locate().
  SvdModel::FoldInStats FoldInRows(const Matrix& new_rows);

  /// Replaces the per-shard serving backends (e.g. DiskBackedStoreView
  /// per shard). Must match shard_count(); pass {} to serve from the
  /// in-memory models again. Views must outlive the store.
  void AttachBackends(std::vector<const CompressedStore*> backends);

  /// The store a shard currently serves from: the attached backend, or
  /// the in-memory model.
  const CompressedStore* backend(std::size_t shard) const {
    return backends_.empty() ? static_cast<const CompressedStore*>(
                                   &models_[shard])
                             : backends_[shard];
  }

  /// Fans batched reconstructions out across shards on an internal pool
  /// (0/1 disables). Overlapping calls — e.g. from the executor's scan
  /// shards — fall back to the serial loop instead of contending, the
  /// same discipline as BlockPrefetcher; results are identical either
  /// way because every shard writes its own output slots.
  void EnableParallelFanOut(std::size_t num_threads);

 private:
  /// Per-shard slices of a batched selection: local ids plus the output
  /// positions they came from.
  struct ShardSelection {
    std::vector<std::size_t> local_rows;
    std::vector<std::size_t> out_index;
  };
  std::vector<ShardSelection> PartitionRows(
      std::span<const std::size_t> row_ids) const;

  /// Runs `fn(shard)` for every listed shard, on the fan-out pool when
  /// it is free, serially otherwise.
  void ForEachShard(const std::vector<std::size_t>& active,
                    const std::function<void(std::size_t)>& fn) const;

  /// Allocation-free scatter-gather used when no fan-out pool is
  /// attached: one thread-local counting-sort scratch groups the batch
  /// by shard and one value/region buffer is reused across shards.
  /// Bit-identical to the pooled path (same grouping order, same
  /// backend calls); exists because per-call vector-of-vector scatter
  /// state cost ~2x QPS on the single-threaded serving path (BENCH_9).
  void SerialReconstructCells(std::span<const CellRef> cells,
                              std::span<double> out) const;
  void SerialReconstructRegion(std::span<const std::size_t> row_ids,
                               std::span<const std::size_t> col_ids,
                               Matrix* out) const;

  std::vector<SvddModel> models_;
  ShardLayout layout_;
  std::vector<const CompressedStore*> backends_;
  std::shared_ptr<ThreadPool> fan_out_pool_;
  /// Heap-held so the store stays movable (StatusOr factories).
  std::shared_ptr<std::mutex> fan_out_mutex_ = std::make_shared<std::mutex>();
};

/// Partitions an existing model's rows into per-shard models that
/// reconstruct every cell bit-identically: U rows are copied (already
/// quantization-snapped), V and the eigenvalues are replicated, deltas
/// are re-keyed to shard-local rows, and each shard rebuilds its own
/// Bloom filter. This is what `tsctool reshard` runs, and what makes
/// the scatter-gather determinism contract testable against the
/// unsharded store (DESIGN.md §15).
StatusOr<ShardedStore> SplitSvddModel(const SvddModel& model,
                                      const ShardLayout& layout);

/// Options for the per-shard parallel build: each shard runs its own
/// independent 3-pass SVDD build (own k_opt, own delta budget, own
/// error accounting) over its row slice.
struct ShardedBuildOptions {
  /// Per-shard build options; `quant` is overridden by `per_shard_quant`
  /// when given, and `num_threads` is ignored (see `num_threads` below).
  SvddBuildOptions base;
  std::size_t shard_count = 1;
  /// Heterogeneous quantization: one scheme per shard, or one scheme
  /// for all, or empty to use `base.quant` everywhere.
  std::vector<QuantScheme> per_shard_quant;
  /// Worker threads ACROSS shards — shard builds are independent and
  /// each internally serial, so S shards build concurrently and the
  /// result is bitwise-identical for any thread count.
  std::size_t num_threads = 1;
};

struct ShardedBuildDiagnostics {
  std::vector<SvddBuildDiagnostics> shards;
  std::vector<double> shard_seconds;  ///< per-shard build wall clock
};

/// Builds a range-partitioned ShardedStore from an in-memory dataset:
/// S independent 3-pass builds, fanned out across
/// `options.num_threads` workers.
StatusOr<ShardedStore> BuildShardedStore(
    const Matrix& data, const ShardedBuildOptions& options,
    ShardedBuildDiagnostics* diagnostics = nullptr);

/// Per-shard disk serving: every shard exported to its own two-file
/// layout and opened behind its own BlockCache set. Attach the views
/// with ShardedStore::AttachBackends to serve from disk.
struct ShardedDiskBundle {
  std::deque<DiskBackedStore> stores;
  std::deque<DiskBackedStoreView> views;
  std::vector<std::string> file_paths;  ///< everything RemoveFiles deletes

  std::vector<const CompressedStore*> ViewPointers() const;
  /// Deletes the exported files (call after the store detaches).
  void RemoveFiles();
};

/// Exports every shard of `store` to `<base_path>.shard<i>.u` /
/// `.sidecar` and opens them with `options` (size the cache budget per
/// shard before calling — e.g. total_blocks / shard_count).
StatusOr<ShardedDiskBundle> OpenShardedDiskBundle(
    const ShardedStore& store, const std::string& base_path,
    const DiskBackedOptions& options);

}  // namespace tsc

#endif  // TSC_CORE_SHARDED_STORE_H_
