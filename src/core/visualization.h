#ifndef TSC_CORE_VISUALIZATION_H_
#define TSC_CORE_VISUALIZATION_H_

#include <string>
#include <vector>

#include "core/svd_compressor.h"
#include "linalg/matrix.h"
#include "util/status.h"

namespace tsc {

/// 2-d coordinates of every sequence in SVD space (Appendix A): column 0
/// is the projection on the strongest principal component, column 1 the
/// second. "Essentially for free" once a model exists.
struct ScatterPlotData {
  std::vector<double> x;  ///< first principal coordinate per row
  std::vector<double> y;  ///< second principal coordinate per row
};

/// Projects all rows of `model` onto its first two components. The model
/// must retain k >= 2 components; with k == 1 the y coordinates are zero.
ScatterPlotData ProjectToSvdSpace(const SvdModel& model);

/// Builds a model with k=2 directly from a matrix and projects it — the
/// one-call path used by examples ("visualize this dataset").
StatusOr<ScatterPlotData> ProjectDataset(const Matrix& data);

/// Indices of the `count` rows farthest (Euclidean) from the centroid in
/// SVD space: the outlier-spotting use the paper describes for analysts
/// ("a financial analyst should examine those exceptional stocks").
std::vector<std::size_t> TopOutlierRows(const ScatterPlotData& scatter,
                                        std::size_t count);

/// Renders the scatter as an ASCII plot (bench/appendix_visualization).
std::string RenderSvdScatter(const ScatterPlotData& scatter,
                             const std::string& title);

}  // namespace tsc

#endif  // TSC_CORE_VISUALIZATION_H_
