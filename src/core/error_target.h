#ifndef TSC_CORE_ERROR_TARGET_H_
#define TSC_CORE_ERROR_TARGET_H_

#include <cstddef>

#include "core/svdd_compressor.h"
#include "linalg/matrix.h"
#include "util/status.h"

namespace tsc {

/// Error-targeted compression: the inverse of the usual space knob.
/// Analysts typically know the error they can tolerate ("values within
/// 2% is fine"), not the disk they should spend; this searches for the
/// smallest space that meets the target.
struct ErrorTargetOptions {
  /// Target RMSPE (Definition 5.1, as a fraction, e.g. 0.02 = 2%).
  double target_rmspe = 0.02;
  /// Space search interval, in percent of the original matrix.
  double min_space_percent = 0.5;
  double max_space_percent = 60.0;
  /// Bisection steps; each step is one full 3-pass build + evaluation.
  std::size_t search_steps = 7;
  /// Forwarded to every trial build (space_percent is overwritten).
  SvddBuildOptions build;
};

struct ErrorTargetResult {
  SvddModel model;
  double space_percent = 0.0;  ///< the space the chosen build was given
  double achieved_rmspe = 0.0;
  std::size_t builds_performed = 0;
};

/// Bisects space until the smallest budget meeting `target_rmspe` (within
/// the search grid) is found. Fails with kResourceExhausted when even
/// max_space_percent misses the target, and with kInvalidArgument for a
/// degenerate interval or non-positive target.
StatusOr<ErrorTargetResult> CompressToErrorTarget(
    const Matrix& data, const ErrorTargetOptions& options);

}  // namespace tsc

#endif  // TSC_CORE_ERROR_TARGET_H_
