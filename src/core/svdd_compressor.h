#ifndef TSC_CORE_SVDD_COMPRESSOR_H_
#define TSC_CORE_SVDD_COMPRESSOR_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/compressed_store.h"
#include "core/delta_listener.h"
#include "core/space_budget.h"
#include "core/svd_compressor.h"
#include "storage/bloom_filter.h"
#include "storage/delta_table.h"
#include "storage/row_source.h"
#include "util/status.h"

namespace tsc {

/// Pass-1 subspace engine selector (see BuildSvddModel).
enum class SvddBuildEngine {
  /// Exact: full M x M column-similarity accumulation + dense
  /// eigensolve. The paper's algorithm; O(N * M^2) pass 1.
  kExact,
  /// Randomized: streaming Gaussian-sketch range finder
  /// (core/randomized_build.h). O(N * M * (k+p)) pass 1 with resident
  /// state independent of N; eigenvalues are Rayleigh-Ritz estimates.
  kRandomized,
};

/// The SVDD ("SVD with Deltas") representation of Section 4.2: a truncated
/// SVD plus a hash table of (cell, delta) pairs for the worst-reconstructed
/// cells, optionally fronted by a main-memory Bloom filter that short-cuts
/// the non-outlier majority.
class SvddModel : public CompressedStore {
 public:
  SvddModel() = default;
  SvddModel(SvdModel svd, DeltaTable deltas,
            std::optional<BloomFilter> bloom);

  std::size_t rows() const override { return svd_.rows(); }
  std::size_t cols() const override { return svd_.cols(); }
  std::size_t k() const { return svd_.k(); }
  std::size_t delta_count() const { return deltas_.size(); }

  double ReconstructCell(std::size_t row, std::size_t col) const override;
  void ReconstructRow(std::size_t row, std::span<double> out) const override;
  void ReconstructCells(std::span<const CellRef> cells,
                        std::span<double> out) const override;
  void ReconstructRegion(std::span<const std::size_t> row_ids,
                         std::span<const std::size_t> col_ids,
                         Matrix* out) const override;

  /// SVD footprint plus packed delta triplets. The Bloom filter is a
  /// main-memory acceleration structure ("optionally, we could use a
  /// main-memory Bloom filter", Sec. 4.2) and is reported separately by
  /// BloomBytes(), not charged to the compressed size.
  std::uint64_t CompressedBytes() const override;
  std::string MethodName() const override { return "svdd"; }

  std::uint64_t BloomBytes() const {
    return bloom_.has_value() ? bloom_->SizeBytes() : 0;
  }
  bool has_bloom_filter() const { return bloom_.has_value(); }
  /// Precondition: has_bloom_filter().
  const BloomFilter& bloom_filter() const { return *bloom_; }

  const SvdModel& svd() const { return svd_; }
  const DeltaTable& deltas() const { return deltas_; }
  DeltaTable& mutable_deltas() { return deltas_; }

  /// Fused multi-model cell loop for sharded serving: cell i is served
  /// by models[owner[i]] at the (already shard-local) coordinates
  /// cells[i], writing out[i]. One pass over the batch — the same
  /// inlined dot + bloom/delta probe as the single-store path, with the
  /// model chosen per cell through a flat view table instead of
  /// grouping the batch per shard; small batches keep single-store
  /// speed because there are no scatter/gather copies to amortize.
  /// Every owner value must index models.
  static void ReconstructCellsMulti(std::span<const SvddModel* const> models,
                                    std::span<const std::uint32_t> owner,
                                    std::span<const CellRef> cells,
                                    std::span<double> out);

  /// Range-partitioned variant of ReconstructCellsMulti: cells carry
  /// GLOBAL rows, and range_begin holds the models.size() + 1 ascending
  /// slice boundaries (model s owns rows [range_begin[s],
  /// range_begin[s+1])). Owner selection, row localization and the
  /// reconstruction run in one fused pass — the owner is a branchless
  /// boundary scan, so nothing is precomputed per cell at all. Returns
  /// a bitmask of the owners hit (owner & 63) for fan-out accounting.
  static std::uint64_t ReconstructCellsRange(
      std::span<const SvddModel* const> models,
      std::span<const std::size_t> range_begin,
      std::span<const CellRef> cells, std::span<double> out);

  /// Batched off-line appends: folds new sequences in via the frozen
  /// subspace (see SvdModel::FoldInRows). New rows get no deltas; patch
  /// their worst cells with PatchCell if needed. Attached delta
  /// listeners are told the new row count, so derived rollup structures
  /// mark themselves stale instead of silently serving the old span.
  SvdModel::FoldInStats FoldInRows(const Matrix& new_rows);

  /// Point update: makes cell (row, col) reconstruct exactly
  /// `exact_value` by storing (or replacing) its delta. This is how rare
  /// off-line corrections are applied without rebuilding; each patch
  /// costs one delta-table entry of space.
  Status PatchCell(std::size_t row, std::size_t col, double exact_value);

  /// Registers a delta-update observer (weakly held): every PatchCell
  /// then reports the (row, col, old, new) change so derived rollup
  /// structures stay fresh in O(log) instead of rebuilding. Const for
  /// the same reason the probe counter is mutable — registration is an
  /// acceleration concern, not logical model state.
  void AttachDeltaListener(std::weak_ptr<DeltaUpdateListener> listener) const {
    delta_listeners_.Attach(std::move(listener));
  }

  Status Serialize(BinaryWriter* writer) const;
  static StatusOr<SvddModel> Deserialize(BinaryReader* reader);
  Status SaveToFile(const std::string& path) const;
  static StatusOr<SvddModel> LoadFromFile(const std::string& path);

 private:
  SvdModel svd_;
  DeltaTable deltas_;
  std::optional<BloomFilter> bloom_;
  /// Weakly-held observers of PatchCell; reset on copy/move (see
  /// DeltaListenerRegistry).
  DeltaListenerRegistry delta_listeners_;
};

/// Options for the 3-pass SVDD build.
struct SvddBuildOptions {
  /// Space allowance as a percent of the uncompressed matrix (the s% knob
  /// every experiment sweeps).
  double space_percent = 10.0;
  /// The paper's b: bytes per stored number.
  std::size_t bytes_per_value = 8;
  /// On-disk bytes per outlier triplet.
  std::uint64_t delta_bytes = kDefaultDeltaBytes;
  /// Coefficient encoding of the U row store (storage/quant.h). A
  /// quantized scheme shrinks the on-disk U 2-8x; the freed budget buys
  /// a larger k and more deltas, and pass 2 measures per-cell error
  /// against the QUANTIZED reconstruction so the bounded queues pick the
  /// cells worst hit by truncation plus quantization combined.
  QuantScheme quant = QuantScheme::kF64;
  /// Force a specific k instead of optimizing (ablation hook); 0 = choose
  /// k_opt by the paper's algorithm.
  std::size_t forced_k = 0;
  /// Cap on the number of candidate k values evaluated in pass 2; the
  /// paper evaluates every k in 1..k_max, which is also our default (0).
  /// Large scale-up runs can bound pass-2 memory by evaluating an evenly
  /// spaced subset instead.
  std::size_t max_candidates = 0;
  EigenSolverKind solver = EigenSolverKind::kHouseholderQl;
  /// Build the Bloom filter in front of the delta table.
  bool build_bloom_filter = true;
  double bloom_bits_per_entry = 10.0;
  /// Worker threads for the three build passes (1 = serial). Work is
  /// sharded by a fixed shard count with an ordered reduction and a
  /// total-order outlier merge, so any thread count produces a
  /// bitwise-identical model.
  std::size_t num_threads = 1;
  /// > 0 reads each of the three passes through a ReadaheadRowSource
  /// holding that many chunks in flight (disk overlaps compute); 0 =
  /// automatic: threaded builds use a depth-2 readahead that
  /// self-disables when overlap cannot pay (in-memory or mmap sources,
  /// single-core machines); serial builds read directly.
  /// Order-preserving either way, so the model is unchanged.
  std::size_t prefetch_depth = 0;
  /// Pass-1 subspace engine. kExact reproduces the paper; kRandomized
  /// swaps pass 1 for the streaming sketch PCA, leaving passes 2/3, the
  /// k_opt search, quantized-byte charging, and sharding unchanged.
  SvddBuildEngine engine = SvddBuildEngine::kExact;
  /// Randomized engine only: Gaussian sketch seed. Builds are
  /// bit-identical for a fixed seed at any thread count.
  std::uint64_t sketch_seed = 42;
  /// Randomized engine only: oversampling columns p beyond k_max.
  std::size_t sketch_oversample = 8;
  /// Randomized engine only: extra power-iteration passes (one more
  /// stream over the rows each) for slowly decaying spectra.
  std::size_t power_iterations = 0;
};

/// Build-time report: the k trade-off the algorithm explored.
struct SvddBuildDiagnostics {
  std::size_t k_max = 0;
  std::size_t k_opt = 0;
  std::uint64_t delta_count = 0;
  /// Candidate cut-offs evaluated (ascending).
  std::vector<std::size_t> candidate_ks;
  /// Total squared reconstruction error of plain SVD at each candidate.
  std::vector<double> candidate_sse;
  /// Squared error remaining after crediting the affordable deltas
  /// (epsilon_k of Figure 5); k_opt minimizes this.
  std::vector<double> candidate_residual_sse;
  /// Affordable outlier count at each candidate.
  std::vector<std::uint64_t> candidate_delta_counts;
  /// Engine that produced the subspace: "exact" or "randomized".
  std::string engine;
  /// Randomized engine: sketch width l = k_max_target + oversample (0
  /// for exact builds).
  std::size_t sketch_cols = 0;
  /// Randomized engine: power iterations run.
  std::size_t power_iterations = 0;
  /// Data rows read across all streaming passes of the build.
  std::uint64_t rows_streamed = 0;
};

/// Builds an SVDD model with the paper's 3-pass algorithm (Figure 5):
///   pass 1  accumulate C = X^T X, eigendecompose, fix k_max and the
///           per-candidate outlier allowances gamma_k;
///   pass 2  stream rows, maintain one bounded priority queue of the
///           gamma_k largest cell errors per candidate k, accumulate each
///           epsilon_k, and pick k_opt;
///   pass 3  stream rows once more to emit U at k_opt.
/// The delta table is filled from the k_opt queue.
StatusOr<SvddModel> BuildSvddModel(RowSource* source,
                                   const SvddBuildOptions& options,
                                   SvddBuildDiagnostics* diagnostics = nullptr);

}  // namespace tsc

#endif  // TSC_CORE_SVDD_COMPRESSOR_H_
