#include "core/visualization.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "storage/row_source.h"
#include "util/ascii_plot.h"
#include "util/logging.h"

namespace tsc {

ScatterPlotData ProjectToSvdSpace(const SvdModel& model) {
  TSC_CHECK_GE(model.k(), 1u);
  ScatterPlotData scatter;
  scatter.x.resize(model.rows());
  scatter.y.resize(model.rows(), 0.0);
  for (std::size_t i = 0; i < model.rows(); ++i) {
    const std::vector<double> coords = model.ProjectRow(i);
    scatter.x[i] = coords[0];
    if (coords.size() >= 2) scatter.y[i] = coords[1];
  }
  return scatter;
}

StatusOr<ScatterPlotData> ProjectDataset(const Matrix& data) {
  MatrixRowSource source(&data);
  SvdBuildOptions options;
  options.k = 2;
  TSC_ASSIGN_OR_RETURN(SvdModel model, BuildSvdModel(&source, options));
  return ProjectToSvdSpace(model);
}

std::vector<std::size_t> TopOutlierRows(const ScatterPlotData& scatter,
                                        std::size_t count) {
  const std::size_t n = scatter.x.size();
  double cx = 0.0;
  double cy = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    cx += scatter.x[i];
    cy += scatter.y[i];
  }
  if (n > 0) {
    cx /= static_cast<double>(n);
    cy /= static_cast<double>(n);
  }
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    const double da = std::hypot(scatter.x[a] - cx, scatter.y[a] - cy);
    const double db = std::hypot(scatter.x[b] - cx, scatter.y[b] - cy);
    return da > db;
  });
  order.resize(std::min(count, n));
  return order;
}

std::string RenderSvdScatter(const ScatterPlotData& scatter,
                             const std::string& title) {
  PlotOptions options;
  options.title = title;
  options.x_label = "1st principal component";
  options.y_label = "2nd principal component";
  return RenderScatter(scatter.x, scatter.y, options);
}

}  // namespace tsc
