#ifndef TSC_CORE_ROBUST_SVD_H_
#define TSC_CORE_ROBUST_SVD_H_

#include <cstddef>
#include <vector>

#include "core/svd_compressor.h"
#include "storage/row_source.h"
#include "util/status.h"

namespace tsc {

/// "Robust" SVD — the paper's future-work item (b): an SVD that
/// minimizes the influence of outlier cells on the fitted subspace.
///
/// Implemented as trimmed EM-style refinement: starting from the plain
/// SVD, each round streams the data once, replaces cells whose residual
/// exceeds `trim_sigma` residual-standard-deviations by the current
/// model's prediction, re-accumulates the column-similarity matrix from
/// the cleaned rows and re-solves the eigenproblem. A final pass emits U
/// from the cleaned rows.
///
/// The result is a regular SvdModel (same API, same reconstruction
/// cost). Robustness moves the *subspace* away from the spikes — it
/// lowers the error on the well-behaved majority of cells — but, unlike
/// SVDD, it cannot represent the spikes themselves, so the worst-case
/// error stays large. bench/ablation_robust demonstrates exactly this
/// complementarity.
struct RobustSvdOptions {
  std::size_t k = 10;
  /// Refinement rounds after the initial plain fit.
  std::size_t iterations = 2;
  /// Cells with |residual| > trim_sigma * stddev(residual) are trimmed.
  double trim_sigma = 3.0;
  EigenSolverKind solver = EigenSolverKind::kHouseholderQl;
};

struct RobustSvdDiagnostics {
  /// Cells trimmed in each refinement round.
  std::vector<std::size_t> trimmed_cells;
  /// Residual standard deviation entering each round.
  std::vector<double> residual_stddev;
  /// Total sequential passes over the data.
  std::size_t passes = 0;
};

/// Builds the robust model with 2 + iterations + 1 streaming passes.
StatusOr<SvdModel> BuildRobustSvdModel(
    RowSource* source, const RobustSvdOptions& options,
    RobustSvdDiagnostics* diagnostics = nullptr);

}  // namespace tsc

#endif  // TSC_CORE_ROBUST_SVD_H_
