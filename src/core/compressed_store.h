#ifndef TSC_CORE_COMPRESSED_STORE_H_
#define TSC_CORE_COMPRESSED_STORE_H_

#include <cstdint>
#include <span>
#include <string>

#include "linalg/matrix.h"

namespace tsc {

/// A compressed representation of an N x M time-sequence matrix that
/// supports "random access": reconstructing any cell in time independent
/// of N and M. Every compression method in this library (SVD, SVDD, DCT,
/// clustering) implements this interface, which is what the query engine
/// and all benchmarks program against.
class CompressedStore {
 public:
  virtual ~CompressedStore() = default;

  virtual std::size_t rows() const = 0;
  virtual std::size_t cols() const = 0;

  /// Approximate value of cell (row, col). Requires row < rows() and
  /// col < cols().
  virtual double ReconstructCell(std::size_t row, std::size_t col) const = 0;

  /// Approximate full row; `out` must have size cols(). The default
  /// implementation calls ReconstructCell per column; models override it
  /// when a row can be formed more efficiently.
  virtual void ReconstructRow(std::size_t row, std::span<double> out) const;

  /// Bytes the compressed representation occupies on disk under the
  /// space-accounting rules of Section 5.1.
  virtual std::uint64_t CompressedBytes() const = 0;

  /// Short method label used in benchmark tables, e.g. "svdd".
  virtual std::string MethodName() const = 0;

  /// Materializes the full reconstruction X-hat (tests and small data).
  Matrix ReconstructAll() const;

  /// Storage as a percent of the uncompressed matrix at `bytes_per_value`
  /// bytes per cell (the paper's s%).
  double SpacePercent(std::size_t bytes_per_value = 8) const;
};

}  // namespace tsc

#endif  // TSC_CORE_COMPRESSED_STORE_H_
