#ifndef TSC_CORE_COMPRESSED_STORE_H_
#define TSC_CORE_COMPRESSED_STORE_H_

#include <cstdint>
#include <span>
#include <string>

#include "linalg/matrix.h"

namespace tsc {

/// One cell address for the batched reconstruction API.
struct CellRef {
  std::size_t row = 0;
  std::size_t col = 0;
};

/// Optional capability of a store whose rows live on slow storage: warm
/// whatever backs `row_ids` before a batched reconstruction touches
/// them, so a cold batch pays one overlapped I/O wave instead of N
/// sequential misses. In-memory models do not implement this; the query
/// executor probes for it with dynamic_cast and calls it once per scan
/// block. Must be safe to call concurrently and must not change any
/// reconstruction result.
class RowPrefetchable {
 public:
  virtual ~RowPrefetchable() = default;
  virtual void PrefetchRows(std::span<const std::size_t> row_ids) const = 0;
};

/// A compressed representation of an N x M time-sequence matrix that
/// supports "random access": reconstructing any cell in time independent
/// of N and M. Every compression method in this library (SVD, SVDD, DCT,
/// clustering) implements this interface, which is what the query engine
/// and all benchmarks program against.
class CompressedStore {
 public:
  virtual ~CompressedStore() = default;

  virtual std::size_t rows() const = 0;
  virtual std::size_t cols() const = 0;

  /// Approximate value of cell (row, col). Requires row < rows() and
  /// col < cols().
  virtual double ReconstructCell(std::size_t row, std::size_t col) const = 0;

  /// Approximate full row; `out` must have size cols(). The default
  /// implementation calls ReconstructCell per column; models override it
  /// when a row can be formed more efficiently.
  virtual void ReconstructRow(std::size_t row, std::span<double> out) const;

  /// Batched point reconstruction: out[i] = cell cells[i]. `out` must
  /// have cells.size() entries. The default loops over ReconstructCell;
  /// the SVD/SVDD models override it with vectorized dots against a
  /// precomputed Lambda-weighted V and amortized side-structure lookups.
  virtual void ReconstructCells(std::span<const CellRef> cells,
                                std::span<double> out) const;

  /// Batched region reconstruction: fills `out` (resized to
  /// row_ids.size() x col_ids.size()) with the cross product of the
  /// selected rows and columns. The default reconstructs each selected
  /// row once and gathers the selected columns; the SVD/SVDD models
  /// override it with a blocked U * (Lambda V^T) product.
  virtual void ReconstructRegion(std::span<const std::size_t> row_ids,
                                 std::span<const std::size_t> col_ids,
                                 Matrix* out) const;

  /// Bytes the compressed representation occupies on disk under the
  /// space-accounting rules of Section 5.1.
  virtual std::uint64_t CompressedBytes() const = 0;

  /// Short method label used in benchmark tables, e.g. "svdd".
  virtual std::string MethodName() const = 0;

  /// Materializes the full reconstruction X-hat (tests and small data).
  Matrix ReconstructAll() const;

  /// Storage as a percent of the uncompressed matrix at `bytes_per_value`
  /// bytes per cell (the paper's s%).
  double SpacePercent(std::size_t bytes_per_value = 8) const;
};

}  // namespace tsc

#endif  // TSC_CORE_COMPRESSED_STORE_H_
