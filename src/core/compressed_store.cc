#include "core/compressed_store.h"

#include "util/logging.h"

namespace tsc {

void CompressedStore::ReconstructRow(std::size_t row,
                                     std::span<double> out) const {
  TSC_CHECK_EQ(out.size(), cols());
  for (std::size_t j = 0; j < cols(); ++j) out[j] = ReconstructCell(row, j);
}

Matrix CompressedStore::ReconstructAll() const {
  Matrix m(rows(), cols());
  for (std::size_t i = 0; i < rows(); ++i) ReconstructRow(i, m.Row(i));
  return m;
}

double CompressedStore::SpacePercent(std::size_t bytes_per_value) const {
  const double original = static_cast<double>(rows()) *
                          static_cast<double>(cols()) *
                          static_cast<double>(bytes_per_value);
  if (original == 0.0) return 0.0;
  return 100.0 * static_cast<double>(CompressedBytes()) / original;
}

}  // namespace tsc
