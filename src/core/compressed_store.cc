#include "core/compressed_store.h"

#include <vector>

#include "util/logging.h"

namespace tsc {

void CompressedStore::ReconstructRow(std::size_t row,
                                     std::span<double> out) const {
  TSC_CHECK_EQ(out.size(), cols());
  for (std::size_t j = 0; j < cols(); ++j) out[j] = ReconstructCell(row, j);
}

void CompressedStore::ReconstructCells(std::span<const CellRef> cells,
                                       std::span<double> out) const {
  TSC_CHECK_EQ(out.size(), cells.size());
  for (std::size_t i = 0; i < cells.size(); ++i) {
    out[i] = ReconstructCell(cells[i].row, cells[i].col);
  }
}

void CompressedStore::ReconstructRegion(std::span<const std::size_t> row_ids,
                                        std::span<const std::size_t> col_ids,
                                        Matrix* out) const {
  if (out->rows() != row_ids.size() || out->cols() != col_ids.size()) {
    *out = Matrix(row_ids.size(), col_ids.size());
  }
  // One full-row reconstruction per selected row (the pre-batching cost
  // model), then gather the selected columns.
  std::vector<double> scratch(cols());
  for (std::size_t r = 0; r < row_ids.size(); ++r) {
    ReconstructRow(row_ids[r], scratch);
    const std::span<double> dst = out->Row(r);
    for (std::size_t c = 0; c < col_ids.size(); ++c) {
      dst[c] = scratch[col_ids[c]];
    }
  }
}

Matrix CompressedStore::ReconstructAll() const {
  Matrix m(rows(), cols());
  for (std::size_t i = 0; i < rows(); ++i) ReconstructRow(i, m.Row(i));
  return m;
}

double CompressedStore::SpacePercent(std::size_t bytes_per_value) const {
  const double original = static_cast<double>(rows()) *
                          static_cast<double>(cols()) *
                          static_cast<double>(bytes_per_value);
  if (original == 0.0) return 0.0;
  return 100.0 * static_cast<double>(CompressedBytes()) / original;
}

}  // namespace tsc
