#ifndef TSC_CORE_QUERY_H_
#define TSC_CORE_QUERY_H_

#include <cstddef>
#include <string>
#include <vector>

#include "core/compressed_store.h"
#include "linalg/matrix.h"
#include "util/rng.h"
#include "util/status.h"

namespace tsc {

/// Aggregate functions supported over a selected region (Section 5.2:
/// "The function f() could be, e.g., sum(), avg(), stddev(), etc.").
enum class AggregateFn {
  kSum,
  kAvg,
  kCount,
  kMin,
  kMax,
  kStddev,
  kMedian,
};

const char* AggregateFnName(AggregateFn fn);
StatusOr<AggregateFn> ParseAggregateFn(const std::string& name);

/// An ad hoc query: an aggregate over the cross product of selected rows
/// and columns ("find the total sales to business customers ... for the
/// week ending July 12").
struct RegionQuery {
  AggregateFn fn = AggregateFn::kAvg;
  std::vector<std::size_t> row_ids;
  std::vector<std::size_t> col_ids;

  std::size_t CellCount() const { return row_ids.size() * col_ids.size(); }
};

/// Parses a compact textual query form used by the examples and tests:
///   "<fn> rows=<sel> cols=<sel>"
/// where <sel> is a comma list of indices and inclusive ranges, e.g.
///   "avg rows=0:99,150 cols=3,5,7:9".
StatusOr<RegionQuery> ParseRegionQuery(const std::string& text);

/// Evaluates `query` against any cell provider. Exact when run on the raw
/// matrix, approximate when run on a CompressedStore.
double EvaluateAggregate(const Matrix& matrix, const RegionQuery& query);
double EvaluateAggregate(const CompressedStore& store,
                         const RegionQuery& query);

/// Single-cell query against the compressed store (the other query class
/// of Section 5).
inline double EvaluateCell(const CompressedStore& store, std::size_t row,
                           std::size_t col) {
  return store.ReconstructCell(row, col);
}

/// Normalized query error of Eq. 14: |f(X) - f(X-hat)| / |f(X)|.
/// Returns the absolute error when the exact answer is zero.
double QueryError(double exact, double approximate);

/// Draws a random aggregate query whose selected region covers
/// approximately `cell_fraction` of the matrix (the Section 5.2 workload:
/// "the number of rows and columns selected was tuned so that
/// approximately 10% of the data cells would be included").
RegionQuery MakeRandomRegionQuery(std::size_t num_rows, std::size_t num_cols,
                                  double cell_fraction, AggregateFn fn,
                                  Rng* rng);

}  // namespace tsc

#endif  // TSC_CORE_QUERY_H_
