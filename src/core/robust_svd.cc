#include "core/robust_svd.h"

#include <algorithm>
#include <cmath>

#include "linalg/svd.h"
#include "linalg/symmetric_eigen.h"
#include "util/logging.h"
#include "util/stats.h"

namespace tsc {
namespace {

/// Factors shared across refinement rounds.
struct Subspace {
  std::vector<double> singular_values;
  Matrix v;  // M x k

  std::size_t k() const { return singular_values.size(); }
};

/// Projects `row` onto the subspace and writes the rank-k reconstruction
/// into `recon`.
void ReconstructRow(const Subspace& subspace, std::span<const double> row,
                    std::span<double> recon) {
  const std::size_t m = row.size();
  std::fill(recon.begin(), recon.end(), 0.0);
  for (std::size_t p = 0; p < subspace.k(); ++p) {
    double proj = 0.0;
    for (std::size_t j = 0; j < m; ++j) proj += row[j] * subspace.v(j, p);
    for (std::size_t j = 0; j < m; ++j) recon[j] += proj * subspace.v(j, p);
  }
}

/// Trims `row` against the subspace into `clean`. A single projection of
/// the raw row is self-confirming — a spike inflates the projection, so
/// the "prediction" substituted for the spike still carries a chunk of
/// the spike and survives into the next round. The fix is to re-project
/// the CLEANED row a few times: each inner iteration knocks the spike's
/// leverage down geometrically. Returns the number of trimmed cells.
std::size_t TrimRow(const Subspace& subspace, std::span<const double> row,
                    double threshold, std::span<double> clean,
                    std::span<double> recon) {
  const std::size_t m = row.size();
  std::copy(row.begin(), row.end(), clean.begin());
  std::size_t trimmed = 0;
  constexpr int kInnerRefinements = 3;
  for (int t = 0; t < kInnerRefinements; ++t) {
    ReconstructRow(subspace, clean, recon);
    trimmed = 0;
    for (std::size_t j = 0; j < m; ++j) {
      if (std::abs(row[j] - recon[j]) > threshold) {
        clean[j] = recon[j];
        ++trimmed;
      } else {
        clean[j] = row[j];
      }
    }
    if (trimmed == 0) break;
  }
  return trimmed;
}

/// Extracts the top-k subspace from an eigendecomposition of C.
StatusOr<Subspace> SubspaceFromSimilarity(const Matrix& c, std::size_t k,
                                          EigenSolverKind solver) {
  TSC_ASSIGN_OR_RETURN(EigenDecomposition eigen, SymmetricEigen(c, solver));
  const double lambda_max =
      eigen.eigenvalues.empty() ? 0.0 : std::max(0.0, eigen.eigenvalues[0]);
  std::size_t effective = 0;
  for (std::size_t j = 0; j < std::min(k, eigen.eigenvalues.size()); ++j) {
    if (eigen.eigenvalues[j] > kSvdRelativeTolerance * lambda_max &&
        eigen.eigenvalues[j] > 0.0) {
      ++effective;
    } else {
      break;
    }
  }
  if (effective == 0) {
    return Status::InvalidArgument("matrix is numerically zero");
  }
  Subspace subspace;
  subspace.singular_values.resize(effective);
  subspace.v = Matrix(c.rows(), effective);
  for (std::size_t j = 0; j < effective; ++j) {
    subspace.singular_values[j] = std::sqrt(eigen.eigenvalues[j]);
    for (std::size_t i = 0; i < c.rows(); ++i) {
      subspace.v(i, j) = eigen.eigenvectors(i, j);
    }
  }
  return subspace;
}

}  // namespace

StatusOr<SvdModel> BuildRobustSvdModel(RowSource* source,
                                       const RobustSvdOptions& options,
                                       RobustSvdDiagnostics* diagnostics) {
  const std::size_t n = source->rows();
  const std::size_t m = source->cols();
  if (n == 0 || m == 0) return Status::InvalidArgument("empty source");
  if (options.k == 0) return Status::InvalidArgument("k must be positive");

  std::size_t passes = 0;
  std::vector<double> row(m);
  std::vector<double> recon(m);
  std::vector<double> clean(m);

  // Round 0: plain fit. Pass A accumulates C; the eigenproblem yields
  // the initial subspace and a residual-scale estimate needs pass B.
  TSC_ASSIGN_OR_RETURN(Matrix c, AccumulateColumnSimilarity(source));
  ++passes;
  TSC_ASSIGN_OR_RETURN(Subspace subspace,
                       SubspaceFromSimilarity(c, options.k, options.solver));

  for (std::size_t round = 0; round < options.iterations; ++round) {
    // First sub-pass of the round: residual scale under the current
    // subspace (Welford over all cells).
    RunningStats residuals;
    TSC_RETURN_IF_ERROR(source->Reset());
    ++passes;
    for (;;) {
      TSC_ASSIGN_OR_RETURN(const bool has_row, source->NextRow(row));
      if (!has_row) break;
      ReconstructRow(subspace, row, recon);
      for (std::size_t j = 0; j < m; ++j) residuals.Add(row[j] - recon[j]);
    }
    const double sigma = residuals.stddev();
    const double threshold = options.trim_sigma * sigma;
    if (diagnostics != nullptr) {
      diagnostics->residual_stddev.push_back(sigma);
    }

    // Second sub-pass: accumulate C over trimmed rows.
    Matrix c_clean(m, m);
    std::size_t trimmed = 0;
    TSC_RETURN_IF_ERROR(source->Reset());
    ++passes;
    for (;;) {
      TSC_ASSIGN_OR_RETURN(const bool has_row, source->NextRow(row));
      if (!has_row) break;
      trimmed += TrimRow(subspace, row, threshold, clean, recon);
      for (std::size_t j = 0; j < m; ++j) {
        const double xj = clean[j];
        if (xj == 0.0) continue;
        double* crow = &c_clean(j, 0);
        for (std::size_t l = j; l < m; ++l) crow[l] += xj * clean[l];
      }
    }
    for (std::size_t j = 0; j < m; ++j) {
      for (std::size_t l = j + 1; l < m; ++l) c_clean(l, j) = c_clean(j, l);
    }
    if (diagnostics != nullptr) diagnostics->trimmed_cells.push_back(trimmed);

    TSC_ASSIGN_OR_RETURN(
        subspace, SubspaceFromSimilarity(c_clean, options.k, options.solver));
    if (trimmed == 0) break;  // converged: nothing left to trim
  }

  // Final pass: U rows from CLEANED data against the final subspace, so
  // the spikes do not leak into the coordinates either.
  //
  // The trim threshold is re-derived from the final subspace residuals
  // of the previous round's sigma; using the last sigma is fine because
  // sigma shrinks monotonically as the fit improves.
  RunningStats final_residuals;
  TSC_RETURN_IF_ERROR(source->Reset());
  ++passes;
  for (;;) {
    TSC_ASSIGN_OR_RETURN(const bool has_row, source->NextRow(row));
    if (!has_row) break;
    ReconstructRow(subspace, row, recon);
    for (std::size_t j = 0; j < m; ++j) final_residuals.Add(row[j] - recon[j]);
  }
  const double final_threshold = options.trim_sigma * final_residuals.stddev();

  Matrix u(n, subspace.k());
  TSC_RETURN_IF_ERROR(source->Reset());
  ++passes;
  for (std::size_t i = 0;; ++i) {
    TSC_ASSIGN_OR_RETURN(const bool has_row, source->NextRow(row));
    if (!has_row) break;
    if (i >= n) return Status::Internal("source grew between passes");
    TrimRow(subspace, row, final_threshold, clean, recon);
    for (std::size_t p = 0; p < subspace.k(); ++p) {
      double proj = 0.0;
      for (std::size_t j = 0; j < m; ++j) proj += clean[j] * subspace.v(j, p);
      u(i, p) = proj / subspace.singular_values[p];
    }
  }

  if (diagnostics != nullptr) diagnostics->passes = passes;
  return SvdModel(std::move(u), std::move(subspace.singular_values),
                  std::move(subspace.v));
}

}  // namespace tsc
