#include "core/svdd_compressor.h"

#include <algorithm>
#include <array>
#include <atomic>
#include <cmath>
#include <limits>
#include <memory>
#include <optional>
#include <unordered_map>

#include "core/parallel_build.h"
#include "core/randomized_build.h"
#include "linalg/kernels.h"
#include "linalg/svd.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "linalg/symmetric_eigen.h"
#include "storage/prefetcher.h"
#include "util/bounded_heap.h"
#include "util/kahan.h"
#include "util/logging.h"
#include "util/thread_pool.h"

namespace tsc {
namespace {

constexpr std::uint32_t kSvddModelMagic = 0x53564444;  // "SVDD"

/// Heap key for pass 2: squared error with the cell id as tie-break, a
/// strict total order. The global "top gamma_k cells" set is therefore
/// unique, which is what makes the sharded heaps + merge deterministic:
/// however the shards split the stream, sorting the union under this
/// order and truncating recovers exactly that set.
struct CellErr {
  double err2;
  std::uint64_t cell;  ///< row-major cell key; unique per cell

  bool operator<(const CellErr& other) const {
    if (err2 != other.err2) return err2 < other.err2;
    return cell > other.cell;  // equal errors: the earlier cell ranks higher
  }
};

/// A Bloom pass followed by a delta miss is a false positive of the
/// filter; the measured count backs EstimatedFalsePositiveRate().
void CountBloomFalsePositive() {
  static obs::Counter& false_positives =
      obs::MetricRegistry::Default().GetCounter("bloom.false_positives");
  false_positives.Increment();
}

/// Lock-free monotonic max for the shared pass-2 pruning threshold.
void UpdateMax(std::atomic<double>& target, double value) {
  double current = target.load(std::memory_order_relaxed);
  while (current < value &&
         !target.compare_exchange_weak(current, value,
                                       std::memory_order_relaxed)) {
  }
}

/// Evenly spaced candidate cut-offs in [1, k_max], always including both
/// endpoints. With cap == 0 every k is a candidate (the paper's loop).
std::vector<std::size_t> ChooseCandidates(std::size_t k_max,
                                          std::size_t cap) {
  std::vector<std::size_t> ks;
  if (k_max == 0) return ks;
  if (cap == 0 || cap >= k_max) {
    ks.resize(k_max);
    for (std::size_t i = 0; i < k_max; ++i) ks[i] = i + 1;
    return ks;
  }
  cap = std::max<std::size_t>(cap, 2);
  ks.reserve(cap);
  for (std::size_t i = 0; i < cap; ++i) {
    const double t = static_cast<double>(i) / static_cast<double>(cap - 1);
    std::size_t k = 1 + static_cast<std::size_t>(
                            t * static_cast<double>(k_max - 1) + 0.5);
    if (ks.empty() || ks.back() < k) ks.push_back(k);
  }
  if (ks.back() != k_max) ks.push_back(k_max);
  return ks;
}

}  // namespace

SvddModel::SvddModel(SvdModel svd, DeltaTable deltas,
                     std::optional<BloomFilter> bloom)
    : svd_(std::move(svd)),
      deltas_(std::move(deltas)),
      bloom_(std::move(bloom)) {}

double SvddModel::ReconstructCell(std::size_t row, std::size_t col) const {
  const double base = svd_.ReconstructCell(row, col);
  const std::uint64_t key = DeltaTable::CellKey(row, col, cols());
  if (bloom_.has_value() && !bloom_->MightContain(key)) return base;
  const std::optional<double> delta = deltas_.Get(key);
  if (!delta.has_value()) {
    if (bloom_.has_value()) CountBloomFalsePositive();
    return base;
  }
  return base + *delta;
}

void SvddModel::ReconstructRow(std::size_t row, std::span<double> out) const {
  svd_.ReconstructRow(row, out);
  for (std::size_t j = 0; j < cols(); ++j) {
    const std::uint64_t key = DeltaTable::CellKey(row, j, cols());
    if (bloom_.has_value() && !bloom_->MightContain(key)) continue;
    const std::optional<double> delta = deltas_.Get(key);
    if (delta.has_value()) {
      out[j] += *delta;
    } else if (bloom_.has_value()) {
      CountBloomFalsePositive();
    }
  }
}

void SvddModel::ReconstructCells(std::span<const CellRef> cells,
                                 std::span<double> out) const {
  svd_.ReconstructCells(cells, out);
  if (deltas_.empty()) return;
  // Large batches fold the delta table in by iterating it once instead of
  // probing per cell: O(B + D) beats B bloom probes + hash lookups once
  // the batch is a reasonable fraction of the table.
  if (cells.size() >= deltas_.size() / 4) {
    // Multimap, not map: a batch may name the same cell twice, and every
    // occurrence must see its delta (the per-cell probe path below does).
    std::unordered_multimap<std::uint64_t, std::size_t> index;
    index.reserve(cells.size());
    for (std::size_t i = 0; i < cells.size(); ++i) {
      index.emplace(DeltaTable::CellKey(cells[i].row, cells[i].col, cols()),
                    i);
    }
    deltas_.ForEach([&](std::uint64_t key, double delta) {
      const auto [begin, end] = index.equal_range(key);
      for (auto it = begin; it != end; ++it) out[it->second] += delta;
    });
    return;
  }
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const std::uint64_t key =
        DeltaTable::CellKey(cells[i].row, cells[i].col, cols());
    if (bloom_.has_value() && !bloom_->MightContain(key)) continue;
    const std::optional<double> delta = deltas_.Get(key);
    if (delta.has_value()) {
      out[i] += *delta;
    } else if (bloom_.has_value()) {
      CountBloomFalsePositive();
    }
  }
}

namespace {

// Flat per-model view: the fused loops below run the single-store
// probe path verbatim, with the model resolved by one data-dependent
// load (no branch to mispredict, no virtual call). The view table is
// a handful of cache lines for realistic shard counts.
struct FusedModelView {
  const double* u;           // row-major, rows x k
  const double* weighted_v;  // row-major, cols x k
  std::size_t k;
  std::size_t cols;
  const BloomFilter* bloom;  // nullptr when the model has none
  const DeltaTable* deltas;
};

std::vector<FusedModelView>& FusedViews(
    std::span<const SvddModel* const> models) {
  thread_local std::vector<FusedModelView> views;
  views.resize(models.size());
  for (std::size_t s = 0; s < models.size(); ++s) {
    const SvddModel& m = *models[s];
    views[s] = FusedModelView{m.svd().u().Row(0).data(),
                              m.svd().weighted_v().Row(0).data(),
                              m.svd().k(),
                              m.cols(),
                              m.has_bloom_filter() ? &m.bloom_filter() : nullptr,
                              &m.deltas()};
  }
  return views;
}

inline double FusedReconstructCell(const FusedModelView& v, std::size_t row,
                                   std::size_t col) {
  double value =
      kernels::Dot(v.u + row * v.k, v.weighted_v + col * v.k, v.k);
  const std::uint64_t key = DeltaTable::CellKey(row, col, v.cols);
  if (v.bloom == nullptr || v.bloom->MightContain(key)) {
    const std::optional<double> delta = v.deltas->Get(key);
    if (delta.has_value()) {
      value += *delta;
    } else if (v.bloom != nullptr) {
      CountBloomFalsePositive();
    }
  }
  return value;
}

}  // namespace

void SvddModel::ReconstructCellsMulti(
    std::span<const SvddModel* const> models,
    std::span<const std::uint32_t> owner, std::span<const CellRef> cells,
    std::span<double> out) {
  const std::vector<FusedModelView>& views = FusedViews(models);
  for (std::size_t i = 0; i < cells.size(); ++i) {
    out[i] = FusedReconstructCell(views[owner[i]], cells[i].row,
                                  cells[i].col);
  }
}

std::uint64_t SvddModel::ReconstructCellsRange(
    std::span<const SvddModel* const> models,
    std::span<const std::size_t> range_begin,
    std::span<const CellRef> cells, std::span<double> out) {
  const std::vector<FusedModelView>& views = FusedViews(models);
  const std::size_t* rb = range_begin.data();
  const std::size_t shard_count = models.size();
  std::uint64_t hit = 0;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const std::size_t row = cells[i].row;
    // Branchless owner scan: random rows mispredict a binary search,
    // and at a few nanoseconds per cell that is the whole budget.
    std::size_t s = 0;
    for (std::size_t t = 1; t < shard_count; ++t) {
      s += static_cast<std::size_t>(row >= rb[t]);
    }
    hit |= std::uint64_t{1} << (s & 63);
    out[i] = FusedReconstructCell(views[s], row - rb[s], cells[i].col);
  }
  return hit;
}

void SvddModel::ReconstructRegion(std::span<const std::size_t> row_ids,
                                  std::span<const std::size_t> col_ids,
                                  Matrix* out) const {
  svd_.ReconstructRegion(row_ids, col_ids, out);
  if (deltas_.empty() || row_ids.empty() || col_ids.empty()) return;
  const std::uint64_t region_cells =
      static_cast<std::uint64_t>(row_ids.size()) * col_ids.size();
  if (region_cells >= deltas_.size() / 4) {
    // One sweep of the table with row/col membership maps; every region
    // cell's delta is found without a single bloom probe. Multimaps so a
    // region listing the same row or column twice patches every copy,
    // matching the per-cell probe path below.
    std::unordered_multimap<std::size_t, std::size_t> row_index;
    row_index.reserve(row_ids.size());
    for (std::size_t r = 0; r < row_ids.size(); ++r) {
      row_index.emplace(row_ids[r], r);
    }
    std::unordered_multimap<std::size_t, std::size_t> col_index;
    col_index.reserve(col_ids.size());
    for (std::size_t c = 0; c < col_ids.size(); ++c) {
      col_index.emplace(col_ids[c], c);
    }
    const std::size_t m = cols();
    deltas_.ForEach([&](std::uint64_t key, double delta) {
      const auto [rbegin, rend] =
          row_index.equal_range(static_cast<std::size_t>(key / m));
      if (rbegin == rend) return;
      const auto [cbegin, cend] =
          col_index.equal_range(static_cast<std::size_t>(key % m));
      for (auto rit = rbegin; rit != rend; ++rit) {
        for (auto cit = cbegin; cit != cend; ++cit) {
          (*out)(rit->second, cit->second) += delta;
        }
      }
    });
    return;
  }
  for (std::size_t r = 0; r < row_ids.size(); ++r) {
    const std::span<double> dst = out->Row(r);
    for (std::size_t c = 0; c < col_ids.size(); ++c) {
      const std::uint64_t key =
          DeltaTable::CellKey(row_ids[r], col_ids[c], cols());
      if (bloom_.has_value() && !bloom_->MightContain(key)) continue;
      const std::optional<double> delta = deltas_.Get(key);
      if (delta.has_value()) {
        dst[c] += *delta;
      } else if (bloom_.has_value()) {
        CountBloomFalsePositive();
      }
    }
  }
}

std::uint64_t SvddModel::CompressedBytes() const {
  return svd_.CompressedBytes() + deltas_.PackedBytes();
}

SvdModel::FoldInStats SvddModel::FoldInRows(const Matrix& new_rows) {
  SvdModel::FoldInStats stats = svd_.FoldInRows(new_rows);
  // After the U matrix has grown: listeners sized to the old row span
  // (the aggregate hierarchy) mark themselves stale and rebuild on
  // their next read.
  delta_listeners_.NotifyRowsAppended(svd_.rows());
  return stats;
}

Status SvddModel::PatchCell(std::size_t row, std::size_t col,
                            double exact_value) {
  if (row >= rows() || col >= cols()) {
    return Status::OutOfRange("cell out of range");
  }
  const std::uint64_t key = DeltaTable::CellKey(row, col, cols());
  const std::optional<double> old_delta = deltas_.Get(key);
  const double new_delta = exact_value - svd_.ReconstructCell(row, col);
  deltas_.Put(key, new_delta);
  // The Bloom filter must admit the new key or lookups would skip it.
  if (bloom_.has_value()) bloom_->Add(key);
  delta_listeners_.Notify(row, col, old_delta.value_or(0.0),
                          old_delta.has_value(), new_delta);
  return Status::Ok();
}

Status SvddModel::Serialize(BinaryWriter* writer) const {
  TSC_RETURN_IF_ERROR(writer->WriteU32(kSvddModelMagic));
  TSC_RETURN_IF_ERROR(svd_.Serialize(writer));
  TSC_RETURN_IF_ERROR(deltas_.Serialize(writer));
  TSC_RETURN_IF_ERROR(writer->WriteU32(bloom_.has_value() ? 1 : 0));
  if (bloom_.has_value()) TSC_RETURN_IF_ERROR(bloom_->Serialize(writer));
  return Status::Ok();
}

StatusOr<SvddModel> SvddModel::Deserialize(BinaryReader* reader) {
  TSC_ASSIGN_OR_RETURN(const std::uint32_t magic, reader->ReadU32());
  if (magic != kSvddModelMagic) return Status::IoError("not an SVDD model");
  TSC_ASSIGN_OR_RETURN(SvdModel svd, SvdModel::Deserialize(reader));
  TSC_ASSIGN_OR_RETURN(DeltaTable deltas, DeltaTable::Deserialize(reader));
  TSC_ASSIGN_OR_RETURN(const std::uint32_t has_bloom, reader->ReadU32());
  std::optional<BloomFilter> bloom;
  if (has_bloom != 0) {
    TSC_ASSIGN_OR_RETURN(BloomFilter filter, BloomFilter::Deserialize(reader));
    bloom = std::move(filter);
  }
  return SvddModel(std::move(svd), std::move(deltas), std::move(bloom));
}

Status SvddModel::SaveToFile(const std::string& path) const {
  TSC_ASSIGN_OR_RETURN(BinaryWriter writer, BinaryWriter::Open(path));
  TSC_RETURN_IF_ERROR(Serialize(&writer));
  return writer.FinishWithChecksum();
}

StatusOr<SvddModel> SvddModel::LoadFromFile(const std::string& path) {
  TSC_ASSIGN_OR_RETURN(BinaryReader reader, BinaryReader::Open(path));
  TSC_ASSIGN_OR_RETURN(SvddModel model, Deserialize(&reader));
  TSC_RETURN_IF_ERROR(reader.VerifyChecksum());
  return model;
}

StatusOr<SvddModel> BuildSvddModel(RowSource* source,
                                   const SvddBuildOptions& options,
                                   SvddBuildDiagnostics* diagnostics) {
  if (source->rows() == 0 || source->cols() == 0) {
    return Status::InvalidArgument("empty source");
  }
  // Readahead decorator: all three passes still see rows in order
  // (bitwise-identical model), but a producer thread keeps chunks in
  // flight so the disk works while this thread computes. Threaded
  // builds opt in automatically — the serial chunk read between
  // parallel visits is exactly the Amdahl term that capped 2-thread
  // speedup — and the wrapper self-disables (passthrough) when overlap
  // cannot pay (in-memory, mmap, or single-core sources).
  const std::size_t readahead_depth =
      options.prefetch_depth > 0
          ? options.prefetch_depth
          : (options.num_threads > 1 ? std::size_t{2} : std::size_t{0});
  std::optional<ReadaheadRowSource> readahead;
  if (readahead_depth > 0) {
    readahead.emplace(source, readahead_depth);
    source = &*readahead;
  }
  const std::size_t n = source->rows();
  const std::size_t m = source->cols();
  SpaceBudget budget = SpaceBudget::FromPercent(
      n, m, options.space_percent, options.bytes_per_value);
  // Charge U at its quantized stride: a smaller U raises k_max and frees
  // delta allowance, which is the whole point of quantizing the store.
  budget.u_quant = options.quant;
  const std::uint64_t total_cells =
      static_cast<std::uint64_t>(n) * static_cast<std::uint64_t>(m);
  std::unique_ptr<ThreadPool> pool;
  if (options.num_threads > 1) {
    pool = std::make_unique<ThreadPool>(options.num_threads);
  }

  // Phase spans: emplace ends the previous phase and opens the next, so
  // the trace shows the three passes back to back on the build thread,
  // with the per-shard worker spans nested under each.
  std::optional<obs::TraceSpan> phase;

  // ---------------------------------------------------------------------
  // Pass 1: subspace estimate -> k_max and gamma_k. Two engines produce
  // the same (eigenvalues, eigenvectors) contract: the exact path
  // accumulates the full M x M column similarity and eigendecomposes it;
  // the randomized path streams a Gaussian sketch (O(M*(k+p)) resident,
  // independent of N) and Rayleigh-Ritz-solves the small problem.
  // Everything downstream — k_opt search, pass-2 outlier queues, pass-3
  // U emission, quantization, deltas, Bloom — is engine-agnostic.
  // ---------------------------------------------------------------------
  const std::size_t passes_before = source->passes_started();
  std::vector<double> eigenvalues;
  Matrix eigenvectors;  // m x r, column j pairs with eigenvalues[j]
  std::size_t sketch_cols = 0;
  if (options.engine == SvddBuildEngine::kRandomized) {
    phase.emplace("svdd.sketch");
    RandomizedSketchOptions sketch;
    sketch.target_rank = options.forced_k > 0 ? options.forced_k
                                              : std::min(budget.MaxK(), m);
    sketch.oversample = options.sketch_oversample;
    sketch.power_iterations = options.power_iterations;
    sketch.seed = options.sketch_seed;
    sketch.solver = options.solver;
    const RandomizedSvdBuilder builder(sketch);
    TSC_ASSIGN_OR_RETURN(SketchedEigenBasis basis,
                         builder.EstimateSubspace(source, pool.get()));
    eigenvalues = std::move(basis.eigenvalues);
    eigenvectors = std::move(basis.eigenvectors);
    sketch_cols = basis.sketch_cols;
  } else {
    phase.emplace("svdd.pass1");
    TSC_ASSIGN_OR_RETURN(Matrix c,
                         AccumulateColumnSimilarity(source, pool.get()));
    phase.emplace("svdd.eigen");
    TSC_ASSIGN_OR_RETURN(EigenDecomposition eigen,
                         SymmetricEigen(c, options.solver));
    eigenvalues = std::move(eigen.eigenvalues);
    eigenvectors = std::move(eigen.eigenvectors);
  }

  const double lambda_max =
      eigenvalues.empty() ? 0.0 : std::max(0.0, eigenvalues[0]);
  const std::size_t rank_limit = std::min(m, eigenvalues.size());
  std::size_t numerical_rank = 0;
  for (std::size_t j = 0; j < rank_limit; ++j) {
    if (eigenvalues[j] > kSvdRelativeTolerance * lambda_max &&
        eigenvalues[j] > 0.0) {
      ++numerical_rank;
    } else {
      break;
    }
  }
  if (numerical_rank == 0) {
    return Status::InvalidArgument("matrix is numerically zero");
  }

  std::size_t k_max = std::min(budget.MaxK(), numerical_rank);
  if (options.forced_k > 0) {
    if (options.forced_k > numerical_rank) {
      return Status::InvalidArgument("forced_k exceeds numerical rank");
    }
    k_max = options.forced_k;
  }
  if (k_max == 0) {
    return Status::ResourceExhausted(
        "space budget cannot fit a single principal component");
  }

  std::vector<std::size_t> candidate_ks =
      options.forced_k > 0 ? std::vector<std::size_t>{options.forced_k}
                           : ChooseCandidates(k_max, options.max_candidates);
  const std::size_t num_candidates = candidate_ks.size();

  std::vector<std::uint64_t> gamma(num_candidates);
  for (std::size_t ci = 0; ci < num_candidates; ++ci) {
    gamma[ci] = std::min(budget.DeltaCount(candidate_ks[ci], options.delta_bytes),
                         total_cells);
  }

  // Eigenvectors for all k_max components, used in passes 2 and 3.
  std::vector<double> singular_values(k_max);
  Matrix v(m, k_max);
  for (std::size_t j = 0; j < k_max; ++j) {
    singular_values[j] = std::sqrt(eigenvalues[j]);
    for (std::size_t i = 0; i < m; ++i) v(i, j) = eigenvectors(i, j);
  }

  // ---------------------------------------------------------------------
  // Pass 2: per-candidate bounded queues of the worst cells + epsilon_k.
  //
  // Rows are dealt to kBuildShards shards (row % kBuildShards). Each shard
  // keeps its own top-gamma_k selector per candidate k and its own
  // compensated SSE partial, so no locks are taken on the hot path. A
  // shared atomic threshold per candidate — the largest top-gamma_k
  // cutoff any shard has published — lets shards skip cells that
  // provably cannot make the global top gamma_k, keeping total retained
  // entries near gamma_k instead of kBuildShards * gamma_k.
  // ---------------------------------------------------------------------
  using OutlierHeap = BoundedTopSelector<CellErr, double>;  // value = err
  // The per-candidate SSE is split over four interleaved Kahan lanes
  // (cell j feeds lane j % 4, folded in lane order afterwards): a single
  // compensated accumulator is a 4-add serial dependency chain per cell
  // and was the throughput floor of the whole pass. Lane assignment
  // depends only on j, so the sum stays bit-deterministic at any thread
  // count.
  constexpr std::size_t kSseLanes = 4;
  using LaneSum = std::array<KahanSum, kSseLanes>;
  struct Pass2Shard {
    std::vector<OutlierHeap> queues;      // one per candidate k
    std::vector<LaneSum> sse;             // one per candidate k
    std::vector<double> projection;       // scratch: x_i . v_p
    std::vector<double> ucoef;            // scratch: quantized-U preview
    std::vector<double> recon;            // scratch: running recon of a row
    std::vector<double> err2;             // scratch: squared errors of a row
    std::vector<std::size_t> publish_at;  // next early-fractile watermark
  };
  std::vector<Pass2Shard> shards(kBuildShards);
  for (Pass2Shard& shard : shards) {
    shard.queues.reserve(num_candidates);
    for (std::size_t ci = 0; ci < num_candidates; ++ci) {
      shard.queues.emplace_back(static_cast<std::size_t>(gamma[ci]));
    }
    shard.sse.resize(num_candidates);
    shard.projection.resize(k_max);
    shard.ucoef.resize(k_max);
    shard.recon.resize(m);
    shard.err2.resize(m);
  }
  // Component-major copy of V so the hot loops below run on contiguous
  // rows (kernels::Dot / kernels::Axpy) instead of striding column-wise
  // through the m x k_max layout.
  Matrix vt(k_max, m);
  for (std::size_t p = 0; p < k_max; ++p) {
    for (std::size_t l = 0; l < m; ++l) vt(p, l) = v(l, p);
  }
  // Pruning bounds. A zero-allowance candidate retains nothing, so every
  // offer to it can be skipped outright.
  std::vector<std::atomic<double>> thresholds(num_candidates);
  for (std::size_t ci = 0; ci < num_candidates; ++ci) {
    thresholds[ci].store(gamma[ci] == 0
                             ? std::numeric_limits<double>::infinity()
                             : -std::numeric_limits<double>::infinity(),
                         std::memory_order_relaxed);
  }
  // Collective bound (distributed top-k fractile combining). A shard's
  // own cutoff is its LOCAL gamma_k-th largest error, which with evenly
  // dealt rows approximates the global (kBuildShards * gamma_k)-th
  // largest — a loose bound that lets ~kBuildShards times too many cells
  // through. Instead each shard also publishes its ceil(gamma_k /
  // kBuildShards)-th largest retained error: every shard has at least
  // that many cells at or above its publication, so at least
  // kBuildShards * ceil(gamma_k / kBuildShards) >= gamma_k cells sit at
  // or above the MINIMUM publication across shards. That minimum is
  // therefore a valid lower bound on the global gamma_k-th largest error
  // (any cell strictly below it is outranked by >= gamma_k cells), and
  // it tracks the true global cutoff closely. Publications are
  // per-shard slots (single writer each) and only ever increase, so
  // stale reads just weaken the bound — pruning stays conservative and
  // the final exact merge keeps the result timing-independent.
  std::vector<std::size_t> fractile_rank(num_candidates);
  for (std::size_t ci = 0; ci < num_candidates; ++ci) {
    fractile_rank[ci] =
        static_cast<std::size_t>((gamma[ci] + kBuildShards - 1) /
                                 kBuildShards);
  }
  std::vector<std::array<std::atomic<double>, kBuildShards>> fractile(
      num_candidates);
  for (auto& per_shard : fractile) {
    for (auto& slot : per_shard) {
      slot.store(-std::numeric_limits<double>::infinity(),
                 std::memory_order_relaxed);
    }
  }
  // A shard can publish its fractile as soon as it RETAINS
  // fractile_rank entries — long before its first compaction (which
  // needs gamma_k + slack offers). Publishing early, at doubling
  // buffer-size watermarks, activates the collective bound after
  // roughly gamma_k total offers instead of kBuildShards * gamma_k,
  // which is where most of the unpruned startup offers went.
  for (Pass2Shard& shard : shards) shard.publish_at = fractile_rank;

  phase.emplace("svdd.pass2");
  TSC_RETURN_IF_ERROR(ForEachRowChunk(
      source, [&](std::size_t base, std::size_t count, const Matrix& rows) {
        if (base + count > n) {
          return Status::Internal("source grew between passes");
        }
        ParallelFor(pool.get(), kBuildShards, [&](std::size_t si) {
          obs::TraceSpan shard_span("svdd.pass2.shard", si);
          Pass2Shard& shard = shards[si];
          for (std::size_t r = FirstShardRow(si, base); r < count;
               r += kBuildShards) {
            const std::size_t i = base + r;
            const std::span<const double> row = rows.Row(r);
            for (std::size_t p = 0; p < k_max; ++p) {
              shard.projection[p] =
                  kernels::Dot(row.data(), vt.Row(p).data(), m);
            }
            if (options.quant != QuantScheme::kF64) {
              // Preview the quantized U row this sequence will get
              // (u_ip = projection_p / lambda_p, snapped at k_max) and
              // fold it back, so the per-cell errors below — and hence
              // the outlier queues — rank cells by their combined
              // truncation + quantization damage.
              for (std::size_t p = 0; p < k_max; ++p) {
                shard.ucoef[p] = shard.projection[p] / singular_values[p];
              }
              SnapQuantRow(options.quant, shard.ucoef);
              for (std::size_t p = 0; p < k_max; ++p) {
                shard.projection[p] = shard.ucoef[p] * singular_values[p];
              }
            }
            // recon_k = sum_{p<k} projection_p * v_jp, accumulated one
            // component slab at a time so each candidate k reads the
            // whole-row partial sum exactly once, vectorized.
            std::fill(shard.recon.begin(), shard.recon.end(), 0.0);
            std::size_t p = 0;
            for (std::size_t ci = 0; ci < num_candidates; ++ci) {
              for (; p < candidate_ks[ci]; ++p) {
                kernels::Axpy(shard.projection[p], vt.Row(p).data(),
                              shard.recon.data(), m);
              }
              // Branch-free squared errors + lane-compensated SSE first
              // (the compiler vectorizes this whole loop: 4 Kahan lanes
              // = one AVX register each), then a separate scan applies
              // the pruning bound — on pruned rows it is a pure compare
              // sweep over an L1-resident scratch array.
              LaneSum& sse = shard.sse[ci];
              for (std::size_t j = 0; j < m; ++j) {
                const double err = row[j] - shard.recon[j];
                const double e2 = err * err;
                shard.err2[j] = e2;
                sse[j % kSseLanes].Add(e2);
              }
              // One threshold read per row: the bound only tightens, so
              // a slightly stale value just means a few extra appends.
              const double bound =
                  thresholds[ci].load(std::memory_order_relaxed);
              bool tightened = false;
              for (std::size_t j = 0; j < m; ++j) {
                // Strictly below the published bound means at least
                // gamma_k cells already beat this one — skip. (Ties must
                // be offered: the tie-break may rank them above the
                // bound's owner.)
                if (!(shard.err2[j] < bound)) {
                  tightened |= shard.queues[ci].Offer(
                      CellErr{shard.err2[j], DeltaTable::CellKey(i, j, m)},
                      row[j] - shard.recon[j]);
                }
              }
              OutlierHeap& queue = shard.queues[ci];
              if (tightened) {
                UpdateMax(thresholds[ci], queue.Cutoff().err2);
              }
              if (fractile_rank[ci] > 0 &&
                  (tightened || queue.size() >= shard.publish_at[ci]) &&
                  queue.size() >= fractile_rank[ci]) {
                // Publish this shard's fractile, then fold the collective
                // minimum back into the shared threshold (a no-op until
                // every shard has published at least once). Valid at any
                // buffer size >= the rank: the buffer always holds a
                // superset of the shard's true top entries, all of them
                // genuinely seen.
                fractile[ci][si].store(
                    queue.NthLargestKey(fractile_rank[ci]).err2,
                    std::memory_order_relaxed);
                shard.publish_at[ci] = queue.size() * 2;
                double collective = std::numeric_limits<double>::infinity();
                for (const auto& slot : fractile[ci]) {
                  collective = std::min(
                      collective, slot.load(std::memory_order_relaxed));
                }
                UpdateMax(thresholds[ci], collective);
              }
            }
          }
        });
        return Status::Ok();
      }));

  // Deterministic reduction: fold shard SSE partials in shard order, then
  // merge each candidate's shard queues under the CellErr total order and
  // truncate to the allowance — exactly the unique global top-gamma_k set,
  // however the stream was split.
  phase.emplace("svdd.pass2.merge");
  std::vector<double> sse(num_candidates, 0.0);
  for (std::size_t ci = 0; ci < num_candidates; ++ci) {
    KahanSum total;
    for (const Pass2Shard& shard : shards) {
      for (const KahanSum& lane : shard.sse[ci]) total.Merge(lane);
    }
    sse[ci] = total.value();
  }
  std::vector<std::vector<OutlierHeap::Entry>> merged(num_candidates);
  ParallelFor(pool.get(), num_candidates, [&](std::size_t ci) {
    const auto desc = [](const OutlierHeap::Entry& a,
                         const OutlierHeap::Entry& b) {
      return b.key < a.key;  // descending under the total order
    };
    std::vector<OutlierHeap::Entry> all;
    std::size_t union_size = 0;
    for (const Pass2Shard& shard : shards) {
      union_size += shard.queues[ci].entries().size();
    }
    all.reserve(union_size);
    for (const Pass2Shard& shard : shards) {
      const auto& entries = shard.queues[ci].entries();
      all.insert(all.end(), entries.begin(), entries.end());
    }
    // Select the exact top gamma_k in O(union), then canonically order
    // just the survivors: the descending sort makes the retained vector
    // — and hence the compensated credit sum below — a pure function of
    // the retained SET, which is what keeps the model bit-identical
    // across thread counts. Sorting the whole union first cost more
    // than the rest of the merge combined.
    if (all.size() > gamma[ci]) {
      auto nth = all.begin() + static_cast<std::ptrdiff_t>(gamma[ci]);
      std::nth_element(all.begin(), nth, all.end(), desc);
      all.resize(static_cast<std::size_t>(gamma[ci]));
    }
    std::sort(all.begin(), all.end(), desc);
    merged[ci] = std::move(all);
  });

  // epsilon_k: SSE left after the affordable outliers are stored exactly.
  // Compensated on both sides; clamped at zero, where the true residual
  // lands when the allowance covers every cell.
  std::size_t best_ci = 0;
  double best_eps = std::numeric_limits<double>::infinity();
  std::vector<double> residual(num_candidates, 0.0);
  for (std::size_t ci = 0; ci < num_candidates; ++ci) {
    KahanSum credit;
    for (const OutlierHeap::Entry& entry : merged[ci]) {
      credit.Add(entry.key.err2);
    }
    const double eps = std::max(0.0, sse[ci] - credit.value());
    residual[ci] = eps;
    if (eps < best_eps) {
      best_eps = eps;
      best_ci = ci;
    }
  }
  const std::size_t k_opt = candidate_ks[best_ci];

  // ---------------------------------------------------------------------
  // Pass 3: emit U at k_opt (Figure 5, using Eq. 11); row-parallel.
  // ---------------------------------------------------------------------
  phase.emplace("svdd.pass3");
  TSC_ASSIGN_OR_RETURN(
      Matrix u, EmitUMatrix(source, v, singular_values, k_opt, pool.get()));

  // Assemble: truncate the factor matrices to k_opt and fill the table.
  phase.emplace("svdd.assemble");
  std::vector<double> sv_opt(singular_values.begin(),
                             singular_values.begin() +
                                 static_cast<std::ptrdiff_t>(k_opt));
  Matrix v_opt(m, k_opt);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t p = 0; p < k_opt; ++p) v_opt(i, p) = v(i, p);
  }
  SvdModel svd(std::move(u), std::move(sv_opt), std::move(v_opt));
  svd.set_bytes_per_value(options.bytes_per_value);

  std::vector<OutlierHeap::Entry> entries = std::move(merged[best_ci]);
  DeltaTable deltas(entries.size());
  deltas.set_entry_bytes(options.delta_bytes);
  if (options.bytes_per_value == 4 || options.quant != QuantScheme::kF64) {
    // Quantize the factors first, then re-derive each stored delta
    // against the QUANTIZED reconstruction so outlier cells still
    // round-trip (up to float rounding of the delta itself).
    for (auto& entry : entries) {
      const std::size_t i = static_cast<std::size_t>(entry.key.cell / m);
      const std::size_t j = static_cast<std::size_t>(entry.key.cell % m);
      entry.value += svd.ReconstructCell(i, j);  // = original x_ij
    }
    if (options.bytes_per_value == 4) svd.QuantizeToFloat();
    svd.ApplyQuantization(options.quant);  // snaps U rows at k_opt
    for (auto& entry : entries) {
      const std::size_t i = static_cast<std::size_t>(entry.key.cell / m);
      const std::size_t j = static_cast<std::size_t>(entry.key.cell % m);
      entry.value -= svd.ReconstructCell(i, j);
    }
  }
  for (const auto& entry : entries) {
    deltas.Put(entry.key.cell, entry.value);
  }
  if (options.bytes_per_value == 4) deltas.QuantizeValuesToFloat();
  std::optional<BloomFilter> bloom;
  if (options.build_bloom_filter && !entries.empty()) {
    BloomFilter filter(entries.size(), options.bloom_bits_per_entry);
    for (const auto& entry : entries) filter.Add(entry.key.cell);
    bloom = std::move(filter);
  }

  phase.reset();

  const bool randomized = options.engine == SvddBuildEngine::kRandomized;
  // Every pass Reset()s the source exactly once, so streamed rows are
  // passes * n regardless of engine (exact: 3; randomized: 3 + 1 sketch
  // + power_iterations).
  const std::uint64_t rows_streamed =
      static_cast<std::uint64_t>(source->passes_started() - passes_before) *
      static_cast<std::uint64_t>(n);
  obs::MetricRegistry::Default().GetGauge("build.k_opt").Set(
      static_cast<double>(k_opt));
  obs::MetricRegistry::Default().GetGauge("build.delta_count").Set(
      static_cast<double>(deltas.size()));
  obs::MetricRegistry::Default().GetGauge("build.engine").Set(
      randomized ? 1.0 : 0.0);
  obs::MetricRegistry::Default().GetGauge("build.sketch_cols").Set(
      static_cast<double>(sketch_cols));
  obs::MetricRegistry::Default().GetGauge("build.power_iters").Set(
      randomized ? static_cast<double>(options.power_iterations) : 0.0);
  obs::MetricRegistry::Default()
      .GetCounter("build.rows_streamed")
      .Add(rows_streamed);

  if (diagnostics != nullptr) {
    diagnostics->k_max = k_max;
    diagnostics->k_opt = k_opt;
    diagnostics->delta_count = deltas.size();
    diagnostics->candidate_ks = std::move(candidate_ks);
    diagnostics->candidate_sse = std::move(sse);
    diagnostics->candidate_residual_sse = std::move(residual);
    diagnostics->candidate_delta_counts = std::move(gamma);
    diagnostics->engine = randomized ? "randomized" : "exact";
    diagnostics->sketch_cols = sketch_cols;
    diagnostics->power_iterations =
        randomized ? options.power_iterations : 0;
    diagnostics->rows_streamed = rows_streamed;
  }
  return SvddModel(std::move(svd), std::move(deltas), std::move(bloom));
}

}  // namespace tsc
