#include "core/row_outlier.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "core/space_budget.h"
#include "linalg/svd.h"
#include "linalg/symmetric_eigen.h"
#include "storage/row_source.h"
#include "util/bounded_heap.h"
#include "util/logging.h"

namespace tsc {

RowOutlierModel::RowOutlierModel(
    SvdModel svd,
    std::unordered_map<std::size_t, std::vector<double>> stored_rows)
    : svd_(std::move(svd)), stored_rows_(std::move(stored_rows)) {}

double RowOutlierModel::ReconstructCell(std::size_t row,
                                        std::size_t col) const {
  const auto it = stored_rows_.find(row);
  if (it != stored_rows_.end()) return it->second[col];
  return svd_.ReconstructCell(row, col);
}

void RowOutlierModel::ReconstructRow(std::size_t row,
                                     std::span<double> out) const {
  const auto it = stored_rows_.find(row);
  if (it != stored_rows_.end()) {
    std::copy(it->second.begin(), it->second.end(), out.begin());
    return;
  }
  svd_.ReconstructRow(row, out);
}

std::uint64_t RowOutlierModel::CompressedBytes() const {
  const std::uint64_t per_row =
      static_cast<std::uint64_t>(cols()) * svd_.bytes_per_value() + 8;
  return svd_.CompressedBytes() + stored_rows_.size() * per_row;
}

StatusOr<RowOutlierModel> BuildRowOutlierModel(
    const Matrix& data, const SvddBuildOptions& options) {
  const std::size_t n = data.rows();
  const std::size_t m = data.cols();
  if (n == 0 || m == 0) return Status::InvalidArgument("empty matrix");
  const SpaceBudget budget = SpaceBudget::FromPercent(
      n, m, options.space_percent, options.bytes_per_value);
  const std::uint64_t row_bytes =
      static_cast<std::uint64_t>(m) * options.bytes_per_value + 8;

  // Shared pass 1: eigensystem of C, exactly as the SVDD build.
  MatrixRowSource source(&data);
  TSC_ASSIGN_OR_RETURN(Matrix c, AccumulateColumnSimilarity(&source));
  TSC_ASSIGN_OR_RETURN(EigenDecomposition eigen,
                       SymmetricEigen(c, options.solver));
  const double lambda_max =
      eigen.eigenvalues.empty() ? 0.0 : std::max(0.0, eigen.eigenvalues[0]);
  std::size_t numerical_rank = 0;
  for (std::size_t j = 0; j < m; ++j) {
    if (eigen.eigenvalues[j] > kSvdRelativeTolerance * lambda_max &&
        eigen.eigenvalues[j] > 0.0) {
      ++numerical_rank;
    } else {
      break;
    }
  }
  const std::size_t k_max = std::min(budget.MaxK(), numerical_rank);
  if (k_max == 0) {
    return Status::ResourceExhausted("budget below one principal component");
  }

  // Evaluate every affordable k: total SSE minus the SSE of the
  // affordable count of worst rows (those get stored verbatim).
  std::vector<double> projection(k_max);
  std::vector<double> row_sse(n, 0.0);

  // Cache per-row squared error contribution at each candidate k by one
  // in-memory sweep (data is in memory for this baseline).
  // row_err_at_k[i] accumulated incrementally per component.
  Matrix row_err_by_k(n, k_max);  // SSE of row i using first (p+1) comps
  for (std::size_t i = 0; i < n; ++i) {
    const std::span<const double> row = data.Row(i);
    for (std::size_t p = 0; p < k_max; ++p) {
      double dot = 0.0;
      for (std::size_t j = 0; j < m; ++j) {
        dot += row[j] * eigen.eigenvectors(j, p);
      }
      projection[p] = dot;
    }
    // SSE at k = ||x||^2 - sum_{p<k} proj_p^2 (V orthonormal).
    const double energy = [&] {
      double total = 0.0;
      for (const double v : row) total += v * v;
      return total;
    }();
    double captured = 0.0;
    for (std::size_t p = 0; p < k_max; ++p) {
      captured += projection[p] * projection[p];
      row_err_by_k(i, p) = std::max(0.0, energy - captured);
    }
  }

  std::size_t best_k = 1;
  std::uint64_t best_rows = 0;
  double best_eps = std::numeric_limits<double>::infinity();
  std::vector<double> errs(n);
  for (std::size_t k = 1; k <= k_max; ++k) {
    const std::uint64_t leftover =
        budget.total_bytes > budget.SvdBytes(k)
            ? budget.total_bytes - budget.SvdBytes(k)
            : 0;
    const std::uint64_t storable =
        std::min<std::uint64_t>(leftover / row_bytes, n);
    for (std::size_t i = 0; i < n; ++i) errs[i] = row_err_by_k(i, k - 1);
    double eps = 0.0;
    if (storable < n) {
      // Sum of all but the `storable` largest row errors.
      std::sort(errs.begin(), errs.end());
      for (std::size_t i = 0; i + storable < n; ++i) eps += errs[i];
    }
    if (eps < best_eps) {
      best_eps = eps;
      best_k = k;
      best_rows = storable;
    }
  }

  // Build the SVD model at best_k and collect the worst rows.
  MatrixRowSource rebuild_source(&data);
  SvdBuildOptions svd_options;
  svd_options.k = best_k;
  svd_options.solver = options.solver;
  svd_options.bytes_per_value = options.bytes_per_value;
  TSC_ASSIGN_OR_RETURN(SvdModel svd, BuildSvdModel(&rebuild_source, svd_options));

  BoundedTopHeap<double, std::size_t> worst(static_cast<std::size_t>(best_rows));
  for (std::size_t i = 0; i < n; ++i) {
    worst.Offer(row_err_by_k(i, best_k - 1), i);
  }
  std::unordered_map<std::size_t, std::vector<double>> stored;
  for (const auto& entry : worst.TakeSortedDescending()) {
    const std::span<const double> row = data.Row(entry.value);
    stored.emplace(entry.value, std::vector<double>(row.begin(), row.end()));
  }
  return RowOutlierModel(std::move(svd), std::move(stored));
}

}  // namespace tsc
