#ifndef TSC_CORE_SPACE_BUDGET_H_
#define TSC_CORE_SPACE_BUDGET_H_

#include <cstdint>
#include <cstddef>

#include "storage/quant.h"

namespace tsc {

/// Space accounting for the SVD family (Section 3.4 and 4.2 of the paper).
/// All sizes are in bytes; `bytes_per_value` is the paper's "b".
struct SpaceBudget {
  std::size_t num_rows = 0;        ///< N
  std::size_t num_cols = 0;        ///< M
  std::size_t bytes_per_value = 8; ///< b
  std::uint64_t total_bytes = 0;   ///< the compressed-size allowance
  /// Coefficient encoding of the on-disk U factor. A quantized U is
  /// charged at its true row stride (16-byte meta + padded codes), which
  /// both raises the affordable k_max and frees budget for more deltas.
  QuantScheme u_quant = QuantScheme::kF64;

  /// Budget equal to `space_percent`% of the uncompressed N*M*b matrix.
  static SpaceBudget FromPercent(std::size_t num_rows, std::size_t num_cols,
                                 double space_percent,
                                 std::size_t bytes_per_value = 8);

  /// Bytes consumed by a rank-k truncated SVD: N rows of U at the
  /// u_quant row stride, plus (k + k*M) * b for the eigenvalues and V
  /// (Eq. 9 numerator). With u_quant = f64 this is the paper's
  /// (N*k + k + k*M) * b exactly.
  std::uint64_t SvdBytes(std::size_t k) const;

  /// Largest k whose SVD representation fits the budget (the paper's
  /// k_max). Returns 0 when even k=1 does not fit.
  std::size_t MaxK() const;

  /// Number of outlier deltas gamma_k affordable after paying for a rank-k
  /// SVD, at `delta_bytes` per stored (row, column, delta) triplet.
  std::uint64_t DeltaCount(std::size_t k, std::uint64_t delta_bytes) const;

  /// The paper's approximation s ~= k/M of Eq. 9 (exposed for tests and
  /// documentation).
  double ApproximateSpaceFraction(std::size_t k) const;
};

/// Default on-disk cost of one delta triplet: packed 8-byte cell key
/// (row * M + column, the hash key of Section 4.2) plus an 8-byte double.
constexpr std::uint64_t kDefaultDeltaBytes = 16;

}  // namespace tsc

#endif  // TSC_CORE_SPACE_BUDGET_H_
