#include "core/error_target.h"

#include <optional>

#include "core/metrics.h"
#include "storage/row_source.h"

namespace tsc {
namespace {

struct Trial {
  SvddModel model;
  double space = 0.0;
  double rmspe = 0.0;
};

StatusOr<std::optional<Trial>> TryBuild(const Matrix& data,
                                        const ErrorTargetOptions& options,
                                        double space) {
  MatrixRowSource source(&data);
  SvddBuildOptions build = options.build;
  build.space_percent = space;
  auto model = BuildSvddModel(&source, build);
  if (!model.ok()) {
    // Too small for a single component: treat as "target missed" rather
    // than a hard error, so bisection can move up.
    if (model.status().code() == StatusCode::kResourceExhausted) {
      return std::optional<Trial>();
    }
    return model.status();
  }
  Trial trial;
  trial.rmspe = Rmspe(data, *model);
  trial.model = std::move(*model);
  trial.space = space;
  return std::optional<Trial>(std::move(trial));
}

}  // namespace

StatusOr<ErrorTargetResult> CompressToErrorTarget(
    const Matrix& data, const ErrorTargetOptions& options) {
  if (options.target_rmspe <= 0.0) {
    return Status::InvalidArgument("target_rmspe must be positive");
  }
  if (options.min_space_percent <= 0.0 ||
      options.max_space_percent <= options.min_space_percent) {
    return Status::InvalidArgument("bad space search interval");
  }
  if (data.rows() == 0 || data.cols() == 0) {
    return Status::InvalidArgument("empty matrix");
  }

  std::size_t builds = 0;

  // Feasibility check at the top of the interval.
  TSC_ASSIGN_OR_RETURN(
      std::optional<Trial> best,
      TryBuild(data, options, options.max_space_percent));
  ++builds;
  if (!best.has_value() || best->rmspe > options.target_rmspe) {
    return Status::ResourceExhausted(
        "target error unreachable within max_space_percent");
  }

  double lo = options.min_space_percent;  // known/assumed failing side
  double hi = options.max_space_percent;  // known passing side
  for (std::size_t step = 0; step < options.search_steps; ++step) {
    const double mid = (lo + hi) / 2.0;
    TSC_ASSIGN_OR_RETURN(std::optional<Trial> trial,
                         TryBuild(data, options, mid));
    ++builds;
    if (trial.has_value() && trial->rmspe <= options.target_rmspe) {
      hi = mid;
      best = std::move(trial);
    } else {
      lo = mid;
    }
  }

  ErrorTargetResult result;
  result.model = std::move(best->model);
  result.space_percent = best->space;
  result.achieved_rmspe = best->rmspe;
  result.builds_performed = builds;
  return result;
}

}  // namespace tsc
