#ifndef TSC_CORE_DISK_BACKED_H_
#define TSC_CORE_DISK_BACKED_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/svdd_compressor.h"
#include "storage/bloom_filter.h"
#include "storage/cached_row_reader.h"
#include "storage/delta_table.h"
#include "storage/row_store.h"
#include "util/status.h"

namespace tsc {

/// The paper's deployment layout made concrete: V and the eigenvalues
/// pinned in memory, U stored row-wise on disk, the delta hash table and
/// Bloom filter in memory. Reconstructing cell (i, j) then costs exactly
/// one disk access — the read of row i of U — which the embedded
/// DiskAccessCounter proves.
///
/// Build with ExportSvddToDisk() + Open(); the exported U file is the
/// "TSCROWS1" row store, so a row that fits in one block is one access.
class DiskBackedStore {
 public:
  /// Opens the pair of files produced by ExportSvddToDisk. With
  /// `cache_blocks` > 0, U-row reads go through a BlockCache buffer pool
  /// of that many blocks, so repeated access to hot rows costs no new
  /// disk reads (the Appendix A skewed-workload serving mode).
  static StatusOr<DiskBackedStore> Open(const std::string& u_path,
                                        const std::string& sidecar_path,
                                        std::size_t cache_blocks = 0);

  DiskBackedStore(DiskBackedStore&&) = default;
  DiskBackedStore& operator=(DiskBackedStore&&) = default;

  std::size_t rows() const {
    return cached_ ? cached_->rows() : u_reader_->rows();
  }
  std::size_t cols() const { return v_.rows(); }
  std::size_t k() const { return singular_values_.size(); }

  /// Reconstructs one cell; performs one U-row disk read plus O(k) work
  /// and (for SVDD) one delta-table probe.
  StatusOr<double> ReconstructCell(std::size_t row, std::size_t col);

  /// Reconstructs a whole row with the same single U-row read.
  Status ReconstructRow(std::size_t row, std::span<double> out);

  /// Disk accesses performed so far against the U file (cache misses
  /// when a buffer pool is configured).
  std::uint64_t disk_accesses() const {
    return cached_ ? cached_->disk_accesses()
                   : u_reader_->counter().accesses();
  }
  /// U-row block reads served from the buffer pool (0 when uncached);
  /// together with disk_accesses() this yields the serving hit rate.
  std::uint64_t cache_hits() const {
    return cached_ ? cached_->cache_hits() : 0;
  }
  bool has_cache() const { return cached_ != nullptr; }
  void ResetCounters() {
    if (cached_) {
      cached_->ResetStats();
    } else {
      u_reader_->counter().Reset();
    }
  }

  const DeltaTable& deltas() const { return deltas_; }

 private:
  DiskBackedStore() = default;

  /// Fetches row `row` of U through the cache when configured.
  Status ReadURow(std::size_t row, std::span<double> out);

  // unique_ptr keeps the reader's ifstream stable across moves. Exactly
  // one of u_reader_ / cached_ is set.
  std::unique_ptr<RowStoreReader> u_reader_;
  std::unique_ptr<CachedRowReader> cached_;
  std::vector<double> singular_values_;
  Matrix v_;
  DeltaTable deltas_;
  std::optional<BloomFilter> bloom_;
};

/// Writes `model` into the two-file disk layout: `u_path` holds U as a
/// row store (one row per sequence), `sidecar_path` holds the memory-
/// resident parts (eigenvalues, V, deltas, Bloom filter).
Status ExportSvddToDisk(const SvddModel& model, const std::string& u_path,
                        const std::string& sidecar_path);

}  // namespace tsc

#endif  // TSC_CORE_DISK_BACKED_H_
