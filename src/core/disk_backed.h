#ifndef TSC_CORE_DISK_BACKED_H_
#define TSC_CORE_DISK_BACKED_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/compressed_store.h"
#include "core/svdd_compressor.h"
#include "storage/bloom_filter.h"
#include "storage/cached_row_reader.h"
#include "storage/delta_table.h"
#include "storage/io_backend.h"
#include "storage/prefetcher.h"
#include "storage/row_store.h"
#include "util/status.h"

namespace tsc {

/// Serving-time knobs for DiskBackedStore::Open.
struct DiskBackedOptions {
  /// > 0 routes U-row reads through a BlockCache buffer pool of that
  /// many blocks (the Appendix A skewed-workload serving mode).
  std::size_t cache_blocks = 0;
  /// I/O engine for the U file; defaults to the TSC_IO-resolved backend
  /// (mmap where available).
  std::optional<IoBackendKind> io_backend;
  /// > 0 enables batched block prefetch for ReconstructCells /
  /// ReconstructRegion: that many fetches in flight per wave. Requires
  /// cache_blocks > 0 to have an effect.
  std::size_t prefetch_depth = 0;
};

/// The paper's deployment layout made concrete: V and the eigenvalues
/// pinned in memory, U stored row-wise on disk, the delta hash table and
/// Bloom filter in memory. Reconstructing cell (i, j) then costs exactly
/// one disk access — the read of row i of U — which the embedded
/// DiskAccessCounter proves.
///
/// Build with ExportSvddToDisk() + Open(); the exported U file is the
/// "TSCROWS1" row store, so a row that fits in one block is one access.
///
/// Thread safety: concurrent Reconstruct* calls on one store are safe
/// under every I/O backend — the pread/mmap engines are positional (no
/// shared cursor), the stream engine serializes internally, the block
/// cache is sharded, and the access counters are atomic.
class DiskBackedStore {
 public:
  /// Opens the pair of files produced by ExportSvddToDisk. The
  /// `cache_blocks` overload keeps the original signature; the options
  /// overload adds I/O backend selection and prefetch.
  static StatusOr<DiskBackedStore> Open(const std::string& u_path,
                                        const std::string& sidecar_path,
                                        std::size_t cache_blocks = 0);
  static StatusOr<DiskBackedStore> Open(const std::string& u_path,
                                        const std::string& sidecar_path,
                                        const DiskBackedOptions& options);

  DiskBackedStore(DiskBackedStore&&) = default;
  DiskBackedStore& operator=(DiskBackedStore&&) = default;

  std::size_t rows() const {
    return cached_ ? cached_->rows() : u_reader_->rows();
  }
  std::size_t cols() const { return v_.rows(); }
  std::size_t k() const { return singular_values_.size(); }

  /// The I/O engine serving the U file.
  const char* io_backend_name() const {
    return cached_ ? cached_->reader().backend_name()
                   : u_reader_->backend_name();
  }

  /// Coefficient encoding of the U file (kF64 for the plain layout).
  /// Quantized rows are consumed in place by the fused kernels — cached
  /// blocks stay encoded, so the same block budget covers 2-8x more rows.
  QuantScheme u_scheme() const { return u_scheme_; }
  /// On-disk bytes of one U row (meta + padded codes when quantized).
  std::size_t u_row_stride_bytes() const { return u_row_stride_; }
  /// Total bytes of the U file (header + rows * stride) — the actual
  /// serving footprint of the on-disk factor.
  std::uint64_t u_file_bytes() const { return u_file_bytes_; }

  /// Reconstructs one cell; performs one U-row disk read plus O(k) work
  /// and (for SVDD) one delta-table probe.
  StatusOr<double> ReconstructCell(std::size_t row, std::size_t col);

  /// Reconstructs a whole row with the same single U-row read.
  Status ReconstructRow(std::size_t row, std::span<double> out);

  /// Batched point reconstruction: out[i] = cell cells[i]. Cells are
  /// grouped by row so each distinct U row is read once, and with a
  /// cache + prefetch configured the distinct rows' blocks are fetched
  /// in one overlapped wave up front.
  Status ReconstructCells(std::span<const CellRef> cells,
                          std::span<double> out);

  /// Batched region reconstruction mirroring the in-memory models:
  /// prefetches and reads the selected U rows once, then runs the
  /// blocked U * (Lambda V^T) product and one delta sweep.
  Status ReconstructRegion(std::span<const std::size_t> row_ids,
                           std::span<const std::size_t> col_ids, Matrix* out);

  /// Warms the buffer pool with the blocks backing `row_ids` in one
  /// overlapped wave (no-op without a cache + prefetcher).
  void PrefetchURows(std::span<const std::size_t> row_ids);

  /// Disk accesses performed so far against the U file (cache misses
  /// when a buffer pool is configured).
  std::uint64_t disk_accesses() const {
    return cached_ ? cached_->disk_accesses()
                   : u_reader_->counter().accesses();
  }
  /// U-row block reads served from the buffer pool (0 when uncached);
  /// together with disk_accesses() this yields the serving hit rate.
  std::uint64_t cache_hits() const {
    return cached_ ? cached_->cache_hits() : 0;
  }
  bool has_cache() const { return cached_ != nullptr; }
  bool has_prefetch() const { return prefetcher_ != nullptr; }
  void ResetCounters() {
    if (cached_) {
      cached_->ResetStats();
    } else {
      u_reader_->counter().Reset();
    }
  }

  const DeltaTable& deltas() const { return deltas_; }

 private:
  DiskBackedStore() = default;

  /// Fetches row `row` of U through the cache when configured, decoding
  /// quantized rows into doubles.
  Status ReadURow(std::size_t row, std::span<double> out);
  /// Fetches row `row` of U still encoded: zero-copy under mmap, into
  /// `scratch` (size >= u_row_stride_bytes()) otherwise. The fused
  /// dequantize kernels consume the view directly.
  StatusOr<QuantRowView> ReadUQuantRow(std::size_t row,
                                       std::span<std::uint8_t> scratch);
  /// fused-dot(u_row, weighted_v_col) + delta — Eq. 12 against a fetched
  /// (possibly still-quantized) row.
  double CellFromURow(const QuantRowView& urow, std::size_t row,
                      std::size_t col);

  // unique_ptr keeps the reader stable across moves. Exactly one of
  // u_reader_ / cached_ is set.
  std::unique_ptr<RowStoreReader> u_reader_;
  std::unique_ptr<CachedRowReader> cached_;
  std::unique_ptr<BlockPrefetcher> prefetcher_;
  std::vector<double> singular_values_;
  Matrix v_;
  Matrix weighted_v_;  ///< row j = lambda (.) v_j, derived at Open
  DeltaTable deltas_;
  std::optional<BloomFilter> bloom_;
  QuantScheme u_scheme_ = QuantScheme::kF64;
  std::size_t u_row_stride_ = 0;
  std::uint64_t u_file_bytes_ = 0;
};

/// CompressedStore adapter over a DiskBackedStore, so the query executor
/// (and anything else programmed against the interface) can serve
/// straight from the two-file disk layout. Implements RowPrefetchable:
/// the executor's batched scan warms each block of rows before
/// reconstructing it. Reads that fail surface as NaN (the interface has
/// no error channel); `store` must outlive the view.
class DiskBackedStoreView final : public CompressedStore,
                                  public RowPrefetchable {
 public:
  explicit DiskBackedStoreView(DiskBackedStore* store) : store_(store) {}

  std::size_t rows() const override { return store_->rows(); }
  std::size_t cols() const override { return store_->cols(); }

  double ReconstructCell(std::size_t row, std::size_t col) const override;
  void ReconstructRow(std::size_t row, std::span<double> out) const override;
  void ReconstructCells(std::span<const CellRef> cells,
                        std::span<double> out) const override;
  void ReconstructRegion(std::span<const std::size_t> row_ids,
                         std::span<const std::size_t> col_ids,
                         Matrix* out) const override;
  std::uint64_t CompressedBytes() const override;
  std::string MethodName() const override { return "svdd-disk"; }

  void PrefetchRows(std::span<const std::size_t> row_ids) const override {
    store_->PrefetchURows(row_ids);
  }

 private:
  DiskBackedStore* store_;
};

/// Writes `model` into the two-file disk layout: `u_path` holds U as a
/// row store (one row per sequence), `sidecar_path` holds the memory-
/// resident parts (eigenvalues, V, deltas, Bloom filter).
Status ExportSvddToDisk(const SvddModel& model, const std::string& u_path,
                        const std::string& sidecar_path);

}  // namespace tsc

#endif  // TSC_CORE_DISK_BACKED_H_
