#include "core/similarity.h"

#include <algorithm>
#include <cmath>

#include "storage/delta_table.h"
#include "util/bounded_heap.h"
#include "util/logging.h"

namespace tsc {
namespace {

/// Per-component weights w_m = lambda_m * sum_{j in S} v_jm; the
/// compressed-domain column-range sum of row i is then dot(u_i, w).
std::vector<double> ColumnRangeWeights(const SvdModel& model,
                                       const std::vector<std::size_t>& cols) {
  std::vector<double> weights(model.k(), 0.0);
  for (std::size_t m = 0; m < model.k(); ++m) {
    double vsum = 0.0;
    for (const std::size_t j : cols) {
      TSC_DCHECK(j < model.cols());
      vsum += model.v()(j, m);
    }
    weights[m] = model.singular_values()[m] * vsum;
  }
  return weights;
}

std::vector<ScoredRow> TopByScore(std::vector<double> scores,
                                  std::size_t count) {
  BoundedTopHeap<double, std::size_t> heap(count);
  for (std::size_t i = 0; i < scores.size(); ++i) heap.Offer(scores[i], i);
  std::vector<ScoredRow> out;
  for (const auto& entry : heap.TakeSortedDescending()) {
    out.push_back(ScoredRow{entry.value, entry.key});
  }
  return out;
}

}  // namespace

std::vector<ScoredRow> TopRowsBySum(const SvdModel& model,
                                    const std::vector<std::size_t>& col_ids,
                                    std::size_t count) {
  const std::vector<double> weights = ColumnRangeWeights(model, col_ids);
  std::vector<double> scores(model.rows(), 0.0);
  for (std::size_t i = 0; i < model.rows(); ++i) {
    const std::span<const double> urow = model.u().Row(i);
    double total = 0.0;
    for (std::size_t m = 0; m < model.k(); ++m) total += urow[m] * weights[m];
    scores[i] = total;
  }
  return TopByScore(std::move(scores), count);
}

std::vector<ScoredRow> TopRowsBySum(const SvddModel& model,
                                    const std::vector<std::size_t>& col_ids,
                                    std::size_t count) {
  const std::vector<double> weights =
      ColumnRangeWeights(model.svd(), col_ids);
  std::vector<double> scores(model.rows(), 0.0);
  for (std::size_t i = 0; i < model.rows(); ++i) {
    const std::span<const double> urow = model.svd().u().Row(i);
    double total = 0.0;
    for (std::size_t m = 0; m < model.k(); ++m) total += urow[m] * weights[m];
    scores[i] = total;
  }
  // Fold in the deltas: each stored outlier shifts exactly one cell of
  // one row; a column-set bitmap makes the membership test O(1).
  std::vector<bool> in_set(model.cols(), false);
  for (const std::size_t j : col_ids) in_set[j] = true;
  model.deltas().ForEach([&](std::uint64_t key, double delta) {
    const std::size_t i = static_cast<std::size_t>(key / model.cols());
    const std::size_t j = static_cast<std::size_t>(key % model.cols());
    if (in_set[j]) scores[i] += delta;
  });
  return TopByScore(std::move(scores), count);
}

StatusOr<NeighborSearchResult> NearestRows(const SvdModel& model,
                                           std::span<const double> query,
                                           std::size_t count) {
  if (query.size() != model.cols()) {
    return Status::InvalidArgument("query length != M");
  }
  // Project the query: q_m = <query, v_m>. (For a row of the original
  // matrix this reproduces its U * Lambda coordinates.)
  std::vector<double> projected(model.k(), 0.0);
  for (std::size_t m = 0; m < model.k(); ++m) {
    double dot = 0.0;
    for (std::size_t j = 0; j < model.cols(); ++j) {
      dot += query[j] * model.v()(j, m);
    }
    projected[m] = dot;
  }
  // Scan U; keep the `count` smallest projected distances. The bounded
  // heap keeps largest keys, so negate.
  BoundedTopHeap<double, std::size_t> heap(count);
  for (std::size_t i = 0; i < model.rows(); ++i) {
    const std::span<const double> urow = model.u().Row(i);
    double dist2 = 0.0;
    for (std::size_t m = 0; m < model.k(); ++m) {
      const double coord = urow[m] * model.singular_values()[m];
      const double d = coord - projected[m];
      dist2 += d * d;
    }
    heap.Offer(-dist2, i);
  }
  NeighborSearchResult result;
  auto entries = heap.TakeSortedDescending();
  for (const auto& entry : entries) {
    result.neighbors.push_back(ScoredRow{entry.value, std::sqrt(-entry.key)});
  }
  return result;
}

StatusOr<NeighborSearchResult> NearestRowsTo(const SvdModel& model,
                                             std::size_t row,
                                             std::size_t count) {
  if (row >= model.rows()) return Status::OutOfRange("row out of range");
  // Reuse the projected coordinates of the stored row directly.
  const std::vector<double> anchor = model.ProjectRow(row);
  BoundedTopHeap<double, std::size_t> heap(count);
  for (std::size_t i = 0; i < model.rows(); ++i) {
    if (i == row) continue;
    const std::span<const double> urow = model.u().Row(i);
    double dist2 = 0.0;
    for (std::size_t m = 0; m < model.k(); ++m) {
      const double d = urow[m] * model.singular_values()[m] - anchor[m];
      dist2 += d * d;
    }
    heap.Offer(-dist2, i);
  }
  NeighborSearchResult result;
  for (const auto& entry : heap.TakeSortedDescending()) {
    result.neighbors.push_back(ScoredRow{entry.value, std::sqrt(-entry.key)});
  }
  return result;
}

double ProjectedDistance(const SvdModel& model, std::size_t row_a,
                         std::size_t row_b) {
  TSC_CHECK_LT(row_a, model.rows());
  TSC_CHECK_LT(row_b, model.rows());
  const std::vector<double> a = model.ProjectRow(row_a);
  const std::vector<double> b = model.ProjectRow(row_b);
  double dist2 = 0.0;
  for (std::size_t m = 0; m < model.k(); ++m) {
    const double d = a[m] - b[m];
    dist2 += d * d;
  }
  return std::sqrt(dist2);
}

}  // namespace tsc
