#include "core/metrics.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"
#include "util/stats.h"

namespace tsc {

double MatrixStddev(const Matrix& m) {
  RunningStats stats;
  for (double v : m.data()) stats.Add(v);
  return stats.stddev();
}

ErrorReport EvaluateErrors(const Matrix& original,
                           const CompressedStore& store) {
  TSC_CHECK_EQ(original.rows(), store.rows());
  TSC_CHECK_EQ(original.cols(), store.cols());
  ErrorReport report;
  report.cell_count = original.rows() * original.cols();

  const double mean = original.MeanCell();
  double sse = 0.0;
  double denom = 0.0;
  double abs_sum = 0.0;
  std::vector<double> abs_errors;
  abs_errors.reserve(report.cell_count);

  std::vector<double> recon(original.cols());
  for (std::size_t i = 0; i < original.rows(); ++i) {
    store.ReconstructRow(i, recon);
    const std::span<const double> row = original.Row(i);
    for (std::size_t j = 0; j < original.cols(); ++j) {
      const double err = recon[j] - row[j];
      const double dev = row[j] - mean;
      sse += err * err;
      denom += dev * dev;
      const double abs_err = std::abs(err);
      abs_sum += abs_err;
      abs_errors.push_back(abs_err);
      report.max_abs_error = std::max(report.max_abs_error, abs_err);
    }
  }

  report.data_stddev =
      std::sqrt(denom / static_cast<double>(report.cell_count));
  report.rmspe = denom > 0.0 ? std::sqrt(sse) / std::sqrt(denom) : 0.0;
  report.max_normalized_error =
      report.data_stddev > 0.0 ? report.max_abs_error / report.data_stddev
                               : 0.0;
  report.mean_abs_error =
      abs_sum / static_cast<double>(report.cell_count);
  report.median_abs_error = Quantiles(std::move(abs_errors)).Median();
  return report;
}

double Rmspe(const Matrix& original, const CompressedStore& store) {
  return EvaluateErrors(original, store).rmspe;
}

std::vector<double> CellErrorsSortedDescending(const Matrix& original,
                                               const CompressedStore& store,
                                               std::size_t limit) {
  TSC_CHECK_EQ(original.rows(), store.rows());
  TSC_CHECK_EQ(original.cols(), store.cols());
  std::vector<double> errors;
  errors.reserve(original.rows() * original.cols());
  std::vector<double> recon(original.cols());
  for (std::size_t i = 0; i < original.rows(); ++i) {
    store.ReconstructRow(i, recon);
    const std::span<const double> row = original.Row(i);
    for (std::size_t j = 0; j < original.cols(); ++j) {
      errors.push_back(std::abs(recon[j] - row[j]));
    }
  }
  std::sort(errors.begin(), errors.end(), std::greater<double>());
  if (limit > 0 && errors.size() > limit) errors.resize(limit);
  return errors;
}

}  // namespace tsc
