#ifndef TSC_CORE_ZERO_ROWS_H_
#define TSC_CORE_ZERO_ROWS_H_

#include <memory>
#include <vector>

#include "core/compressed_store.h"
#include "core/svdd_compressor.h"
#include "linalg/matrix.h"
#include "util/status.h"

namespace tsc {

/// The Section 6.2 "practical issue": real customer datasets contain
/// many all-zero sequences (customers with no activity). Spending U rows
/// and reconstruction work on them is waste; this wrapper flags them
/// up front, answers their queries with an exact 0, and builds the inner
/// model only on the active rows — so the whole space budget benefits
/// the rows that carry signal.
///
/// The flag structure is an exact bitmap (N bits). The paper suggests a
/// Bloom filter; a bitmap at 1 bit/row is both smaller than a useful
/// filter and exact, so we charge the bitmap to the compressed size and
/// keep the Bloom option to the delta table where it belongs.
class ZeroRowFilteredStore : public CompressedStore {
 public:
  ZeroRowFilteredStore() = default;
  ZeroRowFilteredStore(std::vector<bool> is_zero, SvddModel inner);

  std::size_t rows() const override { return is_zero_.size(); }
  std::size_t cols() const override { return inner_.cols(); }

  double ReconstructCell(std::size_t row, std::size_t col) const override;
  void ReconstructRow(std::size_t row, std::span<double> out) const override;

  /// Inner model bytes plus the N-bit zero-row bitmap.
  std::uint64_t CompressedBytes() const override;
  std::string MethodName() const override { return "svdd+zerofilter"; }

  std::size_t zero_row_count() const { return zero_row_count_; }
  bool IsZeroRow(std::size_t row) const { return is_zero_[row]; }
  const SvddModel& inner() const { return inner_; }

 private:
  std::vector<bool> is_zero_;
  std::vector<std::uint32_t> compact_index_;  ///< row -> inner row
  std::size_t zero_row_count_ = 0;
  SvddModel inner_;
};

/// Scans `data` for all-zero rows, builds an SVDD model over the active
/// rows only, and wraps it. Fails (like the plain build) when no active
/// row remains or the budget is too small.
///
/// The space budget is interpreted against the FULL matrix, so the
/// wrapper and a plain SVDD build at the same `options.space_percent`
/// are directly comparable.
StatusOr<ZeroRowFilteredStore> BuildZeroRowFilteredSvdd(
    const Matrix& data, const SvddBuildOptions& options,
    SvddBuildDiagnostics* diagnostics = nullptr);

}  // namespace tsc

#endif  // TSC_CORE_ZERO_ROWS_H_
