#ifndef TSC_CORE_SIMILARITY_H_
#define TSC_CORE_SIMILARITY_H_

#include <cstddef>
#include <vector>

#include "core/query.h"
#include "core/svd_compressor.h"
#include "core/svdd_compressor.h"
#include "util/status.h"

namespace tsc {

/// Compressed-domain query processing on top of the SVD factors: the
/// queries run directly on U, Lambda and V without reconstructing the
/// matrix, which turns O(N * M) scans into O(N * k) scans.
///
/// Two query families are supported:
///  * top-n sequences by an aggregate over a column range ("which
///    customers spent the most in December?") — computed from the
///    identity  sum_{j in S} x-hat_ij = sum_m lambda_m u_im (sum_{j in S}
///    v_jm), i.e. O(|S| k) once, then O(k) per row;
///  * whole-sequence nearest neighbors ("which customers behave like
///    this one?") — distances in the k-dim projected space, which
///    LOWER-BOUND the true Euclidean distances because the projection
///    is orthogonal (the GEMINI-style guarantee: no false dismissals
///    when the bound is used to filter).

/// A scored row result.
struct ScoredRow {
  std::size_t row = 0;
  double score = 0.0;
};

/// Top-`count` rows by the (approximate) sum of the selected columns,
/// computed entirely in the compressed domain. For SVDD models the
/// stored deltas are folded in, so cells the model knows exactly
/// contribute exactly. Larger sums rank first.
std::vector<ScoredRow> TopRowsBySum(const SvdModel& model,
                                    const std::vector<std::size_t>& col_ids,
                                    std::size_t count);
std::vector<ScoredRow> TopRowsBySum(const SvddModel& model,
                                    const std::vector<std::size_t>& col_ids,
                                    std::size_t count);

/// Nearest neighbors of `query` (an M-long sequence) among the modeled
/// rows, by Euclidean distance. The search projects the query onto the
/// k retained components and scans U — O(M k + N k). Because the
/// projection is contractive, the projected distance never exceeds the
/// true distance between the reconstructions.
struct NeighborSearchResult {
  std::vector<ScoredRow> neighbors;  ///< ascending distance
};
StatusOr<NeighborSearchResult> NearestRows(const SvdModel& model,
                                           std::span<const double> query,
                                           std::size_t count);

/// Nearest neighbors of an already-modeled row (excluding itself).
StatusOr<NeighborSearchResult> NearestRowsTo(const SvdModel& model,
                                             std::size_t row,
                                             std::size_t count);

/// Distance between two rows in the projected k-dim space.
double ProjectedDistance(const SvdModel& model, std::size_t row_a,
                         std::size_t row_b);

}  // namespace tsc

#endif  // TSC_CORE_SIMILARITY_H_
