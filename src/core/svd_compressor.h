#ifndef TSC_CORE_SVD_COMPRESSOR_H_
#define TSC_CORE_SVD_COMPRESSOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/compressed_store.h"
#include "linalg/matrix.h"
#include "linalg/symmetric_eigen.h"
#include "storage/quant.h"
#include "storage/row_source.h"
#include "storage/serializer.h"
#include "util/status.h"

namespace tsc {

class ThreadPool;

/// The "plain SVD" compressed representation of Section 3.4: the top-k
/// principal components. Holds U (N x k), the k singular values, and
/// V (M x k); a cell is reconstructed with Eq. 12 in O(k).
class SvdModel : public CompressedStore {
 public:
  SvdModel() = default;
  SvdModel(Matrix u, std::vector<double> singular_values, Matrix v);

  std::size_t rows() const override { return u_.rows(); }
  std::size_t cols() const override { return v_.rows(); }
  std::size_t k() const { return singular_values_.size(); }

  double ReconstructCell(std::size_t row, std::size_t col) const override;
  void ReconstructRow(std::size_t row, std::span<double> out) const override;
  void ReconstructCells(std::span<const CellRef> cells,
                        std::span<double> out) const override;
  void ReconstructRegion(std::span<const std::size_t> row_ids,
                         std::span<const std::size_t> col_ids,
                         Matrix* out) const override;

  std::uint64_t CompressedBytes() const override;
  std::string MethodName() const override { return "svd"; }

  const Matrix& u() const { return u_; }
  const std::vector<double>& singular_values() const {
    return singular_values_;
  }
  const Matrix& v() const { return v_; }

  /// The Lambda-weighted right factor: row j is lambda (.) v_j, so a cell
  /// is dot(u_i, weighted_v_j) — one multiply per component instead of
  /// two. Precomputed once per model (rebuilt on quantization); every
  /// reconstruction path reads it, it is never serialized.
  const Matrix& weighted_v() const { return weighted_v_; }

  /// Coordinates of sequence `row` in SVD space (Observation 3.4:
  /// the row of U x Lambda); the first 2-3 entries drive the Appendix A
  /// visualization.
  std::vector<double> ProjectRow(std::size_t row) const;

  /// Per-value bytes used in CompressedBytes() accounting (the paper's b).
  void set_bytes_per_value(std::size_t b) { bytes_per_value_ = b; }
  std::size_t bytes_per_value() const { return bytes_per_value_; }

  /// Statistics returned by FoldInRows: how much of the appended rows'
  /// energy the frozen subspace captured. A ratio near 1 means the new
  /// sequences follow the existing patterns; a low ratio means the
  /// subspace is stale and a rebuild is due.
  struct FoldInStats {
    std::size_t rows_added = 0;
    double energy_total = 0.0;     ///< sum of squared new-cell values
    double energy_captured = 0.0;  ///< energy of their rank-k projections

    double CaptureRatio() const {
      return energy_total > 0.0 ? energy_captured / energy_total : 1.0;
    }
  };

  /// Batched off-line appends (the paper's update model, Section 1):
  /// folds new raw sequences into the model using the frozen V and
  /// eigenvalues — the LSI "folding-in" technique. O(k*M) per row, no
  /// repass over existing data. V/Lambda are NOT refit; monitor
  /// CaptureRatio() and rebuild when it degrades.
  FoldInStats FoldInRows(const Matrix& new_rows);

  /// Makes the b=4 storage mode honest: rounds U, V and the eigenvalues
  /// through single precision and sets bytes_per_value to 4, so
  /// CompressedBytes() halves and the reported error includes the
  /// quantization loss.
  void QuantizeToFloat();

  /// Row-store quantization of the U factor: snaps every row of U to the
  /// values the quantized "TSCROWQ1" store will serve (decode of encode,
  /// per-row affine meta) and records the scheme, so the in-memory
  /// model, the delta selection and the exported file all agree.
  /// CompressedBytes() then charges U at its true quantized stride.
  /// kF64 is a no-op; V and the eigenvalues stay untouched (they are
  /// memory-resident and tiny next to U).
  void ApplyQuantization(QuantScheme scheme);

  /// The U coefficient encoding ExportSvddToDisk will write.
  QuantScheme quant_scheme() const { return quant_scheme_; }

  /// Records the scheme WITHOUT re-snapping U. For models whose U is
  /// already quantization-snapped (deserialized files, shard splits of a
  /// snapped model): decode(encode(x)) is not provably a fixed point in
  /// floating point, so re-running ApplyQuantization could perturb
  /// already-snapped values; this setter keeps them bit-identical.
  void MarkQuantScheme(QuantScheme scheme) { quant_scheme_ = scheme; }

  Status Serialize(BinaryWriter* writer) const;
  static StatusOr<SvdModel> Deserialize(BinaryReader* reader);
  Status SaveToFile(const std::string& path) const;
  static StatusOr<SvdModel> LoadFromFile(const std::string& path);

 protected:
  /// Recomputes weighted_v_ from v_ and singular_values_; call after any
  /// mutation of the right factor (construction, quantization).
  void RebuildWeightedV();

  Matrix u_;
  std::vector<double> singular_values_;
  Matrix v_;
  Matrix weighted_v_;  ///< derived cache, never serialized
  std::size_t bytes_per_value_ = 8;
  QuantScheme quant_scheme_ = QuantScheme::kF64;
};

/// Options for the streaming SVD build.
struct SvdBuildOptions {
  /// Number of principal components to retain (clipped to numerical rank).
  std::size_t k = 10;
  EigenSolverKind solver = EigenSolverKind::kHouseholderQl;
  /// The paper's b. 8 stores doubles; 4 quantizes the factors through
  /// single precision (QuantizeToFloat) so the accounting stays honest.
  std::size_t bytes_per_value = 8;
  /// Worker threads for the build passes (1 = serial). The passes shard
  /// their work by a fixed shard count and reduce in shard order, so any
  /// thread count produces a bitwise-identical model.
  std::size_t num_threads = 1;
  /// > 0 reads each build pass through a ReadaheadRowSource holding that
  /// many chunks in flight, so disk reads overlap compute. Row order is
  /// unchanged, so the model stays bitwise-identical. 0 = automatic:
  /// threaded builds (num_threads > 1) read through a depth-2 readahead,
  /// which self-disables when overlap cannot pay (in-memory or mmap
  /// sources, single-core machines); serial builds read directly.
  std::size_t prefetch_depth = 0;
};

/// Builds a plain-SVD model with the paper's 2-pass algorithm
/// (Section 4.1): pass 1 accumulates the M x M column-similarity matrix
/// C = X^T X (Figure 2) and eigendecomposes it in memory; pass 2 streams
/// the rows again to form U = X V Lambda^-1 (Figure 3, Eq. 11).
StatusOr<SvdModel> BuildSvdModel(RowSource* source,
                                 const SvdBuildOptions& options);

/// Pass 1 in isolation: accumulates C = X^T X in one scan. Exposed
/// because the SVDD build and the DataCube extension reuse it. Rows are
/// dealt to kBuildShards per-shard partial matrices (parallel over `pool`
/// when given) that are reduced in shard order, so the result does not
/// depend on the thread count.
StatusOr<Matrix> AccumulateColumnSimilarity(RowSource* source,
                                            ThreadPool* pool = nullptr);

/// The U-emission kernel shared by SVD pass 2 and SVDD pass 3 (Figure 3 /
/// Figure 5, Eq. 11): one more scan of `source` computing
/// u(i, p) = (x_i . v_p) / lambda_p for p < k. Rows of U are independent,
/// so the scan is row-parallel over `pool` with bit-identical output for
/// any thread count.
StatusOr<Matrix> EmitUMatrix(RowSource* source, const Matrix& v,
                             const std::vector<double>& singular_values,
                             std::size_t k, ThreadPool* pool = nullptr);

}  // namespace tsc

#endif  // TSC_CORE_SVD_COMPRESSOR_H_
