#include "core/randomized_build.h"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <vector>

#include "core/parallel_build.h"
#include "linalg/kernels.h"
#include "linalg/qr.h"
#include "obs/trace.h"
#include "util/thread_pool.h"

namespace tsc {
namespace {

std::uint64_t SplitMix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

// Reduces the per-shard partial matrices into partial[0] in fixed shard
// order (the arithmetic every thread schedule must reproduce).
Matrix ReduceShardPartials(std::vector<Matrix>* partials) {
  Matrix acc = std::move((*partials)[0]);
  for (std::size_t s = 1; s < partials->size(); ++s) {
    acc.Add((*partials)[s]);
  }
  return acc;
}

// Computes the sketch coefficients w = Q x for one data row: w[p] =
// dot(q_row_p, x). Q is stored transposed (r x m, rows contiguous), so
// this is a strided Gemv accumulate.
void ProjectRow(const Matrix& qt, std::span<const double> x,
                std::span<double> w) {
  std::fill(w.begin(), w.end(), 0.0);
  kernels::Gemv(qt.Row(0).data(), qt.rows(), qt.cols(), qt.cols(), x.data(),
                w.data());
}

}  // namespace

double RandomizedSvdBuilder::CounterGaussian(std::uint64_t seed,
                                             std::uint64_t row,
                                             std::uint64_t column) {
  // Two independent 64-bit streams from the (seed, row, column) counter.
  std::uint64_t h = SplitMix64(seed ^ (row * 0x9e3779b97f4a7c15ULL));
  h = SplitMix64(h ^ (column * 0xbf58476d1ce4e5b9ULL));
  const std::uint64_t a = SplitMix64(h);
  const std::uint64_t b = SplitMix64(h ^ 0x94d049bb133111ebULL);
  // u1 in (0, 1] so the log is finite; u2 in [0, 1).
  const double u1 = static_cast<double>((a >> 11) + 1) * 0x1.0p-53;
  const double u2 = static_cast<double>(b >> 11) * 0x1.0p-53;
  return std::sqrt(-2.0 * std::log(u1)) *
         std::cos(2.0 * std::numbers::pi * u2);
}

StatusOr<SketchedEigenBasis> RandomizedSvdBuilder::EstimateSubspace(
    RowSource* source, ThreadPool* pool) const {
  const std::size_t n = source->rows();
  const std::size_t m = source->cols();
  if (n == 0 || m == 0) {
    return Status::InvalidArgument("empty source");
  }
  const std::size_t target =
      std::max<std::size_t>(1, std::min(options_.target_rank, m));
  const std::size_t l = std::min(m, target + options_.oversample);

  SketchedEigenBasis out;
  out.sketch_cols = l;
  out.power_iterations = options_.power_iterations;

  // --- Pass 1: sketch Y^T = Omega^T X, stored l x m so every update is a
  // contiguous axpy of one data row. Per-shard partials keep the reduction
  // order fixed; resident state is kBuildShards * l * m doubles.
  Matrix qt(l, m);
  {
    obs::TraceSpan span("randomized.sketch");
    std::vector<Matrix> partials(kBuildShards, Matrix(l, m));
    std::vector<std::vector<double>> omega(kBuildShards,
                                           std::vector<double>(l));
    TSC_RETURN_IF_ERROR(ForEachRowChunk(
        source, [&](std::size_t base, std::size_t count, const Matrix& rows) {
          ParallelFor(pool, kBuildShards, [&](std::size_t shard) {
            Matrix& yt = partials[shard];
            std::vector<double>& w = omega[shard];
            for (std::size_t r = FirstShardRow(shard, base); r < count;
                 r += kBuildShards) {
              const std::uint64_t i = base + r;
              for (std::size_t p = 0; p < l; ++p) {
                w[p] = CounterGaussian(options_.seed, i, p);
              }
              AddScaledOuter(w, rows.Row(r), &yt);
            }
          });
          return Status::Ok();
        }));
    qt = ReduceShardPartials(&partials);
  }

  TSC_ASSIGN_OR_RETURN(std::size_t rank, OrthonormalizeRows(&qt));
  if (rank == 0) {
    return Status::InvalidArgument(
        "randomized build: data matrix is numerically zero");
  }
  if (rank < qt.rows()) {
    qt = qt.TopRows(rank);
  }

  // --- Optional power iterations: S^T = (C Q)^T = Q^T X^T X accumulated
  // as sum_i (Q x_i) x_i^T, one streaming pass each, then re-orthonormalize.
  // Each pass multiplies the sketch's spectrum by the data spectrum, which
  // sharpens the subspace when singular values decay slowly.
  for (std::size_t iter = 0; iter < options_.power_iterations; ++iter) {
    obs::TraceSpan span("randomized.power");
    std::vector<Matrix> partials(kBuildShards, Matrix(rank, m));
    std::vector<std::vector<double>> scratch(kBuildShards,
                                             std::vector<double>(rank));
    TSC_RETURN_IF_ERROR(ForEachRowChunk(
        source, [&](std::size_t base, std::size_t count, const Matrix& rows) {
          ParallelFor(pool, kBuildShards, [&](std::size_t shard) {
            Matrix& st = partials[shard];
            std::vector<double>& w = scratch[shard];
            for (std::size_t r = FirstShardRow(shard, base); r < count;
                 r += kBuildShards) {
              ProjectRow(qt, rows.Row(r), w);
              AddScaledOuter(w, rows.Row(r), &st);
            }
          });
          return Status::Ok();
        }));
    qt = ReduceShardPartials(&partials);
    TSC_ASSIGN_OR_RETURN(rank, OrthonormalizeRows(&qt));
    if (rank == 0) {
      return Status::Internal("randomized build: basis collapsed");
    }
    if (rank < qt.rows()) {
      qt = qt.TopRows(rank);
    }
  }

  // --- Final pass: Rayleigh quotient T = Q^T C Q = sum_i w_i w_i^T with
  // w_i = Q x_i. Only r x r resident state; O(m*r + r^2) work per row.
  Matrix t(rank, rank);
  {
    obs::TraceSpan span("randomized.project");
    std::vector<Matrix> partials(kBuildShards, Matrix(rank, rank));
    std::vector<std::vector<double>> scratch(kBuildShards,
                                             std::vector<double>(rank));
    TSC_RETURN_IF_ERROR(ForEachRowChunk(
        source, [&](std::size_t base, std::size_t count, const Matrix& rows) {
          ParallelFor(pool, kBuildShards, [&](std::size_t shard) {
            Matrix& tt = partials[shard];
            std::vector<double>& w = scratch[shard];
            for (std::size_t r = FirstShardRow(shard, base); r < count;
                 r += kBuildShards) {
              ProjectRow(qt, rows.Row(r), w);
              AddScaledOuter(w, w, &tt);
            }
          });
          return Status::Ok();
        }));
    t = ReduceShardPartials(&partials);
  }

  // Small dense eigenproblem (r <= k+p), then rotate the basis: the
  // eigenvector estimate for theta_j is Q^T W(:, j).
  TSC_ASSIGN_OR_RETURN(EigenDecomposition eigen,
                       SymmetricEigen(t, options_.solver));
  out.eigenvalues.resize(rank);
  for (std::size_t j = 0; j < rank; ++j) {
    out.eigenvalues[j] = std::max(0.0, eigen.eigenvalues[j]);
  }
  Matrix vt(rank, m);
  for (std::size_t j = 0; j < rank; ++j) {
    double* dst = vt.Row(j).data();
    for (std::size_t s = 0; s < rank; ++s) {
      kernels::Axpy(eigen.eigenvectors(s, j), qt.Row(s).data(), dst, m);
    }
  }
  out.eigenvectors = vt.Transposed();
  return out;
}

}  // namespace tsc
