#include "core/disk_backed.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <memory>
#include <numeric>
#include <unordered_map>

#include "linalg/kernels.h"
#include "obs/metrics.h"
#include "storage/serializer.h"
#include "util/logging.h"

namespace tsc {
namespace {

constexpr std::uint32_t kSidecarMagic = 0x53494443;  // "SIDC"

/// A Bloom pass followed by a delta miss is the filter lying to us; the
/// measured rate backs the EstimatedFalsePositiveRate() formula.
void CountBloomFalsePositive() {
  static obs::Counter& false_positives =
      obs::MetricRegistry::Default().GetCounter("bloom.false_positives");
  false_positives.Increment();
}

}  // namespace

Status ExportSvddToDisk(const SvddModel& model, const std::string& u_path,
                        const std::string& sidecar_path) {
  // U, row-wise, as its own row store: the structure the paper assumes
  // lives on disk and is fetched one row per query. The model's quant
  // scheme carries through, so a quantized build serves from quantized
  // rows (the snapped doubles in U re-encode to the same codes).
  TSC_RETURN_IF_ERROR(
      WriteMatrixFile(u_path, model.svd().u(), model.svd().quant_scheme()));

  TSC_ASSIGN_OR_RETURN(BinaryWriter writer, BinaryWriter::Open(sidecar_path));
  TSC_RETURN_IF_ERROR(writer.WriteU32(kSidecarMagic));
  TSC_RETURN_IF_ERROR(
      writer.WriteDoubleVector(model.svd().singular_values()));
  TSC_RETURN_IF_ERROR(writer.WriteMatrix(model.svd().v()));
  TSC_RETURN_IF_ERROR(model.deltas().Serialize(&writer));
  TSC_RETURN_IF_ERROR(writer.WriteU32(model.has_bloom_filter() ? 1 : 0));
  if (model.has_bloom_filter()) {
    // Rebuild the filter from the delta keys: the sidecar stays
    // self-contained without poking at SvddModel internals.
    BloomFilter filter(model.deltas().size(), 10.0);
    model.deltas().ForEach(
        [&filter](std::uint64_t key, double) { filter.Add(key); });
    TSC_RETURN_IF_ERROR(filter.Serialize(&writer));
  }
  return writer.FinishWithChecksum();
}

StatusOr<DiskBackedStore> DiskBackedStore::Open(
    const std::string& u_path, const std::string& sidecar_path,
    std::size_t cache_blocks) {
  DiskBackedOptions options;
  options.cache_blocks = cache_blocks;
  return Open(u_path, sidecar_path, options);
}

StatusOr<DiskBackedStore> DiskBackedStore::Open(
    const std::string& u_path, const std::string& sidecar_path,
    const DiskBackedOptions& options) {
  DiskBackedStore store;
  const IoBackendKind backend =
      options.io_backend.value_or(DefaultIoBackendKind());
  TSC_ASSIGN_OR_RETURN(RowStoreReader reader,
                       RowStoreReader::Open(u_path, backend));
  const std::size_t u_cols = reader.cols();
  store.u_scheme_ = reader.scheme();
  store.u_row_stride_ = reader.row_stride_bytes();
  store.u_file_bytes_ = reader.file_bytes();
  if (options.cache_blocks > 0) {
    store.cached_ = std::make_unique<CachedRowReader>(std::move(reader),
                                                      options.cache_blocks);
    if (options.prefetch_depth > 0) {
      store.prefetcher_ =
          std::make_unique<BlockPrefetcher>(options.prefetch_depth);
    }
  } else {
    store.u_reader_ = std::make_unique<RowStoreReader>(std::move(reader));
  }

  TSC_ASSIGN_OR_RETURN(BinaryReader sidecar, BinaryReader::Open(sidecar_path));
  TSC_ASSIGN_OR_RETURN(const std::uint32_t magic, sidecar.ReadU32());
  if (magic != kSidecarMagic) return Status::IoError("not a sidecar file");
  TSC_ASSIGN_OR_RETURN(store.singular_values_, sidecar.ReadDoubleVector());
  TSC_ASSIGN_OR_RETURN(store.v_, sidecar.ReadMatrix());
  TSC_ASSIGN_OR_RETURN(store.deltas_, DeltaTable::Deserialize(&sidecar));
  TSC_ASSIGN_OR_RETURN(const std::uint32_t has_bloom, sidecar.ReadU32());
  if (has_bloom != 0) {
    TSC_ASSIGN_OR_RETURN(BloomFilter filter,
                         BloomFilter::Deserialize(&sidecar));
    store.bloom_ = std::move(filter);
  }
  TSC_RETURN_IF_ERROR(sidecar.VerifyChecksum());
  if (u_cols != store.singular_values_.size() ||
      store.v_.cols() != store.singular_values_.size()) {
    return Status::IoError("inconsistent disk-backed model dims");
  }
  // Fold the eigenvalues into V once so every cell is a plain dot
  // against a fetched U row (the same trick the in-memory models use).
  store.weighted_v_ = Matrix(store.v_.rows(), store.v_.cols());
  for (std::size_t j = 0; j < store.v_.rows(); ++j) {
    for (std::size_t m = 0; m < store.v_.cols(); ++m) {
      store.weighted_v_(j, m) = store.singular_values_[m] * store.v_(j, m);
    }
  }
  return store;
}

Status DiskBackedStore::ReadURow(std::size_t row, std::span<double> out) {
  if (cached_) return cached_->ReadRow(row, out);
  return u_reader_->ReadRow(row, out);
}

StatusOr<QuantRowView> DiskBackedStore::ReadUQuantRow(
    std::size_t row, std::span<std::uint8_t> scratch) {
  if (cached_) return cached_->ReadQuantRow(row, scratch);
  return u_reader_->ReadQuantRow(row, scratch);
}

void DiskBackedStore::PrefetchURows(std::span<const std::size_t> row_ids) {
  if (row_ids.empty()) return;
  if (cached_ && prefetcher_) {
    cached_->PrefetchRows(row_ids, prefetcher_.get());
    return;
  }
  // No buffer pool: there is nowhere to stage blocks, but the kernel can
  // still start readahead on the spanned byte range.
  if (u_reader_) {
    const auto [lo, hi] =
        std::minmax_element(row_ids.begin(), row_ids.end());
    if (*lo >= u_reader_->rows()) return;
    const std::uint64_t row_bytes = u_reader_->row_stride_bytes();
    const std::uint64_t first = u_reader_->header_bytes() + *lo * row_bytes;
    const std::uint64_t last_row = std::min<std::uint64_t>(
        *hi, u_reader_->rows() - 1);
    u_reader_->io().AdviseWillNeed(first,
                                   (last_row - *lo + 1) * row_bytes);
  }
}

double DiskBackedStore::CellFromURow(const QuantRowView& urow,
                                     std::size_t row, std::size_t col) {
  // The fused kernel dequantizes in registers while it accumulates, so
  // the quantized row never materializes as doubles.
  double value = QuantDot(urow, weighted_v_.Row(col).data());
  const std::uint64_t key = DeltaTable::CellKey(row, col, cols());
  if (!bloom_.has_value() || bloom_->MightContain(key)) {
    const std::optional<double> delta = deltas_.Get(key);
    if (delta.has_value()) {
      value += *delta;
    } else if (bloom_.has_value()) {
      CountBloomFalsePositive();
    }
  }
  return value;
}

StatusOr<double> DiskBackedStore::ReconstructCell(std::size_t row,
                                                  std::size_t col) {
  if (row >= rows() || col >= cols()) {
    return Status::OutOfRange("cell out of range");
  }
  std::vector<std::uint8_t> scratch(u_row_stride_);
  TSC_ASSIGN_OR_RETURN(const QuantRowView urow,
                       ReadUQuantRow(row, scratch));  // the 1 disk access
  return CellFromURow(urow, row, col);
}

Status DiskBackedStore::ReconstructRow(std::size_t row,
                                       std::span<double> out) {
  if (row >= rows()) return Status::OutOfRange("row out of range");
  if (out.size() != cols()) return Status::InvalidArgument("buffer size");
  std::vector<std::uint8_t> scratch(u_row_stride_);
  TSC_ASSIGN_OR_RETURN(const QuantRowView urow, ReadUQuantRow(row, scratch));
  std::fill(out.begin(), out.end(), 0.0);
  QuantGemv(urow, weighted_v_.Row(0).data(), cols(), k(), out.data());
  for (std::size_t j = 0; j < cols(); ++j) {
    const std::uint64_t key = DeltaTable::CellKey(row, j, cols());
    if (bloom_.has_value() && !bloom_->MightContain(key)) continue;
    const std::optional<double> delta = deltas_.Get(key);
    if (delta.has_value()) {
      out[j] += *delta;
    } else if (bloom_.has_value()) {
      CountBloomFalsePositive();
    }
  }
  return Status::Ok();
}

Status DiskBackedStore::ReconstructCells(std::span<const CellRef> cells,
                                         std::span<double> out) {
  if (out.size() != cells.size()) {
    return Status::InvalidArgument("output size mismatch");
  }
  if (cells.empty()) return Status::Ok();
  for (const CellRef& cell : cells) {
    if (cell.row >= rows() || cell.col >= cols()) {
      return Status::OutOfRange("cell out of range");
    }
  }
  // Visit cells row-major so each distinct U row is read exactly once;
  // the prefetch wave fetches every distinct row's blocks up front so a
  // cold batch overlaps its I/O instead of paying sequential misses.
  std::vector<std::size_t> order(cells.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(),
            [&cells](std::size_t a, std::size_t b) {
              if (cells[a].row != cells[b].row) {
                return cells[a].row < cells[b].row;
              }
              return cells[a].col < cells[b].col;
            });
  std::vector<std::size_t> distinct_rows;
  distinct_rows.reserve(cells.size());
  for (const std::size_t i : order) {
    if (distinct_rows.empty() || distinct_rows.back() != cells[i].row) {
      distinct_rows.push_back(cells[i].row);
    }
  }
  PrefetchURows(distinct_rows);

  std::vector<std::uint8_t> scratch(u_row_stride_);
  QuantRowView urow;
  std::size_t loaded_row = std::numeric_limits<std::size_t>::max();
  for (const std::size_t i : order) {
    if (cells[i].row != loaded_row) {
      TSC_ASSIGN_OR_RETURN(urow, ReadUQuantRow(cells[i].row, scratch));
      loaded_row = cells[i].row;
    }
    out[i] = QuantDot(urow, weighted_v_.Row(cells[i].col).data());
  }
  if (deltas_.empty()) return Status::Ok();
  // Same batched delta strategy as SvddModel: one table sweep once the
  // batch is a reasonable fraction of the table, probes otherwise.
  if (cells.size() >= deltas_.size() / 4) {
    // Multimap, not map: a batch may name the same cell twice, and every
    // occurrence must see its delta (the per-cell probe path below does).
    std::unordered_multimap<std::uint64_t, std::size_t> index;
    index.reserve(cells.size());
    for (std::size_t i = 0; i < cells.size(); ++i) {
      index.emplace(DeltaTable::CellKey(cells[i].row, cells[i].col, cols()),
                    i);
    }
    deltas_.ForEach([&](std::uint64_t key, double delta) {
      const auto [begin, end] = index.equal_range(key);
      for (auto it = begin; it != end; ++it) out[it->second] += delta;
    });
    return Status::Ok();
  }
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const std::uint64_t key =
        DeltaTable::CellKey(cells[i].row, cells[i].col, cols());
    if (bloom_.has_value() && !bloom_->MightContain(key)) continue;
    const std::optional<double> delta = deltas_.Get(key);
    if (delta.has_value()) {
      out[i] += *delta;
    } else if (bloom_.has_value()) {
      CountBloomFalsePositive();
    }
  }
  return Status::Ok();
}

Status DiskBackedStore::ReconstructRegion(
    std::span<const std::size_t> row_ids,
    std::span<const std::size_t> col_ids, Matrix* out) {
  if (out->rows() != row_ids.size() || out->cols() != col_ids.size()) {
    *out = Matrix(row_ids.size(), col_ids.size());
  }
  if (row_ids.empty() || col_ids.empty()) return Status::Ok();
  for (const std::size_t r : row_ids) {
    if (r >= rows()) return Status::OutOfRange("row out of range");
  }
  for (const std::size_t c : col_ids) {
    if (c >= cols()) return Status::OutOfRange("col out of range");
  }
  const std::size_t kk = k();
  PrefetchURows(row_ids);
  // Gather the selected U rows (one read each, prefetched above; a
  // quantized row dequantizes once here, amortized over the whole column
  // block) and the selected Lambda-weighted V rows into dense blocks,
  // then run the same blocked product the in-memory models use.
  Matrix a(row_ids.size(), kk);
  for (std::size_t r = 0; r < row_ids.size(); ++r) {
    TSC_RETURN_IF_ERROR(ReadURow(row_ids[r], a.Row(r)));
  }
  Matrix b(col_ids.size(), kk);
  for (std::size_t c = 0; c < col_ids.size(); ++c) {
    const std::span<const double> src = weighted_v_.Row(col_ids[c]);
    std::copy(src.begin(), src.end(), b.Row(c).begin());
  }
  kernels::GemmNT(a.Row(0).data(), row_ids.size(), kk, b.Row(0).data(),
                  col_ids.size(), kk, kk, out->Row(0).data(),
                  col_ids.size());
  if (deltas_.empty()) return Status::Ok();
  const std::uint64_t region_cells =
      static_cast<std::uint64_t>(row_ids.size()) * col_ids.size();
  if (region_cells >= deltas_.size() / 4) {
    // Multimaps so a region listing the same row or column twice patches
    // every copy, matching the per-cell probe path below.
    std::unordered_multimap<std::size_t, std::size_t> row_index;
    row_index.reserve(row_ids.size());
    for (std::size_t r = 0; r < row_ids.size(); ++r) {
      row_index.emplace(row_ids[r], r);
    }
    std::unordered_multimap<std::size_t, std::size_t> col_index;
    col_index.reserve(col_ids.size());
    for (std::size_t c = 0; c < col_ids.size(); ++c) {
      col_index.emplace(col_ids[c], c);
    }
    const std::size_t m = cols();
    deltas_.ForEach([&](std::uint64_t key, double delta) {
      const auto [rbegin, rend] =
          row_index.equal_range(static_cast<std::size_t>(key / m));
      if (rbegin == rend) return;
      const auto [cbegin, cend] =
          col_index.equal_range(static_cast<std::size_t>(key % m));
      for (auto rit = rbegin; rit != rend; ++rit) {
        for (auto cit = cbegin; cit != cend; ++cit) {
          (*out)(rit->second, cit->second) += delta;
        }
      }
    });
    return Status::Ok();
  }
  for (std::size_t r = 0; r < row_ids.size(); ++r) {
    const std::span<double> dst = out->Row(r);
    for (std::size_t c = 0; c < col_ids.size(); ++c) {
      const std::uint64_t key =
          DeltaTable::CellKey(row_ids[r], col_ids[c], cols());
      if (bloom_.has_value() && !bloom_->MightContain(key)) continue;
      const std::optional<double> delta = deltas_.Get(key);
      if (delta.has_value()) {
        dst[c] += *delta;
      } else if (bloom_.has_value()) {
        CountBloomFalsePositive();
      }
    }
  }
  return Status::Ok();
}

double DiskBackedStoreView::ReconstructCell(std::size_t row,
                                            std::size_t col) const {
  const StatusOr<double> value = store_->ReconstructCell(row, col);
  return value.ok() ? *value : std::numeric_limits<double>::quiet_NaN();
}

void DiskBackedStoreView::ReconstructRow(std::size_t row,
                                         std::span<double> out) const {
  if (!store_->ReconstructRow(row, out).ok()) {
    std::fill(out.begin(), out.end(),
              std::numeric_limits<double>::quiet_NaN());
  }
}

void DiskBackedStoreView::ReconstructCells(std::span<const CellRef> cells,
                                           std::span<double> out) const {
  if (!store_->ReconstructCells(cells, out).ok()) {
    std::fill(out.begin(), out.end(),
              std::numeric_limits<double>::quiet_NaN());
  }
}

void DiskBackedStoreView::ReconstructRegion(
    std::span<const std::size_t> row_ids,
    std::span<const std::size_t> col_ids, Matrix* out) const {
  if (!store_->ReconstructRegion(row_ids, col_ids, out).ok()) {
    for (std::size_t r = 0; r < out->rows(); ++r) {
      const std::span<double> dst = out->Row(r);
      std::fill(dst.begin(), dst.end(),
                std::numeric_limits<double>::quiet_NaN());
    }
  }
}

std::uint64_t DiskBackedStoreView::CompressedBytes() const {
  // Section 3.4 accounting against the bytes actually served: the U row
  // store's true payload (quantized rows are smaller), k eigenvalues and
  // k*M of V in memory, plus the packed delta table.
  const std::uint64_t u_payload =
      static_cast<std::uint64_t>(store_->rows()) *
      store_->u_row_stride_bytes();
  const std::uint64_t resident =
      store_->k() + static_cast<std::uint64_t>(store_->k()) * store_->cols();
  return u_payload + resident * sizeof(double) +
         store_->deltas().PackedBytes();
}

}  // namespace tsc
