#include "core/disk_backed.h"

#include <memory>

#include "obs/metrics.h"
#include "storage/serializer.h"
#include "util/logging.h"

namespace tsc {
namespace {

constexpr std::uint32_t kSidecarMagic = 0x53494443;  // "SIDC"

/// A Bloom pass followed by a delta miss is the filter lying to us; the
/// measured rate backs the EstimatedFalsePositiveRate() formula.
void CountBloomFalsePositive() {
  static obs::Counter& false_positives =
      obs::MetricRegistry::Default().GetCounter("bloom.false_positives");
  false_positives.Increment();
}

}  // namespace

Status ExportSvddToDisk(const SvddModel& model, const std::string& u_path,
                        const std::string& sidecar_path) {
  // U, row-wise, as its own row store: the structure the paper assumes
  // lives on disk and is fetched one row per query.
  TSC_RETURN_IF_ERROR(WriteMatrixFile(u_path, model.svd().u()));

  TSC_ASSIGN_OR_RETURN(BinaryWriter writer, BinaryWriter::Open(sidecar_path));
  TSC_RETURN_IF_ERROR(writer.WriteU32(kSidecarMagic));
  TSC_RETURN_IF_ERROR(
      writer.WriteDoubleVector(model.svd().singular_values()));
  TSC_RETURN_IF_ERROR(writer.WriteMatrix(model.svd().v()));
  TSC_RETURN_IF_ERROR(model.deltas().Serialize(&writer));
  TSC_RETURN_IF_ERROR(writer.WriteU32(model.has_bloom_filter() ? 1 : 0));
  if (model.has_bloom_filter()) {
    // Rebuild the filter from the delta keys: the sidecar stays
    // self-contained without poking at SvddModel internals.
    BloomFilter filter(model.deltas().size(), 10.0);
    model.deltas().ForEach(
        [&filter](std::uint64_t key, double) { filter.Add(key); });
    TSC_RETURN_IF_ERROR(filter.Serialize(&writer));
  }
  return writer.FinishWithChecksum();
}

StatusOr<DiskBackedStore> DiskBackedStore::Open(
    const std::string& u_path, const std::string& sidecar_path,
    std::size_t cache_blocks) {
  DiskBackedStore store;
  TSC_ASSIGN_OR_RETURN(RowStoreReader reader, RowStoreReader::Open(u_path));
  const std::size_t u_cols = reader.cols();
  if (cache_blocks > 0) {
    store.cached_ =
        std::make_unique<CachedRowReader>(std::move(reader), cache_blocks);
  } else {
    store.u_reader_ = std::make_unique<RowStoreReader>(std::move(reader));
  }

  TSC_ASSIGN_OR_RETURN(BinaryReader sidecar, BinaryReader::Open(sidecar_path));
  TSC_ASSIGN_OR_RETURN(const std::uint32_t magic, sidecar.ReadU32());
  if (magic != kSidecarMagic) return Status::IoError("not a sidecar file");
  TSC_ASSIGN_OR_RETURN(store.singular_values_, sidecar.ReadDoubleVector());
  TSC_ASSIGN_OR_RETURN(store.v_, sidecar.ReadMatrix());
  TSC_ASSIGN_OR_RETURN(store.deltas_, DeltaTable::Deserialize(&sidecar));
  TSC_ASSIGN_OR_RETURN(const std::uint32_t has_bloom, sidecar.ReadU32());
  if (has_bloom != 0) {
    TSC_ASSIGN_OR_RETURN(BloomFilter filter,
                         BloomFilter::Deserialize(&sidecar));
    store.bloom_ = std::move(filter);
  }
  TSC_RETURN_IF_ERROR(sidecar.VerifyChecksum());
  if (u_cols != store.singular_values_.size() ||
      store.v_.cols() != store.singular_values_.size()) {
    return Status::IoError("inconsistent disk-backed model dims");
  }
  return store;
}

Status DiskBackedStore::ReadURow(std::size_t row, std::span<double> out) {
  if (cached_) return cached_->ReadRow(row, out);
  return u_reader_->ReadRow(row, out);
}

StatusOr<double> DiskBackedStore::ReconstructCell(std::size_t row,
                                                  std::size_t col) {
  if (row >= rows() || col >= cols()) {
    return Status::OutOfRange("cell out of range");
  }
  std::vector<double> urow(k());
  TSC_RETURN_IF_ERROR(ReadURow(row, urow));  // the 1 disk access
  double value = 0.0;
  for (std::size_t m = 0; m < k(); ++m) {
    value += singular_values_[m] * urow[m] * v_(col, m);
  }
  const std::uint64_t key = DeltaTable::CellKey(row, col, cols());
  if (!bloom_.has_value() || bloom_->MightContain(key)) {
    const std::optional<double> delta = deltas_.Get(key);
    if (delta.has_value()) {
      value += *delta;
    } else if (bloom_.has_value()) {
      CountBloomFalsePositive();
    }
  }
  return value;
}

Status DiskBackedStore::ReconstructRow(std::size_t row,
                                       std::span<double> out) {
  if (row >= rows()) return Status::OutOfRange("row out of range");
  if (out.size() != cols()) return Status::InvalidArgument("buffer size");
  std::vector<double> urow(k());
  TSC_RETURN_IF_ERROR(ReadURow(row, urow));
  for (std::size_t j = 0; j < cols(); ++j) {
    double value = 0.0;
    for (std::size_t m = 0; m < k(); ++m) {
      value += singular_values_[m] * urow[m] * v_(j, m);
    }
    out[j] = value;
  }
  for (std::size_t j = 0; j < cols(); ++j) {
    const std::uint64_t key = DeltaTable::CellKey(row, j, cols());
    if (bloom_.has_value() && !bloom_->MightContain(key)) continue;
    const std::optional<double> delta = deltas_.Get(key);
    if (delta.has_value()) {
      out[j] += *delta;
    } else if (bloom_.has_value()) {
      CountBloomFalsePositive();
    }
  }
  return Status::Ok();
}

}  // namespace tsc
