#include "core/space_budget.h"

#include "util/logging.h"

namespace tsc {

SpaceBudget SpaceBudget::FromPercent(std::size_t num_rows,
                                     std::size_t num_cols,
                                     double space_percent,
                                     std::size_t bytes_per_value) {
  TSC_CHECK_GT(space_percent, 0.0);
  SpaceBudget budget;
  budget.num_rows = num_rows;
  budget.num_cols = num_cols;
  budget.bytes_per_value = bytes_per_value;
  const double original = static_cast<double>(num_rows) *
                          static_cast<double>(num_cols) *
                          static_cast<double>(bytes_per_value);
  budget.total_bytes =
      static_cast<std::uint64_t>(original * space_percent / 100.0);
  return budget;
}

std::uint64_t SpaceBudget::SvdBytes(std::size_t k) const {
  if (u_quant != QuantScheme::kF64) {
    // U at its true quantized stride; eigenvalues and V stay at b.
    const std::uint64_t u_bytes =
        static_cast<std::uint64_t>(num_rows) * QuantRowStride(u_quant, k);
    const std::uint64_t resident =
        static_cast<std::uint64_t>(k) + static_cast<std::uint64_t>(k) * num_cols;
    return u_bytes + resident * bytes_per_value;
  }
  const std::uint64_t values =
      static_cast<std::uint64_t>(num_rows) * k + k +
      static_cast<std::uint64_t>(k) * num_cols;
  return values * bytes_per_value;
}

std::size_t SpaceBudget::MaxK() const {
  // SvdBytes is linear in k up to the quantized rows' 8-byte padding;
  // solve with the per-component estimate, then adjust both ways so the
  // result is exact under any scheme.
  const std::uint64_t u_elem_bytes =
      u_quant == QuantScheme::kF64 ? bytes_per_value : QuantElemBytes(u_quant);
  const std::uint64_t per_component =
      static_cast<std::uint64_t>(num_rows) * u_elem_bytes +
      (1 + static_cast<std::uint64_t>(num_cols)) * bytes_per_value;
  if (per_component == 0) return 0;
  const std::uint64_t fixed =
      u_quant == QuantScheme::kF64
          ? 0
          : static_cast<std::uint64_t>(num_rows) * kQuantRowMetaBytes;
  if (total_bytes <= fixed) return 0;
  std::size_t k =
      static_cast<std::size_t>((total_bytes - fixed) / per_component);
  k = k > num_cols ? num_cols : k;
  while (k > 0 && SvdBytes(k) > total_bytes) --k;
  while (k < num_cols && SvdBytes(k + 1) <= total_bytes) ++k;
  return k;
}

std::uint64_t SpaceBudget::DeltaCount(std::size_t k,
                                      std::uint64_t delta_bytes) const {
  TSC_CHECK_GT(delta_bytes, 0u);
  const std::uint64_t svd = SvdBytes(k);
  if (svd >= total_bytes) return 0;
  return (total_bytes - svd) / delta_bytes;
}

double SpaceBudget::ApproximateSpaceFraction(std::size_t k) const {
  if (num_cols == 0) return 0.0;
  return static_cast<double>(k) / static_cast<double>(num_cols);
}

}  // namespace tsc
