#include <iostream>
#include <string>
#include <vector>

#include "cli/cli.h"

int main(int argc, char** argv) {
  std::vector<std::string> args;
  for (int i = 1; i < argc; ++i) args.emplace_back(argv[i]);
  return tsc::cli::RunCli(args, std::cout, std::cerr);
}
