#ifndef TSC_CLI_CLI_H_
#define TSC_CLI_CLI_H_

#include <ostream>
#include <string>
#include <vector>

namespace tsc::cli {

/// Entry point of the `tsctool` command-line utility, shared with the
/// tests. `args` excludes the program name (args[0] is the subcommand).
/// Human-readable output goes to `out`, diagnostics to `err`; the return
/// value is the process exit code.
///
/// Subcommands:
///   generate     synthesize a dataset (phone / stocks / lowrank)
///   compress     build an SVD or SVDD model from a dataset file
///   info         print a model's parameters and footprint
///   query        run a cell or aggregate query against a model
///   evaluate     compare a model against the original dataset
///   reconstruct  decompress (part of) a model back to CSV
///   help         usage
int RunCli(const std::vector<std::string>& args, std::ostream& out,
           std::ostream& err);

}  // namespace tsc::cli

#endif  // TSC_CLI_CLI_H_
