#include "cli/cli.h"

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <fstream>
#include <memory>
#include <optional>
#include <thread>

#include "core/disk_backed.h"
#include "core/metrics.h"
#include "core/sharded_store.h"
#include "core/query.h"
#include "core/svd_compressor.h"
#include "core/svdd_compressor.h"
#include "core/similarity.h"
#include "data/dataset.h"
#include "data/generators.h"
#include "obs/metrics.h"
#include "obs/snapshot.h"
#include "obs/trace.h"
#include "query/executor.h"
#include "query/shard_router.h"
#include "server/server.h"
#include "storage/io_backend.h"
#include "storage/quant.h"
#include "storage/row_source.h"
#include "storage/row_store.h"
#include "util/flags.h"
#include "util/rng.h"
#include "util/table_printer.h"
#include "util/timer.h"

namespace tsc::cli {
namespace {

constexpr char kUsage[] = R"(tsctool — compress time-sequence datasets for ad hoc querying

usage: tsctool <command> [flags]

commands:
  generate   --kind=phone|stocks|patients|lowrank --rows=N --cols=M --seed=S
             --out=FILE          (.csv for text, anything else binary)
  compress   --input=FILE --out=MODEL --space=PCT [--method=svdd|svd]
             [--b=8|4] [--quant=f64|f32|int16|int8] [--no-bloom]
             [--max-candidates=K] [--threads=N] [--shards=S]
             [--prefetch-depth=N]  (overlap build-pass reads with compute)
             [--build=exact|randomized] [--seed=S] [--oversample=P]
             [--power-iters=Q]
             (--quant defaults to $TSC_QUANT; quantizes the U row store.
              --shards=S runs S independent per-shard builds in parallel
              and writes a TSCSHARD1 manifest; --quant then accepts a
              comma list, one scheme per shard — hot f32 / cold int8.
              --build=randomized swaps pass 1 for the streaming sketch
              PCA — O(M*(k+p)) memory at any N, deterministic per --seed;
              binary inputs stream off disk without loading the matrix)
  reshard    --model=SVDD --out=MANIFEST --shards=S [--partition=range|hash]
             (split one svdd model into S shard models that reconstruct
              bit-identically, plus a TSCSHARD1 manifest)
  info       --model=MODEL
  query      --model=MODEL (--q="avg rows=0:9 cols=1,3:5" | --cell=i,j)
             [--threads=N]
  sql        --model=MODEL --query="SELECT sum(value) WHERE row IN 0:99"
             [--explain] [--analyze] [--threads=N] [--no-rollup]
                          (--no-rollup disables the aggregate hierarchy;
                           sum/avg/count fall back to the flat
                           compressed-domain identity)
  topk       --model=MODEL --count=10 [--cols=a:b] (largest column-range sums)
  similar    --model=MODEL --row=I --count=5 (nearest sequences in SVD space)
  evaluate   --model=MODEL --input=FILE
  reconstruct --model=MODEL --out=FILE.csv [--rows=COUNT]
  stats      --model=MODEL [--queries=N] [--cache-blocks=N] [--zipf=S]
             [--seed=S] [--io-backend=stream|pread|mmap] [--prefetch-depth=N]
                          (runs a serving workload, prints instrument values)
             --port=N [--host=IP]  (instead: fetch a running server's
                          /metrics table + SLO window, see docs/server.md)
  serve      --model=MODEL [--port=7496] [--bind=ADDR] [--max-concurrent=N]
             [--queue=N]
             [--timeout-ms=MS] [--batch-window-us=US] [--duration-s=S]
             (--bind defaults to loopback; anything else exposes an
              UNAUTHENTICATED api — see docs/server.md)
             [--cache-blocks=N] [--io-backend=...] [--prefetch-depth=N]
             [--keys=FILE] [--slowlog=K] [--slo-budget-ms=MS]
             [--slo-window-s=S] [--no-rollup]
                          (HTTP query server on 127.0.0.1; endpoints
                           /api/v1/data, /api/v1/query, /api/v1/cell,
                           /api/v1/debug/slow, /metrics, /healthz —
                           see docs/server.md. --keys names rows for
                           rows=~regex filters; default row<i>)
  slowlog    --port=N [--host=IP] [--format=table|json]
                          (the K slowest requests on a running server,
                           with per-request cost vectors)
  help

  every --model flag also accepts a TSCSHARD1 manifest: queries scatter
  across the shards and merge deterministically (sql/query/stats/serve).

global flags (any command):
  --metrics-out=FILE   write a JSON metric snapshot on exit
  --trace-out=FILE     record spans, write Chrome trace JSON on exit
)";

/// Builds a FlagParser from string args (argv-style).
FlagParser MakeFlags(const std::vector<std::string>& args) {
  std::vector<char*> argv;
  static thread_local std::vector<std::string> storage;
  storage.assign(args.begin(), args.end());
  argv.push_back(nullptr);  // program-name slot
  for (auto& s : storage) argv.push_back(s.data());
  static char prog[] = "tsctool";
  argv[0] = prog;
  return FlagParser(static_cast<int>(argv.size()), argv.data());
}

bool EndsWith(const std::string& text, const std::string& suffix) {
  return text.size() >= suffix.size() &&
         text.compare(text.size() - suffix.size(), suffix.size(), suffix) == 0;
}

StatusOr<Dataset> LoadDataset(const std::string& path) {
  if (EndsWith(path, ".csv")) return LoadCsv(path, path);
  return LoadBinary(path, path);
}

Status SaveDataset(const Dataset& dataset, const std::string& path) {
  if (EndsWith(path, ".csv")) return SaveCsv(dataset, path);
  return SaveBinary(dataset, path);
}

/// A model file holds either an SVD or an SVDD model; dispatch on magic.
struct LoadedModel {
  std::unique_ptr<CompressedStore> store;
  std::string kind;
  // Extra introspection, populated per kind.
  std::size_t k = 0;
  std::size_t delta_count = 0;
  bool has_bloom = false;
  std::size_t shard_count = 0;  ///< > 0 only for kind == "sharded"
};

StatusOr<LoadedModel> LoadModel(const std::string& path) {
  LoadedModel loaded;
  // Sharded manifests dispatch on the TSCSHARD1 magic before either
  // model reader touches the file.
  if (ShardManifest::IsManifestFile(path)) {
    auto sharded = ShardedStore::LoadFromManifest(path);
    if (!sharded.ok()) return sharded.status();
    loaded.kind = "sharded";
    loaded.shard_count = sharded->shard_count();
    for (std::size_t shard = 0; shard < sharded->shard_count(); ++shard) {
      const SvddModel& model = sharded->shard_model(shard);
      loaded.k = std::max(loaded.k, model.k());
      loaded.delta_count += model.delta_count();
      loaded.has_bloom = loaded.has_bloom || model.has_bloom_filter();
    }
    loaded.store = std::make_unique<ShardedStore>(std::move(*sharded));
    return loaded;
  }
  // Try SVDD first (its magic differs, so the wrong reader fails fast).
  if (auto svdd = SvddModel::LoadFromFile(path); svdd.ok()) {
    loaded.kind = "svdd";
    loaded.k = svdd->k();
    loaded.delta_count = svdd->delta_count();
    loaded.has_bloom = svdd->has_bloom_filter();
    loaded.store = std::make_unique<SvddModel>(std::move(*svdd));
    return loaded;
  }
  if (auto svd = SvdModel::LoadFromFile(path); svd.ok()) {
    loaded.kind = "svd";
    loaded.k = svd->k();
    loaded.store = std::make_unique<SvdModel>(std::move(*svd));
    return loaded;
  }
  return Status::IoError("not a tsctool model file: " + path);
}

int Fail(std::ostream& err, const Status& status) {
  err << "error: " << status.ToString() << "\n";
  return 1;
}

int CmdGenerate(const FlagParser& flags, std::ostream& out,
                std::ostream& err) {
  const std::string kind = flags.GetString("kind", "phone");
  const std::string path = flags.GetString("out", "");
  if (path.empty()) return Fail(err, Status::InvalidArgument("--out required"));
  const std::size_t rows = static_cast<std::size_t>(flags.GetInt("rows", 1000));
  const std::size_t cols = static_cast<std::size_t>(flags.GetInt("cols", 366));
  const std::uint64_t seed = static_cast<std::uint64_t>(flags.GetInt("seed", 42));

  Dataset dataset;
  if (kind == "phone") {
    PhoneDatasetConfig config;
    config.num_customers = rows;
    config.num_days = cols;
    config.seed = seed;
    dataset = GeneratePhoneDataset(config);
  } else if (kind == "stocks") {
    StockDatasetConfig config;
    config.num_stocks = rows;
    config.num_days = cols;
    config.seed = seed;
    dataset = GenerateStockDataset(config);
  } else if (kind == "patients") {
    PatientDatasetConfig config;
    config.num_patients = rows;
    config.num_hours = cols;
    config.seed = seed;
    dataset = GeneratePatientDataset(config);
  } else if (kind == "lowrank") {
    const std::size_t rank =
        static_cast<std::size_t>(flags.GetInt("rank", 5));
    dataset = GenerateLowRankDataset(rows, cols, rank, seed);
  } else {
    return Fail(err, Status::InvalidArgument("unknown --kind: " + kind));
  }
  const Status status = SaveDataset(dataset, path);
  if (!status.ok()) return Fail(err, status);
  out << "wrote " << dataset.rows() << "x" << dataset.cols() << " " << kind
      << " dataset to " << path << "\n";
  return 0;
}

int CmdCompress(const FlagParser& flags, std::ostream& out,
                std::ostream& err) {
  const std::string input = flags.GetString("input", "");
  const std::string model_path = flags.GetString("out", "");
  if (input.empty() || model_path.empty()) {
    return Fail(err,
                Status::InvalidArgument("--input and --out are required"));
  }
  const double space = flags.GetDouble("space", 10.0);
  const std::string method = flags.GetString("method", "svdd");
  const std::size_t b = static_cast<std::size_t>(flags.GetInt("b", 8));
  const std::size_t threads =
      static_cast<std::size_t>(flags.GetInt("threads", 1));
  const std::size_t prefetch_depth =
      static_cast<std::size_t>(flags.GetInt("prefetch-depth", 0));
  // --quant wins; otherwise TSC_QUANT; otherwise the exact f64 store.
  // With --shards a comma list deals one scheme per shard.
  QuantScheme quant = QuantSchemeFromEnv();
  std::vector<QuantScheme> quant_list;
  if (flags.Has("quant")) {
    const std::string spec = flags.GetString("quant", "f64");
    std::size_t start = 0;
    while (start <= spec.size()) {
      const std::size_t comma = spec.find(',', start);
      const std::string token =
          spec.substr(start, comma == std::string::npos ? std::string::npos
                                                        : comma - start);
      auto parsed = ParseQuantScheme(token);
      if (!parsed.ok()) return Fail(err, parsed.status());
      quant_list.push_back(*parsed);
      if (comma == std::string::npos) break;
      start = comma + 1;
    }
    quant = quant_list.front();
  }
  const std::size_t shards =
      static_cast<std::size_t>(flags.GetInt("shards", 1));
  if (quant_list.size() > 1 && quant_list.size() != shards) {
    return Fail(err, Status::InvalidArgument(
                         "--quant lists one scheme per shard: got " +
                         std::to_string(quant_list.size()) + " schemes for " +
                         std::to_string(shards) + " shards"));
  }
  const std::string build_name = flags.GetString("build", "exact");
  if (build_name != "exact" && build_name != "randomized") {
    return Fail(err, Status::InvalidArgument(
                         "--build must be exact or randomized, got " +
                         build_name));
  }
  const bool randomized = build_name == "randomized";
  if (randomized && method != "svdd") {
    return Fail(err, Status::InvalidArgument(
                         "--build=randomized needs --method=svdd"));
  }
  const std::uint64_t sketch_seed =
      static_cast<std::uint64_t>(flags.GetInt("seed", 42));
  const std::size_t oversample =
      static_cast<std::size_t>(flags.GetInt("oversample", 8));
  const std::size_t power_iters =
      static_cast<std::size_t>(flags.GetInt("power-iters", 0));

  // Single-store svdd builds stream binary row stores straight off the
  // file: the build passes ARE the out-of-core algorithm, so compress
  // never needs an N x M resident matrix (the whole point of the
  // randomized engine at 10M rows). CSV inputs and the sharded/svd
  // paths still load the dataset up front.
  std::optional<Dataset> dataset;
  std::optional<FileRowSource> file_source;
  std::optional<MatrixRowSource> matrix_source;
  RowSource* source = nullptr;
  const bool stream_input =
      method == "svdd" && shards == 1 && !EndsWith(input, ".csv");
  if (stream_input) {
    auto reader = RowStoreReader::Open(input);
    if (!reader.ok()) return Fail(err, reader.status());
    file_source.emplace(std::move(*reader));
    source = &*file_source;
  } else {
    auto loaded = LoadDataset(input);
    if (!loaded.ok()) return Fail(err, loaded.status());
    dataset.emplace(std::move(*loaded));
    matrix_source.emplace(&dataset->values);
    source = &*matrix_source;
  }
  Timer timer;

  if (method == "svdd" && shards > 1) {
    ShardedBuildOptions options;
    options.base.space_percent = space;
    options.base.bytes_per_value = b;
    if (b == 4) options.base.delta_bytes = 12;
    options.base.quant = quant;
    options.base.build_bloom_filter = !flags.GetBool("no-bloom", false);
    options.base.max_candidates =
        static_cast<std::size_t>(flags.GetInt("max-candidates", 0));
    options.base.engine = randomized ? SvddBuildEngine::kRandomized
                                     : SvddBuildEngine::kExact;
    options.base.sketch_seed = sketch_seed;
    options.base.sketch_oversample = oversample;
    options.base.power_iterations = power_iters;
    options.shard_count = shards;
    options.num_threads = threads;
    if (quant_list.size() > 1) options.per_shard_quant = quant_list;
    ShardedBuildDiagnostics diag;
    auto store = BuildShardedStore(dataset->values, options, &diag);
    if (!store.ok()) return Fail(err, store.status());
    const Status save = store->SaveToFiles(model_path);
    if (!save.ok()) return Fail(err, save);
    out << "sharded svdd model: " << shards << " shards, "
        << TablePrinter::Percent(store->SpacePercent(b)) << " of original, "
        << TablePrinter::Num(timer.ElapsedSeconds(), 3)
        << "s wall (threads=" << threads << ")\n";
    for (std::size_t shard = 0; shard < shards; ++shard) {
      const SvddModel& model = store->shard_model(shard);
      out << "  shard " << shard << ": rows="
          << store->layout().RowsIn(shard) << " k_opt="
          << diag.shards[shard].k_opt << " deltas=" << model.delta_count()
          << " quant=" << QuantSchemeName(model.svd().quant_scheme())
          << " build=" << TablePrinter::Num(diag.shard_seconds[shard], 3)
          << "s\n";
    }
    out << "manifest written to " << model_path << " (+" << shards
        << " shard files)\n";
    return 0;
  }
  if (shards > 1) {
    return Fail(err,
                Status::InvalidArgument("--shards needs --method=svdd"));
  }
  if (method == "svdd") {
    SvddBuildOptions options;
    options.space_percent = space;
    options.bytes_per_value = b;
    if (b == 4) options.delta_bytes = 12;
    options.quant = quant;
    options.build_bloom_filter = !flags.GetBool("no-bloom", false);
    options.max_candidates =
        static_cast<std::size_t>(flags.GetInt("max-candidates", 0));
    options.num_threads = threads;
    options.prefetch_depth = prefetch_depth;
    options.engine = randomized ? SvddBuildEngine::kRandomized
                                : SvddBuildEngine::kExact;
    options.sketch_seed = sketch_seed;
    options.sketch_oversample = oversample;
    options.power_iterations = power_iters;
    SvddBuildDiagnostics diag;
    auto model = BuildSvddModel(source, options, &diag);
    if (!model.ok()) return Fail(err, model.status());
    const Status save = model->SaveToFile(model_path);
    if (!save.ok()) return Fail(err, save);
    const std::uint64_t passes =
        source->rows() > 0 ? diag.rows_streamed / source->rows() : 0;
    out << "svdd model (" << diag.engine << "): k_opt=" << diag.k_opt
        << " (k_max=" << diag.k_max << "), deltas=" << model->delta_count()
        << ", quant=" << QuantSchemeName(quant) << ", "
        << TablePrinter::Percent(model->SpacePercent(b)) << " of original, "
        << TablePrinter::Num(timer.ElapsedSeconds(), 3) << "s, " << passes
        << " passes\n";
  } else if (method == "svd") {
    SpaceBudget budget = SpaceBudget::FromPercent(
        dataset->rows(), dataset->cols(), space, b);
    budget.u_quant = quant;
    SvdBuildOptions options;
    options.k = budget.MaxK();
    options.bytes_per_value = b;
    options.num_threads = threads;
    options.prefetch_depth = prefetch_depth;
    if (options.k == 0) {
      return Fail(err, Status::ResourceExhausted("budget below 1 component"));
    }
    auto model = BuildSvdModel(source, options);
    if (!model.ok()) return Fail(err, model.status());
    // Plain SVD has no delta table to absorb the quantization error, but
    // the snapped model still reports it honestly through evaluate.
    model->ApplyQuantization(quant);
    const Status save = model->SaveToFile(model_path);
    if (!save.ok()) return Fail(err, save);
    out << "svd model: k=" << model->k() << ", "
        << TablePrinter::Percent(model->SpacePercent(b)) << " of original, "
        << TablePrinter::Num(timer.ElapsedSeconds(), 3) << "s, 2 passes\n";
  } else {
    return Fail(err, Status::InvalidArgument("unknown --method: " + method));
  }
  out << "model written to " << model_path << "\n";
  return 0;
}

/// Splits one svdd model file into a TSCSHARD1 manifest + S shard
/// models that reconstruct every cell bit-identically (SplitSvddModel):
/// U rows are dealt to shards, V and the eigenvalues replicated, deltas
/// re-keyed, Bloom filters rebuilt per shard.
int CmdReshard(const FlagParser& flags, std::ostream& out,
               std::ostream& err) {
  const std::string in_path = flags.GetString("model", "");
  const std::string out_path = flags.GetString("out", "");
  if (in_path.empty() || out_path.empty()) {
    return Fail(err, Status::InvalidArgument("--model and --out required"));
  }
  const std::size_t shards =
      static_cast<std::size_t>(flags.GetInt("shards", 2));
  const std::string partition_name =
      flags.GetString("partition", "range");
  ShardPartition partition;
  if (partition_name == "range") {
    partition = ShardPartition::kRange;
  } else if (partition_name == "hash") {
    partition = ShardPartition::kHash;
  } else {
    return Fail(err, Status::InvalidArgument(
                         "--partition must be range or hash, got " +
                         partition_name));
  }
  auto model = SvddModel::LoadFromFile(in_path);
  if (!model.ok()) return Fail(err, model.status());
  auto layout = ShardLayout::Make(partition, model->rows(), shards);
  if (!layout.ok()) return Fail(err, layout.status());
  auto store = SplitSvddModel(*model, *layout);
  if (!store.ok()) return Fail(err, store.status());
  const Status save = store->SaveToFiles(out_path);
  if (!save.ok()) return Fail(err, save);
  out << "resharded " << model->rows() << " rows into " << shards << " "
      << partition_name << " shards; manifest written to " << out_path
      << "\n";
  return 0;
}

int CmdInfo(const FlagParser& flags, std::ostream& out, std::ostream& err) {
  auto loaded = LoadModel(flags.GetString("model", ""));
  if (!loaded.ok()) return Fail(err, loaded.status());
  const CompressedStore& store = *loaded->store;
  out << "kind:        " << loaded->kind << "\n"
      << "sequences:   " << store.rows() << "\n"
      << "length:      " << store.cols() << "\n"
      << "components:  " << loaded->k << "\n";
  if (loaded->kind == "svdd") {
    out << "deltas:      " << loaded->delta_count << "\n"
        << "bloom:       " << (loaded->has_bloom ? "yes" : "no") << "\n";
  }
  if (loaded->kind == "sharded") {
    const auto& sharded =
        *static_cast<const ShardedStore*>(loaded->store.get());
    out << "shards:      " << loaded->shard_count << " ("
        << ShardPartitionName(sharded.layout().partition) << ")\n"
        << "deltas:      " << loaded->delta_count << "\n";
    for (std::size_t shard = 0; shard < sharded.shard_count(); ++shard) {
      const SvddModel& model = sharded.shard_model(shard);
      out << "  shard " << shard << ":   rows="
          << sharded.layout().RowsIn(shard) << " k=" << model.k()
          << " deltas=" << model.delta_count() << " quant="
          << QuantSchemeName(model.svd().quant_scheme()) << "\n";
    }
  }
  out << "bytes:       " << store.CompressedBytes() << "\n"
      << "space:       " << TablePrinter::Percent(store.SpacePercent())
      << " of original\n";
  return 0;
}

int CmdQuery(const FlagParser& flags, std::ostream& out, std::ostream& err) {
  auto loaded = LoadModel(flags.GetString("model", ""));
  if (!loaded.ok()) return Fail(err, loaded.status());
  const CompressedStore& store = *loaded->store;

  if (flags.Has("cell")) {
    const std::string cell = flags.GetString("cell", "");
    const std::size_t comma = cell.find(',');
    if (comma == std::string::npos) {
      return Fail(err, Status::InvalidArgument("--cell expects i,j"));
    }
    const std::size_t i = std::strtoull(cell.c_str(), nullptr, 10);
    const std::size_t j = std::strtoull(cell.c_str() + comma + 1, nullptr, 10);
    if (i >= store.rows() || j >= store.cols()) {
      return Fail(err, Status::OutOfRange("cell out of range"));
    }
    out << store.ReconstructCell(i, j) << "\n";
    return 0;
  }
  const std::string spec = flags.GetString("q", "");
  if (spec.empty()) {
    return Fail(err, Status::InvalidArgument("--q or --cell required"));
  }
  auto query = ParseRegionQuery(spec);
  if (!query.ok()) return Fail(err, query.status());
  for (const std::size_t r : query->row_ids) {
    if (r >= store.rows()) return Fail(err, Status::OutOfRange("row id"));
  }
  for (const std::size_t c : query->col_ids) {
    if (c >= store.cols()) return Fail(err, Status::OutOfRange("col id"));
  }
  // Run through the executor's batched (optionally multi-threaded) scan;
  // the fixed-shard reduction makes the result identical for any
  // --threads value.
  const std::size_t threads =
      static_cast<std::size_t>(flags.GetInt("threads", 1));
  const QueryExecutor executor(&store, threads);
  QueryPlan plan;
  plan.row_ids = query->row_ids;
  plan.col_ids = query->col_ids;
  plan.aggregates = {query->fn};
  plan.strategies = {ExecutionStrategy::kRowReconstruction};
  plan.group_by = GroupBy::kNone;
  auto result = executor.ExecutePlan(plan);
  if (!result.ok()) return Fail(err, result.status());
  out << result->ValueAt(0, 0) << "\n";
  return 0;
}

int CmdSql(const FlagParser& flags, std::ostream& out, std::ostream& err) {
  auto loaded = LoadModel(flags.GetString("model", ""));
  if (!loaded.ok()) return Fail(err, loaded.status());
  const std::string text = flags.GetString("query", "");
  if (text.empty()) return Fail(err, Status::InvalidArgument("--query required"));

  const std::size_t threads =
      static_cast<std::size_t>(flags.GetInt("threads", 1));
  // --no-rollup falls back to the flat compressed-domain identity (the
  // pre-hierarchy strategy); TSC_NO_ROLLUP=1 does the same per-process.
  const bool enable_rollup = !flags.GetBool("no-rollup", false);
  // SVDD models get the compressed-domain fast path; sharded manifests
  // scatter-gather it across shards through a ShardRouter.
  const SvddModel* svdd =
      loaded->kind == "svdd"
          ? static_cast<const SvddModel*>(loaded->store.get())
          : nullptr;
  std::optional<ShardRouter> router;
  std::optional<QueryExecutor> executor_storage;
  if (loaded->kind == "sharded") {
    auto* sharded = static_cast<ShardedStore*>(loaded->store.get());
    if (threads > 1) sharded->EnableParallelFanOut(threads);
    router.emplace(sharded, enable_rollup);
    executor_storage.emplace(&*router, threads);
  } else if (svdd != nullptr) {
    executor_storage.emplace(svdd, threads, enable_rollup);
  } else {
    executor_storage.emplace(loaded->store.get(), threads);
  }
  const QueryExecutor& executor = *executor_storage;
  if (flags.GetBool("explain", false)) {
    auto plan = executor.Explain(text);
    if (!plan.ok()) return Fail(err, plan.status());
    out << *plan;
    return 0;
  }
  auto result = executor.Execute(text);
  if (!result.ok()) return Fail(err, result.status());
  for (const double value : result->values) out << value << "\n";
  if (flags.GetBool("analyze", false)) out << result->AnalyzeFooter();
  return 0;
}

/// Parses "a:b" (or "a") into the column id list [a, b].
StatusOr<std::vector<std::size_t>> ParseColRange(const std::string& text,
                                                 std::size_t num_cols) {
  std::size_t lo = 0;
  std::size_t hi = num_cols - 1;
  if (!text.empty()) {
    const std::size_t colon = text.find(':');
    lo = std::strtoull(text.c_str(), nullptr, 10);
    hi = colon == std::string::npos
             ? lo
             : std::strtoull(text.c_str() + colon + 1, nullptr, 10);
  }
  if (lo > hi || hi >= num_cols) {
    return Status::OutOfRange("bad column range: " + text);
  }
  std::vector<std::size_t> cols;
  for (std::size_t j = lo; j <= hi; ++j) cols.push_back(j);
  return cols;
}

/// Pulls the SvdModel view out of a loaded model of either kind.
const SvdModel* SvdViewOf(const LoadedModel& loaded) {
  if (loaded.kind == "svdd") {
    return &static_cast<const SvddModel*>(loaded.store.get())->svd();
  }
  return static_cast<const SvdModel*>(loaded.store.get());
}

int CmdTopK(const FlagParser& flags, std::ostream& out, std::ostream& err) {
  auto loaded = LoadModel(flags.GetString("model", ""));
  if (!loaded.ok()) return Fail(err, loaded.status());
  const std::size_t count =
      static_cast<std::size_t>(flags.GetInt("count", 10));
  auto cols =
      ParseColRange(flags.GetString("cols", ""), loaded->store->cols());
  if (!cols.ok()) return Fail(err, cols.status());

  std::vector<ScoredRow> top;
  if (loaded->kind == "svdd") {
    top = TopRowsBySum(*static_cast<const SvddModel*>(loaded->store.get()),
                       *cols, count);
  } else {
    top = TopRowsBySum(*SvdViewOf(*loaded), *cols, count);
  }
  out << "top " << top.size() << " sequences by sum over " << cols->size()
      << " columns:\n";
  for (const ScoredRow& r : top) {
    out << "  row " << r.row << "  sum " << TablePrinter::Num(r.score)
        << "\n";
  }
  return 0;
}

int CmdSimilar(const FlagParser& flags, std::ostream& out,
               std::ostream& err) {
  auto loaded = LoadModel(flags.GetString("model", ""));
  if (!loaded.ok()) return Fail(err, loaded.status());
  const std::size_t row = static_cast<std::size_t>(flags.GetInt("row", 0));
  const std::size_t count =
      static_cast<std::size_t>(flags.GetInt("count", 5));
  auto neighbors = NearestRowsTo(*SvdViewOf(*loaded), row, count);
  if (!neighbors.ok()) return Fail(err, neighbors.status());
  out << "nearest sequences to row " << row << " (SVD-space distance):\n";
  for (const ScoredRow& r : neighbors->neighbors) {
    out << "  row " << r.row << "  distance " << TablePrinter::Num(r.score)
        << "\n";
  }
  return 0;
}

int CmdEvaluate(const FlagParser& flags, std::ostream& out,
                std::ostream& err) {
  auto loaded = LoadModel(flags.GetString("model", ""));
  if (!loaded.ok()) return Fail(err, loaded.status());
  auto dataset = LoadDataset(flags.GetString("input", ""));
  if (!dataset.ok()) return Fail(err, dataset.status());
  if (dataset->rows() != loaded->store->rows() ||
      dataset->cols() != loaded->store->cols()) {
    return Fail(err, Status::InvalidArgument("model/dataset shape mismatch"));
  }
  const ErrorReport report = EvaluateErrors(dataset->values, *loaded->store);
  out << "rmspe:            " << TablePrinter::Percent(100.0 * report.rmspe)
      << "\n"
      << "mean |err|:       " << TablePrinter::Num(report.mean_abs_error)
      << "\n"
      << "median |err|:     " << TablePrinter::Num(report.median_abs_error)
      << "\n"
      << "worst |err|:      " << TablePrinter::Num(report.max_abs_error)
      << "\n"
      << "worst normalized: "
      << TablePrinter::Percent(100.0 * report.max_normalized_error) << "\n";
  return 0;
}

int CmdReconstruct(const FlagParser& flags, std::ostream& out,
                   std::ostream& err) {
  auto loaded = LoadModel(flags.GetString("model", ""));
  if (!loaded.ok()) return Fail(err, loaded.status());
  const std::string path = flags.GetString("out", "");
  if (path.empty()) return Fail(err, Status::InvalidArgument("--out required"));
  const CompressedStore& store = *loaded->store;
  std::size_t rows = store.rows();
  if (flags.Has("rows")) {
    rows = std::min<std::size_t>(
        rows, static_cast<std::size_t>(flags.GetInt("rows", 0)));
  }
  Dataset dataset;
  dataset.name = "reconstruction";
  dataset.values = Matrix(rows, store.cols());
  // Batched reconstruction in row blocks: one blocked U x (Lambda V^T)
  // product (plus one delta sweep for SVDD) per block instead of a
  // cell-by-cell loop.
  std::vector<std::size_t> all_cols(store.cols());
  for (std::size_t j = 0; j < store.cols(); ++j) all_cols[j] = j;
  constexpr std::size_t kBlockRows = 64;
  Matrix block;
  std::vector<std::size_t> block_rows;
  for (std::size_t i = 0; i < rows; i += kBlockRows) {
    const std::size_t count = std::min(kBlockRows, rows - i);
    block_rows.resize(count);
    for (std::size_t r = 0; r < count; ++r) block_rows[r] = i + r;
    store.ReconstructRegion(block_rows, all_cols, &block);
    for (std::size_t r = 0; r < count; ++r) {
      const std::span<const double> src = block.Row(r);
      std::copy(src.begin(), src.end(), dataset.values.Row(i + r).begin());
    }
  }
  const Status status = SaveCsv(dataset, path);
  if (!status.ok()) return Fail(err, status);
  out << "wrote " << rows << "x" << store.cols() << " reconstruction to "
      << path << "\n";
  return 0;
}

/// Runs the paper's serving scenario end to end against a model file and
/// prints what the instruments saw: exports the model to the two-file
/// disk layout, opens it behind a BlockCache buffer pool, replays a
/// Zipf-skewed cell workload plus a few SQL aggregates, then reports the
/// derived rates and the full registry snapshot.
int CmdStats(const FlagParser& flags, std::ostream& out, std::ostream& err) {
  // Remote mode: pull a running server's registry (with the slo.* window
  // gauges published on scrape) and its verbose health document.
  if (const int port = flags.GetInt("port", 0); port > 0) {
    const std::string host = flags.GetString("host", "127.0.0.1");
    auto metrics = server::HttpGet(host, port, "/metrics?format=table");
    if (!metrics.ok()) return Fail(err, metrics.status());
    if (metrics->status != 200) {
      return Fail(err, Status::IoError("server returned HTTP " +
                                       std::to_string(metrics->status)));
    }
    out << metrics->body;
    if (auto health = server::HttpGet(host, port, "/healthz?verbose=1");
        health.ok() && health->status == 200) {
      out << "\n" << health->body << "\n";
    }
    return 0;
  }

  auto loaded = LoadModel(flags.GetString("model", ""));
  if (!loaded.ok()) return Fail(err, loaded.status());
  if (loaded->kind != "svdd" && loaded->kind != "sharded") {
    return Fail(err, Status::InvalidArgument(
                         "stats needs an svdd model (disk layout)"));
  }
  const std::size_t queries =
      static_cast<std::size_t>(flags.GetInt("queries", 2000));
  const std::size_t cache_blocks =
      static_cast<std::size_t>(flags.GetInt("cache-blocks", 64));
  const double zipf_s = flags.GetDouble("zipf", 1.1);
  const std::uint64_t seed =
      static_cast<std::uint64_t>(flags.GetInt("seed", 42));
  DiskBackedOptions disk_options;
  disk_options.cache_blocks = cache_blocks;
  disk_options.prefetch_depth =
      static_cast<std::size_t>(flags.GetInt("prefetch-depth", 0));
  if (const std::string backend = flags.GetString("io-backend", "");
      !backend.empty()) {
    auto kind = ParseIoBackendName(backend);
    if (!kind.ok()) return Fail(err, kind.status());
    disk_options.io_backend = *kind;
  }

  // Sharded manifests run the same workload against per-shard disk
  // layouts: the total cache budget is split evenly across the shards'
  // BlockCache sets, cell probes route through the layout, and the SQL
  // aggregates scatter-gather through a ShardRouter.
  if (loaded->kind == "sharded") {
    auto* sharded = static_cast<ShardedStore*>(loaded->store.get());
    const std::size_t shard_count = sharded->shard_count();
    DiskBackedOptions shard_options = disk_options;
    shard_options.cache_blocks =
        std::max<std::size_t>(1, cache_blocks / shard_count);
    obs::MetricRegistry::Default().ResetAll();
    auto bundle = OpenShardedDiskBundle(
        *sharded, flags.GetString("model", "") + ".stats_shard",
        shard_options);
    if (!bundle.ok()) return Fail(err, bundle.status());
    sharded->AttachBackends(bundle->ViewPointers());

    Rng rng(seed);
    const ZipfSampler rows(sharded->rows(), zipf_s);
    Timer timer;
    for (std::size_t q = 0; q < queries; ++q) {
      const std::size_t i = rows.Sample(&rng) - 1;
      const std::size_t j =
          static_cast<std::size_t>(rng.UniformUint64(sharded->cols()));
      (void)sharded->ReconstructCell(i, j);
    }
    const double cell_seconds = timer.ElapsedSeconds();

    const ShardRouter router(sharded);
    const QueryExecutor executor(&router);
    const std::size_t last_row = sharded->rows() - 1;
    const std::vector<std::string> sql = {
        "SELECT sum(value)",
        "SELECT avg(value) WHERE row IN 0:" + std::to_string(last_row / 2),
        "SELECT max(value) WHERE row IN 0:" +
            std::to_string(std::min<std::size_t>(last_row, 9)),
    };
    for (const std::string& text : sql) {
      auto result = executor.Execute(text);
      if (!result.ok()) return Fail(err, result.status());
    }

    std::uint64_t hits = 0;
    std::uint64_t misses_blocks = 0;
    std::uint64_t u_bytes = 0;
    for (const DiskBackedStore& shard_store : bundle->stores) {
      hits += shard_store.cache_hits();
      misses_blocks += shard_store.disk_accesses();
      u_bytes += shard_store.u_file_bytes();
    }
    const std::uint64_t total_reads = hits + misses_blocks;
    out << "serving workload: " << queries << " cell queries ("
        << "zipf s=" << TablePrinter::Num(zipf_s) << "), " << sql.size()
        << " sql queries, " << shard_count << " shards x "
        << shard_options.cache_blocks << " cache blocks\n";
    out << "footprint:        " << sharded->CompressedBytes()
        << " bytes compressed (" << u_bytes << " bytes on-disk U)\n";
    out << "cell latency:     "
        << TablePrinter::Num(1e6 * cell_seconds /
                             static_cast<double>(queries == 0 ? 1 : queries))
        << " us/query\n";
    out << "disk accesses:    " << misses_blocks << "\n";
    out << "cache hit rate:   "
        << TablePrinter::Percent(total_reads == 0
                                     ? 0.0
                                     : 100.0 * static_cast<double>(hits) /
                                           static_cast<double>(total_reads))
        << "\n";
    const obs::StatsSnapshot snapshot = obs::TakeSnapshot();
    if (!snapshot.empty()) out << "\n" << snapshot.ToTable();
    sharded->AttachBackends({});
    bundle->RemoveFiles();
    return 0;
  }

  const SvddModel& model =
      *static_cast<const SvddModel*>(loaded->store.get());

  // Fresh run: counts below reflect this workload only.
  obs::MetricRegistry::Default().ResetAll();

  const std::string u_path = flags.GetString("model", "") + ".stats_u";
  const std::string sidecar_path =
      flags.GetString("model", "") + ".stats_sidecar";
  Status status = ExportSvddToDisk(model, u_path, sidecar_path);
  if (!status.ok()) return Fail(err, status);
  auto store = DiskBackedStore::Open(u_path, sidecar_path, disk_options);
  if (!store.ok()) {
    std::remove(u_path.c_str());
    std::remove(sidecar_path.c_str());
    return Fail(err, store.status());
  }

  // Skewed cell workload: hot rows repeat, so the buffer pool shows its
  // effect, exactly the Appendix A access pattern.
  Rng rng(seed);
  const ZipfSampler rows(store->rows(), zipf_s);
  Timer timer;
  for (std::size_t q = 0; q < queries; ++q) {
    const std::size_t i = rows.Sample(&rng) - 1;
    const std::size_t j =
        static_cast<std::size_t>(rng.UniformUint64(store->cols()));
    auto value = store->ReconstructCell(i, j);
    if (!value.ok()) return Fail(err, value.status());
  }
  const double cell_seconds = timer.ElapsedSeconds();

  // A few SQL aggregates served straight from the two-file disk layout:
  // the executor sees the store through DiskBackedStoreView, so its
  // batched scans hit the I/O engine (and the prefetch hook) under test.
  const DiskBackedStoreView disk_view(&*store);
  const QueryExecutor executor(&disk_view);
  const std::size_t last_row = model.rows() - 1;
  const std::vector<std::string> sql = {
      "SELECT sum(value)",
      "SELECT avg(value) WHERE row IN 0:" + std::to_string(last_row / 2),
      "SELECT max(value) WHERE row IN 0:" +
          std::to_string(std::min<std::size_t>(last_row, 9)),
  };
  for (const std::string& text : sql) {
    auto result = executor.Execute(text);
    if (!result.ok()) return Fail(err, result.status());
  }

  // Derived lines come from component-level counters, so they hold even
  // in a TSC_OBS_DISABLED build; the registry table below needs the
  // instruments compiled in.
  const std::uint64_t hits = store->cache_hits();
  const std::uint64_t misses_blocks = store->disk_accesses();
  const std::uint64_t total_reads = hits + misses_blocks;
  out << "serving workload: " << queries << " cell queries ("
      << "zipf s=" << TablePrinter::Num(zipf_s) << "), " << sql.size()
      << " sql queries, cache=" << cache_blocks << " blocks\n";
  out << "io backend:       " << store->io_backend_name()
      << " (prefetch depth " << disk_options.prefetch_depth << ")\n";
  // Serving footprint, broken down by component: the on-disk U row store
  // (at its true, possibly quantized stride), the in-memory delta table,
  // and the in-memory V + eigenvalues.
  const std::uint64_t u_bytes = store->u_file_bytes();
  const std::uint64_t delta_bytes = store->deltas().PackedBytes();
  const std::uint64_t v_bytes =
      (static_cast<std::uint64_t>(store->k()) * store->cols() + store->k()) *
      sizeof(double);
  const std::uint64_t footprint = u_bytes + delta_bytes + v_bytes;
  const double total_cells =
      static_cast<double>(store->rows()) * static_cast<double>(store->cols());
  out << "footprint:        " << footprint << " bytes total ("
      << TablePrinter::Num(total_cells == 0.0
                               ? 0.0
                               : static_cast<double>(footprint) / total_cells)
      << " bytes/cell)\n";
  out << "  u store:        " << u_bytes << " bytes ("
      << QuantSchemeName(store->u_scheme()) << ", "
      << store->u_row_stride_bytes() << " bytes/row)\n";
  out << "  delta table:    " << delta_bytes << " bytes ("
      << store->deltas().size() << " entries)\n";
  out << "  v + eigenvalues: " << v_bytes << " bytes\n";
  out << "cell latency:     "
      << TablePrinter::Num(1e6 * cell_seconds /
                           static_cast<double>(queries == 0 ? 1 : queries))
      << " us/query\n";
  out << "disk accesses:    " << misses_blocks << " ("
      << TablePrinter::Num(static_cast<double>(misses_blocks) /
                           static_cast<double>(queries == 0 ? 1 : queries))
      << " per cell query)\n";
  out << "cache hit rate:   "
      << TablePrinter::Percent(total_reads == 0
                                   ? 0.0
                                   : 100.0 * static_cast<double>(hits) /
                                         static_cast<double>(total_reads))
      << "\n";
  const obs::StatsSnapshot snapshot = obs::TakeSnapshot();
  if (!snapshot.empty()) out << "\n" << snapshot.ToTable();

  std::remove(u_path.c_str());
  std::remove(sidecar_path.c_str());
  return 0;
}

std::atomic<bool> g_serve_interrupted{false};

void ServeSignalHandler(int) { g_serve_interrupted.store(true); }

/// Runs the concurrent query server over a model file until SIGINT /
/// SIGTERM (or --duration-s elapses). With --cache-blocks > 0 an SVDD
/// model is exported to the two-file disk layout and served through one
/// shared BlockCache + BlockPrefetcher; otherwise the in-memory model
/// serves directly (SVDD still gets the compressed-domain fast path).
int CmdServe(const FlagParser& flags, std::ostream& out, std::ostream& err) {
  auto loaded = LoadModel(flags.GetString("model", ""));
  if (!loaded.ok()) return Fail(err, loaded.status());

  server::ServerOptions options;
  options.port = flags.GetInt("port", 7496);
  options.bind_address = flags.GetString("bind", "127.0.0.1");
  // Loopback keeps the server private to this machine; anything else
  // (0.0.0.0, a LAN address) serves an UNAUTHENTICATED query API to
  // whoever can reach the socket. Warn loudly — there is no auth layer.
  if (options.bind_address.rfind("127.", 0) != 0) {
    err << "warning: --bind=" << options.bind_address
        << " exposes an unauthenticated query API beyond loopback; "
           "front it with an authenticating proxy (see docs/server.md)\n";
  }
  options.max_concurrent =
      static_cast<std::size_t>(flags.GetInt("max-concurrent", 0));
  options.max_queue = static_cast<std::size_t>(flags.GetInt("queue", 64));
  options.timeout_ms =
      static_cast<std::uint64_t>(flags.GetInt("timeout-ms", 2000));
  options.batch_window_us =
      static_cast<std::uint64_t>(flags.GetInt("batch-window-us", 150));
  options.slowlog_capacity =
      static_cast<std::size_t>(flags.GetInt("slowlog", 64));
  options.slo_window_s =
      static_cast<std::uint64_t>(flags.GetInt("slo-window-s", 60));
  options.slo_latency_budget_us =
      1000.0 * static_cast<double>(flags.GetInt("slo-budget-ms", 250));

  // Row-key map backing rows=~regex dimension filters: --keys=FILE (one
  // key per line, at least one per row) or synthetic row<i> names.
  if (const std::string keys_path = flags.GetString("keys", "");
      !keys_path.empty()) {
    std::ifstream keys_in(keys_path);
    if (!keys_in) {
      return Fail(err,
                  Status::IoError("cannot open --keys file: " + keys_path));
    }
    std::string line;
    while (std::getline(keys_in, line)) {
      if (!line.empty() && line.back() == '\r') line.pop_back();
      options.row_keys.push_back(line);
    }
    if (options.row_keys.size() < loaded->store->rows()) {
      return Fail(err, Status::InvalidArgument(
                           "--keys file names fewer keys than rows"));
    }
  } else {
    options.row_keys.reserve(loaded->store->rows());
    for (std::size_t i = 0; i < loaded->store->rows(); ++i) {
      options.row_keys.push_back("row" + std::to_string(i));
    }
  }

  // The executor is shared by every connection, so it must not carry an
  // internal scan pool (concurrency comes from concurrent requests).
  const SvddModel* svdd =
      loaded->kind == "svdd"
          ? static_cast<const SvddModel*>(loaded->store.get())
          : nullptr;
  ShardedStore* sharded =
      loaded->kind == "sharded"
          ? static_cast<ShardedStore*>(loaded->store.get())
          : nullptr;
  const std::size_t cache_blocks =
      static_cast<std::size_t>(flags.GetInt("cache-blocks", 0));

  std::optional<DiskBackedStore> disk_store;
  std::optional<DiskBackedStoreView> disk_view;
  std::optional<ShardedDiskBundle> shard_bundle;
  std::optional<ShardRouter> router;
  std::optional<QueryExecutor> executor;
  const CompressedStore* store = loaded->store.get();
  std::string u_path;
  std::string sidecar_path;
  DiskBackedOptions disk_options;
  if (cache_blocks > 0) {
    if (svdd == nullptr && sharded == nullptr) {
      return Fail(err, Status::InvalidArgument(
                           "--cache-blocks needs an svdd model"));
    }
    disk_options.cache_blocks = cache_blocks;
    disk_options.prefetch_depth =
        static_cast<std::size_t>(flags.GetInt("prefetch-depth", 0));
    if (const std::string backend = flags.GetString("io-backend", "");
        !backend.empty()) {
      auto kind = ParseIoBackendName(backend);
      if (!kind.ok()) return Fail(err, kind.status());
      disk_options.io_backend = *kind;
    }
  }
  if (sharded != nullptr) {
    // One shared router serves every connection: per-shard hierarchies
    // for the /api/v1/data bucket reductions, scatter-gather for SQL.
    if (cache_blocks > 0) {
      DiskBackedOptions shard_options = disk_options;
      shard_options.cache_blocks = std::max<std::size_t>(
          1, cache_blocks / sharded->shard_count());
      auto bundle = OpenShardedDiskBundle(
          *sharded, flags.GetString("model", "") + ".serve_shard",
          shard_options);
      if (!bundle.ok()) return Fail(err, bundle.status());
      shard_bundle.emplace(std::move(*bundle));
      sharded->AttachBackends(shard_bundle->ViewPointers());
      out << "serving " << sharded->shard_count()
          << " shards from disk layouts (" << shard_options.cache_blocks
          << "-block cache each)\n";
    }
    router.emplace(sharded, !flags.GetBool("no-rollup", false));
    executor.emplace(&*router, 1);
  } else if (cache_blocks > 0) {
    u_path = flags.GetString("model", "") + ".serve_u";
    sidecar_path = flags.GetString("model", "") + ".serve_sidecar";
    Status status = ExportSvddToDisk(*svdd, u_path, sidecar_path);
    if (!status.ok()) return Fail(err, status);
    auto opened = DiskBackedStore::Open(u_path, sidecar_path, disk_options);
    if (!opened.ok()) {
      std::remove(u_path.c_str());
      std::remove(sidecar_path.c_str());
      return Fail(err, opened.status());
    }
    disk_store.emplace(std::move(*opened));
    disk_view.emplace(&*disk_store);
    store = &*disk_view;
    executor.emplace(store, 1);
    out << "serving from disk layout (" << disk_store->io_backend_name()
        << " backend, " << cache_blocks << "-block cache)\n";
  } else if (svdd != nullptr) {
    // --no-rollup serves sum/avg via the flat compressed-domain path
    // instead of the aggregate hierarchy (see docs/server.md).
    executor.emplace(svdd, 1, !flags.GetBool("no-rollup", false));
  } else {
    executor.emplace(store, 1);
  }

  server::QueryServer query_server(&*executor, store, options);
  Status status = query_server.Start();
  if (status.ok()) {
    out << "listening on " << options.bind_address << ":"
        << query_server.port() << " ("
        << store->rows() << " x " << store->cols() << " "
        << store->MethodName() << ")\n";
    out.flush();
    g_serve_interrupted.store(false);
    std::signal(SIGINT, ServeSignalHandler);
    std::signal(SIGTERM, ServeSignalHandler);
    const int duration_s = flags.GetInt("duration-s", 0);
    const auto started = std::chrono::steady_clock::now();
    while (!g_serve_interrupted.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
      if (duration_s > 0 &&
          std::chrono::steady_clock::now() - started >=
              std::chrono::seconds(duration_s)) {
        break;
      }
    }
    std::signal(SIGINT, SIG_DFL);
    std::signal(SIGTERM, SIG_DFL);
    query_server.Stop();
    out << "served " << query_server.connections_accepted()
        << " connections\n";
  }
  if (!u_path.empty()) {
    std::remove(u_path.c_str());
    std::remove(sidecar_path.c_str());
  }
  if (shard_bundle.has_value()) {
    sharded->AttachBackends({});
    shard_bundle->RemoveFiles();
  }
  return status.ok() ? 0 : Fail(err, status);
}

/// Fetches the slow-query log from a running server: the K slowest
/// requests with their cost vectors, as a table (default) or raw JSON.
int CmdSlowlog(const FlagParser& flags, std::ostream& out,
               std::ostream& err) {
  const int port = flags.GetInt("port", 7496);
  const std::string host = flags.GetString("host", "127.0.0.1");
  const std::string format = flags.GetString("format", "table");
  if (format != "table" && format != "json") {
    return Fail(err,
                Status::InvalidArgument("--format must be table or json"));
  }
  auto result =
      server::HttpGet(host, port, "/api/v1/debug/slow?format=" + format);
  if (!result.ok()) return Fail(err, result.status());
  if (result->status != 200) {
    return Fail(err, Status::IoError("server returned HTTP " +
                                     std::to_string(result->status) + ": " +
                                     result->body));
  }
  out << result->body;
  if (!result->body.empty() && result->body.back() != '\n') out << "\n";
  return 0;
}

}  // namespace

int RunCli(const std::vector<std::string>& args, std::ostream& out,
           std::ostream& err) {
  if (args.empty() || args[0] == "help" || args[0] == "--help") {
    out << kUsage;
    return args.empty() ? 1 : 0;
  }
  const std::string& command = args[0];
  const FlagParser flags(
      MakeFlags(std::vector<std::string>(args.begin() + 1, args.end())));

  // Global observability flags, honored by every command.
  const std::string metrics_out = flags.GetString("metrics-out", "");
  const std::string trace_out = flags.GetString("trace-out", "");
  if (!trace_out.empty()) obs::TraceRecorder::Default().Enable();

  int code = 1;
  bool known = true;
  if (command == "generate") {
    code = CmdGenerate(flags, out, err);
  } else if (command == "compress") {
    code = CmdCompress(flags, out, err);
  } else if (command == "reshard") {
    code = CmdReshard(flags, out, err);
  } else if (command == "info") {
    code = CmdInfo(flags, out, err);
  } else if (command == "query") {
    code = CmdQuery(flags, out, err);
  } else if (command == "sql") {
    code = CmdSql(flags, out, err);
  } else if (command == "topk") {
    code = CmdTopK(flags, out, err);
  } else if (command == "similar") {
    code = CmdSimilar(flags, out, err);
  } else if (command == "evaluate") {
    code = CmdEvaluate(flags, out, err);
  } else if (command == "reconstruct") {
    code = CmdReconstruct(flags, out, err);
  } else if (command == "stats") {
    code = CmdStats(flags, out, err);
  } else if (command == "serve") {
    code = CmdServe(flags, out, err);
  } else if (command == "slowlog") {
    code = CmdSlowlog(flags, out, err);
  } else {
    known = false;
  }
  if (!known) {
    err << "error: unknown command '" << command << "'\n" << kUsage;
    return 1;
  }

  if (!trace_out.empty()) {
    obs::TraceRecorder::Default().Disable();
    const Status status =
        obs::TraceRecorder::Default().ExportChromeTrace(trace_out);
    if (!status.ok()) return Fail(err, status);
    out << "trace written to " << trace_out << "\n";
  }
  if (!metrics_out.empty()) {
    const Status status = obs::TakeSnapshot().WriteJsonFile(metrics_out);
    if (!status.ok()) return Fail(err, status);
    out << "metrics written to " << metrics_out << "\n";
  }
  return code;
}

}  // namespace tsc::cli
