#include "baselines/huffman.h"

#include <algorithm>
#include <cstring>
#include <queue>

#include "baselines/lzss.h"
#include "util/logging.h"

namespace tsc {
namespace {

constexpr std::size_t kSymbols = 256;
constexpr std::uint8_t kMaxCodeLength = 56;  // fits a u64 bit accumulator

/// Computes per-symbol code lengths from byte frequencies via the
/// standard Huffman tree construction. Returns all-zero lengths for an
/// empty input.
std::vector<std::uint8_t> CodeLengths(
    const std::vector<std::uint64_t>& freqs) {
  struct Node {
    std::uint64_t freq;
    int left;   // node index or -1
    int right;
    int symbol;  // leaf symbol or -1
  };
  std::vector<Node> nodes;
  using HeapEntry = std::pair<std::uint64_t, int>;  // (freq, node index)
  std::priority_queue<HeapEntry, std::vector<HeapEntry>,
                      std::greater<HeapEntry>>
      heap;
  for (std::size_t s = 0; s < kSymbols; ++s) {
    if (freqs[s] == 0) continue;
    nodes.push_back(Node{freqs[s], -1, -1, static_cast<int>(s)});
    heap.emplace(freqs[s], static_cast<int>(nodes.size()) - 1);
  }
  std::vector<std::uint8_t> lengths(kSymbols, 0);
  if (heap.empty()) return lengths;
  if (heap.size() == 1) {
    lengths[static_cast<std::size_t>(nodes[0].symbol)] = 1;
    return lengths;
  }
  while (heap.size() > 1) {
    const auto [fa, a] = heap.top();
    heap.pop();
    const auto [fb, b] = heap.top();
    heap.pop();
    nodes.push_back(Node{fa + fb, a, b, -1});
    heap.emplace(fa + fb, static_cast<int>(nodes.size()) - 1);
  }
  // Depth-first assignment of depths as lengths.
  struct Frame {
    int node;
    std::uint8_t depth;
  };
  std::vector<Frame> stack = {{heap.top().second, 0}};
  std::uint8_t max_len = 0;
  while (!stack.empty()) {
    const Frame frame = stack.back();
    stack.pop_back();
    const Node& node = nodes[static_cast<std::size_t>(frame.node)];
    if (node.symbol >= 0) {
      lengths[static_cast<std::size_t>(node.symbol)] = frame.depth;
      max_len = std::max(max_len, frame.depth);
    } else {
      stack.push_back({node.left, static_cast<std::uint8_t>(frame.depth + 1)});
      stack.push_back({node.right, static_cast<std::uint8_t>(frame.depth + 1)});
    }
  }
  if (max_len > kMaxCodeLength) {
    // Pathological skew: fall back to fixed 8-bit codes (a valid
    // complete code over 256 symbols). Compression degrades, correctness
    // does not.
    std::fill(lengths.begin(), lengths.end(), 8);
  }
  return lengths;
}

/// Canonical code assignment: symbols sorted by (length, value) receive
/// consecutive codes per length.
void CanonicalCodes(const std::vector<std::uint8_t>& lengths,
                    std::vector<std::uint64_t>* codes) {
  codes->assign(kSymbols, 0);
  std::vector<std::size_t> order;
  for (std::size_t s = 0; s < kSymbols; ++s) {
    if (lengths[s] > 0) order.push_back(s);
  }
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (lengths[a] != lengths[b]) return lengths[a] < lengths[b];
    return a < b;
  });
  std::uint64_t code = 0;
  std::uint8_t previous_length = 0;
  for (const std::size_t s : order) {
    code <<= (lengths[s] - previous_length);
    (*codes)[s] = code;
    ++code;
    previous_length = lengths[s];
  }
}

class BitWriter {
 public:
  explicit BitWriter(std::vector<std::uint8_t>* out) : out_(out) {}

  void Write(std::uint64_t code, std::uint8_t bits) {
    for (std::uint8_t i = bits; i-- > 0;) {
      const int bit = static_cast<int>((code >> i) & 1);
      acc_ = static_cast<std::uint8_t>((acc_ << 1) | bit);
      if (++filled_ == 8) {
        out_->push_back(acc_);
        acc_ = 0;
        filled_ = 0;
      }
    }
  }

  void Flush() {
    if (filled_ > 0) {
      out_->push_back(static_cast<std::uint8_t>(acc_ << (8 - filled_)));
      acc_ = 0;
      filled_ = 0;
    }
  }

 private:
  std::vector<std::uint8_t>* out_;
  std::uint8_t acc_ = 0;
  int filled_ = 0;
};

class BitReader {
 public:
  BitReader(std::span<const std::uint8_t> data, std::size_t offset)
      : data_(data), byte_(offset) {}

  /// Returns -1 at end of data.
  int NextBit() {
    if (byte_ >= data_.size()) return -1;
    const int bit = (data_[byte_] >> (7 - bit_)) & 1;
    if (++bit_ == 8) {
      bit_ = 0;
      ++byte_;
    }
    return bit;
  }

 private:
  std::span<const std::uint8_t> data_;
  std::size_t byte_;
  int bit_ = 0;
};

}  // namespace

std::vector<std::uint8_t> HuffmanCompress(
    std::span<const std::uint8_t> input) {
  std::vector<std::uint64_t> freqs(kSymbols, 0);
  for (const std::uint8_t b : input) ++freqs[b];
  const std::vector<std::uint8_t> lengths = CodeLengths(freqs);
  std::vector<std::uint64_t> codes;
  CanonicalCodes(lengths, &codes);

  std::vector<std::uint8_t> out;
  out.reserve(input.size() / 2 + kSymbols + 16);
  const std::uint64_t size = input.size();
  out.resize(8);
  std::memcpy(out.data(), &size, 8);
  out.insert(out.end(), lengths.begin(), lengths.end());

  BitWriter writer(&out);
  for (const std::uint8_t b : input) writer.Write(codes[b], lengths[b]);
  writer.Flush();
  return out;
}

StatusOr<std::vector<std::uint8_t>> HuffmanDecompress(
    std::span<const std::uint8_t> input) {
  if (input.size() < 8 + kSymbols) {
    return Status::IoError("truncated huffman header");
  }
  std::uint64_t size = 0;
  std::memcpy(&size, input.data(), 8);
  if (size > (1ULL << 40)) return Status::IoError("implausible size");
  std::vector<std::uint8_t> lengths(input.begin() + 8,
                                    input.begin() + 8 + kSymbols);
  std::vector<std::uint64_t> codes;
  CanonicalCodes(lengths, &codes);

  // Decode table: for each length, the first canonical code and the
  // symbols of that length in canonical order.
  std::vector<std::vector<std::size_t>> symbols_by_length(kMaxCodeLength + 1);
  for (std::size_t s = 0; s < kSymbols; ++s) {
    if (lengths[s] > 0 && lengths[s] <= kMaxCodeLength) {
      symbols_by_length[lengths[s]].push_back(s);
    } else if (lengths[s] > kMaxCodeLength) {
      return Status::IoError("corrupt code length");
    }
  }
  std::vector<std::uint64_t> first_code(kMaxCodeLength + 1, 0);
  std::uint64_t code = 0;
  for (std::size_t len = 1; len <= kMaxCodeLength; ++len) {
    code <<= 1;
    first_code[len] = code;
    code += symbols_by_length[len].size();
  }

  std::vector<std::uint8_t> out;
  out.reserve(size);
  BitReader reader(input, 8 + kSymbols);
  while (out.size() < size) {
    std::uint64_t acc = 0;
    std::size_t len = 0;
    std::size_t symbol = kSymbols;
    while (len < kMaxCodeLength) {
      const int bit = reader.NextBit();
      if (bit < 0) return Status::IoError("truncated huffman body");
      acc = (acc << 1) | static_cast<std::uint64_t>(bit);
      ++len;
      const auto& bucket = symbols_by_length[len];
      if (!bucket.empty() && acc >= first_code[len] &&
          acc < first_code[len] + bucket.size()) {
        symbol = bucket[static_cast<std::size_t>(acc - first_code[len])];
        break;
      }
    }
    if (symbol == kSymbols) return Status::IoError("bad huffman code");
    out.push_back(static_cast<std::uint8_t>(symbol));
  }
  return out;
}

std::vector<std::uint8_t> DeflateLikeCompress(
    std::span<const std::uint8_t> input) {
  const std::vector<std::uint8_t> lz = LzssCompress(input);
  return HuffmanCompress(lz);
}

StatusOr<std::vector<std::uint8_t>> DeflateLikeDecompress(
    std::span<const std::uint8_t> input) {
  TSC_ASSIGN_OR_RETURN(const std::vector<std::uint8_t> lz,
                       HuffmanDecompress(input));
  return LzssDecompress(lz);
}

}  // namespace tsc
