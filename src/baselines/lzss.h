#ifndef TSC_BASELINES_LZSS_H_
#define TSC_BASELINES_LZSS_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "linalg/matrix.h"
#include "util/status.h"

namespace tsc {

/// LZ77-family (LZSS) byte compressor, written from scratch as the stand-in
/// for the paper's gzip reference point (Section 5.1: "the Lempel-Ziv
/// (gzip) algorithm had a space requirement of s ~= 25%"). Lossless, but —
/// exactly the paper's argument — a cell read requires decompressing from
/// the start, so it offers no random access.
///
/// Format: u64 original size, then tokens grouped under control bytes
/// (bit=1 literal byte, bit=0 a 2-byte match of 3..18 bytes at a 12-bit
/// backward offset).
std::vector<std::uint8_t> LzssCompress(std::span<const std::uint8_t> input);

/// Inverse of LzssCompress; fails on corrupt input.
StatusOr<std::vector<std::uint8_t>> LzssDecompress(
    std::span<const std::uint8_t> input);

/// Serializes a matrix to the raw little-endian doubles gzip would see in
/// the binary file.
std::vector<std::uint8_t> MatrixToBytes(const Matrix& m);

/// Serializes a matrix to CSV-style text (the form flat files usually
/// take in warehouses, and the friendlier input for LZ).
std::vector<std::uint8_t> MatrixToText(const Matrix& m, int precision = 2);

/// compressed_size / original_size for a buffer, in [0, ~1].
double LzssRatio(std::span<const std::uint8_t> input);

}  // namespace tsc

#endif  // TSC_BASELINES_LZSS_H_
