#include "baselines/lzss.h"

#include <cstdio>
#include <cstring>

namespace tsc {
namespace {

constexpr std::size_t kWindowBits = 12;
constexpr std::size_t kWindowSize = 1u << kWindowBits;  // 4096
constexpr std::size_t kMinMatch = 3;
constexpr std::size_t kMaxMatch = kMinMatch + 15;  // 4-bit length field
constexpr std::size_t kHashSize = 1u << 15;
constexpr std::size_t kMaxChainDepth = 64;

std::size_t Hash3(const std::uint8_t* p) {
  const std::uint32_t v = static_cast<std::uint32_t>(p[0]) |
                          (static_cast<std::uint32_t>(p[1]) << 8) |
                          (static_cast<std::uint32_t>(p[2]) << 16);
  return (v * 2654435761u) >> (32 - 15);
}

}  // namespace

std::vector<std::uint8_t> LzssCompress(std::span<const std::uint8_t> input) {
  std::vector<std::uint8_t> out;
  out.reserve(input.size() / 2 + 16);
  const std::uint64_t original_size = input.size();
  out.resize(8);
  std::memcpy(out.data(), &original_size, 8);

  // Hash chains over 3-byte prefixes: head table + previous-position links.
  std::vector<std::int64_t> head(kHashSize, -1);
  std::vector<std::int64_t> prev(input.size(), -1);

  std::size_t pos = 0;
  std::size_t control_index = 0;
  int control_bit = 8;  // forces a fresh control byte on first token

  auto begin_token = [&](bool literal) {
    if (control_bit == 8) {
      control_index = out.size();
      out.push_back(0);
      control_bit = 0;
    }
    if (literal) {
      out[control_index] =
          static_cast<std::uint8_t>(out[control_index] | (1u << control_bit));
    }
    ++control_bit;
  };

  while (pos < input.size()) {
    std::size_t best_len = 0;
    std::size_t best_offset = 0;
    if (pos + kMinMatch <= input.size()) {
      const std::size_t h = Hash3(&input[pos]);
      std::int64_t candidate = head[h];
      std::size_t depth = 0;
      while (candidate >= 0 && depth < kMaxChainDepth) {
        const std::size_t cand = static_cast<std::size_t>(candidate);
        if (pos - cand > kWindowSize) break;
        std::size_t len = 0;
        const std::size_t limit = std::min(kMaxMatch, input.size() - pos);
        while (len < limit && input[cand + len] == input[pos + len]) ++len;
        if (len > best_len) {
          best_len = len;
          best_offset = pos - cand;
          if (len == kMaxMatch) break;
        }
        candidate = prev[cand];
        ++depth;
      }
      // Insert current position into its chain.
      prev[pos] = head[h];
      head[h] = static_cast<std::int64_t>(pos);
    }

    if (best_len >= kMinMatch) {
      begin_token(/*literal=*/false);
      const std::uint16_t offset = static_cast<std::uint16_t>(best_offset - 1);
      const std::uint8_t length = static_cast<std::uint8_t>(best_len - kMinMatch);
      out.push_back(static_cast<std::uint8_t>(offset & 0xff));
      out.push_back(static_cast<std::uint8_t>(((offset >> 8) & 0x0f) |
                                              (length << 4)));
      // Register the skipped positions in the hash chains too, so later
      // matches can point inside this match.
      for (std::size_t s = 1; s < best_len; ++s) {
        const std::size_t p = pos + s;
        if (p + kMinMatch <= input.size()) {
          const std::size_t h = Hash3(&input[p]);
          prev[p] = head[h];
          head[h] = static_cast<std::int64_t>(p);
        }
      }
      pos += best_len;
    } else {
      begin_token(/*literal=*/true);
      out.push_back(input[pos]);
      ++pos;
    }
  }
  return out;
}

StatusOr<std::vector<std::uint8_t>> LzssDecompress(
    std::span<const std::uint8_t> input) {
  if (input.size() < 8) return Status::IoError("truncated LZSS header");
  std::uint64_t original_size = 0;
  std::memcpy(&original_size, input.data(), 8);
  if (original_size > (1ULL << 40)) {
    return Status::IoError("implausible LZSS size");
  }
  std::vector<std::uint8_t> out;
  out.reserve(original_size);

  std::size_t pos = 8;
  std::uint8_t control = 0;
  int control_bit = 8;
  while (out.size() < original_size) {
    if (control_bit == 8) {
      if (pos >= input.size()) return Status::IoError("truncated LZSS body");
      control = input[pos++];
      control_bit = 0;
    }
    const bool literal = (control >> control_bit) & 1;
    ++control_bit;
    if (literal) {
      if (pos >= input.size()) return Status::IoError("truncated literal");
      out.push_back(input[pos++]);
    } else {
      if (pos + 1 >= input.size()) return Status::IoError("truncated match");
      const std::uint8_t lo = input[pos++];
      const std::uint8_t hi = input[pos++];
      const std::size_t offset =
          (static_cast<std::size_t>(hi & 0x0f) << 8 | lo) + 1;
      const std::size_t length = (hi >> 4) + kMinMatch;
      if (offset > out.size()) return Status::IoError("bad match offset");
      const std::size_t start = out.size() - offset;
      for (std::size_t s = 0; s < length; ++s) {
        out.push_back(out[start + s]);  // may overlap, byte-at-a-time is key
      }
    }
  }
  if (out.size() != original_size) return Status::IoError("size mismatch");
  return out;
}

std::vector<std::uint8_t> MatrixToBytes(const Matrix& m) {
  std::vector<std::uint8_t> bytes(m.data().size() * sizeof(double));
  if (!bytes.empty()) {
    std::memcpy(bytes.data(), m.data().data(), bytes.size());
  }
  return bytes;
}

std::vector<std::uint8_t> MatrixToText(const Matrix& m, int precision) {
  std::string text;
  text.reserve(m.data().size() * 8);
  char buf[64];
  for (std::size_t i = 0; i < m.rows(); ++i) {
    for (std::size_t j = 0; j < m.cols(); ++j) {
      std::snprintf(buf, sizeof(buf), "%.*f", precision, m(i, j));
      if (j > 0) text += ',';
      text += buf;
    }
    text += '\n';
  }
  return std::vector<std::uint8_t>(text.begin(), text.end());
}

double LzssRatio(std::span<const std::uint8_t> input) {
  if (input.empty()) return 0.0;
  const std::vector<std::uint8_t> compressed = LzssCompress(input);
  return static_cast<double>(compressed.size()) /
         static_cast<double>(input.size());
}

}  // namespace tsc
