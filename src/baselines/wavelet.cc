#include "baselines/wavelet.h"

#include <algorithm>
#include <bit>
#include <cmath>

#include "util/bounded_heap.h"
#include "util/logging.h"

namespace tsc {
namespace {

constexpr double kInvSqrt2 = 0.70710678118654752440;

bool IsPowerOfTwo(std::size_t n) { return n != 0 && (n & (n - 1)) == 0; }

std::size_t NextPowerOfTwo(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

std::vector<double> HaarForward(std::vector<double> signal) {
  TSC_CHECK(IsPowerOfTwo(signal.size()));
  std::vector<double> scratch(signal.size());
  for (std::size_t len = signal.size(); len > 1; len /= 2) {
    const std::size_t half = len / 2;
    for (std::size_t i = 0; i < half; ++i) {
      scratch[i] = (signal[2 * i] + signal[2 * i + 1]) * kInvSqrt2;
      scratch[half + i] = (signal[2 * i] - signal[2 * i + 1]) * kInvSqrt2;
    }
    std::copy(scratch.begin(), scratch.begin() + static_cast<std::ptrdiff_t>(len),
              signal.begin());
  }
  return signal;
}

std::vector<double> HaarInverse(std::vector<double> coefficients) {
  TSC_CHECK(IsPowerOfTwo(coefficients.size()));
  std::vector<double> scratch(coefficients.size());
  for (std::size_t len = 2; len <= coefficients.size(); len *= 2) {
    const std::size_t half = len / 2;
    for (std::size_t i = 0; i < half; ++i) {
      scratch[2 * i] =
          (coefficients[i] + coefficients[half + i]) * kInvSqrt2;
      scratch[2 * i + 1] =
          (coefficients[i] - coefficients[half + i]) * kInvSqrt2;
    }
    std::copy(scratch.begin(), scratch.begin() + static_cast<std::ptrdiff_t>(len),
              coefficients.begin());
  }
  return coefficients;
}

double HaarBasisValue(std::size_t length, std::size_t index,
                      std::size_t pos) {
  TSC_DCHECK(IsPowerOfTwo(length));
  TSC_DCHECK(index < length && pos < length);
  if (index == 0) {
    return 1.0 / std::sqrt(static_cast<double>(length));
  }
  const std::size_t level = static_cast<std::size_t>(std::bit_width(index)) - 1;
  const std::size_t q = index - (static_cast<std::size_t>(1) << level);
  const std::size_t support = length >> level;
  const std::size_t start = q * support;
  if (pos < start || pos >= start + support) return 0.0;
  const double amplitude = std::sqrt(
      static_cast<double>(static_cast<std::size_t>(1) << level) /
      static_cast<double>(length));
  return pos < start + support / 2 ? amplitude : -amplitude;
}

HaarModel::HaarModel(std::vector<std::vector<Coefficient>> rows,
                     std::size_t num_cols, std::size_t padded_length)
    : rows_(std::move(rows)),
      num_cols_(num_cols),
      padded_length_(padded_length) {
  TSC_CHECK(IsPowerOfTwo(padded_length_));
  TSC_CHECK_GE(padded_length_, num_cols_);
}

double HaarModel::ReconstructCell(std::size_t row, std::size_t col) const {
  TSC_DCHECK(row < rows() && col < cols());
  double value = 0.0;
  for (const Coefficient& c : rows_[row]) {
    value += c.value * HaarBasisValue(padded_length_, c.index, col);
  }
  return value;
}

std::uint64_t HaarModel::CompressedBytes() const {
  // k coefficients per row, each a b-byte value plus a 4-byte index.
  std::uint64_t coeffs = 0;
  for (const auto& row : rows_) coeffs += row.size();
  return coeffs * (bytes_per_value_ + 4);
}

StatusOr<HaarModel> BuildHaarModel(RowSource* source, std::size_t k) {
  const std::size_t n = source->rows();
  const std::size_t m = source->cols();
  if (n == 0 || m == 0) return Status::InvalidArgument("empty source");
  if (k == 0) return Status::InvalidArgument("k must be positive");
  const std::size_t padded = NextPowerOfTwo(m);
  k = std::min(k, padded);

  std::vector<std::vector<HaarModel::Coefficient>> rows;
  rows.reserve(n);
  std::vector<double> row(m);
  TSC_RETURN_IF_ERROR(source->Reset());
  for (;;) {
    TSC_ASSIGN_OR_RETURN(const bool has_row, source->NextRow(row));
    if (!has_row) break;
    std::vector<double> padded_row(padded, 0.0);
    std::copy(row.begin(), row.end(), padded_row.begin());
    const std::vector<double> coeffs = HaarForward(std::move(padded_row));
    BoundedTopHeap<double, HaarModel::Coefficient> top(k);
    for (std::size_t idx = 0; idx < coeffs.size(); ++idx) {
      top.Offer(std::abs(coeffs[idx]),
                HaarModel::Coefficient{static_cast<std::uint32_t>(idx),
                                       coeffs[idx]});
    }
    std::vector<HaarModel::Coefficient> kept;
    kept.reserve(k);
    for (const auto& entry : top.TakeSortedDescending()) {
      kept.push_back(entry.value);
    }
    rows.push_back(std::move(kept));
  }
  return HaarModel(std::move(rows), m, padded);
}

}  // namespace tsc
