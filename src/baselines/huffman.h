#ifndef TSC_BASELINES_HUFFMAN_H_
#define TSC_BASELINES_HUFFMAN_H_

#include <cstdint>
#include <span>
#include <vector>

#include "util/status.h"

namespace tsc {

/// Canonical Huffman coder over bytes. Combined with the LZSS stage it
/// makes the lossless reference point a faithful gzip analogue
/// (gzip = LZ77 + Huffman); also usable standalone for entropy-skewed
/// streams.
///
/// Stream format: u64 original byte count, 256 x u8 code lengths
/// (canonical codes are reconstructed from lengths alone), then the
/// packed bit stream.
std::vector<std::uint8_t> HuffmanCompress(std::span<const std::uint8_t> input);

StatusOr<std::vector<std::uint8_t>> HuffmanDecompress(
    std::span<const std::uint8_t> input);

/// gzip-analogue pipeline: LZSS then Huffman. Lossless; no random access.
std::vector<std::uint8_t> DeflateLikeCompress(
    std::span<const std::uint8_t> input);
StatusOr<std::vector<std::uint8_t>> DeflateLikeDecompress(
    std::span<const std::uint8_t> input);

}  // namespace tsc

#endif  // TSC_BASELINES_HUFFMAN_H_
