#include "baselines/dct.h"

#include <cmath>

#include "util/logging.h"

namespace tsc {
namespace {

double Alpha(std::size_t f, std::size_t m) {
  return f == 0 ? std::sqrt(1.0 / static_cast<double>(m))
                : std::sqrt(2.0 / static_cast<double>(m));
}

}  // namespace

DctModel::DctModel(Matrix coefficients, std::size_t num_cols)
    : coefficients_(std::move(coefficients)), num_cols_(num_cols) {
  TSC_CHECK_LE(coefficients_.cols(), num_cols_);
}

double DctModel::ReconstructCell(std::size_t row, std::size_t col) const {
  TSC_DCHECK(row < rows() && col < cols());
  const std::span<const double> coeffs = coefficients_.Row(row);
  const double m = static_cast<double>(num_cols_);
  double value = 0.0;
  for (std::size_t f = 0; f < coeffs.size(); ++f) {
    value += Alpha(f, num_cols_) * coeffs[f] *
             std::cos(M_PI * (static_cast<double>(col) + 0.5) *
                      static_cast<double>(f) / m);
  }
  return value;
}

void DctModel::ReconstructRow(std::size_t row, std::span<double> out) const {
  TSC_CHECK_EQ(out.size(), cols());
  const std::span<const double> coeffs = coefficients_.Row(row);
  const double m = static_cast<double>(num_cols_);
  for (std::size_t j = 0; j < num_cols_; ++j) {
    double value = 0.0;
    for (std::size_t f = 0; f < coeffs.size(); ++f) {
      value += Alpha(f, num_cols_) * coeffs[f] *
               std::cos(M_PI * (static_cast<double>(j) + 0.5) *
                        static_cast<double>(f) / m);
    }
    out[j] = value;
  }
}

std::uint64_t DctModel::CompressedBytes() const {
  return static_cast<std::uint64_t>(rows()) * k() * bytes_per_value_;
}

std::vector<double> DctForward(std::span<const double> in) {
  const std::size_t m = in.size();
  std::vector<double> out(m, 0.0);
  for (std::size_t f = 0; f < m; ++f) {
    double total = 0.0;
    for (std::size_t j = 0; j < m; ++j) {
      total += in[j] * std::cos(M_PI * (static_cast<double>(j) + 0.5) *
                                static_cast<double>(f) /
                                static_cast<double>(m));
    }
    out[f] = Alpha(f, m) * total;
  }
  return out;
}

std::vector<double> DctInverse(std::span<const double> coefficients) {
  const std::size_t m = coefficients.size();
  std::vector<double> out(m, 0.0);
  for (std::size_t j = 0; j < m; ++j) {
    double total = 0.0;
    for (std::size_t f = 0; f < m; ++f) {
      total += Alpha(f, m) * coefficients[f] *
               std::cos(M_PI * (static_cast<double>(j) + 0.5) *
                        static_cast<double>(f) / static_cast<double>(m));
    }
    out[j] = total;
  }
  return out;
}

Matrix Dct2dForward(const Matrix& x) {
  // Separable: transform every row, then every column of the result.
  Matrix row_pass(x.rows(), x.cols());
  for (std::size_t i = 0; i < x.rows(); ++i) {
    const std::vector<double> coeffs =
        DctForward(std::span<const double>(x.Row(i).data(), x.cols()));
    std::copy(coeffs.begin(), coeffs.end(), row_pass.Row(i).begin());
  }
  Matrix out(x.rows(), x.cols());
  std::vector<double> column(x.rows());
  for (std::size_t j = 0; j < x.cols(); ++j) {
    for (std::size_t i = 0; i < x.rows(); ++i) column[i] = row_pass(i, j);
    const std::vector<double> coeffs = DctForward(column);
    for (std::size_t i = 0; i < x.rows(); ++i) out(i, j) = coeffs[i];
  }
  return out;
}

Matrix Dct2dInverse(const Matrix& coefficients) {
  Matrix col_pass(coefficients.rows(), coefficients.cols());
  std::vector<double> column(coefficients.rows());
  for (std::size_t j = 0; j < coefficients.cols(); ++j) {
    for (std::size_t i = 0; i < coefficients.rows(); ++i) {
      column[i] = coefficients(i, j);
    }
    const std::vector<double> values = DctInverse(column);
    for (std::size_t i = 0; i < coefficients.rows(); ++i) {
      col_pass(i, j) = values[i];
    }
  }
  Matrix out(coefficients.rows(), coefficients.cols());
  for (std::size_t i = 0; i < coefficients.rows(); ++i) {
    const std::vector<double> values = DctInverse(
        std::span<const double>(col_pass.Row(i).data(), col_pass.cols()));
    std::copy(values.begin(), values.end(), out.Row(i).begin());
  }
  return out;
}

Matrix Dct2dTruncatedReconstruction(const Matrix& x, std::size_t rows_kept,
                                    std::size_t cols_kept) {
  TSC_CHECK_LE(rows_kept, x.rows());
  TSC_CHECK_LE(cols_kept, x.cols());
  Matrix coefficients = Dct2dForward(x);
  for (std::size_t i = 0; i < x.rows(); ++i) {
    for (std::size_t j = 0; j < x.cols(); ++j) {
      if (i >= rows_kept || j >= cols_kept) coefficients(i, j) = 0.0;
    }
  }
  return Dct2dInverse(coefficients);
}

StatusOr<DctModel> BuildDctModel(RowSource* source, std::size_t k) {
  const std::size_t n = source->rows();
  const std::size_t m = source->cols();
  if (n == 0 || m == 0) return Status::InvalidArgument("empty source");
  if (k == 0) return Status::InvalidArgument("k must be positive");
  k = std::min(k, m);

  // Precompute the cosine basis for the k retained frequencies so the
  // build is O(N * M * k) instead of trig-bound.
  Matrix basis(k, m);
  for (std::size_t f = 0; f < k; ++f) {
    const double alpha = Alpha(f, m);
    for (std::size_t j = 0; j < m; ++j) {
      basis(f, j) = alpha * std::cos(M_PI * (static_cast<double>(j) + 0.5) *
                                     static_cast<double>(f) /
                                     static_cast<double>(m));
    }
  }

  Matrix coefficients(n, k);
  std::vector<double> row(m);
  TSC_RETURN_IF_ERROR(source->Reset());
  for (std::size_t i = 0;; ++i) {
    TSC_ASSIGN_OR_RETURN(const bool has_row, source->NextRow(row));
    if (!has_row) break;
    if (i >= n) return Status::Internal("source grew during build");
    for (std::size_t f = 0; f < k; ++f) {
      double total = 0.0;
      const std::span<const double> brow = basis.Row(f);
      for (std::size_t j = 0; j < m; ++j) total += row[j] * brow[j];
      coefficients(i, f) = total;
    }
  }
  return DctModel(std::move(coefficients), m);
}

}  // namespace tsc
