#ifndef TSC_BASELINES_CLUSTERING_H_
#define TSC_BASELINES_CLUSTERING_H_

#include <cstdint>
#include <vector>

#include "core/compressed_store.h"
#include "linalg/matrix.h"
#include "util/rng.h"
#include "util/status.h"

namespace tsc {

/// The vector-quantization baseline of Section 2.2: each sequence is
/// represented by its cluster's centroid; reconstruction of cell (i, j)
/// returns entry j of sequence i's representative.
class ClusterModel : public CompressedStore {
 public:
  ClusterModel() = default;
  ClusterModel(Matrix centroids, std::vector<std::uint32_t> assignment);

  std::size_t rows() const override { return assignment_.size(); }
  std::size_t cols() const override { return centroids_.cols(); }
  std::size_t num_clusters() const { return centroids_.rows(); }

  double ReconstructCell(std::size_t row, std::size_t col) const override;
  void ReconstructRow(std::size_t row, std::span<double> out) const override;

  /// The paper's accounting: (b * k * M) for the centroids plus (N * b)
  /// for the per-sequence cluster references.
  std::uint64_t CompressedBytes() const override;
  std::string MethodName() const override { return method_name_; }

  void set_method_name(std::string name) { method_name_ = std::move(name); }
  void set_bytes_per_value(std::size_t b) { bytes_per_value_ = b; }

  const Matrix& centroids() const { return centroids_; }
  const std::vector<std::uint32_t>& assignment() const { return assignment_; }

 private:
  Matrix centroids_;  ///< num_clusters x M
  std::vector<std::uint32_t> assignment_;
  std::size_t bytes_per_value_ = 8;
  std::string method_name_ = "hc";
};

/// Linkage rules for agglomerative clustering. The paper's off-the-shelf
/// 'S' configuration ("the element-to-cluster distance is the maximum
/// distance between the element and the members of the cluster") is
/// complete linkage, our default; the others feed the linkage ablation.
enum class Linkage {
  kComplete,
  kSingle,
  kAverage,
};

/// Agglomerative hierarchical clustering over the rows of `data`, cut at
/// `num_clusters`. Euclidean metric, O(N^2) memory and time via the
/// nearest-neighbor-chain algorithm — quadratic exactly like the paper's
/// tool, which "could not scale up beyond N = 3000".
StatusOr<ClusterModel> BuildHierarchicalClusterModel(
    const Matrix& data, std::size_t num_clusters,
    Linkage linkage = Linkage::kComplete);

/// Lloyd's k-means with k-means++ seeding: the scalable-clustering
/// comparison point discussed (and dismissed for quality) in Section 2.2.
struct KMeansOptions {
  std::size_t num_clusters = 8;
  std::size_t max_iterations = 50;
  std::uint64_t seed = 1;
};
StatusOr<ClusterModel> BuildKMeansClusterModel(const Matrix& data,
                                               const KMeansOptions& options);

/// Number of clusters that fits a given space budget (inverts the
/// paper's (b*k*M) + (N*b) formula). Returns 0 when nothing fits.
std::size_t ClustersForBudget(std::size_t num_rows, std::size_t num_cols,
                              std::uint64_t budget_bytes,
                              std::size_t bytes_per_value = 8);

}  // namespace tsc

#endif  // TSC_BASELINES_CLUSTERING_H_
