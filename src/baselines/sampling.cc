#include "baselines/sampling.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"
#include "util/stats.h"

namespace tsc {

SamplingEstimator::SamplingEstimator(const Matrix* data, double fraction,
                                     std::uint64_t seed)
    : data_(data), fraction_(fraction) {
  TSC_CHECK_GT(fraction, 0.0);
  TSC_CHECK_LE(fraction, 1.0);
  const std::size_t n = data_->rows();
  const std::size_t count = std::min<std::size_t>(
      n, static_cast<std::size_t>(
             std::ceil(fraction * static_cast<double>(n))));
  Rng rng(seed);
  sampled_rows_ = rng.SampleWithoutReplacement(n, std::max<std::size_t>(count, 1));
  is_sampled_.assign(n, false);
  for (const std::size_t r : sampled_rows_) is_sampled_[r] = true;
}

StatusOr<double> SamplingEstimator::EstimateAggregate(
    const RegionQuery& query) const {
  RunningStats stats;
  std::size_t sampled_selected_rows = 0;
  for (const std::size_t i : query.row_ids) {
    if (i >= data_->rows() || !is_sampled_[i]) continue;
    ++sampled_selected_rows;
    const std::span<const double> row = data_->Row(i);
    for (const std::size_t j : query.col_ids) {
      TSC_DCHECK(j < data_->cols());
      stats.Add(row[j]);
    }
  }
  if (sampled_selected_rows == 0) {
    return Status::FailedPrecondition(
        "no sampled row intersects the query selection");
  }
  const double scale = static_cast<double>(query.row_ids.size()) /
                       static_cast<double>(sampled_selected_rows);
  switch (query.fn) {
    case AggregateFn::kSum:
      return stats.sum() * scale;
    case AggregateFn::kCount:
      return static_cast<double>(stats.count()) * scale;
    case AggregateFn::kAvg:
      return stats.mean();
    case AggregateFn::kMin:
      return stats.min();
    case AggregateFn::kMax:
      return stats.max();
    case AggregateFn::kStddev:
      return stats.stddev();
    case AggregateFn::kMedian:
      return Status::Unimplemented(
          "median over a row sample is not meaningfully scalable");
  }
  return Status::Internal("unhandled aggregate");
}

std::uint64_t SamplingEstimator::SampleBytes(
    std::size_t bytes_per_value) const {
  return static_cast<std::uint64_t>(sampled_rows_.size()) * data_->cols() *
         bytes_per_value;
}

}  // namespace tsc
