#include "baselines/clustering.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "linalg/vector_ops.h"
#include "util/logging.h"

namespace tsc {
namespace {

/// Union-find over row indices, used to apply a dendrogram cut.
class DisjointSets {
 public:
  explicit DisjointSets(std::size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }
  std::size_t Find(std::size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void Union(std::size_t a, std::size_t b) { parent_[Find(a)] = Find(b); }

 private:
  std::vector<std::size_t> parent_;
};

struct Merge {
  std::size_t a;
  std::size_t b;
  double distance;
};

double LanceWilliams(Linkage linkage, double dac, double dbc, std::size_t na,
                     std::size_t nb) {
  switch (linkage) {
    case Linkage::kComplete:
      return std::max(dac, dbc);
    case Linkage::kSingle:
      return std::min(dac, dbc);
    case Linkage::kAverage:
      return (static_cast<double>(na) * dac + static_cast<double>(nb) * dbc) /
             static_cast<double>(na + nb);
  }
  return dac;
}

ClusterModel ModelFromAssignment(const Matrix& data,
                                 std::vector<std::uint32_t> assignment,
                                 std::size_t num_clusters) {
  Matrix centroids(num_clusters, data.cols());
  std::vector<std::size_t> counts(num_clusters, 0);
  for (std::size_t i = 0; i < data.rows(); ++i) {
    const std::uint32_t c = assignment[i];
    Axpy(1.0, data.Row(i), centroids.Row(c));
    ++counts[c];
  }
  for (std::size_t c = 0; c < num_clusters; ++c) {
    if (counts[c] > 0) {
      ScaleInPlace(centroids.Row(c), 1.0 / static_cast<double>(counts[c]));
    }
  }
  return ClusterModel(std::move(centroids), std::move(assignment));
}

}  // namespace

ClusterModel::ClusterModel(Matrix centroids,
                           std::vector<std::uint32_t> assignment)
    : centroids_(std::move(centroids)), assignment_(std::move(assignment)) {
  for (const std::uint32_t c : assignment_) {
    TSC_CHECK_LT(c, centroids_.rows());
  }
}

double ClusterModel::ReconstructCell(std::size_t row, std::size_t col) const {
  TSC_DCHECK(row < rows() && col < cols());
  return centroids_(assignment_[row], col);
}

void ClusterModel::ReconstructRow(std::size_t row,
                                  std::span<double> out) const {
  TSC_CHECK_EQ(out.size(), cols());
  const std::span<const double> centroid = centroids_.Row(assignment_[row]);
  std::copy(centroid.begin(), centroid.end(), out.begin());
}

std::uint64_t ClusterModel::CompressedBytes() const {
  // (b * k * M) centroids + (N * b) cluster references (Section 5.1).
  return static_cast<std::uint64_t>(bytes_per_value_) * num_clusters() *
             cols() +
         static_cast<std::uint64_t>(rows()) * bytes_per_value_;
}

StatusOr<ClusterModel> BuildHierarchicalClusterModel(const Matrix& data,
                                                     std::size_t num_clusters,
                                                     Linkage linkage) {
  const std::size_t n = data.rows();
  if (n == 0) return Status::InvalidArgument("empty matrix");
  if (num_clusters == 0 || num_clusters > n) {
    return Status::InvalidArgument("num_clusters must be in [1, N]");
  }
  if (n > 20000) {
    // The O(N^2) distance matrix would exceed memory — the same wall the
    // paper hit with its quadratic tool (Section 5.3).
    return Status::ResourceExhausted(
        "hierarchical clustering is quadratic; N too large");
  }

  // Pairwise Euclidean distances.
  std::vector<double> dist(n * n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const double d = EuclideanDistance(data.Row(i), data.Row(j));
      dist[i * n + j] = d;
      dist[j * n + i] = d;
    }
  }

  // Nearest-neighbor-chain agglomeration: O(N^2) for reducible linkages
  // (complete, single and average all are).
  std::vector<bool> active(n, true);
  std::vector<std::size_t> cluster_size(n, 1);
  std::vector<std::size_t> chain;
  std::vector<Merge> merges;
  merges.reserve(n - 1);
  std::size_t remaining = n;

  while (remaining > 1) {
    if (chain.empty()) {
      for (std::size_t i = 0; i < n; ++i) {
        if (active[i]) {
          chain.push_back(i);
          break;
        }
      }
    }
    const std::size_t tip = chain.back();
    // Nearest active neighbor of the chain tip.
    std::size_t nearest = n;
    double best = std::numeric_limits<double>::infinity();
    for (std::size_t j = 0; j < n; ++j) {
      if (!active[j] || j == tip) continue;
      const double d = dist[tip * n + j];
      if (d < best) {
        best = d;
        nearest = j;
      }
    }
    if (chain.size() >= 2 && nearest == chain[chain.size() - 2]) {
      // Reciprocal nearest neighbors: merge tip and nearest into `tip`.
      const std::size_t a = tip;
      const std::size_t b = nearest;
      merges.push_back(Merge{a, b, best});
      for (std::size_t c = 0; c < n; ++c) {
        if (!active[c] || c == a || c == b) continue;
        const double dac = dist[a * n + c];
        const double dbc = dist[b * n + c];
        const double updated =
            LanceWilliams(linkage, dac, dbc, cluster_size[a], cluster_size[b]);
        dist[a * n + c] = updated;
        dist[c * n + a] = updated;
      }
      cluster_size[a] += cluster_size[b];
      active[b] = false;
      --remaining;
      chain.pop_back();
      chain.pop_back();
    } else {
      chain.push_back(nearest);
    }
  }

  // Cut the dendrogram: apply the n - num_clusters cheapest merges.
  std::sort(merges.begin(), merges.end(),
            [](const Merge& x, const Merge& y) {
              return x.distance < y.distance;
            });
  DisjointSets sets(n);
  for (std::size_t i = 0; i + num_clusters < n; ++i) {
    sets.Union(merges[i].a, merges[i].b);
  }
  // Densify root ids to [0, num_clusters).
  std::vector<std::uint32_t> assignment(n);
  std::vector<std::size_t> root_to_cluster(n, n);
  std::size_t next_cluster = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t root = sets.Find(i);
    if (root_to_cluster[root] == n) root_to_cluster[root] = next_cluster++;
    assignment[i] = static_cast<std::uint32_t>(root_to_cluster[root]);
  }
  TSC_CHECK_EQ(next_cluster, num_clusters);
  return ModelFromAssignment(data, std::move(assignment), num_clusters);
}

StatusOr<ClusterModel> BuildKMeansClusterModel(const Matrix& data,
                                               const KMeansOptions& options) {
  const std::size_t n = data.rows();
  const std::size_t m = data.cols();
  const std::size_t k = options.num_clusters;
  if (n == 0) return Status::InvalidArgument("empty matrix");
  if (k == 0 || k > n) {
    return Status::InvalidArgument("num_clusters must be in [1, N]");
  }
  Rng rng(options.seed);

  // k-means++ seeding.
  Matrix centroids(k, m);
  std::vector<double> min_dist2(n, std::numeric_limits<double>::infinity());
  std::size_t first = static_cast<std::size_t>(rng.UniformUint64(n));
  std::copy(data.Row(first).begin(), data.Row(first).end(),
            centroids.Row(0).begin());
  for (std::size_t c = 1; c < k; ++c) {
    double total = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double d = EuclideanDistance(data.Row(i), centroids.Row(c - 1));
      min_dist2[i] = std::min(min_dist2[i], d * d);
      total += min_dist2[i];
    }
    std::size_t chosen = n - 1;
    if (total > 0.0) {
      double target = rng.UniformDouble() * total;
      for (std::size_t i = 0; i < n; ++i) {
        target -= min_dist2[i];
        if (target <= 0.0) {
          chosen = i;
          break;
        }
      }
    } else {
      chosen = static_cast<std::size_t>(rng.UniformUint64(n));
    }
    std::copy(data.Row(chosen).begin(), data.Row(chosen).end(),
              centroids.Row(c).begin());
  }

  // Lloyd iterations.
  std::vector<std::uint32_t> assignment(n, 0);
  for (std::size_t iter = 0; iter < options.max_iterations; ++iter) {
    bool changed = false;
    for (std::size_t i = 0; i < n; ++i) {
      double best = std::numeric_limits<double>::infinity();
      std::uint32_t best_c = 0;
      for (std::size_t c = 0; c < k; ++c) {
        const double d = EuclideanDistance(data.Row(i), centroids.Row(c));
        if (d < best) {
          best = d;
          best_c = static_cast<std::uint32_t>(c);
        }
      }
      if (assignment[i] != best_c) {
        assignment[i] = best_c;
        changed = true;
      }
    }
    // Recompute centroids; reseed empty clusters to random points.
    Matrix sums(k, m);
    std::vector<std::size_t> counts(k, 0);
    for (std::size_t i = 0; i < n; ++i) {
      Axpy(1.0, data.Row(i), sums.Row(assignment[i]));
      ++counts[assignment[i]];
    }
    for (std::size_t c = 0; c < k; ++c) {
      if (counts[c] == 0) {
        const std::size_t pick = static_cast<std::size_t>(rng.UniformUint64(n));
        std::copy(data.Row(pick).begin(), data.Row(pick).end(),
                  centroids.Row(c).begin());
        changed = true;
      } else {
        for (std::size_t j = 0; j < m; ++j) {
          centroids(c, j) = sums(c, j) / static_cast<double>(counts[c]);
        }
      }
    }
    if (!changed) break;
  }

  ClusterModel model = ModelFromAssignment(data, std::move(assignment), k);
  model.set_method_name("kmeans");
  return model;
}

std::size_t ClustersForBudget(std::size_t num_rows, std::size_t num_cols,
                              std::uint64_t budget_bytes,
                              std::size_t bytes_per_value) {
  const std::uint64_t reference_cost =
      static_cast<std::uint64_t>(num_rows) * bytes_per_value;
  if (budget_bytes <= reference_cost) return 0;
  const std::uint64_t per_cluster =
      static_cast<std::uint64_t>(num_cols) * bytes_per_value;
  if (per_cluster == 0) return 0;
  const std::uint64_t k = (budget_bytes - reference_cost) / per_cluster;
  return static_cast<std::size_t>(std::min<std::uint64_t>(k, num_rows));
}

}  // namespace tsc
