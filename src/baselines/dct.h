#ifndef TSC_BASELINES_DCT_H_
#define TSC_BASELINES_DCT_H_

#include <cstddef>
#include <vector>

#include "core/compressed_store.h"
#include "linalg/matrix.h"
#include "storage/row_source.h"
#include "util/status.h"

namespace tsc {

/// The spectral baseline of Section 2.3: every row is transformed with an
/// orthonormal DCT-II and only the first k (low-frequency) coefficients
/// are kept. Chosen by the paper as the representative spectral method
/// because DCT "is very close to optimal when the data is correlated".
class DctModel : public CompressedStore {
 public:
  DctModel() = default;
  DctModel(Matrix coefficients, std::size_t num_cols);

  std::size_t rows() const override { return coefficients_.rows(); }
  std::size_t cols() const override { return num_cols_; }
  std::size_t k() const { return coefficients_.cols(); }

  /// Inverse DCT truncated to the retained coefficients: O(k) per cell.
  double ReconstructCell(std::size_t row, std::size_t col) const override;
  void ReconstructRow(std::size_t row, std::span<double> out) const override;

  /// N * k coefficients at b bytes each (Section 5.1 accounting).
  std::uint64_t CompressedBytes() const override;
  std::string MethodName() const override { return "dct"; }

  void set_bytes_per_value(std::size_t b) { bytes_per_value_ = b; }

  const Matrix& coefficients() const { return coefficients_; }

 private:
  Matrix coefficients_;  ///< N x k, row i's first k DCT-II coefficients
  std::size_t num_cols_ = 0;
  std::size_t bytes_per_value_ = 8;
};

/// Builds a DCT model keeping `k` coefficients per row; streams the
/// source in a single pass. k is clipped to the row length.
StatusOr<DctModel> BuildDctModel(RowSource* source, std::size_t k);

/// Forward orthonormal DCT-II of one signal (exposed for tests):
/// out[f] = a_f * sum_j in[j] * cos(pi * (j + 0.5) * f / M).
std::vector<double> DctForward(std::span<const double> in);

/// Exact inverse of DctForward (all coefficients).
std::vector<double> DctInverse(std::span<const double> coefficients);

/// Whole-matrix 2-D DCT — the "photograph image" treatment Section 2.3
/// explicitly calls "a bad idea ... clearly worse than doing it a row at
/// a time", because adjacent customers are unrelated, so the column
/// direction looks like white noise. Implemented (separably: row DCT
/// then column DCT) so bench/ablation can validate that claim.
Matrix Dct2dForward(const Matrix& x);

/// Exact inverse of Dct2dForward.
Matrix Dct2dInverse(const Matrix& coefficients);

/// Zeroes all but the top-left rows_kept x cols_kept low-frequency block
/// and inverts: the 2-D truncation whose footprint is
/// rows_kept * cols_kept values. Note a single-cell reconstruction from
/// this representation costs O(rows_kept * cols_kept) — far from the
/// O(k) of per-row methods, the paper's other objection.
Matrix Dct2dTruncatedReconstruction(const Matrix& x, std::size_t rows_kept,
                                    std::size_t cols_kept);

}  // namespace tsc

#endif  // TSC_BASELINES_DCT_H_
