#ifndef TSC_BASELINES_WAVELET_H_
#define TSC_BASELINES_WAVELET_H_

#include <cstdint>
#include <vector>

#include "core/compressed_store.h"
#include "linalg/matrix.h"
#include "storage/row_source.h"
#include "util/status.h"

namespace tsc {

/// The other spectral method Section 2.3 name-checks: per-row orthonormal
/// Haar wavelet transform, keeping the k LARGEST-magnitude coefficients
/// of each row (unlike DCT's fixed low-frequency prefix, wavelets earn
/// their keep by adapting which coefficients survive — good for the
/// spiky, discontinuous signals the paper says defeat Fourier methods).
///
/// Signals are zero-padded to the next power of two internally. Each
/// retained coefficient stores its index, so the paper-style space
/// accounting charges k * (b + 4) bytes per row.
class HaarModel : public CompressedStore {
 public:
  struct Coefficient {
    std::uint32_t index = 0;
    double value = 0.0;
  };

  HaarModel() = default;
  HaarModel(std::vector<std::vector<Coefficient>> rows, std::size_t num_cols,
            std::size_t padded_length);

  std::size_t rows() const override { return rows_.size(); }
  std::size_t cols() const override { return num_cols_; }
  std::size_t k() const {
    return rows_.empty() ? 0 : rows_.front().size();
  }

  /// O(k): each Haar basis function evaluates at a point in O(1).
  double ReconstructCell(std::size_t row, std::size_t col) const override;

  std::uint64_t CompressedBytes() const override;
  std::string MethodName() const override { return "haar"; }

  void set_bytes_per_value(std::size_t b) { bytes_per_value_ = b; }

 private:
  std::vector<std::vector<Coefficient>> rows_;
  std::size_t num_cols_ = 0;
  std::size_t padded_length_ = 0;
  std::size_t bytes_per_value_ = 8;
};

/// Builds a Haar model keeping the `k` largest-magnitude coefficients per
/// row; single streaming pass.
StatusOr<HaarModel> BuildHaarModel(RowSource* source, std::size_t k);

/// Forward orthonormal Haar transform of a power-of-two-length signal
/// (exposed for tests). Layout: [0] scaling coefficient, [2^l .. 2^{l+1})
/// level-l details, l = 0 coarsest.
std::vector<double> HaarForward(std::vector<double> signal);

/// Exact inverse of HaarForward.
std::vector<double> HaarInverse(std::vector<double> coefficients);

/// Value of the orthonormal Haar basis function `index` at position
/// `pos`, for signals of (power-of-two) length `length`.
double HaarBasisValue(std::size_t length, std::size_t index, std::size_t pos);

}  // namespace tsc

#endif  // TSC_BASELINES_WAVELET_H_
