#ifndef TSC_BASELINES_SAMPLING_H_
#define TSC_BASELINES_SAMPLING_H_

#include <cstdint>
#include <vector>

#include "core/query.h"
#include "linalg/matrix.h"
#include "util/rng.h"
#include "util/status.h"

namespace tsc {

/// Uniform row-sampling estimator for aggregate queries — the alternative
/// Section 5.2 mentions ("estimates of answers to aggregate queries can be
/// obtained through sampling ... simple uniform sampling performed poorly
/// compared with SVDD"). A fixed uniform sample of full rows is retained;
/// a query is answered from the sampled rows inside its selection, with
/// sum-type results scaled by the sampling rate.
///
/// Note sampling cannot answer single-cell queries at all (the cell is
/// almost surely not in the sample), which is why the paper treats it as
/// non-comparable for the main problem.
class SamplingEstimator {
 public:
  /// Samples ceil(fraction * N) distinct rows of `data` (which must
  /// outlive the estimator).
  SamplingEstimator(const Matrix* data, double fraction, std::uint64_t seed);

  /// Approximate aggregate; kSum and kCount are scaled by N_selected /
  /// n_sampled_selected, the others are computed on the sampled subset.
  /// Fails with kFailedPrecondition when no sampled row intersects the
  /// query's row selection.
  StatusOr<double> EstimateAggregate(const RegionQuery& query) const;

  /// Bytes the sample occupies: rows * M * b.
  std::uint64_t SampleBytes(std::size_t bytes_per_value = 8) const;

  std::size_t sample_size() const { return sampled_rows_.size(); }
  double fraction() const { return fraction_; }

 private:
  const Matrix* data_;
  double fraction_;
  std::vector<std::size_t> sampled_rows_;   ///< sorted
  std::vector<bool> is_sampled_;            ///< size N bitmap
};

}  // namespace tsc

#endif  // TSC_BASELINES_SAMPLING_H_
