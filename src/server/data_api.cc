#include "server/data_api.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <limits>
#include <sstream>

#include "core/query.h"
#include "cube/rollup.h"
#include "query/shard_router.h"
#include "obs/metrics.h"
#include "obs/query_context.h"
#include "util/json_writer.h"
#include "util/lite_regex.h"

namespace tsc::server {
namespace {

/// Strict signed integer parse: the whole string must be one number.
StatusOr<long long> ParseInt(const std::string& text) {
  if (text.empty()) return Status::InvalidArgument("empty number");
  errno = 0;
  char* end = nullptr;
  const long long value = std::strtoll(text.c_str(), &end, 10);
  if (errno == ERANGE) return Status::InvalidArgument("number out of range");
  if (end == text.c_str() || *end != '\0') {
    return Status::InvalidArgument("malformed number: '" +
                                   JsonWriter::Escape(text) + "'");
  }
  return value;
}

StatusOr<std::size_t> ParseIndex(const std::string& text) {
  TSC_ASSIGN_OR_RETURN(const long long value, ParseInt(text));
  if (value < 0) return Status::InvalidArgument("negative index");
  return static_cast<std::size_t>(value);
}

/// Number of distinct rows covered by a union of (possibly overlapping)
/// ranges.
std::size_t UnionCount(std::vector<IndexRange> ranges) {
  std::sort(ranges.begin(), ranges.end(),
            [](const IndexRange& a, const IndexRange& b) {
              return a.lo < b.lo;
            });
  std::size_t count = 0;
  std::size_t next_free = 0;
  bool any = false;
  for (const IndexRange& range : ranges) {
    const std::size_t lo = any ? std::max(range.lo, next_free) : range.lo;
    if (!any || range.hi >= next_free) {
      if (range.hi >= lo) count += range.hi - lo + 1;
      next_free = std::max(any ? next_free : 0, range.hi + 1);
      any = true;
    }
  }
  return count;
}

/// The bucket reduction over per-column aggregates. Exact for all four
/// group methods (see ExecuteDataRequest's doc).
double ReduceBucket(AggregateFn fn, const double* values, std::size_t n) {
  double acc = values[0];
  for (std::size_t i = 1; i < n; ++i) {
    switch (fn) {
      case AggregateFn::kSum:
      case AggregateFn::kAvg:
        acc += values[i];
        break;
      case AggregateFn::kMin:
        acc = std::min(acc, values[i]);
        break;
      case AggregateFn::kMax:
        acc = std::max(acc, values[i]);
        break;
      default:
        break;
    }
  }
  if (fn == AggregateFn::kAvg) acc /= static_cast<double>(n);
  return acc;
}

/// Union of (possibly overlapping) request ranges as sorted disjoint
/// hierarchy runs. Overlaps merge so every row counts once — the same
/// dedup the per-column SQL pass gets from the planner's bitmap.
std::vector<IdRange> NormalizeRowRuns(std::vector<IndexRange> ranges,
                                      std::size_t num_rows) {
  std::vector<IdRange> runs;
  if (ranges.empty()) {
    runs.push_back({0, num_rows - 1});
    return runs;
  }
  std::sort(ranges.begin(), ranges.end(),
            [](const IndexRange& a, const IndexRange& b) {
              return a.lo < b.lo;
            });
  for (const IndexRange& range : ranges) {
    if (!runs.empty() && range.lo <= runs.back().hi + 1) {
      runs.back().hi = std::max(runs.back().hi, range.hi);
    } else {
      runs.push_back({range.lo, range.hi});
    }
  }
  return runs;
}

/// Rollup fast path for the linear bucket reductions: one RegionSum per
/// output bucket — O(points * k log) total, no per-column pass at all.
/// avg divides the region sum by its exact cell count (rows * width),
/// which is algebraically what ReduceBucket over per-column averages
/// computes on the scan path.
StatusOr<DataResult> ExecuteBucketsViaRollup(const QueryExecutor& executor,
                                             const DataRequest& request) {
  static obs::Counter& rollup_hits_counter =
      obs::MetricRegistry::Default().GetCounter("agg.rollup_hits");
  static obs::Counter& agg_nodes_counter =
      obs::MetricRegistry::Default().GetCounter("agg.nodes_read");
  const auto start = std::chrono::steady_clock::now();

  const std::vector<IdRange> row_runs =
      NormalizeRowRuns(request.rows, executor.rows());
  std::size_t rows_selected = 0;
  for (const IdRange& run : row_runs) rows_selected += run.hi - run.lo + 1;

  DataResult result;
  result.request = request;
  result.rows_selected = rows_selected;
  result.compressed_domain_aggregates = 1;
  result.data.reserve(request.points);
  const std::size_t window = request.before - request.after + 1;
  RollupStats stats;
  const AggregateHierarchy* rollup = executor.rollup();
  const ShardRouter* router = executor.router();
  for (std::size_t b = 0; b < request.points; ++b) {
    const std::size_t lo = b * window / request.points;
    const std::size_t hi = (b + 1) * window / request.points;  // exclusive
    const IdRange col_run{request.after + lo, request.after + hi - 1};
    DataPoint point;
    point.t = request.after + lo;
    point.value = rollup != nullptr
                      ? rollup->RegionSum(row_runs, {&col_run, 1}, &stats)
                      : router->RegionSum(row_runs, {&col_run, 1}, &stats);
    if (request.group == AggregateFn::kAvg) {
      point.value /= static_cast<double>(rows_selected * (hi - lo));
    }
    result.data.push_back(point);
  }
  result.exec_us = std::chrono::duration<double, std::micro>(
                       std::chrono::steady_clock::now() - start)
                       .count();
  rollup_hits_counter.Increment();
  obs::ChargeRollupHit();
  agg_nodes_counter.Add(stats.nodes_read);
  obs::ChargeAggNodesRead(stats.nodes_read);
  return result;
}

}  // namespace

StatusOr<std::vector<IndexRange>> ParseRowsParam(const std::string& text,
                                                 std::size_t num_rows,
                                                 std::size_t max_ranges) {
  std::vector<IndexRange> ranges;
  std::stringstream stream(text);
  std::string piece;
  while (std::getline(stream, piece, ',')) {
    if (ranges.size() >= max_ranges) {
      return Status::InvalidArgument("too many row ranges");
    }
    IndexRange range;
    const std::size_t colon = piece.find(':');
    if (colon == std::string::npos) {
      TSC_ASSIGN_OR_RETURN(range.lo, ParseIndex(piece));
      range.hi = range.lo;
    } else {
      TSC_ASSIGN_OR_RETURN(range.lo, ParseIndex(piece.substr(0, colon)));
      TSC_ASSIGN_OR_RETURN(range.hi, ParseIndex(piece.substr(colon + 1)));
    }
    if (range.lo > range.hi) {
      return Status::InvalidArgument("row range lo > hi");
    }
    if (range.hi >= num_rows) {
      return Status::InvalidArgument("row index out of range");
    }
    ranges.push_back(range);
  }
  if (ranges.empty()) return Status::InvalidArgument("empty rows selection");
  return ranges;
}

StatusOr<DataRequest> ResolveDataRequest(
    const std::map<std::string, std::string>& params, std::size_t num_rows,
    std::size_t num_cols, const DataApiLimits& limits,
    const std::vector<std::string>* row_keys) {
  static const std::string kEmpty;
  if (num_cols == 0 || num_rows == 0) {
    return Status::FailedPrecondition("empty matrix");
  }
  DataRequest request;
  const long long last = static_cast<long long>(num_cols) - 1;

  // before: absolute column, or <= 0 relative to the newest column.
  long long before = last;
  if (auto it = params.find("before"); it != params.end()) {
    TSC_ASSIGN_OR_RETURN(const long long raw, ParseInt(it->second));
    before = raw > 0 ? raw : last + raw;
  }
  if (before < 0 || before > last) {
    return Status::InvalidArgument("before outside the column range");
  }

  // after: absolute column, or < 0 meaning "-after columns ending at
  // before" (clamped at column 0, netdata-style).
  long long after = 0;
  if (auto it = params.find("after"); it != params.end()) {
    TSC_ASSIGN_OR_RETURN(const long long raw, ParseInt(it->second));
    after = raw >= 0 ? raw : std::max<long long>(0, before + raw + 1);
  }
  if (after > before) {
    return Status::InvalidArgument("after is past before");
  }
  request.after = static_cast<std::size_t>(after);
  request.before = static_cast<std::size_t>(before);
  const std::size_t window = request.before - request.after + 1;

  // points: output bucket count, capped and clamped to the window.
  std::size_t points = 0;  // 0 = one point per column
  if (auto it = params.find("points"); it != params.end()) {
    TSC_ASSIGN_OR_RETURN(points, ParseIndex(it->second));
    if (points > limits.max_points) {
      return Status::InvalidArgument("points exceeds the server cap");
    }
  }
  if (points == 0 || points > window) points = window;
  if (points > limits.max_points) {
    return Status::InvalidArgument(
        "window too wide; pass points= to downsample");
  }
  request.points = points;

  // group: the bucket reduction method.
  if (auto it = params.find("group"); it != params.end()) {
    TSC_ASSIGN_OR_RETURN(request.group, ParseAggregateFn(it->second));
    if (request.group != AggregateFn::kAvg &&
        request.group != AggregateFn::kMin &&
        request.group != AggregateFn::kMax &&
        request.group != AggregateFn::kSum) {
      return Status::InvalidArgument("group must be avg, min, max or sum");
    }
  }

  // rows: selection, default everything. A leading '~' switches from
  // index ranges to a key-regex over the server's row-key map.
  if (auto it = params.find("rows"); it != params.end()) {
    if (!it->second.empty() && it->second.front() == '~') {
      if (row_keys == nullptr || row_keys->empty()) {
        return Status::InvalidArgument(
            "rows=~pattern needs a row-key map (serve with --keys or "
            "synthetic keys)");
      }
      if (row_keys->size() < num_rows) {
        return Status::FailedPrecondition("row-key map shorter than matrix");
      }
      TSC_ASSIGN_OR_RETURN(request.rows,
                           ResolveRowsPattern(it->second.substr(1),
                                              *row_keys, num_rows));
      // The coalesced match ranges are bounded by the row count, not
      // max_ranges: capping them would silently drop matched rows.
    } else {
      TSC_ASSIGN_OR_RETURN(
          request.rows,
          ParseRowsParam(it->second, num_rows, limits.max_ranges));
    }
  }
  return request;
}

StatusOr<std::vector<IndexRange>> ResolveRowsPattern(
    const std::string& pattern, const std::vector<std::string>& row_keys,
    std::size_t num_rows) {
  constexpr std::size_t kMaxPatternBytes = 256;
  static obs::Counter& rows_matched =
      obs::MetricRegistry::Default().GetCounter("query.rows_matched");
  if (pattern.empty()) return Status::InvalidArgument("empty rows pattern");
  if (pattern.size() > kMaxPatternBytes) {
    return Status::InvalidArgument("rows pattern too long");
  }
  // LiteRegex, not std::regex: patterns come off the wire, and a
  // backtracking engine lets a short catastrophic pattern (`(a+)+$`)
  // pin a worker thread while it holds an admission permit. LiteRegex
  // matching is linear in key bytes no matter the pattern.
  auto compiled = LiteRegex::Compile(pattern);
  if (!compiled.ok()) {
    return Status::InvalidArgument("malformed rows pattern: '" +
                                   JsonWriter::Escape(pattern) +
                                   "': " + compiled.status().message());
  }
  LiteRegex regex = std::move(*compiled);
  // Only the first num_rows keys name real rows; surplus keys in an
  // oversized map must not mint out-of-range indices.
  const std::size_t limit = std::min(row_keys.size(), num_rows);
  std::vector<IndexRange> ranges;
  std::uint64_t matched = 0;
  for (std::size_t i = 0; i < limit; ++i) {
    if (!regex.Search(row_keys[i])) continue;
    ++matched;
    if (!ranges.empty() && ranges.back().hi + 1 == i) {
      ranges.back().hi = i;  // extend the run
    } else {
      ranges.push_back(IndexRange{i, i});
    }
  }
  rows_matched.Add(matched);
  if (ranges.empty()) {
    return Status::InvalidArgument("rows pattern matched no keys");
  }
  return ranges;
}

StatusOr<DataResult> ExecuteDataRequest(const QueryExecutor& executor,
                                        const DataRequest& request) {
  // Linear bucket reductions resolve straight from the aggregate
  // hierarchy when the executor has one — or, behind a ShardRouter,
  // from the per-shard hierarchies merged in shard order; min/max are
  // not linear in the cells and stay on the scan path, byte-identical
  // to before.
  const bool rollup_ready =
      executor.rollup() != nullptr ||
      (executor.router() != nullptr && executor.router()->rollup_enabled());
  if (rollup_ready && (request.group == AggregateFn::kSum ||
                       request.group == AggregateFn::kAvg)) {
    return ExecuteBucketsViaRollup(executor, request);
  }
  // One per-column aggregate pass phrased in the query language, so the
  // planner can route sum/avg through the compressed domain.
  std::ostringstream sql;
  sql << "SELECT " << AggregateFnName(request.group) << "(value) WHERE ";
  if (!request.rows.empty()) {
    sql << "row IN ";
    for (std::size_t i = 0; i < request.rows.size(); ++i) {
      if (i > 0) sql << ",";
      sql << request.rows[i].lo << ":" << request.rows[i].hi;
    }
    sql << " AND ";
  }
  sql << "col IN " << request.after << ":" << request.before
      << " GROUP BY col";
  TSC_ASSIGN_OR_RETURN(const QueryResult per_col,
                       executor.Execute(sql.str()));
  const std::size_t window = request.before - request.after + 1;
  if (per_col.values.size() != window) {
    return Status::Internal("per-column pass returned wrong group count");
  }

  DataResult result;
  result.request = request;
  result.rows_selected =
      request.rows.empty() ? executor.rows() : UnionCount(request.rows);
  result.exec_us = per_col.exec_us;
  result.compressed_domain_aggregates = per_col.compressed_domain_aggregates;
  result.data.reserve(request.points);
  for (std::size_t b = 0; b < request.points; ++b) {
    const std::size_t lo = b * window / request.points;
    const std::size_t hi = (b + 1) * window / request.points;  // exclusive
    DataPoint point;
    point.t = request.after + lo;
    point.value =
        ReduceBucket(request.group, per_col.values.data() + lo, hi - lo);
    result.data.push_back(point);
  }
  return result;
}

std::string DataResultToJson(const DataResult& result) {
  JsonWriter json;
  json.BeginObject();
  json.KV("api", std::uint64_t{1});
  json.KV("after", static_cast<std::uint64_t>(result.request.after));
  json.KV("before", static_cast<std::uint64_t>(result.request.before));
  json.KV("points", static_cast<std::uint64_t>(result.request.points));
  json.KV("group", AggregateFnName(result.request.group));
  json.KV("rows_selected", static_cast<std::uint64_t>(result.rows_selected));
  json.KV("compressed_domain_aggregates",
          result.compressed_domain_aggregates);
  json.Key("labels").BeginArray();
  json.Value("t").Value("value");
  json.EndArray();
  json.Key("data").BeginArray();
  for (const DataPoint& point : result.data) {
    json.BeginArray();
    json.Value(static_cast<std::uint64_t>(point.t)).Value(point.value);
    json.EndArray();
  }
  json.EndArray();
  json.EndObject();
  return json.str();
}

std::string DataResultToCsv(const DataResult& result) {
  std::ostringstream out;
  out << "t,value\n";
  for (const DataPoint& point : result.data) {
    out << point.t << "," << point.value << "\n";
  }
  return out.str();
}

}  // namespace tsc::server
