#include "server/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <sstream>

#include "linalg/kernels.h"
#include "obs/metrics.h"
#include "obs/prometheus.h"
#include "obs/snapshot.h"
#include "util/json_writer.h"
#include "util/thread_pool.h"

namespace tsc::server {
namespace {

using Clock = std::chrono::steady_clock;

constexpr int kPollMs = 100;        ///< listener stop-poll cadence
constexpr int kClientRecvMs = 200;  ///< client read slice (stop-poll)
constexpr std::uint64_t kMaxTimeoutMs = 60'000;

std::string JsonError(std::string_view message) {
  JsonWriter json;
  json.BeginObject();
  json.KV("error", message);
  json.EndObject();
  return json.str();
}

/// Maps a Status from parsing/planning to the HTTP layer: every bad
/// request shape is the client's fault.
int StatusToHttp(const Status& status) {
  switch (status.code()) {
    case StatusCode::kInvalidArgument:
    case StatusCode::kOutOfRange:
    case StatusCode::kNotFound:
      return 400;
    default:
      return 500;
  }
}

obs::Histogram& EndpointLatency(const std::string& endpoint) {
  return obs::MetricRegistry::Default().GetHistogram("server.latency_us." +
                                                     endpoint);
}

double MicrosSince(Clock::time_point start) {
  return std::chrono::duration<double, std::micro>(Clock::now() - start)
      .count();
}

/// The SLO/slowlog endpoint tag for a request path.
std::string EndpointTag(const std::string& path) {
  if (path == "/api/v1/data") return "data";
  if (path == "/api/v1/query") return "query";
  if (path == "/api/v1/cell") return "cell";
  return "other";
}

/// An incoming X-Trace-Id is honored when it looks like a trace id
/// (short, alphanumeric plus -_), so callers can stitch our spans into
/// their own traces; anything else gets a fresh id.
bool SaneTraceId(const std::string& id) {
  if (id.empty() || id.size() > 64) return false;
  for (const char c : id) {
    const bool ok = (c >= '0' && c <= '9') || (c >= 'a' && c <= 'z') ||
                    (c >= 'A' && c <= 'Z') || c == '-' || c == '_';
    if (!ok) return false;
  }
  return true;
}

/// Rebuilds the request line for the slow-query log from the parsed
/// request (the raw target is not retained past parsing).
std::string RequestLine(const HttpRequest& request) {
  std::string line = request.method + " " + request.path;
  char sep = '?';
  for (const auto& [key, value] : request.params) {
    line += sep;
    line += key;
    line += '=';
    line += value;
    sep = '&';
  }
  return line;
}

/// k=v cost vector plus the process SIMD tier for X-Query-Cost.
std::string CostHeaderValue(const obs::QueryCostVector& costs) {
  return costs.ToKvString() + " simd=" +
         kernels::SimdLevelName(kernels::ActiveSimdLevel());
}

void SetRecvTimeout(int fd, int millis) {
  timeval tv{};
  tv.tv_sec = millis / 1000;
  tv.tv_usec = (millis % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
}

}  // namespace

QueryServer::QueryServer(const QueryExecutor* executor,
                         const CompressedStore* store,
                         const ServerOptions& options)
    : executor_(executor), options_(options) {
  AdmissionController::Options admission;
  admission.max_concurrent = options_.max_concurrent > 0
                                 ? options_.max_concurrent
                                 : ThreadPool::HardwareThreads();
  admission.max_queue = options_.max_queue;
  admission_ = std::make_unique<AdmissionController>(admission);
  CellBatcher::Options batcher;
  batcher.max_batch = options_.batch_max;
  batcher.window = std::chrono::microseconds(options_.batch_window_us);
  batcher_ = std::make_unique<CellBatcher>(store, batcher);
  slowlog_ = std::make_unique<obs::SlowQueryLog>(options_.slowlog_capacity);
  obs::SloTracker::Options slo;
  slo.window_seconds = options_.slo_window_s;
  slo.latency_budget_us = options_.slo_latency_budget_us;
  slo.objective = options_.slo_objective;
  slo_ = std::make_unique<obs::SloTracker>(slo);
  start_time_ = Clock::now();
}

QueryServer::~QueryServer() { Stop(); }

Status QueryServer::Start() {
  if (running_.load()) return Status::FailedPrecondition("already running");
  stopping_.store(false);

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return Status::IoError("socket() failed");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  if (::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::InvalidArgument("invalid bind address: " +
                                   options_.bind_address);
  }
  addr.sin_port = htons(static_cast<std::uint16_t>(options_.port));
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::IoError(std::string("bind failed: ") +
                           std::strerror(errno));
  }
  if (::listen(listen_fd_, 512) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::IoError("listen failed");
  }
  socklen_t addr_len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &addr_len);
  port_ = ntohs(addr.sin_port);

  running_.store(true, std::memory_order_release);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::Ok();
}

void QueryServer::Stop() {
  if (!running_.exchange(false)) return;
  stopping_.store(true);
  admission_->Shutdown();
  if (accept_thread_.joinable()) accept_thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  {
    // Unblock reads in flight; the threads notice stopping_ and exit.
    std::lock_guard<std::mutex> lock(connections_mu_);
    for (Connection& connection : connections_) {
      if (connection.fd >= 0) ::shutdown(connection.fd, SHUT_RDWR);
    }
  }
  ReapConnections(/*all=*/true);
}

void QueryServer::AcceptLoop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    pollfd pfd{};
    pfd.fd = listen_fd_;
    pfd.events = POLLIN;
    const int ready = ::poll(&pfd, 1, kPollMs);
    ReapConnections(/*all=*/false);
    if (ready <= 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    connections_accepted_.fetch_add(1, std::memory_order_relaxed);

    std::lock_guard<std::mutex> lock(connections_mu_);
    if (connections_.size() >= options_.max_connections) {
      const std::string response = SerializeResponse(
          503, "application/json", JsonError("connection limit reached"),
          /*keep_alive=*/false);
      (void)::send(fd, response.data(), response.size(), MSG_NOSIGNAL);
      ::close(fd);
      continue;
    }
    connections_.emplace_back();
    Connection* connection = &connections_.back();
    connection->fd = fd;
    connection->thread =
        std::thread([this, connection] { ServeConnection(connection); });
  }
}

void QueryServer::ReapConnections(bool all) {
  std::list<Connection> finished;
  {
    std::lock_guard<std::mutex> lock(connections_mu_);
    for (auto it = connections_.begin(); it != connections_.end();) {
      if (all || it->done.load(std::memory_order_acquire)) {
        auto next = std::next(it);
        finished.splice(finished.end(), connections_, it);
        it = next;
      } else {
        ++it;
      }
    }
  }
  for (Connection& connection : finished) {
    if (connection.thread.joinable()) connection.thread.join();
  }
}

void QueryServer::ServeConnection(Connection* connection) {
  static obs::Counter& connections_counter =
      obs::MetricRegistry::Default().GetCounter("server.connections");
  connections_counter.Increment();
  const int fd = connection->fd;
  SetRecvTimeout(fd, kClientRecvMs);
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

  std::string buffer;
  bool keep_alive = true;
  auto last_activity = Clock::now();
  while (keep_alive && !stopping_.load(std::memory_order_acquire)) {
    // Assemble one header section, enforcing the byte cap as it grows.
    std::size_t header_end = 0;
    bool have_request = false;
    while (!stopping_.load(std::memory_order_acquire)) {
      const bool complete = FindHeaderEnd(buffer, &header_end);
      if (complete && header_end <= options_.http.max_header_bytes) {
        have_request = true;
        break;
      }
      if (complete || buffer.size() > options_.http.max_header_bytes) {
        const std::string response =
            SerializeResponse(431, "application/json",
                              JsonError("headers too large"), false);
        (void)::send(fd, response.data(), response.size(), MSG_NOSIGNAL);
        keep_alive = false;
        break;
      }
      char chunk[4096];
      const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
      if (n > 0) {
        buffer.append(chunk, static_cast<std::size_t>(n));
        last_activity = Clock::now();
        continue;
      }
      if (n == 0) {  // client closed
        keep_alive = false;
        break;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) {
        const auto idle = std::chrono::duration_cast<std::chrono::milliseconds>(
                              Clock::now() - last_activity)
                              .count();
        if (static_cast<std::uint64_t>(idle) >= options_.idle_timeout_ms) {
          keep_alive = false;  // idle keep-alive connection
          break;
        }
        continue;
      }
      keep_alive = false;  // hard socket error
      break;
    }
    if (!have_request || !keep_alive) break;

    auto request = ParseRequest(
        std::string_view(buffer).substr(0, header_end), options_.http);
    buffer.erase(0, header_end);
    std::string response;
    if (!request.ok()) {
      response = SerializeResponse(400, "application/json",
                                   JsonError(request.status().message()),
                                   /*keep_alive=*/false);
      keep_alive = false;
    } else {
      response = HandleRequest(*request);
      keep_alive = request->keep_alive;
    }
    std::size_t sent = 0;
    while (sent < response.size()) {
      const ssize_t n = ::send(fd, response.data() + sent,
                               response.size() - sent, MSG_NOSIGNAL);
      if (n <= 0) {
        if (n < 0 && (errno == EAGAIN || errno == EINTR)) continue;
        keep_alive = false;
        break;
      }
      sent += static_cast<std::size_t>(n);
    }
    last_activity = Clock::now();
  }
  ::close(fd);
  connection->done.store(true, std::memory_order_release);
}

std::string QueryServer::HandleRequest(const HttpRequest& request) {
  static obs::Counter& requests_counter =
      obs::MetricRegistry::Default().GetCounter("server.requests");
  static obs::Counter& errors_counter =
      obs::MetricRegistry::Default().GetCounter("server.http_errors");
  static obs::Counter& traced_counter =
      obs::MetricRegistry::Default().GetCounter("request.count");
  requests_counter.Increment();

  const auto started = Clock::now();
  std::string trace_id;
  if (const auto it = request.headers.find("x-trace-id");
      it != request.headers.end() && SaneTraceId(it->second)) {
    trace_id = it->second;
  } else {
    trace_id = obs::GenerateTraceId();
  }
  HeaderList extra;
  extra.emplace_back("X-Trace-Id", trace_id);

  if (request.method != "GET") {
    errors_counter.Increment();
    return SerializeResponse(405, "application/json",
                             JsonError("only GET is supported"),
                             request.keep_alive, extra);
  }

  // Control-plane endpoints bypass admission: they must answer even
  // (especially) when the query plane is saturated.
  if (request.path == "/healthz") {
    if (request.Param("verbose", "") == "1") {
      return SerializeResponse(200, "application/json",
                               HealthzVerboseJson(), request.keep_alive,
                               extra);
    }
    return SerializeResponse(200, "text/plain", "ok\n", request.keep_alive,
                             extra);
  }
  if (request.path == "/metrics") {
    const auto scrape_started = Clock::now();
    // Fold the live SLO window into slo.* gauges so every export format
    // carries it.
    slo_->PublishTo(obs::MetricRegistry::Default());
    // By value: Param returns a reference to the fallback temporary
    // when the parameter is absent, which dies at end of statement.
    const std::string format = request.Param("format", "prometheus");
    std::string body;
    std::string content_type;
    if (format == "json") {
      body = obs::TakeSnapshot().ToJson();
      content_type = "application/json";
    } else if (format == "table") {
      body = obs::TakeSnapshot().ToTable();
      content_type = "text/plain";
    } else {
      body = obs::ToPrometheusText(obs::TakeSnapshot());
      content_type = "text/plain; version=0.0.4";
    }
    EndpointLatency("metrics").Record(MicrosSince(scrape_started));
    return SerializeResponse(200, content_type, body, request.keep_alive,
                             extra);
  }
  if (request.path == "/api/v1/debug/slow") {
    const std::vector<obs::SlowQueryEntry> entries = slowlog_->Snapshot();
    if (request.Param("format", "json") == "table") {
      return SerializeResponse(200, "text/plain",
                               obs::SlowQueryLog::ToTable(entries),
                               request.keep_alive, extra);
    }
    return SerializeResponse(
        200, "application/json",
        obs::SlowQueryLog::ToJson(entries, slowlog_->capacity()),
        request.keep_alive, extra);
  }

  // Query plane: run under a request-scoped context so every storage
  // layer charges its work to this request, then fold the outcome into
  // the SLO window and the slow-query log. When instruments are off the
  // context is not installed and the whole block reduces to RouteApi.
  const bool instruments = obs::InstrumentsEnabled();
  obs::QueryContext context(trace_id);
  int status = 200;
  std::string body;
  {
    obs::ScopedQueryContext scope(instruments ? &context : nullptr);
    body = RouteApi(request, &status);
  }
  if (status >= 400) errors_counter.Increment();
  if (instruments) {
    traced_counter.Increment();
    const double latency_us = MicrosSince(started);
    const std::string endpoint = EndpointTag(request.path);
    slo_->Record(endpoint, latency_us, status);
    obs::SlowQueryEntry entry;
    entry.trace_id = trace_id;
    entry.endpoint = endpoint;
    entry.request_line = RequestLine(request);
    entry.http_status = status;
    entry.latency_us = latency_us;
    entry.costs = context.Costs();
    slowlog_->Record(std::move(entry));
    if (request.Param("debug", "") == "1" ||
        request.headers.find("x-tsc-debug") != request.headers.end()) {
      extra.emplace_back("X-Query-Cost", CostHeaderValue(context.Costs()));
    }
  }
  const bool json = !body.empty() && (body.front() == '{');
  return SerializeResponse(status, json ? "application/json" : "text/plain",
                           body, request.keep_alive, extra);
}

std::string QueryServer::HealthzVerboseJson() const {
  JsonWriter json;
  json.BeginObject();
  json.KV("status", "ok");
  json.KV("uptime_s",
          std::chrono::duration<double>(Clock::now() - start_time_).count());
  json.KV("connections_accepted", connections_accepted());
  json.KV("slowlog_recorded", slowlog_->recorded());
  json.Key("slo").BeginObject();
  json.KV("window_s", static_cast<std::uint64_t>(options_.slo_window_s));
  json.KV("latency_budget_us", options_.slo_latency_budget_us);
  json.KV("objective", options_.slo_objective);
  json.Key("endpoints").BeginArray();
  for (const obs::SloTracker::EndpointStats& stats : slo_->Snapshot()) {
    json.BeginObject();
    json.KV("endpoint", stats.endpoint);
    json.KV("count", stats.count);
    json.KV("errors", stats.errors);
    json.KV("shed", stats.shed);
    json.KV("p50_us", stats.p50_us);
    json.KV("p99_us", stats.p99_us);
    json.KV("p999_us", stats.p999_us);
    json.KV("error_rate", stats.error_rate);
    json.KV("shed_rate", stats.shed_rate);
    json.KV("burn_rate", stats.burn_rate);
    json.EndObject();
  }
  json.EndArray();
  json.EndObject();
  json.EndObject();
  return json.str();
}

std::string QueryServer::RouteApi(const HttpRequest& request,
                                  int* status_out) {
  const bool is_data = request.path == "/api/v1/data";
  const bool is_query = request.path == "/api/v1/query";
  const bool is_cell = request.path == "/api/v1/cell";
  if (!is_data && !is_query && !is_cell) {
    *status_out = 404;
    return JsonError("no such endpoint");
  }

  // Per-request deadline: the default, or a capped timeout_ms override.
  std::uint64_t timeout_ms = options_.timeout_ms;
  if (request.HasParam("timeout_ms")) {
    errno = 0;
    char* end = nullptr;
    const unsigned long long parsed = std::strtoull(
        request.Param("timeout_ms", "").c_str(), &end, 10);
    if (errno != 0 || end == nullptr || *end != '\0' || parsed == 0) {
      *status_out = 400;
      return JsonError("malformed timeout_ms");
    }
    timeout_ms = std::min<std::uint64_t>(parsed, kMaxTimeoutMs);
  }
  const auto deadline =
      Clock::now() + std::chrono::milliseconds(timeout_ms);

  static obs::Histogram& admission_wait_hist =
      obs::MetricRegistry::Default().GetHistogram(
          "request.admission_wait_us");
  AdmissionController::Permit permit;
  const auto admission_started = Clock::now();
  const AdmissionController::Outcome outcome =
      admission_->Acquire(deadline, &permit);
  const double admission_wait_us = MicrosSince(admission_started);
  admission_wait_hist.Record(admission_wait_us);
  obs::ChargeAdmissionWaitUs(
      static_cast<std::uint64_t>(admission_wait_us));
  switch (outcome) {
    case AdmissionController::Outcome::kAdmitted:
      break;
    case AdmissionController::Outcome::kRejected:
      *status_out = 429;
      return JsonError("overloaded: admission queue full");
    case AdmissionController::Outcome::kTimedOut:
      *status_out = 504;
      return JsonError("deadline exceeded while queued");
    case AdmissionController::Outcome::kShutdown:
      *status_out = 503;
      return JsonError("shutting down");
  }

  const auto started = Clock::now();
  std::string body;
  if (is_data) {
    auto resolved = ResolveDataRequest(
        request.params, executor_->rows(), executor_->cols(), options_.data,
        options_.row_keys.empty() ? nullptr : &options_.row_keys);
    if (!resolved.ok()) {
      *status_out = StatusToHttp(resolved.status());
      body = JsonError(resolved.status().message());
    } else if (auto result = ExecuteDataRequest(*executor_, *resolved);
               !result.ok()) {
      *status_out = StatusToHttp(result.status());
      body = JsonError(result.status().message());
    } else if (request.Param("format", "json") == "csv") {
      body = DataResultToCsv(*result);
    } else {
      body = DataResultToJson(*result);
    }
    EndpointLatency("data").Record(
        std::chrono::duration<double, std::micro>(Clock::now() - started)
            .count());
    return body;
  }

  if (is_query) {
    // By value: the fallback temporary dies at end of statement.
    const std::string text = request.Param("q", "");
    if (text.empty()) {
      *status_out = 400;
      return JsonError("q parameter required");
    }
    auto result = executor_->Execute(text);
    if (!result.ok()) {
      *status_out = StatusToHttp(result.status());
      body = JsonError(result.status().message());
    } else if (request.Param("format", "text") == "json") {
      JsonWriter json;
      json.BeginObject();
      json.Key("values").BeginArray();
      for (const double value : result->values) json.Value(value);
      json.EndArray();
      json.Key("group_keys").BeginArray();
      for (const std::size_t key : result->group_keys) {
        json.Value(static_cast<std::uint64_t>(key));
      }
      json.EndArray();
      json.KV("aggregate_count",
              static_cast<std::uint64_t>(result->aggregate_count));
      json.KV("rows_reconstructed", result->rows_reconstructed);
      json.KV("compressed_domain_aggregates",
              result->compressed_domain_aggregates);
      json.KV("exec_us", result->exec_us);
      json.EndObject();
      body = json.str();
    } else {
      // Byte-identical to `tsctool sql` writing to stdout: one value
      // per line under default ostream double formatting.
      std::ostringstream out;
      for (const double value : result->values) out << value << "\n";
      if (request.Param("analyze", "") == "1") out << result->AnalyzeFooter();
      body = out.str();
    }
    EndpointLatency("query").Record(
        std::chrono::duration<double, std::micro>(Clock::now() - started)
            .count());
    return body;
  }

  // /api/v1/cell
  auto row = ParseRowsParam(request.Param("row", ""), executor_->rows(), 1);
  auto col = ParseRowsParam(request.Param("col", ""), executor_->cols(), 1);
  if (!row.ok() || row->size() != 1 || (*row)[0].lo != (*row)[0].hi ||
      !col.ok() || col->size() != 1 || (*col)[0].lo != (*col)[0].hi) {
    *status_out = 400;
    return JsonError("row= and col= must each be one index");
  }
  auto value = batcher_->Fetch((*row)[0].lo, (*col)[0].lo);
  if (!value.ok()) {
    *status_out = StatusToHttp(value.status());
    body = JsonError(value.status().message());
  } else {
    JsonWriter json;
    json.BeginObject();
    json.KV("row", static_cast<std::uint64_t>((*row)[0].lo));
    json.KV("col", static_cast<std::uint64_t>((*col)[0].lo));
    json.KV("value", *value);
    json.EndObject();
    body = json.str();
  }
  EndpointLatency("cell").Record(
      std::chrono::duration<double, std::micro>(Clock::now() - started)
          .count());
  return body;
}

}  // namespace tsc::server
