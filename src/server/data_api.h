#ifndef TSC_SERVER_DATA_API_H_
#define TSC_SERVER_DATA_API_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "query/executor.h"
#include "query/parser.h"
#include "util/status.h"

namespace tsc::server {

/// Ceilings the data endpoint enforces on hostile or oversized
/// requests before any reconstruction runs.
struct DataApiLimits {
  std::size_t max_points = 4096;  ///< buckets one response may carry
  std::size_t max_ranges = 64;    ///< ranges in one rows= selection
};

/// One resolved /api/v1/data request. The time axis is the column axis:
/// `after`/`before` are inclusive column indices after resolution.
///
/// Wire parameters (netdata's data-API shapes, mapped onto columns):
///   after   first column; < 0 means "the last -after columns ending at
///           before" (after=-600&before=0 is the most recent 600 cols)
///   before  last column; <= 0 is relative to the newest column
///           (0 = newest, -5 = five columns earlier)
///   points  number of output buckets; 0 or >= window means every
///           column as-is
///   group   bucket reduction: avg (default) | min | max | sum
///   rows    row selection, e.g. "0:99,150,200:209"; or "~pattern", a
///           key regex matched against the server's row-key map
///           (netdata-style dimension patterns); default all rows
struct DataRequest {
  std::size_t after = 0;
  std::size_t before = 0;
  std::size_t points = 0;  ///< resolved bucket count (>= 1)
  AggregateFn group = AggregateFn::kAvg;
  std::vector<IndexRange> rows;  ///< empty = all rows
};

/// One output bucket: `t` is the first column of the bucket, `value`
/// the group-reduced aggregate over (selected rows) x (bucket columns).
struct DataPoint {
  std::size_t t = 0;
  double value = 0.0;
};

struct DataResult {
  DataRequest request;              ///< resolved window and options
  std::size_t rows_selected = 0;
  std::vector<DataPoint> data;
  double exec_us = 0.0;
  std::uint64_t compressed_domain_aggregates = 0;
};

/// Parses a rows= selection ("0:99,150") into ranges under the caps:
/// at most `max_ranges` ranges, indices < `num_rows`, lo <= hi, no
/// trailing garbage. Everything else is an InvalidArgument.
StatusOr<std::vector<IndexRange>> ParseRowsParam(const std::string& text,
                                                 std::size_t num_rows,
                                                 std::size_t max_ranges);

/// Resolves a `rows=~pattern` key regex against the row-key map:
/// `pattern` (LiteRegex — a linear-time ECMAScript subset, searched
/// anywhere in the key, capped at 256 bytes) selects every row whose
/// key matches; consecutive matches coalesce into ranges. Only the
/// first `num_rows` keys are consulted, so an oversized key map cannot
/// produce out-of-range indices. Matches count into the
/// `query.rows_matched` counter. Zero matches and invalid patterns are
/// InvalidArgument.
StatusOr<std::vector<IndexRange>> ResolveRowsPattern(
    const std::string& pattern, const std::vector<std::string>& row_keys,
    std::size_t num_rows);

/// Resolves the wire parameters against the executor's matrix shape.
/// `row_keys` (one key per row, may be nullptr) enables the
/// `rows=~pattern` form; index selections never need it.
StatusOr<DataRequest> ResolveDataRequest(
    const std::map<std::string, std::string>& params, std::size_t num_rows,
    std::size_t num_cols, const DataApiLimits& limits,
    const std::vector<std::string>* row_keys = nullptr);

/// Runs one resolved request: a single per-column aggregate pass through
/// the executor (compressed-domain for sum/avg on SVDD models), then an
/// exact bucket reduction to `points` buckets. Exactness: sum-of-sums,
/// min-of-mins and max-of-maxes are trivially exact; the avg of a
/// rows x bucket region equals the mean of its per-column avgs because
/// every column has the same selected-row count.
StatusOr<DataResult> ExecuteDataRequest(const QueryExecutor& executor,
                                        const DataRequest& request);

/// Serializations for the wire: compact JSON (labels + [t, value]
/// pairs) and a two-column CSV.
std::string DataResultToJson(const DataResult& result);
std::string DataResultToCsv(const DataResult& result);

}  // namespace tsc::server

#endif  // TSC_SERVER_DATA_API_H_
