#include "server/http.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <cstring>
#include <sstream>

namespace tsc::server {
namespace {

int HexValue(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return 10 + (c - 'a');
  if (c >= 'A' && c <= 'F') return 10 + (c - 'A');
  return -1;
}

std::string ToLower(std::string_view text) {
  std::string out(text);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

std::string_view StripSpaces(std::string_view text) {
  while (!text.empty() && (text.front() == ' ' || text.front() == '\t')) {
    text.remove_prefix(1);
  }
  while (!text.empty() && (text.back() == ' ' || text.back() == '\t' ||
                           text.back() == '\r')) {
    text.remove_suffix(1);
  }
  return text;
}

/// Splits the query string into decoded key/value pairs under the
/// parameter cap. Repeated keys keep the first value (matching how the
/// routing code reads them: one meaning per knob).
Status ParseParams(std::string_view query, const HttpLimits& limits,
                   std::map<std::string, std::string>* out) {
  while (!query.empty()) {
    const std::size_t amp = query.find('&');
    const std::string_view pair =
        amp == std::string_view::npos ? query : query.substr(0, amp);
    query.remove_prefix(amp == std::string_view::npos ? query.size()
                                                      : amp + 1);
    if (pair.empty()) continue;
    if (out->size() >= limits.max_params) {
      return Status::InvalidArgument("too many query parameters");
    }
    const std::size_t eq = pair.find('=');
    TSC_ASSIGN_OR_RETURN(
        std::string key,
        UrlDecode(eq == std::string_view::npos ? pair : pair.substr(0, eq)));
    TSC_ASSIGN_OR_RETURN(std::string value,
                         UrlDecode(eq == std::string_view::npos
                                       ? std::string_view()
                                       : pair.substr(eq + 1)));
    out->emplace(std::move(key), std::move(value));
  }
  return Status::Ok();
}

}  // namespace

bool FindHeaderEnd(std::string_view buffer, std::size_t* end) {
  const std::size_t crlf = buffer.find("\r\n\r\n");
  const std::size_t lf = buffer.find("\n\n");
  if (crlf == std::string_view::npos && lf == std::string_view::npos) {
    return false;
  }
  if (crlf != std::string_view::npos && (lf == std::string_view::npos ||
                                         crlf < lf)) {
    *end = crlf + 4;
  } else {
    *end = lf + 2;
  }
  return true;
}

StatusOr<std::string> UrlDecode(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (c == '+') {
      out.push_back(' ');
    } else if (c == '%') {
      if (i + 2 >= text.size()) {
        return Status::InvalidArgument("truncated percent escape");
      }
      const int hi = HexValue(text[i + 1]);
      const int lo = HexValue(text[i + 2]);
      if (hi < 0 || lo < 0) {
        return Status::InvalidArgument("bad percent escape");
      }
      const char decoded = static_cast<char>((hi << 4) | lo);
      if (decoded == '\0') {
        return Status::InvalidArgument("NUL byte in escape");
      }
      out.push_back(decoded);
      i += 2;
    } else if (c == '\0') {
      return Status::InvalidArgument("NUL byte in component");
    } else {
      out.push_back(c);
    }
  }
  return out;
}

StatusOr<HttpRequest> ParseRequest(std::string_view text,
                                   const HttpLimits& limits) {
  if (text.size() > limits.max_header_bytes) {
    return Status::InvalidArgument("request headers too large");
  }
  // Request line: METHOD SP target SP HTTP/1.x
  std::size_t line_end = text.find('\n');
  if (line_end == std::string_view::npos) {
    return Status::InvalidArgument("missing request line");
  }
  const std::string_view line = StripSpaces(text.substr(0, line_end));
  std::string_view rest = text.substr(line_end + 1);

  const std::size_t sp1 = line.find(' ');
  const std::size_t sp2 = line.rfind(' ');
  if (sp1 == std::string_view::npos || sp2 == sp1) {
    return Status::InvalidArgument("malformed request line");
  }
  HttpRequest request;
  request.method = std::string(line.substr(0, sp1));
  if (request.method.empty() ||
      !std::all_of(request.method.begin(), request.method.end(),
                   [](unsigned char c) { return std::isupper(c) != 0; })) {
    return Status::InvalidArgument("malformed method");
  }
  const std::string_view target =
      StripSpaces(line.substr(sp1 + 1, sp2 - sp1 - 1));
  const std::string_view version = line.substr(sp2 + 1);
  if (target.empty() || target.size() > limits.max_target_bytes) {
    return Status::InvalidArgument("bad request target");
  }
  if (version == "HTTP/1.1") {
    request.version_minor = 1;
  } else if (version == "HTTP/1.0") {
    request.version_minor = 0;
  } else {
    return Status::InvalidArgument("unsupported HTTP version");
  }

  // Split target into path + query string, decode both.
  const std::size_t qmark = target.find('?');
  TSC_ASSIGN_OR_RETURN(request.path,
                       UrlDecode(qmark == std::string_view::npos
                                     ? target
                                     : target.substr(0, qmark)));
  if (request.path.empty() || request.path.front() != '/') {
    return Status::InvalidArgument("request path must be absolute");
  }
  if (qmark != std::string_view::npos) {
    TSC_RETURN_IF_ERROR(
        ParseParams(target.substr(qmark + 1), limits, &request.params));
  }

  // Headers: "Name: value" lines until the blank terminator.
  std::size_t header_count = 0;
  while (!rest.empty()) {
    line_end = rest.find('\n');
    if (line_end == std::string_view::npos) line_end = rest.size();
    const std::string_view raw = rest.substr(0, line_end);
    rest.remove_prefix(std::min(rest.size(), line_end + 1));
    const std::string_view header = StripSpaces(raw);
    if (header.empty()) break;  // end of header section
    if (++header_count > limits.max_headers) {
      return Status::InvalidArgument("too many headers");
    }
    const std::size_t colon = header.find(':');
    if (colon == std::string_view::npos || colon == 0) {
      return Status::InvalidArgument("malformed header line");
    }
    request.headers.emplace(
        ToLower(StripSpaces(header.substr(0, colon))),
        std::string(StripSpaces(header.substr(colon + 1))));
  }

  // Connection semantics: 1.1 defaults to keep-alive, 1.0 to close.
  request.keep_alive = request.version_minor >= 1;
  if (auto it = request.headers.find("connection");
      it != request.headers.end()) {
    const std::string value = ToLower(it->second);
    if (value == "close") request.keep_alive = false;
    if (value == "keep-alive") request.keep_alive = true;
  }
  return request;
}

const char* HttpStatusText(int code) {
  switch (code) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 408: return "Request Timeout";
    case 429: return "Too Many Requests";
    case 431: return "Request Header Fields Too Large";
    case 500: return "Internal Server Error";
    case 503: return "Service Unavailable";
    case 504: return "Gateway Timeout";
    default:  return "Unknown";
  }
}

std::string SerializeResponse(int status, std::string_view content_type,
                              std::string_view body, bool keep_alive) {
  return SerializeResponse(status, content_type, body, keep_alive, {});
}

std::string SerializeResponse(int status, std::string_view content_type,
                              std::string_view body, bool keep_alive,
                              const HeaderList& extra_headers) {
  std::ostringstream out;
  out << "HTTP/1.1 " << status << ' ' << HttpStatusText(status) << "\r\n";
  if (!content_type.empty()) {
    out << "Content-Type: " << content_type << "\r\n";
  }
  out << "Content-Length: " << body.size() << "\r\n";
  out << "Connection: " << (keep_alive ? "keep-alive" : "close") << "\r\n";
  for (const auto& [name, value] : extra_headers) {
    out << name << ": " << value << "\r\n";
  }
  out << "\r\n";
  out << body;
  return out.str();
}

StatusOr<HttpGetResult> HttpGet(const std::string& host, int port,
                                const std::string& target) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Status::IoError("socket() failed");
  struct FdCloser {
    int fd;
    ~FdCloser() { ::close(fd); }
  } closer{fd};

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("bad host address: " + host);
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    return Status::IoError("connect to " + host + ":" +
                           std::to_string(port) + " failed: " +
                           std::strerror(errno));
  }

  const std::string request = "GET " + target + " HTTP/1.1\r\nHost: " + host +
                              "\r\nConnection: close\r\n\r\n";
  std::size_t sent = 0;
  while (sent < request.size()) {
    const ssize_t n =
        ::send(fd, request.data() + sent, request.size() - sent, 0);
    if (n <= 0) return Status::IoError("send failed");
    sent += static_cast<std::size_t>(n);
  }

  std::string raw;
  char chunk[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n < 0) return Status::IoError("recv failed");
    if (n == 0) break;
    raw.append(chunk, static_cast<std::size_t>(n));
  }

  std::size_t header_end = 0;
  if (!FindHeaderEnd(raw, &header_end)) {
    return Status::IoError("truncated response (no header terminator)");
  }
  HttpGetResult result;
  const std::string_view head = std::string_view(raw).substr(0, header_end);
  const std::size_t space = head.find(' ');
  if (space == std::string_view::npos) {
    return Status::IoError("malformed status line");
  }
  result.status =
      std::atoi(std::string(head.substr(space + 1, 3)).c_str());
  if (result.status < 100) return Status::IoError("malformed status line");
  result.body = raw.substr(header_end);
  return result;
}

}  // namespace tsc::server
