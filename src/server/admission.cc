#include "server/admission.h"

#include "obs/metrics.h"

namespace tsc::server {
namespace {

obs::Gauge& InflightGauge() {
  static obs::Gauge& gauge =
      obs::MetricRegistry::Default().GetGauge("server.inflight");
  return gauge;
}

obs::Gauge& QueuedGauge() {
  static obs::Gauge& gauge =
      obs::MetricRegistry::Default().GetGauge("server.queued");
  return gauge;
}

}  // namespace

void AdmissionController::Permit::Release() {
  if (controller_ != nullptr) {
    controller_->Release();
    controller_ = nullptr;
  }
}

AdmissionController::AdmissionController(const Options& options)
    : options_(options) {}

AdmissionController::Outcome AdmissionController::Acquire(
    std::chrono::steady_clock::time_point deadline, Permit* permit) {
  static obs::Counter& rejected =
      obs::MetricRegistry::Default().GetCounter("server.rejected");
  static obs::Counter& queue_timeouts =
      obs::MetricRegistry::Default().GetCounter("server.queue_timeouts");

  std::unique_lock<std::mutex> lock(mu_);
  if (shutdown_) return Outcome::kShutdown;
  if (active_ < options_.max_concurrent) {
    ++active_;
    InflightGauge().Set(static_cast<double>(active_));
    *permit = Permit(this);
    return Outcome::kAdmitted;
  }
  if (queued_ >= options_.max_queue) {
    rejected.Increment();
    return Outcome::kRejected;
  }
  ++queued_;
  QueuedGauge().Set(static_cast<double>(queued_));
  const bool got_slot = cv_.wait_until(lock, deadline, [this] {
    return shutdown_ || active_ < options_.max_concurrent;
  });
  --queued_;
  QueuedGauge().Set(static_cast<double>(queued_));
  if (shutdown_) return Outcome::kShutdown;
  if (!got_slot) {
    queue_timeouts.Increment();
    return Outcome::kTimedOut;
  }
  ++active_;
  InflightGauge().Set(static_cast<double>(active_));
  *permit = Permit(this);
  return Outcome::kAdmitted;
}

void AdmissionController::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  cv_.notify_all();
}

std::size_t AdmissionController::active() const {
  std::lock_guard<std::mutex> lock(mu_);
  return active_;
}

std::size_t AdmissionController::queued() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queued_;
}

void AdmissionController::Release() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    --active_;
    InflightGauge().Set(static_cast<double>(active_));
  }
  cv_.notify_one();
}

}  // namespace tsc::server
