#include "server/batcher.h"

#include <span>

#include "obs/metrics.h"
#include "obs/query_context.h"

namespace tsc::server {

CellBatcher::CellBatcher(const CompressedStore* store, const Options& options)
    : store_(store), options_(options) {}

StatusOr<double> CellBatcher::Fetch(std::size_t row, std::size_t col) {
  if (row >= store_->rows() || col >= store_->cols()) {
    return Status::OutOfRange("cell out of range");
  }
  static obs::Histogram& batch_size =
      obs::MetricRegistry::Default().GetHistogram("server.batch_size");

  std::unique_lock<std::mutex> lock(mu_);
  const bool leader = open_ == nullptr;
  if (leader) open_ = std::make_shared<Batch>();
  const std::shared_ptr<Batch> batch = open_;
  const std::size_t index = batch->cells.size();
  batch->cells.push_back({row, col});

  if (!leader) {
    if (batch->cells.size() >= options_.max_batch) leader_cv_.notify_all();
    batch->done_cv.wait(lock, [&] { return batch->done; });
    // Riders report the wave they rode; the leader's context absorbed
    // the wave's storage costs (it ran the reconstruction inline).
    obs::SetBatchFill(batch->values.size());
    return batch->values[index];
  }

  // Leader: hold the batch open for the window (riders arriving
  // meanwhile join it), close it, run one wave, wake everyone.
  leader_cv_.wait_for(lock, options_.window, [&] {
    return batch->cells.size() >= options_.max_batch;
  });
  open_.reset();  // later arrivals start the next batch immediately
  const std::size_t count = batch->cells.size();
  lock.unlock();

  std::vector<double> values(count);
  store_->ReconstructCells(std::span<const CellRef>(batch->cells),
                           std::span<double>(values));

  lock.lock();
  batch->values = std::move(values);
  batch->done = true;
  ++waves_;
  batched_cells_ += count;
  batch_size.Record(static_cast<double>(count));
  obs::SetBatchFill(count);
  batch->done_cv.notify_all();
  return batch->values[index];
}

std::uint64_t CellBatcher::waves() const {
  std::lock_guard<std::mutex> lock(mu_);
  return waves_;
}

std::uint64_t CellBatcher::batched_cells() const {
  std::lock_guard<std::mutex> lock(mu_);
  return batched_cells_;
}

}  // namespace tsc::server
