#ifndef TSC_SERVER_HTTP_H_
#define TSC_SERVER_HTTP_H_

#include <cstddef>
#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/status.h"

namespace tsc::server {

/// Hard ceilings on what one request may look like on the wire. The
/// parser enforces every one of them before any routing code sees the
/// request, so a hostile client cannot make the server allocate more
/// than `max_header_bytes` per request no matter what it sends.
struct HttpLimits {
  std::size_t max_header_bytes = 8192;  ///< request line + all headers
  std::size_t max_headers = 64;
  std::size_t max_params = 32;          ///< query-string key=value pairs
  std::size_t max_target_bytes = 4096;  ///< request-target (path + query)
};

/// One parsed request. Header names are lower-cased; query parameters
/// are percent-decoded. Only the pieces the query server routes on are
/// retained.
struct HttpRequest {
  std::string method;                          ///< "GET", "HEAD", ...
  std::string path;                            ///< decoded, no query string
  std::map<std::string, std::string> params;   ///< decoded query params
  std::map<std::string, std::string> headers;  ///< lower-case names
  int version_minor = 1;                       ///< HTTP/1.<minor>
  bool keep_alive = true;

  /// Parameter lookup with a default (missing key => `fallback`).
  /// Returns a reference into `params` or to `fallback` itself — when
  /// passing a temporary fallback, consume the result within the same
  /// full expression or copy it; never bind it to a reference.
  const std::string& Param(const std::string& key,
                           const std::string& fallback) const {
    auto it = params.find(key);
    return it == params.end() ? fallback : it->second;
  }
  bool HasParam(const std::string& key) const {
    return params.find(key) != params.end();
  }
};

/// Scans `buffer` for the end of the header section ("\r\n\r\n", with a
/// bare "\n\n" accepted for hand-typed clients). On success `*end` is
/// the offset one past the terminator. Returns false while more bytes
/// are needed.
bool FindHeaderEnd(std::string_view buffer, std::size_t* end);

/// Percent-decodes one URL component ('+' becomes a space). Rejects
/// truncated or non-hex escapes and embedded NUL bytes.
StatusOr<std::string> UrlDecode(std::string_view text);

/// Parses a complete header section (request line + headers, including
/// the terminating blank line) under `limits`. Any violation — unknown
/// version, oversized target, header count/byte caps, malformed
/// escapes — is an InvalidArgument the caller maps to 400.
StatusOr<HttpRequest> ParseRequest(std::string_view text,
                                   const HttpLimits& limits = {});

/// Canonical reason phrase for the status codes this server emits.
const char* HttpStatusText(int code);

/// Serializes a full response with Content-Length and Connection
/// headers. `content_type` may be empty for bodyless responses.
std::string SerializeResponse(int status, std::string_view content_type,
                              std::string_view body, bool keep_alive);

/// Extra response headers ({name, value} in emission order), e.g. the
/// X-Trace-Id every API response carries.
using HeaderList = std::vector<std::pair<std::string, std::string>>;
std::string SerializeResponse(int status, std::string_view content_type,
                              std::string_view body, bool keep_alive,
                              const HeaderList& extra_headers);

/// One blocking HTTP/1.1 GET against a local server (the `tsctool
/// slowlog` / `tsctool stats --port` client). Connects, sends the
/// request, reads a Content-Length-framed response. IoError on any
/// socket or framing failure; HTTP error statuses are returned, not
/// errors.
struct HttpGetResult {
  int status = 0;
  std::string body;
};
StatusOr<HttpGetResult> HttpGet(const std::string& host, int port,
                                const std::string& target);

}  // namespace tsc::server

#endif  // TSC_SERVER_HTTP_H_
