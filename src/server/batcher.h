#ifndef TSC_SERVER_BATCHER_H_
#define TSC_SERVER_BATCHER_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "core/compressed_store.h"
#include "util/status.h"

namespace tsc::server {

/// Coalesces concurrent single-cell probes from many connections into
/// one batched ReconstructCells wave. The first request to arrive while
/// no batch is open becomes the leader: it holds the batch open for a
/// short window (or until it fills) so concurrent requests can ride
/// along, then runs one reconstruction for the whole batch and hands
/// each rider its value. Against a disk-backed store this turns N
/// concurrent cell requests into one prefetch wave + one grouped read
/// pass instead of N independent row reads.
///
/// A lone request still pays at most `window` of added latency; under
/// concurrency the window is what buys the batching win. Thread safe.
class CellBatcher {
 public:
  struct Options {
    std::size_t max_batch = 256;  ///< execute early when full
    /// Leader's hold-open time for riders to join.
    std::chrono::microseconds window = std::chrono::microseconds(150);
  };

  /// `store` must outlive the batcher and support concurrent
  /// ReconstructCells (every store in this library does).
  CellBatcher(const CompressedStore* store, const Options& options);
  explicit CellBatcher(const CompressedStore* store)
      : CellBatcher(store, Options()) {}

  /// Blocks until the batch holding (row, col) has executed and returns
  /// the reconstructed value. Validates the coordinates first.
  StatusOr<double> Fetch(std::size_t row, std::size_t col);

  /// Reconstruction waves run so far.
  std::uint64_t waves() const;
  /// Cells served across all waves (>= waves(); the ratio is the
  /// average batch size).
  std::uint64_t batched_cells() const;

 private:
  /// One in-flight batch; riders hold a shared_ptr so a batch outlives
  /// any individual request.
  struct Batch {
    std::vector<CellRef> cells;
    std::vector<double> values;
    bool done = false;
    std::condition_variable done_cv;
  };

  const CompressedStore* store_;
  const Options options_;
  mutable std::mutex mu_;
  std::condition_variable leader_cv_;  ///< wakes the leader when full
  std::shared_ptr<Batch> open_;        ///< batch accepting riders, if any
  std::uint64_t waves_ = 0;
  std::uint64_t batched_cells_ = 0;
};

}  // namespace tsc::server

#endif  // TSC_SERVER_BATCHER_H_
