#ifndef TSC_SERVER_ADMISSION_H_
#define TSC_SERVER_ADMISSION_H_

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <mutex>

namespace tsc::server {

/// Request admission control: a fixed number of requests execute at
/// once, a bounded FIFO of waiters absorbs short bursts, and everything
/// beyond the queue bound is shed immediately (the caller maps that to
/// HTTP 429). A waiter whose per-request deadline passes before a slot
/// frees is failed instead of executed (mapped to 504), so a saturated
/// server sheds stale work rather than burning its capacity producing
/// answers nobody is still waiting for.
///
/// Thread safety: fully synchronized; one controller is shared by every
/// connection thread.
class AdmissionController {
 public:
  struct Options {
    std::size_t max_concurrent = 2;  ///< slots executing at once
    std::size_t max_queue = 64;      ///< waiters beyond the slots
  };

  enum class Outcome {
    kAdmitted,  ///< permit held; run the request
    kRejected,  ///< queue full => shed (429)
    kTimedOut,  ///< deadline passed while queued (504)
    kShutdown,  ///< controller shut down while queued (503)
  };

  /// RAII execution slot: releasing it (destruction) wakes the next
  /// waiter. Move-only; a default-constructed permit holds nothing.
  class Permit {
   public:
    Permit() = default;
    Permit(Permit&& other) noexcept : controller_(other.controller_) {
      other.controller_ = nullptr;
    }
    Permit& operator=(Permit&& other) noexcept {
      if (this != &other) {
        Release();
        controller_ = other.controller_;
        other.controller_ = nullptr;
      }
      return *this;
    }
    ~Permit() { Release(); }
    bool held() const { return controller_ != nullptr; }
    void Release();

   private:
    friend class AdmissionController;
    explicit Permit(AdmissionController* controller)
        : controller_(controller) {}
    AdmissionController* controller_ = nullptr;
  };

  explicit AdmissionController(const Options& options);

  /// Tries to take an execution slot, queueing until `deadline` when all
  /// slots are busy. On kAdmitted, `*permit` holds the slot.
  Outcome Acquire(std::chrono::steady_clock::time_point deadline,
                  Permit* permit);

  /// Fails every queued waiter with kShutdown and makes future Acquire
  /// calls return kShutdown immediately.
  void Shutdown();

  std::size_t active() const;
  std::size_t queued() const;

 private:
  void Release();

  const Options options_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::size_t active_ = 0;
  std::size_t queued_ = 0;
  bool shutdown_ = false;
};

}  // namespace tsc::server

#endif  // TSC_SERVER_ADMISSION_H_
