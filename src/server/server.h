#ifndef TSC_SERVER_SERVER_H_
#define TSC_SERVER_SERVER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <list>
#include <vector>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "obs/query_context.h"
#include "obs/slo.h"
#include "obs/slowlog.h"
#include "query/executor.h"
#include "server/admission.h"
#include "server/batcher.h"
#include "server/data_api.h"
#include "server/http.h"
#include "util/status.h"

namespace tsc::server {

/// Serving knobs. The defaults suit tests and a small deployment; the
/// CLI exposes the interesting ones.
struct ServerOptions {
  int port = 0;  ///< 0 binds an ephemeral port (read it back via port())
  /// Listen address. The loopback default keeps the server private to
  /// the machine; binding anything else (e.g. "0.0.0.0") exposes an
  /// UNAUTHENTICATED query API to the network — see docs/server.md
  /// before doing that.
  std::string bind_address = "127.0.0.1";
  /// Admission: concurrent executions (0 = hardware threads), bounded
  /// queue, default per-request deadline.
  std::size_t max_concurrent = 0;
  std::size_t max_queue = 64;
  std::uint64_t timeout_ms = 2000;
  /// Connection handling.
  std::size_t max_connections = 1024;  ///< beyond this, connections get 503
  std::uint64_t idle_timeout_ms = 5000;  ///< keep-alive read timeout
  /// Cell-probe batching window (0 disables coalescing delay).
  std::uint64_t batch_window_us = 150;
  std::size_t batch_max = 256;
  /// Request-shape ceilings.
  HttpLimits http;
  DataApiLimits data;
  /// Observability: slow-query log depth, SLO window and latency
  /// budget (burn rate = over-budget rate / (1 - objective)).
  std::size_t slowlog_capacity = 64;
  std::uint64_t slo_window_s = 60;
  double slo_latency_budget_us = 250'000.0;
  double slo_objective = 0.999;
  /// Row-key map for `rows=~pattern` dimension filters (one key per
  /// row; empty disables the pattern form).
  std::vector<std::string> row_keys;
};

/// The concurrent query server: a listener thread accepts connections
/// on 127.0.0.1, each connection gets a thread speaking HTTP/1.1 with
/// keep-alive, and every API request passes through the shared
/// AdmissionController before touching the executor. All connections
/// share one QueryExecutor and one CompressedStore — against a
/// disk-backed store that means one BlockCache buffer pool and one
/// BlockPrefetcher serving the whole client population.
///
/// Endpoints:
///   GET /healthz            liveness probe ("ok"), never queued;
///                           verbose=1 adds JSON uptime/admission/SLO
///   GET /metrics            Prometheus text exposition (version 0.0.4),
///                           never queued; format=json keeps the legacy
///                           snapshot JSON, format=table an aligned table
///   GET /api/v1/data        netdata-style window query (see data_api.h);
///                           format=json (default) | csv; rows= accepts
///                           index ranges or ~key-regex
///   GET /api/v1/query       q=<SQL>; format=text matches `tsctool sql`
///                           byte for byte, format=json adds stats
///   GET /api/v1/cell        row=I&col=J single-cell probe, coalesced
///                           across connections by the CellBatcher
///   GET /api/v1/debug/slow  the K slowest requests with their cost
///                           vectors, never queued; format=json | table
///
/// Admission outcomes on the wire: queue full => 429, deadline passed
/// while queued => 504, shutting down => 503. A per-request
/// timeout_ms parameter (capped at 60s) overrides the default deadline.
///
/// Request-scoped observability: every response carries X-Trace-Id
/// (honoring a sane incoming X-Trace-Id, else generated); API requests
/// run under a thread-local obs::QueryContext so storage/query layers
/// attribute cache hits/misses, blocks, io bytes, rows and delta probes
/// to the request. `debug=1` (or an X-Tsc-Debug header) returns the
/// cost vector in an X-Query-Cost response header.
///
/// The executor must have been built with num_threads == 1: concurrent
/// Execute calls are only safe without an internal scan pool, and
/// cross-request concurrency is what this server scales by.
class QueryServer {
 public:
  QueryServer(const QueryExecutor* executor, const CompressedStore* store,
              const ServerOptions& options = {});
  ~QueryServer();

  QueryServer(const QueryServer&) = delete;
  QueryServer& operator=(const QueryServer&) = delete;

  /// Binds, listens and starts the accept loop. Fails if already
  /// running or the port is taken.
  Status Start();

  /// Stops accepting, fails queued requests, unblocks and joins every
  /// connection thread. Idempotent.
  void Stop();

  bool running() const { return running_.load(std::memory_order_acquire); }
  /// The bound port (valid after Start(); with options.port == 0 this
  /// is the kernel-assigned ephemeral port).
  int port() const { return port_; }

  std::uint64_t connections_accepted() const {
    return connections_accepted_.load(std::memory_order_relaxed);
  }

  /// Routes one already-parsed request exactly as a connection thread
  /// would (admission included) and returns the serialized response.
  /// Exposed for tests that want the routing logic without sockets.
  std::string HandleRequest(const HttpRequest& request);

  const obs::SlowQueryLog& slowlog() const { return *slowlog_; }
  const obs::SloTracker& slo() const { return *slo_; }

 private:
  struct Connection {
    std::thread thread;
    int fd = -1;
    std::atomic<bool> done{false};
  };

  void AcceptLoop();
  void ServeConnection(Connection* connection);
  /// Joins finished connection threads; `all` waits for every one.
  void ReapConnections(bool all);
  std::string RouteApi(const HttpRequest& request, int* status_out);
  std::string HealthzVerboseJson() const;

  const QueryExecutor* executor_;
  ServerOptions options_;
  std::unique_ptr<AdmissionController> admission_;
  std::unique_ptr<CellBatcher> batcher_;
  std::unique_ptr<obs::SlowQueryLog> slowlog_;
  std::unique_ptr<obs::SloTracker> slo_;
  std::chrono::steady_clock::time_point start_time_{};

  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  int listen_fd_ = -1;
  int port_ = 0;
  std::thread accept_thread_;
  std::mutex connections_mu_;
  std::list<Connection> connections_;
  std::atomic<std::uint64_t> connections_accepted_{0};
};

}  // namespace tsc::server

#endif  // TSC_SERVER_SERVER_H_
