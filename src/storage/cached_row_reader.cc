#include "storage/cached_row_reader.h"

#include <algorithm>
#include <cstring>

#include "obs/metrics.h"
#include "util/logging.h"

namespace tsc {

CachedRowReader::CachedRowReader(RowStoreReader reader,
                                 std::size_t capacity_blocks)
    : reader_(std::make_unique<RowStoreReader>(std::move(reader))),
      cache_(capacity_blocks, reader_->counter().block_size()) {}

Status CachedRowReader::ReadBytes(std::uint64_t offset,
                                  std::span<std::uint8_t> out) {
  const std::size_t block_size = cache_.block_size();
  std::uint8_t* dest = out.data();
  std::uint64_t remaining = out.size();
  std::uint64_t cursor = offset;
  while (remaining > 0) {
    const std::uint64_t block_id = cursor / block_size;
    const std::uint64_t in_block = cursor % block_size;
    const std::uint64_t take =
        std::min<std::uint64_t>(remaining, block_size - in_block);
    TSC_ASSIGN_OR_RETURN(
        const BlockCache::Handle block,
        cache_.Get(block_id, [this](std::uint64_t id, BlockCache::Block* data) {
          return reader_->ReadBlock(id, *data);
        }));
    std::memcpy(dest, block->data() + in_block, take);
    dest += take;
    cursor += take;
    remaining -= take;
  }
  return Status::Ok();
}

Status CachedRowReader::ReadRow(std::size_t index, std::span<double> out) {
  if (index >= rows()) return Status::OutOfRange("row index out of range");
  if (out.size() != cols()) return Status::InvalidArgument("buffer size");
  const std::uint64_t stride = reader_->row_stride_bytes();
  const std::uint64_t offset =
      reader_->header_bytes() + static_cast<std::uint64_t>(index) * stride;
  if (reader_->scheme() == QuantScheme::kF64) {
    return ReadBytes(offset, std::span<std::uint8_t>(
                                 reinterpret_cast<std::uint8_t*>(out.data()),
                                 out.size() * sizeof(double)));
  }
  std::vector<std::uint8_t> raw(stride);
  TSC_ASSIGN_OR_RETURN(const QuantRowView view, ReadQuantRow(index, raw));
  DecodeQuantRow(view, out);
  return Status::Ok();
}

StatusOr<QuantRowView> CachedRowReader::ReadQuantRow(
    std::size_t index, std::span<std::uint8_t> scratch) {
  if (index >= rows()) return Status::OutOfRange("row index out of range");
  const std::uint64_t stride = reader_->row_stride_bytes();
  if (scratch.size() < stride) {
    return Status::InvalidArgument("scratch smaller than row stride");
  }
  const std::uint64_t offset =
      reader_->header_bytes() + static_cast<std::uint64_t>(index) * stride;
  TSC_RETURN_IF_ERROR(ReadBytes(offset, scratch.subspan(0, stride)));
  QuantRowView view;
  view.scheme = reader_->scheme();
  view.n = cols();
  if (view.scheme == QuantScheme::kF64) {
    view.data = scratch.data();
    return view;
  }
  std::memcpy(&view.scale, scratch.data(), 8);
  std::memcpy(&view.offset, scratch.data() + 8, 8);
  view.data = scratch.data() + kQuantRowMetaBytes;
  return view;
}

StatusOr<double> CachedRowReader::ReadCell(std::size_t row, std::size_t col) {
  if (row >= rows() || col >= cols()) {
    return Status::OutOfRange("cell out of range");
  }
  static obs::Counter& cell_reads =
      obs::MetricRegistry::Default().GetCounter("io.cell_reads");
  cell_reads.Increment();
  const QuantScheme scheme = reader_->scheme();
  const std::uint64_t row_offset =
      reader_->header_bytes() +
      static_cast<std::uint64_t>(row) * reader_->row_stride_bytes();
  if (scheme == QuantScheme::kF64) {
    double value = 0.0;
    TSC_RETURN_IF_ERROR(ReadBytes(
        row_offset + col * sizeof(double),
        std::span<std::uint8_t>(reinterpret_cast<std::uint8_t*>(&value),
                                sizeof(value))));
    return value;
  }
  const std::size_t elem_bytes = QuantElemBytes(scheme);
  std::uint8_t meta[kQuantRowMetaBytes] = {};
  TSC_RETURN_IF_ERROR(ReadBytes(row_offset, meta));
  std::uint8_t code[sizeof(double)] = {};
  TSC_RETURN_IF_ERROR(
      ReadBytes(row_offset + kQuantRowMetaBytes + col * elem_bytes,
                std::span<std::uint8_t>(code, elem_bytes)));
  QuantRowView view;
  view.scheme = scheme;
  view.n = 1;
  view.data = code;
  std::memcpy(&view.scale, meta, 8);
  std::memcpy(&view.offset, meta + 8, 8);
  return DecodeQuantValue(view, 0);
}

std::vector<std::uint64_t> CachedRowReader::BlocksForRows(
    std::span<const std::size_t> row_ids) const {
  const std::size_t block_size = cache_.block_size();
  const std::uint64_t row_bytes = reader_->row_stride_bytes();
  std::vector<std::uint64_t> blocks;
  blocks.reserve(row_ids.size() * (1 + row_bytes / block_size));
  for (const std::size_t index : row_ids) {
    if (index >= rows()) continue;
    const std::uint64_t offset =
        reader_->header_bytes() +
        static_cast<std::uint64_t>(index) * row_bytes;
    const std::uint64_t first = offset / block_size;
    const std::uint64_t last = (offset + row_bytes - 1) / block_size;
    for (std::uint64_t b = first; b <= last; ++b) blocks.push_back(b);
  }
  std::sort(blocks.begin(), blocks.end());
  blocks.erase(std::unique(blocks.begin(), blocks.end()), blocks.end());
  return blocks;
}

bool CachedRowReader::PrefetchRows(std::span<const std::size_t> row_ids,
                                   BlockPrefetcher* prefetcher) {
  if (prefetcher == nullptr || row_ids.empty()) return false;
  // Auto-disable when the wave cannot win (see header): serial waves
  // only help the seek-order-sensitive stream backend.
  if (!prefetcher->parallel() &&
      reader_->backend_kind() != IoBackendKind::kStream) {
    return false;
  }
  const std::vector<std::uint64_t> blocks = BlocksForRows(row_ids);
  if (blocks.empty()) return false;
  // Tell the kernel too — but only when the wave is dense. The hint
  // covers the whole [first, last] span, and a random batch spans most
  // of the file while touching a sliver of it: advising that span every
  // wave schedules file-sized kernel readahead the probes never use,
  // which is exactly how a prefetch wave ends up slower than demand
  // reads. A sparse wave relies on the per-block fetches alone.
  const std::uint64_t block_size = cache_.block_size();
  const std::uint64_t span_blocks = blocks.back() - blocks.front() + 1;
  if (blocks.size() * 4 >= span_blocks) {
    reader_->io().AdviseWillNeed(blocks.front() * block_size,
                                 span_blocks * block_size);
  }
  prefetcher->Prefetch(
      &cache_, blocks, [this](std::uint64_t id, BlockCache::Block* data) {
        return reader_->ReadBlock(id, *data);
      });
  return true;
}

}  // namespace tsc
