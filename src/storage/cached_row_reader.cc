#include "storage/cached_row_reader.h"

#include <algorithm>
#include <cstring>

#include "util/logging.h"

namespace tsc {

CachedRowReader::CachedRowReader(RowStoreReader reader,
                                 std::size_t capacity_blocks)
    : reader_(std::make_unique<RowStoreReader>(std::move(reader))),
      cache_(capacity_blocks, reader_->counter().block_size()) {}

Status CachedRowReader::ReadRow(std::size_t index, std::span<double> out) {
  if (index >= rows()) return Status::OutOfRange("row index out of range");
  if (out.size() != cols()) return Status::InvalidArgument("buffer size");
  const std::size_t block_size = cache_.block_size();
  const std::uint64_t offset =
      reader_->header_bytes() +
      static_cast<std::uint64_t>(index) * cols() * sizeof(double);
  const std::uint64_t length = cols() * sizeof(double);

  std::uint8_t* dest = reinterpret_cast<std::uint8_t*>(out.data());
  std::uint64_t remaining = length;
  std::uint64_t cursor = offset;
  while (remaining > 0) {
    const std::uint64_t block_id = cursor / block_size;
    const std::uint64_t in_block = cursor % block_size;
    const std::uint64_t take =
        std::min<std::uint64_t>(remaining, block_size - in_block);
    TSC_ASSIGN_OR_RETURN(
        const BlockCache::Handle block,
        cache_.Get(block_id, [this](std::uint64_t id, BlockCache::Block* data) {
          return reader_->ReadBlock(id, *data);
        }));
    std::memcpy(dest, block->data() + in_block, take);
    dest += take;
    cursor += take;
    remaining -= take;
  }
  return Status::Ok();
}

std::vector<std::uint64_t> CachedRowReader::BlocksForRows(
    std::span<const std::size_t> row_ids) const {
  const std::size_t block_size = cache_.block_size();
  const std::uint64_t row_bytes = cols() * sizeof(double);
  std::vector<std::uint64_t> blocks;
  blocks.reserve(row_ids.size() * (1 + row_bytes / block_size));
  for (const std::size_t index : row_ids) {
    if (index >= rows()) continue;
    const std::uint64_t offset =
        reader_->header_bytes() +
        static_cast<std::uint64_t>(index) * row_bytes;
    const std::uint64_t first = offset / block_size;
    const std::uint64_t last = (offset + row_bytes - 1) / block_size;
    for (std::uint64_t b = first; b <= last; ++b) blocks.push_back(b);
  }
  std::sort(blocks.begin(), blocks.end());
  blocks.erase(std::unique(blocks.begin(), blocks.end()), blocks.end());
  return blocks;
}

void CachedRowReader::PrefetchRows(std::span<const std::size_t> row_ids,
                                   BlockPrefetcher* prefetcher) {
  if (prefetcher == nullptr || row_ids.empty()) return;
  const std::vector<std::uint64_t> blocks = BlocksForRows(row_ids);
  if (blocks.empty()) return;
  // Tell the kernel too: under mmap the block fetches below become page
  // touches the readahead has already scheduled.
  const std::uint64_t block_size = cache_.block_size();
  reader_->io().AdviseWillNeed(
      blocks.front() * block_size,
      (blocks.back() - blocks.front() + 1) * block_size);
  prefetcher->Prefetch(
      &cache_, blocks, [this](std::uint64_t id, BlockCache::Block* data) {
        return reader_->ReadBlock(id, *data);
      });
}

}  // namespace tsc
