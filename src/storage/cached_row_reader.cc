#include "storage/cached_row_reader.h"

#include <cstring>

#include "util/logging.h"

namespace tsc {

CachedRowReader::CachedRowReader(RowStoreReader reader,
                                 std::size_t capacity_blocks)
    : reader_(std::make_unique<RowStoreReader>(std::move(reader))),
      cache_(capacity_blocks, reader_->counter().block_size()) {}

Status CachedRowReader::ReadRow(std::size_t index, std::span<double> out) {
  if (index >= rows()) return Status::OutOfRange("row index out of range");
  if (out.size() != cols()) return Status::InvalidArgument("buffer size");
  const std::size_t block_size = cache_.block_size();
  const std::uint64_t offset =
      reader_->header_bytes() +
      static_cast<std::uint64_t>(index) * cols() * sizeof(double);
  const std::uint64_t length = cols() * sizeof(double);

  std::uint8_t* dest = reinterpret_cast<std::uint8_t*>(out.data());
  std::uint64_t remaining = length;
  std::uint64_t cursor = offset;
  while (remaining > 0) {
    const std::uint64_t block_id = cursor / block_size;
    const std::uint64_t in_block = cursor % block_size;
    const std::uint64_t take =
        std::min<std::uint64_t>(remaining, block_size - in_block);
    TSC_ASSIGN_OR_RETURN(
        const BlockCache::Handle block,
        cache_.Get(block_id, [this](std::uint64_t id, BlockCache::Block* data) {
          return reader_->ReadBlock(id, *data);
        }));
    std::memcpy(dest, block->data() + in_block, take);
    dest += take;
    cursor += take;
    remaining -= take;
  }
  return Status::Ok();
}

}  // namespace tsc
