#include "storage/prefetcher.h"

#include <algorithm>
#include <atomic>
#include <mutex>

#include "obs/metrics.h"
#include "util/thread_pool.h"

namespace tsc {

// ---------------------------------------------------------------------------
// ReadaheadRowSource
// ---------------------------------------------------------------------------

ReadaheadRowSource::ReadaheadRowSource(RowSource* inner,
                                       std::size_t depth_chunks,
                                       std::size_t chunk_rows)
    : inner_(inner),
      depth_chunks_(std::max<std::size_t>(1, depth_chunks)),
      chunk_rows_(std::max<std::size_t>(1, chunk_rows)),
      // Passthrough unless overlap can pay: the inner source must
      // actually block on I/O, and there must be a second hardware
      // thread for the producer to run on. Decided once here — the
      // wrapper's behavior never changes mid-pass.
      active_(inner->BenefitsFromReadahead() &&
              ThreadPool::HardwareThreads() > 1) {}

ReadaheadRowSource::~ReadaheadRowSource() { StopProducer(); }

void ReadaheadRowSource::StartProducer() {
  producer_done_ = false;
  cancel_ = false;
  producer_status_ = Status::Ok();
  ready_.clear();
  current_valid_ = false;
  current_next_ = 0;
  started_ = true;
  producer_ = std::thread([this] { ProducerLoop(); });
}

void ReadaheadRowSource::StopProducer() {
  if (!started_) return;
  {
    std::lock_guard<std::mutex> lock(mu_);
    cancel_ = true;
  }
  consumed_cv_.notify_all();
  producer_.join();
  started_ = false;
}

void ReadaheadRowSource::ProducerLoop() {
  static obs::Counter& chunks_counter =
      obs::MetricRegistry::Default().GetCounter("io.readahead_chunks");
  for (;;) {
    // Reuse a spare buffer when one is available; the steady state
    // allocates nothing.
    Chunk chunk;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (!spare_.empty()) {
        chunk.data = std::move(spare_.back());
        spare_.pop_back();
      }
    }
    if (chunk.data.rows() != chunk_rows_ ||
        chunk.data.cols() != inner_->cols()) {
      chunk.data = Matrix(chunk_rows_, inner_->cols());
    }
    chunk.count = 0;
    Status status = Status::Ok();
    bool end = false;
    while (chunk.count < chunk_rows_) {
      StatusOr<bool> more = inner_->NextRow(chunk.data.Row(chunk.count));
      if (!more.ok()) {
        status = more.status();
        break;
      }
      if (!*more) {
        end = true;
        break;
      }
      ++chunk.count;
    }
    chunks_counter.Increment();

    std::unique_lock<std::mutex> lock(mu_);
    consumed_cv_.wait(
        lock, [this] { return cancel_ || ready_.size() < depth_chunks_; });
    if (cancel_) return;
    if (chunk.count > 0) ready_.push_back(std::move(chunk));
    if (!status.ok() || end) {
      producer_status_ = status;
      producer_done_ = true;
      lock.unlock();
      produced_cv_.notify_all();
      return;
    }
    lock.unlock();
    produced_cv_.notify_all();
  }
}

StatusOr<bool> ReadaheadRowSource::NextRow(std::span<double> out) {
  if (out.size() != cols()) return Status::InvalidArgument("buffer size");
  // Passthrough: no producer thread, no chunk copies — the wrapper is
  // byte-for-byte the inner scan.
  if (!active_) return inner_->NextRow(out);
  // Lazy start: a consumer that never called Reset() still streams from
  // wherever the inner source is positioned, like any RowSource.
  if (!started_) StartProducer();
  if (!current_valid_ || current_next_ >= current_.count) {
    // Recycle the drained buffer and pull the next chunk.
    std::unique_lock<std::mutex> lock(mu_);
    if (current_valid_) {
      spare_.push_back(std::move(current_.data));
      current_valid_ = false;
    }
    produced_cv_.wait(lock,
                      [this] { return producer_done_ || !ready_.empty(); });
    if (ready_.empty()) {
      return producer_status_.ok() ? StatusOr<bool>(false)
                                   : StatusOr<bool>(producer_status_);
    }
    current_ = std::move(ready_.front());
    ready_.pop_front();
    current_next_ = 0;
    current_valid_ = true;
    lock.unlock();
    consumed_cv_.notify_all();
  }
  const std::span<const double> row = current_.data.Row(current_next_);
  std::copy(row.begin(), row.end(), out.begin());
  ++current_next_;
  return true;
}

Status ReadaheadRowSource::ResetImpl() {
  if (!active_) return inner_->Reset();
  StopProducer();
  TSC_RETURN_IF_ERROR(inner_->Reset());
  StartProducer();
  return Status::Ok();
}

// ---------------------------------------------------------------------------
// BlockPrefetcher
// ---------------------------------------------------------------------------

BlockPrefetcher::BlockPrefetcher(std::size_t depth)
    : depth_(std::max<std::size_t>(1, depth)) {
  // Eager pool construction: Prefetch runs concurrently (one shared
  // prefetcher per store), so there is no race-free point to build the
  // pool lazily. On a single-core machine the pool is skipped outright —
  // fanning a wave over worker threads there only adds context switches,
  // so waves run serially on the caller instead.
  if (depth_ > 1 && ThreadPool::HardwareThreads() > 1) {
    pool_ = std::make_unique<ThreadPool>(depth_);
  }
}

BlockPrefetcher::~BlockPrefetcher() = default;

void BlockPrefetcher::Prefetch(BlockCache* cache,
                               std::span<const std::uint64_t> block_ids,
                               const BlockCache::FetchFn& fetch) {
  static obs::Counter& hits_counter =
      obs::MetricRegistry::Default().GetCounter("io.prefetch_hits");
  static obs::Counter& fetch_counter =
      obs::MetricRegistry::Default().GetCounter("io.prefetch_fetches");
  if (block_ids.empty()) return;

  // Ascending distinct ids: the fetch wave walks the file front to back,
  // which is the friendliest order for the disk and the page cache.
  std::vector<std::uint64_t> ids(block_ids.begin(), block_ids.end());
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());

  // Drop the blocks that are already resident (or being fetched by
  // someone else) BEFORE doing any work on them. A warm working set —
  // the steady state of a serving cache — makes the whole wave one
  // membership sweep; the old behavior of pushing every id through
  // cache->Get() made re-prefetching warm blocks cost more than the
  // demand reads it was meant to hide. Contains is advisory (a block
  // may be evicted right after), which is fine: the demand read still
  // fetches correctly, this path only decides where effort goes.
  std::vector<std::uint64_t> missing;
  missing.reserve(ids.size());
  for (const std::uint64_t id : ids) {
    if (!cache->Contains(id)) missing.push_back(id);
  }
  hits_counter.Add(ids.size() - missing.size());
  if (missing.empty()) return;

  std::atomic<std::uint64_t> fetched{0};
  const BlockCache::FetchFn counted_fetch =
      [&fetch, &fetched](std::uint64_t id, BlockCache::Block* data) {
        fetched.fetch_add(1, std::memory_order_relaxed);
        return fetch(id, data);
      };

  // A short wave is cheaper serial than waking the pool. The parallel
  // path hands each worker a contiguous ascending run of ids rather than
  // one block per task, so handout cost is per-run, not per-block.
  // ThreadPool::ParallelFor does not support overlapping callers, so the
  // pool admits one wave at a time; a concurrent wave falls back to the
  // serial loop instead of stalling behind a stranger's fetches — the
  // two waves still overlap, and the cache dedups shared blocks.
  constexpr std::size_t kSerialWave = 16;
  std::unique_lock<std::mutex> pool_lock(pool_mu_, std::defer_lock);
  const bool use_pool = missing.size() > kSerialWave && pool_ != nullptr &&
                        pool_lock.try_lock();
  if (!use_pool) {
    for (const std::uint64_t id : missing) {
      (void)cache->Get(id, counted_fetch);  // warm only; drop the handle
    }
  } else {
    const std::size_t runs = std::min(depth_, missing.size());
    const std::size_t per_run = (missing.size() + runs - 1) / runs;
    pool_->ParallelFor(0, runs, [&](std::size_t r) {
      const std::size_t begin = r * per_run;
      const std::size_t end = std::min(begin + per_run, missing.size());
      for (std::size_t i = begin; i < end; ++i) {
        (void)cache->Get(missing[i], counted_fetch);
      }
    });
  }
  // A Get that rode along on another caller's in-flight fetch issued no
  // I/O of its own; count it as a hit like the cache does.
  const std::uint64_t misses = fetched.load(std::memory_order_relaxed);
  fetch_counter.Add(misses);
  hits_counter.Add(missing.size() - misses);
}

}  // namespace tsc
