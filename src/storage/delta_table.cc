#include "storage/delta_table.h"

#include <algorithm>
#include <bit>
#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "obs/query_context.h"
#include "util/logging.h"

namespace tsc {
namespace {

constexpr double kMaxLoadFactor = 0.7;
constexpr std::size_t kMinBuckets = 16;

std::size_t BucketCountFor(std::size_t entries) {
  std::size_t wanted = kMinBuckets;
  while (static_cast<double>(entries) >
         kMaxLoadFactor * static_cast<double>(wanted)) {
    wanted <<= 1;
  }
  return wanted;
}

}  // namespace

DeltaTable::DeltaTable(std::size_t expected_entries)
    : buckets_(BucketCountFor(expected_entries)) {}

DeltaTable::DeltaTable(const DeltaTable& other)
    : buckets_(other.buckets_),
      size_(other.size_),
      entry_bytes_(other.entry_bytes_),
      probe_count_(other.probe_count()) {}

DeltaTable& DeltaTable::operator=(const DeltaTable& other) {
  if (this != &other) {
    buckets_ = other.buckets_;
    size_ = other.size_;
    entry_bytes_ = other.entry_bytes_;
    probe_count_.store(other.probe_count(), std::memory_order_relaxed);
  }
  return *this;
}

DeltaTable::DeltaTable(DeltaTable&& other) noexcept
    : buckets_(std::move(other.buckets_)),
      size_(other.size_),
      entry_bytes_(other.entry_bytes_),
      probe_count_(other.probe_count()) {}

DeltaTable& DeltaTable::operator=(DeltaTable&& other) noexcept {
  if (this != &other) {
    buckets_ = std::move(other.buckets_);
    size_ = other.size_;
    entry_bytes_ = other.entry_bytes_;
    probe_count_.store(other.probe_count(), std::memory_order_relaxed);
  }
  return *this;
}

std::uint64_t DeltaTable::HashKey(std::uint64_t key) {
  // splitmix64 finalizer: cheap and well-mixed for sequential cell keys.
  std::uint64_t z = key + 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

void DeltaTable::Put(std::uint64_t key, double delta) {
  if (static_cast<double>(size_ + 1) >
      kMaxLoadFactor * static_cast<double>(buckets_.size())) {
    Grow();
  }
  std::size_t slot = HashKey(key) & Mask();
  for (;;) {
    Bucket& b = buckets_[slot];
    if (!b.occupied) {
      b.key = key;
      b.delta = delta;
      b.occupied = true;
      ++size_;
      return;
    }
    if (b.key == key) {
      b.delta = delta;
      return;
    }
    slot = (slot + 1) & Mask();
  }
}

std::optional<double> DeltaTable::Get(std::uint64_t key) const {
  static obs::Counter& lookups =
      obs::MetricRegistry::Default().GetCounter("delta.lookups");
  static obs::Counter& hits =
      obs::MetricRegistry::Default().GetCounter("delta.hits");
  static obs::Histogram& probe_length =
      obs::MetricRegistry::Default().GetHistogram("delta.probe_length");
  std::size_t slot = HashKey(key) & Mask();
  std::uint64_t probes = 0;
  std::optional<double> result;
  for (;;) {
    ++probes;
    const Bucket& b = buckets_[slot];
    if (!b.occupied) break;
    if (b.key == key) {
      result = b.delta;
      break;
    }
    slot = (slot + 1) & Mask();
  }
  probe_count_.fetch_add(probes, std::memory_order_relaxed);
  lookups.Increment();
  obs::ChargeDeltaProbe();
  if (result.has_value()) hits.Increment();
  probe_length.Record(static_cast<double>(probes));
  return result;
}

void DeltaTable::Grow() {
  // Rehash via Put; Put never touches probe_count_, so the probe metric
  // keeps counting lookups only.
  std::vector<Bucket> old = std::move(buckets_);
  buckets_.assign(old.size() * 2, Bucket{});
  size_ = 0;
  for (const Bucket& b : old) {
    if (b.occupied) Put(b.key, b.delta);
  }
}

void DeltaTable::QuantizeValuesToFloat() {
  for (Bucket& b : buckets_) {
    if (b.occupied) b.delta = static_cast<float>(b.delta);
  }
}

Status DeltaTable::Serialize(BinaryWriter* writer) const {
  TSC_RETURN_IF_ERROR(writer->WriteU64(entry_bytes_));
  TSC_RETURN_IF_ERROR(writer->WriteU64(size_));
  // Emit entries in key order, not probe order: the hash table's layout
  // depends on its insertion/growth history, so two tables holding the
  // same deltas (e.g. freshly built vs reloaded) would otherwise
  // serialize to different bytes. Sorting makes the on-disk form a pure
  // function of the contents — save(load(save(x))) == save(x).
  std::vector<std::pair<std::uint64_t, double>> entries;
  entries.reserve(size_);
  ForEach([&](std::uint64_t key, double delta) {
    entries.emplace_back(key, delta);
  });
  std::sort(entries.begin(), entries.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  for (const auto& [key, delta] : entries) {
    TSC_RETURN_IF_ERROR(writer->WriteU64(key));
    TSC_RETURN_IF_ERROR(writer->WriteDouble(delta));
  }
  return Status::Ok();
}

StatusOr<DeltaTable> DeltaTable::Deserialize(BinaryReader* reader) {
  TSC_ASSIGN_OR_RETURN(const std::uint64_t entry_bytes, reader->ReadU64());
  TSC_ASSIGN_OR_RETURN(const std::uint64_t count, reader->ReadU64());
  if (count > (1ULL << 32)) return Status::IoError("corrupt delta count");
  if (entry_bytes == 0 || entry_bytes > 64) {
    return Status::IoError("corrupt delta entry size");
  }
  DeltaTable table(static_cast<std::size_t>(count));
  table.set_entry_bytes(entry_bytes);
  for (std::uint64_t i = 0; i < count; ++i) {
    TSC_ASSIGN_OR_RETURN(const std::uint64_t key, reader->ReadU64());
    TSC_ASSIGN_OR_RETURN(const double delta, reader->ReadDouble());
    table.Put(key, delta);
  }
  return table;
}

}  // namespace tsc
