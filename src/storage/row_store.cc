#include "storage/row_store.h"

#include <cstring>

#include "obs/metrics.h"
#include "util/logging.h"

namespace tsc {
namespace {

constexpr char kMagic[8] = {'T', 'S', 'C', 'R', 'O', 'W', 'S', '1'};
constexpr std::uint64_t kHeaderBytes = 8 + 8 + 8;  // magic + rows + cols

}  // namespace

void DiskAccessCounter::RecordRead(std::uint64_t offset,
                                   std::uint64_t length) {
  if (length == 0) return;
  static obs::Counter& accesses =
      obs::MetricRegistry::Default().GetCounter("storage.disk.accesses");
  static obs::Counter& bytes_read =
      obs::MetricRegistry::Default().GetCounter("storage.disk.bytes_read");
  const std::uint64_t first = offset / block_size_;
  const std::uint64_t last = (offset + length - 1) / block_size_;
  accesses_ += last - first + 1;
  bytes_read_ += length;
  accesses.Add(last - first + 1);
  bytes_read.Add(length);
}

StatusOr<RowStoreWriter> RowStoreWriter::Create(const std::string& path,
                                                std::size_t cols) {
  if (cols == 0) return Status::InvalidArgument("cols must be positive");
  RowStoreWriter writer;
  writer.out_.open(path, std::ios::binary | std::ios::trunc);
  if (!writer.out_) return Status::IoError("cannot create: " + path);
  writer.cols_ = cols;
  writer.closed_ = false;
  writer.out_.write(kMagic, sizeof(kMagic));
  const std::uint64_t zero_rows = 0;
  const std::uint64_t cols64 = cols;
  writer.out_.write(reinterpret_cast<const char*>(&zero_rows), 8);
  writer.out_.write(reinterpret_cast<const char*>(&cols64), 8);
  if (!writer.out_) return Status::IoError("header write failed: " + path);
  return writer;
}

Status RowStoreWriter::AppendRow(std::span<const double> row) {
  if (closed_) return Status::FailedPrecondition("writer is closed");
  if (row.size() != cols_) {
    return Status::InvalidArgument("row width mismatch");
  }
  out_.write(reinterpret_cast<const char*>(row.data()),
             static_cast<std::streamsize>(row.size() * sizeof(double)));
  if (!out_) return Status::IoError("row write failed");
  ++rows_written_;
  return Status::Ok();
}

Status RowStoreWriter::AppendMatrix(const Matrix& m) {
  if (m.cols() != cols_) return Status::InvalidArgument("cols mismatch");
  for (std::size_t i = 0; i < m.rows(); ++i) {
    TSC_RETURN_IF_ERROR(AppendRow(m.Row(i)));
  }
  return Status::Ok();
}

Status RowStoreWriter::Close() {
  if (closed_) return Status::FailedPrecondition("writer already closed");
  closed_ = true;
  out_.seekp(sizeof(kMagic), std::ios::beg);
  const std::uint64_t rows64 = rows_written_;
  out_.write(reinterpret_cast<const char*>(&rows64), 8);
  out_.flush();
  if (!out_) return Status::IoError("header patch failed");
  out_.close();
  return Status::Ok();
}

StatusOr<RowStoreReader> RowStoreReader::Open(const std::string& path) {
  RowStoreReader reader;
  reader.in_.open(path, std::ios::binary);
  if (!reader.in_) return Status::IoError("cannot open: " + path);
  char magic[8] = {};
  reader.in_.read(magic, sizeof(magic));
  if (!reader.in_ || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::IoError("bad magic in " + path);
  }
  std::uint64_t rows = 0;
  std::uint64_t cols = 0;
  reader.in_.read(reinterpret_cast<char*>(&rows), 8);
  reader.in_.read(reinterpret_cast<char*>(&cols), 8);
  if (!reader.in_ || cols == 0) return Status::IoError("bad header in " + path);
  reader.rows_ = rows;
  reader.cols_ = cols;
  reader.header_bytes_ = kHeaderBytes;
  reader.payload_bytes_ = rows * cols * sizeof(double);
  return reader;
}

Status RowStoreReader::ReadRow(std::size_t index, std::span<double> out) {
  if (index >= rows_) return Status::OutOfRange("row index out of range");
  if (out.size() != cols_) return Status::InvalidArgument("buffer size");
  const std::uint64_t offset =
      header_bytes_ + static_cast<std::uint64_t>(index) * cols_ * sizeof(double);
  in_.clear();
  in_.seekg(static_cast<std::streamoff>(offset), std::ios::beg);
  in_.read(reinterpret_cast<char*>(out.data()),
           static_cast<std::streamsize>(cols_ * sizeof(double)));
  if (in_.gcount() != static_cast<std::streamsize>(cols_ * sizeof(double))) {
    return Status::IoError("short row read");
  }
  counter_.RecordRead(offset, cols_ * sizeof(double));
  return Status::Ok();
}

StatusOr<double> RowStoreReader::ReadCell(std::size_t row, std::size_t col) {
  if (row >= rows_ || col >= cols_) {
    return Status::OutOfRange("cell out of range");
  }
  const std::uint64_t offset =
      header_bytes_ +
      (static_cast<std::uint64_t>(row) * cols_ + col) * sizeof(double);
  in_.clear();
  in_.seekg(static_cast<std::streamoff>(offset), std::ios::beg);
  double value = 0.0;
  in_.read(reinterpret_cast<char*>(&value), sizeof(value));
  if (in_.gcount() != sizeof(value)) return Status::IoError("short cell read");
  // A real disk still fetches the whole block containing the cell.
  const std::uint64_t block = offset / counter_.block_size();
  counter_.RecordRead(block * counter_.block_size(), counter_.block_size());
  return value;
}

Status RowStoreReader::ReadBlock(std::uint64_t block_id,
                                 std::span<std::uint8_t> out) {
  const std::size_t block_size = counter_.block_size();
  if (out.size() != block_size) {
    return Status::InvalidArgument("block buffer size mismatch");
  }
  const std::uint64_t offset = block_id * block_size;
  const std::uint64_t file_size = file_bytes();
  if (offset >= file_size) return Status::OutOfRange("block beyond file");
  in_.clear();
  in_.seekg(static_cast<std::streamoff>(offset), std::ios::beg);
  const std::uint64_t want = std::min<std::uint64_t>(block_size,
                                                     file_size - offset);
  in_.read(reinterpret_cast<char*>(out.data()),
           static_cast<std::streamsize>(want));
  if (in_.gcount() != static_cast<std::streamsize>(want)) {
    return Status::IoError("short block read");
  }
  std::fill(out.begin() + static_cast<std::ptrdiff_t>(want), out.end(), 0);
  counter_.RecordRead(offset, want);
  return Status::Ok();
}

StatusOr<Matrix> RowStoreReader::ReadAll() {
  Matrix m(rows_, cols_);
  for (std::size_t i = 0; i < rows_; ++i) {
    TSC_RETURN_IF_ERROR(ReadRow(i, m.Row(i)));
  }
  return m;
}

Status WriteMatrixFile(const std::string& path, const Matrix& m) {
  TSC_ASSIGN_OR_RETURN(RowStoreWriter writer,
                       RowStoreWriter::Create(path, m.cols()));
  TSC_RETURN_IF_ERROR(writer.AppendMatrix(m));
  return writer.Close();
}

StatusOr<bool> FileRowSource::NextRow(std::span<double> out) {
  if (next_row_ >= reader_.rows()) return false;
  TSC_RETURN_IF_ERROR(reader_.ReadRow(next_row_, out));
  ++next_row_;
  return true;
}

}  // namespace tsc
