#include "storage/row_store.h"

#include <cstring>
#include <limits>

#include "obs/metrics.h"
#include "util/logging.h"

namespace tsc {
namespace {

constexpr char kMagic[8] = {'T', 'S', 'C', 'R', 'O', 'W', 'S', '1'};
constexpr std::uint64_t kHeaderBytes = 8 + 8 + 8;  // magic + rows + cols

}  // namespace

void DiskAccessCounter::RecordRead(std::uint64_t offset,
                                   std::uint64_t length) {
  if (length == 0) return;
  static obs::Counter& accesses =
      obs::MetricRegistry::Default().GetCounter("storage.disk.accesses");
  static obs::Counter& bytes_read =
      obs::MetricRegistry::Default().GetCounter("storage.disk.bytes_read");
  const std::uint64_t first = offset / block_size_;
  const std::uint64_t last = (offset + length - 1) / block_size_;
  accesses_.fetch_add(last - first + 1, std::memory_order_relaxed);
  bytes_read_.fetch_add(length, std::memory_order_relaxed);
  accesses.Add(last - first + 1);
  bytes_read.Add(length);
}

StatusOr<RowStoreWriter> RowStoreWriter::Create(const std::string& path,
                                                std::size_t cols) {
  if (cols == 0) return Status::InvalidArgument("cols must be positive");
  RowStoreWriter writer;
  writer.out_.open(path, std::ios::binary | std::ios::trunc);
  if (!writer.out_) return Status::IoError("cannot create: " + path);
  writer.cols_ = cols;
  writer.closed_ = false;
  writer.out_.write(kMagic, sizeof(kMagic));
  const std::uint64_t zero_rows = 0;
  const std::uint64_t cols64 = cols;
  writer.out_.write(reinterpret_cast<const char*>(&zero_rows), 8);
  writer.out_.write(reinterpret_cast<const char*>(&cols64), 8);
  if (!writer.out_) return Status::IoError("header write failed: " + path);
  return writer;
}

Status RowStoreWriter::AppendRow(std::span<const double> row) {
  if (closed_) return Status::FailedPrecondition("writer is closed");
  if (row.size() != cols_) {
    return Status::InvalidArgument("row width mismatch");
  }
  out_.write(reinterpret_cast<const char*>(row.data()),
             static_cast<std::streamsize>(row.size() * sizeof(double)));
  if (!out_) return Status::IoError("row write failed");
  ++rows_written_;
  return Status::Ok();
}

Status RowStoreWriter::AppendMatrix(const Matrix& m) {
  if (m.cols() != cols_) return Status::InvalidArgument("cols mismatch");
  for (std::size_t i = 0; i < m.rows(); ++i) {
    TSC_RETURN_IF_ERROR(AppendRow(m.Row(i)));
  }
  return Status::Ok();
}

Status RowStoreWriter::Close() {
  if (closed_) return Status::FailedPrecondition("writer already closed");
  closed_ = true;
  out_.seekp(sizeof(kMagic), std::ios::beg);
  const std::uint64_t rows64 = rows_written_;
  out_.write(reinterpret_cast<const char*>(&rows64), 8);
  out_.flush();
  if (!out_) return Status::IoError("header patch failed");
  out_.close();
  return Status::Ok();
}

StatusOr<RowStoreReader> RowStoreReader::Open(const std::string& path) {
  return Open(path, DefaultIoBackendKind());
}

StatusOr<RowStoreReader> RowStoreReader::Open(const std::string& path,
                                              IoBackendKind backend) {
  RowStoreReader reader;
  TSC_ASSIGN_OR_RETURN(reader.io_, IoBackend::Open(path, backend));
  if (reader.io_->size() < kHeaderBytes) {
    return Status::IoError("truncated header in " + path);
  }
  std::uint8_t header[kHeaderBytes] = {};
  TSC_RETURN_IF_ERROR(reader.io_->ReadAt(0, header));
  if (std::memcmp(header, kMagic, sizeof(kMagic)) != 0) {
    return Status::IoError("bad magic in " + path);
  }
  std::uint64_t rows = 0;
  std::uint64_t cols = 0;
  std::memcpy(&rows, header + 8, 8);
  std::memcpy(&cols, header + 16, 8);
  if (cols == 0) return Status::IoError("bad header in " + path);
  // Guard rows * cols * 8 against uint64 overflow before trusting it: a
  // corrupt header must not wrap into a small "valid" payload size.
  constexpr std::uint64_t kMax = std::numeric_limits<std::uint64_t>::max();
  if (cols > kMax / sizeof(double) ||
      (rows != 0 && rows > (kMax - kHeaderBytes) / (cols * sizeof(double)))) {
    return Status::InvalidArgument("row store dimensions overflow: " + path);
  }
  const std::uint64_t payload = rows * cols * sizeof(double);
  // A truncated (or padded) U file fails here, at open, instead of with a
  // confusing "short row read" on some later query.
  if (reader.io_->size() != kHeaderBytes + payload) {
    return Status::IoError("row store size mismatch in " + path +
                           ": header promises " +
                           std::to_string(kHeaderBytes + payload) +
                           " bytes, file has " +
                           std::to_string(reader.io_->size()));
  }
  reader.rows_ = rows;
  reader.cols_ = cols;
  reader.header_bytes_ = kHeaderBytes;
  reader.payload_bytes_ = payload;
  return reader;
}

Status RowStoreReader::ReadRow(std::size_t index, std::span<double> out) {
  if (index >= rows_) return Status::OutOfRange("row index out of range");
  if (out.size() != cols_) return Status::InvalidArgument("buffer size");
  const std::uint64_t offset =
      header_bytes_ + static_cast<std::uint64_t>(index) * cols_ * sizeof(double);
  const std::uint64_t length = cols_ * sizeof(double);
  TSC_RETURN_IF_ERROR(io_->ReadAt(
      offset, std::span<std::uint8_t>(
                  reinterpret_cast<std::uint8_t*>(out.data()), length)));
  counter_.RecordRead(offset, length);
  return Status::Ok();
}

StatusOr<std::span<const double>> RowStoreReader::ReadRowView(
    std::size_t index, std::span<double> scratch) {
  if (index >= rows_) return Status::OutOfRange("row index out of range");
  if (scratch.size() != cols_) return Status::InvalidArgument("buffer size");
  const std::span<const std::uint8_t> mapped = io_->Mapped();
  if (!mapped.empty()) {
    const std::uint64_t offset =
        header_bytes_ +
        static_cast<std::uint64_t>(index) * cols_ * sizeof(double);
    counter_.RecordRead(offset, cols_ * sizeof(double));
    // The payload starts at byte 24, so every row is 8-byte aligned in
    // the mapping and safe to view as doubles.
    return std::span<const double>(
        reinterpret_cast<const double*>(mapped.data() + offset), cols_);
  }
  TSC_RETURN_IF_ERROR(ReadRow(index, scratch));
  return std::span<const double>(scratch.data(), scratch.size());
}

StatusOr<double> RowStoreReader::ReadCell(std::size_t row, std::size_t col) {
  if (row >= rows_ || col >= cols_) {
    return Status::OutOfRange("cell out of range");
  }
  const std::uint64_t offset =
      header_bytes_ +
      (static_cast<std::uint64_t>(row) * cols_ + col) * sizeof(double);
  double value = 0.0;
  TSC_RETURN_IF_ERROR(io_->ReadAt(
      offset, std::span<std::uint8_t>(
                  reinterpret_cast<std::uint8_t*>(&value), sizeof(value))));
  // A real disk still fetches the whole block containing the cell.
  const std::uint64_t block = offset / counter_.block_size();
  counter_.RecordRead(block * counter_.block_size(), counter_.block_size());
  return value;
}

Status RowStoreReader::ReadBlock(std::uint64_t block_id,
                                 std::span<std::uint8_t> out) {
  const std::size_t block_size = counter_.block_size();
  if (out.size() != block_size) {
    return Status::InvalidArgument("block buffer size mismatch");
  }
  const std::uint64_t offset = block_id * block_size;
  const std::uint64_t file_size = file_bytes();
  if (offset >= file_size) return Status::OutOfRange("block beyond file");
  const std::uint64_t want = std::min<std::uint64_t>(block_size,
                                                     file_size - offset);
  TSC_RETURN_IF_ERROR(io_->ReadAt(offset, out.subspan(0, want)));
  std::fill(out.begin() + static_cast<std::ptrdiff_t>(want), out.end(), 0);
  counter_.RecordRead(offset, want);
  return Status::Ok();
}

StatusOr<Matrix> RowStoreReader::ReadAll() {
  Matrix m(rows_, cols_);
  if (payload_bytes_ == 0) return m;
  // One bulk read of the whole payload: rows*cols doubles are contiguous
  // on disk exactly as they are in the Matrix, and the access counter
  // sees one payload-sized sequential read instead of `rows` seeks.
  TSC_RETURN_IF_ERROR(io_->ReadAt(
      header_bytes_,
      std::span<std::uint8_t>(reinterpret_cast<std::uint8_t*>(m.data().data()),
                              payload_bytes_)));
  counter_.RecordRead(header_bytes_, payload_bytes_);
  return m;
}

Status WriteMatrixFile(const std::string& path, const Matrix& m) {
  TSC_ASSIGN_OR_RETURN(RowStoreWriter writer,
                       RowStoreWriter::Create(path, m.cols()));
  TSC_RETURN_IF_ERROR(writer.AppendMatrix(m));
  return writer.Close();
}

StatusOr<bool> FileRowSource::NextRow(std::span<double> out) {
  if (next_row_ >= reader_.rows()) return false;
  TSC_RETURN_IF_ERROR(reader_.ReadRow(next_row_, out));
  ++next_row_;
  return true;
}

}  // namespace tsc
