#include "storage/row_store.h"

#include <cstring>
#include <limits>

#include "obs/metrics.h"
#include "obs/query_context.h"
#include "util/logging.h"

namespace tsc {
namespace {

constexpr char kMagic[8] = {'T', 'S', 'C', 'R', 'O', 'W', 'S', '1'};
constexpr std::uint64_t kHeaderBytes = 8 + 8 + 8;  // magic + rows + cols

// The quantized container: magic + rows + cols + scheme + reserved pad.
// 32 bytes, so with the 8-byte-padded row stride every row (and its
// leading scale/offset doubles) stays 8-byte aligned in an mmap view.
constexpr char kMagicQ[8] = {'T', 'S', 'C', 'R', 'O', 'W', 'Q', '1'};
constexpr std::uint64_t kHeaderBytesQ = 8 + 8 + 8 + 4 + 4;

void CountCellRead() {
  static obs::Counter& cell_reads =
      obs::MetricRegistry::Default().GetCounter("io.cell_reads");
  cell_reads.Increment();
}

}  // namespace

void DiskAccessCounter::RecordRead(std::uint64_t offset,
                                   std::uint64_t length) {
  if (length == 0) return;
  static obs::Counter& accesses =
      obs::MetricRegistry::Default().GetCounter("storage.disk.accesses");
  static obs::Counter& bytes_read =
      obs::MetricRegistry::Default().GetCounter("storage.disk.bytes_read");
  const std::uint64_t first = offset / block_size_;
  const std::uint64_t last = (offset + length - 1) / block_size_;
  accesses_.fetch_add(last - first + 1, std::memory_order_relaxed);
  bytes_read_.fetch_add(length, std::memory_order_relaxed);
  accesses.Add(last - first + 1);
  bytes_read.Add(length);
  obs::ChargeBlocksFetched(last - first + 1);
}

StatusOr<RowStoreWriter> RowStoreWriter::Create(const std::string& path,
                                                std::size_t cols,
                                                QuantScheme scheme) {
  if (cols == 0) return Status::InvalidArgument("cols must be positive");
  RowStoreWriter writer;
  writer.out_.open(path, std::ios::binary | std::ios::trunc);
  if (!writer.out_) return Status::IoError("cannot create: " + path);
  writer.cols_ = cols;
  writer.scheme_ = scheme;
  writer.closed_ = false;
  const std::uint64_t zero_rows = 0;
  const std::uint64_t cols64 = cols;
  if (scheme == QuantScheme::kF64) {
    writer.out_.write(kMagic, sizeof(kMagic));
    writer.out_.write(reinterpret_cast<const char*>(&zero_rows), 8);
    writer.out_.write(reinterpret_cast<const char*>(&cols64), 8);
  } else {
    writer.out_.write(kMagicQ, sizeof(kMagicQ));
    writer.out_.write(reinterpret_cast<const char*>(&zero_rows), 8);
    writer.out_.write(reinterpret_cast<const char*>(&cols64), 8);
    const std::uint32_t scheme32 = static_cast<std::uint32_t>(scheme);
    const std::uint32_t reserved = 0;
    writer.out_.write(reinterpret_cast<const char*>(&scheme32), 4);
    writer.out_.write(reinterpret_cast<const char*>(&reserved), 4);
    // Zeroed once: AppendRow overwrites meta + codes, so only the tail
    // padding relies on this (deterministic file bytes).
    writer.row_buf_.assign(QuantRowStride(scheme, cols), 0);
  }
  if (!writer.out_) return Status::IoError("header write failed: " + path);
  return writer;
}

Status RowStoreWriter::AppendRow(std::span<const double> row) {
  if (closed_) return Status::FailedPrecondition("writer is closed");
  if (row.size() != cols_) {
    return Status::InvalidArgument("row width mismatch");
  }
  if (scheme_ == QuantScheme::kF64) {
    out_.write(reinterpret_cast<const char*>(row.data()),
               static_cast<std::streamsize>(row.size() * sizeof(double)));
  } else {
    const QuantRowMeta meta = ComputeQuantRowMeta(scheme_, row);
    std::memcpy(row_buf_.data(), &meta.scale, 8);
    std::memcpy(row_buf_.data() + 8, &meta.offset, 8);
    EncodeQuantRow(scheme_, row, meta, row_buf_.data() + kQuantRowMetaBytes);
    out_.write(reinterpret_cast<const char*>(row_buf_.data()),
               static_cast<std::streamsize>(row_buf_.size()));
  }
  if (!out_) return Status::IoError("row write failed");
  ++rows_written_;
  return Status::Ok();
}

Status RowStoreWriter::AppendMatrix(const Matrix& m) {
  if (m.cols() != cols_) return Status::InvalidArgument("cols mismatch");
  for (std::size_t i = 0; i < m.rows(); ++i) {
    TSC_RETURN_IF_ERROR(AppendRow(m.Row(i)));
  }
  return Status::Ok();
}

Status RowStoreWriter::Close() {
  if (closed_) return Status::FailedPrecondition("writer already closed");
  closed_ = true;
  out_.seekp(sizeof(kMagic), std::ios::beg);
  const std::uint64_t rows64 = rows_written_;
  out_.write(reinterpret_cast<const char*>(&rows64), 8);
  out_.flush();
  if (!out_) return Status::IoError("header patch failed");
  out_.close();
  return Status::Ok();
}

StatusOr<RowStoreReader> RowStoreReader::Open(const std::string& path) {
  return Open(path, DefaultIoBackendKind());
}

StatusOr<RowStoreReader> RowStoreReader::Open(const std::string& path,
                                              IoBackendKind backend) {
  RowStoreReader reader;
  TSC_ASSIGN_OR_RETURN(reader.io_, IoBackend::Open(path, backend));
  if (reader.io_->size() < kHeaderBytes) {
    return Status::IoError("truncated header in " + path);
  }
  std::uint8_t header[kHeaderBytesQ] = {};
  const bool quantized =
      [&] {
        std::uint8_t magic[8] = {};
        return reader.io_->ReadAt(0, magic).ok() &&
               std::memcmp(magic, kMagicQ, sizeof(kMagicQ)) == 0;
      }();
  const std::uint64_t header_bytes = quantized ? kHeaderBytesQ : kHeaderBytes;
  if (reader.io_->size() < header_bytes) {
    return Status::IoError("truncated header in " + path);
  }
  TSC_RETURN_IF_ERROR(reader.io_->ReadAt(
      0, std::span<std::uint8_t>(header, header_bytes)));
  if (!quantized && std::memcmp(header, kMagic, sizeof(kMagic)) != 0) {
    return Status::IoError("bad magic in " + path);
  }
  std::uint64_t rows = 0;
  std::uint64_t cols = 0;
  std::memcpy(&rows, header + 8, 8);
  std::memcpy(&cols, header + 16, 8);
  if (cols == 0) return Status::IoError("bad header in " + path);
  QuantScheme scheme = QuantScheme::kF64;
  if (quantized) {
    std::uint32_t scheme32 = 0;
    std::memcpy(&scheme32, header + 24, 4);
    if (scheme32 == 0 || scheme32 > static_cast<std::uint32_t>(
                                        QuantScheme::kI8)) {
      return Status::IoError("bad quant scheme in " + path);
    }
    scheme = static_cast<QuantScheme>(scheme32);
  }
  // Guard rows * stride against uint64 overflow before trusting it: a
  // corrupt header must not wrap into a small "valid" payload size.
  constexpr std::uint64_t kMax = std::numeric_limits<std::uint64_t>::max();
  if (cols > (kMax - kQuantRowMetaBytes) / sizeof(double)) {
    return Status::InvalidArgument("row store dimensions overflow: " + path);
  }
  const std::uint64_t stride = QuantRowStride(scheme, cols);
  if (rows != 0 && rows > (kMax - header_bytes) / stride) {
    return Status::InvalidArgument("row store dimensions overflow: " + path);
  }
  const std::uint64_t payload = rows * stride;
  // A truncated (or padded) U file fails here, at open, instead of with a
  // confusing "short row read" on some later query.
  if (reader.io_->size() != header_bytes + payload) {
    return Status::IoError("row store size mismatch in " + path +
                           ": header promises " +
                           std::to_string(header_bytes + payload) +
                           " bytes, file has " +
                           std::to_string(reader.io_->size()));
  }
  reader.rows_ = rows;
  reader.cols_ = cols;
  reader.scheme_ = scheme;
  reader.row_stride_ = static_cast<std::size_t>(stride);
  reader.header_bytes_ = header_bytes;
  reader.payload_bytes_ = payload;
  return reader;
}

QuantRowView RowStoreReader::ViewOverRowBytes(
    const std::uint8_t* row_bytes) const {
  QuantRowView view;
  view.scheme = scheme_;
  view.n = cols_;
  if (scheme_ == QuantScheme::kF64) {
    view.data = row_bytes;
    return view;
  }
  std::memcpy(&view.scale, row_bytes, 8);
  std::memcpy(&view.offset, row_bytes + 8, 8);
  view.data = row_bytes + kQuantRowMetaBytes;
  return view;
}

Status RowStoreReader::ReadRow(std::size_t index, std::span<double> out) {
  if (index >= rows_) return Status::OutOfRange("row index out of range");
  if (out.size() != cols_) return Status::InvalidArgument("buffer size");
  if (scheme_ == QuantScheme::kF64) {
    const std::uint64_t offset =
        header_bytes_ +
        static_cast<std::uint64_t>(index) * cols_ * sizeof(double);
    const std::uint64_t length = cols_ * sizeof(double);
    TSC_RETURN_IF_ERROR(io_->ReadAt(
        offset, std::span<std::uint8_t>(
                    reinterpret_cast<std::uint8_t*>(out.data()), length)));
    counter_.RecordRead(offset, length);
    return Status::Ok();
  }
  // Quantized: fetch the raw row (zero-copy under mmap) and decode.
  std::vector<std::uint8_t> buf(io_->Mapped().empty() ? row_stride_ : 0);
  TSC_ASSIGN_OR_RETURN(const QuantRowView view, ReadQuantRow(index, buf));
  DecodeQuantRow(view, out);
  return Status::Ok();
}

StatusOr<std::span<const double>> RowStoreReader::ReadRowView(
    std::size_t index, std::span<double> scratch) {
  if (index >= rows_) return Status::OutOfRange("row index out of range");
  if (scratch.size() != cols_) return Status::InvalidArgument("buffer size");
  const std::span<const std::uint8_t> mapped = io_->Mapped();
  if (scheme_ == QuantScheme::kF64 && !mapped.empty()) {
    const std::uint64_t offset =
        header_bytes_ +
        static_cast<std::uint64_t>(index) * cols_ * sizeof(double);
    counter_.RecordRead(offset, cols_ * sizeof(double));
    // The payload starts at byte 24, so every row is 8-byte aligned in
    // the mapping and safe to view as doubles.
    return std::span<const double>(
        reinterpret_cast<const double*>(mapped.data() + offset), cols_);
  }
  TSC_RETURN_IF_ERROR(ReadRow(index, scratch));
  return std::span<const double>(scratch.data(), scratch.size());
}

StatusOr<QuantRowView> RowStoreReader::ReadQuantRow(
    std::size_t index, std::span<std::uint8_t> scratch) {
  if (index >= rows_) return Status::OutOfRange("row index out of range");
  const std::uint64_t offset =
      header_bytes_ + static_cast<std::uint64_t>(index) * row_stride_;
  const std::span<const std::uint8_t> mapped = io_->Mapped();
  if (!mapped.empty()) {
    counter_.RecordRead(offset, row_stride_);
    // Header and stride are both 8-byte multiples, so the meta doubles
    // (and f64 coefficients) are aligned in the mapping.
    return ViewOverRowBytes(mapped.data() + offset);
  }
  if (scratch.size() < row_stride_) {
    return Status::InvalidArgument("scratch smaller than row stride");
  }
  TSC_RETURN_IF_ERROR(io_->ReadAt(offset, scratch.subspan(0, row_stride_)));
  counter_.RecordRead(offset, row_stride_);
  return ViewOverRowBytes(scratch.data());
}

StatusOr<double> RowStoreReader::ReadCell(std::size_t row, std::size_t col) {
  if (row >= rows_ || col >= cols_) {
    return Status::OutOfRange("cell out of range");
  }
  CountCellRead();
  const std::uint64_t row_offset =
      header_bytes_ + static_cast<std::uint64_t>(row) * row_stride_;
  const std::size_t elem_bytes = QuantElemBytes(scheme_);
  const std::uint64_t elem_offset =
      scheme_ == QuantScheme::kF64
          ? row_offset + col * sizeof(double)
          : row_offset + kQuantRowMetaBytes + col * elem_bytes;
  double value = 0.0;
  const std::span<const std::uint8_t> mapped = io_->Mapped();
  if (!mapped.empty()) {
    // The backend's cached path: the page cache already holds (or will
    // fault in) the block; no read syscall is issued.
    value = DecodeQuantValue(ViewOverRowBytes(mapped.data() + row_offset),
                             col);
  } else if (scheme_ == QuantScheme::kF64) {
    TSC_RETURN_IF_ERROR(io_->ReadAt(
        elem_offset,
        std::span<std::uint8_t>(reinterpret_cast<std::uint8_t*>(&value),
                                sizeof(value))));
  } else {
    // Meta + the one code: two tiny positional reads of only the bytes
    // the cell needs.
    std::uint8_t meta[kQuantRowMetaBytes] = {};
    TSC_RETURN_IF_ERROR(io_->ReadAt(row_offset, meta));
    std::uint8_t code[sizeof(double)] = {};
    TSC_RETURN_IF_ERROR(io_->ReadAt(
        elem_offset, std::span<std::uint8_t>(code, elem_bytes)));
    QuantRowView view;
    view.scheme = scheme_;
    view.n = 1;
    view.data = code;
    std::memcpy(&view.scale, meta, 8);
    std::memcpy(&view.offset, meta + 8, 8);
    value = DecodeQuantValue(view, 0);
  }
  // A real disk still fetches the whole block containing the cell.
  const std::uint64_t block = elem_offset / counter_.block_size();
  counter_.RecordRead(block * counter_.block_size(), counter_.block_size());
  return value;
}

Status RowStoreReader::ReadBlock(std::uint64_t block_id,
                                 std::span<std::uint8_t> out) {
  const std::size_t block_size = counter_.block_size();
  if (out.size() != block_size) {
    return Status::InvalidArgument("block buffer size mismatch");
  }
  const std::uint64_t offset = block_id * block_size;
  const std::uint64_t file_size = file_bytes();
  if (offset >= file_size) return Status::OutOfRange("block beyond file");
  const std::uint64_t want = std::min<std::uint64_t>(block_size,
                                                     file_size - offset);
  TSC_RETURN_IF_ERROR(io_->ReadAt(offset, out.subspan(0, want)));
  std::fill(out.begin() + static_cast<std::ptrdiff_t>(want), out.end(), 0);
  counter_.RecordRead(offset, want);
  return Status::Ok();
}

StatusOr<Matrix> RowStoreReader::ReadAll() {
  Matrix m(rows_, cols_);
  if (payload_bytes_ == 0) return m;
  if (scheme_ == QuantScheme::kF64) {
    // One bulk read of the whole payload: rows*cols doubles are
    // contiguous on disk exactly as they are in the Matrix, and the
    // access counter sees one payload-sized sequential read instead of
    // `rows` seeks.
    TSC_RETURN_IF_ERROR(io_->ReadAt(
        header_bytes_,
        std::span<std::uint8_t>(
            reinterpret_cast<std::uint8_t*>(m.data().data()),
            payload_bytes_)));
    counter_.RecordRead(header_bytes_, payload_bytes_);
    return m;
  }
  // Quantized: same single payload-sized read, decoded row by row.
  std::vector<std::uint8_t> payload(payload_bytes_);
  TSC_RETURN_IF_ERROR(io_->ReadAt(header_bytes_, payload));
  counter_.RecordRead(header_bytes_, payload_bytes_);
  for (std::size_t i = 0; i < rows_; ++i) {
    DecodeQuantRow(ViewOverRowBytes(payload.data() + i * row_stride_),
                   m.Row(i));
  }
  return m;
}

Status WriteMatrixFile(const std::string& path, const Matrix& m,
                       QuantScheme scheme) {
  TSC_ASSIGN_OR_RETURN(RowStoreWriter writer,
                       RowStoreWriter::Create(path, m.cols(), scheme));
  TSC_RETURN_IF_ERROR(writer.AppendMatrix(m));
  return writer.Close();
}

StatusOr<bool> FileRowSource::NextRow(std::span<double> out) {
  if (next_row_ >= reader_.rows()) return false;
  TSC_RETURN_IF_ERROR(reader_.ReadRow(next_row_, out));
  ++next_row_;
  return true;
}

}  // namespace tsc
