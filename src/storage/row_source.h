#ifndef TSC_STORAGE_ROW_SOURCE_H_
#define TSC_STORAGE_ROW_SOURCE_H_

#include <cstddef>
#include <span>

#include "linalg/matrix.h"
#include "util/status.h"

namespace tsc {

/// Streaming, multi-pass access to the rows of an N x M matrix.
///
/// The paper's build algorithms are expressed as a small number of
/// sequential passes over a dataset too large for memory; RowSource is that
/// abstraction. Implementations exist for in-memory matrices (tests,
/// examples) and for on-disk binary files (storage/row_store.h). The
/// compressors count `passes_started()` so tests can verify the 2-pass and
/// 3-pass guarantees of Sections 4.1 and 4.2.
class RowSource {
 public:
  virtual ~RowSource() = default;

  virtual std::size_t rows() const = 0;
  virtual std::size_t cols() const = 0;

  /// Rewinds to the first row and begins a new pass.
  Status Reset() {
    ++passes_started_;
    return ResetImpl();
  }

  /// Copies the next row into `out` (size cols()) and returns true, or
  /// returns false at end of data.
  virtual StatusOr<bool> NextRow(std::span<double> out) = 0;

  /// Whether NextRow can block on I/O that a readahead producer thread
  /// could usefully overlap with the consumer's compute. In-memory
  /// sources return false (the default): copying their rows through a
  /// second thread and a chunk queue is pure overhead. File sources
  /// return true for the syscall-backed backends; the mmap backend
  /// serves rows straight from the mapping, so it also returns false.
  /// ReadaheadRowSource consults this to become a transparent no-op
  /// wrapper instead of a pessimizing one (see storage/prefetcher.h).
  virtual bool BenefitsFromReadahead() const { return false; }

  /// Number of Reset() calls so far; each full scan is one pass.
  std::size_t passes_started() const { return passes_started_; }

 protected:
  virtual Status ResetImpl() = 0;

 private:
  std::size_t passes_started_ = 0;
};

/// RowSource over an in-memory Matrix (not owned; must outlive the source).
class MatrixRowSource final : public RowSource {
 public:
  explicit MatrixRowSource(const Matrix* matrix) : matrix_(matrix) {}

  std::size_t rows() const override { return matrix_->rows(); }
  std::size_t cols() const override { return matrix_->cols(); }

  StatusOr<bool> NextRow(std::span<double> out) override;

 protected:
  Status ResetImpl() override {
    next_row_ = 0;
    return Status::Ok();
  }

 private:
  const Matrix* matrix_;
  std::size_t next_row_ = 0;
};

}  // namespace tsc

#endif  // TSC_STORAGE_ROW_SOURCE_H_
