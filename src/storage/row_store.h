#ifndef TSC_STORAGE_ROW_STORE_H_
#define TSC_STORAGE_ROW_STORE_H_

#include <atomic>
#include <cstdint>
#include <fstream>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "linalg/matrix.h"
#include "storage/io_backend.h"
#include "storage/row_source.h"
#include "util/status.h"

namespace tsc {

/// Counts simulated disk-block accesses. Every read through a RowStoreReader
/// reports the set of `block_size`-byte blocks it touched; this is how the
/// library demonstrates the paper's headline property that one cell
/// reconstruction costs ~1 disk access.
///
/// The counts are relaxed atomics so concurrent readers (the pread/mmap
/// backends allow them) account without racing. Note that mmap serves
/// rows without an explicit read syscall; the counter still records the
/// blocks each access logically touches, which keeps the paper's
/// 1-access-per-cell accounting meaningful across backends.
class DiskAccessCounter {
 public:
  explicit DiskAccessCounter(std::size_t block_size = kDefaultBlockSize)
      : block_size_(block_size) {}

  DiskAccessCounter(DiskAccessCounter&& other) noexcept
      : block_size_(other.block_size_),
        accesses_(other.accesses_.load(std::memory_order_relaxed)),
        bytes_read_(other.bytes_read_.load(std::memory_order_relaxed)) {}
  DiskAccessCounter& operator=(DiskAccessCounter&& other) noexcept {
    block_size_ = other.block_size_;
    accesses_.store(other.accesses_.load(std::memory_order_relaxed),
                    std::memory_order_relaxed);
    bytes_read_.store(other.bytes_read_.load(std::memory_order_relaxed),
                      std::memory_order_relaxed);
    return *this;
  }

  static constexpr std::size_t kDefaultBlockSize = 8192;

  /// Records a contiguous byte-range read; counts the blocks it spans.
  /// Thread-safe.
  void RecordRead(std::uint64_t offset, std::uint64_t length);

  std::uint64_t accesses() const {
    return accesses_.load(std::memory_order_relaxed);
  }
  std::uint64_t bytes_read() const {
    return bytes_read_.load(std::memory_order_relaxed);
  }
  std::size_t block_size() const { return block_size_; }
  void Reset() {
    accesses_.store(0, std::memory_order_relaxed);
    bytes_read_.store(0, std::memory_order_relaxed);
  }

 private:
  std::size_t block_size_;
  std::atomic<std::uint64_t> accesses_{0};
  std::atomic<std::uint64_t> bytes_read_{0};
};

/// Writes an N x M matrix file in the row-major binary "TSCROWS1" format.
/// Rows are appended one at a time so a dataset larger than memory can be
/// produced by a streaming generator.
class RowStoreWriter {
 public:
  /// Creates `path`, fixing the column count; rows() is finalized by the
  /// number of AppendRow calls (the header is patched on Close).
  static StatusOr<RowStoreWriter> Create(const std::string& path,
                                         std::size_t cols);

  RowStoreWriter(RowStoreWriter&&) = default;
  RowStoreWriter& operator=(RowStoreWriter&&) = default;

  Status AppendRow(std::span<const double> row);

  /// Convenience: appends every row of `m` (cols must match).
  Status AppendMatrix(const Matrix& m);

  /// Patches the row count into the header and closes the file. Must be
  /// called exactly once; the destructor does not write.
  Status Close();

  std::size_t rows_written() const { return rows_written_; }
  std::size_t cols() const { return cols_; }

 private:
  RowStoreWriter() = default;

  std::ofstream out_;
  std::size_t cols_ = 0;
  std::size_t rows_written_ = 0;
  bool closed_ = true;
};

/// Random and sequential access to a "TSCROWS1" matrix file, with every
/// read accounted against a DiskAccessCounter.
///
/// All reads go through a pluggable IoBackend (storage/io_backend.h).
/// Under the pread and mmap backends concurrent ReadRow/ReadCell/
/// ReadBlock calls on one reader are safe and do not serialize: there is
/// no shared seek cursor. The stream backend stays correct under threads
/// but serializes on an internal mutex.
class RowStoreReader {
 public:
  /// Opens `path` with the TSC_IO-resolved default backend and validates
  /// the header, including that the physical file size matches
  /// header + rows * cols * 8 exactly.
  static StatusOr<RowStoreReader> Open(const std::string& path);
  /// Same, with an explicit I/O backend.
  static StatusOr<RowStoreReader> Open(const std::string& path,
                                       IoBackendKind backend);

  RowStoreReader(RowStoreReader&&) = default;
  RowStoreReader& operator=(RowStoreReader&&) = default;

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::uint64_t file_bytes() const { return header_bytes_ + payload_bytes_; }
  std::uint64_t header_bytes() const { return header_bytes_; }

  /// The engine serving this reader.
  IoBackendKind backend_kind() const { return io_->kind(); }
  const char* backend_name() const { return io_->name(); }
  const IoBackend& io() const { return *io_; }

  /// Reads row `index` into `out` (size cols()); one random access.
  Status ReadRow(std::size_t index, std::span<double> out);

  /// Zero-copy row access: under the mmap backend the returned span
  /// points straight into the mapping (nothing is copied; `scratch` is
  /// untouched); under the other backends the row is read into `scratch`
  /// (size cols()) and the span views it. Either way the access is
  /// accounted exactly like ReadRow.
  StatusOr<std::span<const double>> ReadRowView(std::size_t index,
                                                std::span<double> scratch);

  /// Reads the single cell (row, col); still a whole-block access, exactly
  /// like a real disk would behave.
  StatusOr<double> ReadCell(std::size_t row, std::size_t col);

  /// Loads the full matrix with one bulk payload read (small files,
  /// tests): a whole-matrix load costs payload/block_size accesses, not
  /// one access per row.
  StatusOr<Matrix> ReadAll();

  /// Reads one whole `counter().block_size()`-byte block by id (block 0
  /// starts at byte 0 of the file, header included). Short reads at the
  /// file tail are zero-padded. One disk access. This is the fetch path
  /// of the BlockCache buffer pool.
  Status ReadBlock(std::uint64_t block_id, std::span<std::uint8_t> out);

  DiskAccessCounter& counter() { return counter_; }
  const DiskAccessCounter& counter() const { return counter_; }

 private:
  RowStoreReader() = default;

  std::unique_ptr<IoBackend> io_;
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::uint64_t header_bytes_ = 0;
  std::uint64_t payload_bytes_ = 0;
  DiskAccessCounter counter_;
};

/// Writes `m` to `path` in one call.
Status WriteMatrixFile(const std::string& path, const Matrix& m);

/// RowSource streaming a "TSCROWS1" file front to back with a bounded
/// buffer: the multi-pass build path for datasets that do not fit in
/// memory. Reads are accounted in the shared reader's counter. Wrap in a
/// ReadaheadRowSource (storage/prefetcher.h) to overlap the file reads
/// with the consumer's compute.
class FileRowSource final : public RowSource {
 public:
  explicit FileRowSource(RowStoreReader reader)
      : reader_(std::move(reader)) {
    reader_.io().AdviseSequential();
  }

  std::size_t rows() const override { return reader_.rows(); }
  std::size_t cols() const override { return reader_.cols(); }

  StatusOr<bool> NextRow(std::span<double> out) override;

  RowStoreReader& reader() { return reader_; }

 protected:
  Status ResetImpl() override {
    next_row_ = 0;
    return Status::Ok();
  }

 private:
  RowStoreReader reader_;
  std::size_t next_row_ = 0;
};

}  // namespace tsc

#endif  // TSC_STORAGE_ROW_STORE_H_
