#ifndef TSC_STORAGE_ROW_STORE_H_
#define TSC_STORAGE_ROW_STORE_H_

#include <cstdint>
#include <fstream>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "linalg/matrix.h"
#include "storage/row_source.h"
#include "util/status.h"

namespace tsc {

/// Counts simulated disk-block accesses. Every read through a RowStoreReader
/// reports the set of `block_size`-byte blocks it touched; this is how the
/// library demonstrates the paper's headline property that one cell
/// reconstruction costs ~1 disk access.
class DiskAccessCounter {
 public:
  explicit DiskAccessCounter(std::size_t block_size = kDefaultBlockSize)
      : block_size_(block_size) {}

  static constexpr std::size_t kDefaultBlockSize = 8192;

  /// Records a contiguous byte-range read; counts the blocks it spans.
  void RecordRead(std::uint64_t offset, std::uint64_t length);

  std::uint64_t accesses() const { return accesses_; }
  std::uint64_t bytes_read() const { return bytes_read_; }
  std::size_t block_size() const { return block_size_; }
  void Reset() {
    accesses_ = 0;
    bytes_read_ = 0;
  }

 private:
  std::size_t block_size_;
  std::uint64_t accesses_ = 0;
  std::uint64_t bytes_read_ = 0;
};

/// Writes an N x M matrix file in the row-major binary "TSCROWS1" format.
/// Rows are appended one at a time so a dataset larger than memory can be
/// produced by a streaming generator.
class RowStoreWriter {
 public:
  /// Creates `path`, fixing the column count; rows() is finalized by the
  /// number of AppendRow calls (the header is patched on Close).
  static StatusOr<RowStoreWriter> Create(const std::string& path,
                                         std::size_t cols);

  RowStoreWriter(RowStoreWriter&&) = default;
  RowStoreWriter& operator=(RowStoreWriter&&) = default;

  Status AppendRow(std::span<const double> row);

  /// Convenience: appends every row of `m` (cols must match).
  Status AppendMatrix(const Matrix& m);

  /// Patches the row count into the header and closes the file. Must be
  /// called exactly once; the destructor does not write.
  Status Close();

  std::size_t rows_written() const { return rows_written_; }
  std::size_t cols() const { return cols_; }

 private:
  RowStoreWriter() = default;

  std::ofstream out_;
  std::size_t cols_ = 0;
  std::size_t rows_written_ = 0;
  bool closed_ = true;
};

/// Random and sequential access to a "TSCROWS1" matrix file, with every
/// read accounted against a DiskAccessCounter.
class RowStoreReader {
 public:
  /// Opens `path` and validates the header.
  static StatusOr<RowStoreReader> Open(const std::string& path);

  RowStoreReader(RowStoreReader&&) = default;
  RowStoreReader& operator=(RowStoreReader&&) = default;

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::uint64_t file_bytes() const { return header_bytes_ + payload_bytes_; }
  std::uint64_t header_bytes() const { return header_bytes_; }

  /// Reads row `index` into `out` (size cols()); one random access.
  Status ReadRow(std::size_t index, std::span<double> out);

  /// Reads the single cell (row, col); still a whole-block access, exactly
  /// like a real disk would behave.
  StatusOr<double> ReadCell(std::size_t row, std::size_t col);

  /// Loads the full matrix (small files, tests).
  StatusOr<Matrix> ReadAll();

  /// Reads one whole `counter().block_size()`-byte block by id (block 0
  /// starts at byte 0 of the file, header included). Short reads at the
  /// file tail are zero-padded. One disk access. This is the fetch path
  /// of the BlockCache buffer pool.
  Status ReadBlock(std::uint64_t block_id, std::span<std::uint8_t> out);

  DiskAccessCounter& counter() { return counter_; }
  const DiskAccessCounter& counter() const { return counter_; }

 private:
  RowStoreReader() = default;

  mutable std::ifstream in_;
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::uint64_t header_bytes_ = 0;
  std::uint64_t payload_bytes_ = 0;
  DiskAccessCounter counter_;
};

/// Writes `m` to `path` in one call.
Status WriteMatrixFile(const std::string& path, const Matrix& m);

/// RowSource streaming a "TSCROWS1" file front to back with a bounded
/// buffer: the multi-pass build path for datasets that do not fit in
/// memory. Reads are accounted in the shared reader's counter.
class FileRowSource final : public RowSource {
 public:
  explicit FileRowSource(RowStoreReader reader)
      : reader_(std::move(reader)) {}

  std::size_t rows() const override { return reader_.rows(); }
  std::size_t cols() const override { return reader_.cols(); }

  StatusOr<bool> NextRow(std::span<double> out) override;

  RowStoreReader& reader() { return reader_; }

 protected:
  Status ResetImpl() override {
    next_row_ = 0;
    return Status::Ok();
  }

 private:
  RowStoreReader reader_;
  std::size_t next_row_ = 0;
};

}  // namespace tsc

#endif  // TSC_STORAGE_ROW_STORE_H_
