#ifndef TSC_STORAGE_ROW_STORE_H_
#define TSC_STORAGE_ROW_STORE_H_

#include <atomic>
#include <cstdint>
#include <fstream>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "linalg/matrix.h"
#include "storage/io_backend.h"
#include "storage/quant.h"
#include "storage/row_source.h"
#include "util/status.h"

namespace tsc {

/// Counts simulated disk-block accesses. Every read through a RowStoreReader
/// reports the set of `block_size`-byte blocks it touched; this is how the
/// library demonstrates the paper's headline property that one cell
/// reconstruction costs ~1 disk access.
///
/// The counts are relaxed atomics so concurrent readers (the pread/mmap
/// backends allow them) account without racing. Note that mmap serves
/// rows without an explicit read syscall; the counter still records the
/// blocks each access logically touches, which keeps the paper's
/// 1-access-per-cell accounting meaningful across backends.
class DiskAccessCounter {
 public:
  explicit DiskAccessCounter(std::size_t block_size = kDefaultBlockSize)
      : block_size_(block_size) {}

  DiskAccessCounter(DiskAccessCounter&& other) noexcept
      : block_size_(other.block_size_),
        accesses_(other.accesses_.load(std::memory_order_relaxed)),
        bytes_read_(other.bytes_read_.load(std::memory_order_relaxed)) {}
  DiskAccessCounter& operator=(DiskAccessCounter&& other) noexcept {
    block_size_ = other.block_size_;
    accesses_.store(other.accesses_.load(std::memory_order_relaxed),
                    std::memory_order_relaxed);
    bytes_read_.store(other.bytes_read_.load(std::memory_order_relaxed),
                      std::memory_order_relaxed);
    return *this;
  }

  static constexpr std::size_t kDefaultBlockSize = 8192;

  /// Records a contiguous byte-range read; counts the blocks it spans.
  /// Thread-safe.
  void RecordRead(std::uint64_t offset, std::uint64_t length);

  std::uint64_t accesses() const {
    return accesses_.load(std::memory_order_relaxed);
  }
  std::uint64_t bytes_read() const {
    return bytes_read_.load(std::memory_order_relaxed);
  }
  std::size_t block_size() const { return block_size_; }
  void Reset() {
    accesses_.store(0, std::memory_order_relaxed);
    bytes_read_.store(0, std::memory_order_relaxed);
  }

 private:
  std::size_t block_size_;
  std::atomic<std::uint64_t> accesses_{0};
  std::atomic<std::uint64_t> bytes_read_{0};
};

/// Writes an N x M matrix file row by row, so a dataset larger than
/// memory can be produced by a streaming generator. The f64 scheme emits
/// the original row-major binary "TSCROWS1" format unchanged; the
/// quantized schemes emit "TSCROWQ1", where every row is its 16-byte
/// scale/offset meta followed by the 8-byte-padded codes
/// (QuantRowStride). AppendRow encodes each row as it is written.
class RowStoreWriter {
 public:
  /// Creates `path`, fixing the column count and coefficient encoding;
  /// rows() is finalized by the number of AppendRow calls (the header is
  /// patched on Close).
  static StatusOr<RowStoreWriter> Create(
      const std::string& path, std::size_t cols,
      QuantScheme scheme = QuantScheme::kF64);

  RowStoreWriter(RowStoreWriter&&) = default;
  RowStoreWriter& operator=(RowStoreWriter&&) = default;

  Status AppendRow(std::span<const double> row);

  /// Convenience: appends every row of `m` (cols must match).
  Status AppendMatrix(const Matrix& m);

  /// Patches the row count into the header and closes the file. Must be
  /// called exactly once; the destructor does not write.
  Status Close();

  std::size_t rows_written() const { return rows_written_; }
  std::size_t cols() const { return cols_; }
  QuantScheme scheme() const { return scheme_; }

 private:
  RowStoreWriter() = default;

  std::ofstream out_;
  std::size_t cols_ = 0;
  std::size_t rows_written_ = 0;
  QuantScheme scheme_ = QuantScheme::kF64;
  std::vector<std::uint8_t> row_buf_;  ///< one encoded row (quant schemes)
  bool closed_ = true;
};

/// Random and sequential access to a "TSCROWS1" / "TSCROWQ1" matrix
/// file, with every read accounted against a DiskAccessCounter.
///
/// All reads go through a pluggable IoBackend (storage/io_backend.h).
/// Under the pread and mmap backends concurrent ReadRow/ReadCell/
/// ReadBlock calls on one reader are safe and do not serialize: there is
/// no shared seek cursor. The stream backend stays correct under threads
/// but serializes on an internal mutex.
class RowStoreReader {
 public:
  /// Opens `path` with the TSC_IO-resolved default backend and validates
  /// the header, including that the physical file size matches
  /// header + rows * row-stride exactly.
  static StatusOr<RowStoreReader> Open(const std::string& path);
  /// Same, with an explicit I/O backend.
  static StatusOr<RowStoreReader> Open(const std::string& path,
                                       IoBackendKind backend);

  RowStoreReader(RowStoreReader&&) = default;
  RowStoreReader& operator=(RowStoreReader&&) = default;

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::uint64_t file_bytes() const { return header_bytes_ + payload_bytes_; }
  std::uint64_t header_bytes() const { return header_bytes_; }

  /// Coefficient encoding of the file (kF64 for "TSCROWS1").
  QuantScheme scheme() const { return scheme_; }
  /// On-disk bytes of one row (meta + padded codes for the quantized
  /// schemes, cols * 8 for f64).
  std::size_t row_stride_bytes() const { return row_stride_; }

  /// The engine serving this reader.
  IoBackendKind backend_kind() const { return io_->kind(); }
  const char* backend_name() const { return io_->name(); }
  const IoBackend& io() const { return *io_; }

  /// Reads row `index` into `out` (size cols()), decoding quantized
  /// rows; one random access.
  Status ReadRow(std::size_t index, std::span<double> out);

  /// Zero-copy row access for f64 files: under the mmap backend the
  /// returned span points straight into the mapping (nothing is copied;
  /// `scratch` is untouched); otherwise the row lands in `scratch` (size
  /// cols()) — quantized files always decode into `scratch`. The access
  /// is accounted exactly like ReadRow. Quantized serving paths that
  /// want the codes themselves use ReadQuantRow instead.
  StatusOr<std::span<const double>> ReadRowView(std::size_t index,
                                                std::span<double> scratch);

  /// The quantized row as stored: under mmap `view.data` points straight
  /// into the mapping (zero-copy, codes and all); otherwise the raw row
  /// bytes are read into `scratch` (size >= row_stride_bytes()) and the
  /// view points there. For f64 files the view's data is the row of
  /// doubles with identity meta. One random access, accounted like
  /// ReadRow; the fused kernels (storage/quant.h) consume the view in
  /// place.
  StatusOr<QuantRowView> ReadQuantRow(std::size_t index,
                                      std::span<std::uint8_t> scratch);

  /// Reads the single cell (row, col) — still accounted as a whole-block
  /// access, exactly like a real disk would behave. Served through the
  /// backend's cached path: straight from the mapping under mmap, and by
  /// a positional read of only the needed bytes (row meta + one code)
  /// otherwise. Counted in io.cell_reads.
  StatusOr<double> ReadCell(std::size_t row, std::size_t col);

  /// Loads the full matrix with one bulk payload read (small files,
  /// tests): a whole-matrix load costs payload/block_size accesses, not
  /// one access per row.
  StatusOr<Matrix> ReadAll();

  /// Reads one whole `counter().block_size()`-byte block by id (block 0
  /// starts at byte 0 of the file, header included). Short reads at the
  /// file tail are zero-padded. One disk access. This is the fetch path
  /// of the BlockCache buffer pool.
  Status ReadBlock(std::uint64_t block_id, std::span<std::uint8_t> out);

  DiskAccessCounter& counter() { return counter_; }
  const DiskAccessCounter& counter() const { return counter_; }

 private:
  RowStoreReader() = default;

  /// Builds the QuantRowView over one raw row image (meta + codes for
  /// the quantized schemes, plain doubles for f64).
  QuantRowView ViewOverRowBytes(const std::uint8_t* row_bytes) const;

  std::unique_ptr<IoBackend> io_;
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  QuantScheme scheme_ = QuantScheme::kF64;
  std::size_t row_stride_ = 0;
  std::uint64_t header_bytes_ = 0;
  std::uint64_t payload_bytes_ = 0;
  DiskAccessCounter counter_;
};

/// Writes `m` to `path` in one call, encoding rows under `scheme`.
Status WriteMatrixFile(const std::string& path, const Matrix& m,
                       QuantScheme scheme = QuantScheme::kF64);

/// RowSource streaming a "TSCROWS1" file front to back with a bounded
/// buffer: the multi-pass build path for datasets that do not fit in
/// memory. Reads are accounted in the shared reader's counter. Wrap in a
/// ReadaheadRowSource (storage/prefetcher.h) to overlap the file reads
/// with the consumer's compute.
class FileRowSource final : public RowSource {
 public:
  explicit FileRowSource(RowStoreReader reader)
      : reader_(std::move(reader)) {
    reader_.io().AdviseSequential();
  }

  std::size_t rows() const override { return reader_.rows(); }
  std::size_t cols() const override { return reader_.cols(); }

  StatusOr<bool> NextRow(std::span<double> out) override;

  /// Readahead pays off when rows come through read syscalls; under mmap
  /// the rows are already memory-mapped and a producer thread would only
  /// add copies and handoffs.
  bool BenefitsFromReadahead() const override {
    return reader_.backend_kind() != IoBackendKind::kMmap;
  }

  RowStoreReader& reader() { return reader_; }

 protected:
  Status ResetImpl() override {
    next_row_ = 0;
    return Status::Ok();
  }

 private:
  RowStoreReader reader_;
  std::size_t next_row_ = 0;
};

}  // namespace tsc

#endif  // TSC_STORAGE_ROW_STORE_H_
