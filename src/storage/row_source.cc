#include "storage/row_source.h"

#include <algorithm>

namespace tsc {

StatusOr<bool> MatrixRowSource::NextRow(std::span<double> out) {
  if (next_row_ >= matrix_->rows()) return false;
  if (out.size() != matrix_->cols()) {
    return Status::InvalidArgument("NextRow buffer size != cols");
  }
  const std::span<const double> row = matrix_->Row(next_row_);
  std::copy(row.begin(), row.end(), out.begin());
  ++next_row_;
  return true;
}

}  // namespace tsc
