#ifndef TSC_STORAGE_CACHED_ROW_READER_H_
#define TSC_STORAGE_CACHED_ROW_READER_H_

#include <memory>
#include <vector>

#include "storage/block_cache.h"
#include "storage/prefetcher.h"
#include "storage/row_store.h"

namespace tsc {

/// Row access through a buffer pool: rows are assembled from cached
/// blocks and only cache misses reach the disk. With a skewed access
/// pattern (hot customers queried repeatedly) the effective disk cost
/// per query drops well below the cold 1-access bound.
///
/// Thread safety: concurrent ReadRow calls are safe — the sharded
/// BlockCache synchronizes itself and the underlying reader performs
/// positional reads with no shared cursor (see storage/io_backend.h).
class CachedRowReader {
 public:
  /// Takes ownership of `reader`; the cache holds `capacity_blocks`
  /// blocks of the reader's block size.
  CachedRowReader(RowStoreReader reader, std::size_t capacity_blocks);

  std::size_t rows() const { return reader_->rows(); }
  std::size_t cols() const { return reader_->cols(); }
  QuantScheme scheme() const { return reader_->scheme(); }
  const RowStoreReader& reader() const { return *reader_; }

  /// Reads row `index` into `out` (size cols()) via the cache, decoding
  /// quantized rows.
  Status ReadRow(std::size_t index, std::span<double> out);

  /// The raw (still-encoded) row assembled from cached blocks into
  /// `scratch` (size >= reader().row_stride_bytes()): cached blocks hold
  /// the file bytes verbatim, so quantized stores keep their smaller
  /// footprint — and higher hit rate per byte — all the way through the
  /// buffer pool. The returned view points into `scratch`.
  StatusOr<QuantRowView> ReadQuantRow(std::size_t index,
                                      std::span<std::uint8_t> scratch);

  /// Reads the single cell (row, col) through the cache: only the
  /// block(s) holding the row meta and the one code are touched, so a
  /// prefetch-warmed probe is a pure cache hit. Counted in io.cell_reads.
  StatusOr<double> ReadCell(std::size_t row, std::size_t col);

  /// The distinct cache blocks covering `row_ids`, ascending — the I/O
  /// wave a cold batched read of those rows will pay.
  std::vector<std::uint64_t> BlocksForRows(
      std::span<const std::size_t> row_ids) const;

  /// Warms the cache with every block covering `row_ids` in one
  /// overlapped wave through `prefetcher` (dense waves additionally get
  /// a WILLNEED hint for the spanned byte range). Subsequent ReadRow
  /// calls for those rows are pure cache hits. Returns false when the
  /// wave was skipped because it could not pay: with no worker pool
  /// (single-core machine or depth 1) a wave cannot overlap anything,
  /// and on the positional backends (pread/mmap) its only other lever —
  /// issuing fetches in ascending file order — buys nothing either, so
  /// running it would just tax every batch with wave bookkeeping. The
  /// serialized stream backend keeps its serial waves: ordered fetches
  /// genuinely beat the demand pattern there.
  bool PrefetchRows(std::span<const std::size_t> row_ids,
                    BlockPrefetcher* prefetcher);

  /// Disk accesses actually performed (i.e. cache misses, in blocks).
  std::uint64_t disk_accesses() const {
    return reader_->counter().accesses();
  }
  /// Block reads served straight from the cache; with disk_accesses()
  /// this makes the hit rate computable: hits / (hits + misses).
  std::uint64_t cache_hits() const { return cache_.hits(); }
  const BlockCache& cache() const { return cache_; }
  void ResetStats() {
    reader_->counter().Reset();
    cache_.ResetStats();
  }

 private:
  /// Assembles `out.size()` file bytes starting at `offset` from cached
  /// blocks (the common path of the row/cell reads above).
  Status ReadBytes(std::uint64_t offset, std::span<std::uint8_t> out);

  std::unique_ptr<RowStoreReader> reader_;
  BlockCache cache_;
};

}  // namespace tsc

#endif  // TSC_STORAGE_CACHED_ROW_READER_H_
