#ifndef TSC_STORAGE_CACHED_ROW_READER_H_
#define TSC_STORAGE_CACHED_ROW_READER_H_

#include <memory>

#include "storage/block_cache.h"
#include "storage/row_store.h"

namespace tsc {

/// Row access through a buffer pool: rows are assembled from cached
/// blocks and only cache misses reach the disk. With a skewed access
/// pattern (hot customers queried repeatedly) the effective disk cost
/// per query drops well below the cold 1-access bound.
class CachedRowReader {
 public:
  /// Takes ownership of `reader`; the cache holds `capacity_blocks`
  /// blocks of the reader's block size.
  CachedRowReader(RowStoreReader reader, std::size_t capacity_blocks);

  std::size_t rows() const { return reader_->rows(); }
  std::size_t cols() const { return reader_->cols(); }

  /// Reads row `index` into `out` (size cols()) via the cache.
  Status ReadRow(std::size_t index, std::span<double> out);

  /// Disk accesses actually performed (i.e. cache misses, in blocks).
  std::uint64_t disk_accesses() const {
    return reader_->counter().accesses();
  }
  /// Block reads served straight from the cache; with disk_accesses()
  /// this makes the hit rate computable: hits / (hits + misses).
  std::uint64_t cache_hits() const { return cache_.hits(); }
  const BlockCache& cache() const { return cache_; }
  void ResetStats() {
    reader_->counter().Reset();
    cache_.ResetStats();
  }

 private:
  std::unique_ptr<RowStoreReader> reader_;
  BlockCache cache_;
};

}  // namespace tsc

#endif  // TSC_STORAGE_CACHED_ROW_READER_H_
