#include "storage/bloom_filter.h"

#include <algorithm>
#include <cmath>

#include "obs/metrics.h"
#include "util/logging.h"

namespace tsc {

BloomFilter::BloomFilter(std::size_t expected_entries, double bits_per_entry) {
  TSC_CHECK_GT(bits_per_entry, 0.0);
  const std::size_t entries = std::max<std::size_t>(expected_entries, 1);
  bit_count_ = std::max<std::size_t>(
      64, static_cast<std::size_t>(bits_per_entry * static_cast<double>(entries)));
  hash_count_ = std::max<std::size_t>(
      1, static_cast<std::size_t>(std::round(bits_per_entry * std::log(2.0))));
  bits_.assign((bit_count_ + 63) / 64, 0);
}

void BloomFilter::TwoHashes(std::uint64_t key, std::uint64_t* h1,
                            std::uint64_t* h2) {
  // Two independent mixes; double hashing h1 + i*h2 yields the k indexes.
  std::uint64_t z = key + 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  *h1 = z ^ (z >> 31);
  std::uint64_t w = key ^ 0xc2b2ae3d27d4eb4fULL;
  w = (w ^ (w >> 33)) * 0xff51afd7ed558ccdULL;
  w = (w ^ (w >> 33)) * 0xc4ceb9fe1a85ec53ULL;
  *h2 = (w ^ (w >> 33)) | 1;  // odd, so the probe sequence cycles all bits
}

void BloomFilter::Add(std::uint64_t key) {
  std::uint64_t h1 = 0;
  std::uint64_t h2 = 0;
  TwoHashes(key, &h1, &h2);
  for (std::size_t i = 0; i < hash_count_; ++i) {
    const std::size_t bit = static_cast<std::size_t>((h1 + i * h2) % bit_count_);
    bits_[bit >> 6] |= (1ULL << (bit & 63));
  }
  ++entry_count_;
}

bool BloomFilter::MightContain(std::uint64_t key) const {
  static obs::Counter& probes =
      obs::MetricRegistry::Default().GetCounter("bloom.probes");
  static obs::Counter& negatives =
      obs::MetricRegistry::Default().GetCounter("bloom.negatives");
  probes.Increment();
  std::uint64_t h1 = 0;
  std::uint64_t h2 = 0;
  TwoHashes(key, &h1, &h2);
  for (std::size_t i = 0; i < hash_count_; ++i) {
    const std::size_t bit = static_cast<std::size_t>((h1 + i * h2) % bit_count_);
    if ((bits_[bit >> 6] & (1ULL << (bit & 63))) == 0) {
      negatives.Increment();
      return false;
    }
  }
  return true;
}

double BloomFilter::EstimatedFalsePositiveRate() const {
  const double k = static_cast<double>(hash_count_);
  const double n = static_cast<double>(entry_count_);
  const double m = static_cast<double>(bit_count_);
  return std::pow(1.0 - std::exp(-k * n / m), k);
}

Status BloomFilter::Serialize(BinaryWriter* writer) const {
  TSC_RETURN_IF_ERROR(writer->WriteU64(bit_count_));
  TSC_RETURN_IF_ERROR(writer->WriteU64(hash_count_));
  TSC_RETURN_IF_ERROR(writer->WriteU64(entry_count_));
  TSC_RETURN_IF_ERROR(writer->WriteU64(bits_.size()));
  return writer->WriteBytes(bits_.data(), bits_.size() * sizeof(std::uint64_t));
}

StatusOr<BloomFilter> BloomFilter::Deserialize(BinaryReader* reader) {
  BloomFilter filter;
  TSC_ASSIGN_OR_RETURN(const std::uint64_t bit_count, reader->ReadU64());
  TSC_ASSIGN_OR_RETURN(const std::uint64_t hash_count, reader->ReadU64());
  TSC_ASSIGN_OR_RETURN(const std::uint64_t entry_count, reader->ReadU64());
  TSC_ASSIGN_OR_RETURN(const std::uint64_t word_count, reader->ReadU64());
  if (word_count > (1ULL << 32) || hash_count == 0 || hash_count > 64 ||
      bit_count == 0 || (bit_count + 63) / 64 != word_count) {
    return Status::IoError("corrupt bloom filter header");
  }
  filter.bit_count_ = static_cast<std::size_t>(bit_count);
  filter.hash_count_ = static_cast<std::size_t>(hash_count);
  filter.entry_count_ = static_cast<std::size_t>(entry_count);
  filter.bits_.resize(word_count);
  TSC_RETURN_IF_ERROR(reader->ReadBytes(
      filter.bits_.data(), filter.bits_.size() * sizeof(std::uint64_t)));
  return filter;
}

}  // namespace tsc
