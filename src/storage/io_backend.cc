#include "storage/io_backend.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <mutex>

#include "obs/metrics.h"
#include "obs/query_context.h"

#if defined(__unix__) || defined(__APPLE__)
#define TSC_HAS_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#else
#define TSC_HAS_MMAP 0
#endif

namespace tsc {
namespace {

/// One counter per backend name, bumped at open: a metrics snapshot shows
/// which engines a process actually ran with.
void CountBackendOpen(IoBackendKind kind) {
  obs::MetricRegistry::Default()
      .GetCounter(std::string("io.backend.") + IoBackendName(kind))
      .Increment();
}

// ---------------------------------------------------------------------------
// stream: the original ifstream engine. One shared seek cursor, so a
// mutex serializes every read — correct, portable, slow under threads.
// ---------------------------------------------------------------------------

class StreamIoBackend final : public IoBackend {
 public:
  static StatusOr<std::unique_ptr<IoBackend>> Open(const std::string& path) {
    auto backend = std::unique_ptr<StreamIoBackend>(new StreamIoBackend());
    backend->in_.open(path, std::ios::binary);
    if (!backend->in_) return Status::IoError("cannot open: " + path);
    backend->in_.seekg(0, std::ios::end);
    const std::streamoff end = backend->in_.tellg();
    if (end < 0) return Status::IoError("cannot size: " + path);
    backend->size_ = static_cast<std::uint64_t>(end);
    return {std::move(backend)};
  }

  IoBackendKind kind() const override { return IoBackendKind::kStream; }

  Status ReadAt(std::uint64_t offset,
                std::span<std::uint8_t> out) const override {
    TSC_RETURN_IF_ERROR(CheckRange(offset, out.size()));
    if (out.empty()) return Status::Ok();
    std::lock_guard<std::mutex> lock(mu_);
    in_.clear();
    in_.seekg(static_cast<std::streamoff>(offset), std::ios::beg);
    in_.read(reinterpret_cast<char*>(out.data()),
             static_cast<std::streamsize>(out.size()));
    if (in_.gcount() != static_cast<std::streamsize>(out.size())) {
      return Status::IoError("short read");
    }
    CountRead(out.size());
    return Status::Ok();
  }

 private:
  StreamIoBackend() = default;

  mutable std::mutex mu_;
  mutable std::ifstream in_;
};

#if TSC_HAS_MMAP

// ---------------------------------------------------------------------------
// pread: positional reads on a raw descriptor. The kernel keeps no
// cursor for us to share, so concurrent reads need no lock at all.
// ---------------------------------------------------------------------------

class PreadIoBackend final : public IoBackend {
 public:
  static StatusOr<std::unique_ptr<IoBackend>> Open(const std::string& path) {
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) return Status::IoError("cannot open: " + path);
    struct stat st = {};
    if (::fstat(fd, &st) != 0) {
      ::close(fd);
      return Status::IoError("cannot stat: " + path);
    }
    auto backend = std::unique_ptr<PreadIoBackend>(new PreadIoBackend());
    backend->fd_ = fd;
    backend->size_ = static_cast<std::uint64_t>(st.st_size);
    return {std::move(backend)};
  }

  ~PreadIoBackend() override {
    if (fd_ >= 0) ::close(fd_);
  }

  IoBackendKind kind() const override { return IoBackendKind::kPread; }

  Status ReadAt(std::uint64_t offset,
                std::span<std::uint8_t> out) const override {
    TSC_RETURN_IF_ERROR(CheckRange(offset, out.size()));
    std::uint8_t* dest = out.data();
    std::uint64_t remaining = out.size();
    std::uint64_t cursor = offset;
    while (remaining > 0) {
      const ::ssize_t got =
          ::pread(fd_, dest, static_cast<std::size_t>(remaining),
                  static_cast<::off_t>(cursor));
      if (got < 0) {
        if (errno == EINTR) continue;
        return Status::IoError("pread failed");
      }
      if (got == 0) return Status::IoError("short read");
      dest += got;
      cursor += static_cast<std::uint64_t>(got);
      remaining -= static_cast<std::uint64_t>(got);
    }
    CountRead(out.size());
    return Status::Ok();
  }

 private:
  PreadIoBackend() = default;

  int fd_ = -1;
};

// ---------------------------------------------------------------------------
// mmap: the whole file mapped read-only. ReadAt is a memcpy out of the
// mapping; Mapped() exposes the pages for zero-copy row views. The page
// cache does the real caching, madvise steers its readahead.
// ---------------------------------------------------------------------------

class MmapIoBackend final : public IoBackend {
 public:
  static StatusOr<std::unique_ptr<IoBackend>> Open(const std::string& path) {
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) return Status::IoError("cannot open: " + path);
    struct stat st = {};
    if (::fstat(fd, &st) != 0) {
      ::close(fd);
      return Status::IoError("cannot stat: " + path);
    }
    auto backend = std::unique_ptr<MmapIoBackend>(new MmapIoBackend());
    backend->size_ = static_cast<std::uint64_t>(st.st_size);
    if (backend->size_ > 0) {
      void* map = ::mmap(nullptr, static_cast<std::size_t>(backend->size_),
                         PROT_READ, MAP_SHARED, fd, 0);
      if (map == MAP_FAILED) {
        ::close(fd);
        return Status::IoError("mmap failed: " + path);
      }
      backend->map_ = static_cast<const std::uint8_t*>(map);
    }
    // The mapping pins the inode; the descriptor is no longer needed.
    ::close(fd);
    return {std::move(backend)};
  }

  ~MmapIoBackend() override {
    if (map_ != nullptr) {
      ::munmap(const_cast<std::uint8_t*>(map_),
               static_cast<std::size_t>(size_));
    }
  }

  IoBackendKind kind() const override { return IoBackendKind::kMmap; }

  Status ReadAt(std::uint64_t offset,
                std::span<std::uint8_t> out) const override {
    TSC_RETURN_IF_ERROR(CheckRange(offset, out.size()));
    if (!out.empty()) std::memcpy(out.data(), map_ + offset, out.size());
    CountRead(out.size());
    return Status::Ok();
  }

  std::span<const std::uint8_t> Mapped() const override {
    return {map_, static_cast<std::size_t>(size_)};
  }

  void AdviseSequential() const override {
    if (map_ != nullptr) {
      ::madvise(const_cast<std::uint8_t*>(map_),
                static_cast<std::size_t>(size_), MADV_SEQUENTIAL);
    }
  }

  void AdviseWillNeed(std::uint64_t offset,
                      std::uint64_t length) const override {
    if (map_ == nullptr || offset >= size_) return;
    length = std::min<std::uint64_t>(length, size_ - offset);
    // madvise wants a page-aligned start; round the range outward. The
    // page size is a runtime property (16K/64K on some ARM64 systems),
    // not a constant — a misaligned start makes madvise fail EINVAL and
    // silently drop the hint.
    static const std::uint64_t page = [] {
      const long size = ::sysconf(_SC_PAGESIZE);
      return size > 0 ? static_cast<std::uint64_t>(size) : 4096u;
    }();
    const std::uint64_t start = offset / page * page;
    ::madvise(const_cast<std::uint8_t*>(map_ + start),
              static_cast<std::size_t>(offset - start + length),
              MADV_WILLNEED);
  }

 private:
  MmapIoBackend() = default;

  const std::uint8_t* map_ = nullptr;
};

#endif  // TSC_HAS_MMAP

}  // namespace

const char* IoBackendName(IoBackendKind kind) {
  switch (kind) {
    case IoBackendKind::kStream:
      return "stream";
    case IoBackendKind::kPread:
      return "pread";
    case IoBackendKind::kMmap:
      return "mmap";
  }
  return "unknown";
}

StatusOr<IoBackendKind> ParseIoBackendName(const std::string& name) {
  if (name == "stream") return IoBackendKind::kStream;
  if (name == "pread") return IoBackendKind::kPread;
  if (name == "mmap") return IoBackendKind::kMmap;
  return Status::InvalidArgument("unknown io backend: " + name);
}

bool MmapAvailable() { return TSC_HAS_MMAP != 0; }

IoBackendKind ResolveIoBackend(const char* env_value, bool mmap_available) {
  if (env_value != nullptr) {
    const std::string value(env_value);
    if (value == "stream") return IoBackendKind::kStream;
    if (value == "pread") return IoBackendKind::kPread;
    if (value == "mmap") {
      return mmap_available ? IoBackendKind::kMmap : IoBackendKind::kPread;
    }
    // Unrecognized values fall through to the hardware default.
  }
  return mmap_available ? IoBackendKind::kMmap : IoBackendKind::kPread;
}

IoBackendKind DefaultIoBackendKind() {
  static const IoBackendKind kind =
      ResolveIoBackend(std::getenv("TSC_IO"), MmapAvailable());
  return kind;
}

Status IoBackend::CheckRange(std::uint64_t offset,
                             std::uint64_t length) const {
  if (offset > size_ || length > size_ - offset) {
    return Status::IoError("read past end of file");
  }
  return Status::Ok();
}

void IoBackend::CountRead(std::uint64_t bytes) {
  static obs::Counter& reads =
      obs::MetricRegistry::Default().GetCounter("io.reads");
  static obs::Counter& bytes_read =
      obs::MetricRegistry::Default().GetCounter("io.bytes_read");
  reads.Increment();
  bytes_read.Add(bytes);
  obs::ChargeIoBytes(bytes);
}

StatusOr<std::unique_ptr<IoBackend>> IoBackend::Open(const std::string& path,
                                                     IoBackendKind kind) {
#if !TSC_HAS_MMAP
  // Without POSIX I/O both fast engines degrade to the stream engine.
  kind = IoBackendKind::kStream;
#endif
  StatusOr<std::unique_ptr<IoBackend>> backend =
      Status::Internal("unreachable");
  switch (kind) {
    case IoBackendKind::kStream:
      backend = StreamIoBackend::Open(path);
      break;
#if TSC_HAS_MMAP
    case IoBackendKind::kPread:
      backend = PreadIoBackend::Open(path);
      break;
    case IoBackendKind::kMmap:
      backend = MmapIoBackend::Open(path);
      break;
#else
    default:
      backend = StreamIoBackend::Open(path);
      break;
#endif
  }
  if (backend.ok()) CountBackendOpen((*backend)->kind());
  return backend;
}

StatusOr<std::unique_ptr<IoBackend>> IoBackend::Open(const std::string& path) {
  return Open(path, DefaultIoBackendKind());
}

}  // namespace tsc
