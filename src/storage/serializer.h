#ifndef TSC_STORAGE_SERIALIZER_H_
#define TSC_STORAGE_SERIALIZER_H_

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "linalg/matrix.h"
#include "util/status.h"

namespace tsc {

/// Little-endian binary writer for the model files (V, Lambda, deltas, ...).
/// All tsc on-disk formats are built from these primitives so they stay
/// byte-for-byte reproducible.
class BinaryWriter {
 public:
  /// Opens (truncates) `path` for writing.
  static StatusOr<BinaryWriter> Open(const std::string& path);

  BinaryWriter(BinaryWriter&&) = default;
  BinaryWriter& operator=(BinaryWriter&&) = default;

  Status WriteU32(std::uint32_t value);
  Status WriteU64(std::uint64_t value);
  Status WriteDouble(double value);
  Status WriteBytes(const void* data, std::size_t size);
  Status WriteString(const std::string& value);
  Status WriteDoubleVector(const std::vector<double>& values);
  /// Dims followed by row-major payload.
  Status WriteMatrix(const Matrix& matrix);

  Status Flush();
  std::uint64_t bytes_written() const { return bytes_written_; }

  /// Running FNV-1a hash of every byte written so far.
  std::uint64_t checksum() const { return checksum_; }
  /// Appends the running checksum as a trailer (call last; the trailer
  /// bytes themselves are excluded from the hash) and flushes.
  Status FinishWithChecksum();

 private:
  BinaryWriter() = default;

  std::ofstream out_;
  std::uint64_t bytes_written_ = 0;
  std::uint64_t checksum_ = kFnvOffsetBasis;

 public:
  static constexpr std::uint64_t kFnvOffsetBasis = 0xcbf29ce484222325ULL;
  static constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;
};

/// Little-endian binary reader mirroring BinaryWriter.
class BinaryReader {
 public:
  static StatusOr<BinaryReader> Open(const std::string& path);

  BinaryReader(BinaryReader&&) = default;
  BinaryReader& operator=(BinaryReader&&) = default;

  StatusOr<std::uint32_t> ReadU32();
  StatusOr<std::uint64_t> ReadU64();
  StatusOr<double> ReadDouble();
  Status ReadBytes(void* data, std::size_t size);
  StatusOr<std::string> ReadString();
  StatusOr<std::vector<double>> ReadDoubleVector();
  StatusOr<Matrix> ReadMatrix();

  /// Running FNV-1a hash of every byte read so far.
  std::uint64_t checksum() const { return checksum_; }
  /// Reads the trailer written by FinishWithChecksum and compares it to
  /// the running hash; kIoError on mismatch (corruption or truncation).
  Status VerifyChecksum();

 private:
  BinaryReader() = default;

  std::ifstream in_;
  std::uint64_t checksum_ = BinaryWriter::kFnvOffsetBasis;
};

}  // namespace tsc

#endif  // TSC_STORAGE_SERIALIZER_H_
