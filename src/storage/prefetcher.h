#ifndef TSC_STORAGE_PREFETCHER_H_
#define TSC_STORAGE_PREFETCHER_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <span>
#include <thread>
#include <vector>

#include "storage/block_cache.h"
#include "storage/row_source.h"
#include "util/status.h"

namespace tsc {

class ThreadPool;

/// Async readahead for sequential scans: a background producer thread
/// pulls row chunks from the wrapped source into a bounded queue while
/// the consumer computes on the previous chunk, overlapping disk I/O
/// with eigen/kernel work. With depth_chunks == 1 this is classic double
/// buffering (one chunk in flight, one being consumed).
///
/// Readahead is a no-loss default: when overlap cannot pay — the inner
/// source says NextRow never blocks on I/O (in-memory matrices, the
/// mmap backend), or the machine has a single hardware thread so
/// producer and consumer would time-slice one core — the wrapper runs
/// in passthrough mode, forwarding NextRow/Reset straight to the inner
/// source with no producer thread and no chunk copies. active() tells
/// which mode was picked.
///
/// Rows come out in exactly the source's order either way, so a build
/// that scans through the readahead produces bit-identical models.
/// Reset() drains the pipeline, resets the inner source, and restarts
/// the producer — multi-pass builds work unchanged. Single consumer
/// only; the wrapped source must outlive this object and must not be
/// used elsewhere while a pass is in flight.
class ReadaheadRowSource final : public RowSource {
 public:
  /// `depth_chunks` bounds the producer's lead, in chunks of
  /// `chunk_rows` rows each.
  explicit ReadaheadRowSource(RowSource* inner, std::size_t depth_chunks = 2,
                              std::size_t chunk_rows = 256);
  ~ReadaheadRowSource() override;

  std::size_t rows() const override { return inner_->rows(); }
  std::size_t cols() const override { return inner_->cols(); }

  StatusOr<bool> NextRow(std::span<double> out) override;

  /// False when the wrapper auto-disabled itself (passthrough mode).
  bool active() const { return active_; }

 protected:
  Status ResetImpl() override;

 private:
  struct Chunk {
    Matrix data;
    std::size_t count = 0;
  };

  void StartProducer();
  void StopProducer();
  void ProducerLoop();

  RowSource* inner_;
  const std::size_t depth_chunks_;
  const std::size_t chunk_rows_;
  const bool active_;

  std::thread producer_;
  bool started_ = false;

  std::mutex mu_;
  std::condition_variable produced_cv_;  ///< producer -> consumer
  std::condition_variable consumed_cv_;  ///< consumer -> producer
  std::deque<Chunk> ready_;              ///< filled chunks, FIFO
  std::vector<Matrix> spare_;            ///< recycled chunk buffers
  bool producer_done_ = false;
  bool cancel_ = false;
  Status producer_status_ = Status::Ok();

  // Consumer-side cursor into the chunk currently being drained.
  Chunk current_;
  std::size_t current_next_ = 0;
  bool current_valid_ = false;
};

/// Batched block prefetch into a BlockCache: one overlapped wave of
/// parallel fetches for all the blocks a batched query is about to
/// touch, instead of N cache misses paid one at a time on the read
/// path. Safe against concurrent readers — the cache's in-flight dedup
/// means a prefetch and a demand read of the same block issue one I/O.
///
/// A wave only works on the blocks that are actually missing: resident
/// ids are filtered out with BlockCache::Contains before any fetching,
/// so re-prefetching a warm working set costs one sorted membership
/// sweep instead of a cache Get per block. The worker pool exists only
/// when it can help (depth > 1 AND the machine has > 1 hardware
/// thread); otherwise waves fetch serially on the caller, which is the
/// same I/O a demand read would pay, just issued front-to-back and
/// earlier.
///
/// Thread safety: concurrent Prefetch calls on one prefetcher are safe
/// (one shared prefetcher serves a whole DiskBackedStore, and the query
/// executor's sharded scan prefetches from every pool thread). The
/// worker pool runs at most one wave at a time; an overlapping wave
/// falls back to fetching on its calling thread, which still overlaps
/// with the pool-owning wave and dedups through the cache.
class BlockPrefetcher {
 public:
  /// `depth` = maximum fetches in flight at once (the --prefetch-depth
  /// knob; clamped to >= 1).
  explicit BlockPrefetcher(std::size_t depth);
  ~BlockPrefetcher();

  std::size_t depth() const { return depth_; }

  /// True when waves can fan out over a worker pool (depth > 1 on a
  /// multi-core machine); false means waves run serially on the caller.
  bool parallel() const { return pool_ != nullptr; }

  /// Warms `cache` with every id in `block_ids` (need not be unique;
  /// duplicates are dropped). Returns after the wave completes. Blocks
  /// already resident count toward io.prefetch_hits; the rest are
  /// fetched through `fetch` (io.prefetch_fetches).
  void Prefetch(BlockCache* cache, std::span<const std::uint64_t> block_ids,
                const BlockCache::FetchFn& fetch);

 private:
  std::size_t depth_;
  std::unique_ptr<ThreadPool> pool_;  ///< built at construction; null if depth == 1
  std::mutex pool_mu_;                ///< ParallelFor admits one wave at a time
};

}  // namespace tsc

#endif  // TSC_STORAGE_PREFETCHER_H_
