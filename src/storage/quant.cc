#include "storage/quant.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <cstring>

#include "linalg/kernels.h"
#include "obs/metrics.h"
#include "util/logging.h"

namespace tsc {
namespace {

void CountRowsQuantized() {
  static obs::Counter& rows =
      obs::MetricRegistry::Default().GetCounter("quant.rows_quantized");
  rows.Increment();
}

void CountRowsDequantized() {
  static obs::Counter& rows =
      obs::MetricRegistry::Default().GetCounter("quant.rows_dequantized");
  rows.Increment();
}

void CountFusedDots(std::uint64_t n) {
  static obs::Counter& dots =
      obs::MetricRegistry::Default().GetCounter("quant.fused_dots");
  dots.Add(n);
}

}  // namespace

const char* QuantSchemeName(QuantScheme scheme) {
  switch (scheme) {
    case QuantScheme::kF64:
      return "f64";
    case QuantScheme::kF32:
      return "f32";
    case QuantScheme::kI16:
      return "int16";
    case QuantScheme::kI8:
      return "int8";
  }
  return "unknown";
}

StatusOr<QuantScheme> ParseQuantScheme(const std::string& name) {
  if (name == "f64") return QuantScheme::kF64;
  if (name == "f32") return QuantScheme::kF32;
  if (name == "int16") return QuantScheme::kI16;
  if (name == "int8") return QuantScheme::kI8;
  return Status::InvalidArgument("unknown quant scheme: " + name +
                                 " (expected f64, f32, int16 or int8)");
}

QuantScheme ResolveQuantScheme(const char* env_value) {
  if (env_value == nullptr) return QuantScheme::kF64;
  const StatusOr<QuantScheme> parsed = ParseQuantScheme(env_value);
  return parsed.ok() ? *parsed : QuantScheme::kF64;
}

QuantScheme QuantSchemeFromEnv() {
  return ResolveQuantScheme(std::getenv("TSC_QUANT"));
}

std::size_t QuantElemBytes(QuantScheme scheme) {
  switch (scheme) {
    case QuantScheme::kF64:
      return 8;
    case QuantScheme::kF32:
      return 4;
    case QuantScheme::kI16:
      return 2;
    case QuantScheme::kI8:
      return 1;
  }
  return 8;
}

std::size_t QuantRowStride(QuantScheme scheme, std::size_t cols) {
  if (scheme == QuantScheme::kF64) return cols * sizeof(double);
  const std::size_t code_bytes = cols * QuantElemBytes(scheme);
  return kQuantRowMetaBytes + ((code_bytes + 7) / 8) * 8;
}

std::int32_t QuantMaxCode(QuantScheme scheme) {
  switch (scheme) {
    case QuantScheme::kI16:
      return 32767;
    case QuantScheme::kI8:
      return 127;
    default:
      return 0;
  }
}

QuantRowMeta ComputeQuantRowMeta(QuantScheme scheme,
                                 std::span<const double> row) {
  QuantRowMeta meta;
  const std::int32_t qmax = QuantMaxCode(scheme);
  if (qmax == 0 || row.empty()) return meta;
  const auto [lo_it, hi_it] = std::minmax_element(row.begin(), row.end());
  const double lo = *lo_it;
  const double hi = *hi_it;
  // Midrange-centered affine map: min and max land on -qmax/+qmax, a
  // constant row gets scale 0 (all codes 0, exact decode = offset).
  meta.offset = (lo + hi) / 2.0;
  meta.scale = (hi - lo) / (2.0 * static_cast<double>(qmax));
  if (!std::isfinite(meta.scale)) meta.scale = 0.0;
  return meta;
}

namespace {

template <typename Code>
void EncodeInt(std::span<const double> row, const QuantRowMeta& meta,
               std::int32_t qmax, Code* codes) {
  if (meta.scale == 0.0) {
    std::fill(codes, codes + row.size(), Code{0});
    return;
  }
  const double inv_scale = 1.0 / meta.scale;
  for (std::size_t i = 0; i < row.size(); ++i) {
    const double q = (row[i] - meta.offset) * inv_scale;
    const long code = std::lround(q);
    const long clamped =
        std::clamp<long>(code, -static_cast<long>(qmax),
                         static_cast<long>(qmax));
    codes[i] = static_cast<Code>(clamped);
  }
}

template <typename Code>
void DecodeInt(const Code* codes, double scale, double offset,
               std::span<double> out) {
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = offset + scale * static_cast<double>(codes[i]);
  }
}

}  // namespace

void EncodeQuantRow(QuantScheme scheme, std::span<const double> row,
                    const QuantRowMeta& meta, void* codes) {
  switch (scheme) {
    case QuantScheme::kF64:
      std::memcpy(codes, row.data(), row.size() * sizeof(double));
      return;
    case QuantScheme::kF32: {
      float* dst = static_cast<float*>(codes);
      for (std::size_t i = 0; i < row.size(); ++i) {
        dst[i] = static_cast<float>(row[i]);
      }
      break;
    }
    case QuantScheme::kI16:
      EncodeInt(row, meta, QuantMaxCode(scheme),
                static_cast<std::int16_t*>(codes));
      break;
    case QuantScheme::kI8:
      EncodeInt(row, meta, QuantMaxCode(scheme),
                static_cast<std::int8_t*>(codes));
      break;
  }
  CountRowsQuantized();
}

void DecodeQuantRow(const QuantRowView& view, std::span<double> out) {
  TSC_CHECK_EQ(out.size(), view.n);
  switch (view.scheme) {
    case QuantScheme::kF64:
      std::memcpy(out.data(), view.data, view.n * sizeof(double));
      return;
    case QuantScheme::kF32: {
      const float* src = static_cast<const float*>(view.data);
      for (std::size_t i = 0; i < view.n; ++i) {
        out[i] = static_cast<double>(src[i]);
      }
      break;
    }
    case QuantScheme::kI16:
      DecodeInt(static_cast<const std::int16_t*>(view.data), view.scale,
                view.offset, out);
      break;
    case QuantScheme::kI8:
      DecodeInt(static_cast<const std::int8_t*>(view.data), view.scale,
                view.offset, out);
      break;
  }
  CountRowsDequantized();
}

double DecodeQuantValue(const QuantRowView& view, std::size_t i) {
  TSC_DCHECK(i < view.n);
  switch (view.scheme) {
    case QuantScheme::kF64:
      return static_cast<const double*>(view.data)[i];
    case QuantScheme::kF32:
      return static_cast<const float*>(view.data)[i];
    case QuantScheme::kI16:
      return view.offset +
             view.scale *
                 static_cast<double>(
                     static_cast<const std::int16_t*>(view.data)[i]);
    case QuantScheme::kI8:
      return view.offset +
             view.scale *
                 static_cast<double>(
                     static_cast<const std::int8_t*>(view.data)[i]);
  }
  return 0.0;
}

QuantRowMeta SnapQuantRow(QuantScheme scheme, std::span<double> row) {
  QuantRowMeta meta;
  switch (scheme) {
    case QuantScheme::kF64:
      return meta;
    case QuantScheme::kF32:
      for (double& v : row) v = static_cast<float>(v);
      return meta;
    case QuantScheme::kI16:
    case QuantScheme::kI8:
      break;
  }
  meta = ComputeQuantRowMeta(scheme, row);
  if (meta.scale == 0.0) {
    std::fill(row.begin(), row.end(), meta.offset);
    return meta;
  }
  const double inv_scale = 1.0 / meta.scale;
  const long qmax = QuantMaxCode(scheme);
  for (double& v : row) {
    const long code =
        std::clamp<long>(std::lround((v - meta.offset) * inv_scale), -qmax,
                         qmax);
    v = meta.offset + meta.scale * static_cast<double>(code);
  }
  return meta;
}

double QuantStepAbsError(QuantScheme scheme, const QuantRowMeta& meta) {
  return QuantMaxCode(scheme) == 0 ? 0.0 : meta.scale / 2.0;
}

double QuantDot(const QuantRowView& q, const double* b) {
  switch (q.scheme) {
    case QuantScheme::kF64:
      return kernels::Dot(static_cast<const double*>(q.data), b, q.n);
    case QuantScheme::kF32:
      CountFusedDots(1);
      return kernels::DotF32(static_cast<const float*>(q.data), 1.0, 0.0, b,
                             q.n);
    case QuantScheme::kI16:
      CountFusedDots(1);
      return kernels::DotI16(static_cast<const std::int16_t*>(q.data),
                             q.scale, q.offset, b, q.n);
    case QuantScheme::kI8:
      CountFusedDots(1);
      return kernels::DotI8(static_cast<const std::int8_t*>(q.data), q.scale,
                            q.offset, b, q.n);
  }
  return 0.0;
}

void QuantDotBatch(const QuantRowView& q, const double* rows,
                   std::size_t stride, std::size_t count, double* out) {
  switch (q.scheme) {
    case QuantScheme::kF64:
      kernels::DotBatch(rows, stride, count, static_cast<const double*>(q.data),
                        q.n, out);
      return;
    case QuantScheme::kF32:
      kernels::DotBatchF32(rows, stride, count,
                           static_cast<const float*>(q.data), 1.0, 0.0, q.n,
                           out);
      break;
    case QuantScheme::kI16:
      kernels::DotBatchI16(rows, stride, count,
                           static_cast<const std::int16_t*>(q.data), q.scale,
                           q.offset, q.n, out);
      break;
    case QuantScheme::kI8:
      kernels::DotBatchI8(rows, stride, count,
                          static_cast<const std::int8_t*>(q.data), q.scale,
                          q.offset, q.n, out);
      break;
  }
  CountFusedDots(count);
}

void QuantGemv(const QuantRowView& q, const double* a, std::size_t rows,
               std::size_t stride, double* y) {
  switch (q.scheme) {
    case QuantScheme::kF64:
      kernels::Gemv(a, rows, q.n, stride, static_cast<const double*>(q.data),
                    y);
      return;
    case QuantScheme::kF32:
      kernels::GemvF32(a, rows, q.n, stride,
                       static_cast<const float*>(q.data), 1.0, 0.0, y);
      break;
    case QuantScheme::kI16:
      kernels::GemvI16(a, rows, q.n, stride,
                       static_cast<const std::int16_t*>(q.data), q.scale,
                       q.offset, y);
      break;
    case QuantScheme::kI8:
      kernels::GemvI8(a, rows, q.n, stride,
                      static_cast<const std::int8_t*>(q.data), q.scale,
                      q.offset, y);
      break;
  }
  CountFusedDots(rows);
}

}  // namespace tsc
