#ifndef TSC_STORAGE_QUANT_H_
#define TSC_STORAGE_QUANT_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>

#include "util/status.h"

namespace tsc {

/// How the coefficients of a U row are stored on disk. The paper's whole
/// trade is bytes for bounded error; this is that trade applied to the
/// row store itself: f32 halves the row, int16 quarters it, int8 cuts it
/// 8x, each with a per-row affine decode value = offset + scale * code.
/// kF64 is the exact passthrough (the original "TSCROWS1" layout).
enum class QuantScheme : std::uint32_t {
  kF64 = 0,
  kF32 = 1,
  kI16 = 2,
  kI8 = 3,
};

/// Stable lowercase name ("f64", "f32", "int16", "int8").
const char* QuantSchemeName(QuantScheme scheme);

/// Parses a scheme name; anything other than the four names fails.
StatusOr<QuantScheme> ParseQuantScheme(const std::string& name);

/// The default-scheme decision as a pure function of the raw TSC_QUANT
/// value (null when unset): a valid name selects that scheme, anything
/// else (including unset) means f64. Unit-testable without the process
/// environment.
QuantScheme ResolveQuantScheme(const char* env_value);

/// The scheme `tsctool compress` uses when --quant is not given, read
/// fresh from TSC_QUANT.
QuantScheme QuantSchemeFromEnv();

/// Bytes per stored coefficient (8, 4, 2, 1).
std::size_t QuantElemBytes(QuantScheme scheme);

/// Per-row metadata for the quantized layouts: scale then offset, 16
/// bytes, stored inline ahead of the codes so one row read fetches both.
constexpr std::size_t kQuantRowMetaBytes = 16;

/// On-disk bytes of one row of `cols` coefficients: cols * 8 for kF64
/// (the unchanged TSCROWS1 row), otherwise kQuantRowMetaBytes plus the
/// codes padded up to a multiple of 8 — so with the 32-byte TSCROWQ1
/// header every row (and its meta doubles) stays 8-byte aligned in an
/// mmap view.
std::size_t QuantRowStride(QuantScheme scheme, std::size_t cols);

/// Largest code magnitude of the integer schemes (127 / 32767); 0 for
/// the non-integer schemes.
std::int32_t QuantMaxCode(QuantScheme scheme);

/// The affine decode parameters of one row.
struct QuantRowMeta {
  double scale = 1.0;
  double offset = 0.0;
};

/// A quantized row as served from disk (or straight from the mmap view):
/// `data` points at the codes — doubles for kF64, floats for kF32,
/// int16/int8 codes otherwise — and decode(i) = offset + scale * code[i]
/// for the integer schemes.
struct QuantRowView {
  QuantScheme scheme = QuantScheme::kF64;
  const void* data = nullptr;
  double scale = 1.0;
  double offset = 0.0;
  std::size_t n = 0;
};

/// Decode parameters for `row`: the integer schemes center the affine
/// map on the row's midrange (offset = (min+max)/2, scale spanning the
/// half-range over the code range), so a constant row has scale 0 and
/// decodes exactly. The non-integer schemes return the identity meta.
QuantRowMeta ComputeQuantRowMeta(QuantScheme scheme,
                                 std::span<const double> row);

/// Encodes `row` into `codes` (QuantElemBytes(scheme) * row.size()
/// bytes) under `meta`. Integer codes are rounded to nearest and clamped
/// to the code range. kF64 is a plain copy, kF32 a float narrowing.
void EncodeQuantRow(QuantScheme scheme, std::span<const double> row,
                    const QuantRowMeta& meta, void* codes);

/// Decodes `view` into `out` (size view.n).
void DecodeQuantRow(const QuantRowView& view, std::span<double> out);

/// Decode of a single coefficient of `view`.
double DecodeQuantValue(const QuantRowView& view, std::size_t i);

/// Replaces every value of `row` by its decode(encode(value)) image —
/// the row the quantized store will actually serve. Returns the meta the
/// encode used. The SVDD build snaps U rows with this so the in-memory
/// model, the delta selection, and the exported file all agree on the
/// post-quantization values.
QuantRowMeta SnapQuantRow(QuantScheme scheme, std::span<double> row);

/// Worst-case absolute decode error of the integer schemes under `meta`
/// (half a code step); 0 for kF64. For kF32 the error is relative
/// (2^-24), so callers bound it with the row's largest magnitude:
/// |v| * 2^-24.
double QuantStepAbsError(QuantScheme scheme, const QuantRowMeta& meta);

// ---------------------------------------------------------------------------
// Fused math over quantized rows. These dispatch straight into the
// linalg kernels (scalar or AVX2 per TSC_SIMD) so a row served from the
// zero-copy mmap view is consumed in place, codes and all.
// ---------------------------------------------------------------------------

/// dot(decode(q), b[0..q.n)).
double QuantDot(const QuantRowView& q, const double* b);

/// out[r] = dot(decode(q), rows + r*stride) for r in [0, count).
void QuantDotBatch(const QuantRowView& q, const double* rows,
                   std::size_t stride, std::size_t count, double* out);

/// y[r] += dot(decode(q), a + r*stride) for r in [0, rows).
void QuantGemv(const QuantRowView& q, const double* a, std::size_t rows,
               std::size_t stride, double* y);

}  // namespace tsc

#endif  // TSC_STORAGE_QUANT_H_
