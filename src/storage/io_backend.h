#ifndef TSC_STORAGE_IO_BACKEND_H_
#define TSC_STORAGE_IO_BACKEND_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>

#include "util/status.h"

namespace tsc {

/// How a row-store file is read off the disk.
///
///  - kStream: the original buffered std::ifstream with a shared seek
///    cursor, serialized by a mutex. Kept as the portable reference and
///    the A/B baseline for the other two.
///  - kPread:  positional pread(2) on a plain file descriptor. No shared
///    cursor, no lock: concurrent ReadRow/ReadBlock calls proceed in
///    parallel on one open file.
///  - kMmap:   the whole file mapped read-only. Reads are memcpy (or
///    zero-copy spans straight into the mapping); the kernel page cache
///    acts as a free second-level block cache, and madvise() hints steer
///    readahead.
enum class IoBackendKind {
  kStream,
  kPread,
  kMmap,
};

/// Stable lowercase name ("stream", "pread", "mmap").
const char* IoBackendName(IoBackendKind kind);

/// Parses a backend name; anything other than the three names fails.
StatusOr<IoBackendKind> ParseIoBackendName(const std::string& name);

/// Whether this build can mmap files (POSIX mmap available).
bool MmapAvailable();

/// The dispatch decision as a pure function of its inputs (unit-testable
/// without touching the process environment): `env_value` is the raw
/// TSC_IO setting (null when unset), `mmap_available` whether the
/// platform supports mmap. Unset or unrecognized values pick mmap when
/// available, pread otherwise; "mmap" without platform support falls
/// back to pread.
IoBackendKind ResolveIoBackend(const char* env_value, bool mmap_available);

/// The backend RowStoreReader::Open(path) uses, resolved once per
/// process from TSC_IO and the platform (mirrors kernels::ActiveSimdLevel).
IoBackendKind DefaultIoBackendKind();

/// Read-only random access to one file. All implementations are safe for
/// concurrent ReadAt calls on a single instance; none maintains a seek
/// cursor visible to callers. Every read is accounted to the obs
/// counters `io.reads` / `io.bytes_read`.
class IoBackend {
 public:
  virtual ~IoBackend() = default;

  IoBackend(const IoBackend&) = delete;
  IoBackend& operator=(const IoBackend&) = delete;

  /// Opens `path` with an explicit backend, or the TSC_IO-resolved
  /// default.
  static StatusOr<std::unique_ptr<IoBackend>> Open(const std::string& path,
                                                   IoBackendKind kind);
  static StatusOr<std::unique_ptr<IoBackend>> Open(const std::string& path);

  virtual IoBackendKind kind() const = 0;
  const char* name() const { return IoBackendName(kind()); }

  /// File size in bytes, fixed at open.
  std::uint64_t size() const { return size_; }

  /// Reads exactly out.size() bytes starting at `offset`. A range that
  /// does not fit inside the file is an IoError (callers clamp tail
  /// reads themselves). Thread-safe.
  virtual Status ReadAt(std::uint64_t offset,
                        std::span<std::uint8_t> out) const = 0;

  /// Zero-copy view of the whole file for the mmap backend; empty span
  /// for the others. The view lives as long as the backend.
  virtual std::span<const std::uint8_t> Mapped() const { return {}; }

  /// Access-pattern hints (madvise under mmap, no-ops elsewhere).
  virtual void AdviseSequential() const {}
  virtual void AdviseWillNeed(std::uint64_t offset,
                              std::uint64_t length) const {
    (void)offset;
    (void)length;
  }

 protected:
  IoBackend() = default;

  /// Guards ReadAt ranges; shared by every implementation.
  Status CheckRange(std::uint64_t offset, std::uint64_t length) const;
  /// Bumps io.reads / io.bytes_read.
  static void CountRead(std::uint64_t bytes);

  std::uint64_t size_ = 0;
};

}  // namespace tsc

#endif  // TSC_STORAGE_IO_BACKEND_H_
