#ifndef TSC_STORAGE_BLOOM_FILTER_H_
#define TSC_STORAGE_BLOOM_FILTER_H_

#include <cstdint>
#include <vector>

#include "storage/serializer.h"
#include "util/status.h"

namespace tsc {

/// Standard Bloom filter over 64-bit keys. The paper suggests it twice:
/// in front of the SVDD delta hash table ("predict the majority of
/// non-outliers, and thus save several probes", Section 4.2) and to flag
/// all-zero customers (Section 6.2).
class BloomFilter {
 public:
  /// Sizes the filter for `expected_entries` at `bits_per_entry` (10 bits
  /// per entry gives ~1% false positives); the number of hash functions is
  /// derived as ln 2 * bits_per_entry.
  BloomFilter(std::size_t expected_entries, double bits_per_entry = 10.0);

  void Add(std::uint64_t key);

  /// False means definitely absent; true means probably present.
  bool MightContain(std::uint64_t key) const;

  std::size_t bit_count() const { return bit_count_; }
  std::size_t hash_count() const { return hash_count_; }
  std::size_t entry_count() const { return entry_count_; }
  std::uint64_t SizeBytes() const { return bits_.size() * sizeof(std::uint64_t); }

  /// Theoretical false-positive probability at the current fill.
  double EstimatedFalsePositiveRate() const;

  Status Serialize(BinaryWriter* writer) const;
  static StatusOr<BloomFilter> Deserialize(BinaryReader* reader);

 private:
  BloomFilter() = default;

  static void TwoHashes(std::uint64_t key, std::uint64_t* h1,
                        std::uint64_t* h2);

  std::size_t bit_count_ = 0;
  std::size_t hash_count_ = 0;
  std::size_t entry_count_ = 0;
  std::vector<std::uint64_t> bits_;
};

}  // namespace tsc

#endif  // TSC_STORAGE_BLOOM_FILTER_H_
