#ifndef TSC_STORAGE_BLOCK_CACHE_H_
#define TSC_STORAGE_BLOCK_CACHE_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "util/status.h"

namespace tsc {

/// Fixed-capacity LRU cache of disk blocks — the buffer pool in front of
/// the row store. A query-serving deployment keeps V, the eigenvalues
/// and the delta table pinned; the U rows stream through this cache, so
/// repeated access to hot sequences (skewed, Zipf-like workloads are the
/// norm per Appendix A) costs no disk reads.
///
/// Thread safety: the cache is sharded into independently locked LRU
/// shards keyed by block id, so concurrent readers scale across cores.
/// The fetch callback runs OUTSIDE any cache lock; concurrent misses on
/// distinct blocks fetch in parallel, and concurrent misses on the same
/// block are deduplicated — one caller fetches, the rest wait for its
/// result. The callback must not call back into the cache.
class BlockCache {
 public:
  using Block = std::vector<std::uint8_t>;

  /// Pinned, immutable reference to a cached block. Eviction only drops
  /// the cache's own reference: a Handle returned by Get() stays valid
  /// for as long as the caller holds it, no matter how many blocks are
  /// read (or evicted) in between.
  using Handle = std::shared_ptr<const Block>;

  /// `capacity_blocks` blocks of `block_size` bytes each, spread over
  /// `shards` independently locked LRU shards. `shards` is rounded down
  /// to a power of two; 0 picks automatically — the largest power of two
  /// <= min(16, capacity_blocks / 8) — so small caches keep a single
  /// shard and therefore exact global LRU semantics.
  BlockCache(std::size_t capacity_blocks, std::size_t block_size,
             std::size_t shards = 0);
  ~BlockCache();

  using FetchFn = std::function<Status(std::uint64_t block_id, Block*)>;

  /// Returns a pinned handle to the cached block, fetching through
  /// `fetch` on a miss. Waiting on another caller's in-flight fetch of
  /// the same block counts as a hit (no I/O was issued).
  StatusOr<Handle> Get(std::uint64_t block_id, const FetchFn& fetch);

  /// True when the block is resident or an in-flight fetch will install
  /// it — i.e. a Get() for the block would issue no I/O right now. A
  /// cheap membership probe: it does not promote the block in the LRU
  /// and does not count as a hit. The answer is advisory under
  /// concurrency (the block can be evicted the instant the lock drops);
  /// the prefetcher uses it to skip warm blocks, never for correctness.
  bool Contains(std::uint64_t block_id) const;

  /// Drops one block (e.g. after an off-line batch update touched it).
  /// An in-flight fetch of that block is still handed to its waiters but
  /// not installed, so no stale block can enter the cache.
  void Invalidate(std::uint64_t block_id);
  /// Drops everything.
  void Clear();

  std::size_t capacity_blocks() const { return capacity_blocks_; }
  std::size_t block_size() const { return block_size_; }
  std::size_t shard_count() const { return shards_.size(); }
  std::size_t cached_blocks() const;

  std::uint64_t hits() const;
  std::uint64_t misses() const;
  std::uint64_t evictions() const;
  double HitRate() const;
  void ResetStats();

 private:
  struct Entry {
    std::uint64_t block_id;
    std::shared_ptr<const Block> data;
  };

  /// One caller fetches; everyone else blocks on `cv` until `done`.
  /// `invalidated` is guarded by the owning shard's mutex and tells the
  /// fetcher not to install the result.
  struct InFlight {
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;
    bool invalidated = false;
    Status status = Status::Ok();
    Handle handle;
  };

  struct Shard {
    std::size_t capacity = 0;
    mutable std::mutex mu;
    std::list<Entry> lru;  ///< front = most recently used
    std::unordered_map<std::uint64_t, std::list<Entry>::iterator> entries;
    std::unordered_map<std::uint64_t, std::shared_ptr<InFlight>> in_flight;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
  };

  Shard& ShardFor(std::uint64_t block_id);
  const Shard& ShardFor(std::uint64_t block_id) const;
  /// Installs `handle` in `shard` (assumes the caller holds shard.mu) and
  /// evicts the shard's LRU entry if it is at capacity.
  void InstallLocked(Shard& shard, std::uint64_t block_id,
                     const Handle& handle);

  std::size_t capacity_blocks_;
  std::size_t block_size_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::uint64_t shard_mask_ = 0;
};

}  // namespace tsc

#endif  // TSC_STORAGE_BLOCK_CACHE_H_
