#ifndef TSC_STORAGE_BLOCK_CACHE_H_
#define TSC_STORAGE_BLOCK_CACHE_H_

#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "util/status.h"

namespace tsc {

/// Fixed-capacity LRU cache of disk blocks — the buffer pool in front of
/// the row store. A query-serving deployment keeps V, the eigenvalues
/// and the delta table pinned; the U rows stream through this cache, so
/// repeated access to hot sequences (skewed, Zipf-like workloads are the
/// norm per Appendix A) costs no disk reads.
///
/// Thread safety: all methods take an internal mutex, so concurrent
/// readers may share one cache. The fetch callback runs under that mutex
/// (concurrent misses serialize) and must not call back into the cache.
class BlockCache {
 public:
  using Block = std::vector<std::uint8_t>;

  /// Pinned, immutable reference to a cached block. Eviction only drops
  /// the cache's own reference: a Handle returned by Get() stays valid
  /// for as long as the caller holds it, no matter how many blocks are
  /// read (or evicted) in between.
  using Handle = std::shared_ptr<const Block>;

  /// `capacity_blocks` blocks of `block_size` bytes each.
  BlockCache(std::size_t capacity_blocks, std::size_t block_size);
  ~BlockCache();

  using FetchFn = std::function<Status(std::uint64_t block_id, Block*)>;

  /// Returns a pinned handle to the cached block, fetching through
  /// `fetch` on a miss.
  StatusOr<Handle> Get(std::uint64_t block_id, const FetchFn& fetch);

  /// Drops one block (e.g. after an off-line batch update touched it).
  void Invalidate(std::uint64_t block_id);
  /// Drops everything.
  void Clear();

  std::size_t capacity_blocks() const { return capacity_blocks_; }
  std::size_t block_size() const { return block_size_; }
  std::size_t cached_blocks() const {
    std::lock_guard<std::mutex> lock(mu_);
    return entries_.size();
  }

  std::uint64_t hits() const {
    std::lock_guard<std::mutex> lock(mu_);
    return hits_;
  }
  std::uint64_t misses() const {
    std::lock_guard<std::mutex> lock(mu_);
    return misses_;
  }
  std::uint64_t evictions() const {
    std::lock_guard<std::mutex> lock(mu_);
    return evictions_;
  }
  double HitRate() const {
    std::lock_guard<std::mutex> lock(mu_);
    const std::uint64_t total = hits_ + misses_;
    return total == 0 ? 0.0 : static_cast<double>(hits_) / total;
  }
  void ResetStats() {
    std::lock_guard<std::mutex> lock(mu_);
    hits_ = 0;
    misses_ = 0;
    evictions_ = 0;
  }

 private:
  struct Entry {
    std::uint64_t block_id;
    std::shared_ptr<const Block> data;
  };

  std::size_t capacity_blocks_;
  std::size_t block_size_;
  mutable std::mutex mu_;
  std::list<Entry> lru_;  ///< front = most recently used
  std::unordered_map<std::uint64_t, std::list<Entry>::iterator> entries_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
};

}  // namespace tsc

#endif  // TSC_STORAGE_BLOCK_CACHE_H_
