#include "storage/block_cache.h"

#include <algorithm>

#include "obs/metrics.h"
#include "obs/query_context.h"
#include "util/logging.h"

namespace tsc {
namespace {

// Process-wide cache instruments, shared by every BlockCache instance.
// References are stable for the process lifetime (registry never deletes),
// so the map lookup happens once.
struct CacheMetrics {
  obs::Counter& hits =
      obs::MetricRegistry::Default().GetCounter("block_cache.hits");
  obs::Counter& misses =
      obs::MetricRegistry::Default().GetCounter("block_cache.misses");
  obs::Counter& evictions =
      obs::MetricRegistry::Default().GetCounter("block_cache.evictions");
  obs::Counter& evicted_pinned = obs::MetricRegistry::Default().GetCounter(
      "block_cache.evicted_pinned");
  obs::Counter& shard_hits =
      obs::MetricRegistry::Default().GetCounter("cache.shard_hits");
  obs::Gauge& cached_blocks =
      obs::MetricRegistry::Default().GetGauge("block_cache.cached_blocks");
};

CacheMetrics& Metrics() {
  static CacheMetrics* metrics = new CacheMetrics();
  return *metrics;
}

std::size_t FloorPow2(std::size_t n) {
  std::size_t p = 1;
  while (p * 2 <= n) p *= 2;
  return p;
}

/// SplitMix64 finalizer: block ids are often sequential, so spread them
/// across shards with a real mix instead of low-bit masking.
std::uint64_t MixBlockId(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

BlockCache::BlockCache(std::size_t capacity_blocks, std::size_t block_size,
                       std::size_t shards)
    : capacity_blocks_(capacity_blocks), block_size_(block_size) {
  TSC_CHECK_GT(capacity_blocks, 0u);
  TSC_CHECK_GT(block_size, 0u);
  std::size_t count;
  if (shards == 0) {
    // Auto: keep at least 8 blocks per shard so tiny caches stay single
    // shard (exact global LRU, which the eviction-order tests rely on).
    count = FloorPow2(std::max<std::size_t>(1, std::min<std::size_t>(
                                                   16, capacity_blocks / 8)));
  } else {
    count = FloorPow2(std::min(shards, capacity_blocks));
  }
  shard_mask_ = count - 1;
  shards_.reserve(count);
  for (std::size_t s = 0; s < count; ++s) {
    auto shard = std::make_unique<Shard>();
    shard->capacity = capacity_blocks / count +
                      (s < capacity_blocks % count ? 1 : 0);
    shards_.push_back(std::move(shard));
  }
}

BlockCache::Shard& BlockCache::ShardFor(std::uint64_t block_id) {
  if (shard_mask_ == 0) return *shards_[0];
  return *shards_[MixBlockId(block_id) & shard_mask_];
}

const BlockCache::Shard& BlockCache::ShardFor(std::uint64_t block_id) const {
  if (shard_mask_ == 0) return *shards_[0];
  return *shards_[MixBlockId(block_id) & shard_mask_];
}

bool BlockCache::Contains(std::uint64_t block_id) const {
  const Shard& shard = ShardFor(block_id);
  std::lock_guard<std::mutex> lock(shard.mu);
  return shard.entries.count(block_id) != 0 ||
         shard.in_flight.count(block_id) != 0;
}

void BlockCache::InstallLocked(Shard& shard, std::uint64_t block_id,
                               const Handle& handle) {
  if (shard.entries.size() >= shard.capacity) {
    // Evict the shard's LRU entry. Any Handle still pointing at the
    // victim keeps its bytes alive; only the cache's reference is
    // dropped.
    const Entry& victim = shard.lru.back();
    if (victim.data.use_count() > 1) {
      Metrics().evicted_pinned.Increment();
    }
    shard.entries.erase(victim.block_id);
    shard.lru.pop_back();
    ++shard.evictions;
    Metrics().evictions.Increment();
    Metrics().cached_blocks.Add(-1.0);
  }
  shard.lru.push_front(Entry{block_id, handle});
  shard.entries[block_id] = shard.lru.begin();
  Metrics().cached_blocks.Add(1.0);
}

StatusOr<BlockCache::Handle> BlockCache::Get(std::uint64_t block_id,
                                             const FetchFn& fetch) {
  Shard& shard = ShardFor(block_id);
  std::shared_ptr<InFlight> flight;
  bool owner = false;
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    const auto it = shard.entries.find(block_id);
    if (it != shard.entries.end()) {
      ++shard.hits;
      Metrics().hits.Increment();
      Metrics().shard_hits.Increment();
      obs::ChargeCacheHit();
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
      return it->second->data;
    }
    const auto fit = shard.in_flight.find(block_id);
    if (fit != shard.in_flight.end()) {
      // Another caller is already fetching this block; ride along. No
      // I/O is issued on this path, so it counts as a hit.
      flight = fit->second;
      ++shard.hits;
      Metrics().hits.Increment();
      Metrics().shard_hits.Increment();
      obs::ChargeCacheHit();
    } else {
      flight = std::make_shared<InFlight>();
      shard.in_flight.emplace(block_id, flight);
      owner = true;
      ++shard.misses;
      Metrics().misses.Increment();
      obs::ChargeCacheMiss();
    }
  }

  if (!owner) {
    std::unique_lock<std::mutex> lock(flight->mu);
    flight->cv.wait(lock, [&] { return flight->done; });
    if (!flight->status.ok()) return flight->status;
    return flight->handle;
  }

  // Owner path: fetch with no cache lock held, so misses on other blocks
  // (and hits everywhere) proceed in parallel.
  auto block = std::make_shared<Block>(block_size_);
  const Status status = fetch(block_id, block.get());
  Handle handle;
  if (status.ok()) handle = std::move(block);
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.in_flight.erase(block_id);
    // Install unless Invalidate()/Clear() raced with the fetch (the
    // waiters still get the bytes; the cache just forgets them) or some
    // later fetch already installed the block.
    if (status.ok() && !flight->invalidated &&
        shard.entries.find(block_id) == shard.entries.end()) {
      InstallLocked(shard, block_id, handle);
    }
  }
  {
    std::lock_guard<std::mutex> lock(flight->mu);
    flight->status = status;
    flight->handle = handle;
    flight->done = true;
  }
  flight->cv.notify_all();
  if (!status.ok()) return status;
  return handle;
}

void BlockCache::Invalidate(std::uint64_t block_id) {
  Shard& shard = ShardFor(block_id);
  std::lock_guard<std::mutex> lock(shard.mu);
  const auto fit = shard.in_flight.find(block_id);
  if (fit != shard.in_flight.end()) fit->second->invalidated = true;
  const auto it = shard.entries.find(block_id);
  if (it == shard.entries.end()) return;
  shard.lru.erase(it->second);
  shard.entries.erase(it);
  Metrics().cached_blocks.Add(-1.0);
}

void BlockCache::Clear() {
  for (const std::unique_ptr<Shard>& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    for (auto& [id, flight] : shard->in_flight) flight->invalidated = true;
    Metrics().cached_blocks.Add(-static_cast<double>(shard->entries.size()));
    shard->lru.clear();
    shard->entries.clear();
  }
}

std::size_t BlockCache::cached_blocks() const {
  std::size_t total = 0;
  for (const std::unique_ptr<Shard>& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    total += shard->entries.size();
  }
  return total;
}

std::uint64_t BlockCache::hits() const {
  std::uint64_t total = 0;
  for (const std::unique_ptr<Shard>& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    total += shard->hits;
  }
  return total;
}

std::uint64_t BlockCache::misses() const {
  std::uint64_t total = 0;
  for (const std::unique_ptr<Shard>& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    total += shard->misses;
  }
  return total;
}

std::uint64_t BlockCache::evictions() const {
  std::uint64_t total = 0;
  for (const std::unique_ptr<Shard>& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    total += shard->evictions;
  }
  return total;
}

double BlockCache::HitRate() const {
  const std::uint64_t h = hits();
  const std::uint64_t total = h + misses();
  return total == 0 ? 0.0 : static_cast<double>(h) / total;
}

void BlockCache::ResetStats() {
  for (const std::unique_ptr<Shard>& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    shard->hits = 0;
    shard->misses = 0;
    shard->evictions = 0;
  }
}

BlockCache::~BlockCache() {
  std::size_t total = 0;
  for (const std::unique_ptr<Shard>& shard : shards_) total += shard->entries.size();
  Metrics().cached_blocks.Add(-static_cast<double>(total));
}

}  // namespace tsc
