#include "storage/block_cache.h"

#include "util/logging.h"

namespace tsc {

BlockCache::BlockCache(std::size_t capacity_blocks, std::size_t block_size)
    : capacity_blocks_(capacity_blocks), block_size_(block_size) {
  TSC_CHECK_GT(capacity_blocks, 0u);
  TSC_CHECK_GT(block_size, 0u);
}

StatusOr<const std::vector<std::uint8_t>*> BlockCache::Get(
    std::uint64_t block_id, const FetchFn& fetch) {
  const auto it = entries_.find(block_id);
  if (it != entries_.end()) {
    ++hits_;
    lru_.splice(lru_.begin(), lru_, it->second);  // move to front
    return &it->second->data;
  }
  ++misses_;
  Entry entry;
  entry.block_id = block_id;
  entry.data.resize(block_size_);
  TSC_RETURN_IF_ERROR(fetch(block_id, &entry.data));
  if (entries_.size() >= capacity_blocks_) {
    const Entry& victim = lru_.back();
    entries_.erase(victim.block_id);
    lru_.pop_back();
    ++evictions_;
  }
  lru_.push_front(std::move(entry));
  entries_[block_id] = lru_.begin();
  return &lru_.front().data;
}

void BlockCache::Invalidate(std::uint64_t block_id) {
  const auto it = entries_.find(block_id);
  if (it == entries_.end()) return;
  lru_.erase(it->second);
  entries_.erase(it);
}

void BlockCache::Clear() {
  lru_.clear();
  entries_.clear();
}

}  // namespace tsc
