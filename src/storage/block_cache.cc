#include "storage/block_cache.h"

#include "obs/metrics.h"
#include "util/logging.h"

namespace tsc {
namespace {

// Process-wide cache instruments, shared by every BlockCache instance.
// References are stable for the process lifetime (registry never deletes),
// so the map lookup happens once.
struct CacheMetrics {
  obs::Counter& hits =
      obs::MetricRegistry::Default().GetCounter("block_cache.hits");
  obs::Counter& misses =
      obs::MetricRegistry::Default().GetCounter("block_cache.misses");
  obs::Counter& evictions =
      obs::MetricRegistry::Default().GetCounter("block_cache.evictions");
  obs::Counter& evicted_pinned = obs::MetricRegistry::Default().GetCounter(
      "block_cache.evicted_pinned");
  obs::Gauge& cached_blocks =
      obs::MetricRegistry::Default().GetGauge("block_cache.cached_blocks");
};

CacheMetrics& Metrics() {
  static CacheMetrics* metrics = new CacheMetrics();
  return *metrics;
}

}  // namespace

BlockCache::BlockCache(std::size_t capacity_blocks, std::size_t block_size)
    : capacity_blocks_(capacity_blocks), block_size_(block_size) {
  TSC_CHECK_GT(capacity_blocks, 0u);
  TSC_CHECK_GT(block_size, 0u);
}

StatusOr<BlockCache::Handle> BlockCache::Get(std::uint64_t block_id,
                                             const FetchFn& fetch) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = entries_.find(block_id);
  if (it != entries_.end()) {
    ++hits_;
    Metrics().hits.Increment();
    lru_.splice(lru_.begin(), lru_, it->second);  // move to front
    return it->second->data;
  }
  ++misses_;
  Metrics().misses.Increment();
  auto block = std::make_shared<Block>(block_size_);
  TSC_RETURN_IF_ERROR(fetch(block_id, block.get()));
  if (entries_.size() >= capacity_blocks_) {
    // Evict the LRU entry. Any Handle still pointing at the victim keeps
    // its bytes alive; only the cache's reference is dropped.
    const Entry& victim = lru_.back();
    if (victim.data.use_count() > 1) {
      Metrics().evicted_pinned.Increment();
    }
    entries_.erase(victim.block_id);
    lru_.pop_back();
    ++evictions_;
    Metrics().evictions.Increment();
    Metrics().cached_blocks.Add(-1.0);
  }
  Handle handle = std::move(block);
  lru_.push_front(Entry{block_id, handle});
  entries_[block_id] = lru_.begin();
  Metrics().cached_blocks.Add(1.0);
  return handle;
}

void BlockCache::Invalidate(std::uint64_t block_id) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = entries_.find(block_id);
  if (it == entries_.end()) return;
  lru_.erase(it->second);
  entries_.erase(it);
  Metrics().cached_blocks.Add(-1.0);
}

void BlockCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  Metrics().cached_blocks.Add(-static_cast<double>(entries_.size()));
  lru_.clear();
  entries_.clear();
}

BlockCache::~BlockCache() {
  Metrics().cached_blocks.Add(-static_cast<double>(entries_.size()));
}

}  // namespace tsc
