#include "storage/block_cache.h"

#include "util/logging.h"

namespace tsc {

BlockCache::BlockCache(std::size_t capacity_blocks, std::size_t block_size)
    : capacity_blocks_(capacity_blocks), block_size_(block_size) {
  TSC_CHECK_GT(capacity_blocks, 0u);
  TSC_CHECK_GT(block_size, 0u);
}

StatusOr<BlockCache::Handle> BlockCache::Get(std::uint64_t block_id,
                                             const FetchFn& fetch) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = entries_.find(block_id);
  if (it != entries_.end()) {
    ++hits_;
    lru_.splice(lru_.begin(), lru_, it->second);  // move to front
    return it->second->data;
  }
  ++misses_;
  auto block = std::make_shared<Block>(block_size_);
  TSC_RETURN_IF_ERROR(fetch(block_id, block.get()));
  if (entries_.size() >= capacity_blocks_) {
    // Evict the LRU entry. Any Handle still pointing at the victim keeps
    // its bytes alive; only the cache's reference is dropped.
    const Entry& victim = lru_.back();
    entries_.erase(victim.block_id);
    lru_.pop_back();
    ++evictions_;
  }
  Handle handle = std::move(block);
  lru_.push_front(Entry{block_id, handle});
  entries_[block_id] = lru_.begin();
  return handle;
}

void BlockCache::Invalidate(std::uint64_t block_id) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = entries_.find(block_id);
  if (it == entries_.end()) return;
  lru_.erase(it->second);
  entries_.erase(it);
}

void BlockCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  lru_.clear();
  entries_.clear();
}

}  // namespace tsc
