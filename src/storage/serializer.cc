#include "storage/serializer.h"

#include <cstring>
#include <limits>

namespace tsc {
namespace {

// The library targets little-endian hosts (asserted here once); the format
// is defined as little-endian so files round-trip across builds.
bool HostIsLittleEndian() {
  const std::uint32_t probe = 1;
  unsigned char byte = 0;
  std::memcpy(&byte, &probe, 1);
  return byte == 1;
}

}  // namespace

StatusOr<BinaryWriter> BinaryWriter::Open(const std::string& path) {
  if (!HostIsLittleEndian()) {
    return Status::Unimplemented("big-endian hosts are not supported");
  }
  BinaryWriter writer;
  writer.out_.open(path, std::ios::binary | std::ios::trunc);
  if (!writer.out_) {
    return Status::IoError("cannot open for writing: " + path);
  }
  return writer;
}

Status BinaryWriter::WriteBytes(const void* data, std::size_t size) {
  out_.write(static_cast<const char*>(data),
             static_cast<std::streamsize>(size));
  if (!out_) return Status::IoError("write failed");
  bytes_written_ += size;
  const auto* bytes = static_cast<const std::uint8_t*>(data);
  for (std::size_t i = 0; i < size; ++i) {
    checksum_ = (checksum_ ^ bytes[i]) * kFnvPrime;
  }
  return Status::Ok();
}

Status BinaryWriter::FinishWithChecksum() {
  const std::uint64_t digest = checksum_;
  out_.write(reinterpret_cast<const char*>(&digest), sizeof(digest));
  if (!out_) return Status::IoError("checksum write failed");
  bytes_written_ += sizeof(digest);
  return Flush();
}

Status BinaryWriter::WriteU32(std::uint32_t value) {
  return WriteBytes(&value, sizeof(value));
}

Status BinaryWriter::WriteU64(std::uint64_t value) {
  return WriteBytes(&value, sizeof(value));
}

Status BinaryWriter::WriteDouble(double value) {
  return WriteBytes(&value, sizeof(value));
}

Status BinaryWriter::WriteString(const std::string& value) {
  TSC_RETURN_IF_ERROR(WriteU64(value.size()));
  return WriteBytes(value.data(), value.size());
}

Status BinaryWriter::WriteDoubleVector(const std::vector<double>& values) {
  TSC_RETURN_IF_ERROR(WriteU64(values.size()));
  if (!values.empty()) {
    TSC_RETURN_IF_ERROR(
        WriteBytes(values.data(), values.size() * sizeof(double)));
  }
  return Status::Ok();
}

Status BinaryWriter::WriteMatrix(const Matrix& matrix) {
  TSC_RETURN_IF_ERROR(WriteU64(matrix.rows()));
  TSC_RETURN_IF_ERROR(WriteU64(matrix.cols()));
  if (!matrix.data().empty()) {
    TSC_RETURN_IF_ERROR(WriteBytes(matrix.data().data(),
                                   matrix.data().size() * sizeof(double)));
  }
  return Status::Ok();
}

Status BinaryWriter::Flush() {
  out_.flush();
  if (!out_) return Status::IoError("flush failed");
  return Status::Ok();
}

StatusOr<BinaryReader> BinaryReader::Open(const std::string& path) {
  if (!HostIsLittleEndian()) {
    return Status::Unimplemented("big-endian hosts are not supported");
  }
  BinaryReader reader;
  reader.in_.open(path, std::ios::binary);
  if (!reader.in_) {
    return Status::IoError("cannot open for reading: " + path);
  }
  return reader;
}

Status BinaryReader::ReadBytes(void* data, std::size_t size) {
  in_.read(static_cast<char*>(data), static_cast<std::streamsize>(size));
  if (in_.gcount() != static_cast<std::streamsize>(size)) {
    return Status::IoError("unexpected end of file");
  }
  const auto* bytes = static_cast<const std::uint8_t*>(data);
  for (std::size_t i = 0; i < size; ++i) {
    checksum_ = (checksum_ ^ bytes[i]) * BinaryWriter::kFnvPrime;
  }
  return Status::Ok();
}

Status BinaryReader::VerifyChecksum() {
  const std::uint64_t expected = checksum_;  // before consuming the trailer
  std::uint64_t stored = 0;
  in_.read(reinterpret_cast<char*>(&stored), sizeof(stored));
  if (in_.gcount() != sizeof(stored)) {
    return Status::IoError("missing checksum trailer");
  }
  if (stored != expected) {
    return Status::IoError("checksum mismatch: file corrupt or truncated");
  }
  return Status::Ok();
}

StatusOr<std::uint32_t> BinaryReader::ReadU32() {
  std::uint32_t value = 0;
  TSC_RETURN_IF_ERROR(ReadBytes(&value, sizeof(value)));
  return value;
}

StatusOr<std::uint64_t> BinaryReader::ReadU64() {
  std::uint64_t value = 0;
  TSC_RETURN_IF_ERROR(ReadBytes(&value, sizeof(value)));
  return value;
}

StatusOr<double> BinaryReader::ReadDouble() {
  double value = 0;
  TSC_RETURN_IF_ERROR(ReadBytes(&value, sizeof(value)));
  return value;
}

StatusOr<std::string> BinaryReader::ReadString() {
  TSC_ASSIGN_OR_RETURN(const std::uint64_t size, ReadU64());
  if (size > (1ULL << 32)) return Status::IoError("corrupt string length");
  std::string value(size, '\0');
  if (size > 0) TSC_RETURN_IF_ERROR(ReadBytes(value.data(), size));
  return value;
}

StatusOr<std::vector<double>> BinaryReader::ReadDoubleVector() {
  TSC_ASSIGN_OR_RETURN(const std::uint64_t size, ReadU64());
  if (size > (1ULL << 40) / sizeof(double)) {
    return Status::IoError("corrupt vector length");
  }
  std::vector<double> values(size);
  if (size > 0) {
    TSC_RETURN_IF_ERROR(ReadBytes(values.data(), size * sizeof(double)));
  }
  return values;
}

StatusOr<Matrix> BinaryReader::ReadMatrix() {
  TSC_ASSIGN_OR_RETURN(const std::uint64_t rows, ReadU64());
  TSC_ASSIGN_OR_RETURN(const std::uint64_t cols, ReadU64());
  if (rows > 0 && cols > std::numeric_limits<std::uint64_t>::max() / rows) {
    return Status::IoError("corrupt matrix dims");
  }
  const std::uint64_t count = rows * cols;
  if (count > (1ULL << 40) / sizeof(double)) {
    return Status::IoError("matrix too large");
  }
  Matrix m(rows, cols);
  if (count > 0) {
    TSC_RETURN_IF_ERROR(ReadBytes(m.data().data(), count * sizeof(double)));
  }
  return m;
}

}  // namespace tsc
