#ifndef TSC_STORAGE_DELTA_TABLE_H_
#define TSC_STORAGE_DELTA_TABLE_H_

#include <atomic>
#include <cstdint>
#include <optional>
#include <vector>

#include "storage/serializer.h"
#include "util/status.h"

namespace tsc {

/// Hash table from cell key to outlier delta, exactly the SVDD side
/// structure of Section 4.2: the key is the cell's row-major rank
/// (row * M + column) and the value is the difference between the true
/// value and the plain-SVD reconstruction.
///
/// Open addressing with linear probing over a power-of-two table; probe
/// counts are tracked so the Bloom-filter ablation can report the probes
/// a front filter saves.
class DeltaTable {
 public:
  /// `expected_entries` pre-sizes the table (load factor <= 0.7).
  explicit DeltaTable(std::size_t expected_entries = 0);

  // Copyable and movable; spelled out because the atomic probe counter
  // deletes the defaults. The counter value travels with the table.
  DeltaTable(const DeltaTable& other);
  DeltaTable& operator=(const DeltaTable& other);
  DeltaTable(DeltaTable&& other) noexcept;
  DeltaTable& operator=(DeltaTable&& other) noexcept;

  static std::uint64_t CellKey(std::size_t row, std::size_t col,
                               std::size_t num_cols) {
    return static_cast<std::uint64_t>(row) * num_cols + col;
  }

  /// Inserts or overwrites the delta for `key`.
  void Put(std::uint64_t key, double delta);

  /// Delta for `key`, or nullopt when the cell is not an outlier.
  std::optional<double> Get(std::uint64_t key) const;

  bool Contains(std::uint64_t key) const { return Get(key).has_value(); }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  std::size_t bucket_count() const { return buckets_.size(); }

  /// Total slots inspected by Get() so far (the Bloom ablation metric).
  /// Like the count itself, resetting is a statistics operation and does
  /// not mutate logical state, hence const. The counter is a relaxed
  /// atomic so concurrent read-only queries through Get() stay data-race
  /// free; Put() remains single-writer (build/patch time only).
  std::uint64_t probe_count() const {
    return probe_count_.load(std::memory_order_relaxed);
  }
  void ResetProbeCount() const {
    probe_count_.store(0, std::memory_order_relaxed);
  }

  /// Bytes this table would occupy on disk if stored as packed
  /// (key, delta) pairs; this is the "O(b) bytes per delta" accounting the
  /// paper uses for the SVDD space budget. The per-entry cost defaults to
  /// an 8-byte key + 8-byte double and is configurable so alternative
  /// encodings (e.g. float deltas at b=4, or naive 3x8 triplets) account
  /// honestly.
  std::uint64_t PackedBytes() const { return size_ * entry_bytes_; }
  static constexpr std::uint64_t kPackedEntryBytes = 8 + 8;
  void set_entry_bytes(std::uint64_t bytes) { entry_bytes_ = bytes; }
  std::uint64_t entry_bytes() const { return entry_bytes_; }

  /// Rounds every stored delta through single precision (the b=4 storage
  /// mode of the quantized models).
  void QuantizeValuesToFloat();

  /// Visits every (key, delta) pair in unspecified order.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (const Bucket& b : buckets_) {
      if (b.occupied) fn(b.key, b.delta);
    }
  }

  Status Serialize(BinaryWriter* writer) const;
  static StatusOr<DeltaTable> Deserialize(BinaryReader* reader);

 private:
  struct Bucket {
    std::uint64_t key = 0;
    double delta = 0.0;
    bool occupied = false;
  };

  static std::uint64_t HashKey(std::uint64_t key);
  void Grow();
  std::size_t Mask() const { return buckets_.size() - 1; }

  std::vector<Bucket> buckets_;
  std::size_t size_ = 0;
  std::uint64_t entry_bytes_ = kPackedEntryBytes;
  mutable std::atomic<std::uint64_t> probe_count_{0};
};

}  // namespace tsc

#endif  // TSC_STORAGE_DELTA_TABLE_H_
