#include "util/json_writer.h"

#include <cmath>
#include <cstdio>

namespace tsc {

void JsonWriter::MaybeComma() {
  if (pending_key_) {
    pending_key_ = false;
    return;
  }
  if (!has_element_.empty()) {
    if (has_element_.back()) out_ += ',';
    has_element_.back() = true;
  }
}

JsonWriter& JsonWriter::BeginObject() {
  MaybeComma();
  out_ += '{';
  has_element_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::EndObject() {
  has_element_.pop_back();
  out_ += '}';
  return *this;
}

JsonWriter& JsonWriter::BeginArray() {
  MaybeComma();
  out_ += '[';
  has_element_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::EndArray() {
  has_element_.pop_back();
  out_ += ']';
  return *this;
}

JsonWriter& JsonWriter::Key(std::string_view name) {
  MaybeComma();
  out_ += '"';
  out_ += Escape(name);
  out_ += "\":";
  pending_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::Value(std::string_view text) {
  MaybeComma();
  out_ += '"';
  out_ += Escape(text);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::Value(double number) {
  MaybeComma();
  if (!std::isfinite(number)) {
    // JSON has no inf/nan; null keeps the document parseable.
    out_ += "null";
    return *this;
  }
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.17g", number);
  out_ += buffer;
  return *this;
}

JsonWriter& JsonWriter::Value(std::uint64_t number) {
  MaybeComma();
  out_ += std::to_string(number);
  return *this;
}

JsonWriter& JsonWriter::Value(std::int64_t number) {
  MaybeComma();
  out_ += std::to_string(number);
  return *this;
}

JsonWriter& JsonWriter::Value(bool flag) {
  MaybeComma();
  out_ += flag ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::Null() {
  MaybeComma();
  out_ += "null";
  return *this;
}

JsonWriter& JsonWriter::RawValue(std::string_view json) {
  MaybeComma();
  out_ += json;
  return *this;
}

std::string JsonWriter::Escape(std::string_view text) {
  std::string escaped;
  escaped.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"':
        escaped += "\\\"";
        break;
      case '\\':
        escaped += "\\\\";
        break;
      case '\n':
        escaped += "\\n";
        break;
      case '\r':
        escaped += "\\r";
        break;
      case '\t':
        escaped += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(c));
          escaped += buffer;
        } else {
          escaped += c;
        }
    }
  }
  return escaped;
}

}  // namespace tsc
