#ifndef TSC_UTIL_THREAD_POOL_H_
#define TSC_UTIL_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace tsc {

/// Fixed-size worker pool driving the build passes. The pool only decides
/// WHERE loop bodies run, never WHAT they compute: the build kernels shard
/// their work by a fixed shard count and reduce shard results in shard
/// order, so `--threads=1` and `--threads=N` produce bitwise-identical
/// models (see DESIGN.md, "Parallel build pipeline").
class ThreadPool {
 public:
  /// Total worker count including the calling thread (clamped to >= 1);
  /// `num_threads - 1` background threads are spawned.
  explicit ThreadPool(std::size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t num_threads() const { return num_threads_; }

  /// Runs body(i) for every i in [begin, end), distributing indices over
  /// the background workers plus the calling thread, and returns once all
  /// have finished. Not reentrant: body must not call ParallelFor on the
  /// same pool. The first exception thrown by body (if any) is rethrown
  /// here after the loop drains.
  void ParallelFor(std::size_t begin, std::size_t end,
                   const std::function<void(std::size_t)>& body);

  /// The machine's hardware concurrency, at least 1.
  static std::size_t HardwareThreads();

 private:
  void WorkerLoop();
  void RunIndices(const std::function<void(std::size_t)>& body,
                  std::size_t end);

  std::size_t num_threads_;
  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  bool stop_ = false;
  /// Incremented per ParallelFor call; workers adopt jobs they have not
  /// seen yet. Guarded by mu_ together with job_body_/job_end_.
  std::uint64_t job_epoch_ = 0;
  const std::function<void(std::size_t)>* job_body_ = nullptr;
  std::size_t job_end_ = 0;
  std::atomic<std::size_t> job_next_{0};
  std::size_t job_running_ = 0;  ///< workers currently inside the job
  std::exception_ptr job_error_;
};

/// Convenience wrapper used throughout the build pipeline: runs body(i)
/// for i in [0, count) on `pool`, or inline on the calling thread when
/// `pool` is null — the two execute the same bodies in a shard-safe way,
/// so results are identical either way.
void ParallelFor(ThreadPool* pool, std::size_t count,
                 const std::function<void(std::size_t)>& body);

}  // namespace tsc

#endif  // TSC_UTIL_THREAD_POOL_H_
