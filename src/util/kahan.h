#ifndef TSC_UTIL_KAHAN_H_
#define TSC_UTIL_KAHAN_H_

namespace tsc {

/// Kahan (compensated) summation. The SVDD pass-2 epsilon_k accounting
/// sums up to N*M squared errors per candidate k; naive summation loses
/// enough precision at that length for the k_opt pick to flip between
/// runs of different sizes. The compensation term keeps the running error
/// at O(1) ulp independent of the number of addends.
class KahanSum {
 public:
  void Add(double x) {
    const double y = x - compensation_;
    const double t = sum_ + y;
    compensation_ = (t - sum_) - y;
    sum_ = t;
  }

  /// Folds another accumulator in (sum first, then its residual error).
  void Merge(const KahanSum& other) {
    Add(other.sum_);
    Add(-other.compensation_);
  }

  double value() const { return sum_ - compensation_; }

 private:
  double sum_ = 0.0;
  double compensation_ = 0.0;
};

}  // namespace tsc

#endif  // TSC_UTIL_KAHAN_H_
