#ifndef TSC_UTIL_STATUS_H_
#define TSC_UTIL_STATUS_H_

#include <cstdint>
#include <optional>
#include <ostream>
#include <string>
#include <utility>

namespace tsc {

/// Canonical error space, modeled after the usual database-systems set.
enum class StatusCode : std::uint8_t {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kFailedPrecondition,
  kInternal,
  kIoError,
  kUnimplemented,
  kResourceExhausted,
};

/// Returns a stable human-readable name, e.g. "INVALID_ARGUMENT".
const char* StatusCodeName(StatusCode code);

/// A cheap value type carrying success or an error code plus message.
///
/// The library does not throw exceptions; every fallible operation returns
/// Status or StatusOr<T>. Use the TSC_RETURN_IF_ERROR / TSC_ASSIGN_OR_RETURN
/// macros to propagate.
class Status {
 public:
  /// Constructs OK.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CODE>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

/// Union of a T or an error Status. `value()` aborts if not ok; check
/// `ok()` first or use TSC_ASSIGN_OR_RETURN.
template <typename T>
class StatusOr {
 public:
  StatusOr(Status status)  // NOLINT: implicit by design, mirrors absl
      : status_(std::move(status)) {}
  StatusOr(T value)  // NOLINT: implicit by design
      : status_(Status::Ok()), value_(std::move(value)) {}

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    AbortIfError();
    return *value_;
  }
  T& value() & {
    AbortIfError();
    return *value_;
  }
  T&& value() && {
    AbortIfError();
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  void AbortIfError() const;

  Status status_;
  std::optional<T> value_;
};

namespace internal_status {
[[noreturn]] void DieOnBadStatusAccess(const Status& status);
}  // namespace internal_status

template <typename T>
void StatusOr<T>::AbortIfError() const {
  if (!status_.ok()) internal_status::DieOnBadStatusAccess(status_);
}

}  // namespace tsc

/// Propagates a non-OK Status out of the enclosing function.
#define TSC_RETURN_IF_ERROR(expr)                   \
  do {                                              \
    ::tsc::Status tsc_status_internal_ = (expr);    \
    if (!tsc_status_internal_.ok()) {               \
      return tsc_status_internal_;                  \
    }                                               \
  } while (false)

#define TSC_STATUS_CONCAT_INNER_(x, y) x##y
#define TSC_STATUS_CONCAT_(x, y) TSC_STATUS_CONCAT_INNER_(x, y)

/// TSC_ASSIGN_OR_RETURN(auto v, Compute()): assigns on success, propagates
/// the error Status otherwise.
#define TSC_ASSIGN_OR_RETURN(lhs, expr)                                     \
  auto TSC_STATUS_CONCAT_(tsc_statusor_, __LINE__) = (expr);                \
  if (!TSC_STATUS_CONCAT_(tsc_statusor_, __LINE__).ok()) {                  \
    return TSC_STATUS_CONCAT_(tsc_statusor_, __LINE__).status();            \
  }                                                                         \
  lhs = std::move(TSC_STATUS_CONCAT_(tsc_statusor_, __LINE__)).value()

#endif  // TSC_UTIL_STATUS_H_
