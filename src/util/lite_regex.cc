#include "util/lite_regex.h"

#include <utility>

namespace tsc {
namespace {

std::bitset<256> ClassDigit() {
  std::bitset<256> set;
  for (int c = '0'; c <= '9'; ++c) set.set(c);
  return set;
}

std::bitset<256> ClassWord() {
  std::bitset<256> set = ClassDigit();
  for (int c = 'a'; c <= 'z'; ++c) set.set(c);
  for (int c = 'A'; c <= 'Z'; ++c) set.set(c);
  set.set('_');
  return set;
}

std::bitset<256> ClassSpace() {
  std::bitset<256> set;
  for (const char c : {' ', '\t', '\n', '\r', '\f', '\v'}) {
    set.set(static_cast<unsigned char>(c));
  }
  return set;
}

std::bitset<256> ClassAny() {
  std::bitset<256> set;
  set.set();
  set.reset('\n');  // ECMAScript '.'
  return set;
}

}  // namespace

/// Recursive-descent Thompson construction. A fragment is a start
/// state plus the list of dangling out-slots to patch; every grammar
/// production appends O(1) states per consumed pattern byte, so state
/// count is linear in pattern length.
class LiteRegex::Parser {
 public:
  explicit Parser(const std::string& pattern, std::vector<State>* states)
      : pattern_(pattern), states_(states) {}

  StatusOr<int> Run() {
    TSC_ASSIGN_OR_RETURN(Fragment frag, ParseAlternation());
    if (pos_ != pattern_.size()) {
      // The only way ParseAlternation stops early is an unmatched ')'.
      return Status::InvalidArgument("unmatched ')' in pattern");
    }
    TSC_ASSIGN_OR_RETURN(const int match, NewState(State::kMatch));
    Patch(frag.dangling, match);
    return frag.start;
  }

 private:
  /// A dangling out-slot: state index plus which of its two outs.
  struct OutSlot {
    int state;
    bool second;
  };
  struct Fragment {
    int start = -1;
    std::vector<OutSlot> dangling;
  };

  StatusOr<int> NewState(State::Kind kind) {
    if (states_->size() >= kMaxStates) {
      return Status::InvalidArgument("pattern too complex");
    }
    State state;
    state.kind = kind;
    states_->push_back(std::move(state));
    return static_cast<int>(states_->size() - 1);
  }

  void Patch(const std::vector<OutSlot>& slots, int target) {
    for (const OutSlot& slot : slots) {
      State& state = (*states_)[slot.state];
      (slot.second ? state.out2 : state.out1) = target;
    }
  }

  static std::vector<OutSlot> Join(std::vector<OutSlot> a,
                                   std::vector<OutSlot> b) {
    a.insert(a.end(), b.begin(), b.end());
    return a;
  }

  bool AtAtomEnd() const {
    return pos_ == pattern_.size() || pattern_[pos_] == '|' ||
           pattern_[pos_] == ')';
  }

  StatusOr<Fragment> ParseAlternation() {
    TSC_ASSIGN_OR_RETURN(Fragment frag, ParseConcat());
    while (pos_ < pattern_.size() && pattern_[pos_] == '|') {
      ++pos_;
      TSC_ASSIGN_OR_RETURN(Fragment rhs, ParseConcat());
      TSC_ASSIGN_OR_RETURN(const int split, NewState(State::kSplit));
      (*states_)[split].out1 = frag.start;
      (*states_)[split].out2 = rhs.start;
      frag.start = split;
      frag.dangling = Join(std::move(frag.dangling), std::move(rhs.dangling));
    }
    return frag;
  }

  StatusOr<Fragment> ParseConcat() {
    // An empty branch (as in `a|` or `()`) is a pure-epsilon fragment:
    // a split whose both outs dangle, collapsing to "accept here".
    if (AtAtomEnd()) {
      TSC_ASSIGN_OR_RETURN(const int split, NewState(State::kSplit));
      Fragment frag;
      frag.start = split;
      frag.dangling = {{split, false}, {split, true}};
      return frag;
    }
    TSC_ASSIGN_OR_RETURN(Fragment frag, ParseRepeat());
    while (!AtAtomEnd()) {
      TSC_ASSIGN_OR_RETURN(Fragment next, ParseRepeat());
      Patch(frag.dangling, next.start);
      frag.dangling = std::move(next.dangling);
    }
    return frag;
  }

  StatusOr<Fragment> ParseRepeat() {
    TSC_ASSIGN_OR_RETURN(Fragment frag, ParseAtom());
    if (pos_ == pattern_.size()) return frag;
    const char op = pattern_[pos_];
    if (op != '*' && op != '+' && op != '?') {
      if (op == '{') {
        return Status::InvalidArgument(
            "bounded repeats {m,n} are not supported");
      }
      return frag;
    }
    ++pos_;
    if (pos_ < pattern_.size() &&
        (pattern_[pos_] == '*' || pattern_[pos_] == '+' ||
         pattern_[pos_] == '?')) {
      return Status::InvalidArgument(
          "double quantifier (lazy quantifiers are not supported)");
    }
    TSC_ASSIGN_OR_RETURN(const int split, NewState(State::kSplit));
    (*states_)[split].out1 = frag.start;
    Fragment out;
    if (op == '*') {
      Patch(frag.dangling, split);
      out.start = split;
      out.dangling = {{split, true}};
    } else if (op == '+') {
      Patch(frag.dangling, split);
      out.start = frag.start;
      out.dangling = {{split, true}};
    } else {  // '?'
      out.start = split;
      out.dangling = Join(std::move(frag.dangling), {{split, true}});
    }
    return out;
  }

  StatusOr<Fragment> ParseAtom() {
    const char c = pattern_[pos_];
    if (c == '*' || c == '+' || c == '?') {
      return Status::InvalidArgument("quantifier with nothing to repeat");
    }
    if (c == '(') {
      ++pos_;
      TSC_ASSIGN_OR_RETURN(Fragment frag, ParseAlternation());
      if (pos_ == pattern_.size() || pattern_[pos_] != ')') {
        return Status::InvalidArgument("unclosed '(' in pattern");
      }
      ++pos_;
      return frag;
    }
    if (c == '^' || c == '$') {
      ++pos_;
      TSC_ASSIGN_OR_RETURN(
          const int state,
          NewState(c == '^' ? State::kBegin : State::kEnd));
      Fragment frag;
      frag.start = state;
      frag.dangling = {{state, false}};
      return frag;
    }
    std::bitset<256> accept;
    if (c == '[') {
      ++pos_;
      TSC_ASSIGN_OR_RETURN(accept, ParseClass());
    } else if (c == '.') {
      ++pos_;
      accept = ClassAny();
    } else if (c == '\\') {
      ++pos_;
      TSC_ASSIGN_OR_RETURN(accept, ParseEscape());
    } else {
      ++pos_;
      accept.set(static_cast<unsigned char>(c));
    }
    TSC_ASSIGN_OR_RETURN(const int state, NewState(State::kChar));
    (*states_)[state].accept = accept;
    Fragment frag;
    frag.start = state;
    frag.dangling = {{state, false}};
    return frag;
  }

  /// One `\x` escape, cursor already past the backslash.
  StatusOr<std::bitset<256>> ParseEscape() {
    if (pos_ == pattern_.size()) {
      return Status::InvalidArgument("trailing backslash");
    }
    const char c = pattern_[pos_++];
    std::bitset<256> set;
    switch (c) {
      case 'd': return ClassDigit();
      case 'D': return ~ClassDigit();
      case 'w': return ClassWord();
      case 'W': return ~ClassWord();
      case 's': return ClassSpace();
      case 'S': return ~ClassSpace();
      case 'n': set.set('\n'); return set;
      case 't': set.set('\t'); return set;
      case 'r': set.set('\r'); return set;
      default:
        if ((c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
            (c >= '0' && c <= '9')) {
          return Status::InvalidArgument(
              std::string("unsupported escape '\\") + c + "'");
        }
        set.set(static_cast<unsigned char>(c));  // escaped punctuation
        return set;
    }
  }

  /// A `[...]` class, cursor already past the '['.
  StatusOr<std::bitset<256>> ParseClass() {
    std::bitset<256> set;
    bool negate = false;
    if (pos_ < pattern_.size() && pattern_[pos_] == '^') {
      negate = true;
      ++pos_;
    }
    bool empty = true;
    while (pos_ < pattern_.size() && pattern_[pos_] != ']') {
      const char c = pattern_[pos_++];
      if (c == '\\') {
        TSC_ASSIGN_OR_RETURN(const std::bitset<256> esc, ParseEscape());
        set |= esc;
        empty = false;
        continue;
      }
      // `a-z` range: '-' is literal when first, last, or after a
      // multi-byte escape class.
      if (pos_ + 1 < pattern_.size() && pattern_[pos_] == '-' &&
          pattern_[pos_ + 1] != ']') {
        ++pos_;  // consume '-'
        char hi = pattern_[pos_++];
        if (hi == '\\') {
          return Status::InvalidArgument(
              "escape as a class range endpoint is not supported");
        }
        if (static_cast<unsigned char>(c) > static_cast<unsigned char>(hi)) {
          return Status::InvalidArgument("inverted range in class");
        }
        for (int b = static_cast<unsigned char>(c);
             b <= static_cast<unsigned char>(hi); ++b) {
          set.set(b);
        }
      } else {
        set.set(static_cast<unsigned char>(c));
      }
      empty = false;
    }
    if (pos_ == pattern_.size()) {
      return Status::InvalidArgument("unclosed '[' in pattern");
    }
    ++pos_;  // consume ']'
    if (empty) return Status::InvalidArgument("empty character class");
    return negate ? ~set : set;
  }

  const std::string& pattern_;
  std::vector<State>* states_;
  std::size_t pos_ = 0;
};

StatusOr<LiteRegex> LiteRegex::Compile(const std::string& pattern) {
  LiteRegex regex;
  Parser parser(pattern, &regex.states_);
  TSC_ASSIGN_OR_RETURN(regex.start_, parser.Run());
  regex.seen_.assign(regex.states_.size(), 0);
  return regex;
}

void LiteRegex::AddThread(std::size_t state, std::size_t pos,
                          std::size_t len, std::vector<int>* list) {
  if (seen_[state] == generation_) return;
  seen_[state] = generation_;
  const State& s = states_[state];
  switch (s.kind) {
    case State::kSplit:
      AddThread(s.out1, pos, len, list);
      AddThread(s.out2, pos, len, list);
      break;
    case State::kBegin:
      if (pos == 0) AddThread(s.out1, pos, len, list);
      break;
    case State::kEnd:
      if (pos == len) AddThread(s.out1, pos, len, list);
      break;
    case State::kChar:
    case State::kMatch:
      list->push_back(static_cast<int>(state));
      break;
  }
}

bool LiteRegex::Search(std::string_view text) {
  // Breadth-first NFA simulation with a generation-stamped visited set.
  // `current` holds the deduplicated kChar/kMatch threads active at
  // `pos`; each step holds at most |states_| threads, so one Search is
  // O(states x bytes) regardless of the pattern.
  const std::size_t len = text.size();
  std::vector<int> current, next;
  current.reserve(states_.size());
  next.reserve(states_.size());
  // On the (theoretical) u32 wrap the stale stamps would alias the new
  // generation; wipe them instead of matching against them.
  if (generation_ >= ~0u - (len + 2)) {
    seen_.assign(seen_.size(), 0);
    generation_ = 0;
  }
  ++generation_;
  AddThread(start_, 0, len, &current);
  for (std::size_t pos = 0;; ++pos) {
    for (const int id : current) {
      if (states_[id].kind == State::kMatch) return true;
    }
    if (pos == len) return false;
    ++generation_;
    next.clear();
    const unsigned char byte = static_cast<unsigned char>(text[pos]);
    for (const int id : current) {
      if (states_[id].kind == State::kChar && states_[id].accept[byte]) {
        AddThread(states_[id].out1, pos + 1, len, &next);
      }
    }
    // Unanchored search: a match may also start at the next position.
    AddThread(start_, pos + 1, len, &next);
    current.swap(next);
  }
}

}  // namespace tsc
