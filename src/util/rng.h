#ifndef TSC_UTIL_RNG_H_
#define TSC_UTIL_RNG_H_

#include <cstdint>
#include <vector>

namespace tsc {

/// Deterministic, fast pseudo-random generator (xoshiro256++), seeded via
/// splitmix64. All synthetic workloads in this repository draw from Rng so
/// experiments are exactly reproducible from a seed.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Uniform 64-bit word.
  std::uint64_t NextUint64();

  /// Uniform in [0, n). Requires n > 0. Uses rejection to avoid modulo bias.
  std::uint64_t UniformUint64(std::uint64_t n);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t UniformInt(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double UniformDouble();

  /// Uniform double in [lo, hi).
  double UniformDouble(double lo, double hi);

  /// Standard normal via Box-Muller (cached second variate).
  double Gaussian();

  /// Normal with the given mean and standard deviation.
  double Gaussian(double mean, double stddev);

  /// Exponential with the given rate lambda (> 0).
  double Exponential(double lambda);

  /// Bernoulli trial with success probability p in [0, 1].
  bool Bernoulli(double p);

  /// Pareto-distributed value with scale xm > 0 and shape alpha > 0;
  /// produces the heavy tails typical of customer-volume data.
  double Pareto(double xm, double alpha);

  /// Poisson-distributed count with the given mean (> 0). Uses Knuth's
  /// method for small means and a normal approximation for large ones.
  std::uint64_t Poisson(double mean);

  /// Fisher-Yates shuffle of `values`.
  template <typename T>
  void Shuffle(std::vector<T>* values) {
    if (values->empty()) return;
    for (std::size_t i = values->size() - 1; i > 0; --i) {
      const std::size_t j = static_cast<std::size_t>(UniformUint64(i + 1));
      std::swap((*values)[i], (*values)[j]);
    }
  }

  /// Samples `count` distinct indices from [0, n) in increasing order.
  /// Requires count <= n.
  std::vector<std::size_t> SampleWithoutReplacement(std::size_t n,
                                                    std::size_t count);

 private:
  std::uint64_t state_[4];
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

/// Zipf(s, n) sampler over ranks {1, ..., n}: P(rank = r) proportional to
/// r^-s. Precomputes the CDF for O(log n) sampling; suitable for the
/// "Zipf-like distribution of customers" the paper observes.
class ZipfSampler {
 public:
  /// Requires n >= 1 and s >= 0 (s = 0 degenerates to uniform).
  ZipfSampler(std::size_t n, double s);

  /// Returns a rank in [1, n].
  std::size_t Sample(Rng* rng) const;

  /// Probability mass of rank r (1-based).
  double Pmf(std::size_t rank) const;

  std::size_t n() const { return cdf_.size(); }
  double s() const { return s_; }

 private:
  double s_;
  std::vector<double> cdf_;
};

}  // namespace tsc

#endif  // TSC_UTIL_RNG_H_
