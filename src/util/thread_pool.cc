#include "util/thread_pool.h"

#include <algorithm>

namespace tsc {

ThreadPool::ThreadPool(std::size_t num_threads)
    : num_threads_(std::max<std::size_t>(num_threads, 1)) {
  workers_.reserve(num_threads_ - 1);
  for (std::size_t t = 0; t + 1 < num_threads_; ++t) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

std::size_t ThreadPool::HardwareThreads() {
  return std::max<unsigned>(std::thread::hardware_concurrency(), 1u);
}

void ThreadPool::RunIndices(const std::function<void(std::size_t)>& body,
                            std::size_t end) {
  for (;;) {
    const std::size_t i = job_next_.fetch_add(1, std::memory_order_relaxed);
    if (i >= end) return;
    try {
      body(i);
    } catch (...) {
      std::lock_guard<std::mutex> lock(mu_);
      if (!job_error_) job_error_ = std::current_exception();
    }
  }
}

void ThreadPool::WorkerLoop() {
  std::uint64_t seen_epoch = 0;
  for (;;) {
    const std::function<void(std::size_t)>* body = nullptr;
    std::size_t end = 0;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] {
        return stop_ || (job_body_ != nullptr && job_epoch_ != seen_epoch);
      });
      if (stop_) return;
      seen_epoch = job_epoch_;
      body = job_body_;
      end = job_end_;
      ++job_running_;
    }
    RunIndices(*body, end);
    {
      std::lock_guard<std::mutex> lock(mu_);
      --job_running_;
    }
    done_cv_.notify_one();
  }
}

void ThreadPool::ParallelFor(std::size_t begin, std::size_t end,
                             const std::function<void(std::size_t)>& body) {
  if (begin >= end) return;
  if (workers_.empty() || end - begin == 1) {
    for (std::size_t i = begin; i < end; ++i) body(i);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    job_body_ = &body;
    job_end_ = end;
    job_next_.store(begin, std::memory_order_relaxed);
    job_error_ = nullptr;
    ++job_epoch_;
  }
  work_cv_.notify_all();
  RunIndices(body, end);
  std::exception_ptr error;
  {
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [&] { return job_running_ == 0; });
    job_body_ = nullptr;
    error = job_error_;
    job_error_ = nullptr;
  }
  if (error) std::rethrow_exception(error);
}

void ParallelFor(ThreadPool* pool, std::size_t count,
                 const std::function<void(std::size_t)>& body) {
  if (pool != nullptr && pool->num_threads() > 1) {
    pool->ParallelFor(0, count, body);
    return;
  }
  for (std::size_t i = 0; i < count; ++i) body(i);
}

}  // namespace tsc
