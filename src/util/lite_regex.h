#ifndef TSC_UTIL_LITE_REGEX_H_
#define TSC_UTIL_LITE_REGEX_H_

#include <bitset>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace tsc {

/// Linear-time regular-expression matcher: Thompson NFA construction
/// plus breadth-first simulation (RE2-style guarantees without the
/// dependency). One Search costs O(states x text bytes) in the worst
/// case and never backtracks, so catastrophic patterns like `(a+)+$`
/// run in the same bound as benign ones — safe to compile from
/// untrusted client input.
///
/// Grammar (a practical ECMAScript subset, byte-oriented):
///   literals; `.` (any byte but '\n'); escapes `\d \D \w \W \s \S`
///   and escaped punctuation (`\.` `\\` ...); classes `[a-z0-9_]` /
///   `[^...]` with ranges and the escapes above; groups `(...)`
///   (non-capturing — no backreferences); alternation `|`; repetition
///   `* + ?`; anchors `^` `$`.
/// Rejected at compile time: bounded repeats `{m,n}`, lazy
/// quantifiers, lookaround, backreferences, and patterns needing more
/// than kMaxStates NFA states.
class LiteRegex {
 public:
  /// Compiles `pattern`; the Status message names the offending
  /// construct on failure.
  static StatusOr<LiteRegex> Compile(const std::string& pattern);

  /// Unanchored search (std::regex_search semantics): true when any
  /// substring of `text` matches. Linear in text.size(). Non-const
  /// because it reuses per-instance scratch lists — share one instance
  /// per thread, not across threads.
  bool Search(std::string_view text);

  /// Ceiling on compiled NFA states (each pattern byte contributes
  /// O(1) states, so the 256-byte wire cap stays well under this).
  static constexpr std::size_t kMaxStates = 1024;

 private:
  struct State {
    enum Kind : std::uint8_t {
      kChar,   ///< consume one byte accepted by `accept`
      kSplit,  ///< epsilon fork to out1 and out2
      kBegin,  ///< epsilon, only at text start (`^`)
      kEnd,    ///< epsilon, only at text end (`$`)
      kMatch,  ///< accepting state
    };
    Kind kind = kMatch;
    std::bitset<256> accept;  ///< kChar only
    int out1 = -1;
    int out2 = -1;  ///< kSplit only
  };

  class Parser;

  void AddThread(std::size_t state, std::size_t pos, std::size_t len,
                 std::vector<int>* list);

  std::vector<State> states_;
  int start_ = -1;
  // Scratch for the visited-set generation trick; sized to states_.
  std::vector<std::uint32_t> seen_;
  std::uint32_t generation_ = 0;
};

}  // namespace tsc

#endif  // TSC_UTIL_LITE_REGEX_H_
