#ifndef TSC_UTIL_ASCII_PLOT_H_
#define TSC_UTIL_ASCII_PLOT_H_

#include <cstddef>
#include <string>
#include <vector>

namespace tsc {

/// Options shared by the ASCII plot renderers used in the benchmark
/// harnesses to show the paper's figures directly in a terminal.
struct PlotOptions {
  std::size_t width = 72;   ///< plot-area columns
  std::size_t height = 20;  ///< plot-area rows
  bool log_y = false;       ///< log10 scale on y (Figure 8 style)
  bool log_x = false;       ///< log10 scale on x
  std::string x_label;
  std::string y_label;
  std::string title;
};

/// One named series of (x, y) points.
struct Series {
  std::string name;
  char marker = '*';
  std::vector<double> x;
  std::vector<double> y;
};

/// Renders a scatter/line plot of the given series into a multi-line string.
/// Points sharing a cell keep the marker of the first series plotted there.
/// Non-finite and (when log-scaled) non-positive points are skipped.
std::string RenderPlot(const std::vector<Series>& series,
                       const PlotOptions& options);

/// Renders a scatter of raw points (Appendix A style visualization).
std::string RenderScatter(const std::vector<double>& x,
                          const std::vector<double>& y,
                          const PlotOptions& options);

}  // namespace tsc

#endif  // TSC_UTIL_ASCII_PLOT_H_
