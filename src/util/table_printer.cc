#include "util/table_printer.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace tsc {

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  cells.resize(header_.size());
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::Num(double value, int precision) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.*g", precision, value);
  return buf;
}

std::string TablePrinter::Percent(double value, int precision) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.*g%%", precision, value);
  return buf;
}

std::string TablePrinter::ToString() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < header_.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : header_[c];
      out << "  " << cell << std::string(widths[c] - cell.size(), ' ');
    }
    out << "\n";
  };
  emit_row(header_);
  std::size_t total = 0;
  for (std::size_t w : widths) total += w + 2;
  out << std::string(total, '-') << "\n";
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

}  // namespace tsc
