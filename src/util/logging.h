#ifndef TSC_UTIL_LOGGING_H_
#define TSC_UTIL_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>

namespace tsc {
namespace internal_logging {

/// Accumulates a message and aborts the process on destruction. Used as the
/// right-hand side of the CHECK macros so callers can stream context:
///   TSC_CHECK(x > 0) << "x was " << x;
class FatalMessage {
 public:
  FatalMessage(const char* file, int line, const char* condition) {
    stream_ << "CHECK failed at " << file << ":" << line << ": " << condition
            << " ";
  }
  ~FatalMessage() {
    std::cerr << stream_.str() << std::endl;
    std::abort();
  }
  std::ostream& stream() { return stream_; }

 private:
  std::ostringstream stream_;
};

/// Lowers a streamed expression to void so it can sit in a ternary whose
/// other branch is (void)0. operator& binds more loosely than <<.
struct Voidify {
  void operator&(std::ostream&) {}
};

/// Swallows streamed output when a debug check is compiled out.
class NullMessage {
 public:
  template <typename T>
  NullMessage& operator<<(const T&) {
    return *this;
  }
};

}  // namespace internal_logging
}  // namespace tsc

/// Aborts with file/line context when `condition` is false. Active in all
/// build modes: these guard internal invariants whose violation means the
/// process must not continue (a database-style always-on assertion).
#define TSC_CHECK(condition)                                    \
  (condition) ? (void)0                                         \
              : ::tsc::internal_logging::Voidify() &            \
                    ::tsc::internal_logging::FatalMessage(      \
                        __FILE__, __LINE__, #condition)         \
                        .stream()

#define TSC_CHECK_OK(expr)                                                 \
  do {                                                                     \
    const ::tsc::Status tsc_check_status_ = (expr);                        \
    if (!tsc_check_status_.ok()) {                                         \
      ::tsc::internal_logging::FatalMessage(__FILE__, __LINE__, #expr)     \
              .stream()                                                    \
          << tsc_check_status_.ToString();                                 \
    }                                                                      \
  } while (false)

#define TSC_CHECK_EQ(a, b) TSC_CHECK((a) == (b)) << "(" << (a) << " vs " << (b) << ") "
#define TSC_CHECK_NE(a, b) TSC_CHECK((a) != (b)) << "(" << (a) << " vs " << (b) << ") "
#define TSC_CHECK_LT(a, b) TSC_CHECK((a) < (b)) << "(" << (a) << " vs " << (b) << ") "
#define TSC_CHECK_LE(a, b) TSC_CHECK((a) <= (b)) << "(" << (a) << " vs " << (b) << ") "
#define TSC_CHECK_GT(a, b) TSC_CHECK((a) > (b)) << "(" << (a) << " vs " << (b) << ") "
#define TSC_CHECK_GE(a, b) TSC_CHECK((a) >= (b)) << "(" << (a) << " vs " << (b) << ") "

/// Debug-only check; compiles out in NDEBUG builds.
#ifdef NDEBUG
#define TSC_DCHECK(condition) \
  while (false) ::tsc::internal_logging::NullMessage()
#else
#define TSC_DCHECK(condition) TSC_CHECK(condition)
#endif

#endif  // TSC_UTIL_LOGGING_H_
