#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "util/logging.h"

namespace tsc {

void RunningStats::Add(double value) {
  if (count_ == 0) {
    min_ = value;
    max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  const double delta = value - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (value - mean_);
}

void RunningStats::Merge(const RunningStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(count_);
  const double nb = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double n = na + nb;
  mean_ += delta * nb / n;
  m2_ += other.m2_ + delta * delta * na * nb / n;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::variance() const {
  if (count_ == 0) return 0.0;
  return m2_ / static_cast<double>(count_);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

Quantiles::Quantiles(std::vector<double> values) : sorted_(std::move(values)) {
  std::sort(sorted_.begin(), sorted_.end());
}

double Quantiles::Quantile(double q) const {
  TSC_CHECK(!sorted_.empty());
  TSC_CHECK_GE(q, 0.0);
  TSC_CHECK_LE(q, 1.0);
  if (sorted_.size() == 1) return sorted_[0];
  const double pos = q * static_cast<double>(sorted_.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted_.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted_[lo] * (1.0 - frac) + sorted_[hi] * frac;
}

std::string SummaryLine(const std::vector<double>& values) {
  if (values.empty()) return "n=0";
  RunningStats stats;
  for (double v : values) stats.Add(v);
  const Quantiles q(values);
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "n=%zu mean=%.6g sd=%.6g min=%.6g med=%.6g max=%.6g",
                stats.count(), stats.mean(), stats.stddev(), stats.min(),
                q.Median(), stats.max());
  return buf;
}

}  // namespace tsc
