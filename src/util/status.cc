#include "util/status.h"

#include <cstdio>
#include <cstdlib>

namespace tsc {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kOutOfRange:
      return "OUT_OF_RANGE";
    case StatusCode::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case StatusCode::kInternal:
      return "INTERNAL";
    case StatusCode::kIoError:
      return "IO_ERROR";
    case StatusCode::kUnimplemented:
      return "UNIMPLEMENTED";
    case StatusCode::kResourceExhausted:
      return "RESOURCE_EXHAUSTED";
  }
  return "UNKNOWN";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << status.ToString();
}

namespace internal_status {

void DieOnBadStatusAccess(const Status& status) {
  std::fprintf(stderr, "StatusOr::value() called on error: %s\n",
               status.ToString().c_str());
  std::abort();
}

}  // namespace internal_status
}  // namespace tsc
