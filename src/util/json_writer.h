#ifndef TSC_UTIL_JSON_WRITER_H_
#define TSC_UTIL_JSON_WRITER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace tsc {

/// Minimal streaming JSON builder shared by the observability snapshot
/// serializer and the benchmark --json reporters. Emits compact JSON with
/// automatic comma placement; the caller is responsible for balancing
/// Begin/End calls (checked in debug builds).
class JsonWriter {
 public:
  JsonWriter& BeginObject();
  JsonWriter& EndObject();
  JsonWriter& BeginArray();
  JsonWriter& EndArray();

  /// Emits an object key; must be followed by a value or Begin call.
  JsonWriter& Key(std::string_view name);

  JsonWriter& Value(std::string_view text);
  JsonWriter& Value(const char* text) { return Value(std::string_view(text)); }
  JsonWriter& Value(double number);
  JsonWriter& Value(std::uint64_t number);
  JsonWriter& Value(std::int64_t number);
  JsonWriter& Value(bool flag);
  JsonWriter& Null();

  /// Splices pre-serialized JSON (a number, or a whole sub-document such
  /// as another writer's str()) in verbatim as one value.
  JsonWriter& RawValue(std::string_view json);

  /// Shorthand for Key(name).Value(value).
  template <typename T>
  JsonWriter& KV(std::string_view name, T&& value) {
    Key(name);
    return Value(std::forward<T>(value));
  }

  /// The JSON text produced so far.
  const std::string& str() const { return out_; }

  /// JSON string escaping (quotes not included).
  static std::string Escape(std::string_view text);

 private:
  void MaybeComma();

  std::string out_;
  /// One entry per open container: true once a first element was written.
  std::vector<bool> has_element_;
  bool pending_key_ = false;
};

}  // namespace tsc

#endif  // TSC_UTIL_JSON_WRITER_H_
