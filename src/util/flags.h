#ifndef TSC_UTIL_FLAGS_H_
#define TSC_UTIL_FLAGS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace tsc {

/// Minimal command-line flag parser for the benchmark harnesses and
/// examples. Accepts "--name=value", "--name value" and bare "--name"
/// (boolean true). Unrecognized positional arguments are collected.
class FlagParser {
 public:
  FlagParser(int argc, char** argv);

  bool Has(const std::string& name) const;

  std::string GetString(const std::string& name,
                        const std::string& default_value) const;
  std::int64_t GetInt(const std::string& name,
                      std::int64_t default_value) const;
  double GetDouble(const std::string& name, double default_value) const;
  bool GetBool(const std::string& name, bool default_value) const;

  /// Comma-separated list of doubles, e.g. "--space=1,2,5,10".
  std::vector<double> GetDoubleList(
      const std::string& name, const std::vector<double>& default_value) const;
  /// Comma-separated list of integers.
  std::vector<std::int64_t> GetIntList(
      const std::string& name,
      const std::vector<std::int64_t>& default_value) const;

  const std::vector<std::string>& positional() const { return positional_; }
  const std::string& program_name() const { return program_name_; }

 private:
  std::string program_name_;
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace tsc

#endif  // TSC_UTIL_FLAGS_H_
