#ifndef TSC_UTIL_STATS_H_
#define TSC_UTIL_STATS_H_

#include <cstddef>
#include <string>
#include <vector>

namespace tsc {

/// Single-pass mean/variance accumulator (Welford). Numerically stable for
/// the long streams produced when scanning multi-gigabyte matrices.
class RunningStats {
 public:
  void Add(double value);

  /// Merges another accumulator (parallel/chunked scans).
  void Merge(const RunningStats& other);

  std::size_t count() const { return count_; }
  double mean() const { return count_ == 0 ? 0.0 : mean_; }
  /// Population variance (divide by n).
  double variance() const;
  /// Population standard deviation.
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }
  double sum() const { return mean_ * static_cast<double>(count_); }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Order statistics over a materialized sample.
class Quantiles {
 public:
  explicit Quantiles(std::vector<double> values);

  /// Linear-interpolated quantile, q in [0, 1]. Requires a non-empty sample.
  double Quantile(double q) const;
  double Median() const { return Quantile(0.5); }
  std::size_t count() const { return sorted_.size(); }

 private:
  std::vector<double> sorted_;
};

/// Fixed-width summary line, e.g. for bench output:
/// "n=1000 mean=12.3 sd=4.5 min=0.1 med=11.0 max=40.2".
std::string SummaryLine(const std::vector<double>& values);

}  // namespace tsc

#endif  // TSC_UTIL_STATS_H_
