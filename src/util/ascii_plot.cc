#include "util/ascii_plot.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <sstream>

namespace tsc {
namespace {

struct Range {
  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();

  void Extend(double v) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  bool valid() const { return lo <= hi; }
};

bool Usable(double v, bool log_scale) {
  if (!std::isfinite(v)) return false;
  return !log_scale || v > 0.0;
}

double MaybeLog(double v, bool log_scale) {
  return log_scale ? std::log10(v) : v;
}

std::string FormatTick(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%10.4g", v);
  return buf;
}

}  // namespace

std::string RenderPlot(const std::vector<Series>& series,
                       const PlotOptions& options) {
  const std::size_t w = std::max<std::size_t>(options.width, 8);
  const std::size_t h = std::max<std::size_t>(options.height, 4);

  Range xr;
  Range yr;
  for (const Series& s : series) {
    const std::size_t n = std::min(s.x.size(), s.y.size());
    for (std::size_t i = 0; i < n; ++i) {
      if (!Usable(s.x[i], options.log_x) || !Usable(s.y[i], options.log_y)) {
        continue;
      }
      xr.Extend(MaybeLog(s.x[i], options.log_x));
      yr.Extend(MaybeLog(s.y[i], options.log_y));
    }
  }
  if (!xr.valid() || !yr.valid()) return "(no plottable points)\n";
  if (xr.hi == xr.lo) xr.hi = xr.lo + 1.0;
  if (yr.hi == yr.lo) yr.hi = yr.lo + 1.0;

  std::vector<std::string> grid(h, std::string(w, ' '));
  for (const Series& s : series) {
    const std::size_t n = std::min(s.x.size(), s.y.size());
    for (std::size_t i = 0; i < n; ++i) {
      if (!Usable(s.x[i], options.log_x) || !Usable(s.y[i], options.log_y)) {
        continue;
      }
      const double fx =
          (MaybeLog(s.x[i], options.log_x) - xr.lo) / (xr.hi - xr.lo);
      const double fy =
          (MaybeLog(s.y[i], options.log_y) - yr.lo) / (yr.hi - yr.lo);
      const std::size_t col = std::min(
          w - 1, static_cast<std::size_t>(fx * static_cast<double>(w - 1) + 0.5));
      const std::size_t row = std::min(
          h - 1, static_cast<std::size_t>(fy * static_cast<double>(h - 1) + 0.5));
      char& cell = grid[h - 1 - row][col];
      if (cell == ' ') cell = s.marker;
    }
  }

  std::ostringstream out;
  if (!options.title.empty()) out << options.title << "\n";
  const double y_mid = options.log_y
                           ? std::pow(10.0, (yr.lo + yr.hi) / 2.0)
                           : (yr.lo + yr.hi) / 2.0;
  const double y_top = options.log_y ? std::pow(10.0, yr.hi) : yr.hi;
  const double y_bot = options.log_y ? std::pow(10.0, yr.lo) : yr.lo;
  for (std::size_t r = 0; r < h; ++r) {
    if (r == 0) {
      out << FormatTick(y_top);
    } else if (r == h / 2) {
      out << FormatTick(y_mid);
    } else if (r == h - 1) {
      out << FormatTick(y_bot);
    } else {
      out << std::string(10, ' ');
    }
    out << " |" << grid[r] << "\n";
  }
  out << std::string(10, ' ') << " +" << std::string(w, '-') << "\n";
  const double x_left = options.log_x ? std::pow(10.0, xr.lo) : xr.lo;
  const double x_right = options.log_x ? std::pow(10.0, xr.hi) : xr.hi;
  out << std::string(12, ' ') << FormatTick(x_left)
      << std::string(w > 32 ? w - 32 : 1, ' ') << FormatTick(x_right) << "\n";
  if (!options.x_label.empty() || !options.y_label.empty()) {
    out << "            x: " << options.x_label << "   y: " << options.y_label
        << "\n";
  }
  bool any_named = false;
  for (const Series& s : series) {
    if (s.name.empty()) continue;
    out << (any_named ? "  " : "            legend: ");
    out << "'" << s.marker << "'=" << s.name;
    any_named = true;
  }
  if (any_named) out << "\n";
  return out.str();
}

std::string RenderScatter(const std::vector<double>& x,
                          const std::vector<double>& y,
                          const PlotOptions& options) {
  Series s;
  s.marker = '.';
  s.x = x;
  s.y = y;
  return RenderPlot({s}, options);
}

}  // namespace tsc
