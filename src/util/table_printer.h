#ifndef TSC_UTIL_TABLE_PRINTER_H_
#define TSC_UTIL_TABLE_PRINTER_H_

#include <cstddef>
#include <string>
#include <vector>

namespace tsc {

/// Accumulates rows of string cells and renders an aligned text table;
/// every benchmark harness prints its paper table through this.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  void AddRow(std::vector<std::string> cells);

  /// Convenience: formats doubles with `precision` significant digits.
  static std::string Num(double value, int precision = 4);
  /// Formats a percentage with a trailing '%'.
  static std::string Percent(double value, int precision = 3);

  /// Renders the table with a separator under the header.
  std::string ToString() const;

  std::size_t row_count() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace tsc

#endif  // TSC_UTIL_TABLE_PRINTER_H_
