#include "util/flags.h"

#include <cstdlib>
#include <sstream>

namespace tsc {
namespace {

bool LooksLikeFlag(const std::string& arg) {
  return arg.size() > 2 && arg[0] == '-' && arg[1] == '-';
}

}  // namespace

FlagParser::FlagParser(int argc, char** argv) {
  if (argc > 0) program_name_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (!LooksLikeFlag(arg)) {
      positional_.push_back(std::move(arg));
      continue;
    }
    arg = arg.substr(2);
    const std::size_t eq = arg.find('=');
    if (eq != std::string::npos) {
      values_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (i + 1 < argc && !LooksLikeFlag(argv[i + 1])) {
      values_[arg] = argv[++i];
    } else {
      values_[arg] = "true";
    }
  }
}

bool FlagParser::Has(const std::string& name) const {
  return values_.count(name) > 0;
}

std::string FlagParser::GetString(const std::string& name,
                                  const std::string& default_value) const {
  const auto it = values_.find(name);
  return it == values_.end() ? default_value : it->second;
}

std::int64_t FlagParser::GetInt(const std::string& name,
                                std::int64_t default_value) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return default_value;
  return std::strtoll(it->second.c_str(), nullptr, 10);
}

double FlagParser::GetDouble(const std::string& name,
                             double default_value) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return default_value;
  return std::strtod(it->second.c_str(), nullptr);
}

bool FlagParser::GetBool(const std::string& name, bool default_value) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return default_value;
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

std::vector<double> FlagParser::GetDoubleList(
    const std::string& name, const std::vector<double>& default_value) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return default_value;
  std::vector<double> out;
  std::stringstream ss(it->second);
  std::string token;
  while (std::getline(ss, token, ',')) {
    if (!token.empty()) out.push_back(std::strtod(token.c_str(), nullptr));
  }
  return out;
}

std::vector<std::int64_t> FlagParser::GetIntList(
    const std::string& name,
    const std::vector<std::int64_t>& default_value) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return default_value;
  std::vector<std::int64_t> out;
  std::stringstream ss(it->second);
  std::string token;
  while (std::getline(ss, token, ',')) {
    if (!token.empty()) out.push_back(std::strtoll(token.c_str(), nullptr, 10));
  }
  return out;
}

}  // namespace tsc
