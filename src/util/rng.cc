#include "util/rng.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "util/logging.h"

namespace tsc {
namespace {

std::uint64_t SplitMix64(std::uint64_t* state) {
  std::uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t RotL(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& word : state_) word = SplitMix64(&sm);
  // A state of all zeros is the one forbidden xoshiro state.
  if (state_[0] == 0 && state_[1] == 0 && state_[2] == 0 && state_[3] == 0) {
    state_[0] = 1;
  }
}

std::uint64_t Rng::NextUint64() {
  const std::uint64_t result = RotL(state_[0] + state_[3], 23) + state_[0];
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = RotL(state_[3], 45);
  return result;
}

std::uint64_t Rng::UniformUint64(std::uint64_t n) {
  TSC_CHECK_GT(n, 0u);
  // Lemire-style rejection: reject the biased low region.
  const std::uint64_t threshold = (0 - n) % n;
  for (;;) {
    const std::uint64_t r = NextUint64();
    if (r >= threshold) return r % n;
  }
}

std::int64_t Rng::UniformInt(std::int64_t lo, std::int64_t hi) {
  TSC_CHECK_LE(lo, hi);
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<std::int64_t>(NextUint64());  // full range
  return lo + static_cast<std::int64_t>(UniformUint64(span));
}

double Rng::UniformDouble() {
  // 53 high bits to a double in [0, 1).
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

double Rng::UniformDouble(double lo, double hi) {
  return lo + (hi - lo) * UniformDouble();
}

double Rng::Gaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  // Box-Muller; u1 must be strictly positive for the log.
  double u1 = 0.0;
  do {
    u1 = UniformDouble();
  } while (u1 <= 0.0);
  const double u2 = UniformDouble();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_gaussian_ = radius * std::sin(theta);
  has_cached_gaussian_ = true;
  return radius * std::cos(theta);
}

double Rng::Gaussian(double mean, double stddev) {
  return mean + stddev * Gaussian();
}

double Rng::Exponential(double lambda) {
  TSC_CHECK_GT(lambda, 0.0);
  double u = 0.0;
  do {
    u = UniformDouble();
  } while (u <= 0.0);
  return -std::log(u) / lambda;
}

bool Rng::Bernoulli(double p) { return UniformDouble() < p; }

double Rng::Pareto(double xm, double alpha) {
  TSC_CHECK_GT(xm, 0.0);
  TSC_CHECK_GT(alpha, 0.0);
  double u = 0.0;
  do {
    u = UniformDouble();
  } while (u <= 0.0);
  return xm / std::pow(u, 1.0 / alpha);
}

std::uint64_t Rng::Poisson(double mean) {
  TSC_CHECK_GT(mean, 0.0);
  if (mean < 30.0) {
    // Knuth: multiply uniforms until below e^-mean.
    const double limit = std::exp(-mean);
    std::uint64_t k = 0;
    double p = 1.0;
    do {
      ++k;
      p *= UniformDouble();
    } while (p > limit);
    return k - 1;
  }
  // Normal approximation with continuity correction for large means.
  const double value = Gaussian(mean, std::sqrt(mean)) + 0.5;
  return value <= 0.0 ? 0 : static_cast<std::uint64_t>(value);
}

std::vector<std::size_t> Rng::SampleWithoutReplacement(std::size_t n,
                                                       std::size_t count) {
  TSC_CHECK_LE(count, n);
  std::vector<std::size_t> picked;
  picked.reserve(count);
  if (count == 0) return picked;
  if (count * 2 >= n) {
    // Dense case: partial Fisher-Yates over all indices.
    std::vector<std::size_t> all(n);
    for (std::size_t i = 0; i < n; ++i) all[i] = i;
    for (std::size_t i = 0; i < count; ++i) {
      const std::size_t j = i + static_cast<std::size_t>(UniformUint64(n - i));
      std::swap(all[i], all[j]);
    }
    picked.assign(all.begin(), all.begin() + static_cast<std::ptrdiff_t>(count));
  } else {
    // Sparse case: rejection into a hash set.
    std::unordered_set<std::size_t> seen;
    seen.reserve(count * 2);
    while (seen.size() < count) {
      seen.insert(static_cast<std::size_t>(UniformUint64(n)));
    }
    picked.assign(seen.begin(), seen.end());
  }
  std::sort(picked.begin(), picked.end());
  return picked;
}

ZipfSampler::ZipfSampler(std::size_t n, double s) : s_(s) {
  TSC_CHECK_GE(n, 1u);
  TSC_CHECK_GE(s, 0.0);
  cdf_.resize(n);
  double total = 0.0;
  for (std::size_t r = 1; r <= n; ++r) {
    total += 1.0 / std::pow(static_cast<double>(r), s);
    cdf_[r - 1] = total;
  }
  for (auto& c : cdf_) c /= total;
  cdf_.back() = 1.0;  // guard against rounding
}

std::size_t ZipfSampler::Sample(Rng* rng) const {
  const double u = rng->UniformDouble();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::size_t>(it - cdf_.begin()) + 1;
}

double ZipfSampler::Pmf(std::size_t rank) const {
  TSC_CHECK_GE(rank, 1u);
  TSC_CHECK_LE(rank, cdf_.size());
  if (rank == 1) return cdf_[0];
  return cdf_[rank - 1] - cdf_[rank - 2];
}

}  // namespace tsc
