#ifndef TSC_UTIL_BOUNDED_HEAP_H_
#define TSC_UTIL_BOUNDED_HEAP_H_

#include <algorithm>
#include <cstddef>
#include <functional>
#include <type_traits>
#include <utility>
#include <vector>

#include "util/kahan.h"
#include "util/logging.h"

namespace tsc {

/// Keeps the `capacity` items with the LARGEST keys seen so far, in O(log c)
/// per offer, using a min-heap on the key. This is the per-candidate-k
/// priority queue of the SVDD pass-2 algorithm (Figure 5 of the paper):
/// each queue retains the gamma_k cells with the largest reconstruction
/// error.
template <typename Key, typename Value>
class BoundedTopHeap {
 public:
  struct Entry {
    Key key;
    Value value;
  };

  explicit BoundedTopHeap(std::size_t capacity) : capacity_(capacity) {
    // Cap the eager reservation: the SVDD pass-2 build holds one heap per
    // (shard, candidate k) pair, and capacities there are in the hundreds
    // of thousands; reserving them all up front would dwarf the actual
    // retained entries once threshold pruning kicks in.
    heap_.reserve(std::min<std::size_t>(capacity, 1024));
  }

  std::size_t capacity() const { return capacity_; }
  std::size_t size() const { return heap_.size(); }
  bool empty() const { return heap_.empty(); }

  /// Smallest retained key; only meaningful when size() == capacity().
  const Key& MinKey() const {
    TSC_CHECK(!heap_.empty());
    return heap_.front().key;
  }

  /// Returns true when the item was retained (possibly evicting the current
  /// minimum). Capacity-zero heaps retain nothing.
  bool Offer(const Key& key, const Value& value) {
    if (capacity_ == 0) return false;
    if (heap_.size() < capacity_) {
      heap_.push_back(Entry{key, value});
      std::push_heap(heap_.begin(), heap_.end(), GreaterByKey());
      return true;
    }
    if (!(heap_.front().key < key)) return false;
    std::pop_heap(heap_.begin(), heap_.end(), GreaterByKey());
    heap_.back() = Entry{key, value};
    std::push_heap(heap_.begin(), heap_.end(), GreaterByKey());
    return true;
  }

  /// Sum of keys currently retained (used to credit outlier deltas against
  /// the accumulated SSE when evaluating a candidate k). Floating-point
  /// keys are summed with Kahan compensation: a queue can hold hundreds of
  /// thousands of squared errors spanning many orders of magnitude, and a
  /// naive sum loses enough precision to destabilize the k_opt pick.
  Key KeySum() const {
    if constexpr (std::is_floating_point_v<Key>) {
      KahanSum total;
      for (const Entry& e : heap_) total.Add(e.key);
      return static_cast<Key>(total.value());
    } else {
      Key total{};
      for (const Entry& e : heap_) total += e.key;
      return total;
    }
  }

  /// Extracts all retained entries, largest key first. The heap is emptied.
  std::vector<Entry> TakeSortedDescending() {
    std::vector<Entry> out = std::move(heap_);
    heap_.clear();
    std::sort(out.begin(), out.end(), [](const Entry& a, const Entry& b) {
      return b.key < a.key;
    });
    return out;
  }

  /// Read-only access in heap order (no ordering guarantee).
  const std::vector<Entry>& entries() const { return heap_; }

 private:
  struct GreaterByKey {
    bool operator()(const Entry& a, const Entry& b) const {
      return b.key < a.key;
    }
  };

  std::size_t capacity_;
  std::vector<Entry> heap_;
};

}  // namespace tsc

#endif  // TSC_UTIL_BOUNDED_HEAP_H_
