#ifndef TSC_UTIL_BOUNDED_HEAP_H_
#define TSC_UTIL_BOUNDED_HEAP_H_

#include <algorithm>
#include <cstddef>
#include <functional>
#include <type_traits>
#include <utility>
#include <vector>

#include "util/kahan.h"
#include "util/logging.h"

namespace tsc {

/// Keeps the `capacity` items with the LARGEST keys seen so far, in O(log c)
/// per offer, using a min-heap on the key. This is the per-candidate-k
/// priority queue of the SVDD pass-2 algorithm (Figure 5 of the paper):
/// each queue retains the gamma_k cells with the largest reconstruction
/// error.
template <typename Key, typename Value>
class BoundedTopHeap {
 public:
  struct Entry {
    Key key;
    Value value;
  };

  explicit BoundedTopHeap(std::size_t capacity) : capacity_(capacity) {
    // Cap the eager reservation: the SVDD pass-2 build holds one heap per
    // (shard, candidate k) pair, and capacities there are in the hundreds
    // of thousands; reserving them all up front would dwarf the actual
    // retained entries once threshold pruning kicks in.
    heap_.reserve(std::min<std::size_t>(capacity, 1024));
  }

  std::size_t capacity() const { return capacity_; }
  std::size_t size() const { return heap_.size(); }
  bool empty() const { return heap_.empty(); }

  /// Smallest retained key; only meaningful when size() == capacity().
  const Key& MinKey() const {
    TSC_CHECK(!heap_.empty());
    return heap_.front().key;
  }

  /// Returns true when the item was retained (possibly evicting the current
  /// minimum). Capacity-zero heaps retain nothing.
  bool Offer(const Key& key, const Value& value) {
    if (capacity_ == 0) return false;
    if (heap_.size() < capacity_) {
      heap_.push_back(Entry{key, value});
      std::push_heap(heap_.begin(), heap_.end(), GreaterByKey());
      return true;
    }
    if (!(heap_.front().key < key)) return false;
    std::pop_heap(heap_.begin(), heap_.end(), GreaterByKey());
    heap_.back() = Entry{key, value};
    std::push_heap(heap_.begin(), heap_.end(), GreaterByKey());
    return true;
  }

  /// Sum of keys currently retained (used to credit outlier deltas against
  /// the accumulated SSE when evaluating a candidate k). Floating-point
  /// keys are summed with Kahan compensation: a queue can hold hundreds of
  /// thousands of squared errors spanning many orders of magnitude, and a
  /// naive sum loses enough precision to destabilize the k_opt pick.
  Key KeySum() const {
    if constexpr (std::is_floating_point_v<Key>) {
      KahanSum total;
      for (const Entry& e : heap_) total.Add(e.key);
      return static_cast<Key>(total.value());
    } else {
      Key total{};
      for (const Entry& e : heap_) total += e.key;
      return total;
    }
  }

  /// Extracts all retained entries, largest key first. The heap is emptied.
  std::vector<Entry> TakeSortedDescending() {
    std::vector<Entry> out = std::move(heap_);
    heap_.clear();
    std::sort(out.begin(), out.end(), [](const Entry& a, const Entry& b) {
      return b.key < a.key;
    });
    return out;
  }

  /// Read-only access in heap order (no ordering guarantee).
  const std::vector<Entry>& entries() const { return heap_; }

 private:
  struct GreaterByKey {
    bool operator()(const Entry& a, const Entry& b) const {
      return b.key < a.key;
    }
  };

  std::size_t capacity_;
  std::vector<Entry> heap_;
};

/// Keeps a superset of the `capacity` items with the largest keys in
/// amortized O(1) per offer: offers append to a flat buffer, and when the
/// buffer overflows its slack the exact top `capacity` are kept with
/// nth_element under the key's strict total order. Functionally a
/// BoundedTopHeap whose minimum is only re-published at compaction
/// points — but offers cost a sequential append instead of an O(log c)
/// sift through a multi-megabyte heap array, which is what dominated the
/// SVDD pass-2 build once gamma_k reached hundreds of thousands of
/// entries. Determinism is unaffected: the retained set after each
/// compaction is the exact top `capacity` under the total order, so it
/// (and the final merged top gamma_k) does not depend on thread timing.
template <typename Key, typename Value>
class BoundedTopSelector {
 public:
  struct Entry {
    Key key;
    Value value;
  };

  explicit BoundedTopSelector(std::size_t capacity)
      : capacity_(capacity),
        // Slack trades transient memory (<= 1.25x capacity retained) for
        // amortized compaction cost (~4 comparisons per appended entry).
        compact_at_(capacity + std::max<std::size_t>(capacity / 4, 1024)) {
    buffer_.reserve(std::min<std::size_t>(compact_at_, 2048));
  }

  std::size_t capacity() const { return capacity_; }
  std::size_t size() const { return buffer_.size(); }

  /// The capacity-th largest key seen so far; valid once HasCutoff().
  /// No key strictly below it can be among the top `capacity`.
  bool HasCutoff() const { return has_cutoff_; }
  const Key& Cutoff() const {
    TSC_CHECK(has_cutoff_);
    return cutoff_;
  }

  /// Appends the item. Returns true when the offer triggered a
  /// compaction, i.e. Cutoff() just tightened and is worth republishing.
  /// Capacity-zero selectors retain nothing.
  bool Offer(const Key& key, const Value& value) {
    if (capacity_ == 0) return false;
    buffer_.push_back(Entry{key, value});
    if (buffer_.size() < compact_at_) return false;
    Compact();
    return true;
  }

  /// The q-th largest retained key (1-indexed, q <= size()). Runs an
  /// in-place partial select; the retained set is unchanged, only its
  /// order (which entries() does not guarantee anyway). Lets callers
  /// publish distribution fractiles of the retained keys — e.g. the
  /// SVDD pass-2 collective pruning bound, which combines each shard's
  /// (capacity/shards)-th largest into a bound on the global
  /// capacity-th largest.
  const Key& NthLargestKey(std::size_t q) {
    TSC_CHECK(q >= 1 && q <= buffer_.size());
    auto nth = buffer_.begin() + static_cast<std::ptrdiff_t>(q - 1);
    std::nth_element(
        buffer_.begin(), nth, buffer_.end(),
        [](const Entry& a, const Entry& b) { return b.key < a.key; });
    return nth->key;
  }

  /// Retained entries: the exact top `capacity` as of the last
  /// compaction, plus everything offered since (no ordering guarantee).
  /// Always a superset of this selector's true top `capacity`.
  const std::vector<Entry>& entries() const { return buffer_; }

 private:
  void Compact() {
    auto nth = buffer_.begin() + static_cast<std::ptrdiff_t>(capacity_ - 1);
    std::nth_element(
        buffer_.begin(), nth, buffer_.end(),
        [](const Entry& a, const Entry& b) { return b.key < a.key; });
    cutoff_ = nth->key;
    has_cutoff_ = true;
    buffer_.resize(capacity_);
  }

  std::size_t capacity_;
  std::size_t compact_at_;
  std::vector<Entry> buffer_;
  Key cutoff_{};
  bool has_cutoff_ = false;
};

}  // namespace tsc

#endif  // TSC_UTIL_BOUNDED_HEAP_H_
