// Reproduces Appendix A (Figure 11): scatter plots of both datasets in
// 2-d SVD space — each sequence mapped to its coordinates along the first
// two principal components — plus the outlier lists an analyst would
// examine.
//
// Expected shape: phone data hugs the origin with a few huge-volume
// exceptions (skewed, Zipf-like customers); stock data stretches along
// the first axis (all stocks follow the market factor).
//
// Flags: --phone_rows=2000  --outliers=5

#include <cstdio>

#include "common/bench_datasets.h"
#include "core/visualization.h"
#include "util/flags.h"

namespace {

void Show(const tsc::Dataset& dataset, std::size_t outlier_count) {
  const auto scatter = tsc::ProjectDataset(dataset.values);
  if (!scatter.ok()) {
    std::printf("%s: projection failed: %s\n", dataset.name.c_str(),
                scatter.status().ToString().c_str());
    return;
  }
  std::printf("%s", tsc::bench::DatasetBanner(dataset).c_str());
  std::printf("%s\n",
              tsc::RenderSvdScatter(
                  *scatter, "Figure 11 (" + dataset.name + "): SVD space")
                  .c_str());
  const auto outliers = tsc::TopOutlierRows(*scatter, outlier_count);
  std::printf("top-%zu outliers (rows an analyst should examine):\n",
              outliers.size());
  for (const std::size_t row : outliers) {
    const std::string label =
        row < dataset.row_labels.size() ? dataset.row_labels[row]
                                        : std::to_string(row);
    std::printf("  %-12s at (%.4g, %.4g)\n", label.c_str(), scatter->x[row],
                scatter->y[row]);
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  tsc::FlagParser flags(argc, argv);
  const std::size_t phone_rows =
      static_cast<std::size_t>(flags.GetInt("phone_rows", 2000));
  const std::size_t outliers =
      static_cast<std::size_t>(flags.GetInt("outliers", 5));

  std::printf("=== Appendix A: dataset visualization in SVD space ===\n\n");
  Show(tsc::bench::MakePhoneDataset(phone_rows), outliers);
  Show(tsc::bench::MakeStockDataset(), outliers);
  return 0;
}
