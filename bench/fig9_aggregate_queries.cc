// Reproduces Figure 9: normalized error of aggregate (avg) queries vs
// storage space for SVDD, with the single-cell RMSPE alongside for
// comparison, on the phone-style dataset. 50 random queries are drawn,
// each selecting random rows and columns covering ~10% of the cells
// (the paper's workload). A uniform row-sampling estimator is also run
// at matched space, the comparison Section 5.2 sketches.
//
// Expected shape: aggregate errors are far below cell errors (errors
// cancel), well under 0.5% at s=2%; uniform sampling is much worse on
// sum-type queries over skewed data.
//
// Flags: --space=1,2,5,10,15,20  --phone_rows=2000  --queries=50
//        --cell_fraction=0.1  --json=BENCH_fig9_aggregate_queries.json

#include <cstdio>
#include <vector>

#include "baselines/sampling.h"
#include "common/bench_datasets.h"
#include "common/json_reporter.h"
#include "core/metrics.h"
#include "core/query.h"
#include "util/ascii_plot.h"
#include "util/flags.h"
#include "util/logging.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/table_printer.h"

int main(int argc, char** argv) {
  tsc::FlagParser flags(argc, argv);
  const std::vector<double> spaces =
      flags.GetDoubleList("space", {1, 2, 5, 10, 15, 20});
  const std::size_t phone_rows =
      static_cast<std::size_t>(flags.GetInt("phone_rows", 2000));
  const int num_queries = static_cast<int>(flags.GetInt("queries", 50));
  const double cell_fraction = flags.GetDouble("cell_fraction", 0.1);
  const std::string json_path = flags.GetString("json", "");

  std::printf("=== Figure 9: aggregate-query error vs space (SVDD) ===\n\n");
  const tsc::Dataset dataset = tsc::bench::MakePhoneDataset(phone_rows);
  const tsc::Matrix& x = dataset.values;
  std::printf("%s", tsc::bench::DatasetBanner(dataset).c_str());
  std::printf("%d random avg-queries, each covering ~%.0f%% of cells\n\n",
              num_queries, 100.0 * cell_fraction);

  // One fixed query workload reused across every space point.
  tsc::Rng rng(2024);
  std::vector<tsc::RegionQuery> queries;
  for (int q = 0; q < num_queries; ++q) {
    queries.push_back(tsc::MakeRandomRegionQuery(
        x.rows(), x.cols(), cell_fraction, tsc::AggregateFn::kAvg, &rng));
  }
  std::vector<double> exact(queries.size());
  for (std::size_t q = 0; q < queries.size(); ++q) {
    exact[q] = tsc::EvaluateAggregate(x, queries[q]);
  }

  tsc::TablePrinter table(
      {"s%", "avg Qerr%", "max Qerr%", "cell RMSPE%", "sampling Qerr%"});
  tsc::bench::JsonReporter report(
      "fig9_aggregate_queries",
      {"space_pct", "avg_qerr_pct", "max_qerr_pct", "cell_rmspe_pct",
       "sampling_qerr_pct"});
  report.AddScalar("phone_rows", static_cast<double>(phone_rows));
  report.AddScalar("queries", static_cast<double>(num_queries));
  report.AddScalar("cell_fraction", cell_fraction);
  tsc::Series agg_series{.name = "svdd aggregate", .marker = '+', .x = {}, .y = {}};
  tsc::Series cell_series{.name = "svdd single-cell", .marker = 'o', .x = {}, .y = {}};

  for (const double s : spaces) {
    const auto model = tsc::bench::BuildSvddAtSpace(x, s);
    if (!model.ok()) {
      std::printf("s=%.3g%%: %s\n", s, model.status().ToString().c_str());
      continue;
    }
    tsc::RunningStats qerr;
    for (std::size_t q = 0; q < queries.size(); ++q) {
      const double approx = tsc::EvaluateAggregate(*model, queries[q]);
      qerr.Add(tsc::QueryError(exact[q], approx));
    }
    const double rmspe = tsc::Rmspe(x, *model);

    // Sampling at the same space: fraction of rows such that
    // rows * M * b == budget.
    const double sample_fraction = s / 100.0;
    const tsc::SamplingEstimator sampler(&x, sample_fraction, 99);
    tsc::RunningStats sample_err;
    for (std::size_t q = 0; q < queries.size(); ++q) {
      const auto est = sampler.EstimateAggregate(queries[q]);
      if (est.ok()) sample_err.Add(tsc::QueryError(exact[q], *est));
    }

    table.AddRow({tsc::TablePrinter::Num(s),
                  tsc::TablePrinter::Percent(100.0 * qerr.mean()),
                  tsc::TablePrinter::Percent(100.0 * qerr.max()),
                  tsc::TablePrinter::Percent(100.0 * rmspe),
                  sample_err.count() > 0
                      ? tsc::TablePrinter::Percent(100.0 * sample_err.mean())
                      : std::string("-")});
    report.AddRow({tsc::TablePrinter::Num(s),
                   tsc::TablePrinter::Num(100.0 * qerr.mean()),
                   tsc::TablePrinter::Num(100.0 * qerr.max()),
                   tsc::TablePrinter::Num(100.0 * rmspe),
                   sample_err.count() > 0
                       ? tsc::TablePrinter::Num(100.0 * sample_err.mean())
                       : std::string("-")});
    agg_series.x.push_back(s);
    agg_series.y.push_back(100.0 * qerr.mean());
    cell_series.x.push_back(s);
    cell_series.y.push_back(100.0 * rmspe);
  }

  std::printf("%s\n", table.ToString().c_str());

  tsc::PlotOptions options;
  options.title = "Figure 9: query error vs space (log y)";
  options.x_label = "storage s%";
  options.y_label = "error %";
  options.log_y = true;
  std::printf("%s",
              tsc::RenderPlot({agg_series, cell_series}, options).c_str());
  if (!json_path.empty()) {
    TSC_CHECK_OK(report.WriteFile(json_path));
    std::printf("json report written to %s\n", json_path.c_str());
  }
  return 0;
}
