// End-to-end serving comparison — the operational story behind the
// paper's Section 1 motivation. One mixed ad hoc workload (single-cell
// probes + avg aggregates over ~5% regions) is answered three ways:
//
//   raw file        the uncompressed matrix on disk; cells cost one
//                   block read, aggregates read every selected row
//   svdd disk       the paper's serving layout (U on disk, V + deltas
//                   pinned); cells cost one block read of a file ~20x
//                   smaller, aggregates one U-row read per selected row
//   svdd memory     the whole model in memory (possible exactly because
//                   it is 5% of the raw size); zero disk accesses
//
// Reported: footprint, simulated disk accesses, wall time, and the
// aggregate accuracy sacrificed for the speed.
//
// Flags: --rows=5000 --space=5 --cells=500 --aggregates=25

#include <cstdio>

#include "common/bench_datasets.h"
#include "common/json_reporter.h"
#include "core/disk_backed.h"
#include "core/query.h"
#include "core/svdd_compressor.h"
#include "storage/row_store.h"
#include "util/flags.h"
#include "util/logging.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/table_printer.h"
#include "util/timer.h"

namespace {

struct Workload {
  std::vector<std::pair<std::size_t, std::size_t>> cells;
  std::vector<tsc::RegionQuery> aggregates;
  std::vector<double> exact_answers;
};

Workload MakeWorkload(const tsc::Matrix& x, int cells, int aggregates) {
  Workload workload;
  tsc::Rng rng(404);
  for (int q = 0; q < cells; ++q) {
    workload.cells.emplace_back(rng.UniformUint64(x.rows()),
                                rng.UniformUint64(x.cols()));
  }
  for (int q = 0; q < aggregates; ++q) {
    workload.aggregates.push_back(tsc::MakeRandomRegionQuery(
        x.rows(), x.cols(), 0.05, tsc::AggregateFn::kAvg, &rng));
    workload.exact_answers.push_back(
        tsc::EvaluateAggregate(x, workload.aggregates.back()));
  }
  return workload;
}

}  // namespace

int main(int argc, char** argv) {
  tsc::FlagParser flags(argc, argv);
  const std::size_t rows = static_cast<std::size_t>(flags.GetInt("rows", 5000));
  const double space = flags.GetDouble("space", 5.0);
  const int cells = static_cast<int>(flags.GetInt("cells", 500));
  const int aggregates = static_cast<int>(flags.GetInt("aggregates", 25));
  const std::string json_path = flags.GetString("json", "");

  std::printf("=== ad hoc serving: raw disk vs SVDD layouts ===\n\n");
  const tsc::Dataset dataset = tsc::bench::MakePhoneDataset(rows);
  const tsc::Matrix& x = dataset.values;
  std::printf("%s", tsc::bench::DatasetBanner(dataset).c_str());
  std::printf("workload: %d cell probes + %d avg aggregates (~5%% regions)\n\n",
              cells, aggregates);
  const Workload workload = MakeWorkload(x, cells, aggregates);

  const std::string raw_path = "/tmp/tsc_throughput_raw.mat";
  TSC_CHECK_OK(tsc::WriteMatrixFile(raw_path, x));
  const auto model = tsc::bench::BuildSvddAtSpace(x, space, 16);
  TSC_CHECK_OK(model.status());
  const std::string u_path = "/tmp/tsc_throughput_u.mat";
  const std::string side_path = "/tmp/tsc_throughput_side.bin";
  TSC_CHECK_OK(tsc::ExportSvddToDisk(*model, u_path, side_path));

  tsc::TablePrinter table({"serving config", "footprint MB", "disk accesses",
                           "wall ms", "agg err%"});
  tsc::bench::JsonReporter report(
      "query_throughput",
      {"config", "footprint_mb", "disk_accesses", "wall_ms", "agg_err_pct"});
  report.AddScalar("rows", static_cast<double>(rows));
  report.AddScalar("space_pct", space);
  report.AddScalar("cell_probes", static_cast<double>(cells));
  report.AddScalar("aggregates", static_cast<double>(aggregates));

  // --- raw file -----------------------------------------------------------
  {
    auto reader = tsc::RowStoreReader::Open(raw_path);
    TSC_CHECK_OK(reader.status());
    tsc::Timer timer;
    for (const auto& [i, j] : workload.cells) {
      TSC_CHECK_OK(reader->ReadCell(i, j).status());
    }
    std::vector<double> row(x.cols());
    tsc::RunningStats err;
    for (std::size_t q = 0; q < workload.aggregates.size(); ++q) {
      const tsc::RegionQuery& query = workload.aggregates[q];
      tsc::RunningStats agg;
      for (const std::size_t i : query.row_ids) {
        TSC_CHECK_OK(reader->ReadRow(i, row));
        for (const std::size_t j : query.col_ids) agg.Add(row[j]);
      }
      err.Add(tsc::QueryError(workload.exact_answers[q], agg.mean()));
    }
    const double wall_ms = timer.ElapsedMillis();
    table.AddRow({"raw file on disk",
                  tsc::TablePrinter::Num(reader->file_bytes() / 1e6),
                  std::to_string(reader->counter().accesses()),
                  tsc::TablePrinter::Num(wall_ms, 4),
                  tsc::TablePrinter::Percent(100.0 * err.mean())});
    report.AddRow({"raw file on disk",
                   tsc::TablePrinter::Num(reader->file_bytes() / 1e6),
                   std::to_string(reader->counter().accesses()),
                   tsc::TablePrinter::Num(wall_ms, 4),
                   tsc::TablePrinter::Num(100.0 * err.mean())});
  }

  // --- svdd, U on disk ------------------------------------------------------
  {
    auto store = tsc::DiskBackedStore::Open(u_path, side_path);
    TSC_CHECK_OK(store.status());
    tsc::Timer timer;
    for (const auto& [i, j] : workload.cells) {
      TSC_CHECK_OK(store->ReconstructCell(i, j).status());
    }
    std::vector<double> row(x.cols());
    tsc::RunningStats err;
    for (std::size_t q = 0; q < workload.aggregates.size(); ++q) {
      const tsc::RegionQuery& query = workload.aggregates[q];
      tsc::RunningStats agg;
      for (const std::size_t i : query.row_ids) {
        TSC_CHECK_OK(store->ReconstructRow(i, row));
        for (const std::size_t j : query.col_ids) agg.Add(row[j]);
      }
      err.Add(tsc::QueryError(workload.exact_answers[q], agg.mean()));
    }
    auto u_reader = tsc::RowStoreReader::Open(u_path);
    const double footprint =
        (u_reader.ok() ? u_reader->file_bytes() : 0) / 1e6;
    const double wall_ms = timer.ElapsedMillis();
    table.AddRow({"svdd, U on disk", tsc::TablePrinter::Num(footprint),
                  std::to_string(store->disk_accesses()),
                  tsc::TablePrinter::Num(wall_ms, 4),
                  tsc::TablePrinter::Percent(100.0 * err.mean())});
    report.AddRow({"svdd, U on disk", tsc::TablePrinter::Num(footprint),
                   std::to_string(store->disk_accesses()),
                   tsc::TablePrinter::Num(wall_ms, 4),
                   tsc::TablePrinter::Num(100.0 * err.mean())});
  }

  // --- svdd fully in memory -------------------------------------------------
  {
    tsc::Timer timer;
    for (const auto& [i, j] : workload.cells) {
      (void)model->ReconstructCell(i, j);
    }
    tsc::RunningStats err;
    for (std::size_t q = 0; q < workload.aggregates.size(); ++q) {
      const double approx =
          tsc::EvaluateAggregate(*model, workload.aggregates[q]);
      err.Add(tsc::QueryError(workload.exact_answers[q], approx));
    }
    const double wall_ms = timer.ElapsedMillis();
    table.AddRow({"svdd in memory",
                  tsc::TablePrinter::Num(model->CompressedBytes() / 1e6),
                  "0", tsc::TablePrinter::Num(wall_ms, 4),
                  tsc::TablePrinter::Percent(100.0 * err.mean())});
    report.AddRow({"svdd in memory",
                   tsc::TablePrinter::Num(model->CompressedBytes() / 1e6),
                   "0", tsc::TablePrinter::Num(wall_ms, 4),
                   tsc::TablePrinter::Num(100.0 * err.mean())});
  }

  std::printf("%s\n", table.ToString().c_str());
  std::printf(
      "the point of the paper: the %s%% model answers the same workload\n"
      "with a ~%.0fx smaller footprint, so it stays on disk (or in\n"
      "memory) when the raw matrix cannot — at sub-percent aggregate "
      "error.\n",
      tsc::TablePrinter::Num(space).c_str(), 100.0 / space);
  if (!json_path.empty()) {
    TSC_CHECK_OK(report.WriteFile(json_path));
    std::printf("json report written to %s\n", json_path.c_str());
  }
  return 0;
}
