// End-to-end serving comparison — the operational story behind the
// paper's Section 1 motivation. One mixed ad hoc workload (single-cell
// probes + avg aggregates over ~5% regions) is answered three ways:
//
//   raw file        the uncompressed matrix on disk; cells cost one
//                   block read, aggregates read every selected row
//   svdd disk       the paper's serving layout (U on disk, V + deltas
//                   pinned); cells cost one block read of a file ~20x
//                   smaller, aggregates one U-row read per selected row
//   svdd memory     the whole model in memory (possible exactly because
//                   it is 5% of the raw size); zero disk accesses
//
// Reported: footprint, simulated disk accesses, wall time, and the
// aggregate accuracy sacrificed for the speed.
//
// A second section times the serving-path itself against the in-memory
// model: the seed's per-cell reconstruction formula, the dispatched
// per-cell API, and the batched ReconstructCells API (cell QPS each),
// plus the aggregate workload through QueryExecutor at 1 and N threads,
// and the same aggregates served by row scan vs the compressed-domain
// identity vs the multi-resolution rollup hierarchy (PR 8).
//
// Flags: --rows=5000 --space=5 --cells=500 --aggregates=25
//        --probe_iters=50 --threads=4

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>

#include "bench_common.h"
#include "common/bench_datasets.h"
#include "common/json_reporter.h"
#include "core/disk_backed.h"
#include "core/query.h"
#include "core/sharded_store.h"
#include "core/svdd_compressor.h"
#include "obs/metrics.h"
#include "query/executor.h"
#include "query/planner.h"
#include "storage/row_store.h"
#include "util/flags.h"
#include "util/logging.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/table_printer.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace {

struct Workload {
  std::vector<std::pair<std::size_t, std::size_t>> cells;
  std::vector<tsc::RegionQuery> aggregates;
  std::vector<double> exact_answers;
};

Workload MakeWorkload(const tsc::Matrix& x, int cells, int aggregates) {
  Workload workload;
  tsc::Rng rng(404);
  for (int q = 0; q < cells; ++q) {
    workload.cells.emplace_back(rng.UniformUint64(x.rows()),
                                rng.UniformUint64(x.cols()));
  }
  for (int q = 0; q < aggregates; ++q) {
    workload.aggregates.push_back(tsc::MakeRandomRegionQuery(
        x.rows(), x.cols(), 0.05, tsc::AggregateFn::kAvg, &rng));
    workload.exact_answers.push_back(
        tsc::EvaluateAggregate(x, workload.aggregates.back()));
  }
  return workload;
}

}  // namespace

int main(int argc, char** argv) {
  tsc::FlagParser flags(argc, argv);
  const std::size_t rows = static_cast<std::size_t>(flags.GetInt("rows", 5000));
  const double space = flags.GetDouble("space", 5.0);
  const int cells = static_cast<int>(flags.GetInt("cells", 500));
  const int aggregates = static_cast<int>(flags.GetInt("aggregates", 25));
  const int probe_iters = static_cast<int>(flags.GetInt("probe_iters", 50));
  const std::size_t threads =
      static_cast<std::size_t>(flags.GetInt("threads", 4));
  const std::vector<std::int64_t> shard_counts =
      flags.GetIntList("shards", {1, 2, 4});
  const std::string json_path = flags.GetString("json", "");

  std::printf("=== ad hoc serving: raw disk vs SVDD layouts ===\n\n");
  const tsc::Dataset dataset = tsc::bench::MakePhoneDataset(rows);
  const tsc::Matrix& x = dataset.values;
  std::printf("%s", tsc::bench::DatasetBanner(dataset).c_str());
  std::printf("workload: %d cell probes + %d avg aggregates (~5%% regions)\n\n",
              cells, aggregates);
  const Workload workload = MakeWorkload(x, cells, aggregates);

  const tsc::bench::TempMatrixFile raw_file(x, "throughput_raw");
  const auto model = tsc::bench::BuildSvddAtSpace(x, space, 16);
  TSC_CHECK_OK(model.status());
  tsc::bench::TempSvddStore disk_store(*model, "throughput");

  tsc::TablePrinter table({"serving config", "footprint MB", "disk accesses",
                           "wall ms", "agg err%"});
  tsc::bench::JsonReporter report(
      "query_throughput",
      {"config", "footprint_mb", "disk_accesses", "wall_ms", "agg_err_pct"});
  report.AddScalar("rows", static_cast<double>(rows));
  report.AddScalar("space_pct", space);
  report.AddScalar("cell_probes", static_cast<double>(cells));
  report.AddScalar("aggregates", static_cast<double>(aggregates));

  // --- raw file -----------------------------------------------------------
  {
    auto reader = tsc::RowStoreReader::Open(raw_file.path());
    TSC_CHECK_OK(reader.status());
    tsc::Timer timer;
    for (const auto& [i, j] : workload.cells) {
      TSC_CHECK_OK(reader->ReadCell(i, j).status());
    }
    std::vector<double> row(x.cols());
    tsc::RunningStats err;
    for (std::size_t q = 0; q < workload.aggregates.size(); ++q) {
      const tsc::RegionQuery& query = workload.aggregates[q];
      tsc::RunningStats agg;
      for (const std::size_t i : query.row_ids) {
        TSC_CHECK_OK(reader->ReadRow(i, row));
        for (const std::size_t j : query.col_ids) agg.Add(row[j]);
      }
      err.Add(tsc::QueryError(workload.exact_answers[q], agg.mean()));
    }
    const double wall_ms = timer.ElapsedMillis();
    table.AddRow({"raw file on disk",
                  tsc::TablePrinter::Num(reader->file_bytes() / 1e6),
                  std::to_string(reader->counter().accesses()),
                  tsc::TablePrinter::Num(wall_ms, 4),
                  tsc::TablePrinter::Percent(100.0 * err.mean())});
    report.AddRow({"raw file on disk",
                   tsc::TablePrinter::Num(reader->file_bytes() / 1e6),
                   std::to_string(reader->counter().accesses()),
                   tsc::TablePrinter::Num(wall_ms, 4),
                   tsc::TablePrinter::Num(100.0 * err.mean())});
  }

  // --- svdd, U on disk ------------------------------------------------------
  {
    tsc::DiskBackedStore& store = disk_store.store();
    tsc::Timer timer;
    for (const auto& [i, j] : workload.cells) {
      TSC_CHECK_OK(store.ReconstructCell(i, j).status());
    }
    std::vector<double> row(x.cols());
    tsc::RunningStats err;
    for (std::size_t q = 0; q < workload.aggregates.size(); ++q) {
      const tsc::RegionQuery& query = workload.aggregates[q];
      tsc::RunningStats agg;
      for (const std::size_t i : query.row_ids) {
        TSC_CHECK_OK(store.ReconstructRow(i, row));
        for (const std::size_t j : query.col_ids) agg.Add(row[j]);
      }
      err.Add(tsc::QueryError(workload.exact_answers[q], agg.mean()));
    }
    const double footprint = store.u_file_bytes() / 1e6;
    const double wall_ms = timer.ElapsedMillis();
    table.AddRow({"svdd, U on disk", tsc::TablePrinter::Num(footprint),
                  std::to_string(store.disk_accesses()),
                  tsc::TablePrinter::Num(wall_ms, 4),
                  tsc::TablePrinter::Percent(100.0 * err.mean())});
    report.AddRow({"svdd, U on disk", tsc::TablePrinter::Num(footprint),
                   std::to_string(store.disk_accesses()),
                   tsc::TablePrinter::Num(wall_ms, 4),
                   tsc::TablePrinter::Num(100.0 * err.mean())});
  }

  // --- svdd fully in memory -------------------------------------------------
  {
    tsc::Timer timer;
    for (const auto& [i, j] : workload.cells) {
      (void)model->ReconstructCell(i, j);
    }
    tsc::RunningStats err;
    for (std::size_t q = 0; q < workload.aggregates.size(); ++q) {
      const double approx =
          tsc::EvaluateAggregate(*model, workload.aggregates[q]);
      err.Add(tsc::QueryError(workload.exact_answers[q], approx));
    }
    const double wall_ms = timer.ElapsedMillis();
    table.AddRow({"svdd in memory",
                  tsc::TablePrinter::Num(model->CompressedBytes() / 1e6),
                  "0", tsc::TablePrinter::Num(wall_ms, 4),
                  tsc::TablePrinter::Percent(100.0 * err.mean())});
    report.AddRow({"svdd in memory",
                   tsc::TablePrinter::Num(model->CompressedBytes() / 1e6),
                   "0", tsc::TablePrinter::Num(wall_ms, 4),
                   tsc::TablePrinter::Num(100.0 * err.mean())});
  }

  std::printf("%s\n", table.ToString().c_str());

  // --- serving-path micro-modes ---------------------------------------------
  // The same cell probes against the in-memory model, three ways. The
  // "seed per-cell" row reproduces the original per-cell formula (a
  // scalar loop over u(i,m)*sigma_m*v(j,m) plus a delta probe) so the
  // dispatched and batched paths are measured against a fixed baseline.
  // Acceptance gate for the vectorized path: batched >= 2x seed QPS.
  double sink = 0.0;
  {
    const tsc::SvdModel& svd = model->svd();
    const std::size_t k = svd.k();
    std::vector<tsc::CellRef> refs;
    refs.reserve(workload.cells.size());
    for (const auto& [i, j] : workload.cells) refs.push_back({i, j});

    const auto time_mode = [&](const auto& body) {
      body();  // warm-up pass
      tsc::Timer timer;
      for (int it = 0; it < probe_iters; ++it) body();
      return timer.ElapsedMillis();
    };
    const double probes =
        static_cast<double>(workload.cells.size()) * probe_iters;

    const double seed_ms = time_mode([&] {
      for (const auto& [i, j] : workload.cells) {
        double value = 0.0;
        for (std::size_t m = 0; m < k; ++m) {
          value += svd.u()(i, m) * svd.singular_values()[m] * svd.v()(j, m);
        }
        const auto delta = model->deltas().Get(
            static_cast<std::uint64_t>(i) * x.cols() + j);
        sink += delta.value_or(value);
      }
    });
    const double percell_ms = time_mode([&] {
      for (const auto& [i, j] : workload.cells) {
        sink += model->ReconstructCell(i, j);
      }
    });
    std::vector<double> out(refs.size());
    const double batched_ms = time_mode([&] {
      model->ReconstructCells(refs, out);
      sink += out[0];
    });

    const double seed_qps = probes / (seed_ms / 1000.0);
    const double percell_qps = probes / (percell_ms / 1000.0);
    const double batched_qps = probes / (batched_ms / 1000.0);
    tsc::TablePrinter probe_table(
        {"cell-probe mode", "wall ms", "Mcells/s", "vs seed"});
    probe_table.AddRow({"seed per-cell formula",
                        tsc::TablePrinter::Num(seed_ms, 3),
                        tsc::TablePrinter::Num(seed_qps / 1e6, 3), "1.0x"});
    probe_table.AddRow({"dispatched per-cell",
                        tsc::TablePrinter::Num(percell_ms, 3),
                        tsc::TablePrinter::Num(percell_qps / 1e6, 3),
                        tsc::TablePrinter::Num(percell_qps / seed_qps, 2) +
                            "x"});
    probe_table.AddRow({"batched ReconstructCells",
                        tsc::TablePrinter::Num(batched_ms, 3),
                        tsc::TablePrinter::Num(batched_qps / 1e6, 3),
                        tsc::TablePrinter::Num(batched_qps / seed_qps, 2) +
                            "x"});
    std::printf("%s\n", probe_table.ToString().c_str());
    report.AddScalar("cell_qps_seed", seed_qps);
    report.AddScalar("cell_qps_percell", percell_qps);
    report.AddScalar("cell_qps_batched", batched_qps);
    report.AddScalar("batched_speedup_vs_seed", batched_qps / seed_qps);
  }

  // --- threaded aggregate execution -----------------------------------------
  // The aggregate workload through the query executor's batched scan at
  // one thread and at --threads; fixed-shard reduction keeps the answers
  // bit-identical, so only the wall time may differ.
  {
    const auto run_aggregates = [&](std::size_t num_threads, double* checksum) {
      tsc::QueryExecutor exec(&*model, num_threads);
      tsc::Timer timer;
      for (const tsc::RegionQuery& query : workload.aggregates) {
        tsc::QueryPlan plan;
        plan.row_ids = query.row_ids;
        plan.col_ids = query.col_ids;
        plan.aggregates = {tsc::AggregateFn::kAvg};
        plan.strategies = {tsc::ExecutionStrategy::kRowReconstruction};
        const auto result = exec.ExecutePlan(plan);
        TSC_CHECK_OK(result.status());
        *checksum += result->ValueAt(0, 0);
      }
      return timer.ElapsedMillis();
    };
    double sum1 = 0.0;
    double sum_n = 0.0;
    const double serial_ms = run_aggregates(1, &sum1);
    const double parallel_ms = run_aggregates(threads, &sum_n);
    TSC_CHECK(sum1 == sum_n);  // bitwise determinism across thread counts
    sink += sum1;
    tsc::TablePrinter agg_table(
        {"aggregate executor", "wall ms", "queries/s", "speedup"});
    agg_table.AddRow({"1 thread", tsc::TablePrinter::Num(serial_ms, 3),
                      tsc::TablePrinter::Num(aggregates / (serial_ms / 1000.0),
                                             4),
                      "1.0x"});
    agg_table.AddRow(
        {std::to_string(threads) + " threads",
         tsc::TablePrinter::Num(parallel_ms, 3),
         tsc::TablePrinter::Num(aggregates / (parallel_ms / 1000.0), 4),
         tsc::TablePrinter::Num(serial_ms / parallel_ms, 2) + "x"});
    std::printf("%s\n", agg_table.ToString().c_str());
    report.AddScalar("agg_threads", static_cast<double>(threads));
    report.AddScalar("agg_serial_ms", serial_ms);
    report.AddScalar("agg_parallel_ms", parallel_ms);
  }

  // --- rollup hierarchy vs scan aggregate serving ---------------------------
  // The PR 8 axis: the same avg-aggregate workload answered three ways
  // through one executor — full row reconstruction (the scan baseline),
  // the flat compressed-domain identity (one U/V column sweep per
  // query), and the O(k log N + k log M) rollup hierarchy. Work is
  // metered by the process counters the modes charge: rows scanned for
  // the scan path, tree nodes read for the hierarchy. Answers must
  // agree to fp-reassociation tolerance; the rollup charges ZERO row
  // scans, so the >= 5x rows_scanned gate holds with room to spare.
  {
    tsc::obs::MetricRegistry& registry = tsc::obs::MetricRegistry::Default();
    tsc::obs::Counter& rows_counter = registry.GetCounter("query.rows_scanned");
    tsc::obs::Counter& nodes_counter = registry.GetCounter("agg.nodes_read");
    tsc::QueryExecutor exec(&*model);  // hierarchy built once, up front

    struct ModeResult {
      double qps = 0.0;
      std::uint64_t rows_scanned = 0;  // per workload pass
      std::uint64_t nodes_read = 0;    // per workload pass
      std::vector<double> answers;
    };
    const auto run_mode = [&](tsc::ExecutionStrategy strategy, int reps) {
      ModeResult mode;
      const std::uint64_t rows_before = rows_counter.Value();
      const std::uint64_t nodes_before = nodes_counter.Value();
      tsc::Timer timer;
      for (int rep = 0; rep < reps; ++rep) {
        for (const tsc::RegionQuery& query : workload.aggregates) {
          tsc::QueryPlan plan;
          plan.row_ids = query.row_ids;
          plan.col_ids = query.col_ids;
          plan.aggregates = {tsc::AggregateFn::kAvg};
          plan.strategies = {strategy};
          const auto result = exec.ExecutePlan(plan);
          TSC_CHECK_OK(result.status());
          if (rep == 0) mode.answers.push_back(result->ValueAt(0, 0));
          sink += result->ValueAt(0, 0);
        }
      }
      const double wall_s = timer.ElapsedMillis() / 1000.0;
      const double executed =
          static_cast<double>(workload.aggregates.size()) * reps;
      mode.qps = wall_s > 0 ? executed / wall_s : 0.0;
      const std::uint64_t ureps = static_cast<std::uint64_t>(reps);
      mode.rows_scanned = (rows_counter.Value() - rows_before) / ureps;
      mode.nodes_read = (nodes_counter.Value() - nodes_before) / ureps;
      return mode;
    };

    // The scan pass reads every selected row, so it gets fewer reps.
    const ModeResult scan = run_mode(
        tsc::ExecutionStrategy::kRowReconstruction,
        std::max(1, probe_iters / 10));
    const ModeResult flat =
        run_mode(tsc::ExecutionStrategy::kCompressedDomain, probe_iters);
    const ModeResult rollup =
        run_mode(tsc::ExecutionStrategy::kRollup, probe_iters);

    double max_rel_diff = 0.0;
    for (std::size_t q = 0; q < scan.answers.size(); ++q) {
      const double denom = std::max(std::abs(scan.answers[q]), 1e-12);
      max_rel_diff = std::max(
          max_rel_diff, std::abs(rollup.answers[q] - scan.answers[q]) / denom);
    }

    tsc::TablePrinter rollup_table({"aggregate mode", "queries/s",
                                    "rows scanned", "tree nodes", "vs scan"});
    const auto add_mode = [&](const char* name, const ModeResult& mode) {
      rollup_table.AddRow(
          {name, tsc::TablePrinter::Num(mode.qps, 4),
           std::to_string(mode.rows_scanned), std::to_string(mode.nodes_read),
           tsc::TablePrinter::Num(scan.qps > 0 ? mode.qps / scan.qps : 0.0,
                                  2) +
               "x"});
    };
    add_mode("row scan", scan);
    add_mode("compressed-domain", flat);
    add_mode("rollup hierarchy", rollup);
    std::printf("%s\n", rollup_table.ToString().c_str());
    std::printf("rollup vs scan: %.2fx QPS, %llu -> %llu rows scanned per "
                "pass, max rel answer diff %.3g\n\n",
                scan.qps > 0 ? rollup.qps / scan.qps : 0.0,
                static_cast<unsigned long long>(scan.rows_scanned),
                static_cast<unsigned long long>(rollup.rows_scanned),
                max_rel_diff);

    report.AddScalar("agg_scan_qps", scan.qps);
    report.AddScalar("agg_compressed_qps", flat.qps);
    report.AddScalar("agg_rollup_qps", rollup.qps);
    report.AddScalar("agg_scan_rows_scanned",
                     static_cast<double>(scan.rows_scanned));
    report.AddScalar("agg_rollup_rows_scanned",
                     static_cast<double>(rollup.rows_scanned));
    report.AddScalar("agg_rollup_nodes_read",
                     static_cast<double>(rollup.nodes_read));
    report.AddScalar("agg_rollup_speedup_vs_scan",
                     scan.qps > 0 ? rollup.qps / scan.qps : 0.0);
    report.AddScalar("agg_rollup_max_rel_diff", max_rel_diff);

    // Acceptance gates. Counters compile out under TSC_OBS_DISABLED, so
    // the rows_scanned gate only fires when the scan pass was metered.
    TSC_CHECK(max_rel_diff < 1e-6);
    if (scan.rows_scanned > 0) {
      TSC_CHECK(scan.rows_scanned >= 5 * std::max<std::uint64_t>(
                                             rollup.rows_scanned, 1));
    }
  }
  // --- quantized U row store serving ----------------------------------------
  // The PR 5 axis: the same disk-backed batched workload served from a U
  // store at each QuantScheme, every configuration given the SAME
  // block-cache byte budget (sized to ~1/4 of the f64 U file, so f64
  // thrashes while the narrow encodings mostly fit). The stream backend
  // makes each cache miss a real positional read, i.e. the disk access
  // the paper counts. Gate: int8 batched QPS >= 1.5x f64, and the
  // normalized max reconstruction error (SVDD deltas enabled, which were
  // selected against the QUANTIZED reconstruction) stays within
  // --quant_err_budget.
  {
    const double quant_err_budget = flags.GetDouble("quant_err_budget", 0.02);
    double absmax = 0.0;
    for (const double v : x.data()) absmax = std::max(absmax, std::abs(v));

    std::vector<tsc::CellRef> refs;
    refs.reserve(workload.cells.size());
    for (const auto& [i, j] : workload.cells) refs.push_back({i, j});
    std::vector<double> out(refs.size());

    tsc::TablePrinter quant_table({"u encoding", "u file KB", "bytes/row",
                                   "cache hit%", "Mcells/s", "vs f64",
                                   "max err"});
    std::uint64_t f64_u_bytes = 0;
    std::size_t cache_blocks = 0;
    std::size_t f64_k = 0;
    double f64_qps = 0.0;
    double int8_qps = 0.0;
    double worst_err = 0.0;
    const tsc::QuantScheme schemes[] = {
        tsc::QuantScheme::kF64, tsc::QuantScheme::kF32, tsc::QuantScheme::kI16,
        tsc::QuantScheme::kI8};
    for (const tsc::QuantScheme scheme : schemes) {
      const char* name = tsc::QuantSchemeName(scheme);
      tsc::MatrixRowSource source(&x);
      tsc::SvddBuildOptions build;
      build.space_percent = space;
      build.max_candidates = 16;
      build.quant = scheme;
      // Same k for every encoding (the f64 build's k_opt), so the rows
      // carry the same components and only the bytes differ — the freed
      // budget goes to extra deltas, not extra components. (Left to the
      // optimizer, a quantized build buys a larger k instead; that axis
      // is covered by the space/accuracy tables in docs/performance.md.)
      build.forced_k = f64_k;
      const auto qmodel = tsc::BuildSvddModel(&source, build);
      TSC_CHECK_OK(qmodel.status());
      // Probe open: stream backend, no cache — just to size the shared
      // budget off the f64 file before the measured open.
      tsc::DiskBackedOptions opts;
      opts.io_backend = tsc::IoBackendKind::kStream;
      tsc::bench::TempSvddStore qtemp(
          *qmodel, std::string("throughput_") + name, opts);
      if (scheme == tsc::QuantScheme::kF64) {
        f64_k = qmodel->k();
        f64_u_bytes = qtemp.store().u_file_bytes();
        // Shared budget sized so the int8 U store just fits: the paper's
        // "keep the working set resident" regime, which the narrow
        // encodings reach and the wide ones miss.
        const std::uint64_t int8_bytes =
            32 + static_cast<std::uint64_t>(x.rows()) *
                     tsc::QuantRowStride(tsc::QuantScheme::kI8, f64_k);
        cache_blocks = static_cast<std::size_t>(
            int8_bytes / tsc::DiskAccessCounter::kDefaultBlockSize + 1);
      }
      opts.cache_blocks = cache_blocks;  // equal byte budget for every scheme
      qtemp.Reopen(opts);
      tsc::DiskBackedStore& qstore = qtemp.store();

      TSC_CHECK_OK(qstore.ReconstructCells(refs, out));  // warm-up
      sink += out[0];
      qstore.ResetCounters();
      tsc::Timer timer;
      for (int it = 0; it < probe_iters; ++it) {
        TSC_CHECK_OK(qstore.ReconstructCells(refs, out));
        sink += out[out.size() - 1];
      }
      const double wall_s = timer.ElapsedMillis() / 1000.0;
      const double qps =
          static_cast<double>(refs.size()) * probe_iters / wall_s;
      const double hits = static_cast<double>(qstore.cache_hits());
      const double misses = static_cast<double>(qstore.disk_accesses());
      const double hit_pct =
          hits + misses > 0 ? 100.0 * hits / (hits + misses) : 0.0;

      // Full-sweep error through the fused row path, normalized by the
      // dataset's largest magnitude.
      double max_err = 0.0;
      std::vector<double> recon(x.cols());
      for (std::size_t i = 0; i < x.rows(); ++i) {
        TSC_CHECK_OK(qstore.ReconstructRow(i, recon));
        for (std::size_t j = 0; j < x.cols(); ++j) {
          max_err = std::max(max_err, std::abs(recon[j] - x(i, j)));
        }
      }
      const double norm_err = max_err / absmax;

      if (scheme == tsc::QuantScheme::kF64) f64_qps = qps;
      if (scheme == tsc::QuantScheme::kI8) int8_qps = qps;
      worst_err = std::max(worst_err, norm_err);
      quant_table.AddRow(
          {name, tsc::TablePrinter::Num(qstore.u_file_bytes() / 1024.0, 1),
           std::to_string(qstore.u_row_stride_bytes()),
           tsc::TablePrinter::Num(hit_pct, 1),
           tsc::TablePrinter::Num(qps / 1e6, 3),
           tsc::TablePrinter::Num(qps / (f64_qps > 0 ? f64_qps : qps), 2) +
               "x",
           tsc::TablePrinter::Num(norm_err, 4)});
      report.AddScalar(std::string("quant_batched_qps_") + name, qps);
      report.AddScalar(std::string("quant_max_err_") + name, norm_err);
      report.AddScalar(std::string("quant_u_file_bytes_") + name,
                       static_cast<double>(qstore.u_file_bytes()));
    }
    std::printf("quantized U serving, stream I/O, shared %zu-block cache "
                "(%.0f KB, sized to the int8 U store):\n%s\n",
                cache_blocks,
                cache_blocks * tsc::DiskAccessCounter::kDefaultBlockSize /
                    1024.0,
                quant_table.ToString().c_str());
    const double speedup = f64_qps > 0 ? int8_qps / f64_qps : 0.0;
    report.AddScalar("quant_cache_blocks", static_cast<double>(cache_blocks));
    report.AddScalar("quant_speedup_int8_vs_f64", speedup);
    report.AddScalar("quant_err_budget", quant_err_budget);
    std::printf("int8 vs f64 batched QPS: %.2fx (gate >= 1.5x); worst "
                "normalized max err %.4f (budget %.2f)\n\n",
                speedup, worst_err, quant_err_budget);
    TSC_CHECK(worst_err <= quant_err_budget);
  }

  // --- sharded scatter-gather serving ---------------------------------------
  // The PR 9 axis: the same batched cell workload served by the single
  // in-memory model vs a ShardedStore split from it at each --shards
  // count. The split is exact (U rows copied, V/eigenvalues replicated,
  // deltas re-keyed) and the scatter-gather merge writes disjoint output
  // slots in shard order, so the sharded answers must be BIT-identical
  // to the single store — enforced with TSC_CHECK, not a tolerance.
  // Speedup ratios only mean something with >= 2 cores
  // (shard_scaling_measurable, the same guard as build_scaling): on a
  // 1-core runner the fan-out pool is disabled (min(S, hardware) = 1)
  // and the honest number is the S=1 ratio, which the single-shard
  // forward in ShardedStore keeps within noise of the plain store.
  {
    const std::size_t hardware = tsc::ThreadPool::HardwareThreads();
    const bool shard_scaling_measurable = hardware >= 2;
    std::vector<tsc::CellRef> refs;
    refs.reserve(workload.cells.size());
    for (const auto& [i, j] : workload.cells) refs.push_back({i, j});
    std::vector<double> base_out(refs.size());
    std::vector<double> out(refs.size());

    // Split the stores up front, then measure all modes in interleaved
    // rounds. A --probe_iters pass over one batch takes well under a
    // millisecond here, so each sample runs for a minimum wall budget;
    // interleaving the modes round-robin and keeping each mode's best
    // round means slow drift in background load (the realistic noise on
    // a shared box) hits every mode alike instead of biasing whichever
    // one happened to run during the quiet spell.
    const auto measure_once = [&](const auto& body) {
      std::size_t batches = 0;
      double elapsed_ms = 0.0;
      tsc::Timer timer;
      do {
        for (int it = 0; it < probe_iters; ++it) body();
        batches += static_cast<std::size_t>(probe_iters);
        elapsed_ms = timer.ElapsedMillis();
      } while (elapsed_ms < 150.0);
      return static_cast<double>(refs.size()) *
             static_cast<double>(batches) / (elapsed_ms / 1000.0);
    };

    std::vector<std::size_t> shard_sizes;
    std::vector<tsc::ShardedStore> stores;
    for (const std::int64_t sc : shard_counts) {
      const std::size_t shards = static_cast<std::size_t>(sc);
      auto layout = tsc::ShardLayout::Make(tsc::ShardPartition::kRange,
                                           x.rows(), shards);
      TSC_CHECK_OK(layout.status());
      auto store = tsc::SplitSvddModel(*model, *layout);
      TSC_CHECK_OK(store.status());
      const std::size_t fan_out = std::min(shards, hardware);
      store->EnableParallelFanOut(fan_out > 1 ? fan_out : 0);
      // Warm up, and enforce the determinism contract once per store:
      // every cell bit-identical to the single store, at any shard
      // count.
      model->ReconstructCells(refs, base_out);
      store->ReconstructCells(refs, out);
      for (std::size_t i = 0; i < refs.size(); ++i) {
        TSC_CHECK(out[i] == base_out[i]);
      }
      shard_sizes.push_back(shards);
      stores.push_back(std::move(*store));
    }

    double single_qps = 0.0;
    std::vector<double> shard_qps(stores.size(), 0.0);
    for (int round = 0; round < 3; ++round) {
      single_qps = std::max(single_qps, measure_once([&] {
                     model->ReconstructCells(refs, base_out);
                     sink += base_out[0];
                   }));
      for (std::size_t s = 0; s < stores.size(); ++s) {
        shard_qps[s] = std::max(shard_qps[s], measure_once([&] {
                         stores[s].ReconstructCells(refs, out);
                         sink += out[0];
                       }));
      }
    }

    tsc::TablePrinter shard_table(
        {"serving store", "fan-out", "Mcells/s", "vs single"});
    shard_table.AddRow({"single svdd", "-",
                        tsc::TablePrinter::Num(single_qps / 1e6, 3), "1.0x"});
    report.AddScalar("shard_single_qps", single_qps);
    report.AddScalar("shard_scaling_measurable",
                     shard_scaling_measurable ? 1.0 : 0.0);
    double s1_ratio = 0.0;
    for (std::size_t s = 0; s < stores.size(); ++s) {
      const std::size_t shards = shard_sizes[s];
      const std::size_t fan_out = std::min(shards, hardware);
      const double ratio = single_qps > 0 ? shard_qps[s] / single_qps : 0.0;
      if (shards == 1) s1_ratio = ratio;
      shard_table.AddRow({"sharded S=" + std::to_string(shards),
                          std::to_string(fan_out) + " thr",
                          tsc::TablePrinter::Num(shard_qps[s] / 1e6, 3),
                          tsc::TablePrinter::Num(ratio, 2) + "x"});
      report.AddScalar("shard_qps_s" + std::to_string(shards), shard_qps[s]);
      report.AddScalar("shard_qps_ratio_s" + std::to_string(shards), ratio);
    }
    report.AddScalar("shard_s1_qps_ratio", s1_ratio);
    std::printf("sharded batched serving (range partition, answers checked "
                "bit-identical):\n%s\n",
                shard_table.ToString().c_str());
    std::printf("S=1 vs single: %.2fx (budget: within 2%% when the box is "
                "quiet); fan-out speedups need >= 2 cores "
                "(shard_scaling_measurable=%d)\n\n",
                s1_ratio, shard_scaling_measurable ? 1 : 0);
  }

  if (sink == 0.12345) std::printf("%f\n", sink);  // defeat dead-code elim

  std::printf(
      "the point of the paper: the %s%% model answers the same workload\n"
      "with a ~%.0fx smaller footprint, so it stays on disk (or in\n"
      "memory) when the raw matrix cannot — at sub-percent aggregate "
      "error.\n",
      tsc::TablePrinter::Num(space).c_str(), 100.0 / space);
  if (!json_path.empty()) {
    TSC_CHECK_OK(report.WriteFile(json_path));
    std::printf("json report written to %s\n", json_path.c_str());
  }
  return 0;
}
