// Microbenchmarks (google-benchmark) for the operations the paper's
// complexity claims rest on:
//   - single-cell reconstruction is O(k), independent of N and M;
//   - row reconstruction is O(k * M);
//   - the delta-table probe is O(1) and the Bloom filter cheapens misses;
//   - a disk-backed cell read is one block access plus O(k) arithmetic.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/bench_datasets.h"
#include "common/json_reporter.h"
#include "core/disk_backed.h"
#include "data/generators.h"
#include "storage/cached_row_reader.h"
#include "storage/row_source.h"
#include "util/logging.h"
#include "util/rng.h"
#include "util/table_printer.h"

namespace tsc::bench {
namespace {

/// Shared fixture data, built once per (N, k) shape.
struct Built {
  Matrix data;
  SvddModel model;
};

Built BuildFor(std::size_t n, std::size_t m, std::size_t k) {
  PhoneDatasetConfig config;
  config.num_customers = n;
  config.num_days = m;
  config.seed = 3;
  Built built;
  built.data = GeneratePhoneDataset(config).values;
  MatrixRowSource source(&built.data);
  SvddBuildOptions options;
  options.space_percent = 100.0;  // roomy; forced_k decides the rank
  options.forced_k = k;
  auto model = BuildSvddModel(&source, options);
  TSC_CHECK_OK(model.status());
  built.model = std::move(*model);
  return built;
}

void BM_CellReconstructionVsK(benchmark::State& state) {
  const std::size_t k = static_cast<std::size_t>(state.range(0));
  static Matrix data = [] {
    PhoneDatasetConfig config;
    config.num_customers = 500;
    config.num_days = 128;
    return GeneratePhoneDataset(config).values;
  }();
  MatrixRowSource source(&data);
  SvddBuildOptions options;
  options.space_percent = 200.0;
  options.forced_k = k;
  auto model = BuildSvddModel(&source, options);
  TSC_CHECK_OK(model.status());
  Rng rng(1);
  for (auto _ : state) {
    const std::size_t i = rng.UniformUint64(data.rows());
    const std::size_t j = rng.UniformUint64(data.cols());
    benchmark::DoNotOptimize(model->ReconstructCell(i, j));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_CellReconstructionVsK)->Arg(1)->Arg(4)->Arg(16)->Arg(64);

void BM_CellReconstructionVsN(benchmark::State& state) {
  // O(k) claim: time must NOT grow with N at fixed k.
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const Built built = BuildFor(n, 64, 8);
  Rng rng(2);
  for (auto _ : state) {
    const std::size_t i = rng.UniformUint64(built.data.rows());
    const std::size_t j = rng.UniformUint64(built.data.cols());
    benchmark::DoNotOptimize(built.model.ReconstructCell(i, j));
  }
}
BENCHMARK(BM_CellReconstructionVsN)->Arg(256)->Arg(1024)->Arg(4096);

void BM_RowReconstruction(benchmark::State& state) {
  const Built built = BuildFor(512, 366, static_cast<std::size_t>(state.range(0)));
  std::vector<double> row(built.data.cols());
  Rng rng(3);
  for (auto _ : state) {
    built.model.ReconstructRow(rng.UniformUint64(built.data.rows()), row);
    benchmark::DoNotOptimize(row.data());
  }
}
BENCHMARK(BM_RowReconstruction)->Arg(4)->Arg(16)->Arg(36);

void BM_DeltaTableProbe(benchmark::State& state) {
  DeltaTable table(100000);
  Rng rng(4);
  std::vector<std::uint64_t> keys;
  for (int i = 0; i < 100000; ++i) {
    keys.push_back(rng.NextUint64());
    table.Put(keys.back(), 1.0);
  }
  std::size_t idx = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.Get(keys[idx++ % keys.size()]));
  }
}
BENCHMARK(BM_DeltaTableProbe);

void BM_BloomNegativeLookup(benchmark::State& state) {
  BloomFilter filter(100000, 10.0);
  Rng rng(5);
  for (int i = 0; i < 100000; ++i) filter.Add(rng.NextUint64());
  Rng probe(6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(filter.MightContain(probe.NextUint64()));
  }
}
BENCHMARK(BM_BloomNegativeLookup);

void BM_DiskBackedCellRead(benchmark::State& state) {
  const Built built = BuildFor(2000, 128, 12);
  TempSvddStore temp(built.model, "micro_disk");
  DiskBackedStore& store = temp.store();
  Rng rng(7);
  for (auto _ : state) {
    const auto value = store.ReconstructCell(rng.UniformUint64(2000),
                                             rng.UniformUint64(128));
    benchmark::DoNotOptimize(value);
  }
  state.counters["disk_accesses_per_read"] =
      static_cast<double>(store.disk_accesses()) /
      static_cast<double>(state.iterations());
}
BENCHMARK(BM_DiskBackedCellRead);

void BM_CachedRowReadSkewed(benchmark::State& state) {
  // Buffer pool under a Zipf-hot workload: most reads hit the cache, so
  // the per-read disk cost drops far below 1 access.
  const std::size_t cache_blocks = static_cast<std::size_t>(state.range(0));
  const Built built = BuildFor(4000, 64, 8);
  const TempMatrixFile temp(built.data, "micro_cached");
  auto raw = RowStoreReader::Open(temp.path());
  TSC_CHECK_OK(raw.status());
  CachedRowReader reader(std::move(*raw), cache_blocks);
  std::vector<double> row(64);
  Rng rng(8);
  for (auto _ : state) {
    const std::size_t i = rng.Bernoulli(0.9)
                              ? rng.UniformUint64(32)     // hot rows
                              : rng.UniformUint64(4000);  // cold tail
    TSC_CHECK_OK(reader.ReadRow(i, row));
    benchmark::DoNotOptimize(row.data());
  }
  state.counters["disk_accesses_per_read"] =
      static_cast<double>(reader.disk_accesses()) /
      static_cast<double>(state.iterations());
  state.counters["cache_hit_rate"] = reader.cache().HitRate();
}
BENCHMARK(BM_CachedRowReadSkewed)->Arg(4)->Arg(64)->Arg(1024);

void BM_SvddBuild(benchmark::State& state) {
  PhoneDatasetConfig config;
  config.num_customers = static_cast<std::size_t>(state.range(0));
  config.num_days = 128;
  const Matrix data = GeneratePhoneDataset(config).values;
  for (auto _ : state) {
    MatrixRowSource source(&data);
    SvddBuildOptions options;
    options.space_percent = 10.0;
    options.max_candidates = 8;
    auto model = BuildSvddModel(&source, options);
    benchmark::DoNotOptimize(model);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(data.size() * 8));
}
BENCHMARK(BM_SvddBuild)->Arg(500)->Arg(2000)->Unit(benchmark::kMillisecond);

/// Console output as usual, plus an in-memory copy of every run so a
/// --json report can be written after the fact.
class CapturingReporter : public benchmark::ConsoleReporter {
 public:
  struct Captured {
    std::string name;
    std::int64_t iterations;
    double real_ns_per_iter;
    double cpu_ns_per_iter;
  };

  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.run_type != Run::RT_Iteration) continue;
      const double iters =
          run.iterations > 0 ? static_cast<double>(run.iterations) : 1.0;
      captured_.push_back({run.benchmark_name(), run.iterations,
                           run.real_accumulated_time * 1e9 / iters,
                           run.cpu_accumulated_time * 1e9 / iters});
    }
    ConsoleReporter::ReportRuns(runs);
  }

  const std::vector<Captured>& captured() const { return captured_; }

 private:
  std::vector<Captured> captured_;
};

}  // namespace
}  // namespace tsc::bench

// BENCHMARK_MAIN with a --json FILE flag (stripped before google-benchmark
// sees the argument list) writing the shared bench report schema.
int main(int argc, char** argv) {
  std::string json_path;
  std::vector<char*> kept;
  kept.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--json=", 0) == 0) {
      json_path = arg.substr(7);
    } else if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      kept.push_back(argv[i]);
    }
  }
  int kept_argc = static_cast<int>(kept.size());
  benchmark::Initialize(&kept_argc, kept.data());
  if (benchmark::ReportUnrecognizedArguments(kept_argc, kept.data())) return 1;

  tsc::bench::CapturingReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();

  if (!json_path.empty()) {
    tsc::bench::JsonReporter report(
        "micro_reconstruction",
        {"name", "iterations", "real_ns_per_iter", "cpu_ns_per_iter"});
    for (const auto& run : reporter.captured()) {
      report.AddRow({run.name, std::to_string(run.iterations),
                     tsc::TablePrinter::Num(run.real_ns_per_iter, 6),
                     tsc::TablePrinter::Num(run.cpu_ns_per_iter, 6)});
    }
    TSC_CHECK_OK(report.WriteFile(json_path));
    std::printf("json report written to %s\n", json_path.c_str());
  }
  return 0;
}
