// Ablations for the design choices DESIGN.md calls out:
//   1. PC-vs-delta trade-off: forced k across the range vs the 3-pass
//      algorithm's k_opt (is the optimizer actually picking the minimum?).
//   2. Delta triplet encoding: 16-byte packed key vs 24-byte naive
//      (row, col, delta as three 8-byte values).
//   3. Bloom filter in front of the delta table: hash-table probes saved
//      per million lookups vs filter memory.
//   4. Eigensolver: Householder+QL vs cyclic Jacobi (build time and
//      agreement).
//   5. Clustering baseline: complete vs average vs single linkage vs
//      k-means at equal space.
//   6. Robust SVD (trimmed refit, the paper's future-work (b)) vs plain
//      SVD vs SVDD on spiked data: robustness protects the subspace,
//      deltas protect the worst case — they are complementary.
//   7. Zero-row filter (Section 6.2) on data with dead customers.
//   8. Quantized b=4 storage vs b=8.
//   9. Cell deltas vs whole-row outlier storage — the Section 4.2 design
//      argument ("it is more reasonable to store the deltas for those
//      specific days, as opposed to treating the whole customer as an
//      outlier"), quantified.
//
// Flags: --phone_rows=1000  --space=10  --threads=N

#include <cstdio>
#include <vector>

#include "baselines/clustering.h"
#include "common/bench_datasets.h"
#include "core/metrics.h"
#include "core/robust_svd.h"
#include "core/row_outlier.h"
#include "core/zero_rows.h"
#include "storage/row_source.h"
#include "util/flags.h"
#include "util/rng.h"
#include "util/table_printer.h"
#include "util/timer.h"

namespace tsc::bench {
namespace {

// Build threads for every ablation (--threads); the sharded build emits
// the same bytes at any value, so results are unchanged.
std::size_t g_threads = 1;

void AblateForcedK(const Matrix& x, double space) {
  std::printf("--- ablation 1: forced k vs optimized k_opt (s=%.3g%%) ---\n",
              space);
  SvddBuildDiagnostics diag;
  const auto optimized = BuildSvddAtSpace(x, space, 0, &diag, g_threads);
  if (!optimized.ok()) return;
  std::printf("k_opt chosen by the 3-pass algorithm: %zu (of k_max=%zu)\n",
              diag.k_opt, diag.k_max);

  TablePrinter table({"forced k", "RMSPE%", "deltas", "note"});
  const std::vector<std::size_t> ks = {1, diag.k_max / 4, diag.k_max / 2,
                                       (3 * diag.k_max) / 4, diag.k_max};
  double best_forced = 1e300;
  for (const std::size_t k : ks) {
    if (k == 0) continue;
    MatrixRowSource source(&x);
    SvddBuildOptions options;
    options.space_percent = space;
    options.num_threads = g_threads;
    options.forced_k = k;
    const auto model = BuildSvddModel(&source, options);
    if (!model.ok()) continue;
    const double rmspe = Rmspe(x, *model);
    best_forced = std::min(best_forced, rmspe);
    table.AddRow({std::to_string(k), TablePrinter::Percent(100.0 * rmspe),
                  std::to_string(model->delta_count()),
                  k == diag.k_opt ? "= k_opt" : ""});
  }
  const double optimized_rmspe = Rmspe(x, *optimized);
  table.AddRow({"k_opt=" + std::to_string(diag.k_opt),
                TablePrinter::Percent(100.0 * optimized_rmspe),
                std::to_string(optimized->delta_count()), "optimizer"});
  std::printf("%s", table.ToString().c_str());
  std::printf("optimizer within %.3g%% of the best forced k (should be ~0)\n\n",
              100.0 * (optimized_rmspe - best_forced) /
                  std::max(best_forced, 1e-12));
}

void AblateDeltaEncoding(const Matrix& x, double space) {
  std::printf("--- ablation 2: delta triplet encoding (s=%.3g%%) ---\n",
              space);
  TablePrinter table({"encoding", "bytes/delta", "deltas", "RMSPE%"});
  for (const std::uint64_t bytes : {16u, 24u}) {
    MatrixRowSource source(&x);
    SvddBuildOptions options;
    options.space_percent = space;
    options.num_threads = g_threads;
    options.delta_bytes = bytes;
    const auto model = BuildSvddModel(&source, options);
    if (!model.ok()) continue;
    table.AddRow({bytes == 16 ? "packed key" : "naive (row,col,delta)",
                  std::to_string(bytes), std::to_string(model->delta_count()),
                  TablePrinter::Percent(100.0 * Rmspe(x, *model))});
  }
  std::printf("%s\n", table.ToString().c_str());
}

void AblateBloomFilter(const Matrix& x, double space) {
  std::printf("--- ablation 3: Bloom filter probe savings (s=%.3g%%) ---\n",
              space);
  const auto model = BuildSvddAtSpace(x, space, 0, nullptr, g_threads);
  if (!model.ok()) return;
  // Reconstruct a fixed random set of cells and count delta-table probes
  // with the filter on and off.
  const std::size_t lookups = 200000;
  Rng rng(7);
  std::vector<std::pair<std::size_t, std::size_t>> cells;
  cells.reserve(lookups);
  for (std::size_t i = 0; i < lookups; ++i) {
    cells.emplace_back(rng.UniformUint64(x.rows()),
                       rng.UniformUint64(x.cols()));
  }

  // Without bloom: probe table for every cell.
  MatrixRowSource source(&x);
  SvddBuildOptions no_bloom_options;
  no_bloom_options.space_percent = space;
  no_bloom_options.num_threads = g_threads;
  no_bloom_options.build_bloom_filter = false;
  const auto no_bloom = BuildSvddModel(&source, no_bloom_options);
  if (!no_bloom.ok()) return;

  no_bloom->deltas().ResetProbeCount();
  for (const auto& [i, j] : cells) (void)no_bloom->ReconstructCell(i, j);
  const std::uint64_t probes_without = no_bloom->deltas().probe_count();

  model->deltas().ResetProbeCount();
  for (const auto& [i, j] : cells) (void)model->ReconstructCell(i, j);
  const std::uint64_t probes_with = model->deltas().probe_count();

  TablePrinter table({"config", "table probes", "probes/lookup",
                      "bloom KB"});
  table.AddRow({"no bloom", std::to_string(probes_without),
                TablePrinter::Num(static_cast<double>(probes_without) /
                                  lookups),
                "0"});
  table.AddRow({"bloom (10 bits/key)", std::to_string(probes_with),
                TablePrinter::Num(static_cast<double>(probes_with) / lookups),
                TablePrinter::Num(model->BloomBytes() / 1024.0)});
  std::printf("%s\n", table.ToString().c_str());
}

void AblateEigenSolver(const Matrix& x, double space) {
  std::printf("--- ablation 4: eigensolver choice (s=%.3g%%) ---\n", space);
  TablePrinter table({"solver", "build s", "RMSPE%"});
  for (const auto& [name, kind] :
       std::vector<std::pair<std::string, EigenSolverKind>>{
           {"householder+ql", EigenSolverKind::kHouseholderQl},
           {"cyclic jacobi", EigenSolverKind::kCyclicJacobi}}) {
    MatrixRowSource source(&x);
    SvddBuildOptions options;
    options.space_percent = space;
    options.num_threads = g_threads;
    options.solver = kind;
    Timer timer;
    const auto model = BuildSvddModel(&source, options);
    if (!model.ok()) continue;
    table.AddRow({name, TablePrinter::Num(timer.ElapsedSeconds(), 3),
                  TablePrinter::Percent(100.0 * Rmspe(x, *model))});
  }
  std::printf("%s\n", table.ToString().c_str());
}

void AblateClusteringVariants(const Matrix& x, double space) {
  std::printf("--- ablation 5: clustering variants (s=%.3g%%) ---\n", space);
  const SpaceBudget budget =
      SpaceBudget::FromPercent(x.rows(), x.cols(), space);
  const std::size_t clusters =
      ClustersForBudget(x.rows(), x.cols(), budget.total_bytes);
  if (clusters == 0) return;
  TablePrinter table({"variant", "build s", "RMSPE%"});
  for (const auto& [name, linkage] :
       std::vector<std::pair<std::string, Linkage>>{
           {"hc complete (paper)", Linkage::kComplete},
           {"hc average", Linkage::kAverage},
           {"hc single", Linkage::kSingle}}) {
    Timer timer;
    const auto model = BuildHierarchicalClusterModel(x, clusters, linkage);
    if (!model.ok()) continue;
    table.AddRow({name, TablePrinter::Num(timer.ElapsedSeconds(), 3),
                  TablePrinter::Percent(100.0 * Rmspe(x, *model))});
  }
  {
    Timer timer;
    KMeansOptions options;
    options.num_clusters = clusters;
    const auto model = BuildKMeansClusterModel(x, options);
    if (model.ok()) {
      table.AddRow({"k-means++", TablePrinter::Num(timer.ElapsedSeconds(), 3),
                    TablePrinter::Percent(100.0 * Rmspe(x, *model))});
    }
  }
  std::printf("%s\n", table.ToString().c_str());
}

void AblateRobustSvd(const Matrix& x, double space) {
  std::printf("--- ablation 6: robust SVD vs SVDD (s=%.3g%%) ---\n", space);
  const SpaceBudget budget =
      SpaceBudget::FromPercent(x.rows(), x.cols(), space);
  const std::size_t k = budget.MaxK();
  if (k == 0) return;

  TablePrinter table({"method", "RMSPE%", "worst norm%", "build s"});
  auto add = [&](const std::string& name, const CompressedStore& store,
                 double seconds) {
    const ErrorReport report = EvaluateErrors(x, store);
    table.AddRow({name, TablePrinter::Percent(100.0 * report.rmspe),
                  TablePrinter::Percent(100.0 * report.max_normalized_error),
                  TablePrinter::Num(seconds, 3)});
  };
  {
    MatrixRowSource source(&x);
    SvdBuildOptions options;
    options.k = k;
    options.num_threads = g_threads;
    Timer timer;
    const auto model = BuildSvdModel(&source, options);
    if (model.ok()) add("plain svd", *model, timer.ElapsedSeconds());
  }
  {
    MatrixRowSource source(&x);
    RobustSvdOptions options;
    options.k = k;
    options.iterations = 2;
    Timer timer;
    const auto model = BuildRobustSvdModel(&source, options);
    if (model.ok()) add("robust svd", *model, timer.ElapsedSeconds());
  }
  {
    Timer timer;
    const auto model = BuildSvddAtSpace(x, space, 0, nullptr, g_threads);
    if (model.ok()) add("svdd", *model, timer.ElapsedSeconds());
  }
  std::printf("%s", table.ToString().c_str());
  std::printf("note: robust SVD lowers bulk error on clean cells but cannot\n"
              "represent the spikes; SVDD's deltas bound the worst case.\n\n");
}

void AblateZeroRowFilter(double space) {
  std::printf("--- ablation 7: zero-row filter, 25%% dead customers "
              "(s=%.3g%%) ---\n", space);
  PhoneDatasetConfig config;
  config.num_customers = 1500;
  config.num_days = 120;
  config.zero_customer_fraction = 0.25;
  config.seed = 5;
  const Matrix x = GeneratePhoneDataset(config).values;

  TablePrinter table({"config", "RMSPE%", "space%", "zero rows"});
  {
    const auto plain = BuildSvddAtSpace(x, space, 0, nullptr, g_threads);
    if (plain.ok()) {
      table.AddRow({"plain svdd",
                    TablePrinter::Percent(100.0 * Rmspe(x, *plain)),
                    TablePrinter::Percent(plain->SpacePercent()), "-"});
    }
  }
  {
    SvddBuildOptions options;
    options.space_percent = space;
    options.num_threads = g_threads;
    const auto filtered = BuildZeroRowFilteredSvdd(x, options);
    if (filtered.ok()) {
      table.AddRow({"svdd + zero-row filter",
                    TablePrinter::Percent(100.0 * Rmspe(x, *filtered)),
                    TablePrinter::Percent(filtered->SpacePercent()),
                    std::to_string(filtered->zero_row_count())});
    }
  }
  std::printf("%s\n", table.ToString().c_str());
}

void AblateQuantizedStorage(const Matrix& x, double space) {
  std::printf("--- ablation 8: b=8 vs b=4 storage (s=%.3g%%) ---\n", space);
  TablePrinter table({"b", "RMSPE%", "bytes", "k", "deltas"});
  for (const std::size_t b : {8u, 4u}) {
    MatrixRowSource source(&x);
    SvddBuildOptions options;
    options.space_percent = space;
    options.num_threads = g_threads;
    options.bytes_per_value = b;
    options.delta_bytes = b == 4 ? 12 : 16;
    const auto model = BuildSvddModel(&source, options);
    if (!model.ok()) continue;
    table.AddRow({std::to_string(b),
                  TablePrinter::Percent(100.0 * Rmspe(x, *model)),
                  std::to_string(model->CompressedBytes()),
                  std::to_string(model->k()),
                  std::to_string(model->delta_count())});
  }
  std::printf("%s", table.ToString().c_str());
  std::printf("same value count, half the bytes at b=4 (minus the fixed\n"
              "8-byte delta keys); error picks up only float rounding.\n\n");
}

void AblateCandidateCap(const Matrix& x, double space) {
  std::printf("--- ablation 10: pass-2 candidate cap (s=%.3g%%) ---\n",
              space);
  std::printf("the paper evaluates every k in 1..k_max; capping the\n"
              "candidate set bounds the pass-2 priority-queue memory for\n"
              "huge N. how much quality does the cap cost?\n");
  TablePrinter table({"candidates", "k_opt", "RMSPE%", "peak queue entries"});
  for (const std::size_t cap : {2u, 4u, 8u, 16u, 0u}) {
    MatrixRowSource source(&x);
    SvddBuildOptions options;
    options.space_percent = space;
    options.num_threads = g_threads;
    options.max_candidates = cap;
    SvddBuildDiagnostics diag;
    const auto model = BuildSvddModel(&source, options, &diag);
    if (!model.ok()) continue;
    std::uint64_t queue_entries = 0;
    for (const std::uint64_t g : diag.candidate_delta_counts) {
      queue_entries += g;
    }
    table.AddRow({cap == 0 ? "all (paper)" : std::to_string(cap),
                  std::to_string(diag.k_opt),
                  TablePrinter::Percent(100.0 * Rmspe(x, *model)),
                  std::to_string(queue_entries)});
  }
  std::printf("%s\n", table.ToString().c_str());
}

void AblateRowOutliers(const Matrix& x, double space) {
  std::printf("--- ablation 9: cell deltas vs whole-row outlier storage "
              "(s=%.3g%%) ---\n", space);
  TablePrinter table({"outlier granularity", "RMSPE%", "worst norm%",
                      "outliers repaired"});
  {
    const auto svdd = BuildSvddAtSpace(x, space, 0, nullptr, g_threads);
    if (svdd.ok()) {
      const ErrorReport report = EvaluateErrors(x, *svdd);
      table.AddRow({"cell deltas (SVDD)",
                    TablePrinter::Percent(100.0 * report.rmspe),
                    TablePrinter::Percent(100.0 * report.max_normalized_error),
                    std::to_string(svdd->delta_count()) + " cells"});
    }
  }
  {
    SvddBuildOptions options;
    options.space_percent = space;
    options.num_threads = g_threads;
    const auto rows = BuildRowOutlierModel(x, options);
    if (rows.ok()) {
      const ErrorReport report = EvaluateErrors(x, *rows);
      table.AddRow({"whole rows",
                    TablePrinter::Percent(100.0 * report.rmspe),
                    TablePrinter::Percent(100.0 * report.max_normalized_error),
                    std::to_string(rows->stored_row_count()) + " rows"});
    }
  }
  std::printf("%s\n", table.ToString().c_str());
}

}  // namespace
}  // namespace tsc::bench

int main(int argc, char** argv) {
  tsc::FlagParser flags(argc, argv);
  const std::size_t phone_rows =
      static_cast<std::size_t>(flags.GetInt("phone_rows", 1000));
  const double space = flags.GetDouble("space", 10.0);
  tsc::bench::g_threads =
      static_cast<std::size_t>(flags.GetInt("threads", 1));

  std::printf("=== SVDD design ablations ===\n\n");
  const tsc::Dataset dataset = tsc::bench::MakePhoneDataset(phone_rows);
  std::printf("%s\n", tsc::bench::DatasetBanner(dataset).c_str());
  tsc::bench::AblateForcedK(dataset.values, space);
  tsc::bench::AblateDeltaEncoding(dataset.values, space);
  tsc::bench::AblateBloomFilter(dataset.values, space);
  tsc::bench::AblateEigenSolver(dataset.values, space);
  tsc::bench::AblateClusteringVariants(dataset.values, space);
  tsc::bench::AblateRobustSvd(dataset.values, space);
  tsc::bench::AblateZeroRowFilter(space);
  tsc::bench::AblateQuantizedStorage(dataset.values, space);
  tsc::bench::AblateRowOutliers(dataset.values, space);
  tsc::bench::AblateCandidateCap(dataset.values, space);
  return 0;
}
