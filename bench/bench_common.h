#ifndef TSC_BENCH_BENCH_COMMON_H_
#define TSC_BENCH_BENCH_COMMON_H_

// Shared RAII temp-store fixtures for the bench binaries. Every bench
// that serves from disk used to hand-roll the same four lines — pick a
// /tmp name, write the file, open a reader, never delete — and the
// copies had drifted on all three axes (naming, quant scheme, cache
// knobs). These wrappers own the lifetime instead: the file name is
// pid-qualified so two bench runs can share a machine, and the files
// are removed when the fixture goes out of scope.

#include <cstdio>
#include <memory>
#include <string>

#include <unistd.h>

#include "core/disk_backed.h"
#include "core/svdd_compressor.h"
#include "linalg/matrix.h"
#include "storage/quant.h"
#include "storage/row_store.h"
#include "util/logging.h"

namespace tsc::bench {

/// `/tmp/tsc_bench_<tag>_<pid><ext>` — unique per process so parallel
/// bench invocations (e.g. run_bench_suite.sh next to a manual run)
/// cannot clobber each other's files.
inline std::string TempPath(const std::string& tag, const std::string& ext) {
  return "/tmp/tsc_bench_" + tag + "_" + std::to_string(::getpid()) + ext;
}

/// A matrix written to a temp row-store file (optionally quantized),
/// removed on destruction. Open it with RowStoreReader::Open(path()).
class TempMatrixFile {
 public:
  TempMatrixFile(const Matrix& data, const std::string& tag,
                 QuantScheme scheme = QuantScheme::kF64)
      : path_(TempPath(tag, ".mat")) {
    TSC_CHECK_OK(WriteMatrixFile(path_, data, scheme));
  }
  ~TempMatrixFile() { std::remove(path_.c_str()); }

  TempMatrixFile(const TempMatrixFile&) = delete;
  TempMatrixFile& operator=(const TempMatrixFile&) = delete;

  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

/// An SVDD model exported to the paper's two-file disk layout (U row
/// store + sidecar) and opened as a DiskBackedStore. Reopen() drops the
/// current store and opens the same files with different serving knobs
/// (cache size, I/O backend, prefetch) — the probe-then-cached pattern
/// the quantized-serving sections use. Files are removed on
/// destruction.
class TempSvddStore {
 public:
  TempSvddStore(const SvddModel& model, const std::string& tag,
                const DiskBackedOptions& options = {})
      : u_path_(TempPath(tag + "_u", ".mat")),
        side_path_(TempPath(tag + "_side", ".bin")) {
    TSC_CHECK_OK(ExportSvddToDisk(model, u_path_, side_path_));
    Reopen(options);
  }
  ~TempSvddStore() {
    store_.reset();
    std::remove(u_path_.c_str());
    std::remove(side_path_.c_str());
  }

  TempSvddStore(const TempSvddStore&) = delete;
  TempSvddStore& operator=(const TempSvddStore&) = delete;

  /// Re-opens the exported files with new serving options (the old
  /// store, and with it any block cache, is discarded first).
  void Reopen(const DiskBackedOptions& options) {
    store_.reset();
    auto store = DiskBackedStore::Open(u_path_, side_path_, options);
    TSC_CHECK_OK(store.status());
    store_ = std::make_unique<DiskBackedStore>(std::move(*store));
  }

  DiskBackedStore& store() { return *store_; }
  const DiskBackedStore& store() const { return *store_; }
  const std::string& u_path() const { return u_path_; }
  const std::string& side_path() const { return side_path_; }

 private:
  std::string u_path_;
  std::string side_path_;
  std::unique_ptr<DiskBackedStore> store_;
};

}  // namespace tsc::bench

#endif  // TSC_BENCH_BENCH_COMMON_H_
