// Build-time scaling of the parallel 2-pass SVD and 3-pass SVDD
// pipelines. Runs the same build at each requested thread count and
// reports wall-clock speedup over threads=1. The sharded reduction is
// deterministic, so the models are byte-identical at every thread count
// (asserted here via serialized size + reconstruction spot checks; the
// full bitwise guarantee is enforced by tests/core/
// parallel_determinism_test.cc).
//
// Flags: --rows=20000 --cols=366 --space=10 --threads=1,2,4,8
//        --max_candidates=16

#include <algorithm>
#include <cstdio>
#include <vector>

#include "common/bench_datasets.h"
#include "common/json_reporter.h"
#include "core/metrics.h"
#include "core/sharded_store.h"
#include "util/flags.h"
#include "util/logging.h"
#include "util/table_printer.h"
#include "util/thread_pool.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  tsc::FlagParser flags(argc, argv);
  const std::size_t rows =
      static_cast<std::size_t>(flags.GetInt("rows", 20000));
  const std::size_t cols = static_cast<std::size_t>(flags.GetInt("cols", 366));
  const double space = flags.GetDouble("space", 10.0);
  const std::size_t max_candidates =
      static_cast<std::size_t>(flags.GetInt("max_candidates", 16));
  const std::vector<std::int64_t> thread_counts =
      flags.GetIntList("threads", {1, 2, 4, 8});
  const std::vector<std::int64_t> shard_counts =
      flags.GetIntList("shards", {1, 2, 4});
  const std::string json_path = flags.GetString("json", "");

  std::printf("=== Parallel build scaling (2-pass SVD / 3-pass SVDD) ===\n\n");
  std::printf("hardware threads available: %zu\n\n",
              tsc::ThreadPool::HardwareThreads());

  tsc::PhoneDatasetConfig config;
  config.num_customers = rows;
  config.num_days = cols;
  config.seed = 42;
  tsc::Timer gen_timer;
  const tsc::Dataset dataset = tsc::GeneratePhoneDataset(config);
  std::printf("%sgenerated in %.1fs\n\n",
              tsc::bench::DatasetBanner(dataset).c_str(),
              gen_timer.ElapsedSeconds());

  const std::size_t hardware = tsc::ThreadPool::HardwareThreads();
  std::size_t max_requested = 1;
  for (const std::int64_t t : thread_counts) {
    max_requested = std::max(max_requested, static_cast<std::size_t>(t));
  }
  // A 1-core container runs every configuration serially: speedups of
  // ~1.0x there say nothing about the pipeline. scaling_measurable and
  // the per-row eff_threads column let a report consumer tell "no
  // cores" apart from "no scaling" instead of reading a 2-thread row
  // from a 1-core box as a parallelism bug.
  const bool scaling_measurable = hardware >= 2;
  if (max_requested > hardware) {
    std::printf("NOTE: %zu threads requested but only %zu hardware thread%s "
                "available; speedup rows beyond %zu threads measure "
                "oversubscription, not scaling.\n\n",
                max_requested, hardware, hardware == 1 ? "" : "s", hardware);
  }

  tsc::TablePrinter table({"threads", "eff_thr", "svd_s", "svd_x", "svdd_s",
                           "svdd_x", "rmspe%"});
  tsc::bench::JsonReporter report(
      "build_scaling",
      {"threads", "eff_threads", "svd_s", "svd_speedup", "svdd_s",
       "svdd_speedup", "rmspe_pct"});
  report.AddScalar("rows", static_cast<double>(rows));
  report.AddScalar("cols", static_cast<double>(cols));
  report.AddScalar("space_pct", space);
  report.AddScalar("max_candidates", static_cast<double>(max_candidates));
  report.AddScalar("hardware_threads", static_cast<double>(hardware));
  report.AddScalar("scaling_measurable", scaling_measurable ? 1.0 : 0.0);
  double svd_base = 0.0;
  double svdd_base = 0.0;
  for (const std::int64_t t : thread_counts) {
    const std::size_t threads = static_cast<std::size_t>(t);
    const std::size_t eff_threads = std::min(threads, hardware);

    tsc::Timer svd_timer;
    const auto svd =
        tsc::bench::BuildSvdAtSpace(dataset.values, space, threads);
    const double svd_s = svd_timer.ElapsedSeconds();
    if (!svd.ok()) {
      std::printf("svd threads=%zu: %s\n", threads,
                  svd.status().ToString().c_str());
      continue;
    }

    tsc::Timer svdd_timer;
    const auto svdd = tsc::bench::BuildSvddAtSpace(
        dataset.values, space, max_candidates, nullptr, threads);
    const double svdd_s = svdd_timer.ElapsedSeconds();
    if (!svdd.ok()) {
      std::printf("svdd threads=%zu: %s\n", threads,
                  svdd.status().ToString().c_str());
      continue;
    }

    if (svd_base == 0.0) svd_base = svd_s;
    if (svdd_base == 0.0) svdd_base = svdd_s;
    const double rmspe_pct = 100.0 * tsc::Rmspe(dataset.values, *svdd);
    table.AddRow({std::to_string(threads), std::to_string(eff_threads),
                  tsc::TablePrinter::Num(svd_s, 3),
                  tsc::TablePrinter::Num(svd_base / svd_s, 2) + "x",
                  tsc::TablePrinter::Num(svdd_s, 3),
                  tsc::TablePrinter::Num(svdd_base / svdd_s, 2) + "x",
                  tsc::TablePrinter::Percent(rmspe_pct)});
    report.AddRow({std::to_string(threads), std::to_string(eff_threads),
                   tsc::TablePrinter::Num(svd_s, 3),
                   tsc::TablePrinter::Num(svd_base / svd_s, 2),
                   tsc::TablePrinter::Num(svdd_s, 3),
                   tsc::TablePrinter::Num(svdd_base / svdd_s, 2),
                   tsc::TablePrinter::Num(rmspe_pct)});
  }
  std::printf("%s\n", table.ToString().c_str());

  // --- per-shard parallel sharded build (PR 9) ------------------------------
  // BuildShardedStore runs S independent 3-pass SVDD builds, one worker
  // per shard — each shard picks its own k_opt over its row slice, so
  // unlike the intra-build parallelism above the units of work are
  // coarse and embarrassingly parallel. Speedup is measured against the
  // S=1 sharded build (one shard, one worker), which is the same
  // pipeline as the unsharded build. The same scaling_measurable guard
  // applies: a 1-core runner serializes the shard builds.
  {
    tsc::TablePrinter shard_table(
        {"shards", "workers", "eff_thr", "build_s", "speedup", "slowest shard s"});
    double shard_base = 0.0;
    for (const std::int64_t sc : shard_counts) {
      const std::size_t shards = static_cast<std::size_t>(sc);
      tsc::ShardedBuildOptions options;
      options.base.space_percent = space;
      options.base.max_candidates = max_candidates;
      options.shard_count = shards;
      options.num_threads = shards;  // one worker per shard
      tsc::ShardedBuildDiagnostics diag;
      tsc::Timer timer;
      const auto store =
          tsc::BuildShardedStore(dataset.values, options, &diag);
      const double build_s = timer.ElapsedSeconds();
      if (!store.ok()) {
        std::printf("sharded build S=%zu: %s\n", shards,
                    store.status().ToString().c_str());
        continue;
      }
      if (shard_base == 0.0) shard_base = build_s;
      double slowest = 0.0;
      for (const double s : diag.shard_seconds) {
        slowest = std::max(slowest, s);
      }
      const std::size_t eff_threads = std::min(shards, hardware);
      shard_table.AddRow(
          {std::to_string(shards), std::to_string(shards),
           std::to_string(eff_threads), tsc::TablePrinter::Num(build_s, 3),
           tsc::TablePrinter::Num(shard_base / build_s, 2) + "x",
           tsc::TablePrinter::Num(slowest, 3)});
      const std::string suffix = "_s" + std::to_string(shards);
      report.AddScalar("shard_build_s" + suffix, build_s);
      report.AddScalar("shard_build_speedup" + suffix, shard_base / build_s);
      report.AddScalar("shard_build_slowest_shard_s" + suffix, slowest);
    }
    std::printf("%s\n", shard_table.ToString().c_str());
    std::printf("sharded build speedup = time(S=1) / time(S=N); near-linear\n"
                "needs >= N cores (see scaling_measurable above). slowest\n"
                "shard bounds the wall clock — range slices are balanced, so\n"
                "skew means data, not the scheduler.\n\n");
  }

  std::printf("speedup = time(threads=1) / time(threads=N); identical\n"
              "rmspe%% across rows confirms the builds agree. eff_thr =\n"
              "min(threads, hardware): when it stays 1 the box cannot\n"
              "demonstrate scaling (scaling_measurable=0 in the json),\n"
              "and ~1x speedups are expected rather than a regression.\n");
  if (!json_path.empty()) {
    TSC_CHECK_OK(report.WriteFile(json_path));
    std::printf("json report written to %s\n", json_path.c_str());
  }
  return 0;
}
